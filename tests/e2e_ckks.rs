//! Cross-crate integration: the real CKKS pipeline feeding the real
//! compiler and simulator.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ufc_ckks::{CkksContext, Evaluator, KeySet, SecretKey};
use ufc_compiler::CompileOptions;
use ufc_core::{compile_with_barriers, Ufc};
use ufc_sim::machines::SharpMachine;
use ufc_sim::simulate;

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn functional_trace_compiles_and_simulates() {
    // Run a real homomorphic program, capture its trace, and push the
    // trace through the compiler and both machine models.
    let ctx = CkksContext::new(64, 4, 2, 2, 36, 34);
    let mut rng = StdRng::seed_from_u64(1);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let mut keys = KeySet::generate(&ctx, &sk, &mut rng);
    keys.gen_rotation_key(&ctx, &sk, 1, &mut rng);
    let ev = Evaluator::new(ctx);

    let xs: Vec<f64> = (0..32).map(|i| (i as f64) * 0.05).collect();
    let ct = ev.encrypt_real(&xs, &keys, &mut rng);
    let sq = ev.rescale(&ev.mul(&ct, &ct, &keys));
    let rot = ev.rotate(&sq, 1, &keys);
    let out = ev.add(&rot, &sq);
    // Check the math end-to-end first.
    let dec = ev.decrypt_real(&out, &sk);
    let expect: Vec<f64> = (0..32)
        .map(|i| xs[(i + 1) % 32].powi(2) + xs[i].powi(2))
        .collect();
    assert!(
        max_err(&dec, &expect) < 0.05,
        "err {}",
        max_err(&dec, &expect)
    );

    // The recorded trace must lower and simulate on UFC and SHARP.
    // (The trace carries test-scale levels; attach a paper parameter
    // environment for lowering shapes.)
    let mut trace = ev.take_trace();
    trace.ckks_params = Some("C1");
    let stream = compile_with_barriers(&trace, CompileOptions::default());
    assert!(stream.len() > 10);
    let ufc = Ufc::paper_default().machine_for(&trace);
    let r1 = simulate(&ufc, &stream);
    let r2 = simulate(&SharpMachine::new(), &stream);
    assert!(r1.cycles > 0 && r2.cycles > 0);
}

#[test]
fn bootstrap_refreshes_and_allows_more_multiplications() {
    let ctx = CkksContext::new(16, 11, 3, 4, 36, 34);
    let mut rng = StdRng::seed_from_u64(2);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let mut keys = KeySet::generate(&ctx, &sk, &mut rng);
    let ev = Evaluator::new(ctx);
    let bs = ufc_ckks::bootstrap::Bootstrapper::new(ev.context().slots());
    ufc_ckks::bootstrap::gen_bootstrap_keys(&ev, &bs, &mut keys, &sk, &mut rng);

    let vals: Vec<f64> = (0..8).map(|i| 0.01 * i as f64).collect();
    let ct = ev.encrypt_real(&vals, &keys, &mut rng);
    let refreshed = bs.bootstrap(&ev, &ct, &keys);
    // The refreshed ciphertext still supports a multiplication.
    let sq = ev.rescale(&ev.mul(&refreshed, &refreshed, &keys));
    let dec = ev.decrypt_real(&sq, &sk);
    let expect: Vec<f64> = vals.iter().map(|v| v * v).collect();
    assert!(
        max_err(&dec, &expect) < 0.03,
        "err {}",
        max_err(&dec, &expect)
    );
}

#[test]
fn workload_traces_run_on_every_parameter_set() {
    let ufc = Ufc::paper_default();
    for p in ["C1", "C2", "C3"] {
        for tr in ufc_workloads::all_ckks_workloads(p) {
            let r = ufc.run(&tr);
            assert!(r.cycles > 0, "{} on {p}", tr.name);
        }
    }
}
