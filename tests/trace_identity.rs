//! Tracing must be a pure observer: running the full hybrid pipeline
//! with the recorder live yields bit-identical outputs to running it
//! dark. Instrumentation only reads the clock and buffers spans — it
//! must never perturb RNG consumption, operation order, or any
//! ciphertext arithmetic.
//!
//! Single `#[test]`: the `ufc-trace` recorder is process-global and
//! the cargo harness runs tests in one binary concurrently.

use ufc_workloads::host::{run_threshold_knn, HostKnnRun, HostRunConfig};

/// Bitwise comparison of two runs; `f64` compared via `to_bits` so a
/// "close enough" float never masks a real divergence.
fn assert_bit_identical(dark: &HostKnnRun, traced: &HostKnnRun) {
    assert_eq!(dark.bits, traced.bits, "comparator bits diverged");
    assert_eq!(dark.expected_bits, traced.expected_bits);
    assert_eq!(
        dark.gate_results, traced.gate_results,
        "gate sweep diverged"
    );
    assert_eq!(
        dark.measured_precision_bits.to_bits(),
        traced.measured_precision_bits.to_bits(),
        "decrypt-side noise diverged: {} vs {}",
        dark.measured_precision_bits,
        traced.measured_precision_bits
    );
    assert_eq!(
        dark.trace.ops, traced.trace.ops,
        "recorded op trace diverged"
    );
}

#[test]
fn recording_leaves_pipeline_outputs_bit_identical() {
    let cfg = HostRunConfig::default();

    // Dark run: recorder off, every span site is an inert guard.
    assert!(!ufc_trace::enabled());
    let dark = run_threshold_knn(&cfg);
    assert!(dark.all_correct());

    // Traced run: recorder live end to end.
    let recorder = ufc_trace::record().expect("no other recording is live");
    let traced = run_threshold_knn(&cfg);
    let host_trace = recorder.finish();
    assert!(traced.all_correct());
    assert!(
        host_trace.spans.len() > 1000,
        "recording really happened ({} spans)",
        host_trace.spans.len()
    );

    assert_bit_identical(&dark, &traced);

    // And a second dark run still matches, so the recording left no
    // residue in the evaluator stack either.
    let dark2 = run_threshold_knn(&cfg);
    assert_bit_identical(&dark, &dark2);
}
