//! Reproducibility guarantees: identical inputs produce identical
//! simulation results (the property that makes the DSE sweeps and the
//! paper-claim regression bands meaningful).

use ufc_core::Ufc;

#[test]
fn simulation_is_deterministic() {
    let ufc = Ufc::paper_default();
    let tr = ufc_workloads::knn::generate("C2", "T2", Default::default());
    let a = ufc.run(&tr);
    let b = ufc.run(&tr);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.energy_j, b.energy_j);
    assert_eq!(a.utilization, b.utilization);
}

#[test]
fn trace_generation_is_deterministic() {
    let a = ufc_workloads::helr::generate("C1");
    let b = ufc_workloads::helr::generate("C1");
    assert_eq!(a, b);
}

#[test]
fn crypto_is_deterministic_given_seed() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let ctx = ufc_ckks::CkksContext::new(32, 3, 2, 2, 36, 34);
    let run = || {
        let mut rng = StdRng::seed_from_u64(5);
        let sk = ufc_ckks::SecretKey::generate(&ctx, &mut rng);
        let keys = ufc_ckks::KeySet::generate(&ctx, &sk, &mut rng);
        let ev = ufc_ckks::Evaluator::new(ctx.clone());
        let ct = ev.encrypt_real(&[1.0; 16], &keys, &mut rng);
        ev.decrypt_coeffs(&ct, &sk)
    };
    assert_eq!(run(), run());
}
