//! The paper's headline claims, asserted as regression bands. These
//! are the quantitative shapes EXPERIMENTS.md documents: exact values
//! differ from the paper (our substrate is a model, not the authors'
//! synthesis flow), but who wins — and by roughly what factor — must
//! hold.

use ufc_core::compare::{compare, geomean};
use ufc_core::Ufc;
use ufc_sim::machines::{ComposedMachine, SharpMachine, StrixMachine};

#[test]
fn ckks_workloads_favor_ufc_modestly() {
    // Paper Fig. 10(a): 1.1x delay, 1.4x energy, 1.5x EDP, 1.6x EDAP.
    let ufc = Ufc::paper_default();
    let sharp = SharpMachine::new();
    let rows: Vec<_> = ufc_workloads::all_ckks_workloads("C1")
        .iter()
        .map(|tr| compare(&ufc, &sharp, tr))
        .collect();
    let speedup = geomean(rows.iter().map(ufc_core::ComparisonRow::speedup));
    let energy = geomean(rows.iter().map(ufc_core::ComparisonRow::energy_gain));
    let edp = geomean(rows.iter().map(ufc_core::ComparisonRow::edp_gain));
    let edap = geomean(rows.iter().map(ufc_core::ComparisonRow::edap_gain));
    assert!((1.0..1.3).contains(&speedup), "speedup {speedup:.2}");
    assert!((1.2..1.7).contains(&energy), "energy {energy:.2}");
    assert!((1.3..1.9).contains(&edp), "edp {edp:.2}");
    assert!((1.4..2.0).contains(&edap), "edap {edap:.2}");
}

#[test]
fn tfhe_workloads_favor_ufc_strongly() {
    // Paper Fig. 10(b): ~6x faster, 1.2x energy, 1.5x EDAP.
    let ufc = Ufc::paper_default();
    let strix = StrixMachine::new();
    let mut speedups = Vec::new();
    for set in ["T1", "T2", "T3", "T4"] {
        let tr = ufc_workloads::tfhe_apps::pbs_throughput(set, 256);
        let r = compare(&ufc, &strix, &tr);
        speedups.push(r.speedup());
        assert!(
            (1.0..1.6).contains(&r.energy_gain()),
            "{set} energy {:.2}",
            r.energy_gain()
        );
        assert!(r.edap_gain() > 1.1, "{set} edap {:.2}", r.edap_gain());
    }
    let avg = geomean(speedups.iter().copied());
    assert!(
        (4.5..8.0).contains(&avg),
        "TFHE speedup {avg:.2} (paper: 6.0)"
    );
}

#[test]
fn hybrid_gap_widens_with_tfhe_parameter_size() {
    // Paper Fig. 11: modest at T1-T3, 2.8x at T4; 3.1x EDP / 3.7x
    // EDAP overall.
    let ufc = Ufc::paper_default();
    let composed = ComposedMachine::new();
    let rows: Vec<_> = ["T1", "T2", "T3", "T4"]
        .iter()
        .map(|set| {
            compare(
                &ufc,
                &composed,
                &ufc_workloads::knn::generate("C2", set, Default::default()),
            )
        })
        .collect();
    assert!(
        rows[3].speedup() > 1.5 * rows[0].speedup() / 1.05,
        "T4 must stand out"
    );
    let edap = geomean(rows.iter().map(ufc_core::ComparisonRow::edap_gain));
    assert!(
        (2.5..5.0).contains(&edap),
        "hybrid EDAP {edap:.2} (paper: 3.7)"
    );
}

#[test]
fn area_matches_published_chip() {
    // Table II: 197.7 mm^2 at 7 nm.
    let ufc = Ufc::paper_default();
    let area = ufc
        .machine_for(&ufc_workloads::helr::generate("C1"))
        .config()
        .area_breakdown()
        .total();
    assert!((area - 197.7).abs() < 5.0, "area {area:.1}");
}

#[test]
fn packing_order_matches_fig15() {
    use ufc_compiler::{CompileOptions, Packing};
    use ufc_core::UfcConfig;
    let tr = ufc_workloads::tfhe_apps::pbs_throughput("T1", 256);
    let run = |packing| {
        let opts = CompileOptions {
            packing,
            ..CompileOptions::default()
        };
        Ufc::new(UfcConfig::default(), opts).run(&tr).seconds
    };
    let none = run(Packing::None);
    let plp = run(Packing::Plp);
    let colp = run(Packing::ColpPlp);
    let tvlp = run(Packing::TvlpPlp);
    assert!(
        tvlp < colp && colp < plp && plp < none,
        "TvLP < CoLP < PLP < none"
    );
}
