//! Cross-crate integration: TFHE functional pipeline + simulation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ufc_core::Ufc;
use ufc_sim::machines::StrixMachine;
use ufc_tfhe::gates::{apply_gate, decrypt_bool, encrypt_bool, Gate};
use ufc_tfhe::{TfheContext, TfheKeys};

#[test]
fn encrypted_mux_through_gates() {
    // mux(s, a, b) = (s AND a) OR (NOT s AND b), all bootstrapped.
    let ctx = TfheContext::new(64, 256, 7, 3, 6, 4);
    let mut rng = StdRng::seed_from_u64(11);
    let keys = TfheKeys::generate(&ctx, &mut rng);
    for (s, a, b) in [
        (true, true, false),
        (false, true, false),
        (true, false, true),
    ] {
        let es = encrypt_bool(&ctx, &keys, s, &mut rng);
        let ea = encrypt_bool(&ctx, &keys, a, &mut rng);
        let eb = encrypt_bool(&ctx, &keys, b, &mut rng);
        let sa = apply_gate(&ctx, &keys, Gate::And, &es, &ea);
        let nsb = apply_gate(&ctx, &keys, Gate::And, &ufc_tfhe::gates::not(&es), &eb);
        let out = apply_gate(&ctx, &keys, Gate::Or, &sa, &nsb);
        assert_eq!(decrypt_bool(&ctx, &keys, &out), if s { a } else { b });
    }
}

#[test]
fn pbs_traces_simulate_faster_on_ufc_than_strix() {
    let ufc = Ufc::paper_default();
    let strix = StrixMachine::new();
    for set in ["T1", "T2", "T3", "T4"] {
        let tr = ufc_workloads::tfhe_apps::pbs_throughput(set, 128);
        let u = ufc.run(&tr);
        let s = ufc.run_on(&strix, &tr);
        let speedup = s.seconds / u.seconds;
        assert!(
            (3.0..10.0).contains(&speedup),
            "{set}: UFC/Strix speedup {speedup:.2} out of the expected band"
        );
    }
}

#[test]
fn zama_nn_scales_linearly_with_depth() {
    let ufc = Ufc::paper_default();
    let t20 = ufc.run(&ufc_workloads::tfhe_apps::zama_nn("T2", 20));
    let t50 = ufc.run(&ufc_workloads::tfhe_apps::zama_nn("T2", 50));
    let ratio = t50.seconds / t20.seconds;
    assert!(
        (2.0..3.0).contains(&ratio),
        "depth scaling ratio {ratio:.2}"
    );
}
