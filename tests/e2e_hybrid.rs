//! Cross-crate integration: hybrid scheme switching, functionally and
//! in simulation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ufc_core::compare::compare;
use ufc_core::Ufc;
use ufc_sim::machines::ComposedMachine;
use ufc_switch::hybrid::HybridEnv;

#[test]
fn hybrid_comparator_is_correct() {
    let mut rng = StdRng::seed_from_u64(21);
    let env = HybridEnv::new_test_scale(&mut rng);
    let values = [3u64, 0, 2, 1];
    let (bits, trace) = env.threshold_compare(&values, 2, 8, &mut rng).unwrap();
    assert_eq!(bits, vec![true, false, true, false]);
    assert!(!trace.is_empty());
}

#[test]
fn ufc_beats_composed_system_on_knn() {
    let ufc = Ufc::paper_default();
    let composed = ComposedMachine::new();
    let mut prev_speedup = 0.0;
    for set in ["T1", "T4"] {
        let tr = ufc_workloads::knn::generate("C2", set, Default::default());
        let row = compare(&ufc, &composed, &tr);
        assert!(row.speedup() > 1.0, "{set}: {}", row.speedup());
        assert!(row.edap_gain() > row.edp_gain(), "area term must help UFC");
        assert!(
            row.speedup() > prev_speedup,
            "larger TFHE params must widen the gap (Fig. 11)"
        );
        prev_speedup = row.speedup();
    }
}

#[test]
fn transfers_only_cost_on_the_composed_system() {
    let ufc = Ufc::paper_default();
    let tr = ufc_workloads::knn::generate("C2", "T1", Default::default());
    let u = ufc.run(&tr);
    let c = ufc.run_on(&ComposedMachine::new(), &tr);
    assert_eq!(u.util("Pcie"), 0.0);
    assert!(c.util("Pcie") > 0.0);
}
