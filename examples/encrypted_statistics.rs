//! Encrypted statistics with the CKKS API: mean and variance of a
//! private vector, computed entirely under encryption with
//! rotation-tree summation — and the noise budget tracked alongside
//! and checked against the measured error.
//!
//! Run: `cargo run --example encrypted_statistics --release`

use rand::rngs::StdRng;
use rand::SeedableRng;
use ufc_ckks::noise::{measured_error, NoiseBudget};
use ufc_ckks::{CkksContext, Evaluator, KeySet, SecretKey};

fn main() {
    let n = 64usize;
    let slots = n / 2;
    let ctx = CkksContext::new(n, 5, 3, 2, 36, 34);
    let mut rng = StdRng::seed_from_u64(12);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let mut keys = KeySet::generate(&ctx, &sk, &mut rng);
    // Rotation keys for the log-depth sum tree.
    let mut step = 1usize;
    while step < slots {
        keys.gen_rotation_key(&ctx, &sk, step as isize, &mut rng);
        step *= 2;
    }
    let ev = Evaluator::new(ctx);
    let delta = ev.context().scale();

    let data: Vec<f64> = (0..slots).map(|i| (i as f64 * 0.37).sin()).collect();
    let ct = ev.encrypt_real(&data, &keys, &mut rng);
    let mut budget = NoiseBudget::fresh(1.0, n, delta);

    // Rotation tree: every slot ends up holding Σ x_i.
    let mut sum = ct.clone();
    let mut step = 1usize;
    while step < slots {
        let rot = ev.rotate(&sum, step as isize, &keys);
        sum = ev.add(&sum, &rot);
        budget = budget.add(&budget.rotate(n, delta));
        step *= 2;
    }
    // mean = sum / slots (plaintext multiply by 1/slots).
    let inv = ev.encode_real(&vec![1.0 / slots as f64; slots], sum.level);
    let mean_ct = ev.rescale(&ev.mul_plain(&sum, &inv));
    budget = budget
        .mul_plain(1.0 / slots as f64, n, delta)
        .rescale(n, mean_ct.scale);

    // variance = mean((x - mean)^2).
    let centered = ev.sub(&ev.drop_to_level(&ct, mean_ct.level), &mean_ct);
    let sq = ev.rescale(&ev.mul(&centered, &centered, &keys));
    let mut var_sum = sq.clone();
    let mut step = 1usize;
    while step < slots {
        let rot = ev.rotate(&var_sum, step as isize, &keys);
        var_sum = ev.add(&var_sum, &rot);
        step *= 2;
    }
    let inv2 = ev.encode_real(&vec![1.0 / slots as f64; slots], var_sum.level);
    let var_ct = ev.rescale(&ev.mul_plain(&var_sum, &inv2));

    // Decrypt and compare with the plaintext computation.
    let mean = data.iter().sum::<f64>() / slots as f64;
    let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / slots as f64;
    let dec_mean = ev.decrypt_real(&mean_ct, &sk)[0];
    let dec_var = ev.decrypt_real(&var_ct, &sk)[0];
    println!("mean: {dec_mean:.6} (plaintext {mean:.6})");
    println!("var : {dec_var:.6} (plaintext {var:.6})");
    let err = measured_error(&ev, &mean_ct, &sk, &vec![mean; slots]);
    println!(
        "mean error {err:.2e} within the tracked bound {:.2e} ({} bits of precision left)",
        budget.error_bound,
        budget.precision_bits().map(|b| b as i64).unwrap_or(0)
    );
    assert!((dec_mean - mean).abs() < 1e-3 && (dec_var - var).abs() < 1e-3);
}
