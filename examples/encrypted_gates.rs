//! Encrypted logic with TFHE: a homomorphic 2-bit ripple-carry adder
//! built from bootstrapped gates — every gate is one programmable
//! bootstrap on real ciphertexts.
//!
//! Run: `cargo run --example encrypted_gates --release`

use rand::rngs::StdRng;
use rand::SeedableRng;
use ufc_tfhe::gates::{apply_gate, decrypt_bool, encrypt_bool, Gate};
use ufc_tfhe::{TfheContext, TfheKeys};

fn main() {
    let ctx = TfheContext::new(64, 256, 7, 3, 6, 4);
    let mut rng = StdRng::seed_from_u64(7);
    let keys = TfheKeys::generate(&ctx, &mut rng);

    // Add two 2-bit numbers a=0b11 (3) and b=0b01 (1) homomorphically.
    let a = [true, true]; // LSB first
    let b = [true, false];
    let ea: Vec<_> = a
        .iter()
        .map(|&v| encrypt_bool(&ctx, &keys, v, &mut rng))
        .collect();
    let eb: Vec<_> = b
        .iter()
        .map(|&v| encrypt_bool(&ctx, &keys, v, &mut rng))
        .collect();

    // Full adder per bit: s = a^b^c, c' = (a&b) | (c&(a^b)).
    let mut carry = encrypt_bool(&ctx, &keys, false, &mut rng);
    let mut sum_bits = Vec::new();
    for i in 0..2 {
        let axb = apply_gate(&ctx, &keys, Gate::Xor, &ea[i], &eb[i]);
        let s = apply_gate(&ctx, &keys, Gate::Xor, &axb, &carry);
        let ab = apply_gate(&ctx, &keys, Gate::And, &ea[i], &eb[i]);
        let cx = apply_gate(&ctx, &keys, Gate::And, &carry, &axb);
        carry = apply_gate(&ctx, &keys, Gate::Or, &ab, &cx);
        sum_bits.push(s);
    }
    sum_bits.push(carry);

    let decoded: u32 = sum_bits
        .iter()
        .enumerate()
        .map(|(i, ct)| (decrypt_bool(&ctx, &keys, ct) as u32) << i)
        .sum();
    println!("3 + 1 = {decoded} (computed under encryption, 8 bootstrapped gates)");
    assert_eq!(decoded, 4);
}
