//! Hybrid FHE in action: the scheme-switching comparator at the heart
//! of encrypted k-NN (functional, at test scale), followed by the
//! paper-scale k-NN simulation comparing UFC against the composed
//! SHARP+Strix baseline (Fig. 11).
//!
//! Run: `cargo run --example hybrid_knn --release`

use rand::rngs::StdRng;
use rand::SeedableRng;
use ufc_core::compare::compare;
use ufc_core::Ufc;
use ufc_sim::machines::ComposedMachine;
use ufc_switch::hybrid::HybridEnv;

fn main() {
    // ---- Functional: CKKS → extract → TFHE comparator.
    let mut rng = StdRng::seed_from_u64(3);
    let env = HybridEnv::new_test_scale(&mut rng);
    let distances = [0u64, 3, 1, 2, 3, 0];
    let (bits, trace) = env
        .threshold_compare(&distances, 2, 8, &mut rng)
        .expect("test-scale batch fits the ring");
    println!("distances {distances:?} >= 2 ? -> {bits:?}");
    println!(
        "(hybrid trace: {} ops, scheme mix {:?})\n",
        trace.len(),
        trace.scheme_mix()
    );

    // ---- Simulated at paper scale: Fig. 11.
    let ufc = Ufc::paper_default();
    let composed = ComposedMachine::new();
    for set in ["T1", "T4"] {
        let tr = ufc_workloads::knn::generate("C2", set, Default::default());
        let row = compare(&ufc, &composed, &tr);
        println!(
            "k-NN/{set}: UFC {:.2} ms vs SHARP+Strix {:.2} ms -> {:.2}x speedup, {:.2}x EDAP",
            row.ufc.seconds * 1e3,
            row.baseline.seconds * 1e3,
            row.speedup(),
            row.edap_gain()
        );
    }
}
