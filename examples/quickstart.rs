//! Quickstart: the three layers of the UFC stack in one file.
//!
//! 1. Real homomorphic computation with CKKS (encrypt → multiply →
//!    rotate → decrypt),
//! 2. the ciphertext-granularity trace the evaluator records,
//! 3. compiling that trace and simulating it on the UFC accelerator
//!    model.
//!
//! Run: `cargo run --example quickstart --release`

use rand::rngs::StdRng;
use rand::SeedableRng;
use ufc_ckks::{CkksContext, Evaluator, KeySet, SecretKey};
use ufc_core::Ufc;

fn main() {
    // ---- 1. Real CKKS computation at test-scale parameters.
    let ctx = CkksContext::new(64, 4, 2, 2, 36, 34);
    let mut rng = StdRng::seed_from_u64(42);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let mut keys = KeySet::generate(&ctx, &sk, &mut rng);
    keys.gen_rotation_key(&ctx, &sk, 1, &mut rng);
    let ev = Evaluator::new(ctx);

    let xs: Vec<f64> = (0..32).map(|i| i as f64 * 0.1).collect();
    let ct = ev.encrypt_real(&xs, &keys, &mut rng);
    let squared = ev.rescale(&ev.mul(&ct, &ct, &keys));
    let rotated = ev.rotate(&squared, 1, &keys);
    let result = ev.decrypt_real(&rotated, &sk);
    println!("x[1]^2 = {:.4} (expect {:.4})", result[0], (0.1f64).powi(2));

    // ---- 2. The trace recorded while computing.
    let trace = ev.take_trace();
    println!(
        "recorded {} ciphertext-level ops: {:?} ...",
        trace.len(),
        &trace.ops[..3.min(trace.len())]
    );

    // ---- 3. Simulate a paper-scale workload on the UFC model.
    let ufc = Ufc::paper_default();
    let workload = ufc_workloads::helr::generate("C1");
    let report = ufc.run(&workload);
    println!(
        "HELR (30 iters, C1) on UFC: {:.1} ms, {:.1} J, {:.1} W avg, NTT util {:.0}%",
        report.seconds * 1e3,
        report.energy_j,
        report.avg_power_w(),
        report.util("Ntt") * 100.0
    );
}
