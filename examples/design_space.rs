//! Design-space exploration (§VII-E): sweep CG-NTT network counts and
//! lane widths, reporting delay/EDP/EDAP per point (Figs. 13–14).
//!
//! Run: `cargo run --example design_space --release`

use ufc_core::dse::{default_mix, sweep_cg_networks, sweep_lanes};

fn main() {
    let mix = default_mix();
    println!("== Fig. 13 sweep: CG-NTT networks x scratchpad ==");
    for p in sweep_cg_networks(&mix) {
        println!(
            "{:>16}: {:>8.2} ms  EDP {:.3e}  EDAP {:.3e}  ({:.0} mm²)",
            p.label,
            p.total_seconds * 1e3,
            p.edp(),
            p.edap(),
            p.area_mm2
        );
    }
    println!("\n== Fig. 14 sweep: lanes per PE x scratchpad ==");
    for p in sweep_lanes(&mix) {
        println!(
            "{:>16}: {:>8.2} ms  EDP {:.3e}  EDAP {:.3e}  ({:.0} mm²)",
            p.label,
            p.total_seconds * 1e3,
            p.edp(),
            p.edap(),
            p.area_mm2
        );
    }
}
