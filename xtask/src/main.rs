//! Workspace automation, invoked as `cargo xtask <command>`.
//!
//! * `lint` — the full static gate: `cargo fmt --check`,
//!   `cargo clippy --workspace -- -D warnings`, then the fixture
//!   corpus through `ufc-lint` (same contract as CI).
//! * `fixtures` — just the `ufc-lint` fixture sweep: every clean
//!   fixture must come back clean, every seeded fixture must produce
//!   at least one diagnostic.
//! * `profile-smoke` — build `ufc-profile`, run it on the small
//!   hybrid-kNN trace fixture, and validate the exported Perfetto
//!   file parses as JSON with at least one slice.
//! * `trace-smoke` — build `ufc-profile`, run it on the fixture with
//!   the host recorder enabled (`--host`), and validate all three
//!   runtime-tracing exports: the merged Perfetto file carries host
//!   slices and track-name metadata, every JSONL line parses, and the
//!   JSON summary has the host metrics block.
//! * `bench-math [--quick]` — build the release `bench_math` harness,
//!   run it writing `BENCH_math.json` at the workspace root, and
//!   validate the report shape (experiment tag, numeric headline
//!   speedup, non-empty tables, host topology block).
//! * `bench-switch [--quick]` — build the release `bench_switch`
//!   harness, run it writing `BENCH_switch.json` at the workspace
//!   root, and validate the report shape (experiment tag, `extract`
//!   and `repack` tables each carrying the batch-size axis, host
//!   topology block, O(√n) rotation-key headline).
//! * `bench-sha256 [--quick]` — build the release `bench_sha256`
//!   harness, run it writing `BENCH_sha256.json` at the workspace
//!   root, and validate the report: `circuit`/`sim`/`host` tables,
//!   host topology block, and the headline claims — the prefix
//!   adder's critical path strictly shorter than ripple's, its PLP
//!   utilization strictly higher, and the homomorphic digests
//!   matching the plaintext reference. The structural claims are
//!   deterministic simulator outputs, so they gate `--quick` runs
//!   too.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    // The CI kernel matrix forces kernels through `UFC_NTT_KERNEL`; a
    // typo'd value must kill the matrix leg, not be silently absorbed
    // by the library's warn-and-fall-back path somewhere downstream.
    if let Err(e) = ufc_math::ntt::NttKernel::from_env() {
        eprintln!("xtask: {e}");
        return ExitCode::from(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("fixtures") => fixtures(),
        Some("unsafe-surface") => unsafe_surface(),
        Some("profile-smoke") => profile_smoke(),
        Some("trace-smoke") => trace_smoke(),
        Some("bench-math") => bench_math(args.iter().any(|a| a == "--quick")),
        Some("bench-switch") => bench_switch(args.iter().any(|a| a == "--quick")),
        Some("bench-sha256") => bench_sha256(args.iter().any(|a| a == "--quick")),
        Some("-h") | Some("--help") | None => {
            eprintln!(
                "usage: cargo xtask \
                 <lint|fixtures|unsafe-surface|profile-smoke|trace-smoke|bench-math|\
                 bench-switch|bench-sha256>"
            );
            eprintln!("  lint           fmt --check + clippy -D warnings + unsafe surface");
            eprintln!("                 + fixture sweep");
            eprintln!("  fixtures       run ufc-lint over crates/verify/tests/fixtures");
            eprintln!("  unsafe-surface assert `unsafe` appears only in crates/math/src/simd.rs");
            eprintln!("  profile-smoke  run ufc-profile on the hybrid-kNN fixture and");
            eprintln!("                 validate its Perfetto export");
            eprintln!("  trace-smoke    run ufc-profile --host on the fixture and validate");
            eprintln!("                 the merged Perfetto, JSONL, and JSON host exports");
            eprintln!("  bench-math     run the math micro-benchmarks, write and validate");
            eprintln!("                 BENCH_math.json (pass --quick for small sizes)");
            eprintln!("  bench-switch   run the scheme-switch boundary benchmarks, write and");
            eprintln!("                 validate BENCH_switch.json (pass --quick for CI smoke)");
            eprintln!("  bench-sha256   run the homomorphic SHA-256 benchmarks, write and");
            eprintln!("                 validate BENCH_sha256.json (pass --quick for CI smoke)");
            if args.is_empty() {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            }
        }
        Some(other) => {
            eprintln!("unknown xtask command `{other}`; try `cargo xtask --help`");
            ExitCode::from(2)
        }
    }
}

/// Workspace root: xtask always runs from somewhere inside the repo.
fn workspace_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .unwrap_or_else(|_| env!("CARGO_MANIFEST_DIR").to_string());
    Path::new(&manifest)
        .parent()
        .expect("xtask lives one level under the workspace root")
        .to_path_buf()
}

/// Runs `cargo <args>` at the workspace root, echoing the command.
fn cargo(args: &[&str]) -> bool {
    println!("+ cargo {}", args.join(" "));
    Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
        .args(args)
        .current_dir(workspace_root())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

fn lint() -> ExitCode {
    let steps: &[&[&str]] = &[
        &["fmt", "--all", "--check"],
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
    ];
    for step in steps {
        if !cargo(step) {
            eprintln!("xtask lint: `cargo {}` failed", step.join(" "));
            return ExitCode::FAILURE;
        }
    }
    if unsafe_surface() != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }
    fixtures()
}

/// Source files allowed to contain the `unsafe` keyword, relative to
/// the workspace root. Everything else under `crates/*/src` must be
/// unsafe-free (and is compiled under `forbid(unsafe_code)` /
/// `deny(unsafe_code)` to match).
const UNSAFE_ALLOWLIST: &[&str] = &["crates/math/src/simd.rs"];

/// Scans the workspace for the `unsafe` keyword outside the sanctioned
/// surface. Line comments are stripped first so prose about safety
/// does not trip the scan; `unsafe_code` (the lint name inside
/// `forbid`/`deny`/`allow` attributes) is not a match because the
/// token boundary check requires a non-identifier character after
/// `unsafe`.
fn unsafe_surface() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for crate_dir in std::fs::read_dir(root.join("crates"))
        .into_iter()
        .flatten()
        .filter_map(std::result::Result::ok)
    {
        collect_rs_files(&crate_dir.path().join("src"), &mut files);
    }
    files.sort();

    let mut violations = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if UNSAFE_ALLOWLIST.contains(&rel.as_str()) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        for (lineno, line) in text.lines().enumerate() {
            let code = line.split("//").next().unwrap_or(line);
            if has_unsafe_token(code) {
                eprintln!(
                    "xtask lint: `unsafe` outside the sanctioned surface: {rel}:{}",
                    lineno + 1
                );
                violations += 1;
            }
        }
    }
    if violations == 0 {
        println!(
            "unsafe surface ok: {} files scanned, unsafe confined to {:?}",
            files.len(),
            UNSAFE_ALLOWLIST
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Whether `code` contains `unsafe` as a standalone token (not part of
/// a longer identifier such as `unsafe_code`).
fn has_unsafe_token(code: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut rest = code;
    while let Some(pos) = rest.find("unsafe") {
        let before_ok = pos == 0 || !rest[..pos].chars().next_back().is_some_and(ident);
        let after = &rest[pos + "unsafe".len()..];
        let after_ok = !after.chars().next().is_some_and(ident);
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + "unsafe".len()..];
    }
    false
}

/// Recursively collects `.rs` files under `dir` (missing dirs are fine).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(std::result::Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn fixtures() -> ExitCode {
    let root = workspace_root();
    if !cargo(&["build", "-q", "-p", "ufc-verify", "--bin", "ufc-lint"]) {
        eprintln!("xtask fixtures: building ufc-lint failed");
        return ExitCode::FAILURE;
    }
    let lint_bin = root.join("target/debug/ufc-lint");
    let dir = root.join("crates/verify/tests/fixtures");
    let mut names: Vec<String> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(std::result::Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".trace") || n.ends_with(".stream"))
            .collect(),
        Err(e) => {
            eprintln!("xtask fixtures: reading {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    names.sort();

    let mut failed = 0usize;
    for name in &names {
        // Clean fixtures must verify clean; seeded fixtures must
        // produce at least one diagnostic. The transfer fixtures are
        // target-gated: clean by default, flagged under `--target ufc`.
        // The noise fixtures (and the noise-clean pipeline) run under
        // `--noise` — their violations only exist to the noise pass.
        let target_ufc = name.contains("on_unified") || name == "clean_composed.trace";
        let noise = name.contains("noise");
        let expect_clean = name.starts_with("clean") && !target_ufc;
        let mut cmd = Command::new(&lint_bin);
        cmd.current_dir(&dir).arg("--json");
        if target_ufc {
            cmd.args(["--target", "ufc"]);
        }
        if noise {
            cmd.arg("--noise");
        }
        let out = match cmd.arg(name).output() {
            Ok(out) => out,
            Err(e) => {
                eprintln!("xtask fixtures: running ufc-lint on {name}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let stdout = String::from_utf8_lossy(&out.stdout);
        let found = stdout.contains("\"code\":\"");
        let ok = if expect_clean { !found } else { found };
        println!(
            "{} {name}{}",
            if ok { "ok  " } else { "FAIL" },
            if target_ufc { " (--target ufc)" } else { "" }
        );
        if !ok {
            failed += 1;
            eprintln!(
                "  expected {}, ufc-lint said:\n{stdout}",
                if expect_clean { "clean" } else { "diagnostics" }
            );
        }
    }
    println!("{} fixtures, {failed} failed", names.len());
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Builds `ufc-profile` in release mode, profiles the committed
/// hybrid-kNN trace fixture, and checks that the Perfetto export is
/// valid JSON carrying at least one complete ("X") slice — the same
/// contract the CI profile-smoke job enforces.
fn profile_smoke() -> ExitCode {
    let root = workspace_root();
    if !cargo(&[
        "build",
        "-q",
        "--release",
        "-p",
        "ufc-core",
        "--bin",
        "ufc-profile",
    ]) {
        eprintln!("xtask profile-smoke: building ufc-profile failed");
        return ExitCode::FAILURE;
    }
    let fixture = root.join("crates/core/tests/fixtures/hybrid_knn_small.trace");
    let out_dir = root.join("target/profile-smoke");
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("xtask profile-smoke: {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let perfetto = out_dir.join("hybrid_knn_small.perfetto.json");
    let summary = out_dir.join("hybrid_knn_small.summary.json");
    let bin = root.join("target/release/ufc-profile");
    println!(
        "+ {} {} --perfetto {} --json {}",
        bin.display(),
        fixture.display(),
        perfetto.display(),
        summary.display()
    );
    let status = Command::new(&bin)
        .arg(&fixture)
        .arg("--perfetto")
        .arg(&perfetto)
        .arg("--json")
        .arg(&summary)
        .status();
    if !status.map(|s| s.success()).unwrap_or(false) {
        eprintln!("xtask profile-smoke: ufc-profile failed");
        return ExitCode::FAILURE;
    }
    let text = match std::fs::read_to_string(&perfetto) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask profile-smoke: {}: {e}", perfetto.display());
            return ExitCode::FAILURE;
        }
    };
    let trace = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask profile-smoke: Perfetto file is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let slices = trace
        .get("traceEvents")
        .and_then(serde::Value::as_array)
        .map(|events| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(serde::Value::as_str) == Some("X"))
                .count()
        })
        .unwrap_or(0);
    if slices == 0 {
        eprintln!("xtask profile-smoke: Perfetto file has no slices");
        return ExitCode::FAILURE;
    }
    println!(
        "profile-smoke ok: {slices} slices in {}",
        perfetto.display()
    );
    ExitCode::SUCCESS
}

/// Builds `ufc-profile` in release mode, runs the committed hybrid-kNN
/// fixture with the host recorder enabled (`--host`), and validates
/// all three runtime-tracing exports — the same contract the CI
/// trace-smoke job enforces: the merged Perfetto trace parses and
/// carries host-process slices plus track-name metadata, every JSONL
/// span/gauge line parses as JSON, and the JSON summary contains the
/// `host` metrics block.
fn trace_smoke() -> ExitCode {
    let root = workspace_root();
    if !cargo(&[
        "build",
        "-q",
        "--release",
        "-p",
        "ufc-core",
        "--bin",
        "ufc-profile",
    ]) {
        eprintln!("xtask trace-smoke: building ufc-profile failed");
        return ExitCode::FAILURE;
    }
    let fixture = root.join("crates/core/tests/fixtures/hybrid_knn_small.trace");
    let out_dir = root.join("target/trace-smoke");
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("xtask trace-smoke: {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let perfetto = out_dir.join("hybrid_knn_small.merged.perfetto.json");
    let jsonl = out_dir.join("hybrid_knn_small.spans.jsonl");
    let summary = out_dir.join("hybrid_knn_small.host.summary.json");
    let bin = root.join("target/release/ufc-profile");
    println!(
        "+ {} {} --host --perfetto {} --jsonl {} --json {}",
        bin.display(),
        fixture.display(),
        perfetto.display(),
        jsonl.display(),
        summary.display()
    );
    let status = Command::new(&bin)
        .arg(&fixture)
        .arg("--host")
        .arg("--perfetto")
        .arg(&perfetto)
        .arg("--jsonl")
        .arg(&jsonl)
        .arg("--json")
        .arg(&summary)
        .status();
    if !status.map(|s| s.success()).unwrap_or(false) {
        eprintln!("xtask trace-smoke: ufc-profile --host failed");
        return ExitCode::FAILURE;
    }

    // 1. Merged Perfetto: must parse, and the host process
    //    (HOST_PID) must contribute both slices and named tracks.
    let text = match std::fs::read_to_string(&perfetto) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask trace-smoke: {}: {e}", perfetto.display());
            return ExitCode::FAILURE;
        }
    };
    let trace: serde::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask trace-smoke: Perfetto file is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = trace
        .get("traceEvents")
        .and_then(serde::Value::as_array)
        .map(<[serde::Value]>::to_vec)
        .unwrap_or_default();
    let on_host = |e: &serde::Value| {
        e.get("pid").and_then(serde::Value::as_u64) == Some(ufc_telemetry::perfetto::HOST_PID)
    };
    let host_slices = events
        .iter()
        .filter(|e| e.get("ph").and_then(serde::Value::as_str) == Some("X") && on_host(e))
        .count();
    if host_slices == 0 {
        eprintln!("xtask trace-smoke: merged Perfetto file has no host slices");
        return ExitCode::FAILURE;
    }
    let host_tracks = events
        .iter()
        .filter(|e| {
            e.get("name").and_then(serde::Value::as_str) == Some("thread_name") && on_host(e)
        })
        .count();
    if host_tracks == 0 {
        eprintln!("xtask trace-smoke: merged Perfetto file has no host thread_name metadata");
        return ExitCode::FAILURE;
    }

    // 2. JSONL: every line parses, and both event kinds appear.
    let lines = match std::fs::read_to_string(&jsonl) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask trace-smoke: {}: {e}", jsonl.display());
            return ExitCode::FAILURE;
        }
    };
    let mut span_lines = 0usize;
    let mut gauge_lines = 0usize;
    for (i, line) in lines.lines().enumerate() {
        let v: serde::Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!(
                    "xtask trace-smoke: JSONL line {} does not parse: {e}",
                    i + 1
                );
                return ExitCode::FAILURE;
            }
        };
        match v.get("event").and_then(serde::Value::as_str) {
            Some("span") => span_lines += 1,
            Some("gauge") => gauge_lines += 1,
            other => {
                eprintln!(
                    "xtask trace-smoke: JSONL line {} has unknown event {other:?}",
                    i + 1
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if span_lines == 0 || gauge_lines == 0 {
        eprintln!(
            "xtask trace-smoke: JSONL export incomplete \
             ({span_lines} span lines, {gauge_lines} gauge lines)"
        );
        return ExitCode::FAILURE;
    }

    // 3. JSON summary: the host metrics block must be present.
    let text = match std::fs::read_to_string(&summary) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask trace-smoke: {}: {e}", summary.display());
            return ExitCode::FAILURE;
        }
    };
    let report: serde::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask trace-smoke: JSON summary is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(host) = report.get("host") else {
        eprintln!("xtask trace-smoke: JSON summary has no `host` block");
        return ExitCode::FAILURE;
    };
    if host
        .get("metrics")
        .and_then(|m| m.get("histograms"))
        .is_none()
    {
        eprintln!("xtask trace-smoke: JSON summary host block has no metrics histograms");
        return ExitCode::FAILURE;
    }
    println!(
        "trace-smoke ok: {host_slices} host slices / {host_tracks} host tracks, \
         {span_lines} span + {gauge_lines} gauge JSONL lines"
    );
    ExitCode::SUCCESS
}

/// Builds the release `bench_math` harness, runs it writing
/// `BENCH_math.json` at the workspace root, and validates the report
/// shape — the same contract the CI bench-smoke job enforces.
fn bench_math(quick: bool) -> ExitCode {
    let root = workspace_root();
    if !cargo(&[
        "build",
        "-q",
        "--release",
        "-p",
        "ufc-bench",
        "--bin",
        "bench_math",
    ]) {
        eprintln!("xtask bench-math: building bench_math failed");
        return ExitCode::FAILURE;
    }
    let out = root.join("BENCH_math.json");
    let bin = root.join("target/release/bench_math");
    let mut cmd = Command::new(&bin);
    cmd.arg("--out").arg(&out);
    if quick {
        cmd.arg("--quick");
    }
    println!(
        "+ {} --out {}{}",
        bin.display(),
        out.display(),
        if quick { " --quick" } else { "" }
    );
    if !cmd.status().map(|s| s.success()).unwrap_or(false) {
        eprintln!("xtask bench-math: bench_math failed");
        return ExitCode::FAILURE;
    }
    let text = match std::fs::read_to_string(&out) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask bench-math: {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    };
    let report: serde::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask bench-math: report is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if report.get("experiment").and_then(serde::Value::as_str) != Some("bench_math") {
        eprintln!("xtask bench-math: report is missing `experiment: \"bench_math\"`");
        return ExitCode::FAILURE;
    }
    let speedup = report
        .get("headline")
        .and_then(|h| h.get("speedup"))
        .and_then(serde::Value::as_f64);
    let Some(speedup) = speedup else {
        eprintln!("xtask bench-math: report headline has no numeric `speedup`");
        return ExitCode::FAILURE;
    };
    let tables = report
        .get("tables")
        .and_then(serde::Value::as_array)
        .map(<[serde::Value]>::to_vec)
        .unwrap_or_default();
    if tables.is_empty() {
        eprintln!("xtask bench-math: report has no tables");
        return ExitCode::FAILURE;
    }
    // The kernel-dispatch contract: the radix-2 vs radix-4 vs SIMD
    // comparison table must be present and populated.
    let radix_table = tables
        .iter()
        .find(|t| t.get("name").and_then(serde::Value::as_str) == Some("ntt_radix"));
    let radix_rows = radix_table
        .and_then(|t| t.get("rows"))
        .and_then(serde::Value::as_array)
        .map(<[serde::Value]>::len)
        .unwrap_or(0);
    if radix_rows == 0 {
        eprintln!("xtask bench-math: report has no populated `ntt_radix` table");
        return ExitCode::FAILURE;
    }
    // SIMD-lane coverage: on AVX2 hosts the report must carry the simd
    // NTT columns and the element-wise lane-kernel table. Non-AVX2
    // hosts still run the portable lanes, but the committed report is
    // only held to the vector contract where vectors exist.
    let avx2 = report
        .get("host")
        .and_then(|h| h.get("avx2"))
        .and_then(serde::Value::as_bool);
    let Some(avx2) = avx2 else {
        eprintln!("xtask bench-math: report host has no boolean `avx2` field");
        return ExitCode::FAILURE;
    };
    // Host-topology contract: the report must say what it ran on —
    // core count, the NTT kernel auto-selection landed on, and the
    // limb-parallel worker count — so committed numbers are
    // interpretable across machines.
    let host = report.get("host");
    for field in ["available_parallelism", "par_threads"] {
        if host
            .and_then(|h| h.get(field))
            .and_then(serde::Value::as_u64)
            .is_none()
        {
            eprintln!("xtask bench-math: report host has no numeric `{field}` field");
            return ExitCode::FAILURE;
        }
    }
    if host
        .and_then(|h| h.get("ntt_kernel"))
        .and_then(serde::Value::as_str)
        .is_none()
    {
        eprintln!("xtask bench-math: report host has no string `ntt_kernel` field");
        return ExitCode::FAILURE;
    }
    let overhead = host
        .and_then(|h| h.get("trace_overhead_pct"))
        .and_then(serde::Value::as_f64);
    let Some(overhead) = overhead else {
        eprintln!("xtask bench-math: report host has no numeric `trace_overhead_pct` field");
        return ExitCode::FAILURE;
    };
    if overhead >= 2.0 {
        eprintln!(
            "xtask bench-math: disabled-recorder tracing overhead {overhead:.2}% \
             breaches the 2% budget"
        );
        return ExitCode::FAILURE;
    }
    if avx2 {
        let has_simd_col = radix_table
            .and_then(|t| t.get("columns"))
            .and_then(serde::Value::as_array)
            .is_some_and(|cols| cols.iter().any(|c| c.as_str() == Some("forward_simd_ns")));
        if !has_simd_col {
            eprintln!(
                "xtask bench-math: AVX2 host but `ntt_radix` has no `forward_simd_ns` column"
            );
            return ExitCode::FAILURE;
        }
        let ew_rows = tables
            .iter()
            .find(|t| t.get("name").and_then(serde::Value::as_str) == Some("ew_kernels"))
            .and_then(|t| t.get("rows"))
            .and_then(serde::Value::as_array)
            .map(<[serde::Value]>::len)
            .unwrap_or(0);
        if ew_rows == 0 {
            eprintln!("xtask bench-math: AVX2 host but no populated `ew_kernels` table");
            return ExitCode::FAILURE;
        }
    }
    // Per-op dispatch contract: the report must carry the dispatch
    // table (which backend each element-wise op routed to, and
    // whether the route was static or measured) on every host — the
    // portable-only route is a dispatch decision too.
    let table_rows = |name: &str| -> Vec<serde::Value> {
        tables
            .iter()
            .find(|t| t.get("name").and_then(serde::Value::as_str) == Some(name))
            .and_then(|t| t.get("rows"))
            .and_then(serde::Value::as_array)
            .map(<[serde::Value]>::to_vec)
            .unwrap_or_default()
    };
    let col_index = |name: &str, col: &str| -> Option<usize> {
        tables
            .iter()
            .find(|t| t.get("name").and_then(serde::Value::as_str) == Some(name))
            .and_then(|t| t.get("columns"))
            .and_then(serde::Value::as_array)
            .and_then(|cols| cols.iter().position(|c| c.as_str() == Some(col)))
    };
    if table_rows("ew_dispatch").is_empty() {
        eprintln!("xtask bench-math: report has no populated `ew_dispatch` table");
        return ExitCode::FAILURE;
    }
    // Routing regression gate: dispatch guarantees SIMD (or its
    // portable fallback) never loses to the scalar loop, so every
    // element-wise row must hold speedup >= 1.0 on committed full
    // runs. --quick smoke runs keep a jitter allowance: their few
    // repetitions make equal-code-path ratios noisy.
    let ew_floor = if quick { 0.90 } else { 1.0 };
    let ifma = report
        .get("host")
        .and_then(|h| h.get("ifma"))
        .and_then(serde::Value::as_bool)
        .unwrap_or(false);
    let (Some(k_col), Some(s_col)) = (
        col_index("ew_kernels", "kernel"),
        col_index("ew_kernels", "speedup"),
    ) else {
        eprintln!("xtask bench-math: `ew_kernels` lacks kernel/speedup columns");
        return ExitCode::FAILURE;
    };
    let mut best_hadamard = 0.0f64;
    let mut best_mac = 0.0f64;
    for row in table_rows("ew_kernels") {
        let cells = row
            .as_array()
            .map(<[serde::Value]>::to_vec)
            .unwrap_or_default();
        let kernel = cells
            .get(k_col)
            .and_then(serde::Value::as_str)
            .unwrap_or("");
        let Some(sp) = cells.get(s_col).and_then(serde::Value::as_f64) else {
            eprintln!("xtask bench-math: `ew_kernels` row has no numeric speedup");
            return ExitCode::FAILURE;
        };
        if sp < ew_floor {
            eprintln!(
                "xtask bench-math: element-wise `{kernel}` dispatched at {sp:.2}x vs \
                 scalar — below the {ew_floor:.2} routing floor"
            );
            return ExitCode::FAILURE;
        }
        match kernel {
            "hadamard" => best_hadamard = best_hadamard.max(sp),
            "mac" => best_mac = best_mac.max(sp),
            _ => {}
        }
    }
    // Vector-multiply contract: with an IFMA-capable host the 50-bit
    // rows must show a real hadamard/mac win, not a dispatch no-op.
    if !quick && ifma && (best_hadamard < 1.3 || best_mac < 1.3) {
        eprintln!(
            "xtask bench-math: IFMA host but best hadamard {best_hadamard:.2}x / \
             mac {best_mac:.2}x below the 1.3x vector-multiply gate"
        );
        return ExitCode::FAILURE;
    }
    // Work-stealing contract: multi-core hosts must report the
    // op-level scaling table alongside the limb-level one.
    let cores = report
        .get("host")
        .and_then(|h| h.get("available_parallelism"))
        .and_then(serde::Value::as_u64)
        .unwrap_or(1);
    if cores > 1 && table_rows("op_scaling").is_empty() {
        eprintln!(
            "xtask bench-math: {cores}-core host but no populated `op_scaling` \
             work-stealing table"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench-math ok: {} tables ({radix_rows} ntt_radix rows, {} ew rows, best \
         hadamard {best_hadamard:.2}x / mac {best_mac:.2}x), headline speedup \
         {speedup:.2}x in {}",
        tables.len(),
        table_rows("ew_kernels").len(),
        out.display()
    );
    ExitCode::SUCCESS
}

/// Builds the release `bench_switch` harness, runs it writing
/// `BENCH_switch.json` at the workspace root, and validates the report
/// shape — the same contract the CI bench-switch smoke job enforces.
fn bench_switch(quick: bool) -> ExitCode {
    let root = workspace_root();
    if !cargo(&[
        "build",
        "-q",
        "--release",
        "-p",
        "ufc-bench",
        "--bin",
        "bench_switch",
    ]) {
        eprintln!("xtask bench-switch: building bench_switch failed");
        return ExitCode::FAILURE;
    }
    let out = root.join("BENCH_switch.json");
    let bin = root.join("target/release/bench_switch");
    let mut cmd = Command::new(&bin);
    cmd.arg("--out").arg(&out);
    if quick {
        cmd.arg("--quick");
    }
    println!(
        "+ {} --out {}{}",
        bin.display(),
        out.display(),
        if quick { " --quick" } else { "" }
    );
    if !cmd.status().map(|s| s.success()).unwrap_or(false) {
        eprintln!("xtask bench-switch: bench_switch failed");
        return ExitCode::FAILURE;
    }
    let text = match std::fs::read_to_string(&out) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask bench-switch: {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    };
    let report: serde::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask bench-switch: report is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if report.get("experiment").and_then(serde::Value::as_str) != Some("bench_switch") {
        eprintln!("xtask bench-switch: report is missing `experiment: \"bench_switch\"`");
        return ExitCode::FAILURE;
    }
    // Both boundary directions must report, and every row must carry
    // the batch-size axis — a report without it cannot answer the
    // question the fast path exists for (how throughput scales with
    // the number of switched ciphertexts).
    let tables = report
        .get("tables")
        .and_then(serde::Value::as_array)
        .map(<[serde::Value]>::to_vec)
        .unwrap_or_default();
    for name in ["extract", "repack"] {
        let table = tables
            .iter()
            .find(|t| t.get("name").and_then(serde::Value::as_str) == Some(name));
        let Some(table) = table else {
            eprintln!("xtask bench-switch: report has no `{name}` table");
            return ExitCode::FAILURE;
        };
        let has_batch_col = table
            .get("columns")
            .and_then(serde::Value::as_array)
            .is_some_and(|cols| cols.iter().any(|c| c.as_str() == Some("batch")));
        if !has_batch_col {
            eprintln!("xtask bench-switch: `{name}` table has no `batch` column");
            return ExitCode::FAILURE;
        }
        let rows = table
            .get("rows")
            .and_then(serde::Value::as_array)
            .map(<[serde::Value]>::len)
            .unwrap_or(0);
        if rows == 0 {
            eprintln!("xtask bench-switch: report has no populated `{name}` table");
            return ExitCode::FAILURE;
        }
    }
    // Host-topology contract, same as bench-math: committed numbers
    // must say what they ran on.
    let host = report.get("host");
    for field in ["available_parallelism", "par_threads"] {
        if host
            .and_then(|h| h.get(field))
            .and_then(serde::Value::as_u64)
            .is_none()
        {
            eprintln!("xtask bench-switch: report host has no numeric `{field}` field");
            return ExitCode::FAILURE;
        }
    }
    if host
        .and_then(|h| h.get("ntt_kernel"))
        .and_then(serde::Value::as_str)
        .is_none()
    {
        eprintln!("xtask bench-switch: report host has no string `ntt_kernel` field");
        return ExitCode::FAILURE;
    }
    // Headline: the BSGS key-count claim is structural (independent of
    // runner noise), so it gates even --quick runs.
    let headline = report.get("headline");
    let bsgs_keys = headline
        .and_then(|h| h.get("bsgs_rotation_keys"))
        .and_then(serde::Value::as_u64);
    let naive_keys = headline
        .and_then(|h| h.get("naive_rotation_keys"))
        .and_then(serde::Value::as_u64);
    let (Some(bsgs_keys), Some(naive_keys)) = (bsgs_keys, naive_keys) else {
        eprintln!("xtask bench-switch: report headline has no rotation-key counts");
        return ExitCode::FAILURE;
    };
    if bsgs_keys >= naive_keys {
        eprintln!(
            "xtask bench-switch: BSGS holds {bsgs_keys} rotation keys, not fewer than \
             the naive path's {naive_keys}"
        );
        return ExitCode::FAILURE;
    }
    let speedup = headline
        .and_then(|h| h.get("extract_speedup"))
        .and_then(serde::Value::as_f64);
    let Some(speedup) = speedup else {
        eprintln!("xtask bench-switch: report headline has no numeric `extract_speedup`");
        return ExitCode::FAILURE;
    };
    // Timing claims only gate full runs: --quick on a shared CI runner
    // is smoke (does the harness run end to end), not a perf contract.
    if !quick && speedup < 1.0 {
        eprintln!(
            "xtask bench-switch: batched extraction headline speedup {speedup:.2}x \
             is below the per-index path on a full run"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench-switch ok: {} tables, extract headline {speedup:.2}x, rotation keys \
         {bsgs_keys} BSGS vs {naive_keys} naive in {}",
        tables.len(),
        out.display()
    );
    ExitCode::SUCCESS
}

/// Builds the release `bench_sha256` harness, runs it writing
/// `BENCH_sha256.json` at the workspace root, and validates the
/// report — including the experiment's acceptance claims: the
/// parallel-prefix circuit must have a strictly shorter bootstrap
/// critical path AND strictly higher PLP utilization than
/// ripple-carry on the same block, and every homomorphic digest must
/// have matched the plaintext reference. All three claims come from
/// deterministic pipelines (circuit generator, compiler, scheduler,
/// seeded host run), so they gate `--quick` smoke runs too.
fn bench_sha256(quick: bool) -> ExitCode {
    let root = workspace_root();
    if !cargo(&[
        "build",
        "-q",
        "--release",
        "-p",
        "ufc-bench",
        "--bin",
        "bench_sha256",
    ]) {
        eprintln!("xtask bench-sha256: building bench_sha256 failed");
        return ExitCode::FAILURE;
    }
    let out = root.join("BENCH_sha256.json");
    let bin = root.join("target/release/bench_sha256");
    let mut cmd = Command::new(&bin);
    cmd.arg("--out").arg(&out);
    if quick {
        cmd.arg("--quick");
    }
    println!(
        "+ {} --out {}{}",
        bin.display(),
        out.display(),
        if quick { " --quick" } else { "" }
    );
    if !cmd.status().map(|s| s.success()).unwrap_or(false) {
        eprintln!("xtask bench-sha256: bench_sha256 failed");
        return ExitCode::FAILURE;
    }
    let text = match std::fs::read_to_string(&out) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask bench-sha256: {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    };
    let report: serde::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask bench-sha256: report is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if report.get("experiment").and_then(serde::Value::as_str) != Some("bench_sha256") {
        eprintln!("xtask bench-sha256: report is missing `experiment: \"bench_sha256\"`");
        return ExitCode::FAILURE;
    }
    // Every layer must report, and every row must carry the adder
    // axis — a table that cannot say which adder produced it cannot
    // answer the depth-vs-gates question the workload exists to
    // measure.
    let tables = report
        .get("tables")
        .and_then(serde::Value::as_array)
        .map(<[serde::Value]>::to_vec)
        .unwrap_or_default();
    for name in ["circuit", "sim", "host"] {
        let table = tables
            .iter()
            .find(|t| t.get("name").and_then(serde::Value::as_str) == Some(name));
        let Some(table) = table else {
            eprintln!("xtask bench-sha256: report has no `{name}` table");
            return ExitCode::FAILURE;
        };
        let has_adder_col = table
            .get("columns")
            .and_then(serde::Value::as_array)
            .is_some_and(|cols| cols.iter().any(|c| c.as_str() == Some("adder")));
        if !has_adder_col {
            eprintln!("xtask bench-sha256: `{name}` table has no `adder` column");
            return ExitCode::FAILURE;
        }
        let rows = table
            .get("rows")
            .and_then(serde::Value::as_array)
            .map(<[serde::Value]>::len)
            .unwrap_or(0);
        if rows < 2 {
            eprintln!(
                "xtask bench-sha256: `{name}` table has {rows} rows, needs both adder variants"
            );
            return ExitCode::FAILURE;
        }
    }
    // Host-topology contract, same as the other bench reports.
    let host = report.get("host");
    for field in ["available_parallelism", "par_threads"] {
        if host
            .and_then(|h| h.get(field))
            .and_then(serde::Value::as_u64)
            .is_none()
        {
            eprintln!("xtask bench-sha256: report host has no numeric `{field}` field");
            return ExitCode::FAILURE;
        }
    }
    if host
        .and_then(|h| h.get("ntt_kernel"))
        .and_then(serde::Value::as_str)
        .is_none()
    {
        eprintln!("xtask bench-sha256: report host has no string `ntt_kernel` field");
        return ExitCode::FAILURE;
    }
    // The acceptance claims. All deterministic, so no --quick waiver.
    let headline = report.get("headline");
    let field_u64 = |name: &str| {
        headline
            .and_then(|h| h.get(name))
            .and_then(serde::Value::as_u64)
    };
    let field_f64 = |name: &str| {
        headline
            .and_then(|h| h.get(name))
            .and_then(serde::Value::as_f64)
    };
    let (Some(ripple_depth), Some(prefix_depth)) =
        (field_u64("ripple_depth"), field_u64("prefix_depth"))
    else {
        eprintln!("xtask bench-sha256: report headline has no depth pair");
        return ExitCode::FAILURE;
    };
    if prefix_depth >= ripple_depth {
        eprintln!(
            "xtask bench-sha256: prefix critical path ({prefix_depth} levels) is not \
             strictly shorter than ripple's ({ripple_depth})"
        );
        return ExitCode::FAILURE;
    }
    let (Some(ripple_util), Some(prefix_util)) =
        (field_f64("ripple_plp_util"), field_f64("prefix_plp_util"))
    else {
        eprintln!("xtask bench-sha256: report headline has no PLP utilization pair");
        return ExitCode::FAILURE;
    };
    if prefix_util <= ripple_util {
        eprintln!(
            "xtask bench-sha256: prefix PLP utilization ({prefix_util:.4}) is not \
             strictly higher than ripple's ({ripple_util:.4})"
        );
        return ExitCode::FAILURE;
    }
    if headline
        .and_then(|h| h.get("hom_ok"))
        .and_then(serde::Value::as_bool)
        != Some(true)
    {
        eprintln!("xtask bench-sha256: homomorphic digests did not match the reference");
        return ExitCode::FAILURE;
    }
    println!(
        "bench-sha256 ok: {} tables, critical path {prefix_depth} vs {ripple_depth} levels, \
         PLP util {prefix_util:.3} vs {ripple_util:.3}, digests match in {}",
        tables.len(),
        out.display()
    );
    ExitCode::SUCCESS
}
