//! # ufc — Unified FHE aCcelerator (UFC, MICRO 2024) reproduction
//!
//! Umbrella crate re-exporting the whole workspace: arithmetic
//! substrate, CKKS and TFHE schemes, scheme switching, the trace/ISA
//! layers, the compiler, the cycle simulator with UFC/SHARP/Strix
//! machine models, and workload generators.
//!
//! Start with [`ufc_core::Ufc`] for the accelerator façade, or see
//! `examples/quickstart.rs`.
//!
//! ```
//! use ufc::core::Ufc;
//!
//! let ufc = Ufc::paper_default();
//! let trace = ufc::workloads::tfhe_apps::pbs_throughput("T1", 16);
//! let report = ufc.run(&trace);
//! assert!(report.cycles > 0 && report.energy_j > 0.0);
//! ```

pub use ufc_ckks as ckks;
pub use ufc_compiler as compiler;
pub use ufc_core as core;
pub use ufc_isa as isa;
pub use ufc_math as math;
pub use ufc_sim as sim;
pub use ufc_switch as switch;
pub use ufc_tfhe as tfhe;
pub use ufc_workloads as workloads;
