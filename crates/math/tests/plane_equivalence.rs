//! Equivalence suite for the flat RNS data plane and the Shoup/Harvey
//! NTT kernels.
//!
//! Three claims are exercised here, each a load-bearing invariant of
//! the zero-copy refactor:
//!
//! 1. every [`RnsPlane`] operation is bit-identical to running the
//!    corresponding [`Poly`] kernel limb by limb;
//! 2. the lazy Harvey butterflies round-trip (and stay fully reduced)
//!    for *every* prime [`generate_ntt_primes`] can emit, across ring
//!    dimensions and modulus widths;
//! 3. limb parallelism is invisible: results are bit-identical no
//!    matter how many worker threads `par_limbs` fans out to.

use proptest::prelude::*;
use ufc_math::ntt::NttContext;
use ufc_math::par::set_max_threads;
use ufc_math::plane::RnsPlane;
use ufc_math::poly::{Form, Poly};
use ufc_math::prime::generate_ntt_primes;

/// Deterministic splitmix-style generator for bulk test data.
fn stream(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed | 1;
    move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let z = x ^ (x >> 31);
        z.wrapping_mul(0x9E3779B97F4A7C15)
    }
}

fn random_plane(seed: u64, n: usize, moduli: &[u64], form: Form) -> RnsPlane {
    let mut next = stream(seed);
    let mut data = Vec::with_capacity(n * moduli.len());
    for &q in moduli {
        data.extend((0..n).map(|_| next() % q));
    }
    RnsPlane::from_flat_unchecked(data, moduli, form)
}

/// The per-limb [`Poly`] images of a plane.
fn limb_polys(p: &RnsPlane) -> Vec<Poly> {
    (0..p.limb_count()).map(|i| p.limb_poly(i)).collect()
}

fn assert_limbs_match(plane: &RnsPlane, polys: &[Poly], what: &str) {
    for (i, poly) in polys.iter().enumerate() {
        assert_eq!(plane.limb(i), poly.coeffs(), "{what}: limb {i} diverged");
    }
}

// ----------------------------------------- plane vs per-limb Poly ops

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Element-wise plane kernels (Barrett/Shoup) against the scalar
    /// Poly kernels, limb by limb, over a 3-limb basis.
    #[test]
    fn prop_elementwise_plane_ops_match_poly(seed in any::<u64>()) {
        let n = 32;
        let moduli = generate_ntt_primes(n, 40, 3);
        prop_assert_eq!(moduli.len(), 3);
        let a = random_plane(seed, n, &moduli, Form::Coeff);
        let b = random_plane(seed.wrapping_add(1), n, &moduli, Form::Coeff);
        let (pa, pb) = (limb_polys(&a), limb_polys(&b));

        let mut sum = a.clone();
        sum.add_assign(&b);
        let expect: Vec<Poly> = pa.iter().zip(&pb).map(|(x, y)| x.add(y)).collect();
        assert_limbs_match(&sum, &expect, "add");

        let mut diff = a.clone();
        diff.sub_assign(&b);
        let expect: Vec<Poly> = pa.iter().zip(&pb).map(|(x, y)| x.sub(y)).collect();
        assert_limbs_match(&diff, &expect, "sub");

        let mut neg = a.clone();
        neg.neg_assign();
        let expect: Vec<Poly> = pa.iter().map(Poly::neg).collect();
        assert_limbs_match(&neg, &expect, "neg");

        let scalars: Vec<u64> = {
            let mut next = stream(seed.wrapping_add(2));
            moduli.iter().map(|&q| next() % q).collect()
        };
        let mut scaled = a.clone();
        scaled.scale_limbs_assign(&scalars);
        let expect: Vec<Poly> = pa
            .iter()
            .zip(&scalars)
            .map(|(x, &s)| x.scale(s))
            .collect();
        assert_limbs_match(&scaled, &expect, "scale_limbs");

        // Hadamard and MAC are evaluation-form-only on the plane.
        let ea = random_plane(seed.wrapping_add(3), n, &moduli, Form::Eval);
        let eb = random_plane(seed.wrapping_add(4), n, &moduli, Form::Eval);
        let (pea, peb) = (limb_polys(&ea), limb_polys(&eb));

        let mut had = ea.clone();
        had.hadamard_assign(&eb);
        let expect: Vec<Poly> = pea.iter().zip(&peb).map(|(x, y)| x.hadamard(y)).collect();
        assert_limbs_match(&had, &expect, "hadamard");

        let mut mac = ea.clone();
        mac.mac_assign(&eb, &had);
        let expect: Vec<Poly> = pea
            .iter()
            .zip(peb.iter().zip(&expect))
            .map(|(acc, (x, y))| {
                let mut acc = acc.clone();
                acc.mac_assign(x, y);
                acc
            })
            .collect();
        assert_limbs_match(&mac, &expect, "mac");
    }

    /// Plane automorphisms against the per-limb slice kernels, in both
    /// bases (coefficient scatter and evaluation permutation).
    #[test]
    fn prop_automorphism_plane_matches_poly(seed in any::<u64>(), r in 0usize..16) {
        let n = 32;
        let moduli = generate_ntt_primes(n, 40, 2);
        let k = 2 * r + 1; // Galois exponents are odd mod 2N.
        for form in [Form::Coeff, Form::Eval] {
            let a = random_plane(seed, n, &moduli, form);
            let mut moved = a.clone();
            moved.automorph_assign(k);
            for i in 0..a.limb_count() {
                let p = a.limb_poly(i);
                let expect = match form {
                    Form::Coeff => ufc_math::automorph::apply_coeff(&p, k),
                    Form::Eval => ufc_math::automorph::apply_eval(&p, k),
                };
                prop_assert_eq!(moved.limb(i), expect.coeffs(), "form {:?} limb {}", form, i);
            }
        }
    }

    /// The full plane product chain (forward NTT, Hadamard, inverse)
    /// against `NttContext::negacyclic_mul` run limb by limb.
    #[test]
    fn prop_plane_ntt_mul_matches_poly_path(seed in any::<u64>()) {
        let n = 64;
        let moduli = generate_ntt_primes(n, 45, 3);
        let tables: Vec<NttContext> =
            moduli.iter().map(|&q| NttContext::new(n, q)).collect();
        let refs: Vec<&NttContext> = tables.iter().collect();

        let a = random_plane(seed, n, &moduli, Form::Coeff);
        let b = random_plane(seed.wrapping_add(1), n, &moduli, Form::Coeff);

        let mut prod = a.clone();
        prod.ntt_forward(&refs);
        let mut be = b.clone();
        be.ntt_forward(&refs);
        prod.hadamard_assign(&be);
        prod.ntt_inverse(&refs);
        prop_assert_eq!(prod.form(), Form::Coeff);

        for (i, table) in tables.iter().enumerate() {
            let expect = table.negacyclic_mul(&a.limb_poly(i), &b.limb_poly(i));
            prop_assert_eq!(prod.limb(i), expect.coeffs(), "limb {}", i);
        }
    }

    /// Rescale on the plane against the hand-rolled per-limb formula
    /// `(c_i - c_L) · q_L^{-1} mod q_i` on centered representatives.
    #[test]
    fn prop_rescale_matches_per_limb_formula(seed in any::<u64>()) {
        let n = 32;
        let moduli = generate_ntt_primes(n, 40, 3);
        let a = random_plane(seed, n, &moduli, Form::Coeff);
        let mut dropped = a.clone();
        dropped.rescale_assign();
        prop_assert_eq!(dropped.limb_count(), 2);

        let q_last = moduli[2];
        for (i, &qi) in moduli.iter().enumerate().take(2) {
            let inv = ufc_math::modops::inv_mod(q_last % qi, qi).unwrap();
            for (j, (&got, &c_last)) in
                dropped.limb(i).iter().zip(a.limb(2)).enumerate()
            {
                let c_i = a.limb(i)[j];
                let diff = ufc_math::modops::sub_mod(c_i, c_last % qi, qi);
                let expect = ufc_math::modops::mul_mod(diff, inv, qi);
                prop_assert_eq!(got, expect, "limb {} coeff {}", i, j);
            }
        }
    }
}

// ------------------------------------ Harvey round-trip, every prime

/// Forward/inverse round-trip (and output reduction) for every prime
/// the generator can emit, across ring dimensions and modulus widths —
/// the Shoup tables and lazy-reduction bounds must hold for all of
/// them, not just the benchmark favourites.
#[test]
fn harvey_roundtrip_for_every_generated_prime() {
    let mut checked = 0usize;
    for n in [16usize, 64, 256, 1024] {
        for bits in [17u32, 20, 31, 36, 45, 50, 55, 60, 62] {
            for q in generate_ntt_primes(n, bits, 3) {
                let ctx = NttContext::new(n, q);
                let mut next = stream(q ^ n as u64);
                let original: Vec<u64> = (0..n).map(|_| next() % q).collect();

                let mut buf = original.clone();
                ctx.forward(&mut buf);
                assert!(
                    buf.iter().all(|&c| c < q),
                    "forward output unreduced for q={q} n={n}"
                );
                assert_ne!(buf, original, "forward must not be identity");
                ctx.inverse(&mut buf);
                assert!(
                    buf.iter().all(|&c| c < q),
                    "inverse output unreduced for q={q} n={n}"
                );
                assert_eq!(buf, original, "round-trip failed for q={q} n={n}");

                // The lazy kernels must agree with the seed-faithful
                // textbook chain on the same prime.
                let mut reference = original.clone();
                ctx.forward_reference(&mut reference);
                let mut lazy = original.clone();
                ctx.forward(&mut lazy);
                assert_eq!(lazy, reference, "lazy vs reference for q={q} n={n}");
                checked += 1;
            }
        }
    }
    // 4 dims × 9 widths × up to 3 primes each; a few width/dim combos
    // have fewer than 3 primes in range, but the sweep must stay big.
    assert!(checked > 80, "only {checked} primes exercised");
}

// ------------------------------------------- thread-count invariance

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// An identical op sequence on one worker thread and on four must
    /// produce bit-identical planes. The buffer is sized past the
    /// `par_limbs` serial cutoff so the threaded path really runs.
    #[test]
    fn prop_thread_count_never_changes_results(seed in any::<u64>()) {
        let n = 2048;
        let moduli = generate_ntt_primes(n, 50, 8);
        prop_assert_eq!(moduli.len(), 8);
        let tables: Vec<NttContext> =
            moduli.iter().map(|&q| NttContext::new(n, q)).collect();
        let refs: Vec<&NttContext> = tables.iter().collect();

        let run = |threads: usize| -> RnsPlane {
            let prev = set_max_threads(threads);
            let mut a = random_plane(seed, n, &moduli, Form::Coeff);
            let b = random_plane(seed.wrapping_add(1), n, &moduli, Form::Coeff);
            let mut be = b.clone();
            a.ntt_forward(&refs);
            be.ntt_forward(&refs);
            a.hadamard_assign(&be);
            a.mac_assign(&be, &be);
            a.ntt_inverse(&refs);
            a.automorph_assign(5);
            set_max_threads(prev);
            a
        };

        let serial = run(1);
        let threaded = run(4);
        prop_assert_eq!(serial, threaded);
    }
}
