//! Op-level work-stealing determinism: a trace of independent plane
//! operations fanned out over [`ufc_math::par::par_ops_on`] must
//! produce bit-identical results at every thread count, even though
//! the self-scheduling queue assigns ops to workers
//! nondeterministically.
//!
//! This is the integration-level twin of the `par` unit tests: the
//! ops here are *real* element-wise plane kernels (hadamard, mac,
//! add), so the test also pins that the per-op SIMD dispatch inside
//! each kernel is schedule-independent — routes depend only on the
//! host and the modulus, never on which worker thread runs the op.

use ufc_math::par::{par_ops_on, set_max_threads};
use ufc_math::plane::RnsPlane;
use ufc_math::poly::{Form, Poly};
use ufc_math::prime::generate_ntt_primes;

/// One independent op of the synthetic trace: a plane plus the two
/// operand planes its kernels consume.
struct TraceOp {
    acc: RnsPlane,
    a: RnsPlane,
    b: RnsPlane,
}

fn build_trace(n: usize, moduli: &[u64], ops: usize) -> Vec<TraceOp> {
    (0..ops)
        .map(|i| {
            let mk = |salt: u64| {
                let polys: Vec<Poly> = moduli
                    .iter()
                    .enumerate()
                    .map(|(l, &q)| Poly::pseudorandom(n, q, salt + 97 * i as u64 + l as u64))
                    .collect();
                RnsPlane::from_polys(&polys, Form::Eval)
            };
            TraceOp {
                acc: mk(1),
                a: mk(2),
                b: mk(3),
            }
        })
        .collect()
}

/// Runs the whole trace under `threads` workers and returns the
/// mutated accumulator planes.
fn run_trace(threads: usize, n: usize, moduli: &[u64], ops: usize) -> Vec<RnsPlane> {
    let mut trace = build_trace(n, moduli, ops);
    let prev = set_max_threads(threads);
    par_ops_on(&mut trace, |i, op| {
        // A mixed per-op recipe so adjacent ops cost different
        // amounts — exactly the skew the stealing queue exists for.
        op.acc.hadamard_assign(&op.a);
        op.acc.mac_assign(&op.a, &op.b);
        if i % 2 == 0 {
            op.acc.add_assign(&op.b);
        }
    });
    set_max_threads(prev);
    trace.into_iter().map(|op| op.acc).collect()
}

#[test]
fn trace_results_bit_identical_for_one_and_many_workers() {
    let n = 1 << 10;
    // 50-bit moduli keep every dispatch backend (portable, AVX2
    // limb-split, IFMA) eligible on hosts that have them.
    let moduli = generate_ntt_primes(n, 50, 2);
    let ops = 13;
    let serial = run_trace(1, n, &moduli, ops);
    for threads in [2, 4, 8] {
        let parallel = run_trace(threads, n, &moduli, ops);
        assert_eq!(
            serial, parallel,
            "work-stealing trace diverged between 1 and {threads} workers"
        );
    }
}
