//! Cross-kernel NTT conformance suite.
//!
//! The dispatch layer ([`NttKernel`]) promises that the reference,
//! radix-2, cache-blocked radix-4, SIMD and IFMA kernels are
//! interchangeable: **bit-identical** outputs, not merely congruent
//! ones, for the negacyclic forward/inverse transforms and for full
//! negacyclic products. This suite pins that promise differentially
//! across every generated prime for ring dimensions 2^10 … 2^14, and
//! anchors the whole family to an O(n²) schoolbook oracle at small
//! dimensions. The IFMA generation only exists below 2⁵⁰, so sweeps
//! iterate [`kernels_for`] — every generation the modulus supports —
//! rather than `NttKernel::ALL`.
//!
//! Every test selects kernels explicitly (`try_new_with_kernel`,
//! `forward_with`, `with_kernel`, `ntt_forward_with`), never through
//! the ambient `UFC_NTT_KERNEL` environment, so the suite passes
//! unchanged under each leg of the CI kernel matrix — including the
//! forced-`ifma` leg, whose ambient selection would reject this
//! suite's 59-bit primes outright.

use proptest::prelude::*;
use ufc_math::modops::{
    add_mod, ifma_modulus_ok, mul_mod, mul_shoup, mul_shoup_lazy, reduce_4q, shoup_precompute,
    sub_mod,
};
use ufc_math::ntt::{NttContext, NttKernel};
use ufc_math::plane::RnsPlane;
use ufc_math::poly::{Form, Poly};
use ufc_math::prime::{generate_ntt_prime, generate_ntt_primes};
use ufc_math::simd;
use ufc_math::simd::{mul_mod_barrett52, mul_mod_limbsplit, EwBackend};

/// Ring dimensions covered by the differential sweeps. 2^13 and 2^14
/// exercise the genuinely blocked radix-4 schedule (dimension above
/// `RADIX4_BLOCK`); the smaller sizes exercise its radix-2 fallback.
const LOG_DIMS: [usize; 5] = [10, 11, 12, 13, 14];

/// Prime widths sampled per dimension. 59 bits stresses the lazy
/// (< 4q < 2^61) headroom of the Harvey butterflies; 50 bits sits at
/// the top of the IFMA window (all five generations run); 30 bits
/// gives a completely different twiddle landscape.
const PRIME_BITS: [u32; 4] = [30, 45, 50, 59];

/// Primes generated per (dimension, width) pair.
const PRIMES_PER_BITS: usize = 2;

/// Every kernel generation that can run over modulus `q` — `ALL`
/// minus IFMA when the modulus is at or above 2⁵⁰.
fn kernels_for(q: u64) -> Vec<NttKernel> {
    NttKernel::ALL
        .into_iter()
        .filter(|k| k.supports_modulus(q))
        .collect()
}

/// Every context the sweep runs over: each generated prime at each
/// dimension. Construction pins the reference kernel so the suite is
/// immune to the ambient `UFC_NTT_KERNEL`; tests then pick kernels
/// explicitly.
fn contexts_for(log_n: usize) -> Vec<NttContext> {
    let n = 1 << log_n;
    PRIME_BITS
        .iter()
        .flat_map(|&bits| generate_ntt_primes(n, bits, PRIMES_PER_BITS))
        .map(|q| NttContext::try_new_with_kernel(n, q, NttKernel::Reference).unwrap())
        .collect()
}

/// O(n²) schoolbook negacyclic product, the ground-truth oracle:
/// `c_k = Σ_{i+j≡k} ± a_i·b_j` with a sign flip on wrap-around.
fn schoolbook_negacyclic(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    let n = a.len();
    let mut c = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let p = mul_mod(ai, bj, q);
            let k = (i + j) % n;
            if i + j < n {
                c[k] = (c[k] + p) % q;
            } else {
                // X^n = -1: wrapped terms enter with a minus sign.
                c[k] = (c[k] + q - p) % q;
            }
        }
    }
    c
}

#[test]
fn forward_bit_identical_across_kernels() {
    for log_n in LOG_DIMS {
        for ctx in contexts_for(log_n) {
            let n = ctx.dim();
            let q = ctx.modulus();
            let kernels = kernels_for(q);
            let data = Poly::pseudorandom(n, q, 0xF0F0 ^ (log_n as u64)).into_coeffs();
            let outputs: Vec<Vec<u64>> = kernels
                .iter()
                .map(|&k| {
                    let mut buf = data.clone();
                    ctx.forward_with(k, &mut buf);
                    buf
                })
                .collect();
            for (k, out) in kernels.iter().zip(&outputs) {
                assert_eq!(
                    *out, outputs[0],
                    "forward {k} diverged from reference at n=2^{log_n}, q={q}"
                );
            }
        }
    }
}

#[test]
fn inverse_bit_identical_across_kernels_and_roundtrips() {
    for log_n in LOG_DIMS {
        for ctx in contexts_for(log_n) {
            let n = ctx.dim();
            let q = ctx.modulus();
            let coeffs = Poly::pseudorandom(n, q, 0xBEEF ^ (log_n as u64)).into_coeffs();
            // A genuine evaluation-form vector (any reduced vector
            // would do, but a real one also pins the round trip).
            let mut eval = coeffs.clone();
            ctx.forward_with(NttKernel::Reference, &mut eval);
            let kernels = kernels_for(q);
            let outputs: Vec<Vec<u64>> = kernels
                .iter()
                .map(|&k| {
                    let mut buf = eval.clone();
                    ctx.inverse_with(k, &mut buf);
                    buf
                })
                .collect();
            for (k, out) in kernels.iter().zip(&outputs) {
                assert_eq!(
                    *out, outputs[0],
                    "inverse {k} diverged from reference at n=2^{log_n}, q={q}"
                );
                assert_eq!(
                    *out, coeffs,
                    "inverse {k} failed to invert the forward transform at n=2^{log_n}, q={q}"
                );
            }
        }
    }
}

#[test]
fn negacyclic_mul_bit_identical_across_kernels() {
    for log_n in LOG_DIMS {
        for ctx in contexts_for(log_n) {
            let n = ctx.dim();
            let q = ctx.modulus();
            let a = Poly::pseudorandom(n, q, 11 + log_n as u64);
            let b = Poly::pseudorandom(n, q, 23 + log_n as u64);
            let kernels = kernels_for(q);
            let products: Vec<Poly> = kernels
                .iter()
                .map(|&k| ctx.clone().with_kernel(k).negacyclic_mul(&a, &b))
                .collect();
            for (k, p) in kernels.iter().zip(&products) {
                assert_eq!(
                    p.coeffs(),
                    products[0].coeffs(),
                    "negacyclic mul under {k} diverged at n=2^{log_n}, q={q}"
                );
            }
        }
    }
}

#[test]
fn negacyclic_mul_matches_schoolbook_oracle() {
    for log_n in [4usize, 5, 6, 7, 8] {
        let n = 1 << log_n;
        for q in generate_ntt_primes(n, 40, 2) {
            let ctx = NttContext::try_new_with_kernel(n, q, NttKernel::Reference).unwrap();
            let a = Poly::pseudorandom(n, q, 7 + log_n as u64);
            let b = Poly::pseudorandom(n, q, 13 + log_n as u64);
            let want = schoolbook_negacyclic(a.coeffs(), b.coeffs(), q);
            // 40-bit primes sit inside the IFMA window, so all five
            // generations (portable lanes on non-IFMA hosts) face the
            // oracle here.
            for k in kernels_for(q) {
                let got = ctx.clone().with_kernel(k).negacyclic_mul(&a, &b);
                assert_eq!(
                    got.coeffs(),
                    &want[..],
                    "negacyclic mul under {k} disagrees with the schoolbook oracle \
                     at n={n}, q={q}"
                );
            }
        }
    }
}

/// Deterministic filler: `len` values in `[lo, hi)` from a splitmix64
/// walk of `seed`.
fn fill(seed: u64, len: usize, lo: u64, hi: u64) -> Vec<u64> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            lo + (z ^ (z >> 31)) % (hi - lo)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The SIMD element-wise slice kernels at ragged (non-multiple-of-4)
    /// lengths: every length exercises the vector body *and* the scalar
    /// tail, and each lane must match the scalar oracle exactly.
    #[test]
    fn prop_simd_slice_kernels_match_oracles_at_ragged_lengths(
        seed in any::<u64>(), len in 1usize..67
    ) {
        let q = generate_ntt_prime(1 << 10, 59).unwrap();
        let a = fill(seed, len, 0, q);
        let b = fill(seed ^ 0xA5A5, len, 0, q);

        let mut got = a.clone();
        simd::add_mod_slice(&mut got, &b, q);
        for i in 0..len {
            prop_assert_eq!(got[i], add_mod(a[i], b[i], q), "add lane {}", i);
        }

        let mut got = a.clone();
        simd::sub_mod_slice(&mut got, &b, q);
        for i in 0..len {
            prop_assert_eq!(got[i], sub_mod(a[i], b[i], q), "sub lane {}", i);
        }

        let mut got = a.clone();
        simd::mul_mod_slice(&mut got, &b, q);
        for i in 0..len {
            prop_assert_eq!(got[i], mul_mod(a[i], b[i], q), "mul lane {}", i);
        }

        let c = fill(seed ^ 0x5A5A, len, 0, q);
        let mut got = c.clone();
        simd::mac_mod_slice(&mut got, &a, &b, q);
        for i in 0..len {
            prop_assert_eq!(
                got[i],
                add_mod(c[i], mul_mod(a[i], b[i], q), q),
                "mac lane {}", i
            );
        }

        let s = 1 + seed % (q - 1);
        let ss = shoup_precompute(s, q);
        let mut got = a.clone();
        simd::scale_shoup_slice(&mut got, s, ss, q);
        for i in 0..len {
            prop_assert_eq!(got[i], mul_shoup(a[i], s, ss, q), "scale lane {}", i);
        }
    }

    /// The SIMD butterfly/twist primitives on *denormal* lazy inputs —
    /// representatives in `[q, 2q)` rather than canonical `[0, q)` —
    /// must match the scalar Harvey formula word-for-word, because the
    /// stage walk feeds them exactly such values between stages.
    #[test]
    fn prop_simd_butterflies_match_scalar_formula_on_denormal_inputs(
        seed in any::<u64>(), len in 1usize..41, reduce in any::<bool>()
    ) {
        let q = generate_ntt_prime(1 << 10, 59).unwrap();
        let w = fill(seed ^ 1, len, 1, q);
        let ws: Vec<u64> = w.iter().map(|&wi| shoup_precompute(wi, q)).collect();

        // Twists accept any lazy representative; feed [q, 2q).
        let a = fill(seed, len, q, 2 * q);
        let mut got = a.clone();
        simd::twist_lazy_slice(&mut got, &w, &ws, q);
        for i in 0..len {
            prop_assert_eq!(
                got[i],
                mul_shoup_lazy(a[i], w[i], ws[i], q),
                "twist_lazy lane {}", i
            );
        }
        let mut got = a.clone();
        simd::twist_reduce_slice(&mut got, &w, &ws, q);
        for i in 0..len {
            prop_assert_eq!(
                got[i],
                mul_shoup(a[i], w[i], ws[i], q),
                "twist_reduce lane {}", i
            );
        }

        // Stage inputs may sit anywhere below 4q on the u leg and 2q on
        // the multiplied leg; [q, 2q) is the denormal band both share.
        let lo0 = fill(seed ^ 2, len, q, 2 * q);
        let hi0 = fill(seed ^ 3, len, q, 2 * q);
        let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
        simd::harvey_stage(&mut lo, &mut hi, &w, &ws, q, reduce);
        for i in 0..len {
            let u = if lo0[i] >= 2 * q { lo0[i] - 2 * q } else { lo0[i] };
            let t = mul_shoup_lazy(hi0[i], w[i], ws[i], q);
            let (mut el, mut eh) = (u + t, u + 2 * q - t);
            if reduce {
                el = reduce_4q(el, q);
                eh = reduce_4q(eh, q);
            }
            prop_assert_eq!(lo[i], el, "stage lo lane {}", i);
            prop_assert_eq!(hi[i], eh, "stage hi lane {}", i);
        }
    }

    /// The limb-split (AVX2) and 52-bit Barrett (IFMA) hadamard/mac
    /// kernels on *denormal* `[q, 2q)` multiplicands, across generated
    /// prime widths spanning both windows: every lane must be
    /// bit-identical to the scalar Barrett oracle on the canonicalized
    /// inputs. The scalar mirrors (`mul_mod_limbsplit`,
    /// `mul_mod_barrett52`) are pinned unconditionally — they evaluate
    /// the exact per-lane integer formula, so their agreement transfers
    /// to the vector lanes on any host; the vector backends are pinned
    /// additionally whenever this host can run them.
    #[test]
    fn prop_limbsplit_hadamard_mac_match_barrett_on_denormal_inputs(
        seed in any::<u64>(), len in 1usize..67, bits in 30u32..=60
    ) {
        let q = generate_ntt_prime(1 << 10, bits).unwrap();
        let a = fill(seed, len, q, 2 * q);
        let b = fill(seed ^ 0xD1CE, len, q, 2 * q);
        // The accumulator leg of mac is canonical by contract; only
        // the multiplicands admit lazy representatives.
        let c = fill(seed ^ 0x0DD5, len, 0, q);

        let canon = |x: u64| if x >= q { x - q } else { x };
        let mul_want: Vec<u64> =
            (0..len).map(|i| mul_mod(canon(a[i]), canon(b[i]), q)).collect();
        let mac_want: Vec<u64> =
            (0..len).map(|i| add_mod(c[i], mul_want[i], q)).collect();

        for i in 0..len {
            prop_assert_eq!(
                mul_mod_limbsplit(a[i], b[i], q), mul_want[i],
                "limb-split mirror lane {} at {} bits", i, bits
            );
            if ifma_modulus_ok(q) {
                prop_assert_eq!(
                    mul_mod_barrett52(a[i], b[i], q), mul_want[i],
                    "barrett52 mirror lane {} at {} bits", i, bits
                );
            }
        }

        for backend in [EwBackend::Avx2, EwBackend::Ifma] {
            let mut got = a.clone();
            if simd::mul_mod_slice_on(backend, &mut got, &b, q) {
                prop_assert_eq!(
                    &got, &mul_want,
                    "{} hadamard on denormal inputs at {} bits", backend.name(), bits
                );
            }
            let mut got = c.clone();
            if simd::mac_mod_slice_on(backend, &mut got, &a, &b, q) {
                prop_assert_eq!(
                    &got, &mac_want,
                    "{} mac on denormal inputs at {} bits", backend.name(), bits
                );
            }
        }
    }

    /// Whole-transform conformance under proptest: the SIMD generation
    /// must equal the radix-4 generation bit-for-bit, forward and
    /// inverse, including on denormal `[q, 2q)` input vectors (both
    /// kernels tolerate any `< 2q` entry representative).
    #[test]
    fn prop_simd_transform_bit_identical_to_radix4(
        seed in any::<u64>(), log_n in 10usize..13, denormal in any::<bool>()
    ) {
        let n = 1 << log_n;
        let q = generate_ntt_prime(n, 59).unwrap();
        let ctx = NttContext::try_new_with_kernel(n, q, NttKernel::Reference).unwrap();
        let (lo, hi) = if denormal { (q, 2 * q) } else { (0, q) };
        let data = fill(seed, n, lo, hi);

        let mut s = data.clone();
        ctx.forward_simd(&mut s);
        let mut r = data.clone();
        ctx.forward_radix4(&mut r);
        prop_assert_eq!(&s, &r, "forward diverged at n=2^{}", log_n);

        // Inverse operates on reduced evaluation-form vectors.
        let mut si = s.clone();
        ctx.inverse_simd(&mut si);
        let mut ri = r.clone();
        ctx.inverse_radix4(&mut ri);
        prop_assert_eq!(&si, &ri, "inverse diverged at n=2^{}", log_n);
    }
}

#[test]
fn rns_plane_transforms_bit_identical_across_kernels() {
    for log_n in [12usize, 13] {
        let n = 1 << log_n;
        let moduli = generate_ntt_primes(n, 50, 3);
        let tables: Vec<NttContext> = moduli
            .iter()
            .map(|&q| NttContext::try_new_with_kernel(n, q, NttKernel::Reference).unwrap())
            .collect();
        let table_refs: Vec<&NttContext> = tables.iter().collect();
        let polys: Vec<Poly> = moduli
            .iter()
            .enumerate()
            .map(|(i, &q)| Poly::pseudorandom(n, q, 1000 + i as u64))
            .collect();
        let coeff_plane = RnsPlane::from_polys(&polys, Form::Coeff);
        // A plane kernel must be valid for every residue modulus; the
        // 50-bit primes here keep all five generations in play.
        let kernels: Vec<NttKernel> = NttKernel::ALL
            .into_iter()
            .filter(|k| moduli.iter().all(|&q| k.supports_modulus(q)))
            .collect();
        assert_eq!(kernels.len(), NttKernel::ALL.len());
        let eval_planes: Vec<RnsPlane> = kernels
            .iter()
            .map(|&k| {
                let mut p = coeff_plane.clone();
                p.ntt_forward_with(&table_refs, k);
                p
            })
            .collect();
        for (k, p) in kernels.iter().zip(&eval_planes) {
            assert_eq!(
                *p, eval_planes[0],
                "plane forward under {k} diverged at n=2^{log_n}"
            );
            let mut back = p.clone();
            back.ntt_inverse_with(&table_refs, *k);
            assert_eq!(
                back, coeff_plane,
                "plane round trip under {k} lost coefficients at n=2^{log_n}"
            );
        }
    }
}
