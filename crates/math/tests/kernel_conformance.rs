//! Cross-kernel NTT conformance suite.
//!
//! The dispatch layer ([`NttKernel`]) promises that the reference,
//! radix-2 and cache-blocked radix-4 kernels are interchangeable:
//! **bit-identical** outputs, not merely congruent ones, for the
//! negacyclic forward/inverse transforms and for full negacyclic
//! products. This suite pins that promise differentially across every
//! generated prime for ring dimensions 2^10 … 2^14, and anchors the
//! whole family to an O(n²) schoolbook oracle at small dimensions.
//!
//! Every test selects kernels explicitly (`forward_with`,
//! `with_kernel`, `ntt_forward_with`), never through the ambient
//! `UFC_NTT_KERNEL` environment, so the suite passes unchanged under
//! each leg of the CI kernel matrix.

use ufc_math::modops::mul_mod;
use ufc_math::ntt::{NttContext, NttKernel};
use ufc_math::plane::RnsPlane;
use ufc_math::poly::{Form, Poly};
use ufc_math::prime::generate_ntt_primes;

/// Ring dimensions covered by the differential sweeps. 2^13 and 2^14
/// exercise the genuinely blocked radix-4 schedule (dimension above
/// `RADIX4_BLOCK`); the smaller sizes exercise its radix-2 fallback.
const LOG_DIMS: [usize; 5] = [10, 11, 12, 13, 14];

/// Prime widths sampled per dimension. 59 bits stresses the lazy
/// (< 4q < 2^61) headroom of the Harvey butterflies; 30 bits gives a
/// completely different twiddle landscape.
const PRIME_BITS: [u32; 3] = [30, 45, 59];

/// Primes generated per (dimension, width) pair.
const PRIMES_PER_BITS: usize = 2;

/// Every context the sweep runs over: each generated prime at each
/// dimension.
fn contexts_for(log_n: usize) -> Vec<NttContext> {
    let n = 1 << log_n;
    PRIME_BITS
        .iter()
        .flat_map(|&bits| generate_ntt_primes(n, bits, PRIMES_PER_BITS))
        .map(|q| NttContext::new(n, q))
        .collect()
}

/// O(n²) schoolbook negacyclic product, the ground-truth oracle:
/// `c_k = Σ_{i+j≡k} ± a_i·b_j` with a sign flip on wrap-around.
fn schoolbook_negacyclic(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    let n = a.len();
    let mut c = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let p = mul_mod(ai, bj, q);
            let k = (i + j) % n;
            if i + j < n {
                c[k] = (c[k] + p) % q;
            } else {
                // X^n = -1: wrapped terms enter with a minus sign.
                c[k] = (c[k] + q - p) % q;
            }
        }
    }
    c
}

#[test]
fn forward_bit_identical_across_kernels() {
    for log_n in LOG_DIMS {
        for ctx in contexts_for(log_n) {
            let n = ctx.dim();
            let q = ctx.modulus();
            let data = Poly::pseudorandom(n, q, 0xF0F0 ^ (log_n as u64)).into_coeffs();
            let outputs = NttKernel::ALL.map(|k| {
                let mut buf = data.clone();
                ctx.forward_with(k, &mut buf);
                buf
            });
            for (k, out) in NttKernel::ALL.iter().zip(&outputs) {
                assert_eq!(
                    *out, outputs[0],
                    "forward {k} diverged from reference at n=2^{log_n}, q={q}"
                );
            }
        }
    }
}

#[test]
fn inverse_bit_identical_across_kernels_and_roundtrips() {
    for log_n in LOG_DIMS {
        for ctx in contexts_for(log_n) {
            let n = ctx.dim();
            let q = ctx.modulus();
            let coeffs = Poly::pseudorandom(n, q, 0xBEEF ^ (log_n as u64)).into_coeffs();
            // A genuine evaluation-form vector (any reduced vector
            // would do, but a real one also pins the round trip).
            let mut eval = coeffs.clone();
            ctx.forward_with(NttKernel::Reference, &mut eval);
            let outputs = NttKernel::ALL.map(|k| {
                let mut buf = eval.clone();
                ctx.inverse_with(k, &mut buf);
                buf
            });
            for (k, out) in NttKernel::ALL.iter().zip(&outputs) {
                assert_eq!(
                    *out, outputs[0],
                    "inverse {k} diverged from reference at n=2^{log_n}, q={q}"
                );
                assert_eq!(
                    *out, coeffs,
                    "inverse {k} failed to invert the forward transform at n=2^{log_n}, q={q}"
                );
            }
        }
    }
}

#[test]
fn negacyclic_mul_bit_identical_across_kernels() {
    for log_n in LOG_DIMS {
        for ctx in contexts_for(log_n) {
            let n = ctx.dim();
            let q = ctx.modulus();
            let a = Poly::pseudorandom(n, q, 11 + log_n as u64);
            let b = Poly::pseudorandom(n, q, 23 + log_n as u64);
            let products =
                NttKernel::ALL.map(|k| ctx.clone().with_kernel(k).negacyclic_mul(&a, &b));
            for (k, p) in NttKernel::ALL.iter().zip(&products) {
                assert_eq!(
                    p.coeffs(),
                    products[0].coeffs(),
                    "negacyclic mul under {k} diverged at n=2^{log_n}, q={q}"
                );
            }
        }
    }
}

#[test]
fn negacyclic_mul_matches_schoolbook_oracle() {
    for log_n in [4usize, 5, 6, 7, 8] {
        let n = 1 << log_n;
        for q in generate_ntt_primes(n, 40, 2) {
            let ctx = NttContext::new(n, q);
            let a = Poly::pseudorandom(n, q, 7 + log_n as u64);
            let b = Poly::pseudorandom(n, q, 13 + log_n as u64);
            let want = schoolbook_negacyclic(a.coeffs(), b.coeffs(), q);
            for k in NttKernel::ALL {
                let got = ctx.clone().with_kernel(k).negacyclic_mul(&a, &b);
                assert_eq!(
                    got.coeffs(),
                    &want[..],
                    "negacyclic mul under {k} disagrees with the schoolbook oracle \
                     at n={n}, q={q}"
                );
            }
        }
    }
}

#[test]
fn rns_plane_transforms_bit_identical_across_kernels() {
    for log_n in [12usize, 13] {
        let n = 1 << log_n;
        let moduli = generate_ntt_primes(n, 50, 3);
        let tables: Vec<NttContext> = moduli.iter().map(|&q| NttContext::new(n, q)).collect();
        let table_refs: Vec<&NttContext> = tables.iter().collect();
        let polys: Vec<Poly> = moduli
            .iter()
            .enumerate()
            .map(|(i, &q)| Poly::pseudorandom(n, q, 1000 + i as u64))
            .collect();
        let coeff_plane = RnsPlane::from_polys(&polys, Form::Coeff);
        let eval_planes = NttKernel::ALL.map(|k| {
            let mut p = coeff_plane.clone();
            p.ntt_forward_with(&table_refs, k);
            p
        });
        for (k, p) in NttKernel::ALL.iter().zip(&eval_planes) {
            assert_eq!(
                *p, eval_planes[0],
                "plane forward under {k} diverged at n=2^{log_n}"
            );
            let mut back = p.clone();
            back.ntt_inverse_with(&table_refs, *k);
            assert_eq!(
                back, coeff_plane,
                "plane round trip under {k} lost coefficients at n=2^{log_n}"
            );
        }
    }
}
