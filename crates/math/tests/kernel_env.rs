//! Regression tests for the kernel-selection environment path.
//!
//! Two contracts live here:
//!
//! * A malformed `UFC_NTT_KERNEL` must not abort library consumers
//!   that merely build [`ufc_math::ntt::NttContext`]s — it warns once
//!   on stderr and falls back to the automatic heuristic.
//! * A *well-formed* `UFC_NTT_KERNEL=ifma` is strict: on a prime at
//!   or above 2⁵⁰ it is a typed [`NttError::IfmaPrimeTooWide`], and
//!   on a host without AVX-512 IFMA (simulated with
//!   `UFC_SIMD_DISABLE=ifma`) it is a typed
//!   [`NttError::IfmaUnavailable`] unless `UFC_IFMA_PORTABLE=1` opts
//!   into the bit-identical portable mirror lanes. Silent fallback in
//!   either case would hand a bench run or CI leg a kernel it did not
//!   ask for.
//!
//! Environment variables are process-global, so each test re-invokes
//! its own binary with the variables set instead of mutating the
//! harness process (which would race against other tests).

use std::process::Command;

use ufc_math::ntt::{NttContext, NttError, NttKernel, IFMA_PORTABLE_ENV, KERNEL_ENV};
use ufc_math::prime::generate_ntt_prime;

/// Marker variable switching this binary into child mode.
const CHILD_ENV: &str = "UFC_KERNEL_ENV_CHILD";

/// What the child prints when both contexts came up.
const CHILD_OK: &str = "kernel-env-child-ok";

#[test]
fn malformed_env_warns_once_and_falls_back() {
    if std::env::var(CHILD_ENV).is_ok() {
        child_build_contexts();
        return;
    }
    let exe = std::env::current_exe().expect("current_exe");
    let out = Command::new(exe)
        .args([
            "--exact",
            "malformed_env_warns_once_and_falls_back",
            "--nocapture",
        ])
        .env(CHILD_ENV, "1")
        .env(KERNEL_ENV, "radix16-bogus")
        .output()
        .expect("spawn child test process");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "child aborted on malformed {KERNEL_ENV}\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains(CHILD_OK), "stdout:\n{stdout}");
    // The warning names the offending value and fires exactly once
    // even though the child builds two contexts.
    let warnings = stderr
        .matches("falling back to automatic kernel selection")
        .count();
    assert_eq!(warnings, 1, "stderr:\n{stderr}");
    assert!(stderr.contains("radix16-bogus"), "stderr:\n{stderr}");
}

/// Child mode: acts like a library consumer that builds two NTT
/// contexts with the malformed variable in scope and then uses them.
fn child_build_contexts() {
    let a = NttContext::new(64, 7681);
    let b = NttContext::new(128, 7681);
    let x: Vec<u64> = (0..64).collect();
    let mut y = x.clone();
    a.forward(&mut y);
    a.inverse(&mut y);
    assert_eq!(x, y, "roundtrip through fallback kernel");
    println!("{CHILD_OK}: kernels {:?} {:?}", a.kernel(), b.kernel());
}

/// Child mode for the forced-ifma tests: attempts `try_new` at the
/// given prime width and prints the typed outcome on one line.
fn child_try_ifma(bits: u32) {
    let n = 1 << 10;
    let q = generate_ntt_prime(n, bits).expect("NTT prime");
    match NttContext::try_new(n, q) {
        Ok(ctx) => {
            let x: Vec<u64> = (0..n as u64).map(|i| i % q).collect();
            let mut y = x.clone();
            ctx.forward(&mut y);
            ctx.inverse(&mut y);
            assert_eq!(x, y, "roundtrip through forced kernel");
            println!("child-ok kernel={}", ctx.kernel().name());
        }
        Err(NttError::IfmaPrimeTooWide { q: wide }) => {
            assert_eq!(wide, q, "error names the rejected modulus");
            println!("child-err prime-too-wide q={wide}");
        }
        Err(NttError::IfmaUnavailable) => println!("child-err ifma-unavailable"),
        Err(other) => panic!("unexpected selection error: {other}"),
    }
}

/// Re-runs the named test in a child process with the given extra
/// environment and returns (stdout, stderr), asserting a clean exit.
///
/// Inherited kernel-selection variables are scrubbed first so the
/// child sees exactly the overrides passed here — the CI kernel
/// matrix exports `UFC_NTT_KERNEL` (and the ifma leg
/// `UFC_IFMA_PORTABLE=1`) to the harness process, and leaking those
/// into a child would flip the strict typed errors under test into
/// silent successes.
fn run_child(test_name: &str, mode: &str, env: &[(&str, &str)]) -> (String, String) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.args(["--exact", test_name, "--nocapture"])
        .env(CHILD_ENV, mode)
        .env_remove(KERNEL_ENV)
        .env_remove(IFMA_PORTABLE_ENV)
        .env_remove("UFC_SIMD_DISABLE");
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn child test process");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "child test process failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    (stdout, stderr)
}

#[test]
fn forced_ifma_on_wide_prime_is_a_typed_error() {
    if let Ok(mode) = std::env::var(CHILD_ENV) {
        if mode == "ifma-wide" {
            child_try_ifma(59);
        }
        return;
    }
    let (stdout, stderr) = run_child(
        "forced_ifma_on_wide_prime_is_a_typed_error",
        "ifma-wide",
        &[(KERNEL_ENV, NttKernel::Ifma.name())],
    );
    assert!(
        stdout.contains("child-err prime-too-wide"),
        "expected IfmaPrimeTooWide, stdout:\n{stdout}"
    );
    // Strictness means *no* silent fallback warning either: the error
    // is the contract, not a downgrade notice.
    assert!(
        !stderr.contains("falling back"),
        "forced ifma must not fall back, stderr:\n{stderr}"
    );
}

#[test]
fn forced_ifma_without_hardware_is_a_typed_error() {
    if let Ok(mode) = std::env::var(CHILD_ENV) {
        if mode == "ifma-nohw" {
            child_try_ifma(45);
        }
        return;
    }
    // `UFC_SIMD_DISABLE=ifma` makes any host look like one without the
    // instructions, so this leg is deterministic on IFMA machines too.
    let (stdout, stderr) = run_child(
        "forced_ifma_without_hardware_is_a_typed_error",
        "ifma-nohw",
        &[
            (KERNEL_ENV, NttKernel::Ifma.name()),
            ("UFC_SIMD_DISABLE", "ifma"),
        ],
    );
    assert!(
        stdout.contains("child-err ifma-unavailable"),
        "expected IfmaUnavailable, stdout:\n{stdout}"
    );
    assert!(
        !stderr.contains("falling back"),
        "forced ifma must not fall back, stderr:\n{stderr}"
    );
}

#[test]
fn forced_ifma_portable_escape_runs_mirror_lanes() {
    if let Ok(mode) = std::env::var(CHILD_ENV) {
        if mode == "ifma-portable" {
            child_try_ifma(45);
        }
        return;
    }
    // Same hardware-less host, but the portable opt-in is set: the
    // selection must come up as the real ifma generation (on the
    // bit-identical portable lanes), not as some other kernel.
    let (stdout, _) = run_child(
        "forced_ifma_portable_escape_runs_mirror_lanes",
        "ifma-portable",
        &[
            (KERNEL_ENV, NttKernel::Ifma.name()),
            ("UFC_SIMD_DISABLE", "ifma"),
            (IFMA_PORTABLE_ENV, "1"),
        ],
    );
    assert!(
        stdout.contains("child-ok kernel=ifma"),
        "expected the ifma kernel on portable lanes, stdout:\n{stdout}"
    );
}
