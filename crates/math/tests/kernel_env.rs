//! Regression test for the panic-free kernel-selection path: a
//! malformed `UFC_NTT_KERNEL` must not abort library consumers that
//! merely build [`ufc_math::ntt::NttContext`]s — it warns once on
//! stderr and falls back to the automatic heuristic.
//!
//! Environment variables are process-global, so the test re-invokes
//! its own binary with the malformed value set instead of mutating the
//! harness process (which would race against other tests).

use std::process::Command;

use ufc_math::ntt::{NttContext, KERNEL_ENV};

/// Marker variable switching this binary into child mode.
const CHILD_ENV: &str = "UFC_KERNEL_ENV_CHILD";

/// What the child prints when both contexts came up.
const CHILD_OK: &str = "kernel-env-child-ok";

#[test]
fn malformed_env_warns_once_and_falls_back() {
    if std::env::var(CHILD_ENV).is_ok() {
        child_build_contexts();
        return;
    }
    let exe = std::env::current_exe().expect("current_exe");
    let out = Command::new(exe)
        .args([
            "--exact",
            "malformed_env_warns_once_and_falls_back",
            "--nocapture",
        ])
        .env(CHILD_ENV, "1")
        .env(KERNEL_ENV, "radix16-bogus")
        .output()
        .expect("spawn child test process");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "child aborted on malformed {KERNEL_ENV}\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains(CHILD_OK), "stdout:\n{stdout}");
    // The warning names the offending value and fires exactly once
    // even though the child builds two contexts.
    let warnings = stderr
        .matches("falling back to automatic kernel selection")
        .count();
    assert_eq!(warnings, 1, "stderr:\n{stderr}");
    assert!(stderr.contains("radix16-bogus"), "stderr:\n{stderr}");
}

/// Child mode: acts like a library consumer that builds two NTT
/// contexts with the malformed variable in scope and then uses them.
fn child_build_contexts() {
    let a = NttContext::new(64, 7681);
    let b = NttContext::new(128, 7681);
    let x: Vec<u64> = (0..64).collect();
    let mut y = x.clone();
    a.forward(&mut y);
    a.inverse(&mut y);
    assert_eq!(x, y, "roundtrip through fallback kernel");
    println!("{CHILD_OK}: kernels {:?} {:?}", a.kernel(), b.kernel());
}
