//! Cross-module property tests for the arithmetic substrate.

use proptest::prelude::*;
use ufc_math::cgntt::{perfect_shuffle_dest, CgNtt, ShuffleDecomposition};
use ufc_math::fft::negacyclic_mul_fft;
use ufc_math::modops::{add_mod, inv_mod, mul_mod, neg_mod, pow_mod, sub_mod, Barrett, ShoupMul};
use ufc_math::mont::Montgomery;
use ufc_math::ntt::NttContext;
use ufc_math::poly::Poly;
use ufc_math::prime::generate_ntt_prime;

fn random_poly(seed: u64, n: usize, q: u64) -> Poly {
    let mut x = seed | 1;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x
    };
    Poly::from_coeffs((0..n).map(|_| next() % q).collect(), q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_cg_and_classical_ntt_agree_on_products(seed in any::<u64>()) {
        let n = 64;
        let q = generate_ntt_prime(n, 40).unwrap();
        let ctx = NttContext::new(n, q);
        let cg = CgNtt::new(ctx.clone());
        let a = random_poly(seed, n, q);
        let b = random_poly(seed.wrapping_add(1), n, q);
        prop_assert_eq!(cg.negacyclic_mul(&a, &b), ctx.negacyclic_mul(&a, &b));
    }

    #[test]
    fn prop_shuffle_decomposition_matches_perfect_shuffle(
        rows_log in 1u32..4, cols_log in 1u32..4, lanes_log in 1u32..5
    ) {
        let d = ShuffleDecomposition::new(1 << rows_log, 1 << cols_log, 1 << lanes_log);
        let n = d.len();
        for p in 0..n {
            prop_assert_eq!(d.composite_dest(p), perfect_shuffle_dest(p, n));
        }
    }

    #[test]
    fn prop_fft_matches_ntt_in_small_regime(seed in any::<u64>()) {
        let n = 128;
        let q = generate_ntt_prime(n, 31).unwrap();
        let ctx = NttContext::new(n, q);
        // Small signed operands: well inside the f64 mantissa budget.
        let mut x = seed | 1;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
            (x % 256) as i64 - 128
        };
        let a = Poly::from_signed(&(0..n).map(|_| next()).collect::<Vec<_>>(), q);
        let b = Poly::from_signed(&(0..n).map(|_| next()).collect::<Vec<_>>(), q);
        prop_assert_eq!(negacyclic_mul_fft(&a, &b), ctx.negacyclic_mul(&a, &b));
    }

    #[test]
    fn prop_mul_by_monomial_equals_rotation(seed in any::<u64>(), k in 0usize..128) {
        let n = 64;
        let q = generate_ntt_prime(n, 40).unwrap();
        let ctx = NttContext::new(n, q);
        let a = random_poly(seed, n, q);
        let m = Poly::monomial(1, k % (2 * n), n, q);
        prop_assert_eq!(ctx.negacyclic_mul(&a, &m), a.rotate_monomial(k % (2 * n)));
    }
}

// --------------------------------------------------- modular arithmetic

/// Arbitrary modulus in Barrett's domain (`2 <= q < 2^62`).
fn any_modulus(raw: u64) -> u64 {
    2 + raw % ((1u64 << 62) - 2)
}

/// Arbitrary *odd* modulus shared by every reducer under test
/// (Montgomery needs odd, Barrett needs `< 2^62`).
fn odd_modulus(raw: u64) -> u64 {
    (3 + raw % ((1u64 << 62) - 3)) | 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prop_mul_mod_matches_u128_reference(
        a in any::<u64>(), b in any::<u64>(), q_raw in any::<u64>()
    ) {
        let q = any_modulus(q_raw);
        let (a, b) = (a % q, b % q);
        let expect = ((a as u128 * b as u128) % q as u128) as u64;
        prop_assert_eq!(mul_mod(a, b, q), expect);
    }

    #[test]
    fn prop_add_sub_neg_mod_match_i128_reference(
        a in any::<u64>(), b in any::<u64>(), q_raw in any::<u64>()
    ) {
        let q = any_modulus(q_raw);
        let (a, b) = (a % q, b % q);
        prop_assert_eq!(add_mod(a, b, q), ((a as u128 + b as u128) % q as u128) as u64);
        let diff = (a as i128 - b as i128).rem_euclid(q as i128) as u64;
        prop_assert_eq!(sub_mod(a, b, q), diff);
        prop_assert_eq!(add_mod(a, neg_mod(a, q), q), 0);
    }

    #[test]
    fn prop_barrett_agrees_with_mul_mod(
        a in any::<u64>(), b in any::<u64>(), q_raw in any::<u64>()
    ) {
        let q = any_modulus(q_raw);
        let (a, b) = (a % q, b % q);
        let br = Barrett::new(q);
        prop_assert_eq!(br.mul(a, b), mul_mod(a, b, q));
    }

    #[test]
    fn prop_barrett_reduce_u128_matches_reference(
        hi in any::<u64>(), lo in any::<u64>(), q_raw in any::<u64>()
    ) {
        let q = any_modulus(q_raw);
        // Barrett reduction is defined for x < q^2.
        let x = ((hi as u128) << 64 | lo as u128) % (q as u128 * q as u128);
        prop_assert_eq!(Barrett::new(q).reduce_u128(x), (x % q as u128) as u64);
    }

    #[test]
    fn prop_montgomery_and_barrett_agree(
        a in any::<u64>(), b in any::<u64>(), q_raw in any::<u64>()
    ) {
        let q = odd_modulus(q_raw);
        let (a, b) = (a % q, b % q);
        let mont = Montgomery::new(q);
        let br = Barrett::new(q);
        prop_assert_eq!(mont.mul_plain(a, b), br.mul(a, b));
    }

    #[test]
    fn prop_montgomery_roundtrip(a in any::<u64>(), q_raw in any::<u64>()) {
        let q = odd_modulus(q_raw);
        let mont = Montgomery::new(q);
        let a = a % q;
        prop_assert_eq!(mont.from_mont(mont.to_mont(a)), a);
    }

    #[test]
    fn prop_shoup_agrees_with_mul_mod(
        w in any::<u64>(), a in any::<u64>(), q_raw in any::<u64>()
    ) {
        // Shoup multiplication needs q < 2^63 headroom; stay in the
        // shared 62-bit domain.
        let q = any_modulus(q_raw);
        let (w, a) = (w % q, a % q);
        let sm = ShoupMul::new(w, q);
        prop_assert_eq!(sm.mul(a), mul_mod(a, w, q));
    }

    #[test]
    fn prop_inv_mod_is_inverse_over_prime(a in any::<u64>(), bits in 20u32..60) {
        let q = generate_ntt_prime(64, bits).unwrap();
        let a = a % q;
        match inv_mod(a, q) {
            Some(inv) => {
                prop_assert_eq!(mul_mod(a, inv, q), 1);
                prop_assert_eq!(inv, pow_mod(a, q - 2, q));
            }
            None => prop_assert_eq!(a, 0),
        }
    }
}
