//! Cross-module property tests for the arithmetic substrate.

use proptest::prelude::*;
use ufc_math::cgntt::{perfect_shuffle_dest, CgNtt, ShuffleDecomposition};
use ufc_math::fft::negacyclic_mul_fft;
use ufc_math::ntt::NttContext;
use ufc_math::poly::Poly;
use ufc_math::prime::generate_ntt_prime;

fn random_poly(seed: u64, n: usize, q: u64) -> Poly {
    let mut x = seed | 1;
    let mut next = move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x
    };
    Poly::from_coeffs((0..n).map(|_| next() % q).collect(), q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_cg_and_classical_ntt_agree_on_products(seed in any::<u64>()) {
        let n = 64;
        let q = generate_ntt_prime(n, 40).unwrap();
        let ctx = NttContext::new(n, q);
        let cg = CgNtt::new(ctx.clone());
        let a = random_poly(seed, n, q);
        let b = random_poly(seed.wrapping_add(1), n, q);
        prop_assert_eq!(cg.negacyclic_mul(&a, &b), ctx.negacyclic_mul(&a, &b));
    }

    #[test]
    fn prop_shuffle_decomposition_matches_perfect_shuffle(
        rows_log in 1u32..4, cols_log in 1u32..4, lanes_log in 1u32..5
    ) {
        let d = ShuffleDecomposition::new(1 << rows_log, 1 << cols_log, 1 << lanes_log);
        let n = d.len();
        for p in 0..n {
            prop_assert_eq!(d.composite_dest(p), perfect_shuffle_dest(p, n));
        }
    }

    #[test]
    fn prop_fft_matches_ntt_in_small_regime(seed in any::<u64>()) {
        let n = 128;
        let q = generate_ntt_prime(n, 31).unwrap();
        let ctx = NttContext::new(n, q);
        // Small signed operands: well inside the f64 mantissa budget.
        let mut x = seed | 1;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
            (x % 256) as i64 - 128
        };
        let a = Poly::from_signed(&(0..n).map(|_| next()).collect::<Vec<_>>(), q);
        let b = Poly::from_signed(&(0..n).map(|_| next()).collect::<Vec<_>>(), q);
        prop_assert_eq!(negacyclic_mul_fft(&a, &b), ctx.negacyclic_mul(&a, &b));
    }

    #[test]
    fn prop_mul_by_monomial_equals_rotation(seed in any::<u64>(), k in 0usize..128) {
        let n = 64;
        let q = generate_ntt_prime(n, 40).unwrap();
        let ctx = NttContext::new(n, q);
        let a = random_poly(seed, n, q);
        let m = Poly::monomial(1, k % (2 * n), n, q);
        prop_assert_eq!(ctx.negacyclic_mul(&a, &m), a.rotate_monomial(k % (2 * n)));
    }
}
