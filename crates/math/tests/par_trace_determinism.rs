//! Aggregated span metrics from `par_limbs` must not depend on the
//! worker-thread count: every limb is processed (and traced) exactly
//! once whether the fan-out runs serially or across scoped threads,
//! and the data it produces is bit-identical.
//!
//! Single `#[test]`: the `ufc-trace` recorder is process-global and
//! the cargo harness runs tests in one binary concurrently.

use ufc_math::par::{par_limbs, set_max_threads};
use ufc_trace::HostTrace;

/// Big enough to cross the `PAR_MIN_WORK` serial threshold so the
/// 4-thread run really spawns workers.
const N: usize = 4096;
const LIMBS: usize = 8;

/// A deterministic NTT-shaped workload: per-limb butterfly-ish mixing
/// so each chunk's output depends on the limb index and every element.
fn work(i: usize, chunk: &mut [u64]) {
    let twiddle = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).max(3);
    for (j, x) in chunk.iter_mut().enumerate() {
        *x = x
            .wrapping_mul(twiddle)
            .wrapping_add(j as u64)
            .rotate_left((i % 63) as u32);
    }
}

/// Runs one recorded `par_limbs` pass at the given thread cap.
fn recorded_run(threads: usize) -> (Vec<u64>, HostTrace) {
    let mut data: Vec<u64> = (0..N * LIMBS).map(|v| v as u64 | 1).collect();
    let recorder = ufc_trace::record().expect("no other recording is live");
    let prev = set_max_threads(threads);
    par_limbs(N, &mut data, work);
    set_max_threads(prev);
    (data, recorder.finish())
}

/// The trace's `math/par_limb` spans as a sorted list of limb indices
/// — the aggregate view that must be thread-count invariant.
fn limb_details(trace: &HostTrace) -> Vec<u64> {
    let mut details: Vec<u64> = trace
        .spans
        .iter()
        .filter(|s| s.cat == "math" && s.name == "par_limb")
        .map(|s| s.detail)
        .collect();
    details.sort_unstable();
    details
}

#[test]
fn span_aggregates_and_data_are_thread_count_invariant() {
    let (serial_data, serial_trace) = recorded_run(1);
    let (par_data, par_trace) = recorded_run(4);

    // Bit-identity of the computation itself.
    assert_eq!(serial_data, par_data, "par_limbs output depends on threads");

    // Every limb traced exactly once, in both modes.
    let want: Vec<u64> = (0..LIMBS as u64).collect();
    assert_eq!(limb_details(&serial_trace), want);
    assert_eq!(limb_details(&par_trace), want);

    // The serial run stays on the caller's thread with no workers; the
    // capped run fans out to exactly 4 worker spans whose shares cover
    // all limbs.
    let workers = |t: &HostTrace| {
        t.spans
            .iter()
            .filter(|s| s.cat == "math" && s.name == "par_worker")
            .map(|s| s.detail)
            .collect::<Vec<u64>>()
    };
    assert!(workers(&serial_trace).is_empty());
    let shares = workers(&par_trace);
    assert_eq!(shares.len(), 4);
    assert_eq!(shares.iter().sum::<u64>(), LIMBS as u64);

    // Worker spans really ran on distinct recorder threads.
    let mut worker_threads: Vec<u32> = par_trace
        .spans
        .iter()
        .filter(|s| s.name == "par_worker")
        .map(|s| s.thread)
        .collect();
    worker_threads.sort_unstable();
    worker_threads.dedup();
    assert_eq!(
        worker_threads.len(),
        4,
        "each worker gets its own thread id"
    );
}
