//! Constant-geometry (Pease) NTT and its 2D-array shuffle
//! decomposition — the algorithm/hardware co-design at the heart of
//! UFC's interconnect (paper §IV-C1).
//!
//! The classical radix-2 NTT needs a *different* permutation at every
//! one of its `log N` stages, so a fully-parallel engine needs
//! `log E` distinct networks. The Pease formulation instead applies the
//! **same** perfect-shuffle permutation at every stage, so one fixed
//! network suffices. UFC additionally decomposes that single
//! permutation into three phases on its 2D PE array — `xshuffle`
//! (within a row), `yshuffle` (within a column) and `rshuffle`
//! (within a PE) — which keeps every wire horizontal or vertical
//! ([`ShuffleDecomposition`]).
//!
//! The forward transform here is decimation-in-frequency (DIF) and the
//! inverse is decimation-in-time (DIT), matching the paper's choice
//! ("we can use the DIT algorithm and DIF algorithm for iNTT and NTT").
//! The forward output is in bit-reversed order; the inverse consumes
//! bit-reversed order — exactly the pairing the small-polynomial
//! packing of §V-A relies on.

use crate::modops::{add_mod, inv_mod, mul_mod, sub_mod};
use crate::ntt::NttContext;
use crate::poly::Poly;

/// Constant-geometry NTT engine for a fixed `(N, q)` ring.
///
/// Wraps an [`NttContext`] for its twiddle tables and adds the
/// Pease-style passes. Forward output ordering: bit-reversed.
#[derive(Debug, Clone)]
pub struct CgNtt {
    ctx: NttContext,
    omega_pows: Vec<u64>,
    omega_inv_pows: Vec<u64>,
    psi_pows: Vec<u64>,
    psi_inv_pows: Vec<u64>,
}

impl CgNtt {
    /// Builds a constant-geometry engine over the given context,
    /// precomputing all twiddle tables.
    pub fn new(ctx: NttContext) -> Self {
        let n = ctx.dim();
        let q = ctx.modulus();
        let psi = ctx.psi();
        let omega = mul_mod(psi, psi, q);
        let omega_pows = power_table(omega, n, q);
        let omega_inv_pows = power_table(inv_mod(omega, q).expect("invertible"), n, q);
        let psi_pows = power_table(psi, n, q);
        let psi_inv_pows = power_table(inv_mod(psi, q).expect("invertible"), n, q);
        Self {
            ctx,
            omega_pows,
            omega_inv_pows,
            psi_pows,
            psi_inv_pows,
        }
    }

    /// The underlying twiddle-table context.
    pub fn context(&self) -> &NttContext {
        &self.ctx
    }

    /// Ring dimension.
    pub fn dim(&self) -> usize {
        self.ctx.dim()
    }

    /// Forward **cyclic** constant-geometry NTT (DIF).
    ///
    /// Input natural order, output bit-reversed order. Every stage
    /// reads pairs `(a[i], a[i + N/2])` and writes `(out[2i],
    /// out[2i+1])` — the fixed perfect-shuffle geometry.
    pub fn forward_cyclic(&self, a: &[u64]) -> Vec<u64> {
        let n = self.ctx.dim();
        assert_eq!(a.len(), n, "input length must equal ring dimension");
        let q = self.ctx.modulus();
        let log_n = n.trailing_zeros();
        let mut cur = a.to_vec();
        let mut next = vec![0u64; n];
        for s in 0..log_n {
            let half = n / 2;
            for i in 0..half {
                let x = cur[i];
                let y = cur[i + half];
                // Pease twiddle schedule for DIF: ω^((i >> s) << s).
                let exp = (i >> s) << s;
                let w = self.omega_pow(exp as u64);
                next[2 * i] = add_mod(x, y, q);
                next[2 * i + 1] = mul_mod(sub_mod(x, y, q), w, q);
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Inverse **cyclic** constant-geometry NTT (DIT).
    ///
    /// Consumes bit-reversed order, produces natural order; exact
    /// inverse of [`Self::forward_cyclic`].
    pub fn inverse_cyclic(&self, a: &[u64]) -> Vec<u64> {
        let n = self.ctx.dim();
        assert_eq!(a.len(), n, "input length must equal ring dimension");
        let q = self.ctx.modulus();
        let log_n = n.trailing_zeros();
        let mut cur = a.to_vec();
        let mut next = vec![0u64; n];
        for s in (0..log_n).rev() {
            let half = n / 2;
            for i in 0..half {
                let exp = (i >> s) << s;
                let w_inv = self.omega_inv_pow(exp as u64);
                let u = cur[2 * i];
                let v = mul_mod(cur[2 * i + 1], w_inv, q);
                next[i] = add_mod(u, v, q);
                next[i + half] = sub_mod(u, v, q);
            }
            std::mem::swap(&mut cur, &mut next);
        }
        let n_inv = inv_mod(n as u64, q).expect("N invertible");
        for x in cur.iter_mut() {
            *x = mul_mod(*x, n_inv, q);
        }
        cur
    }

    /// Negacyclic forward transform: coefficient form → evaluation form
    /// (bit-reversed evaluation order).
    pub fn forward(&self, p: &Poly) -> Poly {
        let q = self.ctx.modulus();
        let twisted: Vec<u64> = p
            .coeffs()
            .iter()
            .enumerate()
            .map(|(i, &c)| mul_mod(c, self.psi_pow(i), q))
            .collect();
        Poly::from_coeffs(self.forward_cyclic(&twisted), q)
    }

    /// Negacyclic inverse transform: evaluation form (bit-reversed) →
    /// coefficient form.
    pub fn inverse(&self, p: &Poly) -> Poly {
        let q = self.ctx.modulus();
        let mut c = self.inverse_cyclic(p.coeffs());
        for (i, x) in c.iter_mut().enumerate() {
            *x = mul_mod(*x, self.psi_inv_pow(i), q);
        }
        Poly::from_coeffs(c, q)
    }

    /// Negacyclic product using only constant-geometry passes.
    pub fn negacyclic_mul(&self, a: &Poly, b: &Poly) -> Poly {
        let ea = self.forward(a);
        let eb = self.forward(b);
        self.inverse(&ea.hadamard(&eb))
    }

    fn omega_pow(&self, e: u64) -> u64 {
        // omega_pows has N entries; exponents stay < N.
        self.omega_pows[e as usize % self.ctx.dim()]
    }

    fn omega_inv_pow(&self, e: u64) -> u64 {
        self.omega_inv_pows[e as usize % self.ctx.dim()]
    }

    fn psi_pow(&self, i: usize) -> u64 {
        self.psi_pows[i]
    }

    fn psi_inv_pow(&self, i: usize) -> u64 {
        self.psi_inv_pows[i]
    }
}

fn power_table(base: u64, n: usize, q: u64) -> Vec<u64> {
    let mut t = Vec::with_capacity(n);
    let mut x = 1u64;
    for _ in 0..n {
        t.push(x);
        x = mul_mod(x, base, q);
    }
    t
}

/// The fixed inter-stage permutation of the constant-geometry NTT:
/// element at position `p` moves to position
/// `(p << 1 | p >> (log N - 1)) mod N` (perfect shuffle).
pub fn perfect_shuffle_dest(p: usize, n: usize) -> usize {
    debug_assert!(n.is_power_of_two() && p < n);
    let log_n = n.trailing_zeros() as usize;
    ((p << 1) | (p >> (log_n - 1))) & (n - 1)
}

/// Decomposition of the perfect shuffle into the three phases UFC
/// routes on its 2D PE array (paper §IV-C1, after Miel '93):
/// `xshuffle` (moves data between PEs in the same row), `yshuffle`
/// (between PEs in the same column) and `rshuffle` (within a PE —
/// folded into the butterfly datapath in hardware).
///
/// Index layout (MSB→LSB): `[row bits | column bits | lane bits]`,
/// i.e. element `e` lives on PE `(row, col)` at lane `e mod lanes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShuffleDecomposition {
    rows: usize,
    cols: usize,
    lanes: usize,
}

impl ShuffleDecomposition {
    /// Creates a decomposition for a `rows × cols` PE array with
    /// `lanes` elements per PE.
    ///
    /// # Panics
    ///
    /// Panics unless all three dimensions are powers of two and at
    /// least 2 (the shuffle needs a bit from each field).
    pub fn new(rows: usize, cols: usize, lanes: usize) -> Self {
        assert!(
            rows.is_power_of_two() && cols.is_power_of_two() && lanes.is_power_of_two(),
            "all dimensions must be powers of two"
        );
        assert!(
            rows >= 2 && cols >= 2 && lanes >= 2,
            "dimensions must be >= 2"
        );
        Self { rows, cols, lanes }
    }

    /// Total number of elements `rows * cols * lanes`.
    pub fn len(&self) -> usize {
        self.rows * self.cols * self.lanes
    }

    /// Always false: the decomposition covers at least 8 elements.
    pub fn is_empty(&self) -> bool {
        false
    }

    fn split(&self, p: usize) -> (usize, usize, usize) {
        let l = p & (self.lanes - 1);
        let c = (p / self.lanes) & (self.cols - 1);
        let r = p / (self.lanes * self.cols);
        (r, c, l)
    }

    fn join(&self, r: usize, c: usize, l: usize) -> usize {
        (r * self.cols + c) * self.lanes + l
    }

    /// Phase 1 — `xshuffle`: destination of element at `p`, moving only
    /// along the row (row index unchanged).
    pub fn xshuffle_dest(&self, p: usize) -> usize {
        let (r, c, l) = self.split(p);
        let l_msb = l >> (self.lanes.trailing_zeros() - 1);
        let c_msb = c >> (self.cols.trailing_zeros() - 1);
        let c2 = ((c << 1) | l_msb) & (self.cols - 1);
        let l2 = ((l << 1) | c_msb) & (self.lanes - 1);
        self.join(r, c2, l2)
    }

    /// Phase 2 — `yshuffle`: destination of element at `p`, moving only
    /// along the column (column index unchanged).
    pub fn yshuffle_dest(&self, p: usize) -> usize {
        let (r, c, l) = self.split(p);
        let r_msb = r >> (self.rows.trailing_zeros() - 1);
        let r2 = ((r << 1) | (l & 1)) & (self.rows - 1);
        let l2 = (l & !1) | r_msb;
        self.join(r2, c, l2)
    }

    /// Phase 3 — `rshuffle`: within-PE lane permutation. For this
    /// decomposition it is the identity (the lane reordering was folded
    /// into the x/y phases' write offsets, mirroring how UFC folds
    /// rshuffle into the butterfly datapath).
    pub fn rshuffle_dest(&self, p: usize) -> usize {
        p
    }

    /// Applies the three phases in order, returning the composite
    /// destination. Equals [`perfect_shuffle_dest`] for every index —
    /// the invariant the interconnect co-design rests on.
    pub fn composite_dest(&self, p: usize) -> usize {
        self.rshuffle_dest(self.yshuffle_dest(self.xshuffle_dest(p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntt::bit_reverse_permute;
    use crate::prime::generate_ntt_prime;

    fn engine(n: usize) -> CgNtt {
        CgNtt::new(NttContext::new(n, generate_ntt_prime(n, 40).unwrap()))
    }

    #[test]
    fn cg_forward_matches_classical_bit_reversed() {
        for log_n in [2usize, 3, 5, 8] {
            let n = 1 << log_n;
            let e = engine(n);
            let input: Vec<u64> = (0..n as u64).map(|i| i * 31 + 5).collect();
            let cg = e.forward_cyclic(&input);
            let mut classical = input.clone();
            e.context().forward_cyclic(&mut classical);
            // CG-DIF emits bit-reversed order.
            let mut classical_br = classical;
            bit_reverse_permute(&mut classical_br);
            assert_eq!(cg, classical_br, "log_n = {log_n}");
        }
    }

    #[test]
    fn cg_roundtrip_cyclic() {
        let n = 64;
        let e = engine(n);
        let input: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37) % e.context().modulus())
            .collect();
        assert_eq!(e.inverse_cyclic(&e.forward_cyclic(&input)), input);
    }

    #[test]
    fn cg_negacyclic_mul_matches_schoolbook() {
        let n = 32;
        let e = engine(n);
        let q = e.context().modulus();
        let a = Poly::from_coeffs((0..n as u64).map(|i| i + 1).collect(), q);
        let b = Poly::from_coeffs((0..n as u64).map(|i| 2 * i + 3).collect(), q);
        assert_eq!(e.negacyclic_mul(&a, &b), a.negacyclic_mul_schoolbook(&b));
    }

    #[test]
    fn cg_negacyclic_roundtrip() {
        let n = 128;
        let e = engine(n);
        let q = e.context().modulus();
        let p = Poly::from_coeffs((0..n as u64).map(|i| (i * i) % q).collect(), q);
        assert_eq!(e.inverse(&e.forward(&p)), p);
    }

    #[test]
    fn perfect_shuffle_is_a_permutation() {
        let n = 256;
        let mut seen = vec![false; n];
        for p in 0..n {
            let d = perfect_shuffle_dest(p, n);
            assert!(!seen[d]);
            seen[d] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn stage_geometry_is_the_perfect_shuffle() {
        // The CG stage writes in[i] -> out[2i] and in[i + N/2] -> out[2i+1];
        // as an index map that is exactly perfect_shuffle_dest.
        let n = 64;
        for i in 0..n / 2 {
            assert_eq!(perfect_shuffle_dest(i, n), 2 * i);
            assert_eq!(perfect_shuffle_dest(i + n / 2, n), 2 * i + 1);
        }
    }

    #[test]
    fn three_phase_decomposition_equals_shuffle() {
        // 8x8 PE array with 4 lanes per PE (256 elements), plus other shapes.
        for (r, c, l) in [(8usize, 8usize, 4usize), (4, 8, 2), (2, 2, 2), (8, 8, 64)] {
            let d = ShuffleDecomposition::new(r, c, l);
            let n = d.len();
            for p in 0..n {
                assert_eq!(
                    d.composite_dest(p),
                    perfect_shuffle_dest(p, n),
                    "rows={r} cols={c} lanes={l} p={p}"
                );
            }
        }
    }

    #[test]
    fn x_phase_preserves_rows_y_phase_preserves_columns() {
        let d = ShuffleDecomposition::new(8, 8, 4);
        let lanes = 4;
        let cols = 8;
        for p in 0..d.len() {
            let row = |x: usize| x / (lanes * cols);
            let col = |x: usize| (x / lanes) % cols;
            assert_eq!(row(p), row(d.xshuffle_dest(p)), "xshuffle crossed rows");
            assert_eq!(
                col(d.xshuffle_dest(p)),
                col(d.yshuffle_dest(d.xshuffle_dest(p))),
                "yshuffle crossed columns"
            );
        }
    }
}
