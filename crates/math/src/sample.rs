//! Randomness for FHE: uniform ring elements, ternary/binary secrets,
//! and rounded-Gaussian noise.

use crate::poly::Poly;
use rand::Rng;

/// Samples a uniformly random polynomial over `Z_q`.
pub fn uniform_poly<R: Rng + ?Sized>(rng: &mut R, n: usize, q: u64) -> Poly {
    Poly::from_coeffs((0..n).map(|_| rng.gen_range(0..q)).collect(), q)
}

/// Samples a ternary secret polynomial with coefficients in `{-1,0,1}`.
pub fn ternary_poly<R: Rng + ?Sized>(rng: &mut R, n: usize, q: u64) -> Poly {
    let signed: Vec<i64> = (0..n).map(|_| rng.gen_range(-1..=1)).collect();
    Poly::from_signed(&signed, q)
}

/// Samples a binary secret vector (for LWE keys).
pub fn binary_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<u64> {
    (0..n).map(|_| rng.gen_range(0..=1u64)).collect()
}

/// Samples one rounded Gaussian with standard deviation `sigma`.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> i64 {
    // Box–Muller; two uniforms -> one normal.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (z * sigma).round() as i64
}

/// Samples a noise polynomial with rounded-Gaussian coefficients.
pub fn gaussian_poly<R: Rng + ?Sized>(rng: &mut R, n: usize, q: u64, sigma: f64) -> Poly {
    let signed: Vec<i64> = (0..n).map(|_| gaussian(rng, sigma)).collect();
    Poly::from_signed(&signed, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_stays_reduced() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = uniform_poly(&mut rng, 256, 97);
        assert!(p.coeffs().iter().all(|&c| c < 97));
    }

    #[test]
    fn ternary_values_are_ternary() {
        let mut rng = StdRng::seed_from_u64(8);
        let q = 1_000_003;
        let p = ternary_poly(&mut rng, 512, q);
        assert!(p.coeffs().iter().all(|&c| c == 0 || c == 1 || c == q - 1));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(9);
        let sigma = 3.2;
        let samples: Vec<i64> = (0..20_000).map(|_| gaussian(&mut rng, sigma)).collect();
        let mean = samples.iter().sum::<i64>() as f64 / samples.len() as f64;
        let var = samples
            .iter()
            .map(|&s| (s as f64 - mean).powi(2))
            .sum::<f64>()
            / samples.len() as f64;
        assert!(mean.abs() < 0.15, "mean drifted: {mean}");
        assert!(
            (var.sqrt() - sigma).abs() < 0.3,
            "sigma off: {}",
            var.sqrt()
        );
    }

    #[test]
    fn binary_vec_is_binary() {
        let mut rng = StdRng::seed_from_u64(10);
        assert!(binary_vec(&mut rng, 1000).iter().all(|&b| b <= 1));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = uniform_poly(&mut StdRng::seed_from_u64(42), 64, 12289);
        let b = uniform_poly(&mut StdRng::seed_from_u64(42), 64, 12289);
        assert_eq!(a, b);
    }
}
