//! Dependency-free limb and op parallelism built on
//! `std::thread::scope`.
//!
//! RNS operations are embarrassingly parallel across limbs: every limb
//! is an independent length-`n` vector with its own modulus. This
//! module exposes [`par_limbs`], which splits the flat limb-major
//! buffer of an [`crate::plane::RnsPlane`] into disjoint per-limb
//! chunks and fans them out over scoped threads. No thread pool crate
//! is involved (registry crates are unavailable in this build); scoped
//! threads are spawned per call, which amortizes fine at FHE sizes
//! (an NTT at N = 2^14 dwarfs a thread spawn).
//!
//! One level up, [`par_ops`]/[`par_ops_on`] parallelize across
//! *independent operations in a trace* — e.g. the element-wise ops of
//! one evaluator level, which touch disjoint ciphertexts — with a
//! self-scheduling queue: workers pull the next op index from a shared
//! atomic counter, so an op that finishes early immediately steals the
//! next one instead of idling behind a static partition. That matters
//! for op-level traces, whose per-op costs are far less uniform than
//! per-limb NTT costs.
//!
//! Determinism: limbs are assigned to workers by a fixed round-robin
//! of the limb index, and each limb is processed exactly once by one
//! worker, so results are bit-identical for every thread count. The
//! op-level queue hands out each index exactly once too; because the
//! ops it runs are data-disjoint by contract, the *schedule* may vary
//! between runs but the results never do — pinned by the 1-vs-N test
//! in `crates/math/tests` and consumed by `bench_math --par-ops`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global cap on worker threads. `0` means "auto" (use
/// `std::thread::available_parallelism`).
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Minimum total element count (`n · limbs`) before threads are
/// spawned at all; below this the scoped-spawn overhead outweighs the
/// work and everything runs serially on the caller's thread.
const PAR_MIN_WORK: usize = 1 << 14;

/// Caps the number of worker threads used by [`par_limbs`].
///
/// `0` restores the default (auto-detect). Returns the previous cap.
/// Results never depend on this setting — only wall-clock does.
pub fn set_max_threads(n: usize) -> usize {
    MAX_THREADS.swap(n, Ordering::SeqCst)
}

/// The number of worker threads [`par_limbs`] would use right now.
pub fn effective_threads() -> usize {
    match MAX_THREADS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Applies `f(limb_index, limb_chunk)` to every `n`-element chunk of
/// the flat limb-major buffer `data`, in parallel across limbs when
/// profitable.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `n` (for `n > 0`).
pub fn par_limbs<F>(n: usize, data: &mut [u64], f: F)
where
    F: Fn(usize, &mut [u64]) + Sync,
{
    if n == 0 || data.is_empty() {
        return;
    }
    assert_eq!(data.len() % n, 0, "flat buffer must be whole limbs");
    let limbs = data.len() / n;
    let threads = effective_threads().min(limbs);
    if threads <= 1 || limbs < 2 || data.len() < PAR_MIN_WORK {
        for (i, chunk) in data.chunks_mut(n).enumerate() {
            let _limb = ufc_trace::span_n("math", "par_limb", i as u64);
            f(i, chunk);
        }
        return;
    }
    // Hand each worker a round-robin share of the limbs. chunks_mut
    // yields disjoint borrows, so no synchronization is needed beyond
    // the scope join.
    let mut shares: Vec<Vec<(usize, &mut [u64])>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, chunk) in data.chunks_mut(n).enumerate() {
        shares[i % threads].push((i, chunk));
    }
    std::thread::scope(|scope| {
        for share in shares {
            scope.spawn(|| {
                {
                    let _worker = ufc_trace::span_n("math", "par_worker", share.len() as u64);
                    for (i, chunk) in share {
                        let _limb = ufc_trace::span_n("math", "par_limb", i as u64);
                        f(i, chunk);
                    }
                }
                // Flush inside the closure: scope join only orders
                // closure returns, not TLS destructors, so relying on
                // the Drop-flush would race a `finish` right after
                // the fan-out.
                ufc_trace::flush_current_thread();
            });
        }
    });
}

/// Applies `f(op_index)` to every index in `0..count` exactly once,
/// fanning independent ops out over a self-scheduling worker queue.
///
/// Unlike [`par_limbs`]'s static round-robin, ops are *pulled*: each
/// worker grabs the next index from a shared counter when it finishes
/// its current op, so skewed per-op costs (a bootstrap next to an
/// add) cannot strand work behind a slow static share. `f` must only
/// touch data owned by its own index; under that contract results are
/// independent of the thread count and of the (nondeterministic)
/// schedule.
///
/// Respects [`set_max_threads`]; runs serially on the caller's thread
/// when the cap or the op count leaves a single worker.
pub fn par_ops<F>(count: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = effective_threads().min(count);
    if threads <= 1 {
        for i in 0..count {
            let _op = ufc_trace::span_n("math", "par_op", i as u64);
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                {
                    let _worker = ufc_trace::span_n("math", "par_ops_worker", count as u64);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        let _op = ufc_trace::span_n("math", "par_op", i as u64);
                        f(i);
                    }
                }
                // Flush inside the closure — see par_limbs.
                ufc_trace::flush_current_thread();
            });
        }
    });
}

/// [`par_ops`] over a slice of owned work items: `f(i, &mut items[i])`
/// with exclusive access to each item.
///
/// Exclusivity is threaded through a per-item mutex so the queue stays
/// safe code; every lock is taken exactly once by whichever worker
/// pulled that index, so the locks never contend and cost one
/// uncontended CAS per op.
pub fn par_ops_on<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let slots: Vec<std::sync::Mutex<&mut T>> =
        items.iter_mut().map(std::sync::Mutex::new).collect();
    par_ops(slots.len(), |i| {
        let mut item = slots[i].lock().expect("per-op slot poisoned");
        f(i, &mut item);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_every_limb_exactly_once() {
        let n = 8;
        let limbs = 5;
        let mut data = vec![0u64; n * limbs];
        par_limbs(n, &mut data, |i, chunk| {
            for x in chunk.iter_mut() {
                *x += i as u64 + 1;
            }
        });
        for (i, chunk) in data.chunks(n).enumerate() {
            assert!(chunk.iter().all(|&x| x == i as u64 + 1));
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        // Big enough to cross PAR_MIN_WORK so the threaded path runs.
        let n = 4096;
        let limbs = 6;
        let mut serial = vec![1u64; n * limbs];
        let mut parallel = serial.clone();
        let f = |i: usize, chunk: &mut [u64]| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (i as u64).wrapping_mul(31).wrapping_add(j as u64);
            }
        };
        let prev = set_max_threads(1);
        par_limbs(n, &mut serial, f);
        set_max_threads(4);
        par_limbs(n, &mut parallel, f);
        set_max_threads(prev);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_ops_runs_every_op_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let hits: Vec<AtomicU32> = (0..37).map(|_| AtomicU32::new(0)).collect();
        let prev = set_max_threads(4);
        par_ops(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        set_max_threads(prev);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "op {i}");
        }
    }

    #[test]
    fn par_ops_on_results_independent_of_thread_count() {
        let work = |i: usize, buf: &mut Vec<u64>| {
            for (j, x) in buf.iter_mut().enumerate() {
                *x = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(j as u64);
            }
        };
        let mut serial: Vec<Vec<u64>> = (0..9).map(|_| vec![0u64; 64]).collect();
        let mut parallel = serial.clone();
        let prev = set_max_threads(1);
        par_ops_on(&mut serial, work);
        set_max_threads(4);
        par_ops_on(&mut parallel, work);
        set_max_threads(prev);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_ops_zero_count_is_a_noop() {
        par_ops(0, |_| panic!("must not be called"));
    }

    #[test]
    fn empty_and_zero_dim_are_noops() {
        let mut data: Vec<u64> = Vec::new();
        par_limbs(4, &mut data, |_, _| panic!("must not be called"));
        let mut data = vec![1u64; 4];
        par_limbs(0, &mut data, |_, _| panic!("must not be called"));
        assert_eq!(data, vec![1u64; 4]);
    }
}
