//! Dependency-free limb parallelism built on `std::thread::scope`.
//!
//! RNS operations are embarrassingly parallel across limbs: every limb
//! is an independent length-`n` vector with its own modulus. This
//! module exposes [`par_limbs`], which splits the flat limb-major
//! buffer of an [`crate::plane::RnsPlane`] into disjoint per-limb
//! chunks and fans them out over scoped threads. No thread pool crate
//! is involved (registry crates are unavailable in this build); scoped
//! threads are spawned per call, which amortizes fine at FHE sizes
//! (an NTT at N = 2^14 dwarfs a thread spawn).
//!
//! Determinism: limbs are assigned to workers by a fixed round-robin
//! of the limb index, and each limb is processed exactly once by one
//! worker, so results are bit-identical for every thread count.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global cap on worker threads. `0` means "auto" (use
/// `std::thread::available_parallelism`).
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Minimum total element count (`n · limbs`) before threads are
/// spawned at all; below this the scoped-spawn overhead outweighs the
/// work and everything runs serially on the caller's thread.
const PAR_MIN_WORK: usize = 1 << 14;

/// Caps the number of worker threads used by [`par_limbs`].
///
/// `0` restores the default (auto-detect). Returns the previous cap.
/// Results never depend on this setting — only wall-clock does.
pub fn set_max_threads(n: usize) -> usize {
    MAX_THREADS.swap(n, Ordering::SeqCst)
}

/// The number of worker threads [`par_limbs`] would use right now.
pub fn effective_threads() -> usize {
    match MAX_THREADS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Applies `f(limb_index, limb_chunk)` to every `n`-element chunk of
/// the flat limb-major buffer `data`, in parallel across limbs when
/// profitable.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `n` (for `n > 0`).
pub fn par_limbs<F>(n: usize, data: &mut [u64], f: F)
where
    F: Fn(usize, &mut [u64]) + Sync,
{
    if n == 0 || data.is_empty() {
        return;
    }
    assert_eq!(data.len() % n, 0, "flat buffer must be whole limbs");
    let limbs = data.len() / n;
    let threads = effective_threads().min(limbs);
    if threads <= 1 || limbs < 2 || data.len() < PAR_MIN_WORK {
        for (i, chunk) in data.chunks_mut(n).enumerate() {
            let _limb = ufc_trace::span_n("math", "par_limb", i as u64);
            f(i, chunk);
        }
        return;
    }
    // Hand each worker a round-robin share of the limbs. chunks_mut
    // yields disjoint borrows, so no synchronization is needed beyond
    // the scope join.
    let mut shares: Vec<Vec<(usize, &mut [u64])>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, chunk) in data.chunks_mut(n).enumerate() {
        shares[i % threads].push((i, chunk));
    }
    std::thread::scope(|scope| {
        for share in shares {
            scope.spawn(|| {
                {
                    let _worker = ufc_trace::span_n("math", "par_worker", share.len() as u64);
                    for (i, chunk) in share {
                        let _limb = ufc_trace::span_n("math", "par_limb", i as u64);
                        f(i, chunk);
                    }
                }
                // Flush inside the closure: scope join only orders
                // closure returns, not TLS destructors, so relying on
                // the Drop-flush would race a `finish` right after
                // the fan-out.
                ufc_trace::flush_current_thread();
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_every_limb_exactly_once() {
        let n = 8;
        let limbs = 5;
        let mut data = vec![0u64; n * limbs];
        par_limbs(n, &mut data, |i, chunk| {
            for x in chunk.iter_mut() {
                *x += i as u64 + 1;
            }
        });
        for (i, chunk) in data.chunks(n).enumerate() {
            assert!(chunk.iter().all(|&x| x == i as u64 + 1));
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        // Big enough to cross PAR_MIN_WORK so the threaded path runs.
        let n = 4096;
        let limbs = 6;
        let mut serial = vec![1u64; n * limbs];
        let mut parallel = serial.clone();
        let f = |i: usize, chunk: &mut [u64]| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (i as u64).wrapping_mul(31).wrapping_add(j as u64);
            }
        };
        let prev = set_max_threads(1);
        par_limbs(n, &mut serial, f);
        set_max_threads(4);
        par_limbs(n, &mut parallel, f);
        set_max_threads(prev);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_zero_dim_are_noops() {
        let mut data: Vec<u64> = Vec::new();
        par_limbs(4, &mut data, |_, _| panic!("must not be called"));
        let mut data = vec![1u64; 4];
        par_limbs(0, &mut data, |_, _| panic!("must not be called"));
        assert_eq!(data, vec![1u64; 4]);
    }
}
