//! Double-precision complex FFT and FFT-based negacyclic
//! multiplication — the datapath Strix builds in hardware (§VII-D:
//! "Strix consists of normal 32-bit arithmetic units with 64-bit FFT
//! units due to the double-precision requirement for FFT. Compared to
//! FFT, NTT provides accurate results but requires extra modular
//! reduction").
//!
//! This module exists for two reasons: it backs the Strix-style
//! functional TFHE variant (`ufc-tfhe`'s FFT external products), and
//! its tests quantify the §VII-D trade-off — FFT results carry
//! rounding error that grows with the operand magnitudes, while the
//! NTT path is exact.

use crate::modops::{from_signed, to_signed};
use crate::poly::Poly;

/// A complex number as `(re, im)`.
pub type C64 = (f64, f64);

#[inline]
fn c_add(a: C64, b: C64) -> C64 {
    (a.0 + b.0, a.1 + b.1)
}

#[inline]
fn c_sub(a: C64, b: C64) -> C64 {
    (a.0 - b.0, a.1 - b.1)
}

#[inline]
fn c_mul(a: C64, b: C64) -> C64 {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// In-place iterative radix-2 complex FFT (Cooley–Tukey,
/// natural-order in/out). `inverse` applies the conjugate transform
/// and the `1/n` normalization.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft(data: &mut [C64], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let w_len = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = (1.0, 0.0);
            for j in 0..len / 2 {
                let u = data[start + j];
                let v = c_mul(data[start + j + len / 2], w);
                data[start + j] = c_add(u, v);
                data[start + j + len / 2] = c_sub(u, v);
                w = c_mul(w, w_len);
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for x in data.iter_mut() {
            x.0 *= inv_n;
            x.1 *= inv_n;
        }
    }
}

/// Negacyclic (twisted) forward FFT of signed coefficients: applies
/// the `e^{iπk/N}` twist so the cyclic FFT computes the negacyclic
/// convolution.
pub fn negacyclic_fft(signed: &[i64]) -> Vec<C64> {
    let n = signed.len();
    let mut data: Vec<C64> = signed
        .iter()
        .enumerate()
        .map(|(k, &c)| {
            let th = std::f64::consts::PI * k as f64 / n as f64;
            c_mul((c as f64, 0.0), (th.cos(), th.sin()))
        })
        .collect();
    fft(&mut data, false);
    data
}

/// Inverse of [`negacyclic_fft`], rounding back to signed integers.
///
/// Values must fit `i64`; the modular variant inside
/// [`negacyclic_mul_fft`] handles larger magnitudes.
pub fn negacyclic_ifft(mut data: Vec<C64>) -> Vec<i64> {
    negacyclic_ifft_f64(&mut data)
        .into_iter()
        .map(|v| v.round() as i64)
        .collect()
}

/// Untwisted inverse FFT returning raw `f64` coefficient values.
fn negacyclic_ifft_f64(data: &mut [C64]) -> Vec<f64> {
    let n = data.len();
    fft(data, true);
    data.iter()
        .enumerate()
        .map(|(k, &v)| {
            let th = -std::f64::consts::PI * k as f64 / n as f64;
            c_mul(v, (th.cos(), th.sin())).0
        })
        .collect()
}

/// Negacyclic polynomial product over `Z_q` computed through the
/// double-precision FFT (the Strix datapath). Exact only while the
/// intermediate magnitudes stay below the ~2^52 mantissa budget;
/// beyond that, rounding error leaks into the result — the §VII-D
/// trade-off.
pub fn negacyclic_mul_fft(a: &Poly, b: &Poly) -> Poly {
    assert_eq!(a.dim(), b.dim(), "dimension mismatch");
    assert_eq!(a.modulus(), b.modulus(), "modulus mismatch");
    let q = a.modulus();
    let sa: Vec<i64> = a.coeffs().iter().map(|&c| to_signed(c, q)).collect();
    let sb: Vec<i64> = b.coeffs().iter().map(|&c| to_signed(c, q)).collect();
    let fa = negacyclic_fft(&sa);
    let fb = negacyclic_fft(&sb);
    let mut prod: Vec<C64> = fa.iter().zip(&fb).map(|(&x, &y)| c_mul(x, y)).collect();
    // Reduce mod q in the f64 domain: magnitudes can exceed i64, and
    // the residual f64 error here *is* the §VII-D precision loss.
    let qf = q as f64;
    let coeffs: Vec<u64> = negacyclic_ifft_f64(&mut prod)
        .into_iter()
        .map(|v| {
            let r = v.round().rem_euclid(qf);
            from_signed(r as i64, q)
        })
        .collect();
    Poly::from_coeffs(coeffs, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntt::NttContext;
    use crate::prime::generate_ntt_prime;

    #[test]
    fn fft_roundtrip() {
        let orig: Vec<C64> = (0..64).map(|i| (i as f64, -(i as f64) / 3.0)).collect();
        let mut data = orig.clone();
        fft(&mut data, false);
        fft(&mut data, true);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn negacyclic_fft_roundtrip() {
        let signed: Vec<i64> = (0..128).map(|i| (i * 37 % 101) - 50).collect();
        let back = negacyclic_ifft(negacyclic_fft(&signed));
        assert_eq!(back, signed);
    }

    #[test]
    fn fft_mul_matches_ntt_for_small_operands() {
        // With small operands the FFT stays within its mantissa
        // budget and agrees exactly with the (always-exact) NTT.
        let n = 256;
        let q = generate_ntt_prime(n, 31).unwrap();
        let ctx = NttContext::new(n, q);
        let a = Poly::from_signed(&(0..n as i64).map(|i| i % 128 - 64).collect::<Vec<_>>(), q);
        let b = Poly::from_signed(
            &(0..n as i64).map(|i| (i * 7) % 64 - 32).collect::<Vec<_>>(),
            q,
        );
        assert_eq!(negacyclic_mul_fft(&a, &b), ctx.negacyclic_mul(&a, &b));
    }

    #[test]
    fn fft_loses_precision_on_large_operands_ntt_does_not() {
        // §VII-D: "NTT provides accurate results". Push operands near
        // the modulus so Σ a_i·b_j reaches ~N·q² ≈ 2^70 >> 2^52: the
        // FFT product must deviate from the exact NTT product.
        let n = 256usize;
        let q = generate_ntt_prime(n, 31).unwrap();
        let ctx = NttContext::new(n, q);
        let big = (q / 2 - 1) as i64;
        let a = Poly::from_signed(&vec![big; n], q);
        let b = Poly::from_signed(&vec![-big; n], q);
        let exact = ctx.negacyclic_mul(&a, &b);
        let approx = negacyclic_mul_fft(&a, &b);
        assert_ne!(exact, approx, "FFT at full magnitude cannot stay exact");
        // Sanity: the schoolbook reference agrees with the NTT.
        assert_eq!(exact, a.negacyclic_mul_schoolbook(&b));
    }

    #[test]
    fn fft_is_accurate_in_the_tfhe_regime() {
        // TFHE external products multiply gadget digits (|d| ≤ B/2)
        // by torus words — the regime Strix's 64-bit FFT is built
        // for. Verify exactness there.
        let n = 1024;
        let q = generate_ntt_prime(n, 31).unwrap();
        let ctx = NttContext::new(n, q);
        let digits = Poly::from_signed(
            &(0..n as i64).map(|i| (i % 128) - 64).collect::<Vec<_>>(),
            q,
        );
        // Torus operand kept within the product budget:
        // N · B/2 · |m| < 2^52  →  |m| < 2^52 / (2^10 · 2^6) = 2^36.
        let m = Poly::from_signed(
            &(0..n as i64)
                .map(|i| (i * 31415) % (1 << 24))
                .collect::<Vec<_>>(),
            q,
        );
        assert_eq!(
            negacyclic_mul_fft(&digits, &m),
            ctx.negacyclic_mul(&digits, &m)
        );
    }
}
