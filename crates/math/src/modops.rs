//! Scalar modular arithmetic over `u64` moduli (up to 62 bits).
//!
//! These are the primitive operations executed by UFC's modular ALU
//! lanes: add, subtract, multiply (with Barrett and Shoup variants used
//! by the NTT), exponentiation and inversion.

/// Adds two residues modulo `q`.
///
/// Inputs must already be reduced (`a, b < q`); the result is reduced.
///
/// # Panics
///
/// Debug-panics when an input is not reduced.
#[inline]
pub fn add_mod(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(a < q && b < q);
    let s = a + b;
    if s >= q {
        s - q
    } else {
        s
    }
}

/// Subtracts `b` from `a` modulo `q`.
#[inline]
pub fn sub_mod(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(a < q && b < q);
    if a >= b {
        a - b
    } else {
        a + q - b
    }
}

/// Negates `a` modulo `q`.
#[inline]
pub fn neg_mod(a: u64, q: u64) -> u64 {
    debug_assert!(a < q);
    if a == 0 {
        0
    } else {
        q - a
    }
}

/// Multiplies two residues modulo `q` using 128-bit intermediate math.
#[inline]
pub fn mul_mod(a: u64, b: u64, q: u64) -> u64 {
    ((a as u128 * b as u128) % q as u128) as u64
}

/// Computes `base^exp mod q` by square-and-multiply.
pub fn pow_mod(mut base: u64, mut exp: u64, q: u64) -> u64 {
    base %= q;
    let mut acc: u64 = 1 % q;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, q);
        }
        base = mul_mod(base, base, q);
        exp >>= 1;
    }
    acc
}

/// Computes the modular inverse of `a` modulo `q`.
///
/// Returns `None` when `gcd(a, q) != 1` (e.g. `a == 0`).
pub fn inv_mod(a: u64, q: u64) -> Option<u64> {
    // Extended Euclid over i128 to dodge sign gymnastics.
    let (mut old_r, mut r) = (a as i128, q as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let quot = old_r / r;
        (old_r, r) = (r, old_r - quot * r);
        (old_s, s) = (s, old_s - quot * s);
    }
    if old_r != 1 {
        return None;
    }
    let mut inv = old_s % q as i128;
    if inv < 0 {
        inv += q as i128;
    }
    Some(inv as u64)
}

/// Barrett reducer for a fixed modulus.
///
/// Precomputes `floor(2^128 / q)` so that reduction of a 128-bit product
/// costs two multiplications — the structure UFC's modular multiplier
/// lanes implement in hardware (the paper uses Montgomery; both are
/// provided, see [`crate::mont`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Barrett {
    q: u64,
    /// floor(2^128 / q), as (hi, lo) 64-bit limbs.
    mu_hi: u64,
    mu_lo: u64,
}

impl Barrett {
    /// Creates a reducer for modulus `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q < 2` or `q >= 2^62`.
    pub fn new(q: u64) -> Self {
        assert!(q >= 2, "modulus must be >= 2");
        assert!(q < (1 << 62), "modulus must fit in 62 bits");
        // mu = floor(2^128 / q). Compute via u128 division twice.
        let mu_hi = (u128::MAX / q as u128) >> 64;
        // lo limb: ((2^128 - 1) / q) approximates floor(2^128/q) because
        // q does not divide 2^128 (q >= 2 is not a power of two >= 2^64).
        let mu = u128::MAX / q as u128;
        let mu_lo = mu as u64;
        Self {
            q,
            mu_hi: mu_hi as u64,
            mu_lo,
        }
    }

    /// The modulus this reducer was built for.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// Reduces a full 128-bit value modulo `q`.
    #[inline]
    pub fn reduce_u128(&self, x: u128) -> u64 {
        // Estimate quotient: qhat = floor(x * mu / 2^128).
        let mu = ((self.mu_hi as u128) << 64) | self.mu_lo as u128;
        let x_hi = x >> 64;
        let x_lo = x & 0xFFFF_FFFF_FFFF_FFFF;
        let mu_hi = mu >> 64;
        let mu_lo = mu & 0xFFFF_FFFF_FFFF_FFFF;
        // qhat = hi 128 bits of x * mu.
        let ll = x_lo * mu_lo;
        let lh = x_lo * mu_hi;
        let hl = x_hi * mu_lo;
        let hh = x_hi * mu_hi;
        let carry =
            ((ll >> 64) + (lh & 0xFFFF_FFFF_FFFF_FFFF) + (hl & 0xFFFF_FFFF_FFFF_FFFF)) >> 64;
        let qhat = hh + (lh >> 64) + (hl >> 64) + carry;
        let mut r = x.wrapping_sub(qhat.wrapping_mul(self.q as u128)) as u64;
        while r >= self.q {
            r -= self.q;
        }
        r
    }

    /// Multiplies two reduced residues modulo `q`.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        self.reduce_u128(a as u128 * b as u128)
    }
}

/// Shoup multiplication: multiply by a *precomputed constant* with a
/// single `u64` high-product and one conditional subtraction.
///
/// The NTT butterfly lanes in UFC multiply by twiddle factors that are
/// known ahead of time, which is exactly the Shoup setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShoupMul {
    /// The constant operand `w` (reduced mod q).
    w: u64,
    /// `floor(w * 2^64 / q)`.
    w_shoup: u64,
    q: u64,
}

impl ShoupMul {
    /// Precomputes the Shoup representation of constant `w` modulo `q`.
    ///
    /// # Panics
    ///
    /// Panics if `w >= q`.
    pub fn new(w: u64, q: u64) -> Self {
        assert!(w < q, "constant must be reduced");
        let w_shoup = (((w as u128) << 64) / q as u128) as u64;
        Self { w, w_shoup, q }
    }

    /// The constant operand.
    #[inline]
    pub fn constant(&self) -> u64 {
        self.w
    }

    /// Computes `a * w mod q`.
    #[inline]
    pub fn mul(&self, a: u64) -> u64 {
        let hi = ((a as u128 * self.w_shoup as u128) >> 64) as u64;
        let r = (a.wrapping_mul(self.w)).wrapping_sub(hi.wrapping_mul(self.q));
        if r >= self.q {
            r - self.q
        } else {
            r
        }
    }
}

/// Precomputes the Shoup companion word `floor(w · 2^64 / q)` of a
/// constant `w < q`, for use with [`mul_shoup`] / [`mul_shoup_lazy`].
#[inline]
pub fn shoup_precompute(w: u64, q: u64) -> u64 {
    debug_assert!(w < q, "constant must be reduced");
    (((w as u128) << 64) / q as u128) as u64
}

/// Shoup multiplication by a precomputed constant, *lazy* variant:
/// returns `a · w mod q` as a representative in `[0, 2q)`.
///
/// Unlike the fully-reduced variant this accepts **any** `a < 2^64`
/// (not just reduced residues), which is what lets the Harvey NTT
/// butterflies defer reduction: with `q < 2^62` the stage values stay
/// below `4q` and a single correction pass at the end suffices.
///
/// Proof sketch: `w_shoup = (w·2^64 − r₀)/q` with `0 ≤ r₀ < q`, so
/// `hi = floor(a·w_shoup / 2^64)` is within 2 of `a·w/q` from below,
/// giving `0 ≤ a·w − hi·q < 2q`. The wrapping arithmetic is exact
/// because `2q < 2^64`.
#[inline]
pub fn mul_shoup_lazy(a: u64, w: u64, w_shoup: u64, q: u64) -> u64 {
    let hi = ((a as u128 * w_shoup as u128) >> 64) as u64;
    a.wrapping_mul(w).wrapping_sub(hi.wrapping_mul(q))
}

/// Shoup multiplication by a precomputed constant, fully reduced.
///
/// `w_shoup` must come from [`shoup_precompute`]`(w, q)`; `a` may be
/// any `u64` (the result is still exact mod `q`), the return value is
/// in `[0, q)`.
#[inline]
pub fn mul_shoup(a: u64, w: u64, w_shoup: u64, q: u64) -> u64 {
    let r = mul_shoup_lazy(a, w, w_shoup, q);
    if r >= q {
        r - q
    } else {
        r
    }
}

/// Brings a lazy Harvey representative `v < 4q` back to canonical
/// `[0, q)` with two conditional subtractions — the correction pass the
/// NTT kernels run after their deferred-reduction stage walks.
#[inline]
pub fn reduce_4q(v: u64, q: u64) -> u64 {
    debug_assert!(v < 4 * q);
    let two_q = 2 * q;
    let v = if v >= two_q { v - two_q } else { v };
    if v >= q {
        v - q
    } else {
        v
    }
}

/// Computes `2^64 mod q` — the radix constant used to fold a 128-bit
/// product `hi·2^64 + lo` through two Shoup multiplies on vector lanes
/// that lack a native 128-bit reduction.
#[inline]
pub fn pow2_64_mod(q: u64) -> u64 {
    ((1u128 << 64) % q as u128) as u64
}

/// Bit width of the product halves produced by the AVX-512 IFMA
/// `vpmadd52lo/hi` instructions: each lane multiplies two 52-bit
/// operands and accumulates either the low or the high 52 bits of the
/// 104-bit product.
pub const IFMA_PRODUCT_BITS: u32 = 52;

/// Mask selecting the low 52 bits of a lane.
pub const M52: u64 = (1u64 << IFMA_PRODUCT_BITS) - 1;

/// Largest modulus bit width the 52-bit (IFMA) kernel generation
/// supports.
///
/// The Harvey lazy stages keep values below `4q` and the element-wise
/// Barrett path below `4q` as well; both must fit the 52-bit lane
/// domain, so `4q < 2^52`, i.e. `q < 2^50`. (The instruction's operand
/// width is 52 bits; the two-bit gap is the lazy-reduction headroom.)
pub const IFMA_MAX_MODULUS_BITS: u32 = 50;

/// Whether modulus `q` fits the 52-bit (IFMA) kernel generation.
#[inline]
pub fn ifma_modulus_ok(q: u64) -> bool {
    (2..(1u64 << IFMA_MAX_MODULUS_BITS)).contains(&q)
}

/// Precomputes the 52-bit Shoup companion word `floor(w · 2^52 / q)` of
/// a constant `w < q < 2^50`, for use with [`mul_shoup52_lazy`].
///
/// This is the twiddle representation of the IFMA kernel generation:
/// `vpmadd52hi` yields `floor(a · w52 / 2^52)` in one instruction, so
/// the quotient estimate that costs a 128-bit high product on 64-bit
/// lanes is a single fused multiply here.
#[inline]
pub fn shoup52_precompute(w: u64, q: u64) -> u64 {
    debug_assert!(w < q, "constant must be reduced");
    debug_assert!(ifma_modulus_ok(q), "modulus must fit 50 bits");
    (((w as u128) << IFMA_PRODUCT_BITS) / q as u128) as u64
}

/// 52-bit Shoup multiplication by a precomputed constant, *lazy*
/// variant: returns `a · w mod q` as a representative in `[0, 2q)`.
///
/// Accepts any `a < 2^52` (in particular the `< 4q` Harvey stage
/// values), mirroring [`mul_shoup_lazy`] with the radix lowered from
/// `2^64` to `2^52`. The subtraction is computed in 64-bit wrapping
/// arithmetic and masked to 52 bits, which matches what the IFMA lanes
/// do (`vpmadd52lo` returns products mod `2^52`): the true value
/// `a·w − hi·q` lies in `[0, 2q) ⊂ [0, 2^52)`, so reducing both
/// products mod `2^52` before subtracting cannot change it.
///
/// Bound proof, as for the 64-bit variant: `w52 = (w·2^52 − r₀)/q` with
/// `0 ≤ r₀ < q`, so `hi = floor(a·w52 / 2^52)` undershoots `a·w/q` by
/// less than 2, giving `0 ≤ a·w − hi·q < 2q`.
#[inline]
pub fn mul_shoup52_lazy(a: u64, w: u64, w52: u64, q: u64) -> u64 {
    debug_assert!(a <= M52, "lazy operand must fit 52 bits");
    let hi = ((a as u128 * w52 as u128) >> IFMA_PRODUCT_BITS) as u64;
    a.wrapping_mul(w).wrapping_sub(hi.wrapping_mul(q)) & M52
}

/// 52-bit Shoup multiplication by a precomputed constant, fully
/// reduced: `a · w mod q` in `[0, q)` for any `a < 2^52`.
#[inline]
pub fn mul_shoup52(a: u64, w: u64, w52: u64, q: u64) -> u64 {
    let r = mul_shoup52_lazy(a, w, w52, q);
    if r >= q {
        r - q
    } else {
        r
    }
}

/// Maps a signed integer into `[0, q)`.
#[inline]
pub fn from_signed(v: i64, q: u64) -> u64 {
    if v >= 0 {
        (v as u64) % q
    } else {
        let m = ((-v) as u64) % q;
        if m == 0 {
            0
        } else {
            q - m
        }
    }
}

/// Maps a residue in `[0, q)` to its centered representative in
/// `(-q/2, q/2]`.
#[inline]
pub fn to_signed(v: u64, q: u64) -> i64 {
    debug_assert!(v < q);
    if v > q / 2 {
        -((q - v) as i64)
    } else {
        v as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: u64 = 0x1fff_ffff_ffff_c001; // a 61-bit prime-ish test modulus
    const P: u64 = 1_152_921_504_598_720_513; // 2^60 - 2^14 + 1, NTT prime

    #[test]
    fn add_sub_roundtrip() {
        assert_eq!(add_mod(3, 4, 11), 7);
        assert_eq!(add_mod(7, 9, 11), 5);
        assert_eq!(sub_mod(3, 4, 11), 10);
        assert_eq!(sub_mod(add_mod(5, 9, 11), 9, 11), 5);
    }

    #[test]
    fn neg_is_additive_inverse() {
        for a in 0..11u64 {
            assert_eq!(add_mod(a, neg_mod(a, 11), 11), 0);
        }
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(pow_mod(2, 10, 1_000_000_007), 1024);
        assert_eq!(pow_mod(0, 0, 7), 1);
        assert_eq!(pow_mod(5, 0, 7), 1);
        assert_eq!(pow_mod(5, 1, 7), 5);
    }

    #[test]
    fn inv_mod_matches_fermat() {
        // P is prime, so inverse equals a^(P-2).
        for a in [1u64, 2, 12345, P - 1, 987654321] {
            assert_eq!(inv_mod(a, P).unwrap(), pow_mod(a, P - 2, P));
        }
    }

    #[test]
    fn inv_mod_rejects_non_coprime() {
        assert_eq!(inv_mod(0, 7), None);
        assert_eq!(inv_mod(6, 12), None);
    }

    #[test]
    fn barrett_matches_naive() {
        let br = Barrett::new(Q);
        let pairs = [
            (0u64, 0u64),
            (1, Q - 1),
            (Q - 1, Q - 1),
            (123_456_789, 987_654_321),
            (Q / 2, Q / 3),
        ];
        for (a, b) in pairs {
            assert_eq!(br.mul(a, b), mul_mod(a, b, Q), "a={a} b={b}");
        }
    }

    #[test]
    fn barrett_reduce_u128_full_range() {
        let br = Barrett::new(P);
        for x in [0u128, 1, P as u128, u128::MAX / 2, u128::MAX] {
            assert_eq!(br.reduce_u128(x), (x % P as u128) as u64);
        }
    }

    #[test]
    fn shoup_matches_naive() {
        let w = 0x1234_5678_9abc_def0 % P;
        let sm = ShoupMul::new(w, P);
        for a in [0u64, 1, P - 1, 42, P / 2] {
            assert_eq!(sm.mul(a), mul_mod(a, w, P));
        }
    }

    #[test]
    fn shoup_lazy_is_congruent_and_bounded() {
        let w = 0x1234_5678_9abc_def0 % P;
        let ws = shoup_precompute(w, P);
        for a in [0u64, 1, P - 1, 2 * P - 1, 4 * P - 1, u64::MAX] {
            let r = mul_shoup_lazy(a, w, ws, P);
            assert!(r < 2 * P, "lazy result must stay below 2q");
            assert_eq!(r % P, mul_mod(a % P, w, P));
            assert_eq!(mul_shoup(a, w, ws, P), mul_mod(a % P, w, P));
        }
    }

    #[test]
    fn reduce_4q_matches_mod() {
        for v in [0u64, 1, P - 1, P, 2 * P - 1, 2 * P, 3 * P + 5, 4 * P - 1] {
            assert_eq!(reduce_4q(v, P), v % P, "v={v}");
        }
    }

    #[test]
    fn pow2_64_mod_matches_definition() {
        for q in [2u64, 3, 11, P, Q, (1 << 62) - 57] {
            assert_eq!(pow2_64_mod(q) as u128, (1u128 << 64) % q as u128, "q={q}");
        }
    }

    #[test]
    fn shoup52_lazy_is_congruent_and_bounded() {
        // 50-bit NTT-friendly prime (the IFMA ceiling) and a small one.
        for q in [1_125_899_906_826_241u64, 65_537, 12_289] {
            assert!(ifma_modulus_ok(q));
            let w = 0x1234_5678_9abc_def0 % q;
            let w52 = shoup52_precompute(w, q);
            for a in [0u64, 1, q - 1, 2 * q - 1, 4 * q - 1, M52] {
                let r = mul_shoup52_lazy(a, w, w52, q);
                assert!(r < 2 * q, "lazy result must stay below 2q");
                assert_eq!(r % q, mul_mod(a % q, w, q));
                assert_eq!(mul_shoup52(a, w, w52, q), mul_mod(a % q, w, q));
            }
        }
    }

    #[test]
    fn ifma_modulus_ok_boundaries() {
        assert!(ifma_modulus_ok(2));
        assert!(ifma_modulus_ok((1 << 50) - 1));
        assert!(!ifma_modulus_ok(1 << 50));
        assert!(!ifma_modulus_ok(u64::MAX));
        assert!(!ifma_modulus_ok(0));
        assert!(!ifma_modulus_ok(1));
    }

    #[test]
    fn signed_roundtrip() {
        for v in [-5i64, -1, 0, 1, 5] {
            assert_eq!(to_signed(from_signed(v, 101), 101), v);
        }
        assert_eq!(from_signed(-101, 101), 0);
    }
}
