//! Dense polynomials over `Z_q`, the data type flowing through every
//! UFC primitive (Table I of the paper: RLWE polynomials in coefficient
//! or evaluation form).

use crate::modops::{add_mod, from_signed, mul_mod, neg_mod, shoup_precompute, sub_mod, Barrett};

/// Which basis a polynomial's limb data is expressed in.
///
/// UFC's compiler tracks this per polynomial because NTT/iNTT macro-ops
/// convert between the two and element-wise ops require matching forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Form {
    /// Coefficient (original) form.
    Coeff,
    /// Evaluation (NTT) form.
    Eval,
}

/// A dense polynomial with coefficients in `Z_q`.
///
/// The degree bound (ring dimension) is implied by the coefficient
/// vector's length; all arithmetic requires both operands to share the
/// same modulus and length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    coeffs: Vec<u64>,
    modulus: u64,
}

impl Poly {
    /// Creates the zero polynomial of dimension `n`.
    pub fn zero(n: usize, modulus: u64) -> Self {
        Self {
            coeffs: vec![0; n],
            modulus,
        }
    }

    /// Wraps a coefficient vector. Coefficients are reduced mod `q`.
    pub fn from_coeffs(mut coeffs: Vec<u64>, modulus: u64) -> Self {
        for c in &mut coeffs {
            *c %= modulus;
        }
        Self { coeffs, modulus }
    }

    /// Wraps a coefficient vector that is **already reduced** mod `q`.
    ///
    /// Skips the re-reduction pass of [`Self::from_coeffs`]; the
    /// invariant is checked in debug builds only. Use this on the
    /// output of kernels that guarantee reduced results (NTT, Barrett
    /// hadamard, …) so hot paths stop paying a `%` per coefficient.
    pub fn from_coeffs_unchecked(coeffs: Vec<u64>, modulus: u64) -> Self {
        debug_assert!(
            coeffs.iter().all(|&c| c < modulus),
            "from_coeffs_unchecked requires reduced coefficients"
        );
        Self { coeffs, modulus }
    }

    /// Builds a polynomial from signed (centered) coefficients.
    pub fn from_signed(signed: &[i64], modulus: u64) -> Self {
        Self {
            coeffs: signed.iter().map(|&v| from_signed(v, modulus)).collect(),
            modulus,
        }
    }

    /// A deterministic pseudorandom polynomial (splitmix64 stream):
    /// the same `(n, modulus, seed)` always yields the same
    /// coefficients, on every platform. Used by the cross-kernel
    /// conformance suite and the bench harness, where reproducible
    /// inputs matter more than cryptographic quality.
    pub fn pseudorandom(n: usize, modulus: u64, seed: u64) -> Self {
        let mut state = seed;
        let coeffs = (0..n)
            .map(|_| {
                // splitmix64 step.
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                (z ^ (z >> 31)) % modulus
            })
            .collect();
        Self { coeffs, modulus }
    }

    /// The monomial `c * X^k` in dimension `n` (with negacyclic wrap:
    /// `k` may be any value below `2n`, where `X^n = -1`).
    ///
    /// # Panics
    ///
    /// Panics if `k >= 2n`.
    pub fn monomial(c: u64, k: usize, n: usize, modulus: u64) -> Self {
        assert!(k < 2 * n, "monomial exponent must be below 2N");
        let mut p = Self::zero(n, modulus);
        if k < n {
            p.coeffs[k] = c % modulus;
        } else {
            p.coeffs[k - n] = neg_mod(c % modulus, modulus);
        }
        p
    }

    /// The ring dimension (number of coefficients).
    #[inline]
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// The coefficient modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// Read-only view of the coefficients.
    #[inline]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Mutable view of the coefficients.
    #[inline]
    pub fn coeffs_mut(&mut self) -> &mut [u64] {
        &mut self.coeffs
    }

    /// Consumes the polynomial, returning its coefficient vector.
    pub fn into_coeffs(self) -> Vec<u64> {
        self.coeffs
    }

    /// Element-wise sum. Works in either form (both operands must match).
    ///
    /// # Panics
    ///
    /// Panics on mismatched dimension or modulus.
    pub fn add(&self, rhs: &Self) -> Self {
        self.check_compat(rhs);
        let coeffs = self
            .coeffs
            .iter()
            .zip(&rhs.coeffs)
            .map(|(&a, &b)| add_mod(a, b, self.modulus))
            .collect();
        Self {
            coeffs,
            modulus: self.modulus,
        }
    }

    /// Element-wise difference.
    pub fn sub(&self, rhs: &Self) -> Self {
        self.check_compat(rhs);
        let coeffs = self
            .coeffs
            .iter()
            .zip(&rhs.coeffs)
            .map(|(&a, &b)| sub_mod(a, b, self.modulus))
            .collect();
        Self {
            coeffs,
            modulus: self.modulus,
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Self {
            coeffs: self
                .coeffs
                .iter()
                .map(|&a| neg_mod(a, self.modulus))
                .collect(),
            modulus: self.modulus,
        }
    }

    /// Element-wise (Hadamard) product — the EWMM primitive. Only
    /// meaningful when both polynomials are in evaluation form.
    pub fn hadamard(&self, rhs: &Self) -> Self {
        self.check_compat(rhs);
        let br = Barrett::new(self.modulus);
        let coeffs = self
            .coeffs
            .iter()
            .zip(&rhs.coeffs)
            .map(|(&a, &b)| br.mul(a, b))
            .collect();
        Self {
            coeffs,
            modulus: self.modulus,
        }
    }

    /// Multiplies every coefficient by a scalar (Shoup multiply: the
    /// scalar is a loop constant).
    pub fn scale(&self, s: u64) -> Self {
        let s = s % self.modulus;
        let s_shoup = shoup_precompute(s, self.modulus);
        Self {
            coeffs: self
                .coeffs
                .iter()
                .map(|&a| crate::modops::mul_shoup(a, s, s_shoup, self.modulus))
                .collect(),
            modulus: self.modulus,
        }
    }

    /// In-place element-wise sum: `self ← self + rhs`.
    pub fn add_assign(&mut self, rhs: &Self) {
        self.check_compat(rhs);
        for (a, &b) in self.coeffs.iter_mut().zip(&rhs.coeffs) {
            *a = add_mod(*a, b, self.modulus);
        }
    }

    /// In-place element-wise difference: `self ← self - rhs`.
    pub fn sub_assign(&mut self, rhs: &Self) {
        self.check_compat(rhs);
        for (a, &b) in self.coeffs.iter_mut().zip(&rhs.coeffs) {
            *a = sub_mod(*a, b, self.modulus);
        }
    }

    /// In-place negation.
    pub fn neg_assign(&mut self) {
        for a in &mut self.coeffs {
            *a = neg_mod(*a, self.modulus);
        }
    }

    /// In-place Hadamard product: `self ← self ∘ rhs` (Barrett).
    pub fn hadamard_assign(&mut self, rhs: &Self) {
        self.check_compat(rhs);
        let br = Barrett::new(self.modulus);
        for (a, &b) in self.coeffs.iter_mut().zip(&rhs.coeffs) {
            *a = br.mul(*a, b);
        }
    }

    /// In-place scalar multiply (Shoup): `self ← s · self`.
    pub fn scale_assign(&mut self, s: u64) {
        let s = s % self.modulus;
        let s_shoup = shoup_precompute(s, self.modulus);
        for a in &mut self.coeffs {
            *a = crate::modops::mul_shoup(*a, s, s_shoup, self.modulus);
        }
    }

    /// Multiply-accumulate: `self ← self + a ∘ b` (Barrett). The MAC
    /// kernel of key-switch inner products and external products.
    pub fn mac_assign(&mut self, a: &Self, b: &Self) {
        self.check_compat(a);
        self.check_compat(b);
        let br = Barrett::new(self.modulus);
        for ((acc, &x), &y) in self.coeffs.iter_mut().zip(&a.coeffs).zip(&b.coeffs) {
            *acc = add_mod(*acc, br.mul(x, y), self.modulus);
        }
    }

    /// Schoolbook negacyclic multiplication in `Z_q[X]/(X^N + 1)`.
    ///
    /// Quadratic-time reference used to validate the NTT-based path.
    pub fn negacyclic_mul_schoolbook(&self, rhs: &Self) -> Self {
        self.check_compat(rhs);
        let n = self.dim();
        let q = self.modulus;
        let mut out = vec![0u64; n];
        for i in 0..n {
            if self.coeffs[i] == 0 {
                continue;
            }
            for j in 0..n {
                let prod = mul_mod(self.coeffs[i], rhs.coeffs[j], q);
                let k = i + j;
                if k < n {
                    out[k] = add_mod(out[k], prod, q);
                } else {
                    out[k - n] = sub_mod(out[k - n], prod, q);
                }
            }
        }
        Self {
            coeffs: out,
            modulus: q,
        }
    }

    /// Rotates coefficients: multiplies by the monomial `X^k` in the
    /// negacyclic ring (`k < 2N`; `X^N = -1`). This is TFHE's `Rotate`
    /// primitive (Table I).
    pub fn rotate_monomial(&self, k: usize) -> Self {
        let n = self.dim();
        let k = k % (2 * n);
        let q = self.modulus;
        let mut out = vec![0u64; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            let mut pos = i + k;
            let mut v = c;
            if pos >= 2 * n {
                pos -= 2 * n;
            }
            if pos >= n {
                pos -= n;
                v = neg_mod(v, q);
            }
            out[pos] = v;
        }
        Self {
            coeffs: out,
            modulus: q,
        }
    }

    /// Switches every coefficient to a new modulus by rounding
    /// `round(c * new_q / old_q)` on centered representatives.
    pub fn mod_switch(&self, new_q: u64) -> Self {
        let coeffs = self
            .coeffs
            .iter()
            .map(|&c| {
                let centered = crate::modops::to_signed(c, self.modulus);
                let scaled = (centered as i128 * new_q as i128
                    + if centered >= 0 {
                        self.modulus as i128 / 2
                    } else {
                        -(self.modulus as i128 / 2)
                    })
                    / self.modulus as i128;
                from_signed(scaled as i64, new_q)
            })
            .collect();
        Self {
            coeffs,
            modulus: new_q,
        }
    }

    fn check_compat(&self, rhs: &Self) {
        assert_eq!(self.dim(), rhs.dim(), "polynomial dimension mismatch");
        assert_eq!(self.modulus, rhs.modulus, "polynomial modulus mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: u64 = 97;

    #[test]
    fn add_sub_inverse() {
        let a = Poly::from_coeffs(vec![1, 2, 3, 4], Q);
        let b = Poly::from_coeffs(vec![96, 95, 94, 93], Q);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.sub(&a), Poly::zero(4, Q));
    }

    #[test]
    fn monomial_wraps_negacyclically() {
        // X^5 in dimension 4 is -X.
        let m = Poly::monomial(1, 5, 4, Q);
        assert_eq!(m.coeffs(), &[0, Q - 1, 0, 0]);
        // X^3 stays put.
        let m = Poly::monomial(2, 3, 4, Q);
        assert_eq!(m.coeffs(), &[0, 0, 0, 2]);
    }

    #[test]
    fn schoolbook_mul_known_case() {
        // (1 + X) * (1 + X) = 1 + 2X + X^2 in Z_97[X]/(X^4+1).
        let a = Poly::from_coeffs(vec![1, 1, 0, 0], Q);
        let c = a.negacyclic_mul_schoolbook(&a);
        assert_eq!(c.coeffs(), &[1, 2, 1, 0]);
    }

    #[test]
    fn schoolbook_mul_wraps_sign() {
        // X^2 * X^3 = X^5 = -X in dimension 4.
        let a = Poly::monomial(1, 2, 4, Q);
        let b = Poly::monomial(1, 3, 4, Q);
        let c = a.negacyclic_mul_schoolbook(&b);
        assert_eq!(c.coeffs(), &[0, Q - 1, 0, 0]);
    }

    #[test]
    fn rotate_matches_monomial_mul() {
        let a = Poly::from_coeffs(vec![1, 2, 3, 4, 5, 6, 7, 8], Q);
        for k in 0..16 {
            let rotated = a.rotate_monomial(k);
            let via_mul = a.negacyclic_mul_schoolbook(&Poly::monomial(1, k % 16, 8, Q));
            assert_eq!(rotated, via_mul, "k = {k}");
        }
    }

    #[test]
    fn mod_switch_preserves_message_scaled() {
        // A value near q/4 should land near new_q/4.
        let q = 1u64 << 30;
        let new_q = 1u64 << 20;
        let p = Poly::from_coeffs(vec![q / 4, q / 2 - 1, 0, 3 * (q / 4)], q);
        let s = p.mod_switch(new_q);
        assert_eq!(s.modulus(), new_q);
        assert!((s.coeffs()[0] as i64 - (new_q / 4) as i64).abs() <= 1);
        assert!((s.coeffs()[3] as i64 - (3 * (new_q / 4)) as i64).abs() <= 1);
    }

    #[test]
    fn in_place_ops_match_out_of_place() {
        let q = 1_152_921_504_598_720_513u64; // 60-bit NTT prime
        let a = Poly::from_coeffs(vec![1, q - 1, 123_456_789, q / 2], q);
        let b = Poly::from_coeffs(vec![q - 2, 7, 42, q / 3], q);

        let mut x = a.clone();
        x.add_assign(&b);
        assert_eq!(x, a.add(&b));

        let mut x = a.clone();
        x.sub_assign(&b);
        assert_eq!(x, a.sub(&b));

        let mut x = a.clone();
        x.neg_assign();
        assert_eq!(x, a.neg());

        let mut x = a.clone();
        x.hadamard_assign(&b);
        assert_eq!(x, a.hadamard(&b));

        let mut x = a.clone();
        x.scale_assign(12345);
        assert_eq!(x, a.scale(12345));

        let mut x = a.clone();
        x.mac_assign(&a, &b);
        assert_eq!(x, a.add(&a.hadamard(&b)));
    }

    #[test]
    fn unchecked_constructor_matches_checked_on_reduced_input() {
        let coeffs = vec![0u64, 1, 95, 96];
        assert_eq!(
            Poly::from_coeffs_unchecked(coeffs.clone(), Q),
            Poly::from_coeffs(coeffs, Q)
        );
    }

    #[test]
    fn from_signed_centered() {
        let p = Poly::from_signed(&[-1, 0, 1, -48], Q);
        assert_eq!(p.coeffs(), &[96, 0, 1, 49]);
    }
}
