//! Montgomery multiplication with `R = 2^64`.
//!
//! The UFC paper adopts "an optimized Montgomery multiplier design for
//! moduli `q_i = -1 mod 2^16`, similar to F1" (§VI-A). This module
//! provides a software Montgomery multiplier, used both as a reference
//! for the cost model's multiplier lane and as an alternative backend
//! for the NTT kernels.

/// Montgomery arithmetic context for an odd modulus `q < 2^63`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Montgomery {
    q: u64,
    /// `-q^{-1} mod 2^64`.
    q_inv_neg: u64,
    /// `R^2 mod q` where `R = 2^64`, used to enter Montgomery form.
    r2: u64,
}

impl Montgomery {
    /// Creates a Montgomery context.
    ///
    /// # Panics
    ///
    /// Panics if `q` is even or `q >= 2^63`.
    pub fn new(q: u64) -> Self {
        assert!(q & 1 == 1, "Montgomery modulus must be odd");
        assert!(q < (1 << 63), "modulus must fit in 63 bits");
        // Newton iteration for q^{-1} mod 2^64.
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(q.wrapping_mul(inv)));
        }
        debug_assert_eq!(q.wrapping_mul(inv), 1);
        let q_inv_neg = inv.wrapping_neg();
        // R^2 mod q = 2^128 mod q, computed directly in u128.
        let r2 = ((u128::MAX % q as u128 + 1) % q as u128) as u64;
        Self { q, q_inv_neg, r2 }
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// Montgomery reduction: computes `t * R^{-1} mod q` for `t < q*R`.
    #[inline]
    pub fn redc(&self, t: u128) -> u64 {
        let m = (t as u64).wrapping_mul(self.q_inv_neg);
        let u = ((t + m as u128 * self.q as u128) >> 64) as u64;
        if u >= self.q {
            u - self.q
        } else {
            u
        }
    }

    /// Converts `a` into Montgomery form (`a * R mod q`).
    #[inline]
    pub fn to_mont(&self, a: u64) -> u64 {
        debug_assert!(a < self.q);
        self.redc(a as u128 * self.r2 as u128)
    }

    /// Converts out of Montgomery form.
    #[inline]
    pub fn from_mont(&self, a: u64) -> u64 {
        self.redc(a as u128)
    }

    /// Multiplies two Montgomery-form residues, result in Montgomery form.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.redc(a as u128 * b as u128)
    }

    /// Convenience: multiplies two *plain* residues via Montgomery form.
    #[inline]
    pub fn mul_plain(&self, a: u64, b: u64) -> u64 {
        self.from_mont(self.mul(self.to_mont(a), self.to_mont(b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modops::mul_mod;

    const P: u64 = 1_152_921_504_598_720_513; // NTT-friendly 60-bit prime

    #[test]
    fn roundtrip_mont_form() {
        let m = Montgomery::new(P);
        for a in [0u64, 1, 2, P - 1, 123_456_789_012_345] {
            assert_eq!(m.from_mont(m.to_mont(a)), a);
        }
    }

    #[test]
    fn mul_matches_naive() {
        let m = Montgomery::new(P);
        let cases = [(1u64, 1u64), (P - 1, P - 1), (2, 3), (98765, 43210)];
        for (a, b) in cases {
            assert_eq!(m.mul_plain(a, b), mul_mod(a, b, P));
        }
    }

    #[test]
    fn works_for_small_odd_moduli() {
        let m = Montgomery::new(97);
        assert_eq!(m.mul_plain(50, 60), 50 * 60 % 97);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn rejects_even_modulus() {
        let _ = Montgomery::new(64);
    }
}
