//! Gadget (digit) decomposition — the `Decomp` primitive of Table I.
//!
//! TFHE's external products and key switching, and CKKS's hybrid
//! key-switching, all decompose big coefficients into small digits so
//! that multiplying by (noisy) key material keeps noise growth linear
//! in the digit size instead of the coefficient size.

use crate::modops::{add_mod, from_signed, mul_mod};
use crate::poly::Poly;

/// A base-`2^log_base` gadget with `levels` digits over modulus `q`.
///
/// The gadget vector is `g = (q/B, q/B², …)` in the *approximate*
/// (MSB-first) convention used by TFHE: digit `j` weights
/// `q / B^(j+1)`, so recomposition approximates the input with error
/// at most `q / B^levels / 2` per coefficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gadget {
    q: u64,
    log_base: u32,
    levels: usize,
}

impl Gadget {
    /// Creates a gadget for modulus `q`, digit base `2^log_base`, and
    /// `levels` digits.
    ///
    /// # Panics
    ///
    /// Panics if `log_base == 0`, `levels == 0`, or the gadget would
    /// exceed 64 bits of precision.
    pub fn new(q: u64, log_base: u32, levels: usize) -> Self {
        assert!(log_base > 0, "digit base must be at least 2");
        assert!(levels > 0, "need at least one digit");
        assert!(
            log_base as usize * levels <= 64,
            "gadget precision exceeds 64 bits"
        );
        Self {
            q,
            log_base,
            levels,
        }
    }

    /// Modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// Number of digits.
    #[inline]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Digit base `B = 2^log_base`.
    #[inline]
    pub fn base(&self) -> u64 {
        1u64 << self.log_base
    }

    /// The gadget weight of digit `j`: `round(q / B^(j+1))`.
    pub fn weight(&self, j: usize) -> u64 {
        debug_assert!(j < self.levels);
        // Compute round(q / 2^(log_base*(j+1))) without overflow.
        let shift = self.log_base as u64 * (j as u64 + 1);
        if shift >= 64 {
            // q < 2^64 always, so the weight rounds to 0 or 1.
            return if shift > 64 {
                0
            } else {
                u64::from(self.q >> 63 != 0)
            };
        }
        let div = 1u128 << shift;
        ((self.q as u128 + div / 2) / div) as u64
    }

    /// Signed (centered) decomposition of one residue.
    ///
    /// Returns `levels` digits in `[-B/2, B/2]` such that
    /// `sum_j digit_j * weight(j) ≈ v (mod q)` with rounding error
    /// below `weight(levels-1) / 2 + levels` (the approximate-gadget
    /// error TFHE tolerates).
    pub fn decompose_scalar(&self, v: u64) -> Vec<i64> {
        debug_assert!(v < self.q);
        let total_bits = self.log_base as u64 * self.levels as u64;
        // Scale v from modulus q to the 2^total_bits gadget domain,
        // with rounding.
        let scaled = (((v as u128) << total_bits) + self.q as u128 / 2) / self.q as u128;
        let mask = (1u128 << total_bits) - 1;
        let x = scaled & mask;
        // Balanced base-B digits, MSB digit first.
        let b = 1i64 << self.log_base;
        let mut digits = vec![0i64; self.levels];
        let mut carry = 0i64;
        for j in (0..self.levels).rev() {
            let shift = self.log_base as u64 * (self.levels - 1 - j) as u64;
            let mut d = ((x >> shift) & ((b - 1) as u128)) as i64 + carry;
            if d > b / 2 {
                d -= b;
                carry = 1;
            } else {
                carry = 0;
            }
            digits[j] = d;
        }
        // Drop a final carry: it corresponds to adding q (a no-op mod q).
        let _ = x;
        digits
    }

    /// Recomposes digits into a residue: `sum_j digit_j * weight(j) mod q`.
    pub fn recompose_scalar(&self, digits: &[i64]) -> u64 {
        assert_eq!(digits.len(), self.levels, "digit count mismatch");
        let mut acc = 0u64;
        for (j, &d) in digits.iter().enumerate() {
            let term = mul_mod(from_signed(d, self.q), self.weight(j), self.q);
            acc = add_mod(acc, term, self.q);
        }
        acc
    }

    /// Decomposes every coefficient of a polynomial, producing `levels`
    /// digit polynomials (signed digits mapped into `Z_q`).
    pub fn decompose_poly(&self, p: &Poly) -> Vec<Poly> {
        assert_eq!(p.modulus(), self.q, "modulus mismatch");
        let n = p.dim();
        let mut out: Vec<Vec<u64>> = vec![vec![0; n]; self.levels];
        for (i, &c) in p.coeffs().iter().enumerate() {
            for (j, &d) in self.decompose_scalar(c).iter().enumerate() {
                out[j][i] = from_signed(d, self.q);
            }
        }
        out.into_iter()
            .map(|v| Poly::from_coeffs(v, self.q))
            .collect()
    }

    /// Worst-case recomposition error bound (per coefficient, absolute
    /// value on centered representatives).
    ///
    /// Two error sources: truncating the scaled value to `total_bits`
    /// of precision (`≤ q / 2^total_bits`), and rounding each gadget
    /// weight `q / B^(j+1)` to an integer (`≤ levels * (B/2) * 1/2`
    /// after weighting by the balanced digits). For prime moduli the
    /// gadget is inherently approximate — the standard situation for
    /// NTT-based TFHE (paper §VII-D).
    pub fn error_bound(&self) -> u64 {
        let total_bits = self.log_base as u64 * self.levels as u64;
        let truncation = if total_bits >= 63 {
            1
        } else {
            (self.q >> total_bits) + 2
        };
        let weight_rounding = self.levels as u64 * (self.base() / 4 + 1);
        truncation + weight_rounding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modops::to_signed;
    use proptest::prelude::*;

    #[test]
    fn near_exact_when_gadget_covers_modulus() {
        // With 64 bits of precision over a 32-bit modulus the only
        // residual error is the per-weight rounding.
        let q = crate::prime::generate_ntt_prime(1024, 32).unwrap();
        let g = Gadget::new(q, 8, 8);
        let bound = g.error_bound() as i64;
        for v in [0u64, 1, q - 1, q / 2, 12345678] {
            let rec = g.recompose_scalar(&g.decompose_scalar(v));
            let err = to_signed(if rec >= v { rec - v } else { q - (v - rec) }, q);
            assert!(err.abs() <= bound, "v={v} rec={rec} err={err}");
        }
    }

    #[test]
    fn digits_are_balanced() {
        let q = crate::prime::generate_ntt_prime(1024, 32).unwrap();
        let g = Gadget::new(q, 4, 4);
        for v in (0..q).step_by((q / 257) as usize) {
            for &d in &g.decompose_scalar(v) {
                assert!(d.abs() <= 8, "digit {d} exceeds B/2");
            }
        }
    }

    #[test]
    fn approximate_error_within_bound() {
        let q = crate::prime::generate_ntt_prime(1024, 32).unwrap();
        let g = Gadget::new(q, 7, 3); // 21 bits of precision < 32
        let bound = g.error_bound() as i64;
        for v in (0..q).step_by((q / 509) as usize) {
            let rec = g.recompose_scalar(&g.decompose_scalar(v));
            let err = to_signed(if rec >= v { rec - v } else { q - (v - rec) }, q);
            assert!(
                err.abs() <= bound,
                "v={v} rec={rec} err={err} bound={bound}"
            );
        }
    }

    #[test]
    fn poly_decompose_recompose() {
        let q = crate::prime::generate_ntt_prime(16, 40).unwrap();
        let g = Gadget::new(q, 10, 5); // 50 bits > 40: exact
        let p = Poly::from_coeffs((0..16u64).map(|i| i * 999_999 % q).collect(), q);
        let digits = g.decompose_poly(&p);
        assert_eq!(digits.len(), 5);
        // Recompose: sum_j digits_j * weight_j; approximate per
        // coefficient within the gadget error bound.
        let mut acc = Poly::zero(16, q);
        for (j, dp) in digits.iter().enumerate() {
            acc = acc.add(&dp.scale(g.weight(j)));
        }
        let bound = g.error_bound() as i64;
        for (got, want) in acc.coeffs().iter().zip(p.coeffs()) {
            let err = to_signed(
                if got >= want {
                    got - want
                } else {
                    q - (want - got)
                },
                q,
            );
            assert!(err.abs() <= bound, "err={err} bound={bound}");
        }
    }

    #[test]
    fn weights_are_decreasing() {
        let q = crate::prime::generate_ntt_prime(1024, 50).unwrap();
        let g = Gadget::new(q, 12, 4);
        for j in 1..4 {
            assert!(g.weight(j) < g.weight(j - 1));
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip_exact_gadget(v in 0u64..1_152_921_504_598_720_513) {
            let q = 1_152_921_504_598_720_513u64; // 60-bit NTT prime
            let g = Gadget::new(q, 10, 6); // 60 bits precision
            let rec = g.recompose_scalar(&g.decompose_scalar(v % q));
            let v = v % q;
            let diff = to_signed(if rec >= v { rec - v } else { q - (v - rec) }, q);
            prop_assert!(diff.abs() <= g.error_bound() as i64);
        }
    }
}
