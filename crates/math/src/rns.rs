//! Residue number systems: CRT representation, Garner reconstruction,
//! fast base conversion (`BConv`, §II-B3) and RNS rescaling.
//!
//! RNS-CKKS represents each big-modulus polynomial as `L` word-size
//! limb polynomials. `BConv` is the dominant MAC workload of CKKS
//! key-switching and the reason SHARP/CraterLake carry wide MAC
//! pipelines; UFC runs the same MACs on its general modular lanes.

use crate::modops::{add_mod, inv_mod, mul_mod, mul_shoup, shoup_precompute, sub_mod};
use crate::poly::Poly;

/// An RNS basis: a list of pairwise-coprime word-size moduli.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsBasis {
    moduli: Vec<u64>,
    /// `qhat_i^{-1} mod q_i` where `qhat_i = Q / q_i`.
    qhat_inv: Vec<u64>,
}

impl RnsBasis {
    /// Builds a basis from pairwise-coprime moduli.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or the moduli are not pairwise
    /// coprime.
    pub fn new(moduli: Vec<u64>) -> Self {
        assert!(!moduli.is_empty(), "basis needs at least one modulus");
        let qhat_inv = (0..moduli.len())
            .map(|i| {
                let qi = moduli[i];
                // qhat_i mod q_i = prod_{j != i} q_j mod q_i.
                let mut prod = 1u64;
                for (j, &qj) in moduli.iter().enumerate() {
                    if j != i {
                        prod = mul_mod(prod, qj % qi, qi);
                    }
                }
                inv_mod(prod, qi).expect("moduli must be pairwise coprime")
            })
            .collect();
        Self { moduli, qhat_inv }
    }

    /// The moduli, in order.
    #[inline]
    pub fn moduli(&self) -> &[u64] {
        &self.moduli
    }

    /// Number of limbs.
    #[inline]
    pub fn len(&self) -> usize {
        self.moduli.len()
    }

    /// Whether the basis is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.moduli.is_empty()
    }

    /// `log2` of the full modulus product, as a float (for level
    /// budgeting).
    pub fn log2_q(&self) -> f64 {
        self.moduli.iter().map(|&q| (q as f64).log2()).sum()
    }

    /// Drops the last modulus, returning the shortened basis (used by
    /// CKKS rescaling, which consumes one limb per multiplication).
    ///
    /// # Panics
    ///
    /// Panics if only one modulus remains.
    pub fn drop_last(&self) -> Self {
        assert!(self.len() > 1, "cannot drop the last remaining modulus");
        Self::new(self.moduli[..self.len() - 1].to_vec())
    }

    /// Decomposes an integer (given as `u128`) into RNS residues.
    pub fn decompose_u128(&self, x: u128) -> Vec<u64> {
        self.moduli
            .iter()
            .map(|&q| (x % q as u128) as u64)
            .collect()
    }

    /// Garner (mixed-radix) reconstruction evaluated modulo `m`.
    ///
    /// Computes the unique `x` in `[0, Q)` with the given residues and
    /// returns `x mod m` — using only word-size arithmetic, so it works
    /// for arbitrarily large `Q`.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len()` differs from the basis size.
    pub fn reconstruct_mod(&self, residues: &[u64], m: u64) -> u64 {
        let digits = self.mixed_radix_digits(residues);
        // x = v0 + q0*(v1 + q1*(v2 + ...)); evaluate Horner-style mod m.
        let mut acc = 0u64;
        for i in (0..self.len()).rev() {
            acc = mul_mod(acc, self.moduli[i] % m, m);
            acc = (acc + digits[i] % m) % m;
        }
        acc
    }

    /// Reconstructs into a `u128`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit (i.e. `Q > 2^128` and the
    /// mixed-radix evaluation overflows).
    pub fn reconstruct_u128(&self, residues: &[u64]) -> u128 {
        let digits = self.mixed_radix_digits(residues);
        let mut acc: u128 = 0;
        for i in (0..self.len()).rev() {
            acc = acc
                .checked_mul(self.moduli[i] as u128)
                .and_then(|a| a.checked_add(digits[i] as u128))
                .expect("value exceeds u128");
        }
        acc
    }

    /// Centered reconstruction into `i128` (value in `(-Q/2, Q/2]`).
    pub fn reconstruct_i128(&self, residues: &[u64]) -> i128 {
        let x = self.reconstruct_u128(residues);
        let q: u128 = self.moduli.iter().fold(1u128, |acc, &m| {
            acc.checked_mul(m as u128).expect("Q exceeds u128")
        });
        if x > q / 2 {
            x as i128 - q as i128
        } else {
            x as i128
        }
    }

    /// Mixed-radix digits `v_i` with `x = v0 + q0*v1 + q0*q1*v2 + …`.
    fn mixed_radix_digits(&self, residues: &[u64]) -> Vec<u64> {
        assert_eq!(residues.len(), self.len(), "residue count mismatch");
        let k = self.len();
        let mut digits = vec![0u64; k];
        for i in 0..k {
            let qi = self.moduli[i];
            // v_i = (r_i - (v0 + q0*(v1 + ...))) / (q0*...*q_{i-1}) mod q_i
            let mut acc = 0u64;
            for j in (0..i).rev() {
                acc = mul_mod(acc, self.moduli[j] % qi, qi);
                acc = (acc + digits[j] % qi) % qi;
            }
            let mut v = sub_mod(residues[i] % qi, acc % qi, qi);
            for j in 0..i {
                let inv = inv_mod(self.moduli[j] % qi, qi).expect("coprime");
                v = mul_mod(v, inv, qi);
            }
            digits[i] = v;
        }
        digits
    }
}

/// Fast (approximate) base conversion from basis `from` to basis `to`:
/// `BConv(x) = sum_j [x_j * qhat_j^{-1}]_{q_j} * qhat_j mod p_i`
/// (§II-B3). The result may exceed the true value by a small multiple
/// of `Q` (at most `from.len()`), which downstream RNS algorithms
/// tolerate by design.
#[derive(Debug, Clone)]
pub struct BaseConverter {
    from: RnsBasis,
    to: Vec<u64>,
    /// `qhat_j mod p_i`, indexed `[i][j]`.
    qhat_mod_p: Vec<Vec<u64>>,
}

impl BaseConverter {
    /// Precomputes conversion tables from `from` to the moduli of `to`.
    pub fn new(from: &RnsBasis, to: &[u64]) -> Self {
        let qhat_mod_p = to
            .iter()
            .map(|&p| {
                (0..from.len())
                    .map(|j| {
                        let mut prod = 1u64;
                        for (l, &ql) in from.moduli().iter().enumerate() {
                            if l != j {
                                prod = mul_mod(prod, ql % p, p);
                            }
                        }
                        prod
                    })
                    .collect()
            })
            .collect();
        Self {
            from: from.clone(),
            to: to.to_vec(),
            qhat_mod_p,
        }
    }

    /// Source basis.
    pub fn from_basis(&self) -> &RnsBasis {
        &self.from
    }

    /// Target moduli.
    pub fn to_moduli(&self) -> &[u64] {
        &self.to
    }

    /// Converts a single RNS-represented coefficient.
    pub fn convert_scalar(&self, residues: &[u64]) -> Vec<u64> {
        assert_eq!(residues.len(), self.from.len(), "residue count mismatch");
        // y_j = [x_j * qhat_j^{-1}]_{q_j}
        let y: Vec<u64> = residues
            .iter()
            .enumerate()
            .map(|(j, &r)| mul_mod(r, self.from.qhat_inv[j], self.from.moduli[j]))
            .collect();
        self.to
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let mut acc = 0u64;
                for (j, &yj) in y.iter().enumerate() {
                    acc = (acc + mul_mod(yj % p, self.qhat_mod_p[i][j], p)) % p;
                }
                acc
            })
            .collect()
    }

    /// Converts a polynomial given as one residue row per source
    /// modulus (each row a length-`n` slice); returns the flat
    /// limb-major target buffer (`to.len() · n` words), ready for
    /// [`crate::plane::RnsPlane`] ingestion.
    ///
    /// This is the BConv MAC kernel restructured row-wise: the scaled
    /// residues `y_j = [x_j · qhat_j^{-1}]_{q_j}` are computed once
    /// per source row with a Shoup multiply, then accumulated into
    /// each target limb with Shoup multiplies against the precomputed
    /// `qhat_j mod p_i` — no per-coefficient allocation.
    ///
    /// # Panics
    ///
    /// Panics if the row count differs from the source basis or row
    /// lengths differ.
    pub fn convert_rows(&self, rows: &[&[u64]]) -> Vec<u64> {
        assert_eq!(rows.len(), self.from.len(), "limb count mismatch");
        let n = rows[0].len();
        for r in rows {
            assert_eq!(r.len(), n, "limb dimension mismatch");
        }
        let mut y = vec![0u64; rows.len() * n];
        for (j, row) in rows.iter().enumerate() {
            let qj = self.from.moduli[j];
            let w = self.from.qhat_inv[j];
            let ws = shoup_precompute(w, qj);
            for (dst, &r) in y[j * n..(j + 1) * n].iter_mut().zip(row.iter()) {
                *dst = mul_shoup(r, w, ws, qj);
            }
        }
        let mut out = vec![0u64; self.to.len() * n];
        for (i, &p) in self.to.iter().enumerate() {
            let chunk = &mut out[i * n..(i + 1) * n];
            for j in 0..rows.len() {
                // y_j < q_j may exceed p; the Shoup multiply accepts
                // any u64 operand, so no pre-reduction is needed.
                let t = self.qhat_mod_p[i][j];
                let ts = shoup_precompute(t, p);
                let yrow = &y[j * n..(j + 1) * n];
                for (acc, &yj) in chunk.iter_mut().zip(yrow) {
                    *acc = add_mod(*acc, mul_shoup(yj, t, ts, p), p);
                }
            }
        }
        out
    }

    /// Converts a polynomial given as one limb per source modulus;
    /// returns one limb per target modulus.
    ///
    /// # Panics
    ///
    /// Panics if limb moduli do not match the source basis, or limb
    /// dimensions differ.
    pub fn convert_poly(&self, limbs: &[Poly]) -> Vec<Poly> {
        assert_eq!(limbs.len(), self.from.len(), "limb count mismatch");
        let n = limbs[0].dim();
        for (j, l) in limbs.iter().enumerate() {
            assert_eq!(l.modulus(), self.from.moduli[j], "limb modulus mismatch");
            assert_eq!(l.dim(), n, "limb dimension mismatch");
        }
        let rows: Vec<&[u64]> = limbs.iter().map(Poly::coeffs).collect();
        let flat = self.convert_rows(&rows);
        flat.chunks(n)
            .zip(&self.to)
            .map(|(chunk, &p)| Poly::from_coeffs_unchecked(chunk.to_vec(), p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::generate_ntt_primes;
    use proptest::prelude::*;

    fn basis(k: usize) -> RnsBasis {
        RnsBasis::new(generate_ntt_primes(1 << 10, 40, k))
    }

    #[test]
    fn decompose_reconstruct_small() {
        let b = basis(3);
        for x in [0u128, 1, 42, 1 << 50, (1 << 100) + 12345] {
            let r = b.decompose_u128(x);
            assert_eq!(b.reconstruct_u128(&r), x, "x = {x}");
        }
    }

    #[test]
    fn reconstruct_mod_matches_direct() {
        let b = basis(3);
        let m = 997u64;
        for x in [0u128, 5, 1 << 77, 98765432101234] {
            let r = b.decompose_u128(x);
            assert_eq!(b.reconstruct_mod(&r, m) as u128, x % m as u128);
        }
    }

    #[test]
    fn centered_reconstruction() {
        let b = basis(2);
        let q: u128 = b.moduli().iter().map(|&m| m as u128).product();
        // Encode -5 as Q - 5.
        let r = b.decompose_u128(q - 5);
        assert_eq!(b.reconstruct_i128(&r), -5);
        let r = b.decompose_u128(5);
        assert_eq!(b.reconstruct_i128(&r), 5);
    }

    #[test]
    fn drop_last_shrinks_basis() {
        let b = basis(3);
        let s = b.drop_last();
        assert_eq!(s.len(), 2);
        assert_eq!(s.moduli(), &b.moduli()[..2]);
    }

    #[test]
    fn bconv_is_exact_up_to_q_multiples() {
        let from = basis(3);
        let to = generate_ntt_primes(1 << 10, 41, 2);
        let conv = BaseConverter::new(&from, &to);
        let q: u128 = from.moduli().iter().map(|&m| m as u128).product();
        for x in [0u128, 7, 1 << 90, q - 1, q / 3] {
            let got = conv.convert_scalar(&from.decompose_u128(x));
            for (i, &p) in to.iter().enumerate() {
                // got = (x + e*Q) mod p for some 0 <= e <= L.
                let mut ok = false;
                for e in 0..=from.len() as u128 {
                    if got[i] as u128 == (x + e * q) % p as u128 {
                        ok = true;
                        break;
                    }
                }
                assert!(ok, "x={x} p={p} got={}", got[i]);
            }
        }
    }

    #[test]
    fn bconv_poly_matches_scalar() {
        let from = basis(2);
        let to = generate_ntt_primes(1 << 10, 41, 2);
        let conv = BaseConverter::new(&from, &to);
        let n = 8;
        let limbs: Vec<Poly> = from
            .moduli()
            .iter()
            .map(|&q| Poly::from_coeffs((0..n as u64).map(|i| i * 17 % q).collect(), q))
            .collect();
        let out = conv.convert_poly(&limbs);
        assert_eq!(out.len(), 2);
        for c in 0..n {
            let residues: Vec<u64> = limbs.iter().map(|l| l.coeffs()[c]).collect();
            let expect = conv.convert_scalar(&residues);
            for i in 0..2 {
                assert_eq!(out[i].coeffs()[c], expect[i]);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_crt_roundtrip(x in any::<u64>()) {
            let b = basis(2);
            let r = b.decompose_u128(x as u128);
            prop_assert_eq!(b.reconstruct_u128(&r), x as u128);
        }

        #[test]
        fn prop_crt_additive(a in any::<u32>(), c in any::<u32>()) {
            let b = basis(2);
            let ra = b.decompose_u128(a as u128);
            let rc = b.decompose_u128(c as u128);
            let sum: Vec<u64> = ra.iter().zip(&rc).zip(b.moduli())
                .map(|((&x, &y), &q)| (x + y) % q).collect();
            prop_assert_eq!(b.reconstruct_u128(&sum), a as u128 + c as u128);
        }
    }
}
