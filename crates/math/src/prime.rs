//! NTT-friendly prime generation and primitive-root search.
//!
//! A negacyclic NTT over `Z_q[X]/(X^N + 1)` needs a `2N`-th primitive
//! root of unity in `Z_q`, which exists exactly when `q ≡ 1 mod 2N`.
//! RNS-CKKS needs chains of such primes near a target bit size; TFHE
//! (in UFC's NTT formulation, §VII-D) needs one 32-bit NTT prime.
//!
//! ## Choosing a bit size for the SIMD windows
//!
//! The requested `bits` decides which vector kernels a prime is
//! eligible for, because generated primes land in
//! `[2^(bits-1), 2^bits)`:
//!
//! * `bits <= 50` keeps the prime below 2⁵⁰, inside the AVX-512 IFMA
//!   window ([`crate::modops::ifma_modulus_ok`]) — the 52-bit
//!   `vpmadd52` Barrett path for both the `ifma` NTT generation and
//!   the element-wise hadamard/MAC dispatch.
//! * `bits <= 61` keeps the prime below 2⁶¹, inside the AVX2
//!   limb-split multiply window (the 2×32-bit cross terms stay
//!   exact).
//! * `bits = 62` is still valid for every scalar and lazy-NTT path
//!   (operands in `[0, 4q)` must fit in 64 bits), but element-wise
//!   multiplies route to the portable/scalar backends.
//!
//! RNS limbs rarely *need* to be wide: prefer ≤ 50-bit limbs (one
//! more limb if necessary) unless precision budgeting says otherwise.

use crate::modops::{mul_mod, pow_mod};

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        s += 1;
    }
    // These witnesses are sufficient for all n < 2^64.
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates one NTT-friendly prime `q ≡ 1 (mod 2N)` with exactly
/// `bits` bits (searching downward from `2^bits`).
///
/// Returns `None` if no such prime exists in `[2^(bits-1), 2^bits)`.
///
/// # Panics
///
/// Panics if `n` is not a power of two or `bits` is not in `[4, 62]`.
pub fn generate_ntt_prime(n: usize, bits: u32) -> Option<u64> {
    generate_ntt_primes(n, bits, 1).pop()
}

/// Generates `count` distinct NTT-friendly primes of the given bit size,
/// largest first.
pub fn generate_ntt_primes(n: usize, bits: u32, count: usize) -> Vec<u64> {
    assert!(n.is_power_of_two(), "ring degree must be a power of two");
    assert!(
        (4..=62).contains(&bits),
        "prime size must be in [4, 62] bits"
    );
    let step = 2 * n as u64;
    let hi = 1u64 << bits;
    let lo = 1u64 << (bits - 1);
    // Largest candidate ≡ 1 mod 2N below 2^bits.
    let mut cand = (hi - 1) / step * step + 1;
    let mut out = Vec::with_capacity(count);
    while cand >= lo && out.len() < count {
        if is_prime(cand) {
            out.push(cand);
        }
        if cand < step {
            break;
        }
        cand -= step;
    }
    out
}

/// Finds a generator of the multiplicative group of `Z_q` (q prime).
pub fn find_generator(q: u64) -> u64 {
    let phi = q - 1;
    let factors = factorize(phi);
    'cand: for g in 2..q {
        for &f in &factors {
            if pow_mod(g, phi / f, q) == 1 {
                continue 'cand;
            }
        }
        return g;
    }
    unreachable!("a prime field always has a generator")
}

/// Returns a primitive `order`-th root of unity modulo prime `q`.
///
/// # Panics
///
/// Panics if `order` does not divide `q - 1`.
pub fn primitive_root_of_unity(order: u64, q: u64) -> u64 {
    assert_eq!((q - 1) % order, 0, "order must divide q-1");
    let g = find_generator(q);
    let root = pow_mod(g, (q - 1) / order, q);
    debug_assert_eq!(pow_mod(root, order, q), 1);
    debug_assert_ne!(pow_mod(root, order / 2, q), 1);
    root
}

/// Trial-division factorization returning the distinct prime factors.
fn factorize(mut n: u64) -> Vec<u64> {
    let mut factors = Vec::new();
    let mut d = 2u64;
    while d as u128 * d as u128 <= n as u128 {
        if n.is_multiple_of(d) {
            factors.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += if d == 2 { 1 } else { 2 };
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_small() {
        let primes = [2u64, 3, 5, 7, 97, 65537, 1_000_000_007];
        let composites = [0u64, 1, 4, 9, 561, 65536, 1_000_000_008];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn primality_large_known() {
        assert!(is_prime(1_152_921_504_598_720_513)); // 2^60 - 2^14 + 1
        assert!(is_prime(0xFFFF_FFFF_FFFF_FFC5)); // largest 64-bit prime
        assert!(!is_prime(0xFFFF_FFFF_FFFF_FFC4));
    }

    #[test]
    fn generated_primes_are_ntt_friendly() {
        for log_n in [10usize, 12, 14] {
            let n = 1 << log_n;
            let ps = generate_ntt_primes(n, 50, 4);
            assert_eq!(ps.len(), 4);
            for p in ps {
                assert!(is_prime(p));
                assert_eq!(p % (2 * n as u64), 1);
                assert_eq!(64 - p.leading_zeros(), 50);
            }
        }
    }

    #[test]
    fn roots_of_unity_have_exact_order() {
        let n = 1usize << 10;
        let q = generate_ntt_prime(n, 40).unwrap();
        let w = primitive_root_of_unity(2 * n as u64, q);
        assert_eq!(pow_mod(w, 2 * n as u64, q), 1);
        assert_ne!(pow_mod(w, n as u64, q), 1);
        // psi^N must be -1 (negacyclic condition).
        assert_eq!(pow_mod(w, n as u64, q), q - 1);
    }

    #[test]
    fn generator_generates() {
        let q = 97u64;
        let g = find_generator(q);
        let mut seen = std::collections::HashSet::new();
        let mut x = 1u64;
        for _ in 0..q - 1 {
            x = mul_mod(x, g, q);
            seen.insert(x);
        }
        assert_eq!(seen.len() as u64, q - 1);
    }
}
