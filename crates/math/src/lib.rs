//! # ufc-math — arithmetic substrate for the UFC reproduction
//!
//! This crate implements, from scratch, every piece of finite-field and
//! polynomial-ring arithmetic that the FHE schemes accelerated by UFC
//! (MICRO 2024) are built on:
//!
//! * 64-bit modular arithmetic: plain, [Barrett][modops::Barrett],
//!   [Shoup][modops::ShoupMul] and [Montgomery][mont::Montgomery]
//!   reductions,
//! * NTT-friendly prime generation and primitive-root search
//!   ([`prime`]),
//! * the classical iterative number-theoretic transform with five
//!   coexisting kernel generations — seed reference, Shoup/Harvey
//!   radix-2, cache-blocked radix-4, 4-wide SIMD lanes ([`simd`],
//!   AVX2 with a bit-identical portable fallback), and an AVX-512
//!   IFMA generation (52-bit `vpmadd52` Barrett, moduli below 2⁵⁰) —
//!   behind a per-dimension runtime dispatch ([`ntt`],
//!   [`ntt::NttKernel`], `UFC_NTT_KERNEL`), and the
//!   **constant-geometry (Pease) NTT**
//!   that UFC's interconnect co-design is built around ([`cgntt`]),
//!   plus the double-precision FFT datapath of the Strix baseline
//!   ([`fft`], §VII-D),
//! * negacyclic polynomial rings `Z_q[X]/(X^N + 1)` ([`poly`]),
//! * the flat limb-major RNS data plane with in-place kernels
//!   ([`plane`]) and dependency-free limb parallelism ([`par`]),
//! * residue number systems and fast base conversion (`BConv`)
//!   ([`rns`]),
//! * gadget / digit decomposition used by key-switching and RGSW
//!   external products ([`gadget`]),
//! * automorphism index maps, including the shuffle-free
//!   automorphism-via-NTT trick of the paper's §IV-C2 ([`automorph`]),
//! * secret / noise samplers ([`sample`]).
//!
//! Everything is pure, deterministic (given an RNG) and extensively
//! property-tested. `unsafe` is confined to exactly one module — the
//! AVX2 / AVX-512 IFMA intrinsics backends of [`simd`], gated behind
//! runtime feature detection — and every other module is compiled
//! with `deny(unsafe_code)`.
//!
//! ## Example
//!
//! ```
//! use ufc_math::{ntt::NttContext, poly::Poly};
//!
//! // A negacyclic ring Z_q[X]/(X^8 + 1) with an NTT-friendly prime.
//! let ctx = NttContext::new(8, ufc_math::prime::generate_ntt_prime(8, 40).unwrap());
//! let a = Poly::from_coeffs(vec![1, 2, 3, 4, 5, 6, 7, 8], ctx.modulus());
//! let b = Poly::from_coeffs(vec![8, 7, 6, 5, 4, 3, 2, 1], ctx.modulus());
//! let c = ctx.negacyclic_mul(&a, &b);
//! assert_eq!(c.coeffs().len(), 8);
//! ```

#![deny(unsafe_code)]

pub mod automorph;
pub mod cgntt;
pub mod fft;
pub mod gadget;
pub mod modops;
pub mod mont;
pub mod ntt;
pub mod par;
pub mod plane;
pub mod poly;
pub mod prime;
pub mod rns;
pub mod sample;
// The one sanctioned unsafe surface of the workspace: the AVX2
// intrinsics backend behind runtime feature detection. `cargo xtask
// lint` enforces that no other file carries `unsafe`.
#[allow(unsafe_code)]
pub mod simd;

pub use modops::{inv_mod, mul_mod, pow_mod};
pub use ntt::{NttContext, NttKernel};
pub use plane::RnsPlane;
pub use poly::Poly;
pub use rns::RnsBasis;
