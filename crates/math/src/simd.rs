//! SIMD lane kernels: the software stand-in for UFC's arrays of
//! butterfly and modular-ALU lanes.
//!
//! Every public function here is a *slice kernel*: it applies one
//! modular primitive across a whole slice, dispatching once per call
//! between three backends:
//!
//! * **AVX2** (`x86_64` only) — `u64x4` lanes built from
//!   `core::arch::x86_64` intrinsics. AVX2 has no 64×64-bit multiply
//!   or unsigned 64-bit compare, so both are synthesized: the multiply
//!   from `vpmuludq` 32×32 **limb-split** partial products (shared
//!   between the low and high product words, with the full-width
//!   reduction done by *approximate-high-word* Shoup folds — see
//!   `avx2::mul_hi_approx`), the compare by biasing both operands with
//!   the sign bit and using the signed `vpcmpgtq`. Selected at runtime
//!   via [`avx2_available`].
//! * **AVX-512 IFMA** (`x86_64` only) — `u64x8` lanes around
//!   `vpmadd52lo/hi` (`_mm512_madd52{lo,hi}_epu64`), which multiply
//!   52-bit operands and return either half of the 104-bit product in
//!   one instruction. This is the 52-bit *kernel generation*: it
//!   serves moduli `q < 2^50` only (the two spare bits are the Harvey
//!   `< 4q` lazy headroom) and uses `2^52`-radix Shoup companions from
//!   [`crate::modops::shoup52_precompute`]. Selected at runtime via
//!   [`ifma_available`].
//! * **Portable** — scalar fallbacks, always compiled, on every
//!   architecture: a 4-lane unroll mirroring the AVX2 kernels
//!   (`portable`) and a 52-bit mirror of the IFMA kernels
//!   (`portable52`). They reuse the scalar primitives from
//!   [`crate::modops`], so they are trivially bit-identical to the
//!   pre-SIMD code paths.
//!
//! # Per-op dispatch
//!
//! Historically dispatch was per-*transform*: one AVX2 probe routed
//! every kernel onto the vector path. That was a measured performance
//! bug for `mul`/`mac` — the synthesized 64×64 multiply (27 `vpmuludq`
//! per 4 lanes) lost to scalar Barrett. Element-wise ops now route
//! **per op** through a cost table ([`ew_backend`]): structurally-won
//! ops (`add`/`sub`/`scale`) take static routes, while `mul`/`mac`
//! route to IFMA when the modulus fits, else to whichever of the
//! limb-split AVX2 path and scalar Barrett *measures* faster on this
//! host (a one-shot calibration cached for the process). The table is
//! exported ([`ew_dispatch_table`]) so `bench_math` can prove the
//! "SIMD never loses to scalar" invariant row by row.
//!
//! # Bit-identity contract
//!
//! All backends produce **exactly** the same output words:
//!
//! * The lazy kernels ([`twist_lazy_slice`], [`harvey_stage`],
//!   [`harvey_fused_pair`], [`scale_shoup_slice`], and their 52-bit
//!   `*52` counterparts) evaluate the *same integer formula* per lane
//!   as their scalar counterparts (`a·w − ⌊a·w_shoup/2^R⌋·q` in
//!   wrapping arithmetic, `R = 64` or `52`), so even the lazy
//!   `[0, 2q)`/`[0, 4q)` representatives match word for word — the
//!   Harvey lazy-reduction bounds are preserved, not just congruence.
//! * The canonical kernels ([`add_mod_slice`], [`sub_mod_slice`],
//!   [`mac_mod_slice`]) use the same conditional-subtract formula per
//!   lane. [`mul_mod_slice`] is the one kernel where the backends use
//!   different *internal* reductions (Barrett on the portable path,
//!   limb-split approximate Shoup folds on AVX2, a 52-bit Barrett on
//!   IFMA); all return the unique canonical residue in `[0, q)`, so
//!   outputs are still identical. `mul`/`mac` accept *lazy
//!   multiplicands* in `[0, 2q)` on every backend (the `mac`
//!   accumulator stays canonical).
//!
//! Tail elements past the last full lane group are always handled by
//! the scalar arithmetic of the portable backends, on every path.
//!
//! # Environment
//!
//! `UFC_SIMD_DISABLE` (read once per process) force-disables vector
//! backends for A/B runs and for tests that simulate missing hardware:
//! `avx2` (AVX2 off), `ifma` (AVX-512 IFMA off) or `all`. Unknown
//! values warn once on stderr and are otherwise ignored.
//!
//! This is the **only** module in the workspace that uses `unsafe`
//! (see the workspace `unsafe_code = "deny"` lint note in the root
//! `Cargo.toml`): raw-pointer vector loads/stores and the
//! `#[target_feature]` call boundary. Each site carries a SAFETY
//! comment; everything else in the crate remains `#![deny(unsafe_code)]`.
//! (The `unsafe_code` allowance itself lives on the `mod simd`
//! declaration in `lib.rs`, next to the deny it punches through.)

use crate::modops::{
    add_mod, ifma_modulus_ok, mul_shoup52_lazy, mul_shoup_lazy, reduce_4q, Barrett,
};

/// Lane width of the 64-bit SIMD backends: both the AVX2 path (`u64x4`
/// in a 256-bit register) and the portable scalar unroll process 4
/// elements per group.
pub const LANES: usize = 4;

/// Lane width of the 52-bit (AVX-512 IFMA) backend: `u64x8` in a
/// 512-bit register.
pub const LANES52: usize = 8;

/// Which vector backends `UFC_SIMD_DISABLE` turned off, read once per
/// process: `(avx2_disabled, ifma_disabled)`.
fn env_disabled() -> (bool, bool) {
    use std::sync::OnceLock;
    static DISABLED: OnceLock<(bool, bool)> = OnceLock::new();
    *DISABLED.get_or_init(|| match std::env::var("UFC_SIMD_DISABLE") {
        Ok(v) => match v.trim() {
            "" => (false, false),
            "avx2" => (true, false),
            "ifma" => (false, true),
            "all" => (true, true),
            other => {
                eprintln!(
                    "warning: unrecognized UFC_SIMD_DISABLE value {other:?} \
                     (expected avx2|ifma|all); ignoring"
                );
                (false, false)
            }
        },
        Err(_) => (false, false),
    })
}

/// Whether the AVX2 backend is usable on this host. Probed once with
/// `is_x86_feature_detected!("avx2")` and cached in a `OnceLock`;
/// always `false` off `x86_64`, under Miri, or when
/// `UFC_SIMD_DISABLE=avx2|all` is set.
pub fn avx2_available() -> bool {
    // Miri cannot execute vendor intrinsics; force every dispatch
    // onto the portable lanes so the whole SIMD surface stays
    // checkable under the interpreter.
    if cfg!(miri) {
        return false;
    }
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| {
        if env_disabled().0 {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Whether the AVX-512 IFMA backend is usable on this host. Probed
/// once (`avx512f` + `avx512ifma`) and cached in a `OnceLock`; always
/// `false` off `x86_64`, under Miri, or when `UFC_SIMD_DISABLE` names
/// `ifma` or `all`.
///
/// Availability gates only *hardware* dispatch: the 52-bit kernel
/// generation itself ([`harvey_stage52`] and friends, and
/// [`crate::ntt::NttKernel::Ifma`]) always runs, on the bit-identical
/// `portable52` lanes, when explicitly requested on a host without the
/// instructions.
pub fn ifma_available() -> bool {
    if cfg!(miri) {
        return false;
    }
    use std::sync::OnceLock;
    static IFMA: OnceLock<bool> = OnceLock::new();
    *IFMA.get_or_init(|| {
        if env_disabled().1 {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512ifma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// The element-wise slice ops routed by the per-op dispatch table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EwOp {
    /// [`add_mod_slice`].
    Add,
    /// [`sub_mod_slice`].
    Sub,
    /// [`mul_mod_slice`] — the hadamard kernel.
    Mul,
    /// [`mac_mod_slice`].
    Mac,
    /// [`scale_shoup_slice`].
    Scale,
}

impl EwOp {
    /// Every routed op, in bench-table order.
    pub const ALL: [EwOp; 5] = [EwOp::Add, EwOp::Sub, EwOp::Mul, EwOp::Mac, EwOp::Scale];

    /// Stable lowercase name (bench tables, logs).
    pub fn name(self) -> &'static str {
        match self {
            EwOp::Add => "add",
            EwOp::Sub => "sub",
            EwOp::Mul => "mul",
            EwOp::Mac => "mac",
            EwOp::Scale => "scale",
        }
    }
}

/// The backend a routed op lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EwBackend {
    /// Scalar lanes (always available).
    Portable,
    /// 4-wide AVX2 lanes (limb-split multiply).
    Avx2,
    /// 8-wide AVX-512 IFMA 52-bit lanes.
    Ifma,
}

impl EwBackend {
    /// Stable lowercase name (bench tables, logs).
    pub fn name(self) -> &'static str {
        match self {
            EwBackend::Portable => "portable",
            EwBackend::Avx2 => "avx2",
            EwBackend::Ifma => "ifma",
        }
    }
}

/// How a dispatch route was decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteSource {
    /// Fixed by feature probes and the modulus width alone.
    Static,
    /// Chosen by the one-shot on-host calibration race.
    Measured,
}

impl RouteSource {
    /// Stable lowercase name (bench tables, logs).
    pub fn name(self) -> &'static str {
        match self {
            RouteSource::Static => "static",
            RouteSource::Measured => "measured",
        }
    }
}

/// One row of the per-op dispatch table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EwRoute {
    /// The routed op.
    pub op: EwOp,
    /// Where it runs for this modulus on this host.
    pub backend: EwBackend,
    /// Whether the route is static or measured.
    pub source: RouteSource,
}

/// One-shot calibration for the ops where AVX2 is not a structural
/// win: races the limb-split `mul`/`mac` kernels against scalar
/// Barrett on this host and caches `(mul_wins, mac_wins)`.
///
/// The race is instruction-bound, not value-bound, so one
/// representative 59-bit modulus stands in for all Barrett-range
/// moduli. Ties go to the vector path (equal speed, and it keeps the
/// port pressure off the scalar ALUs for the surrounding code).
#[cfg(target_arch = "x86_64")]
fn limbsplit_wins() -> (bool, bool) {
    use std::sync::OnceLock;
    static WINS: OnceLock<(bool, bool)> = OnceLock::new();
    *WINS.get_or_init(|| {
        if !avx2_available() {
            return (false, false);
        }
        // Odd 59-bit modulus; primality is irrelevant to timing and
        // Barrett only needs q in [2, 2^62).
        const Q: u64 = (1u64 << 59) - 55;
        const N: usize = 4096;
        // Both kernels keep canonical inputs canonical, so the timed
        // region iterates the kernel back-to-back on its own output —
        // no resets or copies diluting the difference under test.
        let run = |slot: usize, scratch: &mut [u64], a0: &[u64], b0: &[u64]| match slot {
            // SAFETY: avx2_available() returned true above.
            0 => unsafe { avx2::mul_mod_slice(scratch, b0, Q) },
            1 => portable::mul_mod_slice(scratch, b0, Q),
            // SAFETY: avx2_available() returned true above.
            2 => unsafe { avx2::mac_mod_slice(scratch, a0, b0, Q) },
            _ => portable::mac_mod_slice(scratch, a0, b0, Q),
        };
        let a0: Vec<u64> = (0..N as u64)
            .map(|i| (i * 0x9e37_79b9 + 12345) % Q)
            .collect();
        let b0: Vec<u64> = (0..N as u64).map(|i| (i * 0x517c_c1b7 + 999) % Q).collect();
        let mut best = [u128::MAX; 4]; // [mul_avx2, mul_portable, mac_avx2, mac_portable]
        let mut scratch = a0.clone();
        for (slot, which) in best.iter_mut().enumerate() {
            run(slot, &mut scratch, &a0, &b0); // warmup (page-in, ramp)
            for _ in 0..3 {
                let t = std::time::Instant::now();
                for _ in 0..8 {
                    run(slot, &mut scratch, &a0, &b0);
                }
                let dt = t.elapsed().as_nanos();
                if dt < *which {
                    *which = dt;
                }
                std::hint::black_box(&scratch);
            }
        }
        (best[0] <= best[1], best[2] <= best[3])
    })
}

/// Routes one element-wise op for modulus `q` on this host.
///
/// The static tier: `add`/`sub`/`scale` take AVX2 whenever it exists
/// (no 64-bit multiply involved — the vector win is structural, and
/// measured at 1.6–2.1x). `mul`/`mac` take the IFMA 52-bit Barrett
/// path when the hardware is present *and* `q < 2^50`. The measured
/// tier: otherwise `mul`/`mac` go to AVX2 limb-split only if the
/// one-shot calibration race says it beats scalar Barrett on this
/// host, which is what makes "SIMD never loses to scalar" a dispatch
/// invariant rather than a hope.
pub fn ew_backend(op: EwOp, q: u64) -> EwBackend {
    ew_route(op, q).backend
}

/// Routes one element-wise op and reports how the route was decided.
pub fn ew_route(op: EwOp, q: u64) -> EwRoute {
    let backend_source = match op {
        EwOp::Add | EwOp::Sub | EwOp::Scale => {
            if avx2_available() {
                (EwBackend::Avx2, RouteSource::Static)
            } else {
                (EwBackend::Portable, RouteSource::Static)
            }
        }
        EwOp::Mul | EwOp::Mac => {
            if ifma_available() && ifma_modulus_ok(q) {
                (EwBackend::Ifma, RouteSource::Static)
            } else {
                #[cfg(target_arch = "x86_64")]
                {
                    if avx2_available() && limbsplit_modulus_ok(q) {
                        let (mul_wins, mac_wins) = limbsplit_wins();
                        let wins = if op == EwOp::Mul { mul_wins } else { mac_wins };
                        if wins {
                            (EwBackend::Avx2, RouteSource::Measured)
                        } else {
                            (EwBackend::Portable, RouteSource::Measured)
                        }
                    } else {
                        (EwBackend::Portable, RouteSource::Static)
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    (EwBackend::Portable, RouteSource::Static)
                }
            }
        }
    };
    EwRoute {
        op,
        backend: backend_source.0,
        source: backend_source.1,
    }
}

/// The full per-op dispatch table for modulus `q` on this host, in
/// [`EwOp::ALL`] order — the `ew_dispatch` block `bench_math` emits
/// and the xtask validator checks.
pub fn ew_dispatch_table(q: u64) -> Vec<EwRoute> {
    EwOp::ALL.iter().map(|&op| ew_route(op, q)).collect()
}

/// Runs the hadamard kernel on one *specific* backend, bypassing
/// dispatch — the benchmarking/conformance seam that lets `bench_math`
/// time each backend honestly instead of inferring from the route.
/// Returns `false` (leaving `a` untouched) when the backend cannot run
/// on this host or modulus.
pub fn mul_mod_slice_on(backend: EwBackend, a: &mut [u64], b: &[u64], q: u64) -> bool {
    assert_eq!(a.len(), b.len(), "slice length mismatch");
    match backend {
        EwBackend::Portable => {
            portable::mul_mod_slice(a, b, q);
            true
        }
        #[cfg(target_arch = "x86_64")]
        EwBackend::Avx2 if avx2_available() && limbsplit_modulus_ok(q) => {
            // SAFETY: availability verified just above.
            unsafe { avx2::mul_mod_slice(a, b, q) };
            true
        }
        #[cfg(target_arch = "x86_64")]
        EwBackend::Ifma if ifma_available() && ifma_modulus_ok(q) => {
            // SAFETY: availability verified just above.
            unsafe { ifma::mul_mod_slice(a, b, q) };
            true
        }
        _ => false,
    }
}

/// Runs the multiply-accumulate kernel on one specific backend —
/// see [`mul_mod_slice_on`].
pub fn mac_mod_slice_on(backend: EwBackend, acc: &mut [u64], a: &[u64], b: &[u64], q: u64) -> bool {
    assert_eq!(acc.len(), a.len(), "slice length mismatch");
    assert_eq!(acc.len(), b.len(), "slice length mismatch");
    match backend {
        EwBackend::Portable => {
            portable::mac_mod_slice(acc, a, b, q);
            true
        }
        #[cfg(target_arch = "x86_64")]
        EwBackend::Avx2 if avx2_available() && limbsplit_modulus_ok(q) => {
            // SAFETY: availability verified just above.
            unsafe { avx2::mac_mod_slice(acc, a, b, q) };
            true
        }
        #[cfg(target_arch = "x86_64")]
        EwBackend::Ifma if ifma_available() && ifma_modulus_ok(q) => {
            // SAFETY: availability verified just above.
            unsafe { ifma::mac_mod_slice(acc, a, b, q) };
            true
        }
        _ => false,
    }
}

/// The six stage-twiddle slices consumed by one fused radix-2 stage
/// pair (stage A plus the two halves of stage B), bundled so the
/// butterfly kernel's signature stays readable. All slices have the
/// same length as the coefficient quarter-slices they multiply.
#[derive(Debug, Clone, Copy)]
pub struct FusedTwiddles<'a> {
    /// Stage-A twiddles (block length `len`).
    pub a: &'a [u64],
    /// Shoup companions of `a`.
    pub a_shoup: &'a [u64],
    /// Stage-B twiddles for the `(x0, x2)` butterflies.
    pub b_lo: &'a [u64],
    /// Shoup companions of `b_lo`.
    pub b_lo_shoup: &'a [u64],
    /// Stage-B twiddles for the `(x1, x3)` butterflies.
    pub b_hi: &'a [u64],
    /// Shoup companions of `b_hi`.
    pub b_hi_shoup: &'a [u64],
}

/// `a[i] ← (a[i] + b[i]) mod q`, canonical inputs and outputs.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
    assert_eq!(a.len(), b.len(), "slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::add_mod_slice(a, b, q) };
        return;
    }
    portable::add_mod_slice(a, b, q);
}

/// `a[i] ← (a[i] - b[i]) mod q`, canonical inputs and outputs.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sub_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
    assert_eq!(a.len(), b.len(), "slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::sub_mod_slice(a, b, q) };
        return;
    }
    portable::sub_mod_slice(a, b, q);
}

/// Hadamard product `a[i] ← a[i]·b[i] mod q`.
///
/// Multiplicands may be *lazy* representatives in `[0, 2q)`; the
/// output is always the canonical residue. Routed per op
/// ([`ew_backend`]): the portable path reduces with Barrett (as the
/// scalar plane kernel always did), the AVX2 path runs the limb-split
/// multiply with approximate Shoup folds, the IFMA path (moduli below
/// `2^50`) a 52-bit Barrett on `vpmadd52` lanes. All return the
/// canonical residue, so outputs are bit-identical.
///
/// # Panics
///
/// Panics if the slices differ in length or `q` is outside the
/// Barrett range `[2, 2⁶²)`.
pub fn mul_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
    assert_eq!(a.len(), b.len(), "slice length mismatch");
    match ew_backend(EwOp::Mul, q) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: ew_backend only routes here after avx2_available().
        EwBackend::Avx2 => unsafe { avx2::mul_mod_slice(a, b, q) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: ew_backend only routes here after ifma_available().
        EwBackend::Ifma => unsafe { ifma::mul_mod_slice(a, b, q) },
        _ => portable::mul_mod_slice(a, b, q),
    }
}

/// Multiply-accumulate `acc[i] ← (acc[i] + a[i]·b[i]) mod q`.
///
/// Multiplicands may be lazy representatives in `[0, 2q)`; the
/// accumulator must be canonical. Routed per op like
/// [`mul_mod_slice`].
///
/// # Panics
///
/// Panics if the slices differ in length or `q` is outside the
/// Barrett range `[2, 2⁶²)`.
pub fn mac_mod_slice(acc: &mut [u64], a: &[u64], b: &[u64], q: u64) {
    assert_eq!(acc.len(), a.len(), "slice length mismatch");
    assert_eq!(acc.len(), b.len(), "slice length mismatch");
    match ew_backend(EwOp::Mac, q) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: ew_backend only routes here after avx2_available().
        EwBackend::Avx2 => unsafe { avx2::mac_mod_slice(acc, a, b, q) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: ew_backend only routes here after ifma_available().
        EwBackend::Ifma => unsafe { ifma::mac_mod_slice(acc, a, b, q) },
        _ => portable::mac_mod_slice(acc, a, b, q),
    }
}

/// Broadcast Shoup scale `a[i] ← a[i]·s mod q`, fully reduced.
/// `s_shoup` must be [`shoup_precompute`]`(s, q)`; `a` may hold any
/// 64-bit values (lazy representatives included), the output is
/// canonical — the exact contract of [`crate::modops::mul_shoup`].
pub fn scale_shoup_slice(a: &mut [u64], s: u64, s_shoup: u64, q: u64) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::scale_shoup_slice(a, s, s_shoup, q) };
        return;
    }
    portable::scale_shoup_slice(a, s, s_shoup, q);
}

/// Element-wise lazy Shoup twist `a[i] ← a[i]·w[i] mod q` as a
/// representative in `[0, 2q)` — the ψ pre-twist of the negacyclic
/// forward NTT. Accepts any 64-bit `a[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn twist_lazy_slice(a: &mut [u64], w: &[u64], w_shoup: &[u64], q: u64) {
    assert_eq!(a.len(), w.len(), "slice length mismatch");
    assert_eq!(a.len(), w_shoup.len(), "slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::twist_lazy_slice(a, w, w_shoup, q) };
        return;
    }
    portable::twist_lazy_slice(a, w, w_shoup, q);
}

/// Element-wise Shoup twist with the `[0, q)` correction folded in —
/// the fused `ψ^{-i}·N^{-1}` post-twist of the negacyclic inverse NTT,
/// straight off lazy (`< 4q`) stage outputs.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn twist_reduce_slice(a: &mut [u64], w: &[u64], w_shoup: &[u64], q: u64) {
    assert_eq!(a.len(), w.len(), "slice length mismatch");
    assert_eq!(a.len(), w_shoup.len(), "slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::twist_reduce_slice(a, w, w_shoup, q) };
        return;
    }
    portable::twist_reduce_slice(a, w, w_shoup, q);
}

/// One Harvey lazy radix-2 butterfly stage over paired half-slices:
/// for each `j`,
///
/// ```text
/// u  = lo[j] − 2q·[lo[j] ≥ 2q]          (correct the u leg to < 2q)
/// t  = a[j]·w[j] mod q as < 2q          (lazy Shoup multiply)
/// lo[j] = u + t,   hi[j] = u + 2q − t   (both < 4q)
/// ```
///
/// With `reduce`, both outputs get the final `[0, q)` correction — the
/// last-stage variant. The same data flow serves the inverse
/// transform: this codebase runs the inverse as a Cooley–Tukey walk
/// over the ω⁻¹ stage tables (not a Gentleman–Sande butterfly), so
/// forward and inverse share this one primitive.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn harvey_stage(lo: &mut [u64], hi: &mut [u64], tw: &[u64], tws: &[u64], q: u64, reduce: bool) {
    assert_eq!(lo.len(), hi.len(), "slice length mismatch");
    assert_eq!(lo.len(), tw.len(), "slice length mismatch");
    assert_eq!(lo.len(), tws.len(), "slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::harvey_stage(lo, hi, tw, tws, q, reduce) };
        return;
    }
    portable::harvey_stage(lo, hi, tw, tws, q, reduce);
}

/// Two fused Harvey radix-2 stages over the four quarter-slices of a
/// `2·len` chunk — the vector form of the scalar fused stage pair:
/// stage A butterflies `(x0, x1)` and `(x2, x3)` with the `tw.a`
/// twiddles, then stage B butterflies `(a0, a2)` and `(a1, a3)` with
/// `tw.b_lo`/`tw.b_hi`, all in registers, with a single load and store
/// per element. Bit-identical to running [`harvey_stage`] twice.
/// With `reduce`, stage B's outputs get the `[0, q)` correction.
///
/// # Panics
///
/// Panics if any slice length differs from `x0`'s.
pub fn harvey_fused_pair(
    x0: &mut [u64],
    x1: &mut [u64],
    x2: &mut [u64],
    x3: &mut [u64],
    tw: &FusedTwiddles<'_>,
    q: u64,
    reduce: bool,
) {
    let ha = x0.len();
    assert!(
        x1.len() == ha && x2.len() == ha && x3.len() == ha,
        "quarter-slice length mismatch"
    );
    assert!(
        tw.a.len() == ha
            && tw.a_shoup.len() == ha
            && tw.b_lo.len() == ha
            && tw.b_lo_shoup.len() == ha
            && tw.b_hi.len() == ha
            && tw.b_hi_shoup.len() == ha,
        "twiddle slice length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::harvey_fused_pair(x0, x1, x2, x3, tw, q, reduce) };
        return;
    }
    portable::harvey_fused_pair(x0, x1, x2, x3, tw, q, reduce);
}

/// Element-wise lazy 52-bit Shoup twist `a[i] ← a[i]·w[i] mod q` as a
/// representative in `[0, 2q)` — the IFMA generation's ψ pre-twist.
/// `w52` holds [`crate::modops::shoup52_precompute`] companions;
/// inputs must be below `2^52` and `q < 2^50`.
///
/// Dispatches to the AVX-512 IFMA lanes when available, else to the
/// bit-identical `portable52` scalar mirror — the 52-bit generation is
/// always runnable.
///
/// # Panics
///
/// Panics if the slices differ in length; debug-panics if `q` exceeds
/// the 50-bit IFMA ceiling.
pub fn twist_lazy52_slice(a: &mut [u64], w: &[u64], w52: &[u64], q: u64) {
    assert_eq!(a.len(), w.len(), "slice length mismatch");
    assert_eq!(a.len(), w52.len(), "slice length mismatch");
    debug_assert!(ifma_modulus_ok(q), "modulus must fit 50 bits");
    #[cfg(target_arch = "x86_64")]
    if ifma_available() {
        // SAFETY: IFMA support was verified at runtime just above.
        unsafe { ifma::twist_lazy52_slice(a, w, w52, q) };
        return;
    }
    portable52::twist_lazy52_slice(a, w, w52, q);
}

/// Element-wise 52-bit Shoup twist with the `[0, q)` correction folded
/// in — the IFMA generation's fused `ψ^{-i}·N^{-1}` inverse post-twist,
/// straight off lazy (`< 4q`) stage outputs.
///
/// # Panics
///
/// Panics if the slices differ in length; debug-panics if `q` exceeds
/// the 50-bit IFMA ceiling.
pub fn twist_reduce52_slice(a: &mut [u64], w: &[u64], w52: &[u64], q: u64) {
    assert_eq!(a.len(), w.len(), "slice length mismatch");
    assert_eq!(a.len(), w52.len(), "slice length mismatch");
    debug_assert!(ifma_modulus_ok(q), "modulus must fit 50 bits");
    #[cfg(target_arch = "x86_64")]
    if ifma_available() {
        // SAFETY: IFMA support was verified at runtime just above.
        unsafe { ifma::twist_reduce52_slice(a, w, w52, q) };
        return;
    }
    portable52::twist_reduce52_slice(a, w, w52, q);
}

/// One Harvey lazy radix-2 butterfly stage on the 52-bit generation:
/// the same data flow as [`harvey_stage`] with the Shoup radix lowered
/// to `2^52` (`tw52` from [`crate::modops::shoup52_precompute`]).
/// Stage values stay below `4q < 2^52`.
///
/// # Panics
///
/// Panics if the slices differ in length; debug-panics if `q` exceeds
/// the 50-bit IFMA ceiling.
pub fn harvey_stage52(
    lo: &mut [u64],
    hi: &mut [u64],
    tw: &[u64],
    tw52: &[u64],
    q: u64,
    reduce: bool,
) {
    assert_eq!(lo.len(), hi.len(), "slice length mismatch");
    assert_eq!(lo.len(), tw.len(), "slice length mismatch");
    assert_eq!(lo.len(), tw52.len(), "slice length mismatch");
    debug_assert!(ifma_modulus_ok(q), "modulus must fit 50 bits");
    #[cfg(target_arch = "x86_64")]
    if ifma_available() {
        // SAFETY: IFMA support was verified at runtime just above.
        unsafe { ifma::harvey_stage52(lo, hi, tw, tw52, q, reduce) };
        return;
    }
    portable52::harvey_stage52(lo, hi, tw, tw52, q, reduce);
}

/// Two fused Harvey radix-2 stages on the 52-bit generation — the
/// IFMA counterpart of [`harvey_fused_pair`]. The `*_shoup` fields of
/// `tw` carry **52-bit** companions here.
///
/// # Panics
///
/// Panics if any slice length differs from `x0`'s; debug-panics if
/// `q` exceeds the 50-bit IFMA ceiling.
pub fn harvey_fused_pair52(
    x0: &mut [u64],
    x1: &mut [u64],
    x2: &mut [u64],
    x3: &mut [u64],
    tw: &FusedTwiddles<'_>,
    q: u64,
    reduce: bool,
) {
    let ha = x0.len();
    assert!(
        x1.len() == ha && x2.len() == ha && x3.len() == ha,
        "quarter-slice length mismatch"
    );
    assert!(
        tw.a.len() == ha
            && tw.a_shoup.len() == ha
            && tw.b_lo.len() == ha
            && tw.b_lo_shoup.len() == ha
            && tw.b_hi.len() == ha
            && tw.b_hi_shoup.len() == ha,
        "twiddle slice length mismatch"
    );
    debug_assert!(ifma_modulus_ok(q), "modulus must fit 50 bits");
    #[cfg(target_arch = "x86_64")]
    if ifma_available() {
        // SAFETY: IFMA support was verified at runtime just above.
        unsafe { ifma::harvey_fused_pair52(x0, x1, x2, x3, tw, q, reduce) };
        return;
    }
    portable52::harvey_fused_pair52(x0, x1, x2, x3, tw, q, reduce);
}

/// The portable backend: 4-lane scalar-unrolled loops over the same
/// scalar primitives the pre-SIMD code paths used. Always compiled (on
/// every architecture) and always used for tail elements, so the AVX2
/// backend's conformance target is in the same binary.
mod portable {
    use super::{add_mod, mul_shoup_lazy, reduce_4q, Barrett, FusedTwiddles, LANES};

    #[inline(always)]
    fn csub(v: u64, m: u64) -> u64 {
        if v >= m {
            v - m
        } else {
            v
        }
    }

    pub(super) fn add_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
        let mut bc = b.chunks_exact(LANES);
        let mut ac = a.chunks_exact_mut(LANES);
        for (av, bv) in (&mut ac).zip(&mut bc) {
            av[0] = add_mod(av[0], bv[0], q);
            av[1] = add_mod(av[1], bv[1], q);
            av[2] = add_mod(av[2], bv[2], q);
            av[3] = add_mod(av[3], bv[3], q);
        }
        for (x, &y) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
            *x = add_mod(*x, y, q);
        }
    }

    pub(super) fn sub_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
        let sub = |x: u64, y: u64| if x >= y { x - y } else { x + q - y };
        let mut bc = b.chunks_exact(LANES);
        let mut ac = a.chunks_exact_mut(LANES);
        for (av, bv) in (&mut ac).zip(&mut bc) {
            av[0] = sub(av[0], bv[0]);
            av[1] = sub(av[1], bv[1]);
            av[2] = sub(av[2], bv[2]);
            av[3] = sub(av[3], bv[3]);
        }
        for (x, &y) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
            *x = sub(*x, y);
        }
    }

    pub(super) fn mul_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
        // reduce_u128 of the full product rather than Barrett::mul:
        // same canonical result for canonical inputs, and it extends
        // the accepted multiplicand domain to the lazy [0, 2q) range
        // the slice contract now promises (2q < 2^63, so the u128
        // product is exact).
        let br = Barrett::new(q);
        let mul = |x: u64, y: u64| br.reduce_u128(x as u128 * y as u128);
        let mut bc = b.chunks_exact(LANES);
        let mut ac = a.chunks_exact_mut(LANES);
        for (av, bv) in (&mut ac).zip(&mut bc) {
            av[0] = mul(av[0], bv[0]);
            av[1] = mul(av[1], bv[1]);
            av[2] = mul(av[2], bv[2]);
            av[3] = mul(av[3], bv[3]);
        }
        for (x, &y) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
            *x = mul(*x, y);
        }
    }

    /// The modulus ceiling of the limb-split multiply: its remainder
    /// band is `[0, 5q)` (one `q` of exact-scheme slack plus up to
    /// four from the approximate high word — see the bound proof
    /// below), which must fit 64-bit lanes, so `q < 2^61`. Dispatch
    /// falls back to scalar Barrett above it.
    pub const LIMBSPLIT_MAX_MODULUS_BITS: u32 = 61;

    /// Whether modulus `q` fits the limb-split AVX2 multiply.
    #[inline]
    pub fn limbsplit_modulus_ok(q: u64) -> bool {
        (2..(1u64 << LIMBSPLIT_MAX_MODULUS_BITS)).contains(&q)
    }

    /// Left shift matching the vector `sllv` semantics: counts of 64
    /// or more yield zero instead of Rust's overflow panic.
    #[inline(always)]
    fn shl64(x: u64, s: u32) -> u64 {
        if s >= 64 {
            0
        } else {
            x << s
        }
    }

    /// Scalar transliteration of the AVX2 limb-split multiply — the
    /// exact per-lane formula of `avx2::mul_mod_slice`, runnable
    /// everywhere (including under Miri, which cannot execute the
    /// intrinsics). The conformance and property tests pin this
    /// against Barrett; the vector path evaluates the identical
    /// integer formula, so agreement here transfers to the lanes.
    ///
    /// The scheme is a generalized Barrett with an *approximate* high
    /// word, `n = bits(q)`, `μ = ⌊2^{2n}/q⌋ < 2^{n+1}`:
    ///
    /// ```text
    /// p  = x·y < 2^{2n}            (x, y canonical after a csub)
    /// d  = ⌊p / 2^{n−2}⌋ < 2^{n+2} (spliced from p_hi, p_lo)
    /// q̂  = hi_approx(d·2^{62−n}, μ)
    ///    = ⌊d·μ / 2^{n+2}⌋ − ε,  ε ∈ [0, 2]
    /// r  = (p − q̂·q) mod 2^64 < 5q (then three csubs to canonical)
    /// ```
    ///
    /// `⌊d·μ/2^{n+2}⌋` undershoots `⌊p/q⌋` by at most 2 (same algebra
    /// as `portable52::mul_mod_barrett52`); `hi_approx` — the three
    /// high 32×32 partials without the `ll` term or the middle-column
    /// carry — undershoots an exact high word by at most 2 more.
    /// Hence `⌊p/q⌋ − q̂ ≤ 4` and `r < 5q`, which is why the path
    /// requires `q < 2^61` ([`limbsplit_modulus_ok`]).
    ///
    /// Accepts lazy multiplicands `x, y < 2q`; returns the canonical
    /// residue.
    pub fn mul_mod_limbsplit(x: u64, y: u64, q: u64) -> u64 {
        debug_assert!(limbsplit_modulus_ok(q));
        let hi_approx = |a: u64, c: u64| -> u64 {
            let (a_hi, a_lo) = (a >> 32, a & 0xFFFF_FFFF);
            let (c_hi, c_lo) = (c >> 32, c & 0xFFFF_FFFF);
            a_hi * c_hi + ((a_lo * c_hi) >> 32) + ((a_hi * c_lo) >> 32)
        };
        let x = csub(x, q);
        let y = csub(y, q);
        let n = 64 - q.leading_zeros();
        let mu = ((1u128 << (2 * n)) / q as u128) as u64;
        let p = x as u128 * y as u128;
        let (p_hi, p_lo) = ((p >> 64) as u64, p as u64);
        let d = shl64(p_hi, 66 - n) | (p_lo >> (n - 2));
        let qhat = hi_approx(shl64(d, 62 - n), mu);
        let r = p_lo.wrapping_sub(qhat.wrapping_mul(q));
        debug_assert!(r < 5 * q);
        reduce_4q(csub(r, 2 * q), q)
    }

    pub(super) fn mac_mod_slice(acc: &mut [u64], a: &[u64], b: &[u64], q: u64) {
        let br = Barrett::new(q);
        let mac = |d: u64, x: u64, y: u64| add_mod(d, br.reduce_u128(x as u128 * y as u128), q);
        let mut av = a.chunks_exact(LANES);
        let mut bv = b.chunks_exact(LANES);
        let mut dv = acc.chunks_exact_mut(LANES);
        for ((d, x), y) in (&mut dv).zip(&mut av).zip(&mut bv) {
            d[0] = mac(d[0], x[0], y[0]);
            d[1] = mac(d[1], x[1], y[1]);
            d[2] = mac(d[2], x[2], y[2]);
            d[3] = mac(d[3], x[3], y[3]);
        }
        for ((d, &x), &y) in dv
            .into_remainder()
            .iter_mut()
            .zip(av.remainder())
            .zip(bv.remainder())
        {
            *d = mac(*d, x, y);
        }
    }

    pub(super) fn scale_shoup_slice(a: &mut [u64], s: u64, s_shoup: u64, q: u64) {
        let mul = |x: u64| csub(mul_shoup_lazy(x, s, s_shoup, q), q);
        let mut ac = a.chunks_exact_mut(LANES);
        for av in &mut ac {
            av[0] = mul(av[0]);
            av[1] = mul(av[1]);
            av[2] = mul(av[2]);
            av[3] = mul(av[3]);
        }
        for x in ac.into_remainder() {
            *x = mul(*x);
        }
    }

    pub(super) fn twist_lazy_slice(a: &mut [u64], w: &[u64], ws: &[u64], q: u64) {
        let mut wc = w.chunks_exact(LANES);
        let mut sc = ws.chunks_exact(LANES);
        let mut ac = a.chunks_exact_mut(LANES);
        for ((av, wv), sv) in (&mut ac).zip(&mut wc).zip(&mut sc) {
            av[0] = mul_shoup_lazy(av[0], wv[0], sv[0], q);
            av[1] = mul_shoup_lazy(av[1], wv[1], sv[1], q);
            av[2] = mul_shoup_lazy(av[2], wv[2], sv[2], q);
            av[3] = mul_shoup_lazy(av[3], wv[3], sv[3], q);
        }
        for ((x, &wv), &sv) in ac
            .into_remainder()
            .iter_mut()
            .zip(wc.remainder())
            .zip(sc.remainder())
        {
            *x = mul_shoup_lazy(*x, wv, sv, q);
        }
    }

    pub(super) fn twist_reduce_slice(a: &mut [u64], w: &[u64], ws: &[u64], q: u64) {
        let twist = |x: u64, wv: u64, sv: u64| csub(mul_shoup_lazy(x, wv, sv, q), q);
        let mut wc = w.chunks_exact(LANES);
        let mut sc = ws.chunks_exact(LANES);
        let mut ac = a.chunks_exact_mut(LANES);
        for ((av, wv), sv) in (&mut ac).zip(&mut wc).zip(&mut sc) {
            av[0] = twist(av[0], wv[0], sv[0]);
            av[1] = twist(av[1], wv[1], sv[1]);
            av[2] = twist(av[2], wv[2], sv[2]);
            av[3] = twist(av[3], wv[3], sv[3]);
        }
        for ((x, &wv), &sv) in ac
            .into_remainder()
            .iter_mut()
            .zip(wc.remainder())
            .zip(sc.remainder())
        {
            *x = twist(*x, wv, sv);
        }
    }

    /// Scalar Harvey butterfly shared by both stage kernels; returns
    /// the `(lo, hi)` pair.
    #[inline(always)]
    fn butterfly(x: u64, y: u64, w: u64, ws: u64, q: u64) -> (u64, u64) {
        let two_q = 2 * q;
        let u = csub(x, two_q);
        let t = mul_shoup_lazy(y, w, ws, q);
        (u + t, u + two_q - t)
    }

    pub(super) fn harvey_stage(
        lo: &mut [u64],
        hi: &mut [u64],
        tw: &[u64],
        tws: &[u64],
        q: u64,
        reduce: bool,
    ) {
        for (((x, y), &w), &ws) in lo.iter_mut().zip(hi.iter_mut()).zip(tw).zip(tws) {
            let (a, b) = butterfly(*x, *y, w, ws, q);
            if reduce {
                *x = reduce_4q(a, q);
                *y = reduce_4q(b, q);
            } else {
                *x = a;
                *y = b;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn harvey_fused_pair(
        x0: &mut [u64],
        x1: &mut [u64],
        x2: &mut [u64],
        x3: &mut [u64],
        tw: &FusedTwiddles<'_>,
        q: u64,
        reduce: bool,
    ) {
        for j in 0..x0.len() {
            let (a0, a1) = butterfly(x0[j], x1[j], tw.a[j], tw.a_shoup[j], q);
            let (a2, a3) = butterfly(x2[j], x3[j], tw.a[j], tw.a_shoup[j], q);
            let (y0, y2) = butterfly(a0, a2, tw.b_lo[j], tw.b_lo_shoup[j], q);
            let (y1, y3) = butterfly(a1, a3, tw.b_hi[j], tw.b_hi_shoup[j], q);
            if reduce {
                x0[j] = reduce_4q(y0, q);
                x1[j] = reduce_4q(y1, q);
                x2[j] = reduce_4q(y2, q);
                x3[j] = reduce_4q(y3, q);
            } else {
                x0[j] = y0;
                x1[j] = y1;
                x2[j] = y2;
                x3[j] = y3;
            }
        }
    }
}

/// The portable mirror of the 52-bit (IFMA) kernel generation: plain
/// scalar loops over [`crate::modops::mul_shoup52_lazy`], always
/// compiled, on every architecture. The IFMA lanes evaluate the same
/// integer formula per lane, so the two are bit-identical word for
/// word — this is what `NttKernel::Ifma` runs on hosts (and CI
/// runners, and Miri) without the instructions.
mod portable52 {
    use super::{mul_shoup52_lazy, reduce_4q, FusedTwiddles};
    use crate::modops::M52;

    #[inline(always)]
    fn csub(v: u64, m: u64) -> u64 {
        if v >= m {
            v - m
        } else {
            v
        }
    }

    /// Scalar 52-bit Barrett multiply — the exact per-lane formula of
    /// `ifma::mul_mod_slice`, runnable everywhere (including under
    /// Miri). `n = bits(q)`, `μ = ⌊2^{2n}/q⌋ < 2^{n+1}`:
    ///
    /// ```text
    /// p = x·y                      (x, y canonical after a csub)
    /// d = ⌊p / 2^{n−2}⌋ < 2^{n+2}  (spliced from the madd52 halves)
    /// q̂ = ⌊d·μ / 2^{n+2}⌋         (undershoots ⌊p/q⌋ by at most 2)
    /// r = (p − q̂·q) mod 2^52 < 3q  (then two csubs to canonical)
    /// ```
    ///
    /// Accepts lazy multiplicands `x, y < 2q`; requires `q < 2^50`.
    pub fn mul_mod_barrett52(x: u64, y: u64, q: u64) -> u64 {
        debug_assert!(crate::modops::ifma_modulus_ok(q));
        let x = csub(x, q);
        let y = csub(y, q);
        let n = 64 - q.leading_zeros();
        let mu = ((1u128 << (2 * n)) / q as u128) as u64;
        let p = x as u128 * y as u128;
        // The two halves vpmadd52lo/hi deliver on the lanes.
        let (p_hi, p_lo) = ((p >> 52) as u64, p as u64 & M52);
        let d = (p_hi << (54 - n)) | (p_lo >> (n - 2));
        let e = d as u128 * mu as u128;
        let (e_hi, e_lo) = ((e >> 52) as u64, e as u64 & M52);
        let qhat = (e_hi << (50 - n)) | (e_lo >> (n + 2));
        let r = p_lo.wrapping_sub(qhat.wrapping_mul(q)) & M52;
        debug_assert!(r < 4 * q);
        reduce_4q(r, q)
    }

    /// Scalar 52-bit Harvey butterfly shared by both stage kernels.
    #[inline(always)]
    fn butterfly52(x: u64, y: u64, w: u64, w52: u64, q: u64) -> (u64, u64) {
        let two_q = 2 * q;
        let u = csub(x, two_q);
        let t = mul_shoup52_lazy(y, w, w52, q);
        (u + t, u + two_q - t)
    }

    pub(super) fn twist_lazy52_slice(a: &mut [u64], w: &[u64], w52: &[u64], q: u64) {
        for ((x, &wv), &sv) in a.iter_mut().zip(w).zip(w52) {
            *x = mul_shoup52_lazy(*x, wv, sv, q);
        }
    }

    pub(super) fn twist_reduce52_slice(a: &mut [u64], w: &[u64], w52: &[u64], q: u64) {
        for ((x, &wv), &sv) in a.iter_mut().zip(w).zip(w52) {
            *x = csub(mul_shoup52_lazy(*x, wv, sv, q), q);
        }
    }

    pub(super) fn harvey_stage52(
        lo: &mut [u64],
        hi: &mut [u64],
        tw: &[u64],
        tw52: &[u64],
        q: u64,
        reduce: bool,
    ) {
        for (((x, y), &w), &w52) in lo.iter_mut().zip(hi.iter_mut()).zip(tw).zip(tw52) {
            let (a, b) = butterfly52(*x, *y, w, w52, q);
            if reduce {
                *x = reduce_4q(a, q);
                *y = reduce_4q(b, q);
            } else {
                *x = a;
                *y = b;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn harvey_fused_pair52(
        x0: &mut [u64],
        x1: &mut [u64],
        x2: &mut [u64],
        x3: &mut [u64],
        tw: &FusedTwiddles<'_>,
        q: u64,
        reduce: bool,
    ) {
        for j in 0..x0.len() {
            let (a0, a1) = butterfly52(x0[j], x1[j], tw.a[j], tw.a_shoup[j], q);
            let (a2, a3) = butterfly52(x2[j], x3[j], tw.a[j], tw.a_shoup[j], q);
            let (y0, y2) = butterfly52(a0, a2, tw.b_lo[j], tw.b_lo_shoup[j], q);
            let (y1, y3) = butterfly52(a1, a3, tw.b_hi[j], tw.b_hi_shoup[j], q);
            if reduce {
                x0[j] = reduce_4q(y0, q);
                x1[j] = reduce_4q(y1, q);
                x2[j] = reduce_4q(y2, q);
                x3[j] = reduce_4q(y3, q);
            } else {
                x0[j] = y0;
                x1[j] = y1;
                x2[j] = y2;
                x3[j] = y3;
            }
        }
    }
}

/// Scalar reference for the AVX2 limb-split multiply formula — see
/// `portable::mul_mod_limbsplit`. Exported for the conformance and
/// property suites (and Miri), which pin it against Barrett on every
/// host, AVX2 or not.
pub use portable::{limbsplit_modulus_ok, mul_mod_limbsplit, LIMBSPLIT_MAX_MODULUS_BITS};

/// Scalar reference for the IFMA 52-bit Barrett multiply formula —
/// see `portable52::mul_mod_barrett52`. Exported for the conformance
/// and property suites (and Miri).
pub use portable52::mul_mod_barrett52;

/// The AVX2 backend. Every function carries
/// `#[target_feature(enable = "avx2")]` and is only reachable through
/// the dispatchers above after [`avx2_available`] returned true.
///
/// Layout of every kernel: process `len / 4 * 4` elements in 256-bit
/// groups, then delegate the tail to the scalar arithmetic of the
/// portable backend so tails are handled identically on both paths.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{portable, FusedTwiddles, LANES};
    use core::arch::x86_64::*;

    /// Sign-bit bias for synthesizing unsigned 64-bit compares out of
    /// the signed `vpcmpgtq`.
    const SIGN: i64 = i64::MIN;

    /// Broadcasts `v` to all four lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn splat(v: u64) -> __m256i {
        _mm256_set1_epi64x(v as i64)
    }

    /// Unsigned per-lane `a < b` mask (all-ones lanes where true).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cmp_lt(a: __m256i, b: __m256i) -> __m256i {
        let bias = _mm256_set1_epi64x(SIGN);
        _mm256_cmpgt_epi64(_mm256_xor_si256(b, bias), _mm256_xor_si256(a, bias))
    }

    /// Conditional subtract: per lane, `v - m` if `v ≥ m` else `v`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn csub(v: __m256i, m: __m256i) -> __m256i {
        // andnot(lt, m) keeps `m` exactly in the lanes where v ≥ m.
        _mm256_sub_epi64(v, _mm256_andnot_si256(cmp_lt(v, m), m))
    }

    /// Brings lazy `< 4q` lanes back to `[0, q)`: two conditional
    /// subtractions, matching `modops::reduce_4q` per lane.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce_4q_vec(v: __m256i, q: __m256i, two_q: __m256i) -> __m256i {
        csub(csub(v, two_q), q)
    }

    /// Low 64 bits of the per-lane product `a·b`, from three
    /// `vpmuludq` 32×32 partials (the `ahi·bhi` term shifts out).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_lo(a: __m256i, b: __m256i) -> __m256i {
        let a_hi = _mm256_srli_epi64(a, 32);
        let b_hi = _mm256_srli_epi64(b, 32);
        let ll = _mm256_mul_epu32(a, b);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
        _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32))
    }

    /// High 64 bits of the per-lane product `a·b`: all four 32×32
    /// partials with explicit carry propagation through the middle
    /// column.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_hi(a: __m256i, b: __m256i) -> __m256i {
        let lo32 = _mm256_set1_epi64x(0xFFFF_FFFF);
        let a_hi = _mm256_srli_epi64(a, 32);
        let b_hi = _mm256_srli_epi64(b, 32);
        let ll = _mm256_mul_epu32(a, b);
        let lh = _mm256_mul_epu32(a, b_hi);
        let hl = _mm256_mul_epu32(a_hi, b);
        let hh = _mm256_mul_epu32(a_hi, b_hi);
        // Middle column: (ll >> 32) + lo32(lh) + lo32(hl) ≤ 3·(2³²−1),
        // no 64-bit overflow; its high word is the carry into `hh`.
        let mid = _mm256_add_epi64(
            _mm256_srli_epi64(ll, 32),
            _mm256_add_epi64(_mm256_and_si256(lh, lo32), _mm256_and_si256(hl, lo32)),
        );
        _mm256_add_epi64(
            _mm256_add_epi64(hh, _mm256_srli_epi64(mid, 32)),
            _mm256_add_epi64(_mm256_srli_epi64(lh, 32), _mm256_srli_epi64(hl, 32)),
        )
    }

    /// Per-lane `mul_shoup_lazy(a, w, w_shoup, q)`: identical wrapping
    /// formula, so lazy representatives match the scalar path word for
    /// word.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn shoup_lazy(a: __m256i, w: __m256i, ws: __m256i, q: __m256i) -> __m256i {
        let hi = mul_hi(a, ws);
        _mm256_sub_epi64(mul_lo(a, w), mul_lo(hi, q))
    }

    /// *Approximate* high 64 bits of the per-lane product `a·c`: only
    /// the three high partials (`hh + (lh≫32) + (hl≫32)`), three
    /// `vpmuludq` instead of [`mul_hi`]'s four — the `ll` partial and
    /// the middle-column carry are dropped, undershooting the exact
    /// high word by at most 2 (the carry's range).
    ///
    /// This is the engine of the limb-split multiply: the Barrett
    /// quotient estimate tolerates the undershoot — each missing unit
    /// just leaves one more `q` in the remainder, caught by the `< 5q`
    /// correction band. Mirrored exactly by
    /// `portable::mul_mod_limbsplit`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_hi_approx(a: __m256i, c: __m256i) -> __m256i {
        let a_hi = _mm256_srli_epi64(a, 32);
        let c_hi = _mm256_srli_epi64(c, 32);
        let hh = _mm256_mul_epu32(a_hi, c_hi);
        let lh = _mm256_srli_epi64(_mm256_mul_epu32(a, c_hi), 32);
        let hl = _mm256_srli_epi64(_mm256_mul_epu32(a_hi, c), 32);
        _mm256_add_epi64(hh, _mm256_add_epi64(lh, hl))
    }

    /// Unaligned 4-lane load from `s[i..i + 4]`.
    ///
    /// SAFETY (callers): `i + 4 <= s.len()`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load(s: &[u64], i: usize) -> __m256i {
        debug_assert!(i + LANES <= s.len());
        // SAFETY: in-bounds per the function contract; loadu has no
        // alignment requirement.
        unsafe { _mm256_loadu_si256(s.as_ptr().add(i).cast()) }
    }

    /// Unaligned 4-lane store to `s[i..i + 4]`.
    ///
    /// SAFETY (callers): `i + 4 <= s.len()`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store(s: &mut [u64], i: usize, v: __m256i) {
        debug_assert!(i + LANES <= s.len());
        // SAFETY: in-bounds per the function contract; storeu has no
        // alignment requirement.
        unsafe { _mm256_storeu_si256(s.as_mut_ptr().add(i).cast(), v) }
    }

    /// Number of elements covered by full 4-lane groups.
    #[inline]
    fn full(n: usize) -> usize {
        n / LANES * LANES
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
        let qv = splat(q);
        let n4 = full(a.len());
        for i in (0..n4).step_by(LANES) {
            let s = _mm256_add_epi64(load(a, i), load(b, i));
            store(a, i, csub(s, qv));
        }
        portable::add_mod_slice(&mut a[n4..], &b[n4..], q);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sub_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
        let qv = splat(q);
        let n4 = full(a.len());
        for i in (0..n4).step_by(LANES) {
            let x = load(a, i);
            let y = load(b, i);
            // x - y, plus q exactly in the lanes where x < y.
            let add_q = _mm256_and_si256(cmp_lt(x, y), qv);
            store(a, i, _mm256_add_epi64(_mm256_sub_epi64(x, y), add_q));
        }
        portable::sub_mod_slice(&mut a[n4..], &b[n4..], q);
    }

    /// Exact 128-bit per-lane product `(lo, hi)` from the four 32×32
    /// partials computed once and shared between both words — 4
    /// `vpmuludq` total, versus 7 for separate [`mul_lo`] +
    /// [`mul_hi`] calls.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_lohi(a: __m256i, b: __m256i) -> (__m256i, __m256i) {
        let lo32 = _mm256_set1_epi64x(0xFFFF_FFFF);
        let a_hi = _mm256_srli_epi64(a, 32);
        let b_hi = _mm256_srli_epi64(b, 32);
        let ll = _mm256_mul_epu32(a, b);
        let lh = _mm256_mul_epu32(a, b_hi);
        let hl = _mm256_mul_epu32(a_hi, b);
        let hh = _mm256_mul_epu32(a_hi, b_hi);
        let cross = _mm256_add_epi64(lh, hl);
        let lo = _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32));
        // Middle column: (ll >> 32) + lo32(lh) + lo32(hl) ≤ 3·(2³²−1),
        // no 64-bit overflow; its high word is the carry into `hh`.
        let mid = _mm256_add_epi64(
            _mm256_srli_epi64(ll, 32),
            _mm256_add_epi64(_mm256_and_si256(lh, lo32), _mm256_and_si256(hl, lo32)),
        );
        let hi = _mm256_add_epi64(
            _mm256_add_epi64(hh, _mm256_srli_epi64(mid, 32)),
            _mm256_add_epi64(_mm256_srli_epi64(lh, 32), _mm256_srli_epi64(hl, 32)),
        );
        (lo, hi)
    }

    /// The limb-split multiply: canonical `x·y mod q` in 10 `vpmuludq`
    /// per 4 lanes, down from 27 for the old synthesized 64×64 path
    /// (whose loss to scalar Barrett was the dispatch bug this module
    /// fixes). Shared 32×32 partials give the exact product
    /// `p = p_hi·2⁶⁴ + p_lo` (4 multiplies); then one generalized
    /// Barrett fold with an approximate high word: splice
    /// `d = ⌊p/2^{n−2}⌋`, estimate `q̂ = hi_approx(d≪(62−n), μ)` (3),
    /// subtract `q̂·q` from `p_lo` (3), leaving `r < 5q`, and correct
    /// with three conditional subtracts. Bit-identical to
    /// `portable::mul_mod_limbsplit` per lane (see its bound proof),
    /// and (canonical residues being unique) to the portable Barrett
    /// backend.
    ///
    /// Accepts lazy multiplicands `x, y < 2q` like every `mul`/`mac`
    /// backend; requires `q < 2^61` (`limbsplit_modulus_ok`, enforced
    /// by dispatch).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
        debug_assert!(portable::limbsplit_modulus_ok(q));
        let n = 64 - q.leading_zeros() as i64;
        let muv = splat(((1u128 << (2 * n)) / q as u128) as u64);
        let sh_d_hi = _mm256_set1_epi64x(66 - n);
        let sh_d_lo = _mm256_set1_epi64x(n - 2);
        let sh_dq = _mm256_set1_epi64x(62 - n);
        let qv = splat(q);
        let two_qv = splat(2 * q);
        let n4 = full(a.len());
        for i in (0..n4).step_by(LANES) {
            let x = csub(load(a, i), qv);
            let y = csub(load(b, i), qv);
            let (p_lo, p_hi) = mul_lohi(x, y);
            let d = _mm256_or_si256(
                _mm256_sllv_epi64(p_hi, sh_d_hi),
                _mm256_srlv_epi64(p_lo, sh_d_lo),
            );
            let qhat = mul_hi_approx(_mm256_sllv_epi64(d, sh_dq), muv);
            let r = _mm256_sub_epi64(p_lo, mul_lo(qhat, qv));
            store(a, i, reduce_4q_vec(csub(r, two_qv), qv, two_qv));
        }
        portable::mul_mod_slice(&mut a[n4..], &b[n4..], q);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mac_mod_slice(acc: &mut [u64], a: &[u64], b: &[u64], q: u64) {
        debug_assert!(portable::limbsplit_modulus_ok(q));
        let n = 64 - q.leading_zeros() as i64;
        let muv = splat(((1u128 << (2 * n)) / q as u128) as u64);
        let sh_d_hi = _mm256_set1_epi64x(66 - n);
        let sh_d_lo = _mm256_set1_epi64x(n - 2);
        let sh_dq = _mm256_set1_epi64x(62 - n);
        let qv = splat(q);
        let two_qv = splat(2 * q);
        let n4 = full(acc.len());
        for i in (0..n4).step_by(LANES) {
            let x = csub(load(a, i), qv);
            let y = csub(load(b, i), qv);
            let (p_lo, p_hi) = mul_lohi(x, y);
            let d = _mm256_or_si256(
                _mm256_sllv_epi64(p_hi, sh_d_hi),
                _mm256_srlv_epi64(p_lo, sh_d_lo),
            );
            let qhat = mul_hi_approx(_mm256_sllv_epi64(d, sh_dq), muv);
            let r = _mm256_sub_epi64(p_lo, mul_lo(qhat, qv));
            let prod = reduce_4q_vec(csub(r, two_qv), qv, two_qv);
            let s = _mm256_add_epi64(load(acc, i), prod);
            store(acc, i, csub(s, qv));
        }
        portable::mac_mod_slice(&mut acc[n4..], &a[n4..], &b[n4..], q);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_shoup_slice(a: &mut [u64], s: u64, s_shoup: u64, q: u64) {
        let wv = splat(s);
        let wsv = splat(s_shoup);
        let qv = splat(q);
        let n4 = full(a.len());
        for i in (0..n4).step_by(LANES) {
            let r = shoup_lazy(load(a, i), wv, wsv, qv);
            store(a, i, csub(r, qv));
        }
        portable::scale_shoup_slice(&mut a[n4..], s, s_shoup, q);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn twist_lazy_slice(a: &mut [u64], w: &[u64], ws: &[u64], q: u64) {
        let qv = splat(q);
        let n4 = full(a.len());
        for i in (0..n4).step_by(LANES) {
            store(a, i, shoup_lazy(load(a, i), load(w, i), load(ws, i), qv));
        }
        portable::twist_lazy_slice(&mut a[n4..], &w[n4..], &ws[n4..], q);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn twist_reduce_slice(a: &mut [u64], w: &[u64], ws: &[u64], q: u64) {
        let qv = splat(q);
        let n4 = full(a.len());
        for i in (0..n4).step_by(LANES) {
            let r = shoup_lazy(load(a, i), load(w, i), load(ws, i), qv);
            store(a, i, csub(r, qv));
        }
        portable::twist_reduce_slice(&mut a[n4..], &w[n4..], &ws[n4..], q);
    }

    /// Vector Harvey butterfly: returns `(u + t, u + 2q − t)` with the
    /// u leg corrected to `< 2q`, exactly like the scalar butterfly.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn butterfly(
        x: __m256i,
        y: __m256i,
        w: __m256i,
        ws: __m256i,
        q: __m256i,
        two_q: __m256i,
    ) -> (__m256i, __m256i) {
        let u = csub(x, two_q);
        let t = shoup_lazy(y, w, ws, q);
        (
            _mm256_add_epi64(u, t),
            _mm256_sub_epi64(_mm256_add_epi64(u, two_q), t),
        )
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn harvey_stage(
        lo: &mut [u64],
        hi: &mut [u64],
        tw: &[u64],
        tws: &[u64],
        q: u64,
        reduce: bool,
    ) {
        let qv = splat(q);
        let two_qv = splat(2 * q);
        let n4 = full(lo.len());
        for i in (0..n4).step_by(LANES) {
            let (mut a, mut b) = butterfly(
                load(lo, i),
                load(hi, i),
                load(tw, i),
                load(tws, i),
                qv,
                two_qv,
            );
            if reduce {
                a = reduce_4q_vec(a, qv, two_qv);
                b = reduce_4q_vec(b, qv, two_qv);
            }
            store(lo, i, a);
            store(hi, i, b);
        }
        portable::harvey_stage(
            &mut lo[n4..],
            &mut hi[n4..],
            &tw[n4..],
            &tws[n4..],
            q,
            reduce,
        );
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn harvey_fused_pair(
        x0: &mut [u64],
        x1: &mut [u64],
        x2: &mut [u64],
        x3: &mut [u64],
        tw: &FusedTwiddles<'_>,
        q: u64,
        reduce: bool,
    ) {
        let qv = splat(q);
        let two_qv = splat(2 * q);
        let n4 = full(x0.len());
        for i in (0..n4).step_by(LANES) {
            let wa = load(tw.a, i);
            let was = load(tw.a_shoup, i);
            let (a0, a1) = butterfly(load(x0, i), load(x1, i), wa, was, qv, two_qv);
            let (a2, a3) = butterfly(load(x2, i), load(x3, i), wa, was, qv, two_qv);
            let (mut y0, mut y2) =
                butterfly(a0, a2, load(tw.b_lo, i), load(tw.b_lo_shoup, i), qv, two_qv);
            let (mut y1, mut y3) =
                butterfly(a1, a3, load(tw.b_hi, i), load(tw.b_hi_shoup, i), qv, two_qv);
            if reduce {
                y0 = reduce_4q_vec(y0, qv, two_qv);
                y1 = reduce_4q_vec(y1, qv, two_qv);
                y2 = reduce_4q_vec(y2, qv, two_qv);
                y3 = reduce_4q_vec(y3, qv, two_qv);
            }
            store(x0, i, y0);
            store(x1, i, y1);
            store(x2, i, y2);
            store(x3, i, y3);
        }
        let rest = FusedTwiddles {
            a: &tw.a[n4..],
            a_shoup: &tw.a_shoup[n4..],
            b_lo: &tw.b_lo[n4..],
            b_lo_shoup: &tw.b_lo_shoup[n4..],
            b_hi: &tw.b_hi[n4..],
            b_hi_shoup: &tw.b_hi_shoup[n4..],
        };
        portable::harvey_fused_pair(
            &mut x0[n4..],
            &mut x1[n4..],
            &mut x2[n4..],
            &mut x3[n4..],
            &rest,
            q,
            reduce,
        );
    }
}

/// The AVX-512 IFMA backend: `u64x8` lanes around `vpmadd52lo/hi`.
/// Every function carries
/// `#[target_feature(enable = "avx512f,avx512ifma")]` and is only
/// reachable through the dispatchers above after [`ifma_available`]
/// returned true. All kernels require `q < 2^50` (enforced upstream by
/// `modops::ifma_modulus_ok` — the 52-bit lane domain minus the `< 4q`
/// lazy headroom).
///
/// Layout mirrors the AVX2 backend: full 8-lane groups in 512-bit
/// registers, tails delegated to the scalar portable paths. The NTT
/// kernels evaluate exactly the `portable52` formulas per lane
/// (52-bit-radix Shoup folds in wrapping-then-mask arithmetic), so
/// lazy representatives are bit-identical across backends.
#[cfg(target_arch = "x86_64")]
mod ifma {
    use super::{portable, portable52, FusedTwiddles, LANES52};
    use crate::modops::M52;
    use core::arch::x86_64::*;

    /// Broadcasts `v` to all eight lanes.
    #[inline]
    #[target_feature(enable = "avx512f,avx512ifma")]
    unsafe fn splat(v: u64) -> __m512i {
        _mm512_set1_epi64(v as i64)
    }

    /// Conditional subtract: per lane, `v - m` if `v ≥ m` else `v`.
    /// AVX-512 has native unsigned compares into mask registers, so
    /// no sign-bias dance is needed here.
    #[inline]
    #[target_feature(enable = "avx512f,avx512ifma")]
    unsafe fn csub(v: __m512i, m: __m512i) -> __m512i {
        let ge = _mm512_cmpge_epu64_mask(v, m);
        _mm512_mask_sub_epi64(v, ge, v, m)
    }

    /// Brings lazy `< 4q` lanes back to `[0, q)`, matching
    /// `modops::reduce_4q` per lane.
    #[inline]
    #[target_feature(enable = "avx512f,avx512ifma")]
    unsafe fn reduce_4q_vec(v: __m512i, q: __m512i, two_q: __m512i) -> __m512i {
        csub(csub(v, two_q), q)
    }

    /// `⌊a·b / 2^52⌋` per lane (operands below `2^52`), one
    /// `vpmadd52huq` off a zero accumulator.
    #[inline]
    #[target_feature(enable = "avx512f,avx512ifma")]
    unsafe fn madd52hi(a: __m512i, b: __m512i) -> __m512i {
        _mm512_madd52hi_epu64(_mm512_setzero_si512(), a, b)
    }

    /// `a·b mod 2^52` per lane, one `vpmadd52luq` off a zero
    /// accumulator.
    #[inline]
    #[target_feature(enable = "avx512f,avx512ifma")]
    unsafe fn madd52lo(a: __m512i, b: __m512i) -> __m512i {
        _mm512_madd52lo_epu64(_mm512_setzero_si512(), a, b)
    }

    /// Per-lane `mul_shoup52_lazy(a, w, w52, q)`: identical
    /// wrapping-then-mask formula, so lazy representatives match the
    /// `portable52` path word for word. Three fused multiplies per 8
    /// lanes — against 10 `vpmuludq` per 4 lanes for the 64-bit
    /// [`super::avx2`] equivalent, the structural win of the 52-bit
    /// generation.
    #[inline]
    #[target_feature(enable = "avx512f,avx512ifma")]
    unsafe fn shoup52_lazy(a: __m512i, w: __m512i, w52: __m512i, q: __m512i) -> __m512i {
        let hi = madd52hi(a, w52);
        let m52 = splat(M52);
        _mm512_and_si512(_mm512_sub_epi64(madd52lo(a, w), madd52lo(hi, q)), m52)
    }

    /// Unaligned 8-lane load from `s[i..i + 8]`.
    ///
    /// SAFETY (callers): `i + 8 <= s.len()`.
    #[inline]
    #[target_feature(enable = "avx512f,avx512ifma")]
    unsafe fn load(s: &[u64], i: usize) -> __m512i {
        debug_assert!(i + LANES52 <= s.len());
        // SAFETY: in-bounds per the function contract; loadu has no
        // alignment requirement.
        unsafe { _mm512_loadu_si512(s.as_ptr().add(i).cast()) }
    }

    /// Unaligned 8-lane store to `s[i..i + 8]`.
    ///
    /// SAFETY (callers): `i + 8 <= s.len()`.
    #[inline]
    #[target_feature(enable = "avx512f,avx512ifma")]
    unsafe fn store(s: &mut [u64], i: usize, v: __m512i) {
        debug_assert!(i + LANES52 <= s.len());
        // SAFETY: in-bounds per the function contract; storeu has no
        // alignment requirement.
        unsafe { _mm512_storeu_si512(s.as_mut_ptr().add(i).cast(), v) }
    }

    /// Number of elements covered by full 8-lane groups.
    #[inline]
    fn full(n: usize) -> usize {
        n / LANES52 * LANES52
    }

    /// The 52-bit Barrett multiply behind the `mul`/`mac` IFMA route:
    /// five fused multiplies per 8 lanes (the limb-split AVX2 path
    /// needs 19 `vpmuludq` per 4). Per-lane it evaluates exactly
    /// `portable52::mul_mod_barrett52` — see that function for the
    /// `q̂` undershoot proof (`r < 3q < 2^52`).
    #[target_feature(enable = "avx512f,avx512ifma")]
    pub(super) unsafe fn mul_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
        let n = 64 - q.leading_zeros() as u64;
        let muv = splat(((1u128 << (2 * n)) / q as u128) as u64);
        let qv = splat(q);
        let two_qv = splat(2 * q);
        let m52 = splat(M52);
        let sh_d_hi = splat(54 - n);
        let sh_d_lo = splat(n - 2);
        let sh_q_hi = splat(50 - n);
        let sh_q_lo = splat(n + 2);
        let n8 = full(a.len());
        for i in (0..n8).step_by(LANES52) {
            let x = csub(load(a, i), qv);
            let y = csub(load(b, i), qv);
            let p_hi = madd52hi(x, y);
            let p_lo = madd52lo(x, y);
            let d = _mm512_or_si512(
                _mm512_sllv_epi64(p_hi, sh_d_hi),
                _mm512_srlv_epi64(p_lo, sh_d_lo),
            );
            let e_hi = madd52hi(d, muv);
            let e_lo = madd52lo(d, muv);
            let qhat = _mm512_or_si512(
                _mm512_sllv_epi64(e_hi, sh_q_hi),
                _mm512_srlv_epi64(e_lo, sh_q_lo),
            );
            let r = _mm512_and_si512(_mm512_sub_epi64(p_lo, madd52lo(qhat, qv)), m52);
            store(a, i, reduce_4q_vec(r, qv, two_qv));
        }
        portable::mul_mod_slice(&mut a[n8..], &b[n8..], q);
    }

    #[target_feature(enable = "avx512f,avx512ifma")]
    pub(super) unsafe fn mac_mod_slice(acc: &mut [u64], a: &[u64], b: &[u64], q: u64) {
        let n = 64 - q.leading_zeros() as u64;
        let muv = splat(((1u128 << (2 * n)) / q as u128) as u64);
        let qv = splat(q);
        let two_qv = splat(2 * q);
        let m52 = splat(M52);
        let sh_d_hi = splat(54 - n);
        let sh_d_lo = splat(n - 2);
        let sh_q_hi = splat(50 - n);
        let sh_q_lo = splat(n + 2);
        let n8 = full(acc.len());
        for i in (0..n8).step_by(LANES52) {
            let x = csub(load(a, i), qv);
            let y = csub(load(b, i), qv);
            let p_hi = madd52hi(x, y);
            let p_lo = madd52lo(x, y);
            let d = _mm512_or_si512(
                _mm512_sllv_epi64(p_hi, sh_d_hi),
                _mm512_srlv_epi64(p_lo, sh_d_lo),
            );
            let e_hi = madd52hi(d, muv);
            let e_lo = madd52lo(d, muv);
            let qhat = _mm512_or_si512(
                _mm512_sllv_epi64(e_hi, sh_q_hi),
                _mm512_srlv_epi64(e_lo, sh_q_lo),
            );
            let r = _mm512_and_si512(_mm512_sub_epi64(p_lo, madd52lo(qhat, qv)), m52);
            let prod = reduce_4q_vec(r, qv, two_qv);
            let s = _mm512_add_epi64(load(acc, i), prod);
            store(acc, i, csub(s, qv));
        }
        portable::mac_mod_slice(&mut acc[n8..], &a[n8..], &b[n8..], q);
    }

    #[target_feature(enable = "avx512f,avx512ifma")]
    pub(super) unsafe fn twist_lazy52_slice(a: &mut [u64], w: &[u64], w52: &[u64], q: u64) {
        let qv = splat(q);
        let n8 = full(a.len());
        for i in (0..n8).step_by(LANES52) {
            store(a, i, shoup52_lazy(load(a, i), load(w, i), load(w52, i), qv));
        }
        portable52::twist_lazy52_slice(&mut a[n8..], &w[n8..], &w52[n8..], q);
    }

    #[target_feature(enable = "avx512f,avx512ifma")]
    pub(super) unsafe fn twist_reduce52_slice(a: &mut [u64], w: &[u64], w52: &[u64], q: u64) {
        let qv = splat(q);
        let n8 = full(a.len());
        for i in (0..n8).step_by(LANES52) {
            let r = shoup52_lazy(load(a, i), load(w, i), load(w52, i), qv);
            store(a, i, csub(r, qv));
        }
        portable52::twist_reduce52_slice(&mut a[n8..], &w[n8..], &w52[n8..], q);
    }

    /// Vector 52-bit Harvey butterfly: `(u + t, u + 2q − t)` with the
    /// u leg corrected to `< 2q`, exactly like `portable52`'s. All
    /// values stay below `4q < 2^52`, so the 64-bit lane adds cannot
    /// wrap.
    #[inline]
    #[target_feature(enable = "avx512f,avx512ifma")]
    unsafe fn butterfly52(
        x: __m512i,
        y: __m512i,
        w: __m512i,
        w52: __m512i,
        q: __m512i,
        two_q: __m512i,
    ) -> (__m512i, __m512i) {
        let u = csub(x, two_q);
        let t = shoup52_lazy(y, w, w52, q);
        (
            _mm512_add_epi64(u, t),
            _mm512_sub_epi64(_mm512_add_epi64(u, two_q), t),
        )
    }

    #[target_feature(enable = "avx512f,avx512ifma")]
    pub(super) unsafe fn harvey_stage52(
        lo: &mut [u64],
        hi: &mut [u64],
        tw: &[u64],
        tw52: &[u64],
        q: u64,
        reduce: bool,
    ) {
        let qv = splat(q);
        let two_qv = splat(2 * q);
        let n8 = full(lo.len());
        for i in (0..n8).step_by(LANES52) {
            let (mut a, mut b) = butterfly52(
                load(lo, i),
                load(hi, i),
                load(tw, i),
                load(tw52, i),
                qv,
                two_qv,
            );
            if reduce {
                a = reduce_4q_vec(a, qv, two_qv);
                b = reduce_4q_vec(b, qv, two_qv);
            }
            store(lo, i, a);
            store(hi, i, b);
        }
        portable52::harvey_stage52(
            &mut lo[n8..],
            &mut hi[n8..],
            &tw[n8..],
            &tw52[n8..],
            q,
            reduce,
        );
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f,avx512ifma")]
    pub(super) unsafe fn harvey_fused_pair52(
        x0: &mut [u64],
        x1: &mut [u64],
        x2: &mut [u64],
        x3: &mut [u64],
        tw: &FusedTwiddles<'_>,
        q: u64,
        reduce: bool,
    ) {
        let qv = splat(q);
        let two_qv = splat(2 * q);
        let n8 = full(x0.len());
        for i in (0..n8).step_by(LANES52) {
            let wa = load(tw.a, i);
            let wa52 = load(tw.a_shoup, i);
            let (a0, a1) = butterfly52(load(x0, i), load(x1, i), wa, wa52, qv, two_qv);
            let (a2, a3) = butterfly52(load(x2, i), load(x3, i), wa, wa52, qv, two_qv);
            let (mut y0, mut y2) =
                butterfly52(a0, a2, load(tw.b_lo, i), load(tw.b_lo_shoup, i), qv, two_qv);
            let (mut y1, mut y3) =
                butterfly52(a1, a3, load(tw.b_hi, i), load(tw.b_hi_shoup, i), qv, two_qv);
            if reduce {
                y0 = reduce_4q_vec(y0, qv, two_qv);
                y1 = reduce_4q_vec(y1, qv, two_qv);
                y2 = reduce_4q_vec(y2, qv, two_qv);
                y3 = reduce_4q_vec(y3, qv, two_qv);
            }
            store(x0, i, y0);
            store(x1, i, y1);
            store(x2, i, y2);
            store(x3, i, y3);
        }
        let rest = FusedTwiddles {
            a: &tw.a[n8..],
            a_shoup: &tw.a_shoup[n8..],
            b_lo: &tw.b_lo[n8..],
            b_lo_shoup: &tw.b_lo_shoup[n8..],
            b_hi: &tw.b_hi[n8..],
            b_hi_shoup: &tw.b_hi_shoup[n8..],
        };
        portable52::harvey_fused_pair52(
            &mut x0[n8..],
            &mut x1[n8..],
            &mut x2[n8..],
            &mut x3[n8..],
            &rest,
            q,
            reduce,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modops::{mul_mod, mul_shoup, shoup_precompute, sub_mod};
    use crate::prime::generate_ntt_prime;

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed
    }

    fn vecs(len: usize, q: u64, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut s = seed | 1;
        let a = (0..len).map(|_| lcg(&mut s) % q).collect();
        let b = (0..len).map(|_| lcg(&mut s) % q).collect();
        (a, b)
    }

    /// Every slice kernel at lengths that exercise empty, tail-only,
    /// exact-multiple and mixed group/tail splits, against the scalar
    /// oracles.
    #[test]
    fn slice_kernels_match_scalar_oracles() {
        let q = generate_ntt_prime(64, 59).unwrap();
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 31, 64, 67] {
            let (a, b) = vecs(len, q, 0x5eed ^ len as u64);

            let mut add = a.clone();
            add_mod_slice(&mut add, &b, q);
            let mut sub = a.clone();
            sub_mod_slice(&mut sub, &b, q);
            let mut mul = a.clone();
            mul_mod_slice(&mut mul, &b, q);
            let mut mac = b.clone();
            mac_mod_slice(&mut mac, &a, &b, q);
            for j in 0..len {
                assert_eq!(add[j], add_mod(a[j], b[j], q), "add len={len} j={j}");
                assert_eq!(sub[j], sub_mod(a[j], b[j], q), "sub len={len} j={j}");
                assert_eq!(mul[j], mul_mod(a[j], b[j], q), "mul len={len} j={j}");
                assert_eq!(
                    mac[j],
                    add_mod(b[j], mul_mod(a[j], b[j], q), q),
                    "mac len={len} j={j}"
                );
            }

            let s = a.first().copied().unwrap_or(3) % q;
            let ss = shoup_precompute(s, q);
            let mut scaled = a.clone();
            scale_shoup_slice(&mut scaled, s, ss, q);
            for j in 0..len {
                assert_eq!(
                    scaled[j],
                    mul_shoup(a[j], s, ss, q),
                    "scale len={len} j={j}"
                );
            }

            let ws: Vec<u64> = b.iter().map(|&w| shoup_precompute(w, q)).collect();
            let mut lazy = a.clone();
            twist_lazy_slice(&mut lazy, &b, &ws, q);
            let mut red = a.clone();
            twist_reduce_slice(&mut red, &b, &ws, q);
            for j in 0..len {
                assert_eq!(
                    lazy[j],
                    mul_shoup_lazy(a[j], b[j], ws[j], q),
                    "twist_lazy len={len} j={j}"
                );
                assert!(lazy[j] < 2 * q, "lazy bound len={len} j={j}");
                assert_eq!(red[j], mul_shoup(a[j], b[j], ws[j], q), "twist_reduce");
            }
        }
    }

    /// The butterfly kernels, including denormal lazy inputs in
    /// `[q, 2q)` and `[0, 4q)`, against the scalar formula — exact
    /// word equality on the lazy representatives, not just congruence.
    #[test]
    fn butterfly_kernels_match_scalar_formula_on_lazy_inputs() {
        let q = generate_ntt_prime(64, 59).unwrap();
        let scalar_butterfly = |x: u64, y: u64, w: u64, ws: u64| {
            let two_q = 2 * q;
            let u = if x >= two_q { x - two_q } else { x };
            let t = mul_shoup_lazy(y, w, ws, q);
            (u + t, u + two_q - t)
        };
        for len in [1usize, 3, 4, 5, 8, 13, 64] {
            let mut s = 0xb1ff ^ len as u64;
            // Lazy operands anywhere below 4q; twiddles reduced.
            let lo0: Vec<u64> = (0..len).map(|_| lcg(&mut s) % (4 * q)).collect();
            let hi0: Vec<u64> = (0..len).map(|_| lcg(&mut s) % (4 * q)).collect();
            let w: Vec<u64> = (0..len).map(|_| lcg(&mut s) % q).collect();
            let ws: Vec<u64> = w.iter().map(|&x| shoup_precompute(x, q)).collect();
            for reduce in [false, true] {
                let mut lo = lo0.clone();
                let mut hi = hi0.clone();
                harvey_stage(&mut lo, &mut hi, &w, &ws, q, reduce);
                for j in 0..len {
                    let (a, b) = scalar_butterfly(lo0[j], hi0[j], w[j], ws[j]);
                    let (a, b) = if reduce {
                        (reduce_4q(a, q), reduce_4q(b, q))
                    } else {
                        (a, b)
                    };
                    assert_eq!(lo[j], a, "stage lo len={len} j={j} reduce={reduce}");
                    assert_eq!(hi[j], b, "stage hi len={len} j={j} reduce={reduce}");
                }
            }
            // Fused pair vs two explicit stages on denormal [q, 2q)
            // inputs (the < 2q entry bound of the blocked walk).
            let mk = |s: &mut u64| -> Vec<u64> { (0..len).map(|_| q + lcg(s) % q).collect() };
            let (x0, x1, x2, x3) = (mk(&mut s), mk(&mut s), mk(&mut s), mk(&mut s));
            let wb: Vec<u64> = (0..2 * len).map(|_| lcg(&mut s) % q).collect();
            let wbs: Vec<u64> = wb.iter().map(|&x| shoup_precompute(x, q)).collect();
            let tw = FusedTwiddles {
                a: &w,
                a_shoup: &ws,
                b_lo: &wb[..len],
                b_lo_shoup: &wbs[..len],
                b_hi: &wb[len..],
                b_hi_shoup: &wbs[len..],
            };
            for reduce in [false, true] {
                let (mut f0, mut f1, mut f2, mut f3) =
                    (x0.clone(), x1.clone(), x2.clone(), x3.clone());
                harvey_fused_pair(&mut f0, &mut f1, &mut f2, &mut f3, &tw, q, reduce);
                let (mut g0, mut g1, mut g2, mut g3) =
                    (x0.clone(), x1.clone(), x2.clone(), x3.clone());
                harvey_stage(&mut g0, &mut g1, &w, &ws, q, false);
                harvey_stage(&mut g2, &mut g3, &w, &ws, q, false);
                harvey_stage(&mut g0, &mut g2, &wb[..len], &wbs[..len], q, reduce);
                harvey_stage(&mut g1, &mut g3, &wb[len..], &wbs[len..], q, reduce);
                assert_eq!(f0, g0, "fused len={len} reduce={reduce}");
                assert_eq!(f1, g1, "fused len={len} reduce={reduce}");
                assert_eq!(f2, g2, "fused len={len} reduce={reduce}");
                assert_eq!(f3, g3, "fused len={len} reduce={reduce}");
            }
        }
    }

    /// On vector hosts, the dispatched backend (AVX2 limb-split at 59
    /// bits, IFMA 52-bit Barrett at 30/45/50) must agree word-for-word
    /// with the always-compiled portable backend (on other hosts this
    /// degenerates to portable-vs-portable and trivially passes, which
    /// is exactly the fallback contract).
    #[test]
    fn backends_agree_across_moduli() {
        for bits in [30u32, 45, 50, 59] {
            let q = generate_ntt_prime(128, bits).unwrap();
            let (a, b) = vecs(133, q, u64::from(bits));
            let mut x = a.clone();
            mul_mod_slice(&mut x, &b, q);
            let mut y = a.clone();
            portable::mul_mod_slice(&mut y, &b, q);
            assert_eq!(x, y, "mul_mod backends diverge at {bits} bits");
            let mut x = b.clone();
            mac_mod_slice(&mut x, &a, &b, q);
            let mut y = b.clone();
            portable::mac_mod_slice(&mut y, &a, &b, q);
            assert_eq!(x, y, "mac backends diverge at {bits} bits");
        }
    }

    /// The limb-split scalar mirror (the exact per-lane formula of the
    /// AVX2 `mul`/`mac` path) against Barrett, over several modulus
    /// widths up to the 61-bit top of the range, on canonical *and*
    /// denormal `[q, 2q)` operands. Runs on every host and under Miri
    /// — formula coverage does not depend on AVX2 being present.
    #[test]
    fn limbsplit_scalar_mirror_matches_barrett() {
        for bits in [30u32, 45, 59, 61] {
            let q = generate_ntt_prime(64, bits).unwrap();
            let mut s = 0x11b5 ^ u64::from(bits);
            for i in 0..200 {
                // Even i: canonical operands; odd i: denormal [q, 2q).
                let (x, y) = if i % 2 == 0 {
                    (lcg(&mut s) % q, lcg(&mut s) % q)
                } else {
                    (q + lcg(&mut s) % q, q + lcg(&mut s) % q)
                };
                assert_eq!(
                    mul_mod_limbsplit(x, y, q),
                    mul_mod(x % q, y % q, q),
                    "bits={bits} x={x} y={y}"
                );
            }
            for (x, y) in [
                (0, 0),
                (q - 1, q - 1),
                (2 * q - 1, 2 * q - 1),
                (1, 2 * q - 1),
            ] {
                assert_eq!(mul_mod_limbsplit(x, y, q), mul_mod(x % q, y % q, q));
            }
        }
    }

    /// The 52-bit Barrett scalar mirror (the exact per-lane formula of
    /// the IFMA `mul`/`mac` path) against Barrett, over the whole
    /// supported width range including the 50-bit ceiling and tiny
    /// moduli, on canonical and denormal operands.
    #[test]
    fn barrett52_scalar_mirror_matches_barrett() {
        for q in [
            generate_ntt_prime(64, 50).unwrap(),
            generate_ntt_prime(64, 45).unwrap(),
            generate_ntt_prime(64, 30).unwrap(),
            12289,
            (1u64 << 50) - 27, // odd non-prime at the ceiling
            17,
        ] {
            assert!(crate::modops::ifma_modulus_ok(q), "q={q}");
            let mut s = 0x52b ^ q;
            for i in 0..200 {
                let (x, y) = if i % 2 == 0 {
                    (lcg(&mut s) % q, lcg(&mut s) % q)
                } else {
                    (q + lcg(&mut s) % q, q + lcg(&mut s) % q)
                };
                assert_eq!(
                    mul_mod_barrett52(x, y, q),
                    mul_mod(x % q, y % q, q),
                    "q={q} x={x} y={y}"
                );
            }
            for (x, y) in [
                (0, 0),
                (q - 1, q - 1),
                (2 * q - 1, 2 * q - 1),
                (1, 2 * q - 1),
            ] {
                assert_eq!(mul_mod_barrett52(x, y, q), mul_mod(x % q, y % q, q));
            }
        }
    }

    /// Dispatched `mul`/`mac` slices on denormal `[q, 2q)`
    /// multiplicands — the lazy-operand half of the slice contract —
    /// against the reduced-operand oracle, at both a limb-split-width
    /// and an IFMA-width modulus.
    #[test]
    fn mul_mac_slices_accept_lazy_multiplicands() {
        for bits in [50u32, 59] {
            let q = generate_ntt_prime(64, bits).unwrap();
            for len in [0usize, 1, 7, 8, 9, 64, 67] {
                let mut s = 0xdeb0 ^ (u64::from(bits) << 8) ^ len as u64;
                let a: Vec<u64> = (0..len).map(|_| q + lcg(&mut s) % q).collect();
                let b: Vec<u64> = (0..len).map(|_| q + lcg(&mut s) % q).collect();
                let acc0: Vec<u64> = (0..len).map(|_| lcg(&mut s) % q).collect();
                let mut mul = a.clone();
                mul_mod_slice(&mut mul, &b, q);
                let mut mac = acc0.clone();
                mac_mod_slice(&mut mac, &a, &b, q);
                for j in 0..len {
                    let p = mul_mod(a[j] % q, b[j] % q, q);
                    assert_eq!(mul[j], p, "mul bits={bits} len={len} j={j}");
                    assert_eq!(
                        mac[j],
                        add_mod(acc0[j], p, q),
                        "mac bits={bits} len={len} j={j}"
                    );
                }
            }
        }
    }

    /// The 52-bit kernel surface ([`harvey_stage52`],
    /// [`harvey_fused_pair52`], the twists) against the scalar 52-bit
    /// formula on lazy inputs — exact word equality on the lazy
    /// representatives, mirroring the 64-bit butterfly test. On IFMA
    /// hosts this exercises the `vpmadd52` lanes; elsewhere (and under
    /// Miri) the portable52 mirror.
    #[test]
    fn kernels52_match_scalar_formula_on_lazy_inputs() {
        use crate::modops::{mul_shoup52, shoup52_precompute};
        let q = generate_ntt_prime(64, 50).unwrap();
        let scalar_butterfly = |x: u64, y: u64, w: u64, w52: u64| {
            let two_q = 2 * q;
            let u = if x >= two_q { x - two_q } else { x };
            let t = mul_shoup52_lazy(y, w, w52, q);
            (u + t, u + two_q - t)
        };
        for len in [1usize, 3, 7, 8, 9, 16, 64] {
            let mut s = 0x52f ^ len as u64;
            let lo0: Vec<u64> = (0..len).map(|_| lcg(&mut s) % (4 * q)).collect();
            let hi0: Vec<u64> = (0..len).map(|_| lcg(&mut s) % (4 * q)).collect();
            let w: Vec<u64> = (0..len).map(|_| lcg(&mut s) % q).collect();
            let w52: Vec<u64> = w.iter().map(|&x| shoup52_precompute(x, q)).collect();
            for reduce in [false, true] {
                let mut lo = lo0.clone();
                let mut hi = hi0.clone();
                harvey_stage52(&mut lo, &mut hi, &w, &w52, q, reduce);
                for j in 0..len {
                    let (a, b) = scalar_butterfly(lo0[j], hi0[j], w[j], w52[j]);
                    let (a, b) = if reduce {
                        (reduce_4q(a, q), reduce_4q(b, q))
                    } else {
                        (a, b)
                    };
                    assert_eq!(lo[j], a, "stage52 lo len={len} j={j} reduce={reduce}");
                    assert_eq!(hi[j], b, "stage52 hi len={len} j={j} reduce={reduce}");
                }
            }
            // Twists against the scalar 52-bit Shoup primitives.
            let mut lazy = lo0.clone();
            twist_lazy52_slice(&mut lazy, &w, &w52, q);
            let mut red = lo0.clone();
            twist_reduce52_slice(&mut red, &w, &w52, q);
            for j in 0..len {
                assert_eq!(lazy[j], mul_shoup52_lazy(lo0[j], w[j], w52[j], q));
                assert!(lazy[j] < 2 * q, "lazy52 bound len={len} j={j}");
                assert_eq!(red[j], mul_shoup52(lo0[j], w[j], w52[j], q));
            }
            // Fused pair vs two explicit stages on denormal [q, 2q)
            // inputs.
            let mk = |s: &mut u64| -> Vec<u64> { (0..len).map(|_| q + lcg(s) % q).collect() };
            let (x0, x1, x2, x3) = (mk(&mut s), mk(&mut s), mk(&mut s), mk(&mut s));
            let wb: Vec<u64> = (0..2 * len).map(|_| lcg(&mut s) % q).collect();
            let wb52: Vec<u64> = wb.iter().map(|&x| shoup52_precompute(x, q)).collect();
            let tw = FusedTwiddles {
                a: &w,
                a_shoup: &w52,
                b_lo: &wb[..len],
                b_lo_shoup: &wb52[..len],
                b_hi: &wb[len..],
                b_hi_shoup: &wb52[len..],
            };
            for reduce in [false, true] {
                let (mut f0, mut f1, mut f2, mut f3) =
                    (x0.clone(), x1.clone(), x2.clone(), x3.clone());
                harvey_fused_pair52(&mut f0, &mut f1, &mut f2, &mut f3, &tw, q, reduce);
                let (mut g0, mut g1, mut g2, mut g3) =
                    (x0.clone(), x1.clone(), x2.clone(), x3.clone());
                harvey_stage52(&mut g0, &mut g1, &w, &w52, q, false);
                harvey_stage52(&mut g2, &mut g3, &w, &w52, q, false);
                harvey_stage52(&mut g0, &mut g2, &wb[..len], &wb52[..len], q, reduce);
                harvey_stage52(&mut g1, &mut g3, &wb[len..], &wb52[len..], q, reduce);
                assert_eq!(f0, g0, "fused52 len={len} reduce={reduce}");
                assert_eq!(f1, g1, "fused52 len={len} reduce={reduce}");
                assert_eq!(f2, g2, "fused52 len={len} reduce={reduce}");
                assert_eq!(f3, g3, "fused52 len={len} reduce={reduce}");
            }
        }
    }

    /// Structural invariants of the per-op dispatch table: IFMA routes
    /// require the hardware and a sub-2^50 modulus, nothing routes to
    /// a vector backend the host lacks, and the table covers every op
    /// in declaration order.
    #[test]
    fn ew_dispatch_table_is_sound() {
        for q in [
            generate_ntt_prime(64, 50).unwrap(),
            generate_ntt_prime(64, 59).unwrap(),
        ] {
            let table = ew_dispatch_table(q);
            assert_eq!(table.len(), EwOp::ALL.len());
            for (row, &op) in table.iter().zip(EwOp::ALL.iter()) {
                assert_eq!(row.op, op);
                match row.backend {
                    EwBackend::Avx2 => assert!(avx2_available(), "{}", op.name()),
                    EwBackend::Ifma => {
                        assert!(ifma_available(), "{}", op.name());
                        assert!(ifma_modulus_ok(q), "{}", op.name());
                        assert!(
                            matches!(op, EwOp::Mul | EwOp::Mac),
                            "only mul/mac route to IFMA"
                        );
                    }
                    EwBackend::Portable => {}
                }
                match op {
                    // The structural-win ops are always static routes.
                    EwOp::Add | EwOp::Sub | EwOp::Scale => {
                        assert_eq!(row.source, RouteSource::Static, "{}", op.name());
                    }
                    // mul/mac are measured exactly when the choice was
                    // the avx2-vs-scalar race.
                    EwOp::Mul | EwOp::Mac => {
                        if row.backend == EwBackend::Ifma {
                            assert_eq!(row.source, RouteSource::Static);
                        }
                    }
                }
            }
        }
        // Ifma must never be routed for a modulus over the ceiling.
        let wide = generate_ntt_prime(64, 59).unwrap();
        for row in ew_dispatch_table(wide) {
            assert_ne!(row.backend, EwBackend::Ifma, "59-bit modulus on IFMA");
        }
    }
}
