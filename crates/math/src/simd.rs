//! 4-wide SIMD lane kernels: the software stand-in for UFC's arrays of
//! butterfly and modular-ALU lanes.
//!
//! Every public function here is a *slice kernel*: it applies one
//! modular primitive across a whole slice, dispatching once per call
//! between two backends:
//!
//! * **AVX2** (`x86_64` only) — `u64x4` lanes built from
//!   `core::arch::x86_64` intrinsics. AVX2 has no 64×64-bit multiply
//!   or unsigned 64-bit compare, so both are synthesized: the multiply
//!   from four `vpmuludq` 32×32 partial products with explicit carry
//!   propagation, the compare by biasing both operands with the sign
//!   bit and using the signed `vpcmpgtq`. Selected at runtime via
//!   [`avx2_available`] (one `is_x86_feature_detected!` probe cached
//!   in a `OnceLock`).
//! * **Portable** — a 4-lane scalar-unrolled fallback, always
//!   compiled, on every architecture. It reuses the scalar primitives
//!   from [`crate::modops`], so it is trivially bit-identical to the
//!   pre-SIMD code paths.
//!
//! # Bit-identity contract
//!
//! Both backends produce **exactly** the same output words:
//!
//! * The lazy kernels ([`twist_lazy_slice`], [`harvey_stage`],
//!   [`harvey_fused_pair`], [`scale_shoup_slice`]) evaluate the *same
//!   integer formula* per lane as their scalar counterparts
//!   (`a·w − ⌊a·w_shoup/2⁶⁴⌋·q` in wrapping 64-bit arithmetic), so
//!   even the lazy `[0, 2q)`/`[0, 4q)` representatives match word for
//!   word — the Harvey lazy-reduction bounds are preserved, not just
//!   congruence.
//! * The canonical kernels ([`add_mod_slice`], [`sub_mod_slice`],
//!   [`mac_mod_slice`]) use the same conditional-subtract formula per
//!   lane. [`mul_mod_slice`] is the one kernel where the backends use
//!   different *internal* reductions (Barrett on the portable path, a
//!   `2⁶⁴ mod q` high/low-word fold on AVX2); both return the unique
//!   canonical residue in `[0, q)`, so outputs are still identical.
//!
//! Tail elements past the last full 4-lane group are always handled by
//! the scalar arithmetic of the portable backend, on both paths.
//!
//! # Why AVX2-only (for now)
//!
//! AVX2 is the widest vector extension that is near-universal on
//! x86-64 servers and that `is_x86_feature_detected!` can gate without
//! compile-time `-C target-feature` plumbing. AVX-512 (`vpmullq`
//! removes the 32×32 decomposition) and NEON ports drop into the same
//! backend seam later without touching callers.
//!
//! This is the **only** module in the workspace that uses `unsafe`
//! (see the workspace `unsafe_code = "deny"` lint note in the root
//! `Cargo.toml`): raw-pointer vector loads/stores and the
//! `#[target_feature]` call boundary. Each site carries a SAFETY
//! comment; everything else in the crate remains `#![deny(unsafe_code)]`.
//! (The `unsafe_code` allowance itself lives on the `mod simd`
//! declaration in `lib.rs`, next to the deny it punches through.)

use crate::modops::{add_mod, mul_shoup_lazy, pow2_64_mod, reduce_4q, shoup_precompute, Barrett};

/// Lane width of the SIMD backends: both the AVX2 path (`u64x4` in a
/// 256-bit register) and the portable scalar unroll process 4 elements
/// per group.
pub const LANES: usize = 4;

/// Whether the AVX2 backend is usable on this host. Probed once with
/// `is_x86_feature_detected!("avx2")` and cached in a `OnceLock`;
/// always `false` off `x86_64`.
pub fn avx2_available() -> bool {
    // Miri cannot execute vendor intrinsics; force every dispatch
    // onto the portable lanes so the whole SIMD surface stays
    // checkable under the interpreter.
    if cfg!(miri) {
        return false;
    }
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// The six stage-twiddle slices consumed by one fused radix-2 stage
/// pair (stage A plus the two halves of stage B), bundled so the
/// butterfly kernel's signature stays readable. All slices have the
/// same length as the coefficient quarter-slices they multiply.
#[derive(Debug, Clone, Copy)]
pub struct FusedTwiddles<'a> {
    /// Stage-A twiddles (block length `len`).
    pub a: &'a [u64],
    /// Shoup companions of `a`.
    pub a_shoup: &'a [u64],
    /// Stage-B twiddles for the `(x0, x2)` butterflies.
    pub b_lo: &'a [u64],
    /// Shoup companions of `b_lo`.
    pub b_lo_shoup: &'a [u64],
    /// Stage-B twiddles for the `(x1, x3)` butterflies.
    pub b_hi: &'a [u64],
    /// Shoup companions of `b_hi`.
    pub b_hi_shoup: &'a [u64],
}

/// `a[i] ← (a[i] + b[i]) mod q`, canonical inputs and outputs.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
    assert_eq!(a.len(), b.len(), "slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::add_mod_slice(a, b, q) };
        return;
    }
    portable::add_mod_slice(a, b, q);
}

/// `a[i] ← (a[i] - b[i]) mod q`, canonical inputs and outputs.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sub_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
    assert_eq!(a.len(), b.len(), "slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::sub_mod_slice(a, b, q) };
        return;
    }
    portable::sub_mod_slice(a, b, q);
}

/// Hadamard product `a[i] ← a[i]·b[i] mod q` over canonical residues.
///
/// The portable path reduces with Barrett (as the scalar plane kernel
/// always did); the AVX2 path folds the 128-bit product as
/// `hi·(2⁶⁴ mod q) + lo` through two lazy Shoup multiplies. Both
/// return the canonical residue, so outputs are bit-identical.
///
/// # Panics
///
/// Panics if the slices differ in length or `q` is outside the
/// Barrett range `[2, 2⁶²)`.
pub fn mul_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
    assert_eq!(a.len(), b.len(), "slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::mul_mod_slice(a, b, q) };
        return;
    }
    portable::mul_mod_slice(a, b, q);
}

/// Multiply-accumulate `acc[i] ← (acc[i] + a[i]·b[i]) mod q` over
/// canonical residues.
///
/// # Panics
///
/// Panics if the slices differ in length or `q` is outside the
/// Barrett range `[2, 2⁶²)`.
pub fn mac_mod_slice(acc: &mut [u64], a: &[u64], b: &[u64], q: u64) {
    assert_eq!(acc.len(), a.len(), "slice length mismatch");
    assert_eq!(acc.len(), b.len(), "slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::mac_mod_slice(acc, a, b, q) };
        return;
    }
    portable::mac_mod_slice(acc, a, b, q);
}

/// Broadcast Shoup scale `a[i] ← a[i]·s mod q`, fully reduced.
/// `s_shoup` must be [`shoup_precompute`]`(s, q)`; `a` may hold any
/// 64-bit values (lazy representatives included), the output is
/// canonical — the exact contract of [`crate::modops::mul_shoup`].
pub fn scale_shoup_slice(a: &mut [u64], s: u64, s_shoup: u64, q: u64) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::scale_shoup_slice(a, s, s_shoup, q) };
        return;
    }
    portable::scale_shoup_slice(a, s, s_shoup, q);
}

/// Element-wise lazy Shoup twist `a[i] ← a[i]·w[i] mod q` as a
/// representative in `[0, 2q)` — the ψ pre-twist of the negacyclic
/// forward NTT. Accepts any 64-bit `a[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn twist_lazy_slice(a: &mut [u64], w: &[u64], w_shoup: &[u64], q: u64) {
    assert_eq!(a.len(), w.len(), "slice length mismatch");
    assert_eq!(a.len(), w_shoup.len(), "slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::twist_lazy_slice(a, w, w_shoup, q) };
        return;
    }
    portable::twist_lazy_slice(a, w, w_shoup, q);
}

/// Element-wise Shoup twist with the `[0, q)` correction folded in —
/// the fused `ψ^{-i}·N^{-1}` post-twist of the negacyclic inverse NTT,
/// straight off lazy (`< 4q`) stage outputs.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn twist_reduce_slice(a: &mut [u64], w: &[u64], w_shoup: &[u64], q: u64) {
    assert_eq!(a.len(), w.len(), "slice length mismatch");
    assert_eq!(a.len(), w_shoup.len(), "slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::twist_reduce_slice(a, w, w_shoup, q) };
        return;
    }
    portable::twist_reduce_slice(a, w, w_shoup, q);
}

/// One Harvey lazy radix-2 butterfly stage over paired half-slices:
/// for each `j`,
///
/// ```text
/// u  = lo[j] − 2q·[lo[j] ≥ 2q]          (correct the u leg to < 2q)
/// t  = a[j]·w[j] mod q as < 2q          (lazy Shoup multiply)
/// lo[j] = u + t,   hi[j] = u + 2q − t   (both < 4q)
/// ```
///
/// With `reduce`, both outputs get the final `[0, q)` correction — the
/// last-stage variant. The same data flow serves the inverse
/// transform: this codebase runs the inverse as a Cooley–Tukey walk
/// over the ω⁻¹ stage tables (not a Gentleman–Sande butterfly), so
/// forward and inverse share this one primitive.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn harvey_stage(lo: &mut [u64], hi: &mut [u64], tw: &[u64], tws: &[u64], q: u64, reduce: bool) {
    assert_eq!(lo.len(), hi.len(), "slice length mismatch");
    assert_eq!(lo.len(), tw.len(), "slice length mismatch");
    assert_eq!(lo.len(), tws.len(), "slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::harvey_stage(lo, hi, tw, tws, q, reduce) };
        return;
    }
    portable::harvey_stage(lo, hi, tw, tws, q, reduce);
}

/// Two fused Harvey radix-2 stages over the four quarter-slices of a
/// `2·len` chunk — the vector form of the scalar fused stage pair:
/// stage A butterflies `(x0, x1)` and `(x2, x3)` with the `tw.a`
/// twiddles, then stage B butterflies `(a0, a2)` and `(a1, a3)` with
/// `tw.b_lo`/`tw.b_hi`, all in registers, with a single load and store
/// per element. Bit-identical to running [`harvey_stage`] twice.
/// With `reduce`, stage B's outputs get the `[0, q)` correction.
///
/// # Panics
///
/// Panics if any slice length differs from `x0`'s.
pub fn harvey_fused_pair(
    x0: &mut [u64],
    x1: &mut [u64],
    x2: &mut [u64],
    x3: &mut [u64],
    tw: &FusedTwiddles<'_>,
    q: u64,
    reduce: bool,
) {
    let ha = x0.len();
    assert!(
        x1.len() == ha && x2.len() == ha && x3.len() == ha,
        "quarter-slice length mismatch"
    );
    assert!(
        tw.a.len() == ha
            && tw.a_shoup.len() == ha
            && tw.b_lo.len() == ha
            && tw.b_lo_shoup.len() == ha
            && tw.b_hi.len() == ha
            && tw.b_hi_shoup.len() == ha,
        "twiddle slice length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::harvey_fused_pair(x0, x1, x2, x3, tw, q, reduce) };
        return;
    }
    portable::harvey_fused_pair(x0, x1, x2, x3, tw, q, reduce);
}

/// The portable backend: 4-lane scalar-unrolled loops over the same
/// scalar primitives the pre-SIMD code paths used. Always compiled (on
/// every architecture) and always used for tail elements, so the AVX2
/// backend's conformance target is in the same binary.
mod portable {
    use super::{add_mod, mul_shoup_lazy, reduce_4q, Barrett, FusedTwiddles, LANES};

    #[inline(always)]
    fn csub(v: u64, m: u64) -> u64 {
        if v >= m {
            v - m
        } else {
            v
        }
    }

    pub(super) fn add_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
        let mut bc = b.chunks_exact(LANES);
        let mut ac = a.chunks_exact_mut(LANES);
        for (av, bv) in (&mut ac).zip(&mut bc) {
            av[0] = add_mod(av[0], bv[0], q);
            av[1] = add_mod(av[1], bv[1], q);
            av[2] = add_mod(av[2], bv[2], q);
            av[3] = add_mod(av[3], bv[3], q);
        }
        for (x, &y) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
            *x = add_mod(*x, y, q);
        }
    }

    pub(super) fn sub_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
        let sub = |x: u64, y: u64| if x >= y { x - y } else { x + q - y };
        let mut bc = b.chunks_exact(LANES);
        let mut ac = a.chunks_exact_mut(LANES);
        for (av, bv) in (&mut ac).zip(&mut bc) {
            av[0] = sub(av[0], bv[0]);
            av[1] = sub(av[1], bv[1]);
            av[2] = sub(av[2], bv[2]);
            av[3] = sub(av[3], bv[3]);
        }
        for (x, &y) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
            *x = sub(*x, y);
        }
    }

    pub(super) fn mul_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
        let br = Barrett::new(q);
        let mut bc = b.chunks_exact(LANES);
        let mut ac = a.chunks_exact_mut(LANES);
        for (av, bv) in (&mut ac).zip(&mut bc) {
            av[0] = br.mul(av[0], bv[0]);
            av[1] = br.mul(av[1], bv[1]);
            av[2] = br.mul(av[2], bv[2]);
            av[3] = br.mul(av[3], bv[3]);
        }
        for (x, &y) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
            *x = br.mul(*x, y);
        }
    }

    pub(super) fn mac_mod_slice(acc: &mut [u64], a: &[u64], b: &[u64], q: u64) {
        let br = Barrett::new(q);
        let mac = |d: u64, x: u64, y: u64| add_mod(d, br.mul(x, y), q);
        let mut av = a.chunks_exact(LANES);
        let mut bv = b.chunks_exact(LANES);
        let mut dv = acc.chunks_exact_mut(LANES);
        for ((d, x), y) in (&mut dv).zip(&mut av).zip(&mut bv) {
            d[0] = mac(d[0], x[0], y[0]);
            d[1] = mac(d[1], x[1], y[1]);
            d[2] = mac(d[2], x[2], y[2]);
            d[3] = mac(d[3], x[3], y[3]);
        }
        for ((d, &x), &y) in dv
            .into_remainder()
            .iter_mut()
            .zip(av.remainder())
            .zip(bv.remainder())
        {
            *d = mac(*d, x, y);
        }
    }

    pub(super) fn scale_shoup_slice(a: &mut [u64], s: u64, s_shoup: u64, q: u64) {
        let mul = |x: u64| csub(mul_shoup_lazy(x, s, s_shoup, q), q);
        let mut ac = a.chunks_exact_mut(LANES);
        for av in &mut ac {
            av[0] = mul(av[0]);
            av[1] = mul(av[1]);
            av[2] = mul(av[2]);
            av[3] = mul(av[3]);
        }
        for x in ac.into_remainder() {
            *x = mul(*x);
        }
    }

    pub(super) fn twist_lazy_slice(a: &mut [u64], w: &[u64], ws: &[u64], q: u64) {
        let mut wc = w.chunks_exact(LANES);
        let mut sc = ws.chunks_exact(LANES);
        let mut ac = a.chunks_exact_mut(LANES);
        for ((av, wv), sv) in (&mut ac).zip(&mut wc).zip(&mut sc) {
            av[0] = mul_shoup_lazy(av[0], wv[0], sv[0], q);
            av[1] = mul_shoup_lazy(av[1], wv[1], sv[1], q);
            av[2] = mul_shoup_lazy(av[2], wv[2], sv[2], q);
            av[3] = mul_shoup_lazy(av[3], wv[3], sv[3], q);
        }
        for ((x, &wv), &sv) in ac
            .into_remainder()
            .iter_mut()
            .zip(wc.remainder())
            .zip(sc.remainder())
        {
            *x = mul_shoup_lazy(*x, wv, sv, q);
        }
    }

    pub(super) fn twist_reduce_slice(a: &mut [u64], w: &[u64], ws: &[u64], q: u64) {
        let twist = |x: u64, wv: u64, sv: u64| csub(mul_shoup_lazy(x, wv, sv, q), q);
        let mut wc = w.chunks_exact(LANES);
        let mut sc = ws.chunks_exact(LANES);
        let mut ac = a.chunks_exact_mut(LANES);
        for ((av, wv), sv) in (&mut ac).zip(&mut wc).zip(&mut sc) {
            av[0] = twist(av[0], wv[0], sv[0]);
            av[1] = twist(av[1], wv[1], sv[1]);
            av[2] = twist(av[2], wv[2], sv[2]);
            av[3] = twist(av[3], wv[3], sv[3]);
        }
        for ((x, &wv), &sv) in ac
            .into_remainder()
            .iter_mut()
            .zip(wc.remainder())
            .zip(sc.remainder())
        {
            *x = twist(*x, wv, sv);
        }
    }

    /// Scalar Harvey butterfly shared by both stage kernels; returns
    /// the `(lo, hi)` pair.
    #[inline(always)]
    fn butterfly(x: u64, y: u64, w: u64, ws: u64, q: u64) -> (u64, u64) {
        let two_q = 2 * q;
        let u = csub(x, two_q);
        let t = mul_shoup_lazy(y, w, ws, q);
        (u + t, u + two_q - t)
    }

    pub(super) fn harvey_stage(
        lo: &mut [u64],
        hi: &mut [u64],
        tw: &[u64],
        tws: &[u64],
        q: u64,
        reduce: bool,
    ) {
        for (((x, y), &w), &ws) in lo.iter_mut().zip(hi.iter_mut()).zip(tw).zip(tws) {
            let (a, b) = butterfly(*x, *y, w, ws, q);
            if reduce {
                *x = reduce_4q(a, q);
                *y = reduce_4q(b, q);
            } else {
                *x = a;
                *y = b;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn harvey_fused_pair(
        x0: &mut [u64],
        x1: &mut [u64],
        x2: &mut [u64],
        x3: &mut [u64],
        tw: &FusedTwiddles<'_>,
        q: u64,
        reduce: bool,
    ) {
        for j in 0..x0.len() {
            let (a0, a1) = butterfly(x0[j], x1[j], tw.a[j], tw.a_shoup[j], q);
            let (a2, a3) = butterfly(x2[j], x3[j], tw.a[j], tw.a_shoup[j], q);
            let (y0, y2) = butterfly(a0, a2, tw.b_lo[j], tw.b_lo_shoup[j], q);
            let (y1, y3) = butterfly(a1, a3, tw.b_hi[j], tw.b_hi_shoup[j], q);
            if reduce {
                x0[j] = reduce_4q(y0, q);
                x1[j] = reduce_4q(y1, q);
                x2[j] = reduce_4q(y2, q);
                x3[j] = reduce_4q(y3, q);
            } else {
                x0[j] = y0;
                x1[j] = y1;
                x2[j] = y2;
                x3[j] = y3;
            }
        }
    }
}

/// The AVX2 backend. Every function carries
/// `#[target_feature(enable = "avx2")]` and is only reachable through
/// the dispatchers above after [`avx2_available`] returned true.
///
/// Layout of every kernel: process `len / 4 * 4` elements in 256-bit
/// groups, then delegate the tail to the scalar arithmetic of the
/// portable backend so tails are handled identically on both paths.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{portable, pow2_64_mod, shoup_precompute, FusedTwiddles, LANES};
    use core::arch::x86_64::*;

    /// Sign-bit bias for synthesizing unsigned 64-bit compares out of
    /// the signed `vpcmpgtq`.
    const SIGN: i64 = i64::MIN;

    /// Broadcasts `v` to all four lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn splat(v: u64) -> __m256i {
        _mm256_set1_epi64x(v as i64)
    }

    /// Unsigned per-lane `a < b` mask (all-ones lanes where true).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cmp_lt(a: __m256i, b: __m256i) -> __m256i {
        let bias = _mm256_set1_epi64x(SIGN);
        _mm256_cmpgt_epi64(_mm256_xor_si256(b, bias), _mm256_xor_si256(a, bias))
    }

    /// Conditional subtract: per lane, `v - m` if `v ≥ m` else `v`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn csub(v: __m256i, m: __m256i) -> __m256i {
        // andnot(lt, m) keeps `m` exactly in the lanes where v ≥ m.
        _mm256_sub_epi64(v, _mm256_andnot_si256(cmp_lt(v, m), m))
    }

    /// Brings lazy `< 4q` lanes back to `[0, q)`: two conditional
    /// subtractions, matching `modops::reduce_4q` per lane.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce_4q_vec(v: __m256i, q: __m256i, two_q: __m256i) -> __m256i {
        csub(csub(v, two_q), q)
    }

    /// Low 64 bits of the per-lane product `a·b`, from three
    /// `vpmuludq` 32×32 partials (the `ahi·bhi` term shifts out).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_lo(a: __m256i, b: __m256i) -> __m256i {
        let a_hi = _mm256_srli_epi64(a, 32);
        let b_hi = _mm256_srli_epi64(b, 32);
        let ll = _mm256_mul_epu32(a, b);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
        _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32))
    }

    /// High 64 bits of the per-lane product `a·b`: all four 32×32
    /// partials with explicit carry propagation through the middle
    /// column.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_hi(a: __m256i, b: __m256i) -> __m256i {
        let lo32 = _mm256_set1_epi64x(0xFFFF_FFFF);
        let a_hi = _mm256_srli_epi64(a, 32);
        let b_hi = _mm256_srli_epi64(b, 32);
        let ll = _mm256_mul_epu32(a, b);
        let lh = _mm256_mul_epu32(a, b_hi);
        let hl = _mm256_mul_epu32(a_hi, b);
        let hh = _mm256_mul_epu32(a_hi, b_hi);
        // Middle column: (ll >> 32) + lo32(lh) + lo32(hl) ≤ 3·(2³²−1),
        // no 64-bit overflow; its high word is the carry into `hh`.
        let mid = _mm256_add_epi64(
            _mm256_srli_epi64(ll, 32),
            _mm256_add_epi64(_mm256_and_si256(lh, lo32), _mm256_and_si256(hl, lo32)),
        );
        _mm256_add_epi64(
            _mm256_add_epi64(hh, _mm256_srli_epi64(mid, 32)),
            _mm256_add_epi64(_mm256_srli_epi64(lh, 32), _mm256_srli_epi64(hl, 32)),
        )
    }

    /// Per-lane `mul_shoup_lazy(a, w, w_shoup, q)`: identical wrapping
    /// formula, so lazy representatives match the scalar path word for
    /// word.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn shoup_lazy(a: __m256i, w: __m256i, ws: __m256i, q: __m256i) -> __m256i {
        let hi = mul_hi(a, ws);
        _mm256_sub_epi64(mul_lo(a, w), mul_lo(hi, q))
    }

    /// Unaligned 4-lane load from `s[i..i + 4]`.
    ///
    /// SAFETY (callers): `i + 4 <= s.len()`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load(s: &[u64], i: usize) -> __m256i {
        debug_assert!(i + LANES <= s.len());
        // SAFETY: in-bounds per the function contract; loadu has no
        // alignment requirement.
        unsafe { _mm256_loadu_si256(s.as_ptr().add(i).cast()) }
    }

    /// Unaligned 4-lane store to `s[i..i + 4]`.
    ///
    /// SAFETY (callers): `i + 4 <= s.len()`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store(s: &mut [u64], i: usize, v: __m256i) {
        debug_assert!(i + LANES <= s.len());
        // SAFETY: in-bounds per the function contract; storeu has no
        // alignment requirement.
        unsafe { _mm256_storeu_si256(s.as_mut_ptr().add(i).cast(), v) }
    }

    /// Number of elements covered by full 4-lane groups.
    #[inline]
    fn full(n: usize) -> usize {
        n / LANES * LANES
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
        let qv = splat(q);
        let n4 = full(a.len());
        for i in (0..n4).step_by(LANES) {
            let s = _mm256_add_epi64(load(a, i), load(b, i));
            store(a, i, csub(s, qv));
        }
        portable::add_mod_slice(&mut a[n4..], &b[n4..], q);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sub_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
        let qv = splat(q);
        let n4 = full(a.len());
        for i in (0..n4).step_by(LANES) {
            let x = load(a, i);
            let y = load(b, i);
            // x - y, plus q exactly in the lanes where x < y.
            let add_q = _mm256_and_si256(cmp_lt(x, y), qv);
            store(a, i, _mm256_add_epi64(_mm256_sub_epi64(x, y), add_q));
        }
        portable::sub_mod_slice(&mut a[n4..], &b[n4..], q);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
        // Fold the 128-bit product p = hi·2⁶⁴ + lo as two lazy Shoup
        // multiplies: hi·(2⁶⁴ mod q) and lo·1, each < 2q, summing to
        // < 4q (q < 2⁶² per the Barrett contract), then reduce. The
        // result is the canonical residue — identical to the portable
        // backend's Barrett output.
        let r64 = pow2_64_mod(q);
        let r64v = splat(r64);
        let r64s = splat(shoup_precompute(r64, q));
        let onev = splat(1);
        let ones = splat(shoup_precompute(1, q));
        let qv = splat(q);
        let two_qv = splat(2 * q);
        let n4 = full(a.len());
        for i in (0..n4).step_by(LANES) {
            let x = load(a, i);
            let y = load(b, i);
            let p_lo = mul_lo(x, y);
            let p_hi = mul_hi(x, y);
            let t_hi = shoup_lazy(p_hi, r64v, r64s, qv);
            let t_lo = shoup_lazy(p_lo, onev, ones, qv);
            store(
                a,
                i,
                reduce_4q_vec(_mm256_add_epi64(t_hi, t_lo), qv, two_qv),
            );
        }
        portable::mul_mod_slice(&mut a[n4..], &b[n4..], q);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mac_mod_slice(acc: &mut [u64], a: &[u64], b: &[u64], q: u64) {
        let r64 = pow2_64_mod(q);
        let r64v = splat(r64);
        let r64s = splat(shoup_precompute(r64, q));
        let onev = splat(1);
        let ones = splat(shoup_precompute(1, q));
        let qv = splat(q);
        let two_qv = splat(2 * q);
        let n4 = full(acc.len());
        for i in (0..n4).step_by(LANES) {
            let x = load(a, i);
            let y = load(b, i);
            let p_lo = mul_lo(x, y);
            let p_hi = mul_hi(x, y);
            let t_hi = shoup_lazy(p_hi, r64v, r64s, qv);
            let t_lo = shoup_lazy(p_lo, onev, ones, qv);
            let prod = reduce_4q_vec(_mm256_add_epi64(t_hi, t_lo), qv, two_qv);
            let s = _mm256_add_epi64(load(acc, i), prod);
            store(acc, i, csub(s, qv));
        }
        portable::mac_mod_slice(&mut acc[n4..], &a[n4..], &b[n4..], q);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_shoup_slice(a: &mut [u64], s: u64, s_shoup: u64, q: u64) {
        let wv = splat(s);
        let wsv = splat(s_shoup);
        let qv = splat(q);
        let n4 = full(a.len());
        for i in (0..n4).step_by(LANES) {
            let r = shoup_lazy(load(a, i), wv, wsv, qv);
            store(a, i, csub(r, qv));
        }
        portable::scale_shoup_slice(&mut a[n4..], s, s_shoup, q);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn twist_lazy_slice(a: &mut [u64], w: &[u64], ws: &[u64], q: u64) {
        let qv = splat(q);
        let n4 = full(a.len());
        for i in (0..n4).step_by(LANES) {
            store(a, i, shoup_lazy(load(a, i), load(w, i), load(ws, i), qv));
        }
        portable::twist_lazy_slice(&mut a[n4..], &w[n4..], &ws[n4..], q);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn twist_reduce_slice(a: &mut [u64], w: &[u64], ws: &[u64], q: u64) {
        let qv = splat(q);
        let n4 = full(a.len());
        for i in (0..n4).step_by(LANES) {
            let r = shoup_lazy(load(a, i), load(w, i), load(ws, i), qv);
            store(a, i, csub(r, qv));
        }
        portable::twist_reduce_slice(&mut a[n4..], &w[n4..], &ws[n4..], q);
    }

    /// Vector Harvey butterfly: returns `(u + t, u + 2q − t)` with the
    /// u leg corrected to `< 2q`, exactly like the scalar butterfly.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn butterfly(
        x: __m256i,
        y: __m256i,
        w: __m256i,
        ws: __m256i,
        q: __m256i,
        two_q: __m256i,
    ) -> (__m256i, __m256i) {
        let u = csub(x, two_q);
        let t = shoup_lazy(y, w, ws, q);
        (
            _mm256_add_epi64(u, t),
            _mm256_sub_epi64(_mm256_add_epi64(u, two_q), t),
        )
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn harvey_stage(
        lo: &mut [u64],
        hi: &mut [u64],
        tw: &[u64],
        tws: &[u64],
        q: u64,
        reduce: bool,
    ) {
        let qv = splat(q);
        let two_qv = splat(2 * q);
        let n4 = full(lo.len());
        for i in (0..n4).step_by(LANES) {
            let (mut a, mut b) = butterfly(
                load(lo, i),
                load(hi, i),
                load(tw, i),
                load(tws, i),
                qv,
                two_qv,
            );
            if reduce {
                a = reduce_4q_vec(a, qv, two_qv);
                b = reduce_4q_vec(b, qv, two_qv);
            }
            store(lo, i, a);
            store(hi, i, b);
        }
        portable::harvey_stage(
            &mut lo[n4..],
            &mut hi[n4..],
            &tw[n4..],
            &tws[n4..],
            q,
            reduce,
        );
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn harvey_fused_pair(
        x0: &mut [u64],
        x1: &mut [u64],
        x2: &mut [u64],
        x3: &mut [u64],
        tw: &FusedTwiddles<'_>,
        q: u64,
        reduce: bool,
    ) {
        let qv = splat(q);
        let two_qv = splat(2 * q);
        let n4 = full(x0.len());
        for i in (0..n4).step_by(LANES) {
            let wa = load(tw.a, i);
            let was = load(tw.a_shoup, i);
            let (a0, a1) = butterfly(load(x0, i), load(x1, i), wa, was, qv, two_qv);
            let (a2, a3) = butterfly(load(x2, i), load(x3, i), wa, was, qv, two_qv);
            let (mut y0, mut y2) =
                butterfly(a0, a2, load(tw.b_lo, i), load(tw.b_lo_shoup, i), qv, two_qv);
            let (mut y1, mut y3) =
                butterfly(a1, a3, load(tw.b_hi, i), load(tw.b_hi_shoup, i), qv, two_qv);
            if reduce {
                y0 = reduce_4q_vec(y0, qv, two_qv);
                y1 = reduce_4q_vec(y1, qv, two_qv);
                y2 = reduce_4q_vec(y2, qv, two_qv);
                y3 = reduce_4q_vec(y3, qv, two_qv);
            }
            store(x0, i, y0);
            store(x1, i, y1);
            store(x2, i, y2);
            store(x3, i, y3);
        }
        let rest = FusedTwiddles {
            a: &tw.a[n4..],
            a_shoup: &tw.a_shoup[n4..],
            b_lo: &tw.b_lo[n4..],
            b_lo_shoup: &tw.b_lo_shoup[n4..],
            b_hi: &tw.b_hi[n4..],
            b_hi_shoup: &tw.b_hi_shoup[n4..],
        };
        portable::harvey_fused_pair(
            &mut x0[n4..],
            &mut x1[n4..],
            &mut x2[n4..],
            &mut x3[n4..],
            &rest,
            q,
            reduce,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modops::{mul_mod, mul_shoup, sub_mod};
    use crate::prime::generate_ntt_prime;

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed
    }

    fn vecs(len: usize, q: u64, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut s = seed | 1;
        let a = (0..len).map(|_| lcg(&mut s) % q).collect();
        let b = (0..len).map(|_| lcg(&mut s) % q).collect();
        (a, b)
    }

    /// Every slice kernel at lengths that exercise empty, tail-only,
    /// exact-multiple and mixed group/tail splits, against the scalar
    /// oracles.
    #[test]
    fn slice_kernels_match_scalar_oracles() {
        let q = generate_ntt_prime(64, 59).unwrap();
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 31, 64, 67] {
            let (a, b) = vecs(len, q, 0x5eed ^ len as u64);

            let mut add = a.clone();
            add_mod_slice(&mut add, &b, q);
            let mut sub = a.clone();
            sub_mod_slice(&mut sub, &b, q);
            let mut mul = a.clone();
            mul_mod_slice(&mut mul, &b, q);
            let mut mac = b.clone();
            mac_mod_slice(&mut mac, &a, &b, q);
            for j in 0..len {
                assert_eq!(add[j], add_mod(a[j], b[j], q), "add len={len} j={j}");
                assert_eq!(sub[j], sub_mod(a[j], b[j], q), "sub len={len} j={j}");
                assert_eq!(mul[j], mul_mod(a[j], b[j], q), "mul len={len} j={j}");
                assert_eq!(
                    mac[j],
                    add_mod(b[j], mul_mod(a[j], b[j], q), q),
                    "mac len={len} j={j}"
                );
            }

            let s = a.first().copied().unwrap_or(3) % q;
            let ss = shoup_precompute(s, q);
            let mut scaled = a.clone();
            scale_shoup_slice(&mut scaled, s, ss, q);
            for j in 0..len {
                assert_eq!(
                    scaled[j],
                    mul_shoup(a[j], s, ss, q),
                    "scale len={len} j={j}"
                );
            }

            let ws: Vec<u64> = b.iter().map(|&w| shoup_precompute(w, q)).collect();
            let mut lazy = a.clone();
            twist_lazy_slice(&mut lazy, &b, &ws, q);
            let mut red = a.clone();
            twist_reduce_slice(&mut red, &b, &ws, q);
            for j in 0..len {
                assert_eq!(
                    lazy[j],
                    mul_shoup_lazy(a[j], b[j], ws[j], q),
                    "twist_lazy len={len} j={j}"
                );
                assert!(lazy[j] < 2 * q, "lazy bound len={len} j={j}");
                assert_eq!(red[j], mul_shoup(a[j], b[j], ws[j], q), "twist_reduce");
            }
        }
    }

    /// The butterfly kernels, including denormal lazy inputs in
    /// `[q, 2q)` and `[0, 4q)`, against the scalar formula — exact
    /// word equality on the lazy representatives, not just congruence.
    #[test]
    fn butterfly_kernels_match_scalar_formula_on_lazy_inputs() {
        let q = generate_ntt_prime(64, 59).unwrap();
        let scalar_butterfly = |x: u64, y: u64, w: u64, ws: u64| {
            let two_q = 2 * q;
            let u = if x >= two_q { x - two_q } else { x };
            let t = mul_shoup_lazy(y, w, ws, q);
            (u + t, u + two_q - t)
        };
        for len in [1usize, 3, 4, 5, 8, 13, 64] {
            let mut s = 0xb1ff ^ len as u64;
            // Lazy operands anywhere below 4q; twiddles reduced.
            let lo0: Vec<u64> = (0..len).map(|_| lcg(&mut s) % (4 * q)).collect();
            let hi0: Vec<u64> = (0..len).map(|_| lcg(&mut s) % (4 * q)).collect();
            let w: Vec<u64> = (0..len).map(|_| lcg(&mut s) % q).collect();
            let ws: Vec<u64> = w.iter().map(|&x| shoup_precompute(x, q)).collect();
            for reduce in [false, true] {
                let mut lo = lo0.clone();
                let mut hi = hi0.clone();
                harvey_stage(&mut lo, &mut hi, &w, &ws, q, reduce);
                for j in 0..len {
                    let (a, b) = scalar_butterfly(lo0[j], hi0[j], w[j], ws[j]);
                    let (a, b) = if reduce {
                        (reduce_4q(a, q), reduce_4q(b, q))
                    } else {
                        (a, b)
                    };
                    assert_eq!(lo[j], a, "stage lo len={len} j={j} reduce={reduce}");
                    assert_eq!(hi[j], b, "stage hi len={len} j={j} reduce={reduce}");
                }
            }
            // Fused pair vs two explicit stages on denormal [q, 2q)
            // inputs (the < 2q entry bound of the blocked walk).
            let mk = |s: &mut u64| -> Vec<u64> { (0..len).map(|_| q + lcg(s) % q).collect() };
            let (x0, x1, x2, x3) = (mk(&mut s), mk(&mut s), mk(&mut s), mk(&mut s));
            let wb: Vec<u64> = (0..2 * len).map(|_| lcg(&mut s) % q).collect();
            let wbs: Vec<u64> = wb.iter().map(|&x| shoup_precompute(x, q)).collect();
            let tw = FusedTwiddles {
                a: &w,
                a_shoup: &ws,
                b_lo: &wb[..len],
                b_lo_shoup: &wbs[..len],
                b_hi: &wb[len..],
                b_hi_shoup: &wbs[len..],
            };
            for reduce in [false, true] {
                let (mut f0, mut f1, mut f2, mut f3) =
                    (x0.clone(), x1.clone(), x2.clone(), x3.clone());
                harvey_fused_pair(&mut f0, &mut f1, &mut f2, &mut f3, &tw, q, reduce);
                let (mut g0, mut g1, mut g2, mut g3) =
                    (x0.clone(), x1.clone(), x2.clone(), x3.clone());
                harvey_stage(&mut g0, &mut g1, &w, &ws, q, false);
                harvey_stage(&mut g2, &mut g3, &w, &ws, q, false);
                harvey_stage(&mut g0, &mut g2, &wb[..len], &wbs[..len], q, reduce);
                harvey_stage(&mut g1, &mut g3, &wb[len..], &wbs[len..], q, reduce);
                assert_eq!(f0, g0, "fused len={len} reduce={reduce}");
                assert_eq!(f1, g1, "fused len={len} reduce={reduce}");
                assert_eq!(f2, g2, "fused len={len} reduce={reduce}");
                assert_eq!(f3, g3, "fused len={len} reduce={reduce}");
            }
        }
    }

    /// On AVX2 hosts, the vector backend must agree word-for-word with
    /// the always-compiled portable backend (on other hosts this
    /// degenerates to portable-vs-portable and trivially passes, which
    /// is exactly the fallback contract).
    #[test]
    fn backends_agree_across_moduli() {
        for bits in [30u32, 45, 59] {
            let q = generate_ntt_prime(128, bits).unwrap();
            let (a, b) = vecs(133, q, u64::from(bits));
            let mut x = a.clone();
            mul_mod_slice(&mut x, &b, q);
            let mut y = a.clone();
            portable::mul_mod_slice(&mut y, &b, q);
            assert_eq!(x, y, "mul_mod backends diverge at {bits} bits");
            let mut x = b.clone();
            mac_mod_slice(&mut x, &a, &b, q);
            let mut y = b.clone();
            portable::mac_mod_slice(&mut y, &a, &b, q);
            assert_eq!(x, y, "mac backends diverge at {bits} bits");
        }
    }
}
