//! The flat RNS data plane: one contiguous limb-major buffer shared by
//! every scheme.
//!
//! The paper's unification argument (CKKS and TFHE decompose onto the
//! same butterfly / modular-ALU / decomposition units) applies to the
//! software model too: instead of each crate pushing its own
//! `Vec<Poly>`-of-`Vec<u64>`, an [`RnsPlane`] stores all residue limbs
//! of a polynomial in a single `Vec<u64>` with stride `n` (limb `i`
//! occupies `data[i*n .. (i+1)*n]`), plus per-limb moduli and a
//! [`Form`] tag. All operations are in place and fan out across limbs
//! via [`crate::par::par_limbs`]; the element-wise kernels
//! (add/sub/hadamard/mac/scale) go through [`crate::simd`]'s per-op
//! dispatch, which routes each op to the fastest backend for this
//! host and each limb's modulus — AVX-512 IFMA 52-bit Barrett below
//! 2⁵⁰, AVX2 limb-split below 2⁶¹, or the bit-identical portable
//! unroll when the scalar pipeline measures faster (the dispatch
//! floor guarantees SIMD never loses to scalar). Limb-level fan-out
//! composes with the op-level work-stealing of
//! [`crate::par::par_ops`], which parallelizes *across* independent
//! plane operations in a trace.

use crate::automorph::{apply_coeff_slice, apply_eval_slice};
use crate::modops::{from_signed, inv_mod, mul_shoup, neg_mod, shoup_precompute, sub_mod, Barrett};
use crate::ntt::{NttContext, NttKernel};
use crate::par::par_limbs;
use crate::poly::{Form, Poly};
use crate::simd;

/// A polynomial in RNS representation, stored limb-major in one flat
/// buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsPlane {
    /// Limb-major residues: limb `i` is `data[i*n .. (i+1)*n]`.
    data: Vec<u64>,
    /// The modulus of each limb, aligned with the limb order.
    moduli: Vec<u64>,
    /// Ring dimension (the stride between limbs).
    n: usize,
    /// Which basis the residues are expressed in.
    form: Form,
}

impl RnsPlane {
    /// The zero plane of dimension `n` over `moduli`.
    ///
    /// # Panics
    ///
    /// Panics if `moduli` is empty or `n == 0`.
    pub fn zero(n: usize, moduli: &[u64], form: Form) -> Self {
        assert!(n > 0, "ring dimension must be positive");
        assert!(!moduli.is_empty(), "need at least one limb");
        Self {
            data: vec![0; n * moduli.len()],
            moduli: moduli.to_vec(),
            n,
            form,
        }
    }

    /// Wraps a flat limb-major buffer whose residues are **already
    /// reduced** against their limb moduli (checked in debug builds
    /// only — the unchecked ingestion path).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not `n · moduli.len()` for some
    /// `n > 0`, and debug-panics on unreduced residues.
    pub fn from_flat_unchecked(data: Vec<u64>, moduli: &[u64], form: Form) -> Self {
        assert!(!moduli.is_empty(), "need at least one limb");
        assert_eq!(data.len() % moduli.len(), 0, "buffer must be whole limbs");
        let n = data.len() / moduli.len();
        assert!(n > 0, "ring dimension must be positive");
        debug_assert!(
            data.chunks(n)
                .zip(moduli)
                .all(|(chunk, &q)| chunk.iter().all(|&c| c < q)),
            "from_flat_unchecked requires reduced residues"
        );
        Self {
            data,
            moduli: moduli.to_vec(),
            n,
            form,
        }
    }

    /// Wraps a flat limb-major buffer, reducing every residue against
    /// its limb modulus.
    pub fn from_flat(mut data: Vec<u64>, moduli: &[u64], form: Form) -> Self {
        assert!(!moduli.is_empty(), "need at least one limb");
        assert_eq!(data.len() % moduli.len(), 0, "buffer must be whole limbs");
        let n = data.len() / moduli.len();
        for (chunk, &q) in data.chunks_mut(n).zip(moduli) {
            for c in chunk {
                *c %= q;
            }
        }
        Self::from_flat_unchecked(data, moduli, form)
    }

    /// Builds a coefficient-form plane from signed (centered)
    /// coefficients, reduced against every limb modulus.
    pub fn from_signed(signed: &[i64], moduli: &[u64]) -> Self {
        assert!(!moduli.is_empty(), "need at least one limb");
        let n = signed.len();
        let mut data = Vec::with_capacity(n * moduli.len());
        for &q in moduli {
            data.extend(signed.iter().map(|&v| from_signed(v, q)));
        }
        Self::from_flat_unchecked(data, moduli, Form::Coeff)
    }

    /// Builds a plane by flattening per-limb polynomials.
    ///
    /// # Panics
    ///
    /// Panics if `polys` is empty or dimensions mismatch.
    pub fn from_polys(polys: &[Poly], form: Form) -> Self {
        assert!(!polys.is_empty(), "need at least one limb");
        let n = polys[0].dim();
        let mut data = Vec::with_capacity(n * polys.len());
        let mut moduli = Vec::with_capacity(polys.len());
        for p in polys {
            assert_eq!(p.dim(), n, "limb dimension mismatch");
            data.extend_from_slice(p.coeffs());
            moduli.push(p.modulus());
        }
        Self::from_flat_unchecked(data, &moduli, form)
    }

    /// Ring dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of RNS limbs.
    #[inline]
    pub fn limb_count(&self) -> usize {
        self.moduli.len()
    }

    /// The limb moduli, in limb order.
    #[inline]
    pub fn moduli(&self) -> &[u64] {
        &self.moduli
    }

    /// Modulus of limb `i`.
    #[inline]
    pub fn modulus(&self, i: usize) -> u64 {
        self.moduli[i]
    }

    /// Current basis.
    #[inline]
    pub fn form(&self) -> Form {
        self.form
    }

    /// Read-only view of limb `i`.
    #[inline]
    pub fn limb(&self, i: usize) -> &[u64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Mutable view of limb `i`.
    #[inline]
    pub fn limb_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// The whole flat buffer.
    #[inline]
    pub fn flat(&self) -> &[u64] {
        &self.data
    }

    /// Copies limb `i` out as a standalone [`Poly`].
    pub fn limb_poly(&self, i: usize) -> Poly {
        Poly::from_coeffs_unchecked(self.limb(i).to_vec(), self.moduli[i])
    }

    /// An explicit copy of the first `count` limbs (the zero-copy
    /// plane has no implicit `clone()` on hot paths; prefix copies are
    /// spelled out).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds the limb count.
    pub fn prefix(&self, count: usize) -> Self {
        assert!(count > 0 && count <= self.limb_count());
        Self {
            data: self.data[..count * self.n].to_vec(),
            moduli: self.moduli[..count].to_vec(),
            n: self.n,
            form: self.form,
        }
    }

    /// Drops all limbs past the first `count`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds the limb count.
    pub fn truncate_limbs(&mut self, count: usize) {
        assert!(count > 0 && count <= self.limb_count());
        self.data.truncate(count * self.n);
        self.moduli.truncate(count);
    }

    fn check(&self, rhs: &Self) {
        assert_eq!(self.n, rhs.n, "plane dimension mismatch");
        assert_eq!(self.moduli, rhs.moduli, "plane moduli mismatch");
        assert_eq!(self.form, rhs.form, "plane form mismatch");
    }

    /// In-place sum: `self ← self + rhs` (forms must match).
    pub fn add_assign(&mut self, rhs: &Self) {
        self.check(rhs);
        let (n, moduli) = (self.n, &self.moduli);
        par_limbs(n, &mut self.data, |i, chunk| {
            simd::add_mod_slice(chunk, rhs.limb(i), moduli[i]);
        });
    }

    /// In-place difference: `self ← self - rhs`.
    pub fn sub_assign(&mut self, rhs: &Self) {
        self.check(rhs);
        let (n, moduli) = (self.n, &self.moduli);
        par_limbs(n, &mut self.data, |i, chunk| {
            simd::sub_mod_slice(chunk, rhs.limb(i), moduli[i]);
        });
    }

    /// In-place negation.
    pub fn neg_assign(&mut self) {
        let (n, moduli) = (self.n, &self.moduli);
        par_limbs(n, &mut self.data, |i, chunk| {
            let q = moduli[i];
            for a in chunk.iter_mut() {
                *a = neg_mod(*a, q);
            }
        });
    }

    /// In-place Hadamard product: `self ← self ∘ rhs`.
    ///
    /// # Panics
    ///
    /// Panics unless both planes are in evaluation form.
    pub fn hadamard_assign(&mut self, rhs: &Self) {
        self.check(rhs);
        assert_eq!(
            self.form,
            Form::Eval,
            "hadamard requires evaluation form operands"
        );
        let (n, moduli) = (self.n, &self.moduli);
        par_limbs(n, &mut self.data, |i, chunk| {
            simd::mul_mod_slice(chunk, rhs.limb(i), moduli[i]);
        });
    }

    /// Multiply-accumulate: `self ← self + a ∘ b`. All three planes
    /// must be in evaluation form over the same moduli.
    pub fn mac_assign(&mut self, a: &Self, b: &Self) {
        self.check(a);
        self.check(b);
        assert_eq!(self.form, Form::Eval, "mac requires evaluation form");
        let (n, moduli) = (self.n, &self.moduli);
        par_limbs(n, &mut self.data, |i, chunk| {
            simd::mac_mod_slice(chunk, a.limb(i), b.limb(i), moduli[i]);
        });
    }

    /// In-place per-limb scalar multiply (Shoup): limb `i` is scaled
    /// by `scalars[i] mod q_i`.
    ///
    /// # Panics
    ///
    /// Panics if `scalars.len()` differs from the limb count.
    pub fn scale_limbs_assign(&mut self, scalars: &[u64]) {
        assert_eq!(scalars.len(), self.limb_count(), "one scalar per limb");
        let (n, moduli) = (self.n, &self.moduli);
        par_limbs(n, &mut self.data, |i, chunk| {
            let q = moduli[i];
            let s = scalars[i] % q;
            let s_shoup = shoup_precompute(s, q);
            simd::scale_shoup_slice(chunk, s, s_shoup, q);
        });
    }

    /// In-place Galois automorphism `X ↦ X^k`, dispatching on the
    /// current form (coefficient scatter or evaluation permutation).
    pub fn automorph_assign(&mut self, k: usize) {
        let (n, moduli, form) = (self.n, &self.moduli, self.form);
        par_limbs(n, &mut self.data, |i, chunk| {
            let src = chunk.to_vec();
            match form {
                Form::Coeff => apply_coeff_slice(&src, chunk, k, moduli[i]),
                Form::Eval => apply_eval_slice(&src, chunk, k),
            }
        });
    }

    /// In-place forward NTT of every limb: coefficient → evaluation
    /// form. `tables[i]` must be the NTT context for limb `i`.
    ///
    /// # Panics
    ///
    /// Panics if the plane is already in evaluation form or a table's
    /// modulus/dimension disagrees with its limb.
    pub fn ntt_forward(&mut self, tables: &[&NttContext]) {
        assert_eq!(self.form, Form::Coeff, "plane already in evaluation form");
        self.apply_tables(tables, false, None);
        self.form = Form::Eval;
    }

    /// In-place inverse NTT of every limb: evaluation → coefficient
    /// form.
    ///
    /// # Panics
    ///
    /// Panics if the plane is already in coefficient form.
    pub fn ntt_inverse(&mut self, tables: &[&NttContext]) {
        assert_eq!(self.form, Form::Eval, "plane already in coefficient form");
        self.apply_tables(tables, true, None);
        self.form = Form::Coeff;
    }

    /// [`Self::ntt_forward`] through an explicitly chosen kernel on
    /// every limb, bypassing each table's own dispatch — the plane
    /// entry point of the cross-kernel conformance suite.
    pub fn ntt_forward_with(&mut self, tables: &[&NttContext], kernel: NttKernel) {
        assert_eq!(self.form, Form::Coeff, "plane already in evaluation form");
        self.apply_tables(tables, false, Some(kernel));
        self.form = Form::Eval;
    }

    /// [`Self::ntt_inverse`] through an explicitly chosen kernel on
    /// every limb.
    pub fn ntt_inverse_with(&mut self, tables: &[&NttContext], kernel: NttKernel) {
        assert_eq!(self.form, Form::Eval, "plane already in coefficient form");
        self.apply_tables(tables, true, Some(kernel));
        self.form = Form::Coeff;
    }

    fn apply_tables(&mut self, tables: &[&NttContext], inverse: bool, kernel: Option<NttKernel>) {
        assert_eq!(tables.len(), self.limb_count(), "one NTT table per limb");
        let (n, moduli) = (self.n, &self.moduli);
        for (t, &q) in tables.iter().zip(moduli) {
            assert_eq!(t.dim(), n, "NTT table dimension mismatch");
            assert_eq!(t.modulus(), q, "NTT table modulus mismatch");
        }
        par_limbs(n, &mut self.data, |i, chunk| {
            let k = kernel.unwrap_or_else(|| tables[i].kernel());
            if inverse {
                tables[i].inverse_with(k, chunk);
            } else {
                tables[i].forward_with(k, chunk);
            }
        });
    }

    /// Exact RNS rescale: drops the last limb `q_L` and replaces each
    /// remaining limb by `(c_i - [c_L]_{q_i}) · q_L^{-1} mod q_i` —
    /// exact division by `q_L` on centered representatives.
    ///
    /// # Panics
    ///
    /// Panics unless the plane is in coefficient form with at least
    /// two limbs.
    pub fn rescale_assign(&mut self) {
        assert_eq!(self.form, Form::Coeff, "rescale requires coefficient form");
        let count = self.limb_count();
        assert!(count >= 2, "rescale needs at least two limbs");
        let n = self.n;
        let q_last = self.moduli[count - 1];
        let moduli = &self.moduli;
        let (head, tail) = self.data.split_at_mut((count - 1) * n);
        let last: &[u64] = tail;
        par_limbs(n, head, |i, chunk| {
            let qi = moduli[i];
            let br = Barrett::new(qi);
            let inv = inv_mod(q_last % qi, qi).expect("coprime moduli");
            let inv_shoup = shoup_precompute(inv, qi);
            for (a, &b) in chunk.iter_mut().zip(last) {
                let b_red = br.reduce_u128(b as u128);
                *a = mul_shoup(sub_mod(*a, b_red, qi), inv, inv_shoup, qi);
            }
        });
        self.truncate_limbs(count - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q1: u64 = 97;
    const Q2: u64 = 193;

    fn sample() -> RnsPlane {
        RnsPlane::from_flat(vec![1, 2, 3, 4, 10, 20, 30, 40], &[Q1, Q2], Form::Coeff)
    }

    #[test]
    fn layout_is_limb_major() {
        let p = sample();
        assert_eq!(p.dim(), 4);
        assert_eq!(p.limb_count(), 2);
        assert_eq!(p.limb(0), &[1, 2, 3, 4]);
        assert_eq!(p.limb(1), &[10, 20, 30, 40]);
        assert_eq!(p.modulus(1), Q2);
    }

    #[test]
    fn from_signed_reduces_per_limb() {
        let p = RnsPlane::from_signed(&[-1, 0, 5], &[Q1, Q2]);
        assert_eq!(p.limb(0), &[Q1 - 1, 0, 5]);
        assert_eq!(p.limb(1), &[Q2 - 1, 0, 5]);
    }

    #[test]
    fn elementwise_ops_match_poly_kernels() {
        let a = sample();
        let b = RnsPlane::from_flat(vec![96, 5, 7, 11, 100, 200, 0, 1], &[Q1, Q2], Form::Coeff);
        let mut s = a.clone();
        s.add_assign(&b);
        for i in 0..2 {
            let expect = a.limb_poly(i).add(&b.limb_poly(i));
            assert_eq!(s.limb(i), expect.coeffs(), "limb {i}");
        }
        let mut d = a.clone();
        d.sub_assign(&b);
        for i in 0..2 {
            let expect = a.limb_poly(i).sub(&b.limb_poly(i));
            assert_eq!(d.limb(i), expect.coeffs(), "limb {i}");
        }
        let mut neg = a.clone();
        neg.neg_assign();
        let mut back = neg;
        back.add_assign(&a);
        assert_eq!(back, RnsPlane::zero(4, &[Q1, Q2], Form::Coeff));
    }

    #[test]
    fn scale_limbs_applies_per_limb_scalars() {
        let a = sample();
        let mut s = a.clone();
        s.scale_limbs_assign(&[2, 3]);
        assert_eq!(s.limb(0), a.limb_poly(0).scale(2).coeffs());
        assert_eq!(s.limb(1), a.limb_poly(1).scale(3).coeffs());
    }

    #[test]
    fn prefix_and_truncate() {
        let a = sample();
        let p = a.prefix(1);
        assert_eq!(p.limb_count(), 1);
        assert_eq!(p.limb(0), a.limb(0));
        let mut t = a.clone();
        t.truncate_limbs(1);
        assert_eq!(t, p);
    }

    #[test]
    #[should_panic(expected = "evaluation form")]
    fn hadamard_rejects_coeff_form() {
        let a = sample();
        let mut b = a.clone();
        b.hadamard_assign(&a);
    }

    #[test]
    fn mac_matches_hadamard_plus_add() {
        let n = 4;
        let moduli = [Q1, Q2];
        let a = RnsPlane::from_flat(vec![3, 5, 7, 9, 11, 13, 17, 19], &moduli, Form::Eval);
        let b = RnsPlane::from_flat(vec![2, 4, 6, 8, 10, 12, 14, 16], &moduli, Form::Eval);
        let mut acc = RnsPlane::zero(n, &moduli, Form::Eval);
        acc.mac_assign(&a, &b);
        let mut expect = a.clone();
        expect.hadamard_assign(&b);
        assert_eq!(acc, expect);
    }
}
