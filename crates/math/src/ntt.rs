//! Classical iterative radix-2 number-theoretic transform over
//! `Z_q[X]/(X^N + 1)`.
//!
//! This is the reference transform: natural-order in, natural-order
//! out, negacyclic via the `2N`-th root `ψ` (pre/post scaling). The
//! constant-geometry variant UFC's interconnect is designed around
//! lives in [`crate::cgntt`] and is validated against this one.
//!
//! # Kernel strategy
//!
//! The hot kernels use Shoup-precomputed twiddles with Harvey lazy
//! reduction: butterfly operands are kept as representatives below
//! `4q` (the twiddle multiply returns a value below `2q` for *any*
//! 64-bit input, see [`crate::modops::mul_shoup_lazy`]), and a single
//! correction pass at the end of the transform brings everything back
//! to `[0, q)`. This removes the 128-bit `%` division the seed
//! butterfly paid per multiply. The seed kernels are retained as
//! `*_reference` methods so equivalence tests and the
//! `cargo xtask bench-math` harness can measure old vs. new on the
//! same tables.
//!
//! # Kernel generations and dispatch
//!
//! Five kernel generations coexist, all bit-identical on reduced
//! inputs (pinned by `crates/math/tests/kernel_conformance.rs`):
//!
//! * [`NttKernel::Reference`] — the seed kernel: fully reduced
//!   butterflies, one 128-bit `%` per multiply.
//! * [`NttKernel::Radix2`] — Shoup/Harvey lazy butterflies with
//!   stage-major twiddles and consecutive stages fused in pairs.
//! * [`NttKernel::Radix4`] — the same radix-4 butterfly groups (two
//!   fused radix-2 layers sharing loads/stores, with a radix-2 tail
//!   stage when the remaining stage count is odd), scheduled
//!   **cache-blocked**: all stages whose butterfly span fits inside an
//!   L1-sized block run back to back on that block while it is
//!   resident, so the coefficient array crosses the cache hierarchy
//!   once for the whole intra-block phase instead of once per stage
//!   pair. Only the few cross-block stages still make full-array
//!   passes. Below [`RADIX4_MIN_DIM`] the blocked schedule degenerates
//!   to the radix-2 walk.
//! * [`NttKernel::Simd`] — the radix-4 cache-blocked schedule with its
//!   butterfly inner loops replaced by the 4-wide lane kernels of
//!   [`crate::simd`] (AVX2 on supporting hosts, a bit-identical
//!   portable 4-lane unroll everywhere else). Same lazy-reduction
//!   invariants, same canonical outputs — the software analogue of
//!   UFC's arrays of hardware butterfly lanes.
//! * [`NttKernel::Ifma`] — the same schedule on the 8-wide AVX-512
//!   IFMA lane kernels (`vpmadd52lo/hi`), with twiddles carried as
//!   radix-2⁵² Shoup companions ([`crate::modops::shoup52_precompute`]).
//!   Restricted to `q < 2^50` so every lazy value stays below the
//!   52-bit product window; SHARP's narrow-word argument (PAPERS.md)
//!   is the same trade. An always-compiled portable mirror evaluates
//!   the identical per-lane formulas, so IFMA legs are bit-identical
//!   whether or not the host has the hardware.
//!
//! Each [`NttContext`] picks a kernel at construction:
//! the `UFC_NTT_KERNEL` environment variable (`auto` / `reference` /
//! `radix2` / `radix4` / `simd` / `ifma`) wins if set and well-formed,
//! otherwise the heuristic [`NttKernel::auto_for`] applies (IFMA when
//! the host has AVX-512 IFMA and the modulus fits, then SIMD whenever
//! the host has AVX2, else radix-4 at `N ≥ 2^13` and radix-2 below).
//! A malformed value no longer panics library consumers:
//! [`NttKernel::select_for`] warns once on stderr and falls back to
//! the heuristic, while CLIs validate the variable at startup via
//! [`NttKernel::from_env`] and fail fast. Forcing `ifma` is strict,
//! not best-effort: a host without AVX-512 IFMA gets
//! [`NttError::IfmaUnavailable`] (unless `UFC_IFMA_PORTABLE=1`
//! explicitly opts into the portable mirror lanes, the CI-runner
//! escape hatch) and a modulus at or above 2⁵⁰ bits gets
//! [`NttError::IfmaPrimeTooWide`] — never a silent fallback. Tests
//! and benches can override per context via
//! [`NttContext::try_set_kernel`] or call a specific kernel directly
//! via [`NttContext::forward_with`].

use crate::modops::{
    add_mod, ifma_modulus_ok, inv_mod, mul_mod, mul_shoup_lazy, pow_mod, shoup52_precompute,
    shoup_precompute, sub_mod, Barrett, IFMA_MAX_MODULUS_BITS,
};
use crate::poly::Poly;
use crate::prime::{is_prime, primitive_root_of_unity};
use crate::simd;

/// Environment variable that overrides NTT kernel selection for every
/// subsequently built [`NttContext`]: `auto`, `reference`, `radix2`,
/// `radix4`, `simd` or `ifma` (case-insensitive).
pub const KERNEL_ENV: &str = "UFC_NTT_KERNEL";

/// Environment variable that lets a forced `UFC_NTT_KERNEL=ifma` run
/// on the portable mirror lanes when the host lacks AVX-512 IFMA
/// (`1`/`true` to opt in). Without it, forcing `ifma` on such a host
/// is a typed [`NttError::IfmaUnavailable`] — the CI kernel matrix
/// sets this variable so GitHub runners exercise the generation's
/// arithmetic bit-identically, while still making accidental
/// hardware-less forcing loud everywhere else.
pub const IFMA_PORTABLE_ENV: &str = "UFC_IFMA_PORTABLE";

/// Elements per cache block of the radix-4 schedule: `2^12` × 8 bytes
/// = 32 KiB, sized to a typical L1 data cache.
pub const RADIX4_BLOCK: usize = 1 << 12;

/// Smallest ring dimension where the cache-blocked radix-4 schedule
/// differs from (and beats) the radix-2 walk; the [`NttKernel::auto_for`]
/// heuristic switches kernels here.
pub const RADIX4_MIN_DIM: usize = 1 << 13;

/// Which butterfly kernel a [`NttContext`] executes.
///
/// All kernels compute the same transform and produce bit-identical
/// reduced outputs; they differ in butterfly arithmetic (lazy vs fully
/// reduced) and memory schedule (cache-blocked vs stage-by-stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NttKernel {
    /// Seed kernel: fully reduced butterflies, 128-bit `%` per
    /// multiply. Kept as the oracle and measured baseline.
    Reference,
    /// Shoup/Harvey lazy radix-2 with fused stage pairs.
    Radix2,
    /// Cache-blocked radix-4 butterfly groups with a radix-2 tail
    /// stage for odd stage counts.
    Radix4,
    /// The radix-4 blocked schedule executed on the 4-wide lane
    /// kernels of [`crate::simd`] (AVX2 when available, bit-identical
    /// portable unroll otherwise).
    Simd,
    /// The same schedule on the 8-wide AVX-512 IFMA lane kernels
    /// (`vpmadd52lo/hi` with radix-2⁵² Shoup twiddles). Requires
    /// `q < 2^50`; runs on a bit-identical portable mirror when the
    /// hardware is absent.
    Ifma,
}

impl NttKernel {
    /// Every kernel, in oracle-to-fastest order — the iteration set of
    /// the conformance suite and the CI kernel matrix.
    pub const ALL: [NttKernel; 5] = [
        NttKernel::Reference,
        NttKernel::Radix2,
        NttKernel::Radix4,
        NttKernel::Simd,
        NttKernel::Ifma,
    ];

    /// The canonical lowercase name (what `UFC_NTT_KERNEL` accepts).
    pub fn name(self) -> &'static str {
        match self {
            NttKernel::Reference => "reference",
            NttKernel::Radix2 => "radix2",
            NttKernel::Radix4 => "radix4",
            NttKernel::Simd => "simd",
            NttKernel::Ifma => "ifma",
        }
    }

    /// Parses a kernel name (case-insensitive). `None` for unknown
    /// names — note `auto` is *not* a kernel; it is handled by
    /// [`NttKernel::select_for`].
    pub fn parse(s: &str) -> Option<NttKernel> {
        match s.to_ascii_lowercase().as_str() {
            "reference" => Some(NttKernel::Reference),
            "radix2" => Some(NttKernel::Radix2),
            "radix4" => Some(NttKernel::Radix4),
            "simd" => Some(NttKernel::Simd),
            "ifma" => Some(NttKernel::Ifma),
            _ => None,
        }
    }

    /// Whether this kernel can run a transform over modulus `q` at
    /// all: every generation except [`NttKernel::Ifma`] accepts the
    /// full `[2, 2^62)` range; IFMA needs `q < 2^50` so lazy values
    /// fit the 52-bit product window. The conformance suites and the
    /// bench kernel table iterate `ALL.filter(supports_modulus)`.
    pub fn supports_modulus(self, q: u64) -> bool {
        self != NttKernel::Ifma || ifma_modulus_ok(q)
    }

    /// The heuristic default: IFMA when the host has AVX-512 IFMA and
    /// the modulus fits its 50-bit ceiling (8 lanes and single-cycle
    /// 52-bit multiplies beat everything else), then the SIMD lane
    /// kernel whenever the host supports AVX2 (same schedule as
    /// radix-4, wider butterflies), otherwise cache-blocked radix-4
    /// once the working set outgrows one block (`n ≥ 2^13`) and
    /// radix-2 below.
    pub fn auto_for(n: usize, q: u64) -> NttKernel {
        if simd::ifma_available() && ifma_modulus_ok(q) {
            NttKernel::Ifma
        } else if simd::avx2_available() {
            NttKernel::Simd
        } else if n >= RADIX4_MIN_DIM {
            NttKernel::Radix4
        } else {
            NttKernel::Radix2
        }
    }

    /// Parses an observed `UFC_NTT_KERNEL` value without touching the
    /// process environment (the pure seam under [`NttKernel::from_env`],
    /// directly unit-testable). `None`, the empty string and `auto`
    /// all mean "no override"; anything else must name a kernel.
    ///
    /// # Errors
    ///
    /// [`KernelEnvError`] when the value names no known kernel.
    pub fn parse_env_value(value: Option<&str>) -> Result<Option<NttKernel>, KernelEnvError> {
        match value {
            None => Ok(None),
            Some(v) if v.is_empty() || v.eq_ignore_ascii_case("auto") => Ok(None),
            Some(v) => match Self::parse(v) {
                Some(k) => Ok(Some(k)),
                None => Err(KernelEnvError {
                    value: v.to_string(),
                }),
            },
        }
    }

    /// Reads the `UFC_NTT_KERNEL` override from the environment:
    /// `Ok(Some(kernel))` for a forced kernel, `Ok(None)` when unset
    /// (or `auto`/empty).
    ///
    /// CLIs call this once at startup and fail fast on `Err`; library
    /// paths go through [`NttKernel::select_for`], which degrades to
    /// the heuristic with a one-shot warning instead of panicking deep
    /// inside table construction.
    ///
    /// # Errors
    ///
    /// [`KernelEnvError`] when the variable is set to an unrecognized
    /// value.
    pub fn from_env() -> Result<Option<NttKernel>, KernelEnvError> {
        match std::env::var(KERNEL_ENV) {
            Ok(v) => Self::parse_env_value(Some(&v)),
            Err(_) => Ok(None),
        }
    }

    /// Kernel selection for ring dimension `n` over modulus `q`: the
    /// `UFC_NTT_KERNEL` environment variable if set (and not `auto`),
    /// otherwise [`NttKernel::auto_for`].
    ///
    /// A malformed variable does **not** panic or error here: contexts
    /// are built deep inside scheme and simulator code, where aborting
    /// on a typo'd environment would take the whole consumer down. The
    /// malformed value is reported once on stderr and selection falls
    /// back to the heuristic. Binaries that want the hard failure
    /// (bench runners, the CI kernel matrix via `xtask`) validate with
    /// [`NttKernel::from_env`] before building anything.
    ///
    /// A *well-formed* but unsatisfiable `ifma` override is different:
    /// silently falling back would hand a CI leg or a bench run a
    /// kernel it did not ask for, so it is a typed error instead.
    ///
    /// # Errors
    ///
    /// With `UFC_NTT_KERNEL=ifma` set: [`NttError::IfmaPrimeTooWide`]
    /// when `q ≥ 2^50`, and [`NttError::IfmaUnavailable`] when the
    /// host lacks AVX-512 IFMA and `UFC_IFMA_PORTABLE` does not opt
    /// into the portable mirror lanes.
    pub fn select_for(n: usize, q: u64) -> Result<NttKernel, NttError> {
        match Self::from_env() {
            Ok(Some(NttKernel::Ifma)) => {
                if !ifma_modulus_ok(q) {
                    return Err(NttError::IfmaPrimeTooWide { q });
                }
                if !simd::ifma_available() && !ifma_portable_requested() {
                    return Err(NttError::IfmaUnavailable);
                }
                Ok(NttKernel::Ifma)
            }
            Ok(Some(k)) => Ok(k),
            Ok(None) => Ok(Self::auto_for(n, q)),
            Err(e) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!("warning: {e}; falling back to automatic kernel selection");
                });
                Ok(Self::auto_for(n, q))
            }
        }
    }
}

/// Whether `UFC_IFMA_PORTABLE` opts a forced `ifma` kernel into the
/// portable mirror lanes on hardware without AVX-512 IFMA.
fn ifma_portable_requested() -> bool {
    matches!(
        std::env::var(IFMA_PORTABLE_ENV).ok().as_deref(),
        Some("1") | Some("true")
    )
}

/// An unrecognized `UFC_NTT_KERNEL` value, reported by
/// [`NttKernel::from_env`] / [`NttKernel::parse_env_value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelEnvError {
    /// The offending environment value, verbatim.
    pub value: String,
}

impl std::fmt::Display for KernelEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{KERNEL_ENV} must be one of auto|reference|radix2|radix4|simd|ifma, got `{}`",
            self.value
        )
    }
}

impl std::error::Error for KernelEnvError {}

/// Why a set of NTT parameters cannot back an [`NttContext`], from
/// [`NttContext::try_new`] / [`NttContext::try_with_psi`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NttError {
    /// The ring dimension is not a (nonzero) power of two.
    DimNotPowerOfTwo {
        /// The rejected dimension.
        n: usize,
    },
    /// The modulus is outside the supported range `[2, 2^62)`.
    ModulusOutOfRange {
        /// The rejected modulus.
        q: u64,
    },
    /// The modulus is composite, so roots of unity and inverses are
    /// not guaranteed to exist.
    ModulusNotPrime {
        /// The rejected modulus.
        q: u64,
    },
    /// `q ≢ 1 (mod 2n)`: the ring has no primitive 2n-th root of
    /// unity, so the negacyclic NTT does not exist.
    NotNttFriendly {
        /// The ring dimension.
        n: usize,
        /// The rejected modulus.
        q: u64,
    },
    /// The caller-supplied ψ is not a primitive 2N-th root of unity.
    PsiNotPrimitive {
        /// The rejected root.
        psi: u64,
        /// The modulus it was checked against.
        q: u64,
    },
    /// The IFMA kernel was requested for a modulus at or above 2⁵⁰,
    /// where lazy values no longer fit the 52-bit product window.
    /// Raised by a forced `UFC_NTT_KERNEL=ifma` and by
    /// [`NttContext::try_set_kernel`] alike — width is a hard
    /// correctness bound, never subject to a portable escape.
    IfmaPrimeTooWide {
        /// The rejected modulus.
        q: u64,
    },
    /// `UFC_NTT_KERNEL=ifma` was forced on a host without AVX-512
    /// IFMA, and `UFC_IFMA_PORTABLE` did not opt into the portable
    /// mirror lanes. Silent fallback here would hand CI legs and
    /// bench runs a kernel they did not ask for.
    IfmaUnavailable,
}

impl std::fmt::Display for NttError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            NttError::DimNotPowerOfTwo { n } => {
                write!(f, "ring dimension {n} is not a power of two")
            }
            NttError::ModulusOutOfRange { q } => {
                write!(f, "modulus {q} is outside the supported range [2, 2^62)")
            }
            NttError::ModulusNotPrime { q } => write!(f, "modulus {q} is not prime"),
            NttError::NotNttFriendly { n, q } => write!(
                f,
                "modulus {q} is not NTT-friendly for dimension {n} (q must be 1 mod {})",
                2 * n
            ),
            NttError::PsiNotPrimitive { psi, q } => {
                write!(f, "{psi} is not a primitive 2N-th root of unity mod {q}")
            }
            NttError::IfmaPrimeTooWide { q } => write!(
                f,
                "modulus {q} is too wide for the IFMA kernel (requires q < 2^{IFMA_MAX_MODULUS_BITS})"
            ),
            NttError::IfmaUnavailable => write!(
                f,
                "UFC_NTT_KERNEL=ifma requires AVX-512 IFMA hardware; set {IFMA_PORTABLE_ENV}=1 to run the portable mirror lanes"
            ),
        }
    }
}

impl std::error::Error for NttError {}

impl std::str::FromStr for NttKernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s).ok_or_else(|| format!("unknown NTT kernel `{s}`"))
    }
}

impl std::fmt::Display for NttKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Precomputed tables for NTTs of a fixed `(N, q)` pair.
#[derive(Debug, Clone)]
pub struct NttContext {
    n: usize,
    q: u64,
    /// ψ: primitive 2N-th root of unity.
    psi: u64,
    /// ψ^i for i in 0..N (negacyclic pre-twist).
    psi_pows: Vec<u64>,
    /// Shoup companions of `psi_pows`.
    psi_shoup: Vec<u64>,
    /// Radix-2⁵² Shoup companions of `psi_pows` for the IFMA kernel —
    /// built eagerly iff `q < 2^50`, empty otherwise.
    psi_shoup52: Vec<u64>,
    /// ψ^{-i} for i in 0..N.
    psi_inv_pows: Vec<u64>,
    /// ω = ψ² powers: ω^i for i in 0..N.
    omega_pows: Vec<u64>,
    /// ω^{-i} for i in 0..N.
    omega_inv_pows: Vec<u64>,
    /// Stage-major twiddles for the lazy forward stages: the `half`
    /// twiddles of the stage with block length `2·half` start at
    /// offset `half − 1`, stored contiguously (`N − 1` entries total).
    /// The butterfly loop then streams them sequentially instead of
    /// striding through `omega_pows`.
    omega_stage: Vec<u64>,
    /// Shoup companions of `omega_stage`.
    omega_stage_shoup: Vec<u64>,
    /// Radix-2⁵² companions of `omega_stage` (IFMA; empty when
    /// `q ≥ 2^50`).
    omega_stage_shoup52: Vec<u64>,
    /// Stage-major twiddles for the lazy inverse stages.
    omega_inv_stage: Vec<u64>,
    /// Shoup companions of `omega_inv_stage`.
    omega_inv_stage_shoup: Vec<u64>,
    /// Radix-2⁵² companions of `omega_inv_stage` (IFMA).
    omega_inv_stage_shoup52: Vec<u64>,
    /// N^{-1} mod q.
    n_inv: u64,
    /// Shoup companion of `n_inv`.
    n_inv_shoup: u64,
    /// Fused post-twist ψ^{-i}·N^{-1} for the negacyclic inverse.
    psi_inv_n_pows: Vec<u64>,
    /// Shoup companions of `psi_inv_n_pows`.
    psi_inv_n_shoup: Vec<u64>,
    /// Radix-2⁵² companions of `psi_inv_n_pows` (IFMA).
    psi_inv_n_shoup52: Vec<u64>,
    /// Barrett reducer for the element-wise (hadamard) kernel.
    barrett: Barrett,
    /// Which butterfly kernel `forward`/`inverse` execute.
    kernel: NttKernel,
}

impl NttContext {
    /// Builds tables for ring dimension `n` (a power of two) and an
    /// NTT-friendly prime `q ≡ 1 mod 2n`.
    ///
    /// # Panics
    ///
    /// Panics when the parameters are invalid, with the
    /// [`NttError`] as the message. Fallible callers (anything fed
    /// from user-supplied parameter sets) should use
    /// [`Self::try_new`] instead.
    pub fn new(n: usize, q: u64) -> Self {
        Self::try_new(n, q).unwrap_or_else(|e| panic!("invalid NTT parameters: {e}"))
    }

    /// Fallible [`Self::new`]: validates the parameter set — `n` a
    /// power of two, `q` a prime in `[2, 2^62)` with `q ≡ 1 mod 2n` —
    /// before any table construction, so bad parameters surface as
    /// typed errors instead of panics from inversion helpers deep in
    /// the build.
    ///
    /// # Errors
    ///
    /// The first failing [`NttError`] check, in the order listed
    /// above.
    pub fn try_new(n: usize, q: u64) -> Result<Self, NttError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(NttError::DimNotPowerOfTwo { n });
        }
        if !(2..1u64 << 62).contains(&q) {
            return Err(NttError::ModulusOutOfRange { q });
        }
        if !is_prime(q) {
            return Err(NttError::ModulusNotPrime { q });
        }
        if !(q - 1).is_multiple_of(2 * n as u64) {
            return Err(NttError::NotNttFriendly { n, q });
        }
        // Cannot fail past this point: q prime with 2n | q - 1
        // guarantees a primitive 2n-th root exists.
        let psi = primitive_root_of_unity(2 * n as u64, q);
        Self::try_with_psi(n, q, psi)
    }

    /// [`Self::try_new`] with the kernel pinned explicitly, never
    /// consulting `UFC_NTT_KERNEL`. This is the construction seam for
    /// conformance suites and benches that must behave identically
    /// under every leg of the CI kernel matrix — including legs whose
    /// forced kernel could not legally run over this modulus.
    ///
    /// Like [`Self::try_set_kernel`], an explicit [`NttKernel::Ifma`]
    /// does not require the hardware (the portable mirror lanes are
    /// bit-identical), but the 50-bit width bound is always enforced.
    ///
    /// # Errors
    ///
    /// Any [`Self::try_new`] parameter error, or
    /// [`NttError::IfmaPrimeTooWide`] when `kernel` cannot run over
    /// `q`.
    pub fn try_new_with_kernel(n: usize, q: u64, kernel: NttKernel) -> Result<Self, NttError> {
        if !kernel.supports_modulus(q) {
            return Err(NttError::IfmaPrimeTooWide { q });
        }
        if n == 0 || !n.is_power_of_two() {
            return Err(NttError::DimNotPowerOfTwo { n });
        }
        if !(2..1u64 << 62).contains(&q) {
            return Err(NttError::ModulusOutOfRange { q });
        }
        if !is_prime(q) {
            return Err(NttError::ModulusNotPrime { q });
        }
        if !(q - 1).is_multiple_of(2 * n as u64) {
            return Err(NttError::NotNttFriendly { n, q });
        }
        let psi = primitive_root_of_unity(2 * n as u64, q);
        let mut ctx = Self::build_with_psi(n, q, psi)?;
        ctx.kernel = kernel;
        Ok(ctx)
    }

    /// Builds tables using a caller-chosen 2N-th root `psi`.
    ///
    /// Used by the automorphism-via-NTT trick (§IV-C2), which swaps ψ
    /// for ψ^k to fold a Galois automorphism into the transform.
    ///
    /// # Panics
    ///
    /// Panics when the parameters are invalid, with the
    /// [`NttError`] as the message (see [`Self::try_with_psi`]).
    pub fn with_psi(n: usize, q: u64, psi: u64) -> Self {
        Self::try_with_psi(n, q, psi).unwrap_or_else(|e| panic!("invalid NTT parameters: {e}"))
    }

    /// Fallible [`Self::with_psi`]. Validates dimension, modulus range
    /// and the primitivity of `psi` (`ψ^2N = 1`, `ψ^N = −1`); does
    /// *not* re-check primality, so the automorphism path can re-derive
    /// contexts from an already-validated modulus cheaply.
    ///
    /// # Errors
    ///
    /// [`NttError`] describing the first failing check, including the
    /// strict `UFC_NTT_KERNEL=ifma` selection errors of
    /// [`NttKernel::select_for`].
    pub fn try_with_psi(n: usize, q: u64, psi: u64) -> Result<Self, NttError> {
        let mut ctx = Self::build_with_psi(n, q, psi)?;
        ctx.kernel = NttKernel::select_for(n, q)?;
        Ok(ctx)
    }

    /// Table construction shared by the ambient-selection and
    /// pinned-kernel constructors. Never consults the environment;
    /// the kernel field is left at [`NttKernel::Reference`] for the
    /// caller to overwrite.
    fn build_with_psi(n: usize, q: u64, psi: u64) -> Result<Self, NttError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(NttError::DimNotPowerOfTwo { n });
        }
        if !(2..1u64 << 62).contains(&q) {
            return Err(NttError::ModulusOutOfRange { q });
        }
        if pow_mod(psi, 2 * n as u64, q) != 1 || pow_mod(psi, n as u64, q) != q.wrapping_sub(1) {
            return Err(NttError::PsiNotPrimitive { psi, q });
        }
        let mut psi_pows = Vec::with_capacity(n);
        let mut omega_pows = Vec::with_capacity(n);
        let omega = mul_mod(psi, psi, q);
        let mut p = 1u64;
        let mut w = 1u64;
        for _ in 0..n {
            psi_pows.push(p);
            omega_pows.push(w);
            p = mul_mod(p, psi, q);
            w = mul_mod(w, omega, q);
        }
        // ψ passed the primitivity check, so ψ (hence ω = ψ²) is a
        // unit; N can still collide with a composite modulus.
        let psi_inv = inv_mod(psi, q).ok_or(NttError::PsiNotPrimitive { psi, q })?;
        let omega_inv = inv_mod(omega, q).ok_or(NttError::PsiNotPrimitive { psi, q })?;
        let mut psi_inv_pows = Vec::with_capacity(n);
        let mut omega_inv_pows = Vec::with_capacity(n);
        let mut p = 1u64;
        let mut w = 1u64;
        for _ in 0..n {
            psi_inv_pows.push(p);
            omega_inv_pows.push(w);
            p = mul_mod(p, psi_inv, q);
            w = mul_mod(w, omega_inv, q);
        }
        // N is a power of two, so gcd(N, q) > 1 only for even q —
        // which is composite (q > 2 here since q ≥ 2 and ψ^N = −1
        // forces q > 2).
        let n_inv = inv_mod(n as u64, q).ok_or(NttError::ModulusNotPrime { q })?;
        let shoup_of =
            |v: &[u64]| -> Vec<u64> { v.iter().map(|&w| shoup_precompute(w, q)).collect() };
        let psi_shoup = shoup_of(&psi_pows);
        let stage_major = |pows: &[u64]| -> Vec<u64> {
            let mut t = Vec::with_capacity(n.saturating_sub(1));
            let mut len = 2;
            while len <= n {
                let step = n / len;
                for j in 0..len / 2 {
                    t.push(pows[j * step]);
                }
                len <<= 1;
            }
            t
        };
        let omega_stage = stage_major(&omega_pows);
        let omega_inv_stage = stage_major(&omega_inv_pows);
        let omega_stage_shoup = shoup_of(&omega_stage);
        let omega_inv_stage_shoup = shoup_of(&omega_inv_stage);
        let psi_inv_n_pows: Vec<u64> = psi_inv_pows.iter().map(|&p| mul_mod(p, n_inv, q)).collect();
        let psi_inv_n_shoup = shoup_of(&psi_inv_n_pows);
        // Radix-2⁵² companions whenever the modulus fits the IFMA
        // window, so `try_set_kernel(Ifma)` and `forward_with(Ifma)`
        // work without a rebuild; empty (and the kernel unreachable)
        // otherwise.
        let (psi_shoup52, omega_stage_shoup52, omega_inv_stage_shoup52, psi_inv_n_shoup52) =
            if ifma_modulus_ok(q) {
                let s52 = |v: &[u64]| -> Vec<u64> {
                    v.iter().map(|&w| shoup52_precompute(w, q)).collect()
                };
                (
                    s52(&psi_pows),
                    s52(&omega_stage),
                    s52(&omega_inv_stage),
                    s52(&psi_inv_n_pows),
                )
            } else {
                (Vec::new(), Vec::new(), Vec::new(), Vec::new())
            };
        Ok(Self {
            n,
            q,
            psi,
            psi_pows,
            psi_shoup,
            psi_shoup52,
            psi_inv_pows,
            omega_pows,
            omega_inv_pows,
            omega_stage,
            omega_stage_shoup,
            omega_stage_shoup52,
            omega_inv_stage,
            omega_inv_stage_shoup,
            omega_inv_stage_shoup52,
            n_inv,
            n_inv_shoup: shoup_precompute(n_inv, q),
            psi_inv_n_pows,
            psi_inv_n_shoup,
            psi_inv_n_shoup52,
            barrett: Barrett::new(q),
            kernel: NttKernel::Reference,
        })
    }

    /// The kernel `forward`/`inverse` currently dispatch to.
    #[inline]
    pub fn kernel(&self) -> NttKernel {
        self.kernel
    }

    /// Fallible kernel override (tests, benches, and scheme contexts
    /// that re-pin all their tables at once).
    ///
    /// Unlike the strict `UFC_NTT_KERNEL=ifma` environment path, an
    /// explicit [`NttKernel::Ifma`] here does *not* require the
    /// hardware: the portable mirror lanes evaluate the identical
    /// per-lane formulas, which is exactly what conformance suites on
    /// non-IFMA hosts need. The 50-bit width bound is a correctness
    /// bound, though, and is always enforced.
    ///
    /// # Errors
    ///
    /// [`NttError::IfmaPrimeTooWide`] when `kernel` is
    /// [`NttKernel::Ifma`] and this context's modulus is ≥ 2⁵⁰ (its
    /// radix-2⁵² tables were never built).
    pub fn try_set_kernel(&mut self, kernel: NttKernel) -> Result<(), NttError> {
        if !kernel.supports_modulus(self.q) {
            return Err(NttError::IfmaPrimeTooWide { q: self.q });
        }
        self.kernel = kernel;
        Ok(())
    }

    /// Forces a specific kernel for this context.
    ///
    /// # Panics
    ///
    /// Panics when the kernel cannot run over this context's modulus
    /// (see [`Self::try_set_kernel`]).
    pub fn set_kernel(&mut self, kernel: NttKernel) {
        self.try_set_kernel(kernel)
            .unwrap_or_else(|e| panic!("cannot set NTT kernel: {e}"));
    }

    /// Builder-style [`Self::set_kernel`].
    ///
    /// # Panics
    ///
    /// Panics when the kernel cannot run over this context's modulus
    /// (see [`Self::try_set_kernel`]).
    #[must_use]
    pub fn with_kernel(mut self, kernel: NttKernel) -> Self {
        self.set_kernel(kernel);
        self
    }

    /// Ring dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Coefficient modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// The 2N-th root ψ in use.
    #[inline]
    pub fn psi(&self) -> u64 {
        self.psi
    }

    /// Barrett reducer for this modulus (shared by element-wise
    /// kernels that operate alongside the transform).
    #[inline]
    pub fn barrett(&self) -> &Barrett {
        &self.barrett
    }

    /// Runs the Cooley–Tukey stages with lazy (Harvey) butterflies.
    ///
    /// Invariant: stage inputs are `< 4q`, the `u` leg is corrected to
    /// `< 2q` on entry, the twiddle leg comes back `< 2q` from the
    /// lazy Shoup multiply, so both outputs stay `< 4q`.
    ///
    /// `twiddles`/`twiddles_shoup` are the stage-major tables: each
    /// stage's `half` entries are contiguous, so the butterfly loop
    /// streams them. With `reduce_output`, the last stage folds the
    /// `[0, q)` correction into its butterflies, replacing the
    /// separate correction pass; otherwise outputs are lazy (`< 4q`)
    /// and the caller's own scaling pass must finish the reduction.
    ///
    /// Consecutive stages are *fused in pairs*: four elements are
    /// loaded once, both stages' butterflies run in registers, and the
    /// four results are stored once. The arithmetic is bit-identical
    /// to running the stages back to back, but the number of full
    /// passes over the coefficient array is halved — the difference
    /// between compute-bound and memory-bound at large `N`.
    fn lazy_stages(
        &self,
        a: &mut [u64],
        twiddles: &[u64],
        twiddles_shoup: &[u64],
        reduce_output: bool,
    ) {
        bit_reverse_permute(a);
        let mut len = 2;
        // Fused double stages while both fit strictly inside the
        // transform; the remainder (one single stage, one fused pair,
        // or nothing) is handled below so output correction can be
        // folded into whichever loop runs last.
        while 2 * len < self.n {
            self.fused_pair(a, len, twiddles, twiddles_shoup);
            len <<= 2;
        }
        if 2 * len == self.n {
            if reduce_output {
                self.fused_pair_reduce(a, len, twiddles, twiddles_shoup);
            } else {
                self.fused_pair(a, len, twiddles, twiddles_shoup);
            }
        } else if len == self.n {
            if reduce_output {
                self.single_stage_reduce(a, len, twiddles, twiddles_shoup);
            } else {
                self.single_stage(a, len, twiddles, twiddles_shoup);
            }
        }
    }

    /// The cache-blocked radix-4 stage walker. Outputs are congruent
    /// to [`Self::lazy_stages`]' at every element with the same `< 4q`
    /// invariants, so the fully-reduced results are bit-identical;
    /// the schedule and per-stage work differ:
    ///
    /// 1. **Intra-block phase** — every stage whose butterfly span
    ///    fits inside [`RADIX4_BLOCK`] runs, fused in radix-4 pairs,
    ///    on one block at a time while that block is L1-resident. The
    ///    coefficient array makes a single trip through the cache
    ///    hierarchy for all of these stages combined. The first stage
    ///    pair elides the stage-1 unit-twiddle multiply
    ///    ([`Self::fused_pair_first`]), which is why the walker
    ///    requires entry values `< 2q`.
    /// 2. **Cross-block phase** — the remaining `log2(n / BLOCK)`
    ///    stages make full-array passes, still fused in pairs, with a
    ///    radix-2 tail stage when that count is odd. The finishing
    ///    work (`[0, q)` correction, or a fused element-wise twist)
    ///    folds into whichever pass runs last.
    ///
    /// Callers must have `n > RADIX4_BLOCK` (smaller transforms use
    /// the radix-2 walk) and bit-reversed, `< 2q` input.
    fn radix4_stage_walk(
        &self,
        a: &mut [u64],
        twiddles: &[u64],
        twiddles_shoup: &[u64],
        tail: Radix4Tail<'_>,
    ) {
        let n = self.n;
        debug_assert!(n > RADIX4_BLOCK);
        // First stage length NOT covered by the intra-block phase
        // (identical for every block, computed once).
        let mut cross_start = 8;
        while 2 * cross_start <= RADIX4_BLOCK {
            cross_start <<= 2;
        }
        for block in a.chunks_exact_mut(RADIX4_BLOCK) {
            self.fused_pair_first(block, twiddles, twiddles_shoup);
            let mut len = 8;
            while 2 * len <= RADIX4_BLOCK {
                self.fused_pair(block, len, twiddles, twiddles_shoup);
                len <<= 2;
            }
        }
        let mut len = cross_start;
        while 2 * len < n {
            self.fused_pair(a, len, twiddles, twiddles_shoup);
            len <<= 2;
        }
        if 2 * len == n {
            match tail {
                Radix4Tail::Lazy => self.fused_pair(a, len, twiddles, twiddles_shoup),
                Radix4Tail::Reduce => self.fused_pair_reduce(a, len, twiddles, twiddles_shoup),
                Radix4Tail::Twist { pows, shoup } => {
                    // Folding the twist into this fused pass would
                    // stream data, stage twiddles and both twist
                    // tables together — past L2 at the sizes where
                    // this tail fires. Two streaming passes win.
                    self.fused_pair(a, len, twiddles, twiddles_shoup);
                    self.twist_sweep(a, pows, shoup);
                }
            }
        } else if len == n {
            match tail {
                Radix4Tail::Lazy => self.single_stage(a, len, twiddles, twiddles_shoup),
                Radix4Tail::Reduce => self.single_stage_reduce(a, len, twiddles, twiddles_shoup),
                Radix4Tail::Twist { pows, shoup } => {
                    self.single_stage_twist(a, len, twiddles, twiddles_shoup, pows, shoup);
                }
            }
        }
    }

    /// The cyclic radix-4 entry: plain bit-reversal, then the blocked
    /// walk. Defers to [`Self::lazy_stages`] when the transform fits
    /// one block (the blocked schedule would be the plain walk).
    fn lazy_stages_radix4(
        &self,
        a: &mut [u64],
        twiddles: &[u64],
        twiddles_shoup: &[u64],
        reduce_output: bool,
    ) {
        if self.n <= RADIX4_BLOCK {
            self.lazy_stages(a, twiddles, twiddles_shoup, reduce_output);
            return;
        }
        bit_reverse_permute(a);
        let tail = if reduce_output {
            Radix4Tail::Reduce
        } else {
            Radix4Tail::Lazy
        };
        self.radix4_stage_walk(a, twiddles, twiddles_shoup, tail);
    }

    /// One radix-2 stage with block length `len`, lazy outputs.
    fn single_stage(&self, a: &mut [u64], len: usize, twiddles: &[u64], twiddles_shoup: &[u64]) {
        let q = self.q;
        let two_q = 2 * q;
        let half = len / 2;
        // Stage-major layout: this stage's twiddles start at
        // `half - 1` (sum of the earlier stages' halves).
        let tw = &twiddles[half - 1..2 * half - 1];
        let tws = &twiddles_shoup[half - 1..2 * half - 1];
        // Iterator form: chunk/split/zip lets the compiler drop
        // every bounds check from the butterfly loop.
        for chunk in a.chunks_exact_mut(len) {
            let (lo, hi) = chunk.split_at_mut(half);
            for (((x, y), &w), &ws) in lo.iter_mut().zip(hi.iter_mut()).zip(tw).zip(tws) {
                let mut u = *x;
                if u >= two_q {
                    u -= two_q;
                }
                let t = mul_shoup_lazy(*y, w, ws, q);
                *x = u + t;
                *y = u + two_q - t;
            }
        }
    }

    /// Like [`Self::single_stage`] but with the `[0, q)` correction
    /// folded into the butterfly outputs.
    fn single_stage_reduce(
        &self,
        a: &mut [u64],
        len: usize,
        twiddles: &[u64],
        twiddles_shoup: &[u64],
    ) {
        let q = self.q;
        let two_q = 2 * q;
        let half = len / 2;
        let tw = &twiddles[half - 1..2 * half - 1];
        let tws = &twiddles_shoup[half - 1..2 * half - 1];
        for chunk in a.chunks_exact_mut(len) {
            let (lo, hi) = chunk.split_at_mut(half);
            for (((x, y), &w), &ws) in lo.iter_mut().zip(hi.iter_mut()).zip(tw).zip(tws) {
                let mut u = *x;
                if u >= two_q {
                    u -= two_q;
                }
                let t = mul_shoup_lazy(*y, w, ws, q);
                *x = Self::reduce_4q(u + t, q);
                *y = Self::reduce_4q(u + two_q - t, q);
            }
        }
    }

    /// Brings a lazy representative `v < 4q` back to `[0, q)`.
    #[inline(always)]
    fn reduce_4q(mut v: u64, q: u64) -> u64 {
        if v >= 2 * q {
            v -= 2 * q;
        }
        if v >= q {
            v -= q;
        }
        v
    }

    /// Two consecutive radix-2 stages (block lengths `len` and
    /// `2·len`) fused into one pass: each group of four elements is
    /// loaded once, runs stage A then stage B in registers, and is
    /// stored once. Bit-identical to the unfused stages.
    fn fused_pair(&self, a: &mut [u64], len: usize, twiddles: &[u64], twiddles_shoup: &[u64]) {
        let q = self.q;
        let two_q = 2 * q;
        let ha = len / 2;
        // Stage A twiddles (block `len`), then stage B twiddles
        // (block `2·len`, `len` entries) split into the halves used by
        // the `(x0, x2)` and `(x1, x3)` butterflies.
        let twa = &twiddles[ha - 1..2 * ha - 1];
        let twas = &twiddles_shoup[ha - 1..2 * ha - 1];
        let twb = &twiddles[len - 1..2 * len - 1];
        let twbs = &twiddles_shoup[len - 1..2 * len - 1];
        let (twb_lo, twb_hi) = twb.split_at(ha);
        let (twbs_lo, twbs_hi) = twbs.split_at(ha);
        for chunk in a.chunks_exact_mut(2 * len) {
            let (left, right) = chunk.split_at_mut(len);
            let (x0s, x1s) = left.split_at_mut(ha);
            let (x2s, x3s) = right.split_at_mut(ha);
            for j in 0..ha {
                let (x0, x1, x2, x3) = (x0s[j], x1s[j], x2s[j], x3s[j]);
                let (wa, was) = (twa[j], twas[j]);
                // Stage A: (x0, x1) and (x2, x3).
                let mut u0 = x0;
                if u0 >= two_q {
                    u0 -= two_q;
                }
                let t1 = mul_shoup_lazy(x1, wa, was, q);
                let a0 = u0 + t1;
                let a1 = u0 + two_q - t1;
                let mut u2 = x2;
                if u2 >= two_q {
                    u2 -= two_q;
                }
                let t3 = mul_shoup_lazy(x3, wa, was, q);
                let a2 = u2 + t3;
                let a3 = u2 + two_q - t3;
                // Stage B: (a0, a2) and (a1, a3).
                let mut v0 = a0;
                if v0 >= two_q {
                    v0 -= two_q;
                }
                let s2 = mul_shoup_lazy(a2, twb_lo[j], twbs_lo[j], q);
                x0s[j] = v0 + s2;
                x2s[j] = v0 + two_q - s2;
                let mut v1 = a1;
                if v1 >= two_q {
                    v1 -= two_q;
                }
                let s3 = mul_shoup_lazy(a3, twb_hi[j], twbs_hi[j], q);
                x1s[j] = v1 + s3;
                x3s[j] = v1 + two_q - s3;
            }
        }
    }

    /// Like [`Self::fused_pair`] but with the `[0, q)` correction
    /// folded into the second stage's outputs.
    fn fused_pair_reduce(
        &self,
        a: &mut [u64],
        len: usize,
        twiddles: &[u64],
        twiddles_shoup: &[u64],
    ) {
        let q = self.q;
        let two_q = 2 * q;
        let ha = len / 2;
        let twa = &twiddles[ha - 1..2 * ha - 1];
        let twas = &twiddles_shoup[ha - 1..2 * ha - 1];
        let twb = &twiddles[len - 1..2 * len - 1];
        let twbs = &twiddles_shoup[len - 1..2 * len - 1];
        let (twb_lo, twb_hi) = twb.split_at(ha);
        let (twbs_lo, twbs_hi) = twbs.split_at(ha);
        for chunk in a.chunks_exact_mut(2 * len) {
            let (left, right) = chunk.split_at_mut(len);
            let (x0s, x1s) = left.split_at_mut(ha);
            let (x2s, x3s) = right.split_at_mut(ha);
            for j in 0..ha {
                let (x0, x1, x2, x3) = (x0s[j], x1s[j], x2s[j], x3s[j]);
                let (wa, was) = (twa[j], twas[j]);
                let mut u0 = x0;
                if u0 >= two_q {
                    u0 -= two_q;
                }
                let t1 = mul_shoup_lazy(x1, wa, was, q);
                let a0 = u0 + t1;
                let a1 = u0 + two_q - t1;
                let mut u2 = x2;
                if u2 >= two_q {
                    u2 -= two_q;
                }
                let t3 = mul_shoup_lazy(x3, wa, was, q);
                let a2 = u2 + t3;
                let a3 = u2 + two_q - t3;
                let mut v0 = a0;
                if v0 >= two_q {
                    v0 -= two_q;
                }
                let s2 = mul_shoup_lazy(a2, twb_lo[j], twbs_lo[j], q);
                x0s[j] = Self::reduce_4q(v0 + s2, q);
                x2s[j] = Self::reduce_4q(v0 + two_q - s2, q);
                let mut v1 = a1;
                if v1 >= two_q {
                    v1 -= two_q;
                }
                let s3 = mul_shoup_lazy(a3, twb_hi[j], twbs_hi[j], q);
                x1s[j] = Self::reduce_4q(v1 + s3, q);
                x3s[j] = Self::reduce_4q(v1 + two_q - s3, q);
            }
        }
    }

    /// The first stage pair (block lengths 2 and 4) of the radix-4
    /// walk, with the stage-1 multiply elided: stage 1's only twiddle
    /// is `ω^0 = 1`, so `mul_shoup_lazy(y, 1, …)` is a pure lazy
    /// reduction — skipping it is valid whenever the inputs are
    /// already `< 2q`, which every transform entry guarantees
    /// (reduced coefficients, or a `< 2q` lazy pre-twist). Outputs
    /// stay congruent with the same `< 4q` bound, so the fully
    /// reduced results remain bit-identical to the generic walk.
    fn fused_pair_first(&self, a: &mut [u64], twiddles: &[u64], twiddles_shoup: &[u64]) {
        let q = self.q;
        let two_q = 2 * q;
        // Stage-major layout: stage 2 (block length 4) owns entries
        // [1, 3) — a unit twiddle for the (a0, a2) leg and ω^{N/4}
        // for the (a1, a3) leg. Loop-invariant, hoisted.
        let (wb0, wb0s) = (twiddles[1], twiddles_shoup[1]);
        let (wb1, wb1s) = (twiddles[2], twiddles_shoup[2]);
        for chunk in a.chunks_exact_mut(4) {
            let (x0, x1, x2, x3) = (chunk[0], chunk[1], chunk[2], chunk[3]);
            debug_assert!(x0 < two_q && x1 < two_q && x2 < two_q && x3 < two_q);
            // Stage 1: unit twiddle, butterflies are plain add/sub.
            let a0 = x0 + x1;
            let a1 = x0 + two_q - x1;
            let a2 = x2 + x3;
            let a3 = x2 + two_q - x3;
            // Stage 2: identical to the generic fused pair.
            let mut v0 = a0;
            if v0 >= two_q {
                v0 -= two_q;
            }
            let s2 = mul_shoup_lazy(a2, wb0, wb0s, q);
            chunk[0] = v0 + s2;
            chunk[2] = v0 + two_q - s2;
            let mut v1 = a1;
            if v1 >= two_q {
                v1 -= two_q;
            }
            let s3 = mul_shoup_lazy(a3, wb1, wb1s, q);
            chunk[1] = v1 + s3;
            chunk[3] = v1 + two_q - s3;
        }
    }

    /// A standalone element-wise Shoup twist + `[0, q)` correction
    /// sweep over lazy (`< 4q`) values, with caller-supplied tables.
    fn twist_sweep(&self, a: &mut [u64], pows: &[u64], shoup: &[u64]) {
        let q = self.q;
        for ((x, &w), &ws) in a.iter_mut().zip(pows).zip(shoup) {
            let r = mul_shoup_lazy(*x, w, ws, q);
            *x = if r >= q { r - q } else { r };
        }
    }

    /// Like [`Self::single_stage`] but with the per-element Shoup
    /// twist and `[0, q)` correction folded into the stores. Radix-4
    /// inverse tail for transforms with an odd stage count.
    fn single_stage_twist(
        &self,
        a: &mut [u64],
        len: usize,
        twiddles: &[u64],
        twiddles_shoup: &[u64],
        pows: &[u64],
        shoup: &[u64],
    ) {
        let q = self.q;
        let two_q = 2 * q;
        let half = len / 2;
        let tw = &twiddles[half - 1..2 * half - 1];
        let tws = &twiddles_shoup[half - 1..2 * half - 1];
        let twist = |v: u64, w: u64, ws: u64| {
            let r = mul_shoup_lazy(v, w, ws, q);
            if r >= q {
                r - q
            } else {
                r
            }
        };
        for (ci, chunk) in a.chunks_exact_mut(len).enumerate() {
            let base = ci * len;
            let p = &pows[base..base + len];
            let ps = &shoup[base..base + len];
            let (lo, hi) = chunk.split_at_mut(half);
            for j in 0..half {
                let mut u = lo[j];
                if u >= two_q {
                    u -= two_q;
                }
                let t = mul_shoup_lazy(hi[j], tw[j], tws[j], q);
                lo[j] = twist(u + t, p[j], ps[j]);
                hi[j] = twist(u + two_q - t, p[half + j], ps[half + j]);
            }
        }
    }

    /// Fused bit-reversal + lazy ψ pre-twist: one random-access pass
    /// replaces the radix-2 path's separate twist sweep. Each element
    /// is multiplied by `ψ^i` for its *original* index `i` while being
    /// moved to its bit-reversed slot; reduced inputs come back < 2q.
    fn bit_reverse_twist(&self, a: &mut [u64]) {
        let n = a.len();
        debug_assert!(n.is_power_of_two());
        let bits = n.trailing_zeros();
        let q = self.q;
        for i in 0..n {
            let j = ((i as u64).reverse_bits() >> (64 - bits)) as usize;
            if i < j {
                let (vi, vj) = (a[i], a[j]);
                a[i] = mul_shoup_lazy(vj, self.psi_pows[j], self.psi_shoup[j], q);
                a[j] = mul_shoup_lazy(vi, self.psi_pows[i], self.psi_shoup[i], q);
            } else if i == j {
                a[i] = mul_shoup_lazy(a[i], self.psi_pows[i], self.psi_shoup[i], q);
            }
        }
    }

    /// In-place cyclic NTT (natural order in and out), ω = ψ².
    ///
    /// Input must be reduced (`< q`); output is reduced. Dispatches on
    /// the context's kernel.
    pub fn forward_cyclic(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        match self.kernel {
            NttKernel::Reference => self.cyclic_stages_reference(a, false),
            NttKernel::Radix2 => {
                self.lazy_stages(a, &self.omega_stage, &self.omega_stage_shoup, true);
            }
            NttKernel::Radix4 => {
                self.lazy_stages_radix4(a, &self.omega_stage, &self.omega_stage_shoup, true);
            }
            NttKernel::Simd => {
                bit_reverse_permute(a);
                self.simd_stage_walk(a, &self.omega_stage, &self.omega_stage_shoup, true);
            }
            NttKernel::Ifma => {
                self.assert_ifma_tables();
                bit_reverse_permute(a);
                self.ifma_stage_walk(
                    a,
                    &self.omega_stage,
                    &self.omega_stage_shoup,
                    &self.omega_stage_shoup52,
                    true,
                );
            }
        }
    }

    /// In-place cyclic inverse NTT (natural order in and out).
    pub fn inverse_cyclic(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        match self.kernel {
            NttKernel::Reference => {
                self.cyclic_stages_reference(a, true);
                for x in a.iter_mut() {
                    *x = mul_mod(*x, self.n_inv, self.q);
                }
                return;
            }
            NttKernel::Radix2 => {
                self.lazy_stages(a, &self.omega_inv_stage, &self.omega_inv_stage_shoup, false);
            }
            NttKernel::Radix4 => {
                self.lazy_stages_radix4(
                    a,
                    &self.omega_inv_stage,
                    &self.omega_inv_stage_shoup,
                    false,
                );
            }
            NttKernel::Simd => {
                bit_reverse_permute(a);
                self.simd_stage_walk(a, &self.omega_inv_stage, &self.omega_inv_stage_shoup, false);
            }
            NttKernel::Ifma => {
                self.assert_ifma_tables();
                bit_reverse_permute(a);
                self.ifma_stage_walk(
                    a,
                    &self.omega_inv_stage,
                    &self.omega_inv_stage_shoup,
                    &self.omega_inv_stage_shoup52,
                    false,
                );
            }
        }
        let q = self.q;
        for x in a.iter_mut() {
            // Lazy inputs < 4q are fine for the Shoup scale; one
            // conditional subtraction fully reduces.
            let r = mul_shoup_lazy(*x, self.n_inv, self.n_inv_shoup, q);
            *x = if r >= q { r - q } else { r };
        }
    }

    /// Negacyclic forward NTT: coefficient form → evaluation form.
    ///
    /// Evaluation point `i` is `ψ^(2i+1)` (odd powers), matching the
    /// factorization of `X^N + 1`. Dispatches on the context's kernel
    /// (see [`Self::kernel`]).
    pub fn forward(&self, a: &mut [u64]) {
        let _span = ufc_trace::span_full("math", "ntt_forward", self.kernel.name(), self.n as u64);
        self.forward_with(self.kernel, a);
    }

    /// Negacyclic inverse NTT: evaluation form → coefficient form.
    pub fn inverse(&self, a: &mut [u64]) {
        let _span = ufc_trace::span_full("math", "ntt_inverse", self.kernel.name(), self.n as u64);
        self.inverse_with(self.kernel, a);
    }

    /// [`Self::forward`] through an explicitly chosen kernel,
    /// bypassing the context's dispatch. All kernels produce
    /// bit-identical outputs on reduced inputs.
    pub fn forward_with(&self, kernel: NttKernel, a: &mut [u64]) {
        match kernel {
            NttKernel::Reference => self.forward_reference(a),
            NttKernel::Radix2 => self.forward_radix2(a),
            NttKernel::Radix4 => self.forward_radix4(a),
            NttKernel::Simd => self.forward_simd(a),
            NttKernel::Ifma => self.forward_ifma(a),
        }
    }

    /// [`Self::inverse`] through an explicitly chosen kernel.
    pub fn inverse_with(&self, kernel: NttKernel, a: &mut [u64]) {
        match kernel {
            NttKernel::Reference => self.inverse_reference(a),
            NttKernel::Radix2 => self.inverse_radix2(a),
            NttKernel::Radix4 => self.inverse_radix4(a),
            NttKernel::Simd => self.inverse_simd(a),
            NttKernel::Ifma => self.inverse_ifma(a),
        }
    }

    /// Lazy pre-twist shared by the negacyclic forward kernels:
    /// reduced inputs come back < 2q, which the stage invariant
    /// (< 4q) absorbs.
    fn pre_twist(&self, a: &mut [u64]) {
        let q = self.q;
        for ((x, &w), &ws) in a.iter_mut().zip(&self.psi_pows).zip(&self.psi_shoup) {
            *x = mul_shoup_lazy(*x, w, ws, q);
        }
    }

    /// Fused ψ^{-i}·N^{-1} post-twist shared by the negacyclic inverse
    /// kernels, straight off the lazy (< 4q) stage outputs.
    fn post_twist(&self, a: &mut [u64]) {
        self.twist_sweep(a, &self.psi_inv_n_pows, &self.psi_inv_n_shoup);
    }

    /// Negacyclic forward NTT, radix-2 Shoup/Harvey kernel.
    pub fn forward_radix2(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        self.pre_twist(a);
        self.lazy_stages(a, &self.omega_stage, &self.omega_stage_shoup, true);
    }

    /// Negacyclic inverse NTT, radix-2 Shoup/Harvey kernel.
    pub fn inverse_radix2(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        self.lazy_stages(a, &self.omega_inv_stage, &self.omega_inv_stage_shoup, false);
        self.post_twist(a);
    }

    /// Negacyclic forward NTT, cache-blocked radix-4 kernel.
    ///
    /// Bit-identical outputs to [`Self::forward_radix2`], with three
    /// pass-level savings on top of the blocked schedule: the ψ
    /// pre-twist rides along with the bit-reversal permutation
    /// ([`Self::bit_reverse_twist`]), the stage-1 unit-twiddle
    /// multiply is elided ([`Self::fused_pair_first`]), and the final
    /// correction folds into the last stage's stores. For
    /// `n ≤ RADIX4_BLOCK` the blocked schedule degenerates to the
    /// radix-2 walk, so it defers to it outright.
    pub fn forward_radix4(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        if self.n <= RADIX4_BLOCK {
            self.forward_radix2(a);
            return;
        }
        self.bit_reverse_twist(a);
        self.radix4_stage_walk(
            a,
            &self.omega_stage,
            &self.omega_stage_shoup,
            Radix4Tail::Reduce,
        );
    }

    /// Negacyclic inverse NTT, cache-blocked radix-4 kernel.
    ///
    /// Mirrors [`Self::forward_radix4`]: the `ψ^{-i}·N^{-1}`
    /// post-twist pass is folded into the last stage's stores instead
    /// of making its own trip over the array.
    pub fn inverse_radix4(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        if self.n <= RADIX4_BLOCK {
            self.inverse_radix2(a);
            return;
        }
        bit_reverse_permute(a);
        self.radix4_stage_walk(
            a,
            &self.omega_inv_stage,
            &self.omega_inv_stage_shoup,
            Radix4Tail::Twist {
                pows: &self.psi_inv_n_pows,
                shoup: &self.psi_inv_n_shoup,
            },
        );
    }

    /// Negacyclic forward NTT, 4-wide SIMD lane kernel.
    ///
    /// Same schedule as [`Self::forward_radix4`] (blocked above
    /// [`RADIX4_BLOCK`], plain fused walk below), with the butterfly
    /// inner loops running on the [`crate::simd`] lane kernels. The
    /// lane kernels evaluate the identical per-element integer
    /// formulas, so outputs are bit-identical to every other kernel.
    pub fn forward_simd(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        if self.n > RADIX4_BLOCK {
            self.bit_reverse_twist(a);
        } else {
            // Lane form of the ψ pre-twist (< 2q out), then permute.
            simd::twist_lazy_slice(a, &self.psi_pows, &self.psi_shoup, self.q);
            bit_reverse_permute(a);
        }
        self.simd_stage_walk(a, &self.omega_stage, &self.omega_stage_shoup, true);
    }

    /// Negacyclic inverse NTT, 4-wide SIMD lane kernel.
    ///
    /// Lazy stage walk, then the fused `ψ^{-i}·N^{-1}` post-twist as
    /// one lane sweep with the `[0, q)` correction folded in.
    pub fn inverse_simd(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        bit_reverse_permute(a);
        self.simd_stage_walk(a, &self.omega_inv_stage, &self.omega_inv_stage_shoup, false);
        simd::twist_reduce_slice(a, &self.psi_inv_n_pows, &self.psi_inv_n_shoup, self.q);
    }

    /// The SIMD stage walker: the radix-4 blocked schedule with lane
    /// butterflies. Requires bit-reversed input `< 2q` (the blocked
    /// phase starts with [`Self::fused_pair_first`], which elides the
    /// unit-twiddle stage-1 multiply under exactly that bound).
    ///
    /// With `reduce_output` the final stage folds the `[0, q)`
    /// correction into its stores; otherwise outputs stay lazy
    /// (`< 4q`) for a caller-side twist/scale sweep to finish.
    fn simd_stage_walk(
        &self,
        a: &mut [u64],
        twiddles: &[u64],
        twiddles_shoup: &[u64],
        reduce_output: bool,
    ) {
        let n = self.n;
        let mut len = 2;
        if n > RADIX4_BLOCK {
            for block in a.chunks_exact_mut(RADIX4_BLOCK) {
                self.fused_pair_first(block, twiddles, twiddles_shoup);
                let mut blen = 8;
                while 2 * blen <= RADIX4_BLOCK {
                    self.fused_pair_simd(block, blen, twiddles, twiddles_shoup, false);
                    blen <<= 2;
                }
            }
            // First stage length not covered by the intra-block phase.
            len = 8;
            while 2 * len <= RADIX4_BLOCK {
                len <<= 2;
            }
        }
        while 2 * len < n {
            self.fused_pair_simd(a, len, twiddles, twiddles_shoup, false);
            len <<= 2;
        }
        if 2 * len == n {
            self.fused_pair_simd(a, len, twiddles, twiddles_shoup, reduce_output);
        } else if len == n {
            self.single_stage_simd(a, len, twiddles, twiddles_shoup, reduce_output);
        }
    }

    /// Lane form of [`Self::fused_pair`] / [`Self::fused_pair_reduce`]:
    /// the four quarter-slices of each `2·len` chunk are contiguous,
    /// so the fused two-stage butterfly vectorizes directly. Falls
    /// back to the scalar fused pair when the quarter length is below
    /// the lane width.
    fn fused_pair_simd(
        &self,
        a: &mut [u64],
        len: usize,
        twiddles: &[u64],
        twiddles_shoup: &[u64],
        reduce: bool,
    ) {
        let ha = len / 2;
        if ha < simd::LANES {
            if reduce {
                self.fused_pair_reduce(a, len, twiddles, twiddles_shoup);
            } else {
                self.fused_pair(a, len, twiddles, twiddles_shoup);
            }
            return;
        }
        let twb = &twiddles[len - 1..2 * len - 1];
        let twbs = &twiddles_shoup[len - 1..2 * len - 1];
        let (twb_lo, twb_hi) = twb.split_at(ha);
        let (twbs_lo, twbs_hi) = twbs.split_at(ha);
        let tw = simd::FusedTwiddles {
            a: &twiddles[ha - 1..2 * ha - 1],
            a_shoup: &twiddles_shoup[ha - 1..2 * ha - 1],
            b_lo: twb_lo,
            b_lo_shoup: twbs_lo,
            b_hi: twb_hi,
            b_hi_shoup: twbs_hi,
        };
        for chunk in a.chunks_exact_mut(2 * len) {
            let (left, right) = chunk.split_at_mut(len);
            let (x0s, x1s) = left.split_at_mut(ha);
            let (x2s, x3s) = right.split_at_mut(ha);
            simd::harvey_fused_pair(x0s, x1s, x2s, x3s, &tw, self.q, reduce);
        }
    }

    /// Lane form of [`Self::single_stage`] /
    /// [`Self::single_stage_reduce`] — the radix-2 tail stage for odd
    /// stage counts.
    fn single_stage_simd(
        &self,
        a: &mut [u64],
        len: usize,
        twiddles: &[u64],
        twiddles_shoup: &[u64],
        reduce: bool,
    ) {
        let half = len / 2;
        if half < simd::LANES {
            if reduce {
                self.single_stage_reduce(a, len, twiddles, twiddles_shoup);
            } else {
                self.single_stage(a, len, twiddles, twiddles_shoup);
            }
            return;
        }
        let tw = &twiddles[half - 1..2 * half - 1];
        let tws = &twiddles_shoup[half - 1..2 * half - 1];
        for chunk in a.chunks_exact_mut(len) {
            let (lo, hi) = chunk.split_at_mut(half);
            simd::harvey_stage(lo, hi, tw, tws, self.q, reduce);
        }
    }

    /// Guard shared by every IFMA entry point: the radix-2⁵² tables
    /// exist exactly when `q < 2^50`, and running the 52-bit formulas
    /// past that bound would silently wrap — a panic with the typed
    /// error's message is the only acceptable outcome for an explicit
    /// `forward_with(Ifma)` bypass on a fat-prime context.
    fn assert_ifma_tables(&self) {
        assert!(
            ifma_modulus_ok(self.q),
            "{}",
            NttError::IfmaPrimeTooWide { q: self.q }
        );
    }

    /// Negacyclic forward NTT, 8-wide AVX-512 IFMA lane kernel
    /// (portable mirror lanes when the hardware is absent — same
    /// per-lane formulas, bit-identical outputs).
    ///
    /// Same schedule as [`Self::forward_simd`]; the butterfly inner
    /// loops run the radix-2⁵² Shoup kernels of [`crate::simd`]. The
    /// large-`n` entry reuses the scalar fused bit-reversal+twist
    /// (64-bit Shoup): its `< 2q` outputs are exactly what the walk
    /// requires, and the lazy representatives it produces are the same
    /// on hardware and portable legs, preserving leg-for-leg bit
    /// identity.
    pub fn forward_ifma(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        self.assert_ifma_tables();
        if self.n > RADIX4_BLOCK {
            self.bit_reverse_twist(a);
        } else {
            simd::twist_lazy52_slice(a, &self.psi_pows, &self.psi_shoup52, self.q);
            bit_reverse_permute(a);
        }
        self.ifma_stage_walk(
            a,
            &self.omega_stage,
            &self.omega_stage_shoup,
            &self.omega_stage_shoup52,
            true,
        );
    }

    /// Negacyclic inverse NTT, 8-wide AVX-512 IFMA lane kernel.
    ///
    /// Lazy stage walk, then the fused `ψ^{-i}·N^{-1}` post-twist as
    /// one 52-bit lane sweep with the `[0, q)` correction folded in.
    pub fn inverse_ifma(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        self.assert_ifma_tables();
        bit_reverse_permute(a);
        self.ifma_stage_walk(
            a,
            &self.omega_inv_stage,
            &self.omega_inv_stage_shoup,
            &self.omega_inv_stage_shoup52,
            false,
        );
        simd::twist_reduce52_slice(a, &self.psi_inv_n_pows, &self.psi_inv_n_shoup52, self.q);
    }

    /// The IFMA stage walker: [`Self::simd_stage_walk`]'s blocked
    /// schedule with the inner loops on the 52-bit lane kernels.
    /// `twiddles_shoup52` carries the radix-2⁵² companions; the
    /// twiddle values themselves are shared with every other kernel.
    ///
    /// The first stage pair of each block stays on the scalar
    /// [`Self::fused_pair_first`]: stage 1 is multiply-free there and
    /// stage 2's two twiddles are loop-invariant, so lanes buy nothing
    /// — and keeping it scalar keeps the entry bound (`< 2q`) and the
    /// per-leg bit identity argument unchanged.
    fn ifma_stage_walk(
        &self,
        a: &mut [u64],
        twiddles: &[u64],
        twiddles_shoup: &[u64],
        twiddles_shoup52: &[u64],
        reduce_output: bool,
    ) {
        let n = self.n;
        let mut len = 2;
        if n > RADIX4_BLOCK {
            for block in a.chunks_exact_mut(RADIX4_BLOCK) {
                self.fused_pair_first(block, twiddles, twiddles_shoup);
                let mut blen = 8;
                while 2 * blen <= RADIX4_BLOCK {
                    self.fused_pair_ifma(block, blen, twiddles, twiddles_shoup52, false);
                    blen <<= 2;
                }
            }
            len = 8;
            while 2 * len <= RADIX4_BLOCK {
                len <<= 2;
            }
        }
        while 2 * len < n {
            self.fused_pair_ifma(a, len, twiddles, twiddles_shoup52, false);
            len <<= 2;
        }
        if 2 * len == n {
            self.fused_pair_ifma(a, len, twiddles, twiddles_shoup52, reduce_output);
        } else if len == n {
            self.single_stage_ifma(a, len, twiddles, twiddles_shoup52, reduce_output);
        }
    }

    /// 52-bit lane form of [`Self::fused_pair`]; the short-length
    /// fallback lives inside [`simd::harvey_fused_pair52`] (its
    /// portable tail evaluates the same formulas), so no scalar
    /// detour is needed here.
    fn fused_pair_ifma(
        &self,
        a: &mut [u64],
        len: usize,
        twiddles: &[u64],
        twiddles_shoup52: &[u64],
        reduce: bool,
    ) {
        let ha = len / 2;
        let twb = &twiddles[len - 1..2 * len - 1];
        let twbs = &twiddles_shoup52[len - 1..2 * len - 1];
        let (twb_lo, twb_hi) = twb.split_at(ha);
        let (twbs_lo, twbs_hi) = twbs.split_at(ha);
        let tw = simd::FusedTwiddles {
            a: &twiddles[ha - 1..2 * ha - 1],
            a_shoup: &twiddles_shoup52[ha - 1..2 * ha - 1],
            b_lo: twb_lo,
            b_lo_shoup: twbs_lo,
            b_hi: twb_hi,
            b_hi_shoup: twbs_hi,
        };
        for chunk in a.chunks_exact_mut(2 * len) {
            let (left, right) = chunk.split_at_mut(len);
            let (x0s, x1s) = left.split_at_mut(ha);
            let (x2s, x3s) = right.split_at_mut(ha);
            simd::harvey_fused_pair52(x0s, x1s, x2s, x3s, &tw, self.q, reduce);
        }
    }

    /// 52-bit lane form of [`Self::single_stage`] — the radix-2 tail
    /// stage for odd stage counts.
    fn single_stage_ifma(
        &self,
        a: &mut [u64],
        len: usize,
        twiddles: &[u64],
        twiddles_shoup52: &[u64],
        reduce: bool,
    ) {
        let half = len / 2;
        let tw = &twiddles[half - 1..2 * half - 1];
        let tws = &twiddles_shoup52[half - 1..2 * half - 1];
        for chunk in a.chunks_exact_mut(len) {
            let (lo, hi) = chunk.split_at_mut(half);
            simd::harvey_stage52(lo, hi, tw, tws, self.q, reduce);
        }
    }

    /// Seed forward kernel (pre-Shoup): one `u128 %` per multiply.
    ///
    /// Kept as the measured baseline for `cargo xtask bench-math` and
    /// as the oracle for old-vs-new equivalence tests.
    pub fn forward_reference(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        for (i, x) in a.iter_mut().enumerate() {
            *x = mul_mod(*x, self.psi_pows[i], self.q);
        }
        self.cyclic_stages_reference(a, false);
    }

    /// Seed inverse kernel (pre-Shoup). See [`Self::forward_reference`].
    pub fn inverse_reference(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        self.cyclic_stages_reference(a, true);
        for x in a.iter_mut() {
            *x = mul_mod(*x, self.n_inv, self.q);
        }
        for (i, x) in a.iter_mut().enumerate() {
            *x = mul_mod(*x, self.psi_inv_pows[i], self.q);
        }
    }

    /// The seed Cooley–Tukey loop, verbatim: fully-reduced butterflies
    /// whose twiddle multiply is a 128-bit `%` division.
    fn cyclic_stages_reference(&self, a: &mut [u64], inverse: bool) {
        bit_reverse_permute(a);
        let q = self.q;
        let table = if inverse {
            &self.omega_inv_pows
        } else {
            &self.omega_pows
        };
        let mut len = 2;
        while len <= self.n {
            let step = self.n / len;
            for start in (0..self.n).step_by(len) {
                for j in 0..len / 2 {
                    let w = table[j * step];
                    let u = a[start + j];
                    let v = mul_mod(a[start + j + len / 2], w, q);
                    a[start + j] = add_mod(u, v, q);
                    a[start + j + len / 2] = sub_mod(u, v, q);
                }
            }
            len <<= 1;
        }
    }

    /// Converts a polynomial to evaluation form (out of place).
    pub fn to_eval(&self, p: &Poly) -> Poly {
        let mut c = p.coeffs().to_vec();
        self.forward(&mut c);
        Poly::from_coeffs_unchecked(c, self.q)
    }

    /// Converts a polynomial back to coefficient form (out of place).
    pub fn to_coeff(&self, p: &Poly) -> Poly {
        let mut c = p.coeffs().to_vec();
        self.inverse(&mut c);
        Poly::from_coeffs_unchecked(c, self.q)
    }

    /// Converts a polynomial to evaluation form in place.
    pub fn forward_poly(&self, p: &mut Poly) {
        assert_eq!(p.modulus(), self.q, "modulus mismatch");
        self.forward(p.coeffs_mut());
    }

    /// Converts a polynomial to coefficient form in place.
    pub fn inverse_poly(&self, p: &mut Poly) {
        assert_eq!(p.modulus(), self.q, "modulus mismatch");
        self.inverse(p.coeffs_mut());
    }

    /// Negacyclic polynomial product via NTT:
    /// `iNTT(NTT(a) ∘ NTT(b))`.
    pub fn negacyclic_mul(&self, a: &Poly, b: &Poly) -> Poly {
        let _span =
            ufc_trace::span_full("math", "negacyclic_mul", self.kernel.name(), self.n as u64);
        let mut out = a.coeffs().to_vec();
        self.forward(&mut out);
        let mut eb = b.coeffs().to_vec();
        self.forward(&mut eb);
        for (x, &y) in out.iter_mut().zip(eb.iter()) {
            *x = self.barrett.mul(*x, y);
        }
        self.inverse(&mut out);
        Poly::from_coeffs_unchecked(out, self.q)
    }

    /// In-place negacyclic product: `a ← a * b`, one scratch buffer
    /// (the NTT image of `b`) instead of the three temporaries the
    /// out-of-place path used to allocate.
    pub fn negacyclic_mul_assign(&self, a: &mut Poly, b: &Poly) {
        let _span =
            ufc_trace::span_full("math", "negacyclic_mul", self.kernel.name(), self.n as u64);
        assert_eq!(a.modulus(), self.q, "modulus mismatch");
        let mut eb = b.coeffs().to_vec();
        self.forward(&mut eb);
        let ac = a.coeffs_mut();
        self.forward(ac);
        for (x, &y) in ac.iter_mut().zip(eb.iter()) {
            *x = self.barrett.mul(*x, y);
        }
        self.inverse(ac);
    }

    /// In-place negacyclic product against an operand that is
    /// *already* in evaluation form: `a ← iNTT(NTT(a) ∘ b_eval)`.
    /// Zero scratch allocations; the workhorse of cached-key external
    /// products.
    pub fn negacyclic_mul_assign_eval(&self, a: &mut Poly, b_eval: &Poly) {
        let _span = ufc_trace::span_full(
            "math",
            "negacyclic_mul_eval",
            self.kernel.name(),
            self.n as u64,
        );
        assert_eq!(a.modulus(), self.q, "modulus mismatch");
        let ac = a.coeffs_mut();
        self.forward(ac);
        for (x, &y) in ac.iter_mut().zip(b_eval.coeffs().iter()) {
            *x = self.barrett.mul(*x, y);
        }
        self.inverse(ac);
    }

    /// Seed negacyclic product — the bench-math baseline. Replicates
    /// the seed call chain verbatim: `to_eval(a)`, `to_eval(b)`,
    /// `hadamard`, `to_coeff`, each step allocating a fresh `Poly` and
    /// re-reducing its coefficients with `%`, with `%`-based
    /// butterflies inside the transforms.
    pub fn negacyclic_mul_reference(&self, a: &Poly, b: &Poly) -> Poly {
        let seed_to_eval = |p: &Poly| -> Poly {
            let mut c = p.coeffs().to_vec();
            self.forward_reference(&mut c);
            Poly::from_coeffs(c, self.q)
        };
        let ea = seed_to_eval(a);
        let eb = seed_to_eval(b);
        // Seed `Poly::hadamard`: one `u128 %` per coefficient into a
        // fresh allocation.
        let prod: Vec<u64> = ea
            .coeffs()
            .iter()
            .zip(eb.coeffs())
            .map(|(&x, &y)| mul_mod(x, y, self.q))
            .collect();
        let he = Poly::from_coeffs(prod, self.q);
        let mut c = he.coeffs().to_vec();
        self.inverse_reference(&mut c);
        Poly::from_coeffs(c, self.q)
    }
}

/// How the radix-4 stage walker finishes its last pass: leave lazy
/// (`< 4q`) values, fold the `[0, q)` correction in, or fold a
/// per-element Shoup twist (e.g. the inverse's `ψ^{-i}·N^{-1}`) plus
/// the correction into the final stores.
enum Radix4Tail<'a> {
    Lazy,
    Reduce,
    Twist { pows: &'a [u64], shoup: &'a [u64] },
}

/// In-place bit-reversal permutation.
pub fn bit_reverse_permute<T>(a: &mut [T]) {
    let n = a.len();
    debug_assert!(n.is_power_of_two());
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if i < j {
            a.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::generate_ntt_prime;
    use proptest::prelude::*;

    fn ctx(n: usize) -> NttContext {
        NttContext::new(n, generate_ntt_prime(n, 40).unwrap())
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for log_n in [3usize, 6, 10] {
            let n = 1 << log_n;
            let c = ctx(n);
            let orig: Vec<u64> = (0..n as u64).map(|i| i * 7 + 1).collect();
            let mut a = orig.clone();
            c.forward(&mut a);
            assert_ne!(a, orig, "transform must change data");
            c.inverse(&mut a);
            assert_eq!(a, orig);
        }
    }

    #[test]
    fn lazy_kernels_match_reference() {
        for log_n in [3usize, 5, 8] {
            let n = 1 << log_n;
            let c = ctx(n);
            let mut rng = 0x9e3779b97f4a7c15u64;
            let orig: Vec<u64> = (0..n)
                .map(|_| {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    rng % c.modulus()
                })
                .collect();
            let mut fast = orig.clone();
            let mut slow = orig.clone();
            c.forward(&mut fast);
            c.forward_reference(&mut slow);
            assert_eq!(fast, slow, "forward mismatch at n={n}");
            c.inverse(&mut fast);
            c.inverse_reference(&mut slow);
            assert_eq!(fast, slow, "inverse mismatch at n={n}");
            assert_eq!(fast, orig);
        }
    }

    #[test]
    fn kernel_names_parse_roundtrip() {
        for k in NttKernel::ALL {
            assert_eq!(NttKernel::parse(k.name()), Some(k));
            assert_eq!(k.name().parse::<NttKernel>().ok(), Some(k));
            assert_eq!(format!("{k}"), k.name());
        }
        assert_eq!(NttKernel::parse("RADIX4"), Some(NttKernel::Radix4));
        assert_eq!(NttKernel::parse("SIMD"), Some(NttKernel::Simd));
        assert_eq!(NttKernel::parse("radix8"), None);
        assert!("auto".parse::<NttKernel>().is_err());
    }

    #[test]
    fn auto_heuristic_switches_at_min_dim() {
        // A modulus too wide for IFMA exercises the AVX2/radix tiers
        // on every host.
        let wide = (1u64 << 59) - 55;
        if simd::avx2_available() {
            // AVX2 hosts prefer the lane kernel at every dimension.
            assert_eq!(
                NttKernel::auto_for(RADIX4_MIN_DIM / 2, wide),
                NttKernel::Simd
            );
            assert_eq!(NttKernel::auto_for(RADIX4_MIN_DIM, wide), NttKernel::Simd);
        } else {
            assert_eq!(
                NttKernel::auto_for(RADIX4_MIN_DIM / 2, wide),
                NttKernel::Radix2
            );
            assert_eq!(NttKernel::auto_for(RADIX4_MIN_DIM, wide), NttKernel::Radix4);
            assert_eq!(
                NttKernel::auto_for(RADIX4_MIN_DIM * 2, wide),
                NttKernel::Radix4
            );
        }
        // A fitting modulus takes the IFMA tier exactly when the
        // hardware is present.
        let narrow = (1u64 << 45) - 229;
        let picked = NttKernel::auto_for(RADIX4_MIN_DIM, narrow);
        if simd::ifma_available() {
            assert_eq!(picked, NttKernel::Ifma);
        } else {
            assert_ne!(picked, NttKernel::Ifma);
        }
        // IFMA never auto-selects past its width bound.
        assert_ne!(NttKernel::auto_for(RADIX4_MIN_DIM, wide), NttKernel::Ifma);
    }

    #[test]
    fn ifma_width_bound_is_enforced() {
        // 59-bit NTT-friendly prime: too wide for the 52-bit window.
        let n = 64usize;
        let q = generate_ntt_prime(n, 59).unwrap();
        assert!(!NttKernel::Ifma.supports_modulus(q));
        let mut c = NttContext::new(n, q);
        assert_eq!(
            c.try_set_kernel(NttKernel::Ifma),
            Err(NttError::IfmaPrimeTooWide { q })
        );
        // The context keeps its previous kernel after the rejection.
        assert_ne!(c.kernel(), NttKernel::Ifma);
        // A fitting prime accepts the override even without hardware
        // (portable mirror lanes).
        let q50 = generate_ntt_prime(n, 45).unwrap();
        assert!(NttKernel::Ifma.supports_modulus(q50));
        let mut c50 = NttContext::new(n, q50);
        assert_eq!(c50.try_set_kernel(NttKernel::Ifma), Ok(()));
        assert_eq!(c50.kernel(), NttKernel::Ifma);
    }

    #[test]
    fn ifma_roundtrip_and_reference_agreement() {
        for log_n in [4usize, 6, 10] {
            let n = 1 << log_n;
            let q = generate_ntt_prime(n, 45).unwrap();
            let c = NttContext::new(n, q).with_kernel(NttKernel::Ifma);
            let mut rng = 0x452821e638d01377u64 ^ (n as u64);
            let orig: Vec<u64> = (0..n)
                .map(|_| {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    rng % q
                })
                .collect();
            let mut fast = orig.clone();
            let mut slow = orig.clone();
            c.forward(&mut fast);
            c.forward_reference(&mut slow);
            assert_eq!(fast, slow, "forward mismatch at n={n}");
            c.inverse(&mut fast);
            c.inverse_reference(&mut slow);
            assert_eq!(fast, slow, "inverse mismatch at n={n}");
            assert_eq!(fast, orig);
        }
    }

    #[test]
    fn ifma_matches_simd_across_schedules() {
        // 2^12 = one block (lane pre-twist path), 2^13/2^14 exercise
        // the blocked walk with scalar fused bit-reversal+twist.
        for log_n in [12usize, 13, 14] {
            let n = 1 << log_n;
            let q = generate_ntt_prime(n, 49).unwrap();
            let c = NttContext::new(n, q);
            let mut rng = 0xbe5466cf34e90c6cu64 ^ (n as u64);
            let orig: Vec<u64> = (0..n)
                .map(|_| {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    rng % q
                })
                .collect();
            let mut sv = orig.clone();
            let mut iv = orig.clone();
            c.forward_simd(&mut sv);
            c.forward_ifma(&mut iv);
            assert_eq!(sv, iv, "forward mismatch at n={n}");
            c.inverse_simd(&mut sv);
            c.inverse_ifma(&mut iv);
            assert_eq!(sv, iv, "inverse mismatch at n={n}");
            assert_eq!(iv, orig, "roundtrip mismatch at n={n}");
        }
    }

    #[test]
    fn env_value_parsing_is_total() {
        assert_eq!(NttKernel::parse_env_value(None), Ok(None));
        assert_eq!(NttKernel::parse_env_value(Some("")), Ok(None));
        assert_eq!(NttKernel::parse_env_value(Some("auto")), Ok(None));
        assert_eq!(NttKernel::parse_env_value(Some("AUTO")), Ok(None));
        assert_eq!(
            NttKernel::parse_env_value(Some("simd")),
            Ok(Some(NttKernel::Simd))
        );
        assert_eq!(
            NttKernel::parse_env_value(Some("Radix4")),
            Ok(Some(NttKernel::Radix4))
        );
        let err = NttKernel::parse_env_value(Some("radix16")).unwrap_err();
        assert_eq!(err.value, "radix16");
        let msg = err.to_string();
        assert!(msg.contains("radix16") && msg.contains(KERNEL_ENV), "{msg}");
    }

    #[test]
    fn simd_matches_radix4_across_schedules() {
        // 2^12 exercises the small fused walk, 2^13 the blocked walk
        // with a single tail stage, 2^14 the fused cross-block pair.
        for log_n in [12usize, 13, 14] {
            let n = 1 << log_n;
            let c = ctx(n);
            let mut rng = 0x13198a2e03707344u64 ^ (n as u64);
            let orig: Vec<u64> = (0..n)
                .map(|_| {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    rng % c.modulus()
                })
                .collect();
            let mut r4 = orig.clone();
            let mut sv = orig.clone();
            c.forward_radix4(&mut r4);
            c.forward_simd(&mut sv);
            assert_eq!(r4, sv, "forward mismatch at n={n}");
            c.inverse_radix4(&mut r4);
            c.inverse_simd(&mut sv);
            assert_eq!(r4, sv, "inverse mismatch at n={n}");
            assert_eq!(sv, orig, "roundtrip mismatch at n={n}");
        }
    }

    #[test]
    fn try_new_reports_typed_errors() {
        let q = generate_ntt_prime(64, 40).unwrap();
        assert_eq!(
            NttContext::try_new(48, q).unwrap_err(),
            NttError::DimNotPowerOfTwo { n: 48 }
        );
        assert_eq!(
            NttContext::try_new(64, 0).unwrap_err(),
            NttError::ModulusOutOfRange { q: 0 }
        );
        assert_eq!(
            NttContext::try_new(64, 1 << 62).unwrap_err(),
            NttError::ModulusOutOfRange { q: 1 << 62 }
        );
        // 513 = 27·19 is ≡ 1 mod 128, so compositeness is what trips.
        assert_eq!(
            NttContext::try_new(64, 513).unwrap_err(),
            NttError::ModulusNotPrime { q: 513 }
        );
        // A prime that is not 1 mod 2n: 2^31 - 1 (Mersenne).
        assert_eq!(
            NttContext::try_new(64, (1 << 31) - 1).unwrap_err(),
            NttError::NotNttFriendly {
                n: 64,
                q: (1 << 31) - 1
            }
        );
        // ψ = 1 is never a primitive 2N-th root for N > 1.
        assert_eq!(
            NttContext::try_with_psi(64, q, 1).unwrap_err(),
            NttError::PsiNotPrimitive { psi: 1, q }
        );
        assert!(NttContext::try_new(64, q).is_ok());
    }

    #[test]
    fn radix4_matches_radix2_above_and_below_block() {
        // 2^12 exercises the degenerate (single-block) path, 2^13 the
        // single-tail-stage path, 2^14 the fused cross-block pair.
        for log_n in [12usize, 13, 14] {
            let n = 1 << log_n;
            let c = ctx(n);
            let mut rng = 0x243f6a8885a308d3u64 ^ (n as u64);
            let orig: Vec<u64> = (0..n)
                .map(|_| {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    rng % c.modulus()
                })
                .collect();
            let mut r2 = orig.clone();
            let mut r4 = orig.clone();
            c.forward_radix2(&mut r2);
            c.forward_radix4(&mut r4);
            assert_eq!(r2, r4, "forward mismatch at n={n}");
            c.inverse_radix2(&mut r2);
            c.inverse_radix4(&mut r4);
            assert_eq!(r2, r4, "inverse mismatch at n={n}");
            assert_eq!(r2, orig, "roundtrip mismatch at n={n}");
        }
    }

    #[test]
    fn forced_kernels_agree_on_negacyclic_mul() {
        let n = 64;
        let base = ctx(n);
        let a = Poly::from_coeffs((0..n as u64).map(|i| i * 17 + 3).collect(), base.modulus());
        let b = Poly::from_coeffs((0..n as u64).map(|i| i * 5 + 9).collect(), base.modulus());
        let expect = a.negacyclic_mul_schoolbook(&b);
        for k in NttKernel::ALL {
            let c = base.clone().with_kernel(k);
            assert_eq!(c.kernel(), k);
            assert_eq!(c.negacyclic_mul(&a, &b), expect, "kernel {k}");
        }
    }

    #[test]
    fn cyclic_roundtrip_stays_reduced() {
        let n = 64;
        let c = ctx(n);
        let orig: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 5) % c.modulus()).collect();
        let mut a = orig.clone();
        c.forward_cyclic(&mut a);
        assert!(a.iter().all(|&v| v < c.modulus()));
        c.inverse_cyclic(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn ntt_mul_matches_schoolbook() {
        let n = 32;
        let c = ctx(n);
        let a = Poly::from_coeffs((0..n as u64).map(|i| i * i + 3).collect(), c.modulus());
        let b = Poly::from_coeffs((0..n as u64).map(|i| 5 * i + 11).collect(), c.modulus());
        assert_eq!(c.negacyclic_mul(&a, &b), a.negacyclic_mul_schoolbook(&b));
        assert_eq!(
            c.negacyclic_mul_reference(&a, &b),
            a.negacyclic_mul_schoolbook(&b)
        );
    }

    #[test]
    fn mul_assign_variants_match_out_of_place() {
        let n = 64;
        let c = ctx(n);
        let a = Poly::from_coeffs((0..n as u64).map(|i| i * 13 + 7).collect(), c.modulus());
        let b = Poly::from_coeffs((0..n as u64).map(|i| i * 3 + 1).collect(), c.modulus());
        let expected = c.negacyclic_mul(&a, &b);

        let mut x = a.clone();
        c.negacyclic_mul_assign(&mut x, &b);
        assert_eq!(x, expected);

        let mut y = a.clone();
        let b_eval = c.to_eval(&b);
        c.negacyclic_mul_assign_eval(&mut y, &b_eval);
        assert_eq!(y, expected);
    }

    #[test]
    fn eval_of_monomial_x_is_odd_psi_powers_permuted() {
        // NTT(X) must be the multiset { psi^(2i+1) } since the
        // evaluation points are the primitive 2N-th roots.
        let n = 16;
        let c = ctx(n);
        let x = Poly::monomial(1, 1, n, c.modulus());
        let eval = c.to_eval(&x);
        let mut expected: Vec<u64> = (0..n)
            .map(|i| pow_mod(c.psi(), (2 * i + 1) as u64, c.modulus()))
            .collect();
        let mut got = eval.coeffs().to_vec();
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn constant_poly_is_fixed_point() {
        let n = 8;
        let c = ctx(n);
        let k = Poly::from_coeffs(vec![42, 0, 0, 0, 0, 0, 0, 0], c.modulus());
        let eval = c.to_eval(&k);
        assert!(eval.coeffs().iter().all(|&v| v == 42));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(seed in any::<u64>()) {
            let n = 64;
            let c = ctx(n);
            let mut rng = seed;
            let orig: Vec<u64> = (0..n).map(|_| {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                rng % c.modulus()
            }).collect();
            let mut a = orig.clone();
            c.forward(&mut a);
            c.inverse(&mut a);
            prop_assert_eq!(a, orig);
        }

        #[test]
        fn prop_lazy_forward_matches_reference(seed in any::<u64>()) {
            let n = 64;
            let c = ctx(n);
            let mut rng = seed | 1;
            let orig: Vec<u64> = (0..n).map(|_| {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                rng % c.modulus()
            }).collect();
            let mut fast = orig.clone();
            let mut slow = orig;
            c.forward(&mut fast);
            c.forward_reference(&mut slow);
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_mul_commutes(seed in any::<u64>()) {
            let n = 32;
            let c = ctx(n);
            let mut rng = seed | 1;
            let mut next = || {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                rng % c.modulus()
            };
            let a = Poly::from_coeffs((0..n).map(|_| next()).collect(), c.modulus());
            let b = Poly::from_coeffs((0..n).map(|_| next()).collect(), c.modulus());
            prop_assert_eq!(c.negacyclic_mul(&a, &b), c.negacyclic_mul(&b, &a));
        }

        #[test]
        fn prop_mul_distributes_over_add(seed in any::<u64>()) {
            let n = 16;
            let c = ctx(n);
            let mut rng = seed | 1;
            let mut next = || {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                rng % c.modulus()
            };
            let a = Poly::from_coeffs((0..n).map(|_| next()).collect(), c.modulus());
            let b = Poly::from_coeffs((0..n).map(|_| next()).collect(), c.modulus());
            let d = Poly::from_coeffs((0..n).map(|_| next()).collect(), c.modulus());
            let lhs = c.negacyclic_mul(&a, &b.add(&d));
            let rhs = c.negacyclic_mul(&a, &b).add(&c.negacyclic_mul(&a, &d));
            prop_assert_eq!(lhs, rhs);
        }
    }
}
