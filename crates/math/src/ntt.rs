//! Classical iterative radix-2 number-theoretic transform over
//! `Z_q[X]/(X^N + 1)`.
//!
//! This is the reference transform: natural-order in, natural-order
//! out, negacyclic via the `2N`-th root `ψ` (pre/post scaling). The
//! constant-geometry variant UFC's interconnect is designed around
//! lives in [`crate::cgntt`] and is validated against this one.

use crate::modops::{add_mod, inv_mod, mul_mod, pow_mod, sub_mod};
use crate::poly::Poly;
use crate::prime::primitive_root_of_unity;

/// Precomputed tables for NTTs of a fixed `(N, q)` pair.
#[derive(Debug, Clone)]
pub struct NttContext {
    n: usize,
    q: u64,
    /// ψ: primitive 2N-th root of unity.
    psi: u64,
    /// ψ^i for i in 0..N (negacyclic pre-twist).
    psi_pows: Vec<u64>,
    /// ψ^{-i} for i in 0..N.
    psi_inv_pows: Vec<u64>,
    /// ω = ψ² powers: ω^i for i in 0..N.
    omega_pows: Vec<u64>,
    /// ω^{-i} for i in 0..N.
    omega_inv_pows: Vec<u64>,
    /// N^{-1} mod q.
    n_inv: u64,
}

impl NttContext {
    /// Builds tables for ring dimension `n` (a power of two) and an
    /// NTT-friendly prime `q ≡ 1 mod 2n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `q` is not ≡ 1 mod 2n.
    pub fn new(n: usize, q: u64) -> Self {
        assert!(n.is_power_of_two(), "ring dimension must be a power of two");
        assert_eq!((q - 1) % (2 * n as u64), 0, "q must be 1 mod 2N");
        let psi = primitive_root_of_unity(2 * n as u64, q);
        Self::with_psi(n, q, psi)
    }

    /// Builds tables using a caller-chosen 2N-th root `psi`.
    ///
    /// Used by the automorphism-via-NTT trick (§IV-C2), which swaps ψ
    /// for ψ^k to fold a Galois automorphism into the transform.
    ///
    /// # Panics
    ///
    /// Panics if `psi` is not a primitive 2N-th root of unity mod `q`.
    pub fn with_psi(n: usize, q: u64, psi: u64) -> Self {
        assert_eq!(pow_mod(psi, 2 * n as u64, q), 1, "psi^2N must be 1");
        assert_eq!(pow_mod(psi, n as u64, q), q - 1, "psi^N must be -1");
        let mut psi_pows = Vec::with_capacity(n);
        let mut omega_pows = Vec::with_capacity(n);
        let omega = mul_mod(psi, psi, q);
        let mut p = 1u64;
        let mut w = 1u64;
        for _ in 0..n {
            psi_pows.push(p);
            omega_pows.push(w);
            p = mul_mod(p, psi, q);
            w = mul_mod(w, omega, q);
        }
        let psi_inv = inv_mod(psi, q).expect("psi invertible");
        let omega_inv = inv_mod(omega, q).expect("omega invertible");
        let mut psi_inv_pows = Vec::with_capacity(n);
        let mut omega_inv_pows = Vec::with_capacity(n);
        let mut p = 1u64;
        let mut w = 1u64;
        for _ in 0..n {
            psi_inv_pows.push(p);
            omega_inv_pows.push(w);
            p = mul_mod(p, psi_inv, q);
            w = mul_mod(w, omega_inv, q);
        }
        let n_inv = inv_mod(n as u64, q).expect("N invertible");
        Self {
            n,
            q,
            psi,
            psi_pows,
            psi_inv_pows,
            omega_pows,
            omega_inv_pows,
            n_inv,
        }
    }

    /// Ring dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Coefficient modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// The 2N-th root ψ in use.
    #[inline]
    pub fn psi(&self) -> u64 {
        self.psi
    }

    /// In-place cyclic NTT (natural order in and out), ω = ψ².
    pub fn forward_cyclic(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        bit_reverse_permute(a);
        let q = self.q;
        let mut len = 2;
        while len <= self.n {
            let step = self.n / len;
            for start in (0..self.n).step_by(len) {
                for j in 0..len / 2 {
                    let w = self.omega_pows[j * step];
                    let u = a[start + j];
                    let v = mul_mod(a[start + j + len / 2], w, q);
                    a[start + j] = add_mod(u, v, q);
                    a[start + j + len / 2] = sub_mod(u, v, q);
                }
            }
            len <<= 1;
        }
    }

    /// In-place cyclic inverse NTT (natural order in and out).
    pub fn inverse_cyclic(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        bit_reverse_permute(a);
        let q = self.q;
        let mut len = 2;
        while len <= self.n {
            let step = self.n / len;
            for start in (0..self.n).step_by(len) {
                for j in 0..len / 2 {
                    let w = self.omega_inv_pows[j * step];
                    let u = a[start + j];
                    let v = mul_mod(a[start + j + len / 2], w, q);
                    a[start + j] = add_mod(u, v, q);
                    a[start + j + len / 2] = sub_mod(u, v, q);
                }
            }
            len <<= 1;
        }
        for x in a.iter_mut() {
            *x = mul_mod(*x, self.n_inv, q);
        }
    }

    /// Negacyclic forward NTT: coefficient form → evaluation form.
    ///
    /// Evaluation point `i` is `ψ^(2i+1)` (odd powers), matching the
    /// factorization of `X^N + 1`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        for (i, x) in a.iter_mut().enumerate() {
            *x = mul_mod(*x, self.psi_pows[i], self.q);
        }
        self.forward_cyclic(a);
    }

    /// Negacyclic inverse NTT: evaluation form → coefficient form.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        self.inverse_cyclic(a);
        for (i, x) in a.iter_mut().enumerate() {
            *x = mul_mod(*x, self.psi_inv_pows[i], self.q);
        }
    }

    /// Converts a polynomial to evaluation form (out of place).
    pub fn to_eval(&self, p: &Poly) -> Poly {
        let mut c = p.coeffs().to_vec();
        self.forward(&mut c);
        Poly::from_coeffs(c, self.q)
    }

    /// Converts a polynomial back to coefficient form (out of place).
    pub fn to_coeff(&self, p: &Poly) -> Poly {
        let mut c = p.coeffs().to_vec();
        self.inverse(&mut c);
        Poly::from_coeffs(c, self.q)
    }

    /// Negacyclic polynomial product via NTT:
    /// `iNTT(NTT(a) ∘ NTT(b))`.
    pub fn negacyclic_mul(&self, a: &Poly, b: &Poly) -> Poly {
        let ea = self.to_eval(a);
        let eb = self.to_eval(b);
        self.to_coeff(&ea.hadamard(&eb))
    }
}

/// In-place bit-reversal permutation.
pub fn bit_reverse_permute<T>(a: &mut [T]) {
    let n = a.len();
    debug_assert!(n.is_power_of_two());
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if i < j {
            a.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::generate_ntt_prime;
    use proptest::prelude::*;

    fn ctx(n: usize) -> NttContext {
        NttContext::new(n, generate_ntt_prime(n, 40).unwrap())
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for log_n in [3usize, 6, 10] {
            let n = 1 << log_n;
            let c = ctx(n);
            let orig: Vec<u64> = (0..n as u64).map(|i| i * 7 + 1).collect();
            let mut a = orig.clone();
            c.forward(&mut a);
            assert_ne!(a, orig, "transform must change data");
            c.inverse(&mut a);
            assert_eq!(a, orig);
        }
    }

    #[test]
    fn ntt_mul_matches_schoolbook() {
        let n = 32;
        let c = ctx(n);
        let a = Poly::from_coeffs((0..n as u64).map(|i| i * i + 3).collect(), c.modulus());
        let b = Poly::from_coeffs((0..n as u64).map(|i| 5 * i + 11).collect(), c.modulus());
        assert_eq!(c.negacyclic_mul(&a, &b), a.negacyclic_mul_schoolbook(&b));
    }

    #[test]
    fn eval_of_monomial_x_is_odd_psi_powers_permuted() {
        // NTT(X) must be the multiset { psi^(2i+1) } since the
        // evaluation points are the primitive 2N-th roots.
        let n = 16;
        let c = ctx(n);
        let x = Poly::monomial(1, 1, n, c.modulus());
        let eval = c.to_eval(&x);
        let mut expected: Vec<u64> = (0..n)
            .map(|i| pow_mod(c.psi(), (2 * i + 1) as u64, c.modulus()))
            .collect();
        let mut got = eval.coeffs().to_vec();
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn constant_poly_is_fixed_point() {
        let n = 8;
        let c = ctx(n);
        let k = Poly::from_coeffs(vec![42, 0, 0, 0, 0, 0, 0, 0], c.modulus());
        let eval = c.to_eval(&k);
        assert!(eval.coeffs().iter().all(|&v| v == 42));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(seed in any::<u64>()) {
            let n = 64;
            let c = ctx(n);
            let mut rng = seed;
            let orig: Vec<u64> = (0..n).map(|_| {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                rng % c.modulus()
            }).collect();
            let mut a = orig.clone();
            c.forward(&mut a);
            c.inverse(&mut a);
            prop_assert_eq!(a, orig);
        }

        #[test]
        fn prop_mul_commutes(seed in any::<u64>()) {
            let n = 32;
            let c = ctx(n);
            let mut rng = seed | 1;
            let mut next = || {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                rng % c.modulus()
            };
            let a = Poly::from_coeffs((0..n).map(|_| next()).collect(), c.modulus());
            let b = Poly::from_coeffs((0..n).map(|_| next()).collect(), c.modulus());
            prop_assert_eq!(c.negacyclic_mul(&a, &b), c.negacyclic_mul(&b, &a));
        }

        #[test]
        fn prop_mul_distributes_over_add(seed in any::<u64>()) {
            let n = 16;
            let c = ctx(n);
            let mut rng = seed | 1;
            let mut next = || {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                rng % c.modulus()
            };
            let a = Poly::from_coeffs((0..n).map(|_| next()).collect(), c.modulus());
            let b = Poly::from_coeffs((0..n).map(|_| next()).collect(), c.modulus());
            let d = Poly::from_coeffs((0..n).map(|_| next()).collect(), c.modulus());
            let lhs = c.negacyclic_mul(&a, &b.add(&d));
            let rhs = c.negacyclic_mul(&a, &b).add(&c.negacyclic_mul(&a, &d));
            prop_assert_eq!(lhs, rhs);
        }
    }
}
