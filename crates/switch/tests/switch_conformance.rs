//! Scheme-switch conformance across NTT kernel generations.
//!
//! Two pins, both run once per NTT kernel:
//!
//! * **Extraction**: `extract_batch` must be **bit-identical** to the
//!   per-index `extract` path for random index sets — the batched
//!   digit-major accumulation is an exact reordering of the per-index
//!   `Z_q` sums, so every mask word and body must match.
//! * **Repacking**: BSGS `repack` must agree with the naive n-step
//!   `repack_naive` within the existing 0.02 slot tolerance (hoisted
//!   rotations differ from plain ones only by key-switching noise).
//!
//! When `UFC_NTT_KERNEL` is set (the CI kernel matrix), the sweep runs
//! once under that ambient kernel; otherwise it iterates all five
//! kernels itself (the 31/36-bit moduli here sit inside the IFMA
//! window, so the fifth generation runs everywhere — portable mirror
//! lanes on hosts without AVX-512 IFMA).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ufc_ckks::{CkksContext, Evaluator as CkksEvaluator, KeySet, SecretKey};
use ufc_math::ntt::{NttKernel, KERNEL_ENV};
use ufc_switch::{CkksToLwe, LweToCkks};
use ufc_tfhe::{LweCiphertext, TfheContext, TfheKeys};

/// Extraction conformance under one kernel: random index sets must
/// produce bit-identical LWEs on both paths.
fn extract_sweep(kernel: NttKernel) {
    let ckks_ctx = CkksContext::new(64, 3, 2, 2, 36, 34).with_ntt_kernel(kernel);
    let mut rng = StdRng::seed_from_u64(0x5EED0 + kernel as u64);
    let sk = SecretKey::generate(&ckks_ctx, &mut rng);
    let keys = KeySet::generate(&ckks_ctx, &sk, &mut rng);
    let tfhe_ctx = TfheContext::new(64, 256, 7, 3, 6, 4).with_ntt_kernel(kernel);
    let tfhe_keys = TfheKeys::generate(&tfhe_ctx, &mut rng);
    let bridge = CkksToLwe::new(&ckks_ctx, &sk, &tfhe_ctx, &tfhe_keys, &mut rng);
    let n = ckks_ctx.n();
    let ev = CkksEvaluator::new(ckks_ctx);

    let messages: Vec<u64> = (0..n as u64).map(|i| (i * 5) % 8).collect();
    let pt = ufc_switch::extract::encode_coefficients(ev.context(), &messages, 8);
    let ct = ev.encrypt_plaintext(&pt, &keys, ev.context().max_level(), &mut rng);

    for round in 0..12 {
        let len = rng.gen_range(1..=16);
        let indices: Vec<usize> = (0..len).map(|_| rng.gen_range(0..n)).collect();
        let per_index = bridge
            .extract(&ev, &ct, &indices, &tfhe_ctx)
            .expect("indices in range");
        let batched = bridge
            .extract_batch(&ev, &ct, &indices, &tfhe_ctx)
            .expect("indices in range");
        assert_eq!(
            per_index, batched,
            "batched extraction diverged from the per-index path under \
             {kernel} kernel, round {round}, indices {indices:?}"
        );
    }
}

/// An LWE with reduced-range masks so repack wrap counts stay small
/// (same construction the repack unit tests use).
fn small_mask_lwe<R: Rng + ?Sized>(
    ctx: &TfheContext,
    keys: &TfheKeys,
    m: u64,
    rng: &mut R,
) -> LweCiphertext {
    let q = ctx.q();
    let a: Vec<u64> = (0..ctx.lwe_dim())
        .map(|_| rng.gen_range(0..q / 64))
        .collect();
    let dot = a.iter().zip(&keys.lwe_sk).fold(0u64, |acc, (&ai, &si)| {
        ufc_math::modops::add_mod(acc, ufc_math::modops::mul_mod(ai, si, q), q)
    });
    let b = ufc_math::modops::add_mod(dot, ctx.encode(m, 16), q);
    LweCiphertext { a, b, q }
}

/// Repack conformance under one kernel: BSGS within 0.02 of naive,
/// and the BSGS key set stays O(√n).
fn repack_sweep(kernel: NttKernel) {
    let ckks_ctx = CkksContext::new(32, 9, 3, 3, 36, 34).with_ntt_kernel(kernel);
    let mut rng = StdRng::seed_from_u64(0xF00D0 + kernel as u64);
    let sk = SecretKey::generate(&ckks_ctx, &mut rng);
    let mut keys = KeySet::generate(&ckks_ctx, &sk, &mut rng);
    let tfhe_ctx = TfheContext::new(16, 64, 7, 3, 6, 4).with_ntt_kernel(kernel);
    let tfhe_keys = TfheKeys::generate(&tfhe_ctx, &mut rng);
    let ev = CkksEvaluator::new(ckks_ctx);
    let before = keys.rotation_key_count();
    let bridge = LweToCkks::new(&ev, &mut keys, &sk, &tfhe_keys, &mut rng).expect("shapes fit");
    let n = tfhe_ctx.lwe_dim();
    let added = keys.rotation_key_count() - before;
    assert!(
        added <= 2 * (n as f64).sqrt().ceil() as usize && added < n - 1,
        "BSGS key count {added} not O(sqrt {n}) under {kernel} kernel"
    );
    bridge.gen_naive_rotation_keys(&ev, &mut keys, &sk, &mut rng);

    for round in 0..4 {
        let count = rng.gen_range(1..=8);
        let lwes: Vec<LweCiphertext> = (0..count)
            .map(|_| small_mask_lwe(&tfhe_ctx, &tfhe_keys, rng.gen_range(0..16), &mut rng))
            .collect();
        let fast = bridge
            .repack(&ev, &keys, &lwes, &tfhe_ctx)
            .expect("shapes fit");
        let slow = bridge
            .repack_naive(&ev, &keys, &lwes, &tfhe_ctx)
            .expect("shapes fit");
        let df = ev.decrypt_real(&fast, &sk);
        let ds = ev.decrypt_real(&slow, &sk);
        for (j, (f, s)) in df.iter().zip(&ds).enumerate() {
            assert!(
                (f - s).abs() < 0.02,
                "BSGS repack drifted from naive under {kernel} kernel, \
                 round {round}, slot {j}: bsgs {f} naive {s}"
            );
        }
    }
}

#[test]
fn switch_paths_conform_under_every_kernel() {
    // Under the CI kernel matrix the ambient kernel is forced via the
    // environment and the matrix legs jointly cover all kernels.
    if std::env::var_os(KERNEL_ENV).is_some() {
        let ambient = NttKernel::from_env()
            .expect("kernel matrix leg set a malformed UFC_NTT_KERNEL")
            .expect("KERNEL_ENV is set on this branch");
        extract_sweep(ambient);
        repack_sweep(ambient);
        return;
    }
    for kernel in NttKernel::ALL {
        extract_sweep(kernel);
        repack_sweep(kernel);
    }
}
