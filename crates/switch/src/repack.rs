//! Repacking: TFHE LWE ciphertexts → one CKKS RLWE ciphertext
//! (§II-D, Pegasus-style).
//!
//! Given LWEs `(a_j, b_j)` under the TFHE small key `s`, the packed
//! slot values are the phases `μ_j = (b_j − <a_j, s>)/q_t`. With a
//! CKKS encryption of `s` (the *repacking key*), the phase evaluation
//! is a homomorphic linear transform with the plaintext matrix
//! `−A/q_t` plus the plaintext vector `b/q_t`. The result equals
//! `μ_j − κ_j` for integer wrap counts `κ_j`; the final sine-based
//! modular reduction (the "bootstrapping" of the repacking algorithm)
//! removes the integer part.

use rand::Rng;
use ufc_ckks::bootstrap::eval_poly;
use ufc_ckks::{Ciphertext as CkksCiphertext, Evaluator as CkksEvaluator, KeySet, SecretKey};
use ufc_isa::trace::TraceOp;
use ufc_math::modops::to_signed;
use ufc_tfhe::{LweCiphertext, TfheContext, TfheKeys};

/// The repacking bridge: a CKKS encryption of the TFHE small key plus
/// the rotation steps needed by the mat-vec transform.
#[derive(Debug)]
pub struct LweToCkks {
    /// CKKS encryption of the TFHE key bits, one per slot (cycled to
    /// fill all slots so rotations wrap consistently).
    key_ct: CkksCiphertext,
    /// TFHE LWE dimension `n`.
    lwe_dim: usize,
}

impl LweToCkks {
    /// Encrypts the TFHE key under CKKS (trusted setup step) and
    /// ensures the rotation keys used by the transform exist.
    pub fn new<R: Rng + ?Sized>(
        ev: &CkksEvaluator,
        ckks_keys: &mut KeySet,
        ckks_sk: &SecretKey,
        tfhe_keys: &TfheKeys,
        rng: &mut R,
    ) -> Self {
        let slots = ev.context().slots();
        let n = tfhe_keys.lwe_sk.len();
        assert!(n <= slots, "TFHE key must fit in the slot count");
        // Cyclically repeat the key so every rotation of the slot
        // vector still aligns key bit (j+i) mod n with slot j.
        assert!(
            slots.is_multiple_of(n),
            "slot count must be a multiple of the LWE dimension"
        );
        let key_vals: Vec<f64> = (0..slots).map(|j| tfhe_keys.lwe_sk[j % n] as f64).collect();
        let key_ct = ev.encrypt_real(&key_vals, ckks_keys, rng);
        // Rotation keys for steps 1..n (diagonal method).
        let ctx = ev.context().clone();
        for step in 1..n {
            ckks_keys.gen_rotation_key(&ctx, ckks_sk, step as isize, rng);
        }
        Self { key_ct, lwe_dim: n }
    }

    /// Repacks `lwes` (all under the TFHE small key) into a CKKS
    /// ciphertext whose slot `j` holds `μ_j − κ_j` (phase in torus
    /// units, with integer wrap `κ_j`). Call
    /// [`LweToCkks::mod_reduce`] afterwards to strip the wraps.
    ///
    /// # Panics
    ///
    /// Panics if more LWEs than slots are supplied.
    pub fn repack(
        &self,
        ev: &CkksEvaluator,
        ckks_keys: &KeySet,
        lwes: &[LweCiphertext],
        tfhe_ctx: &TfheContext,
    ) -> CkksCiphertext {
        let _span = ufc_trace::span_n("switch", "repack", lwes.len() as u64);
        let slots = ev.context().slots();
        assert!(lwes.len() <= slots, "too many LWEs for the slot count");
        ev.record_public(TraceOp::Repack {
            count: lwes.len() as u32,
            level: self.key_ct.level as u32,
        });
        let qt = tfhe_ctx.q() as f64;
        let n = self.lwe_dim;
        // Diagonal method over rotation steps 0..n:
        //   out_j = Σ_i (−a_{j,(j+i) mod n}/q_t) · s_{(j+i) mod n}.
        let mut acc: Option<CkksCiphertext> = None;
        for shift in 0..n {
            let diag: Vec<f64> = (0..slots)
                .map(|j| {
                    lwes.get(j)
                        .map(|lwe| {
                            let a = lwe.a[(j + shift) % n];
                            -(to_signed(a, tfhe_ctx.q()) as f64) / qt
                        })
                        .unwrap_or(0.0)
                })
                .collect();
            if diag.iter().all(|&d| d == 0.0) {
                continue;
            }
            let rotated = if shift == 0 {
                self.key_ct.clone()
            } else {
                ev.rotate(&self.key_ct, shift as isize, ckks_keys)
            };
            let pt = ev.encode_real(&diag, rotated.level);
            let term = ev.mul_plain(&rotated, &pt);
            acc = Some(match acc {
                Some(a) => ev.add(&a, &term),
                None => term,
            });
        }
        let matvec = ev.rescale(&acc.expect("at least one non-zero diagonal"));
        // Add the plaintext b_j/q_t.
        let b_vals: Vec<f64> = (0..slots)
            .map(|j| {
                lwes.get(j)
                    .map(|lwe| to_signed(lwe.b, tfhe_ctx.q()) as f64 / qt)
                    .unwrap_or(0.0)
            })
            .collect();
        let b_pt = ev.encode_real_at(&b_vals, matvec.level, matvec.scale);
        ev.add_plain(&matvec, &b_pt)
    }

    /// The sine-based modular reduction finishing the repack: maps
    /// slot values `t − κ` (integer κ, `|t| ≤ 1/8`) to ≈ `t`. This is
    /// the "bootstrapping" step of the repacking algorithm; it reuses
    /// the CKKS EvalMod machinery.
    pub fn mod_reduce(
        &self,
        ev: &CkksEvaluator,
        ckks_keys: &KeySet,
        ct: &CkksCiphertext,
    ) -> CkksCiphertext {
        let cfg = ufc_ckks::bootstrap::BootstrapConfig::default();
        let normalized = ev.adjust_scale(ct, ev.context().scale(), ct.level - 1);
        eval_poly(ev, &normalized, &cfg.sine_coeffs, ckks_keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ufc_ckks::CkksContext;

    /// Builds LWEs whose phases are exactly representable and whose
    /// wrap counts stay small (masks drawn from a reduced range so the
    /// degree-7 sine stays in its accurate domain — production uses a
    /// higher-degree EvalMod).
    fn small_mask_lwe<R: Rng + ?Sized>(
        ctx: &TfheContext,
        keys: &TfheKeys,
        m: u64,
        space: u64,
        rng: &mut R,
    ) -> LweCiphertext {
        let q = ctx.q();
        let range = q / 64; // small masks => |wrap| stays tiny
        let a: Vec<u64> = (0..ctx.lwe_dim())
            .map(|_| rng.gen_range(0..range))
            .collect();
        let dot = a.iter().zip(&keys.lwe_sk).fold(0u64, |acc, (&ai, &si)| {
            ufc_math::modops::add_mod(acc, ufc_math::modops::mul_mod(ai, si, q), q)
        });
        let b = ufc_math::modops::add_mod(dot, ctx.encode(m, space), q);
        LweCiphertext { a, b, q }
    }

    fn setup() -> (
        CkksEvaluator,
        SecretKey,
        KeySet,
        TfheContext,
        TfheKeys,
        LweToCkks,
        StdRng,
    ) {
        let ckks_ctx = CkksContext::new(32, 9, 3, 3, 36, 34);
        let mut rng = StdRng::seed_from_u64(91);
        let sk = SecretKey::generate(&ckks_ctx, &mut rng);
        let mut keys = KeySet::generate(&ckks_ctx, &sk, &mut rng);
        let tfhe_ctx = TfheContext::new(16, 64, 7, 3, 6, 4);
        let tfhe_keys = TfheKeys::generate(&tfhe_ctx, &mut rng);
        let ev = CkksEvaluator::new(ckks_ctx);
        let bridge = LweToCkks::new(&ev, &mut keys, &sk, &tfhe_keys, &mut rng);
        (ev, sk, keys, tfhe_ctx, tfhe_keys, bridge, rng)
    }

    #[test]
    fn repack_recovers_phases_up_to_wraps() {
        let (ev, sk, keys, tfhe_ctx, tfhe_keys, bridge, mut rng) = setup();
        let messages = [1u64, 0, 1, 1, 0, 1, 0, 0];
        let lwes: Vec<LweCiphertext> = messages
            .iter()
            .map(|&m| small_mask_lwe(&tfhe_ctx, &tfhe_keys, m, 16, &mut rng))
            .collect();
        let packed = bridge.repack(&ev, &keys, &lwes, &tfhe_ctx);
        let dec = ev.decrypt_real(&packed, &sk);
        for (j, &m) in messages.iter().enumerate() {
            // With reduced-range masks the wrap count is zero, so the
            // packed slot is the signed phase directly.
            let expect = if m > 8 {
                m as f64 / 16.0 - 1.0
            } else {
                m as f64 / 16.0
            };
            assert!(
                (dec[j] - expect).abs() < 0.02,
                "slot {j}: got {} want {expect}",
                dec[j]
            );
        }
    }

    #[test]
    fn repack_with_mod_reduce_recovers_values() {
        let (ev, sk, keys, tfhe_ctx, tfhe_keys, bridge, mut rng) = setup();
        // Messages near zero phase so |t| stays in the sine's domain.
        let messages = [0u64, 1, 15, 0, 1, 15, 0, 1];
        let lwes: Vec<LweCiphertext> = messages
            .iter()
            .map(|&m| small_mask_lwe(&tfhe_ctx, &tfhe_keys, m, 16, &mut rng))
            .collect();
        let packed = bridge.repack(&ev, &keys, &lwes, &tfhe_ctx);
        let reduced = bridge.mod_reduce(&ev, &keys, &packed);
        let dec = ev.decrypt_real(&reduced, &sk);
        for (j, &m) in messages.iter().enumerate() {
            // signed phase: 15/16 == -1/16.
            let expect = if m > 8 {
                m as f64 / 16.0 - 1.0
            } else {
                m as f64 / 16.0
            };
            assert!(
                (dec[j] - expect).abs() < 0.02,
                "slot {j}: got {} want {expect}",
                dec[j]
            );
        }
    }

    #[test]
    fn repack_records_trace() {
        let (ev, _sk, keys, tfhe_ctx, tfhe_keys, bridge, mut rng) = setup();
        let lwes = vec![small_mask_lwe(&tfhe_ctx, &tfhe_keys, 1, 16, &mut rng)];
        let _ = ev.take_trace();
        let _ = bridge.repack(&ev, &keys, &lwes, &tfhe_ctx);
        let tr = ev.take_trace();
        assert!(tr
            .ops
            .iter()
            .any(|op| matches!(op, TraceOp::Repack { count: 1, .. })));
    }
}
