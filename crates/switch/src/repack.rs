//! Repacking: TFHE LWE ciphertexts → one CKKS RLWE ciphertext
//! (§II-D, Pegasus-style).
//!
//! Given LWEs `(a_j, b_j)` under the TFHE small key `s`, the packed
//! slot values are the phases `μ_j = (b_j − <a_j, s>)/q_t`. With a
//! CKKS encryption of `s` (the *repacking key*), the phase evaluation
//! is a homomorphic linear transform with the plaintext matrix
//! `−A/q_t` plus the plaintext vector `b/q_t`. The result equals
//! `μ_j − κ_j` for integer wrap counts `κ_j`; the final sine-based
//! modular reduction (the "bootstrapping" of the repacking algorithm)
//! removes the integer part.
//!
//! The mat-vec runs baby-step/giant-step over the `n` diagonals:
//! with `n = g·b` (`g ≈ √n`), diagonal `k·g + j` becomes
//! `rot_{kg}(diag′_{k,j} ∘ rot_j(key))`, so only the `g − 1` baby
//! rotations of the repacking key (done **once**, via hoisting — one
//! decompose+ModUp for all of them) and `b − 1` giant rotations of the
//! inner sums are needed: `O(√n)` rotation keys instead of the naive
//! `n − 1`. [`LweToCkks::repack_naive`] keeps the n-step reference
//! path for conformance and benchmarking.

use crate::batch_tag;
use crate::error::SwitchError;
use rand::Rng;
use ufc_ckks::bootstrap::eval_poly;
use ufc_ckks::{Ciphertext as CkksCiphertext, Evaluator as CkksEvaluator, KeySet, SecretKey};
use ufc_isa::trace::TraceOp;
use ufc_math::modops::to_signed;
use ufc_tfhe::{LweCiphertext, TfheContext, TfheKeys};

/// The repacking bridge: a CKKS encryption of the TFHE small key plus
/// the BSGS split of the mat-vec transform.
#[derive(Debug)]
pub struct LweToCkks {
    /// CKKS encryption of the TFHE key bits, one per slot (cycled to
    /// fill all slots so rotations wrap consistently).
    key_ct: CkksCiphertext,
    /// TFHE LWE dimension `n`.
    lwe_dim: usize,
    /// Baby-step count `g ≈ √n` (rotations of the repacking key).
    baby: usize,
    /// Giant-step count `b = ⌈n/g⌉` (rotations of the inner sums).
    giant: usize,
}

impl LweToCkks {
    /// Encrypts the TFHE key under CKKS (trusted setup step) and
    /// generates the `O(√n)` BSGS rotation keys: baby steps `1..g`
    /// plus giant steps `g, 2g, …` — not the naive per-diagonal
    /// `1..n` set.
    ///
    /// # Errors
    ///
    /// [`SwitchError::KeyTooLarge`] if the TFHE key outruns the slot
    /// count, [`SwitchError::SlotCountNotMultiple`] if the slots can't
    /// cycle it evenly.
    pub fn new<R: Rng + ?Sized>(
        ev: &CkksEvaluator,
        ckks_keys: &mut KeySet,
        ckks_sk: &SecretKey,
        tfhe_keys: &TfheKeys,
        rng: &mut R,
    ) -> Result<Self, SwitchError> {
        let ctx = ev.context();
        let slots = ctx.slots();
        let n = tfhe_keys.lwe_sk.len();
        if n > slots {
            return Err(SwitchError::KeyTooLarge { lwe_dim: n, slots });
        }
        // Cyclically repeat the key so every rotation of the slot
        // vector still aligns key bit (j+i) mod n with slot j.
        if !slots.is_multiple_of(n) {
            return Err(SwitchError::SlotCountNotMultiple { slots, lwe_dim: n });
        }
        let key_vals: Vec<f64> = (0..slots).map(|j| tfhe_keys.lwe_sk[j % n] as f64).collect();
        let key_ct = ev.encrypt_real(&key_vals, ckks_keys, rng);
        let baby = (n as f64).sqrt().ceil() as usize;
        let giant = n.div_ceil(baby);
        for step in 1..baby {
            ckks_keys.gen_rotation_key(ctx, ckks_sk, step as isize, rng);
        }
        for k in 1..giant {
            ckks_keys.gen_rotation_key(ctx, ckks_sk, (k * baby) as isize, rng);
        }
        Ok(Self {
            key_ct,
            lwe_dim: n,
            baby,
            giant,
        })
    }

    /// The BSGS split `(baby steps g, giant steps b)` with `g·b ≥ n`.
    pub fn bsgs_split(&self) -> (usize, usize) {
        (self.baby, self.giant)
    }

    /// Generates the full naive per-diagonal rotation-key set
    /// (`1..n`), needed only to run [`LweToCkks::repack_naive`] — the
    /// conformance/benchmark reference. The fast path never needs
    /// these.
    pub fn gen_naive_rotation_keys<R: Rng + ?Sized>(
        &self,
        ev: &CkksEvaluator,
        ckks_keys: &mut KeySet,
        ckks_sk: &SecretKey,
        rng: &mut R,
    ) {
        for step in 1..self.lwe_dim {
            ckks_keys.gen_rotation_key(ev.context(), ckks_sk, step as isize, rng);
        }
    }

    /// Diagonal `s` of the transform matrix `−A/q_t`, cycled over the
    /// slot count. Slot `t` of diagonal `s` is `−a_{t,(t+s) mod n}/q_t`
    /// (zero past the supplied LWEs).
    fn diagonal(
        &self,
        lwes: &[LweCiphertext],
        tfhe_ctx: &TfheContext,
        s: usize,
        slots: usize,
    ) -> Vec<f64> {
        let qt = tfhe_ctx.q() as f64;
        let n = self.lwe_dim;
        (0..slots)
            .map(|t| {
                lwes.get(t)
                    .map(|lwe| {
                        let a = lwe.a[(t + s) % n];
                        -(to_signed(a, tfhe_ctx.q()) as f64) / qt
                    })
                    .unwrap_or(0.0)
            })
            .collect()
    }

    /// Shape checks shared by both repack paths.
    fn check_inputs(&self, lwes: &[LweCiphertext], slots: usize) -> Result<(), SwitchError> {
        if lwes.len() > slots {
            return Err(SwitchError::TooManyLwes {
                count: lwes.len(),
                slots,
            });
        }
        if let Some(bad) = lwes.iter().find(|lwe| lwe.dim() != self.lwe_dim) {
            return Err(SwitchError::LweDimensionMismatch {
                got: bad.dim(),
                expected: self.lwe_dim,
            });
        }
        Ok(())
    }

    /// Adds the plaintext `b_j/q_t` after the mat-vec and rescale.
    fn add_body(
        &self,
        ev: &CkksEvaluator,
        matvec: &CkksCiphertext,
        lwes: &[LweCiphertext],
        tfhe_ctx: &TfheContext,
        slots: usize,
    ) -> CkksCiphertext {
        let qt = tfhe_ctx.q() as f64;
        let b_vals: Vec<f64> = (0..slots)
            .map(|j| {
                lwes.get(j)
                    .map(|lwe| to_signed(lwe.b, tfhe_ctx.q()) as f64 / qt)
                    .unwrap_or(0.0)
            })
            .collect();
        let b_pt = ev.encode_real_at(&b_vals, matvec.level, matvec.scale);
        ev.add_plain(matvec, &b_pt)
    }

    /// Repacks `lwes` (all under the TFHE small key) into a CKKS
    /// ciphertext whose slot `j` holds `μ_j − κ_j` (phase in torus
    /// units, with integer wrap `κ_j`). Call
    /// [`LweToCkks::mod_reduce`] afterwards to strip the wraps.
    ///
    /// BSGS fast path: the baby rotations of the repacking key are
    /// hoisted (decompose+ModUp once), diagonal `kg+j` is pre-rotated
    /// in plaintext by `−kg` and folded into giant group `k`, and only
    /// `b − 1` ciphertext rotations of the inner sums follow.
    ///
    /// # Errors
    ///
    /// [`SwitchError::TooManyLwes`] /
    /// [`SwitchError::LweDimensionMismatch`] on shape mismatch,
    /// [`SwitchError::EmptyTransform`] if no diagonal is non-zero.
    pub fn repack(
        &self,
        ev: &CkksEvaluator,
        ckks_keys: &KeySet,
        lwes: &[LweCiphertext],
        tfhe_ctx: &TfheContext,
    ) -> Result<CkksCiphertext, SwitchError> {
        let _span =
            ufc_trace::span_full("switch", "repack", batch_tag(lwes.len()), lwes.len() as u64);
        let slots = ev.context().slots();
        self.check_inputs(lwes, slots)?;
        ev.record_public(TraceOp::Repack {
            count: lwes.len() as u32,
            level: self.key_ct.level as u32,
        });
        let n = self.lwe_dim;
        let (g, b) = (self.baby, self.giant);

        // Baby rotations of the repacking key, all from one hoisting.
        // Index 0 is the unrotated key itself (no clone: mul_plain
        // borrows).
        let hoisted = ev.hoist(&self.key_ct);
        let baby_rots: Vec<CkksCiphertext> = (1..g)
            .map(|j| ev.rotate_hoisted(&self.key_ct, &hoisted, j as isize, ckks_keys))
            .collect();

        let mut acc: Option<CkksCiphertext> = None;
        for k in 0..b {
            // Inner sum Σ_j diag′_{k,j} ∘ rot_j(key), where diag′ is
            // diagonal kg+j left-rotated by −kg in plaintext:
            // diag′[t] = diag_{kg+j}[(t − kg) mod slots].
            let mut inner: Option<CkksCiphertext> = None;
            for j in 0..g {
                let s = k * g + j;
                if s >= n {
                    break;
                }
                let diag = self.diagonal(lwes, tfhe_ctx, s, slots);
                let shifted: Vec<f64> = (0..slots)
                    .map(|t| diag[(t + slots - (k * g) % slots) % slots])
                    .collect();
                if shifted.iter().all(|&d| d == 0.0) {
                    continue;
                }
                let rotated = if j == 0 {
                    &self.key_ct
                } else {
                    &baby_rots[j - 1]
                };
                let pt = ev.encode_real(&shifted, rotated.level);
                let term = ev.mul_plain(rotated, &pt);
                inner = Some(match inner {
                    Some(acc) => ev.add(&acc, &term),
                    None => term,
                });
            }
            let Some(inner) = inner else { continue };
            let term = if k == 0 {
                inner
            } else {
                ev.rotate(&inner, (k * g) as isize, ckks_keys)
            };
            acc = Some(match acc {
                Some(a) => ev.add(&a, &term),
                None => term,
            });
        }
        let matvec = ev.rescale(&acc.ok_or(SwitchError::EmptyTransform)?);
        Ok(self.add_body(ev, &matvec, lwes, tfhe_ctx, slots))
    }

    /// The naive n-step diagonal reference path: one ciphertext
    /// rotation and one encode per non-zero diagonal. Needs the full
    /// `1..n` rotation-key set
    /// ([`LweToCkks::gen_naive_rotation_keys`]). Kept for conformance
    /// pinning and the old-vs-new benchmark.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LweToCkks::repack`].
    pub fn repack_naive(
        &self,
        ev: &CkksEvaluator,
        ckks_keys: &KeySet,
        lwes: &[LweCiphertext],
        tfhe_ctx: &TfheContext,
    ) -> Result<CkksCiphertext, SwitchError> {
        let _span = ufc_trace::span_full(
            "switch",
            "repack_naive",
            batch_tag(lwes.len()),
            lwes.len() as u64,
        );
        let slots = ev.context().slots();
        self.check_inputs(lwes, slots)?;
        ev.record_public(TraceOp::Repack {
            count: lwes.len() as u32,
            level: self.key_ct.level as u32,
        });
        let n = self.lwe_dim;
        // Diagonal method over rotation steps 0..n:
        //   out_j = Σ_i (−a_{j,(j+i) mod n}/q_t) · s_{(j+i) mod n}.
        let mut acc: Option<CkksCiphertext> = None;
        for shift in 0..n {
            let diag = self.diagonal(lwes, tfhe_ctx, shift, slots);
            if diag.iter().all(|&d| d == 0.0) {
                continue;
            }
            let rotated = if shift == 0 {
                self.key_ct.clone()
            } else {
                ev.rotate(&self.key_ct, shift as isize, ckks_keys)
            };
            let pt = ev.encode_real(&diag, rotated.level);
            let term = ev.mul_plain(&rotated, &pt);
            acc = Some(match acc {
                Some(a) => ev.add(&a, &term),
                None => term,
            });
        }
        let matvec = ev.rescale(&acc.ok_or(SwitchError::EmptyTransform)?);
        Ok(self.add_body(ev, &matvec, lwes, tfhe_ctx, slots))
    }

    /// The sine-based modular reduction finishing the repack: maps
    /// slot values `t − κ` (integer κ, `|t| ≤ 1/8`) to ≈ `t`. This is
    /// the "bootstrapping" step of the repacking algorithm; it reuses
    /// the CKKS EvalMod machinery.
    pub fn mod_reduce(
        &self,
        ev: &CkksEvaluator,
        ckks_keys: &KeySet,
        ct: &CkksCiphertext,
    ) -> CkksCiphertext {
        let cfg = ufc_ckks::bootstrap::BootstrapConfig::default();
        let normalized = ev.adjust_scale(ct, ev.context().scale(), ct.level - 1);
        eval_poly(ev, &normalized, &cfg.sine_coeffs, ckks_keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ufc_ckks::CkksContext;

    /// Builds LWEs whose phases are exactly representable and whose
    /// wrap counts stay small (masks drawn from a reduced range so the
    /// degree-7 sine stays in its accurate domain — production uses a
    /// higher-degree EvalMod).
    fn small_mask_lwe<R: Rng + ?Sized>(
        ctx: &TfheContext,
        keys: &TfheKeys,
        m: u64,
        space: u64,
        rng: &mut R,
    ) -> LweCiphertext {
        let q = ctx.q();
        let range = q / 64; // small masks => |wrap| stays tiny
        let a: Vec<u64> = (0..ctx.lwe_dim())
            .map(|_| rng.gen_range(0..range))
            .collect();
        let dot = a.iter().zip(&keys.lwe_sk).fold(0u64, |acc, (&ai, &si)| {
            ufc_math::modops::add_mod(acc, ufc_math::modops::mul_mod(ai, si, q), q)
        });
        let b = ufc_math::modops::add_mod(dot, ctx.encode(m, space), q);
        LweCiphertext { a, b, q }
    }

    fn setup() -> (
        CkksEvaluator,
        SecretKey,
        KeySet,
        TfheContext,
        TfheKeys,
        LweToCkks,
        StdRng,
    ) {
        let ckks_ctx = CkksContext::new(32, 9, 3, 3, 36, 34);
        let mut rng = StdRng::seed_from_u64(91);
        let sk = SecretKey::generate(&ckks_ctx, &mut rng);
        let mut keys = KeySet::generate(&ckks_ctx, &sk, &mut rng);
        let tfhe_ctx = TfheContext::new(16, 64, 7, 3, 6, 4);
        let tfhe_keys = TfheKeys::generate(&tfhe_ctx, &mut rng);
        let ev = CkksEvaluator::new(ckks_ctx);
        let bridge = LweToCkks::new(&ev, &mut keys, &sk, &tfhe_keys, &mut rng).unwrap();
        (ev, sk, keys, tfhe_ctx, tfhe_keys, bridge, rng)
    }

    #[test]
    fn repack_recovers_phases_up_to_wraps() {
        let (ev, sk, keys, tfhe_ctx, tfhe_keys, bridge, mut rng) = setup();
        let messages = [1u64, 0, 1, 1, 0, 1, 0, 0];
        let lwes: Vec<LweCiphertext> = messages
            .iter()
            .map(|&m| small_mask_lwe(&tfhe_ctx, &tfhe_keys, m, 16, &mut rng))
            .collect();
        let packed = bridge.repack(&ev, &keys, &lwes, &tfhe_ctx).unwrap();
        let dec = ev.decrypt_real(&packed, &sk);
        for (j, &m) in messages.iter().enumerate() {
            // With reduced-range masks the wrap count is zero, so the
            // packed slot is the signed phase directly.
            let expect = if m > 8 {
                m as f64 / 16.0 - 1.0
            } else {
                m as f64 / 16.0
            };
            assert!(
                (dec[j] - expect).abs() < 0.02,
                "slot {j}: got {} want {expect}",
                dec[j]
            );
        }
    }

    #[test]
    fn repack_with_mod_reduce_recovers_values() {
        let (ev, sk, keys, tfhe_ctx, tfhe_keys, bridge, mut rng) = setup();
        // Messages near zero phase so |t| stays in the sine's domain.
        let messages = [0u64, 1, 15, 0, 1, 15, 0, 1];
        let lwes: Vec<LweCiphertext> = messages
            .iter()
            .map(|&m| small_mask_lwe(&tfhe_ctx, &tfhe_keys, m, 16, &mut rng))
            .collect();
        let packed = bridge.repack(&ev, &keys, &lwes, &tfhe_ctx).unwrap();
        let reduced = bridge.mod_reduce(&ev, &keys, &packed);
        let dec = ev.decrypt_real(&reduced, &sk);
        for (j, &m) in messages.iter().enumerate() {
            // signed phase: 15/16 == -1/16.
            let expect = if m > 8 {
                m as f64 / 16.0 - 1.0
            } else {
                m as f64 / 16.0
            };
            assert!(
                (dec[j] - expect).abs() < 0.02,
                "slot {j}: got {} want {expect}",
                dec[j]
            );
        }
    }

    #[test]
    fn bsgs_matches_naive_within_tolerance() {
        let (ev, sk, mut keys, tfhe_ctx, tfhe_keys, bridge, mut rng) = setup();
        bridge.gen_naive_rotation_keys(&ev, &mut keys, &sk, &mut rng);
        let messages = [3u64, 0, 7, 12, 1, 15, 9, 4];
        let lwes: Vec<LweCiphertext> = messages
            .iter()
            .map(|&m| small_mask_lwe(&tfhe_ctx, &tfhe_keys, m, 16, &mut rng))
            .collect();
        let fast = bridge.repack(&ev, &keys, &lwes, &tfhe_ctx).unwrap();
        let slow = bridge.repack_naive(&ev, &keys, &lwes, &tfhe_ctx).unwrap();
        let df = ev.decrypt_real(&fast, &sk);
        let ds = ev.decrypt_real(&slow, &sk);
        for (j, (f, s)) in df.iter().zip(&ds).enumerate() {
            assert!((f - s).abs() < 0.02, "slot {j}: bsgs {f} naive {s}");
        }
    }

    #[test]
    fn bsgs_needs_only_sqrt_rotation_keys() {
        let ckks_ctx = CkksContext::new(32, 9, 3, 3, 36, 34);
        let mut rng = StdRng::seed_from_u64(92);
        let sk = SecretKey::generate(&ckks_ctx, &mut rng);
        let mut keys = KeySet::generate(&ckks_ctx, &sk, &mut rng);
        let tfhe_ctx = TfheContext::new(16, 64, 7, 3, 6, 4);
        let tfhe_keys = TfheKeys::generate(&tfhe_ctx, &mut rng);
        let ev = CkksEvaluator::new(ckks_ctx);
        let before = keys.rotation_key_count();
        let bridge = LweToCkks::new(&ev, &mut keys, &sk, &tfhe_keys, &mut rng).unwrap();
        let added = keys.rotation_key_count() - before;
        let n = tfhe_ctx.lwe_dim();
        let (g, b) = bridge.bsgs_split();
        assert!(g * b >= n, "BSGS split must cover all diagonals");
        let sqrt_bound = 2 * (n as f64).sqrt().ceil() as usize;
        assert!(
            added <= sqrt_bound,
            "BSGS generated {added} rotation keys, bound {sqrt_bound}"
        );
        assert!(
            added < n - 1,
            "BSGS must need fewer keys than the naive {} for n={n}",
            n - 1
        );
    }

    #[test]
    fn shape_mismatches_are_typed_errors() {
        let (ev, _sk, keys, tfhe_ctx, tfhe_keys, bridge, mut rng) = setup();
        let slots = ev.context().slots();
        let too_many: Vec<LweCiphertext> = (0..slots + 1)
            .map(|_| small_mask_lwe(&tfhe_ctx, &tfhe_keys, 0, 16, &mut rng))
            .collect();
        assert_eq!(
            bridge.repack(&ev, &keys, &too_many, &tfhe_ctx).unwrap_err(),
            SwitchError::TooManyLwes {
                count: slots + 1,
                slots
            }
        );
        let wrong_dim = LweCiphertext::trivial(0, 8, tfhe_ctx.q());
        assert_eq!(
            bridge
                .repack(&ev, &keys, &[wrong_dim], &tfhe_ctx)
                .unwrap_err(),
            SwitchError::LweDimensionMismatch {
                got: 8,
                expected: 16
            }
        );
        let trivial = LweCiphertext::trivial(0, 16, tfhe_ctx.q());
        assert_eq!(
            bridge
                .repack(&ev, &keys, &[trivial], &tfhe_ctx)
                .unwrap_err(),
            SwitchError::EmptyTransform
        );
    }

    #[test]
    fn repack_records_trace() {
        let (ev, _sk, keys, tfhe_ctx, tfhe_keys, bridge, mut rng) = setup();
        let lwes = vec![small_mask_lwe(&tfhe_ctx, &tfhe_keys, 1, 16, &mut rng)];
        let _ = ev.take_trace();
        let _ = bridge.repack(&ev, &keys, &lwes, &tfhe_ctx).unwrap();
        let tr = ev.take_trace();
        assert!(tr
            .ops
            .iter()
            .any(|op| matches!(op, TraceOp::Repack { count: 1, .. })));
    }
}
