//! End-to-end hybrid FHE programs (Fig. 1): CKKS for throughput
//! arithmetic, TFHE for exact non-linear functions, with both bridges
//! in between. Used functionally at test scale; the k-NN workload
//! generator mirrors this structure analytically at paper scale.

use crate::error::SwitchError;
use crate::extract::{encode_coefficients, CkksToLwe};
use rand::Rng;
use ufc_ckks::{CkksContext, Evaluator as CkksEvaluator, KeySet, SecretKey};
use ufc_isa::trace::Trace;
use ufc_math::poly::Poly;
use ufc_tfhe::{programmable_bootstrap, TfheContext, TfheKeys};

/// A complete hybrid environment: both schemes' contexts, keys and
/// the extraction bridge.
#[derive(Debug)]
pub struct HybridEnv {
    /// CKKS evaluator (with tracer).
    pub ckks: CkksEvaluator,
    /// CKKS secret key (kept for tests/decryption).
    pub ckks_sk: SecretKey,
    /// CKKS evaluation keys.
    pub ckks_keys: KeySet,
    /// TFHE context.
    pub tfhe: TfheContext,
    /// TFHE keys.
    pub tfhe_keys: TfheKeys,
    /// CKKS→LWE extraction bridge.
    pub bridge: CkksToLwe,
}

impl HybridEnv {
    /// Builds a hybrid environment at reduced (test) scale.
    pub fn new_test_scale<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let ckks_ctx = CkksContext::new(64, 3, 2, 2, 36, 34);
        let ckks_sk = SecretKey::generate(&ckks_ctx, rng);
        let ckks_keys = KeySet::generate(&ckks_ctx, &ckks_sk, rng);
        let tfhe = TfheContext::new(64, 256, 7, 3, 6, 4);
        let tfhe_keys = TfheKeys::generate(&tfhe, rng);
        let bridge = CkksToLwe::new(&ckks_ctx, &ckks_sk, &tfhe, &tfhe_keys, rng);
        Self {
            ckks: CkksEvaluator::new(ckks_ctx),
            ckks_sk,
            ckks_keys,
            tfhe,
            tfhe_keys,
            bridge,
        }
    }

    /// Runs the hybrid "argmin comparator" kernel at the heart of
    /// encrypted k-NN: distances are computed in CKKS (here:
    /// coefficient-packed inputs), then each candidate is extracted
    /// and compared against a threshold with one TFHE programmable
    /// bootstrap. Returns the decrypted comparator bits (for test
    /// validation) and the combined trace.
    ///
    /// # Errors
    ///
    /// Propagates [`SwitchError`] from the batched extraction (only
    /// possible if `values` outruns the ring dimension).
    pub fn threshold_compare<R: Rng + ?Sized>(
        &self,
        values: &[u64],
        threshold: u64,
        space: u64,
        rng: &mut R,
    ) -> Result<(Vec<bool>, Trace), SwitchError> {
        // CKKS stage: encrypt the (coefficient-packed) values. A full
        // k-NN would compute distances homomorphically first; the
        // workload generator models that part at paper scale.
        let pt = encode_coefficients(self.ckks.context(), values, space);
        let ct =
            self.ckks
                .encrypt_plaintext(&pt, &self.ckks_keys, self.ckks.context().max_level(), rng);
        // Scheme switch: extract one LWE per value on the batched fast
        // path (bit-identical to the per-index loop).
        let indices: Vec<usize> = (0..values.len()).collect();
        let lwes = self
            .bridge
            .extract_batch(&self.ckks, &ct, &indices, &self.tfhe)?;
        // TFHE stage: comparator LUT f(m) = (m >= threshold).
        let tv = comparator_test_vector(&self.tfhe, threshold, space);
        let bits: Vec<bool> = lwes
            .iter()
            .map(|lwe| {
                let out = programmable_bootstrap(&self.tfhe, &self.tfhe_keys, lwe, &tv);
                out.decrypt(&self.tfhe, &self.tfhe_keys.lwe_sk, space) == 1
            })
            .collect();
        Ok((bits, self.ckks.take_trace()))
    }
}

/// Test vector for the comparator `f(m) = 1 if m ≥ threshold else 0`
/// over messages `0..space/2`.
pub fn comparator_test_vector(ctx: &TfheContext, threshold: u64, space: u64) -> Poly {
    ufc_tfhe::lut_test_vector(ctx, move |m| u64::from(m >= threshold), space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hybrid_threshold_compare_end_to_end() {
        let mut rng = StdRng::seed_from_u64(101);
        let env = HybridEnv::new_test_scale(&mut rng);
        let values = [0u64, 1, 2, 3, 2, 1];
        let (bits, trace) = env.threshold_compare(&values, 2, 8, &mut rng).unwrap();
        let expect: Vec<bool> = values.iter().map(|&v| v >= 2).collect();
        assert_eq!(bits, expect);
        // The trace must show the scheme switch.
        assert!(trace
            .ops
            .iter()
            .any(|op| matches!(op, ufc_isa::trace::TraceOp::Extract { .. })));
    }

    #[test]
    fn comparator_lut_shape() {
        let ctx = TfheContext::new(16, 64, 7, 2, 6, 3);
        let tv = comparator_test_vector(&ctx, 2, 8);
        assert_eq!(tv.dim(), 64);
        // Low-phase region encodes 0, higher regions encode 1.
        assert_eq!(ctx.decode(tv.coeffs()[0], 8), 0);
        assert_eq!(ctx.decode(tv.coeffs()[40], 8), 1);
    }
}
