//! Typed errors for the scheme-switch boundary.
//!
//! The bridge is driven by application code with runtime-chosen batch
//! shapes, so shape mismatches are recoverable conditions, not
//! programmer bugs — they surface as [`SwitchError`] values rather
//! than panics (the same panic-free style the kernel/params selection
//! layers use).

use std::fmt;

/// Everything that can go wrong at the CKKS↔TFHE boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchError {
    /// An extraction index does not name a ring coefficient.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The ring dimension it must stay below.
        n: usize,
    },
    /// More LWEs were offered to `repack` than the CKKS slot count.
    TooManyLwes {
        /// Number of LWE ciphertexts supplied.
        count: usize,
        /// Available CKKS slots.
        slots: usize,
    },
    /// The TFHE key does not fit in the CKKS slot count.
    KeyTooLarge {
        /// TFHE LWE dimension.
        lwe_dim: usize,
        /// Available CKKS slots.
        slots: usize,
    },
    /// The slot count is not a multiple of the LWE dimension, so the
    /// cyclically-repeated repacking key would misalign under
    /// rotation.
    SlotCountNotMultiple {
        /// Available CKKS slots.
        slots: usize,
        /// TFHE LWE dimension.
        lwe_dim: usize,
    },
    /// An LWE input has the wrong dimension for the bridge's key
    /// material.
    LweDimensionMismatch {
        /// Dimension of the offending ciphertext.
        got: usize,
        /// Dimension the key material expects.
        expected: usize,
    },
    /// The repack transform had no non-zero diagonal (empty input).
    EmptyTransform,
}

impl fmt::Display for SwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::IndexOutOfRange { index, n } => {
                write!(
                    f,
                    "extraction index {index} out of range for ring dimension {n}"
                )
            }
            Self::TooManyLwes { count, slots } => {
                write!(f, "{count} LWE ciphertexts exceed the {slots} CKKS slots")
            }
            Self::KeyTooLarge { lwe_dim, slots } => {
                write!(
                    f,
                    "TFHE key dimension {lwe_dim} exceeds the {slots} CKKS slots"
                )
            }
            Self::SlotCountNotMultiple { slots, lwe_dim } => {
                write!(
                    f,
                    "slot count {slots} is not a multiple of the LWE dimension {lwe_dim}"
                )
            }
            Self::LweDimensionMismatch { got, expected } => {
                write!(
                    f,
                    "LWE dimension {got} does not match the bridge's {expected}"
                )
            }
            Self::EmptyTransform => write!(f, "repack transform has no non-zero diagonal"),
        }
    }
}

impl std::error::Error for SwitchError {}
