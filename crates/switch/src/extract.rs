//! Extraction: CKKS RLWE → TFHE LWE ciphertexts (§II-D).
//!
//! Pipeline: drop the CKKS ciphertext to level 0 (single limb `q_0`),
//! sample-extract the wanted coefficients as LWE ciphertexts under the
//! flattened CKKS ring key, key-switch each to the TFHE small key
//! (still at modulus `q_0`), and finally modulus-switch down to the
//! TFHE modulus. UFC runs the extraction/reduction steps on its
//! near-memory LWE unit (§IV-B4).
//!
//! Two paths are kept deliberately:
//!
//! * [`CkksToLwe::extract`] — the reference per-index path: one full
//!   gadget decomposition per (index, ring position) pair against the
//!   row-major KSK.
//! * [`CkksToLwe::extract_batch`] — the batched fast path. Every mask
//!   entry of every sample-extracted LWE is `±c1[k]` for some ring
//!   position `k`, so the whole batch needs only the `2N` digit tables
//!   `decompose(−c1[k])` / `decompose(c1[k])`, computed **once**; the
//!   digit loop then runs digit-major against a digit-major
//!   reorganized KSK ([`DigitMajorKsk`]), accumulating in place into
//!   preallocated LWE buffers. Because `Z_q` accumulation is exactly
//!   associative and commutative, the result is **bit-identical** to
//!   the per-index path (pinned by the conformance suite).

use crate::batch_tag;
use crate::error::SwitchError;
use rand::Rng;
use ufc_ckks::{Ciphertext as CkksCiphertext, CkksContext, Evaluator as CkksEvaluator, SecretKey};
use ufc_isa::trace::TraceOp;
use ufc_math::gadget::Gadget;
use ufc_math::modops::{from_signed, mul_mod, neg_mod};
use ufc_tfhe::{lwe::sub_scaled_parts, LweCiphertext, TfheContext, TfheKeys};

/// The extraction KSK reorganized digit-major into flat slabs: the row
/// for digit level `j` and ring position `i` starts at
/// `(j·N + i)·(dim+1)` — contiguous in `i` for a fixed digit, which is
/// exactly the order the batched digit loop walks.
#[derive(Debug)]
struct DigitMajorKsk {
    /// Mask slab: `a[(j·n + i)·dim ..][..dim]`.
    a: Vec<u64>,
    /// Body slab: `b[j·n + i]`.
    b: Vec<u64>,
    /// LWE dimension of each row.
    dim: usize,
    /// Ring dimension `N` (rows per digit level).
    n: usize,
}

impl DigitMajorKsk {
    /// Reorganizes the row-major `ksk[i][j]` into digit-major slabs.
    fn from_row_major(ksk: &[Vec<LweCiphertext>], levels: usize) -> Self {
        let n = ksk.len();
        let dim = ksk[0][0].dim();
        let mut a = Vec::with_capacity(levels * n * dim);
        let mut b = Vec::with_capacity(levels * n);
        for j in 0..levels {
            for row in ksk {
                a.extend_from_slice(&row[j].a);
                b.push(row[j].b);
            }
        }
        Self { a, b, dim, n }
    }

    /// The `(digit level, ring position)` row as `(mask, body)`.
    fn row(&self, j: usize, i: usize) -> (&[u64], u64) {
        let r = j * self.n + i;
        (&self.a[r * self.dim..(r + 1) * self.dim], self.b[r])
    }
}

/// Precomputed extraction key: switches LWEs under the flattened CKKS
/// ring key (dimension `N_ckks`, modulus `q_0`) to the TFHE small key.
#[derive(Debug)]
pub struct CkksToLwe {
    /// `ksk[i][j] = LWE_{s_tfhe, q0}(ŝ_ckks_i · w_j)`.
    ksk: Vec<Vec<LweCiphertext>>,
    /// The same key material digit-major, for the batched path.
    ksk_digit_major: DigitMajorKsk,
    /// Decomposition gadget at modulus `q_0`.
    gadget: Gadget,
    /// CKKS level-0 modulus.
    q0: u64,
    /// TFHE small-key dimension.
    lwe_dim: usize,
}

impl CkksToLwe {
    /// Generates the switching key. Needs both secret keys (a trusted
    /// key-generation step, as in any scheme-switching deployment).
    pub fn new<R: Rng + ?Sized>(
        ckks_ctx: &CkksContext,
        ckks_sk: &SecretKey,
        tfhe_ctx: &TfheContext,
        tfhe_keys: &TfheKeys,
        rng: &mut R,
    ) -> Self {
        let q0 = ckks_ctx.q_moduli()[0];
        // 8-bit digits, enough levels to cover q0 exactly.
        let log_base = 8u32;
        let levels = (64f64.min((q0 as f64).log2()).ceil() as usize).div_ceil(8);
        let gadget = Gadget::new(q0, log_base, levels);
        let ksk: Vec<Vec<LweCiphertext>> = ckks_sk
            .signed()
            .iter()
            .map(|&si| {
                (0..gadget.levels())
                    .map(|j| {
                        let m = mul_mod(from_signed(si, q0), gadget.weight(j), q0);
                        encrypt_lwe_at(q0, &tfhe_keys.lwe_sk, m, tfhe_ctx.sigma(), rng)
                    })
                    .collect()
            })
            .collect();
        let ksk_digit_major = DigitMajorKsk::from_row_major(&ksk, gadget.levels());
        Self {
            ksk,
            ksk_digit_major,
            gadget,
            q0,
            lwe_dim: tfhe_ctx.lwe_dim(),
        }
    }

    /// Extracts coefficients `indices` of the CKKS ciphertext as TFHE
    /// LWE ciphertexts (at the TFHE modulus, under the small key) —
    /// the reference per-index path, one gadget decomposition per
    /// (index, ring position) pair.
    ///
    /// The ciphertext must carry its payload in *coefficients* (after
    /// a SlotToCoeff transform in a full application); the message
    /// scale should be `q_0 / space` for a TFHE message space of
    /// `space`.
    ///
    /// # Errors
    ///
    /// [`SwitchError::IndexOutOfRange`] if any index is not below the
    /// ring dimension.
    pub fn extract(
        &self,
        ev: &CkksEvaluator,
        ct: &CkksCiphertext,
        indices: &[usize],
        tfhe_ctx: &TfheContext,
    ) -> Result<Vec<LweCiphertext>, SwitchError> {
        let _span = ufc_trace::span_n("switch", "extract", indices.len() as u64);
        ev.record_public(TraceOp::Extract {
            level: ct.level as u32,
            count: indices.len() as u32,
        });
        let ct0 = ev.drop_to_level(ct, 0);
        let c0 = ct0.c0.to_coeff(ev.context());
        let c1 = ct0.c1.to_coeff(ev.context());
        let c0 = c0.limb(0);
        let c1 = c1.limb(0);
        let n = c0.len();
        check_indices(indices, n)?;
        Ok(indices
            .iter()
            .map(|&idx| {
                // CKKS phase = c0 + c1·s; LWE convention is b − <a,s>,
                // so b = c0_idx and a = −extract_vec(c1).
                let mut a = vec![0u64; n];
                for (j, slot) in a.iter_mut().enumerate() {
                    let v = if j <= idx {
                        c1[idx - j]
                    } else {
                        neg_mod(c1[n + idx - j], self.q0)
                    };
                    *slot = neg_mod(v, self.q0);
                }
                let big = LweCiphertext {
                    a,
                    b: c0[idx],
                    q: self.q0,
                };
                let switched = self.key_switch(&big);
                switched.mod_switch(tfhe_ctx.q())
            })
            .collect())
    }

    /// Batched extraction fast path: bit-identical to calling
    /// [`CkksToLwe::extract`] with the same indices, but the gadget
    /// decomposition work is shared across the whole batch.
    ///
    /// After sample extraction, mask entry `i` of the LWE for index
    /// `idx` is `−c1[idx−i]` (for `i ≤ idx`) or `+c1[N+idx−i]` (wrap),
    /// so the only values ever decomposed are `−c1[k]` and `c1[k]` for
    /// the `N` ring positions `k`. This path builds those `2N` digit
    /// tables once, then runs the key-switch accumulation digit-major
    /// against [`DigitMajorKsk`] with the in-place
    /// [`sub_scaled_parts`] kernel — no per-digit ciphertext clones,
    /// and `2N` decompositions total instead of `batch·N`.
    ///
    /// # Errors
    ///
    /// [`SwitchError::IndexOutOfRange`] if any index is not below the
    /// ring dimension.
    pub fn extract_batch(
        &self,
        ev: &CkksEvaluator,
        ct: &CkksCiphertext,
        indices: &[usize],
        tfhe_ctx: &TfheContext,
    ) -> Result<Vec<LweCiphertext>, SwitchError> {
        let _span = ufc_trace::span_full(
            "switch",
            "extract_batch",
            batch_tag(indices.len()),
            indices.len() as u64,
        );
        ev.record_public(TraceOp::Extract {
            level: ct.level as u32,
            count: indices.len() as u32,
        });
        let ct0 = ev.drop_to_level(ct, 0);
        let c0 = ct0.c0.to_coeff(ev.context());
        let c1 = ct0.c1.to_coeff(ev.context());
        let c0 = c0.limb(0);
        let c1 = c1.limb(0);
        let n = c0.len();
        check_indices(indices, n)?;
        let q0 = self.q0;
        let levels = self.gadget.levels();

        // Shared digit tables: mask entries are neg_mod(c1[k]) when the
        // ring position precedes the index, c1[k] on the negacyclic
        // wrap (the double negation cancels exactly in Z_q).
        let dec_neg: Vec<Vec<i64>> = c1
            .iter()
            .map(|&v| self.gadget.decompose_scalar(neg_mod(v, q0)))
            .collect();
        let dec_pos: Vec<Vec<i64>> = c1
            .iter()
            .map(|&v| self.gadget.decompose_scalar(v))
            .collect();

        // Preallocated accumulators, one per requested index.
        let mut out_a = vec![vec![0u64; self.lwe_dim]; indices.len()];
        let mut out_b: Vec<u64> = indices.iter().map(|&idx| c0[idx]).collect();

        // Digit-major accumulation: for a fixed (digit level j, ring
        // position i) the KSK row is loaded once and applied to every
        // batch element that has a non-zero digit there. Z_q addition
        // is associative and commutative, so reordering the per-index
        // (i-major) loop into this j-major loop is bit-identical.
        for j in 0..levels {
            for i in 0..n {
                let (row_a, row_b) = self.ksk_digit_major.row(j, i);
                for (bi, &idx) in indices.iter().enumerate() {
                    let d = if i <= idx {
                        dec_neg[idx - i][j]
                    } else {
                        dec_pos[n + idx - i][j]
                    };
                    if d == 0 {
                        continue;
                    }
                    sub_scaled_parts(&mut out_a[bi], &mut out_b[bi], row_a, row_b, d, q0);
                }
            }
        }

        Ok(out_a
            .into_iter()
            .zip(out_b)
            .map(|(a, b)| LweCiphertext { a, b, q: q0 }.mod_switch(tfhe_ctx.q()))
            .collect())
    }

    /// LWE key switch at modulus `q_0` from the ring key to the small
    /// key.
    fn key_switch(&self, ct: &LweCiphertext) -> LweCiphertext {
        let mut out = LweCiphertext::trivial(ct.b, self.lwe_dim, self.q0);
        for (i, &ai) in ct.a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &d) in self.gadget.decompose_scalar(ai).iter().enumerate() {
                if d == 0 {
                    continue;
                }
                out = out.sub(&self.ksk[i][j].scale(d));
            }
        }
        out
    }
}

/// Validates extraction indices against the ring dimension.
fn check_indices(indices: &[usize], n: usize) -> Result<(), SwitchError> {
    match indices.iter().find(|&&idx| idx >= n) {
        Some(&index) => Err(SwitchError::IndexOutOfRange { index, n }),
        None => Ok(()),
    }
}

/// Encrypts an LWE sample at an arbitrary modulus (the TFHE context is
/// fixed at its own `q`, so extraction keys need this generalized
/// helper).
fn encrypt_lwe_at<R: Rng + ?Sized>(
    q: u64,
    s: &[u64],
    m: u64,
    sigma: f64,
    rng: &mut R,
) -> LweCiphertext {
    use ufc_math::modops::add_mod;
    let a: Vec<u64> = (0..s.len()).map(|_| rng.gen_range(0..q)).collect();
    let dot = a.iter().zip(s).fold(0u64, |acc, (&ai, &si)| {
        add_mod(acc, mul_mod(ai, si % q, q), q)
    });
    let e = from_signed(ufc_math::sample::gaussian(rng, sigma), q);
    LweCiphertext {
        b: add_mod(add_mod(dot, m % q, q), e, q),
        a,
        q,
    }
}

/// Encodes integer messages into CKKS *coefficients* at scale
/// `q_0/space` — the payload layout extraction expects (what
/// SlotToCoeff produces in a full pipeline).
pub fn encode_coefficients(ctx: &CkksContext, messages: &[u64], space: u64) -> ufc_ckks::RnsPoly {
    let q0 = ctx.q_moduli()[0];
    let delta = q0 / space;
    let signed: Vec<i64> = (0..ctx.n())
        .map(|i| {
            let m = messages.get(i).copied().unwrap_or(0) % space;
            (m * delta) as i64
        })
        .collect();
    ufc_ckks::RnsPoly::from_signed(ctx, &signed, ctx.max_level() + 1).to_eval(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ufc_ckks::KeySet;

    fn setup() -> (
        CkksEvaluator,
        SecretKey,
        KeySet,
        TfheContext,
        TfheKeys,
        CkksToLwe,
        StdRng,
    ) {
        let ckks_ctx = CkksContext::new(64, 3, 2, 2, 36, 34);
        let mut rng = StdRng::seed_from_u64(81);
        let sk = SecretKey::generate(&ckks_ctx, &mut rng);
        let keys = KeySet::generate(&ckks_ctx, &sk, &mut rng);
        let tfhe_ctx = TfheContext::new(64, 256, 7, 3, 6, 4);
        let tfhe_keys = TfheKeys::generate(&tfhe_ctx, &mut rng);
        let bridge = CkksToLwe::new(&ckks_ctx, &sk, &tfhe_ctx, &tfhe_keys, &mut rng);
        (
            CkksEvaluator::new(ckks_ctx),
            sk,
            keys,
            tfhe_ctx,
            tfhe_keys,
            bridge,
            rng,
        )
    }

    #[test]
    fn extract_recovers_coefficient_messages() {
        let (ev, _sk, keys, tfhe_ctx, tfhe_keys, bridge, mut rng) = setup();
        let messages: Vec<u64> = (0..64).map(|i| i % 4).collect();
        let pt = encode_coefficients(ev.context(), &messages, 8);
        let ct = ev.encrypt_plaintext(&pt, &keys, ev.context().max_level(), &mut rng);
        let lwes = bridge.extract(&ev, &ct, &[0, 1, 5, 33], &tfhe_ctx).unwrap();
        assert_eq!(lwes.len(), 4);
        for (lwe, &idx) in lwes.iter().zip(&[0usize, 1, 5, 33]) {
            assert_eq!(lwe.dim(), 64);
            assert_eq!(lwe.q, tfhe_ctx.q());
            assert_eq!(
                lwe.decrypt(&tfhe_ctx, &tfhe_keys.lwe_sk, 8),
                messages[idx] % 8,
                "idx={idx}"
            );
        }
    }

    #[test]
    fn extracted_lwes_support_tfhe_bootstrap() {
        // End-to-end §II-D: CKKS → extract → TFHE functional bootstrap.
        let (ev, _sk, keys, tfhe_ctx, tfhe_keys, bridge, mut rng) = setup();
        let messages: Vec<u64> = vec![1, 3, 2, 0];
        let pt = encode_coefficients(ev.context(), &messages, 8);
        let ct = ev.encrypt_plaintext(&pt, &keys, ev.context().max_level(), &mut rng);
        let lwes = bridge.extract(&ev, &ct, &[0, 1, 2, 3], &tfhe_ctx).unwrap();
        let tv = ufc_tfhe::lut_test_vector(&tfhe_ctx, |m| (m + 1) % 8, 8);
        for (lwe, &m) in lwes.iter().zip(&messages) {
            let out = ufc_tfhe::programmable_bootstrap(&tfhe_ctx, &tfhe_keys, lwe, &tv);
            assert_eq!(out.decrypt(&tfhe_ctx, &tfhe_keys.lwe_sk, 8), (m + 1) % 8);
        }
    }

    #[test]
    fn extract_batch_is_bit_identical_to_per_index() {
        let (ev, _sk, keys, tfhe_ctx, _tk, bridge, mut rng) = setup();
        let messages: Vec<u64> = (0..64).map(|i| (i * 3) % 8).collect();
        let pt = encode_coefficients(ev.context(), &messages, 8);
        let ct = ev.encrypt_plaintext(&pt, &keys, ev.context().max_level(), &mut rng);
        let indices = [0usize, 1, 5, 13, 33, 63, 5];
        let per_index = bridge.extract(&ev, &ct, &indices, &tfhe_ctx).unwrap();
        let batched = bridge.extract_batch(&ev, &ct, &indices, &tfhe_ctx).unwrap();
        assert_eq!(per_index, batched);
    }

    #[test]
    fn out_of_range_index_is_a_typed_error() {
        let (ev, _sk, keys, tfhe_ctx, _tk, bridge, mut rng) = setup();
        let pt = encode_coefficients(ev.context(), &[1], 8);
        let ct = ev.encrypt_plaintext(&pt, &keys, ev.context().max_level(), &mut rng);
        let want = Err(SwitchError::IndexOutOfRange { index: 64, n: 64 });
        assert_eq!(bridge.extract(&ev, &ct, &[0, 64], &tfhe_ctx), want);
        assert_eq!(bridge.extract_batch(&ev, &ct, &[0, 64], &tfhe_ctx), want);
    }

    #[test]
    fn extraction_records_trace() {
        let (ev, _sk, keys, tfhe_ctx, _tk, bridge, mut rng) = setup();
        let pt = encode_coefficients(ev.context(), &[1, 2], 8);
        let ct = ev.encrypt_plaintext(&pt, &keys, ev.context().max_level(), &mut rng);
        let _ = ev.take_trace();
        let _ = bridge.extract(&ev, &ct, &[0, 1], &tfhe_ctx).unwrap();
        let tr = ev.take_trace();
        assert!(tr
            .ops
            .iter()
            .any(|op| matches!(op, TraceOp::Extract { count: 2, .. })));
    }
}
