//! Extraction: CKKS RLWE → TFHE LWE ciphertexts (§II-D).
//!
//! Pipeline: drop the CKKS ciphertext to level 0 (single limb `q_0`),
//! sample-extract the wanted coefficients as LWE ciphertexts under the
//! flattened CKKS ring key, key-switch each to the TFHE small key
//! (still at modulus `q_0`), and finally modulus-switch down to the
//! TFHE modulus. UFC runs the extraction/reduction steps on its
//! near-memory LWE unit (§IV-B4).

use rand::Rng;
use ufc_ckks::{Ciphertext as CkksCiphertext, CkksContext, Evaluator as CkksEvaluator, SecretKey};
use ufc_isa::trace::TraceOp;
use ufc_math::gadget::Gadget;
use ufc_math::modops::{from_signed, mul_mod, neg_mod};
use ufc_tfhe::{LweCiphertext, TfheContext, TfheKeys};

/// Precomputed extraction key: switches LWEs under the flattened CKKS
/// ring key (dimension `N_ckks`, modulus `q_0`) to the TFHE small key.
#[derive(Debug)]
pub struct CkksToLwe {
    /// `ksk[i][j] = LWE_{s_tfhe, q0}(ŝ_ckks_i · w_j)`.
    ksk: Vec<Vec<LweCiphertext>>,
    /// Decomposition gadget at modulus `q_0`.
    gadget: Gadget,
    /// CKKS level-0 modulus.
    q0: u64,
    /// TFHE small-key dimension.
    lwe_dim: usize,
}

impl CkksToLwe {
    /// Generates the switching key. Needs both secret keys (a trusted
    /// key-generation step, as in any scheme-switching deployment).
    pub fn new<R: Rng + ?Sized>(
        ckks_ctx: &CkksContext,
        ckks_sk: &SecretKey,
        tfhe_ctx: &TfheContext,
        tfhe_keys: &TfheKeys,
        rng: &mut R,
    ) -> Self {
        let q0 = ckks_ctx.q_moduli()[0];
        // 8-bit digits, enough levels to cover q0 exactly.
        let log_base = 8u32;
        let levels = (64f64.min((q0 as f64).log2()).ceil() as usize).div_ceil(8);
        let gadget = Gadget::new(q0, log_base, levels);
        let ksk = ckks_sk
            .signed()
            .iter()
            .map(|&si| {
                (0..gadget.levels())
                    .map(|j| {
                        let m = mul_mod(from_signed(si, q0), gadget.weight(j), q0);
                        encrypt_lwe_at(q0, &tfhe_keys.lwe_sk, m, tfhe_ctx.sigma(), rng)
                    })
                    .collect()
            })
            .collect();
        Self {
            ksk,
            gadget,
            q0,
            lwe_dim: tfhe_ctx.lwe_dim(),
        }
    }

    /// Extracts coefficients `indices` of the CKKS ciphertext as TFHE
    /// LWE ciphertexts (at the TFHE modulus, under the small key).
    ///
    /// The ciphertext must carry its payload in *coefficients* (after
    /// a SlotToCoeff transform in a full application); the message
    /// scale should be `q_0 / space` for a TFHE message space of
    /// `space`.
    pub fn extract(
        &self,
        ev: &CkksEvaluator,
        ct: &CkksCiphertext,
        indices: &[usize],
        tfhe_ctx: &TfheContext,
    ) -> Vec<LweCiphertext> {
        let _span = ufc_trace::span_n("switch", "extract", indices.len() as u64);
        ev.record_public(TraceOp::Extract {
            level: ct.level as u32,
            count: indices.len() as u32,
        });
        let ct0 = ev.drop_to_level(ct, 0);
        let c0 = ct0.c0.to_coeff(ev.context());
        let c1 = ct0.c1.to_coeff(ev.context());
        let c0 = c0.limb(0);
        let c1 = c1.limb(0);
        let n = c0.len();
        indices
            .iter()
            .map(|&idx| {
                assert!(idx < n, "coefficient index out of range");
                // CKKS phase = c0 + c1·s; LWE convention is b − <a,s>,
                // so b = c0_idx and a = −extract_vec(c1).
                let mut a = vec![0u64; n];
                for (j, slot) in a.iter_mut().enumerate() {
                    let v = if j <= idx {
                        c1[idx - j]
                    } else {
                        neg_mod(c1[n + idx - j], self.q0)
                    };
                    *slot = neg_mod(v, self.q0);
                }
                let big = LweCiphertext {
                    a,
                    b: c0[idx],
                    q: self.q0,
                };
                let switched = self.key_switch(&big);
                switched.mod_switch(tfhe_ctx.q())
            })
            .collect()
    }

    /// LWE key switch at modulus `q_0` from the ring key to the small
    /// key.
    fn key_switch(&self, ct: &LweCiphertext) -> LweCiphertext {
        let mut out = LweCiphertext::trivial(ct.b, self.lwe_dim, self.q0);
        for (i, &ai) in ct.a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &d) in self.gadget.decompose_scalar(ai).iter().enumerate() {
                if d == 0 {
                    continue;
                }
                out = out.sub(&self.ksk[i][j].scale(d));
            }
        }
        out
    }
}

/// Encrypts an LWE sample at an arbitrary modulus (the TFHE context is
/// fixed at its own `q`, so extraction keys need this generalized
/// helper).
fn encrypt_lwe_at<R: Rng + ?Sized>(
    q: u64,
    s: &[u64],
    m: u64,
    sigma: f64,
    rng: &mut R,
) -> LweCiphertext {
    use ufc_math::modops::add_mod;
    let a: Vec<u64> = (0..s.len()).map(|_| rng.gen_range(0..q)).collect();
    let dot = a.iter().zip(s).fold(0u64, |acc, (&ai, &si)| {
        add_mod(acc, mul_mod(ai, si % q, q), q)
    });
    let e = from_signed(ufc_math::sample::gaussian(rng, sigma), q);
    LweCiphertext {
        b: add_mod(add_mod(dot, m % q, q), e, q),
        a,
        q,
    }
}

/// Encodes integer messages into CKKS *coefficients* at scale
/// `q_0/space` — the payload layout extraction expects (what
/// SlotToCoeff produces in a full pipeline).
pub fn encode_coefficients(ctx: &CkksContext, messages: &[u64], space: u64) -> ufc_ckks::RnsPoly {
    let q0 = ctx.q_moduli()[0];
    let delta = q0 / space;
    let signed: Vec<i64> = (0..ctx.n())
        .map(|i| {
            let m = messages.get(i).copied().unwrap_or(0) % space;
            (m * delta) as i64
        })
        .collect();
    ufc_ckks::RnsPoly::from_signed(ctx, &signed, ctx.max_level() + 1).to_eval(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ufc_ckks::KeySet;

    fn setup() -> (
        CkksEvaluator,
        SecretKey,
        KeySet,
        TfheContext,
        TfheKeys,
        CkksToLwe,
        StdRng,
    ) {
        let ckks_ctx = CkksContext::new(64, 3, 2, 2, 36, 34);
        let mut rng = StdRng::seed_from_u64(81);
        let sk = SecretKey::generate(&ckks_ctx, &mut rng);
        let keys = KeySet::generate(&ckks_ctx, &sk, &mut rng);
        let tfhe_ctx = TfheContext::new(64, 256, 7, 3, 6, 4);
        let tfhe_keys = TfheKeys::generate(&tfhe_ctx, &mut rng);
        let bridge = CkksToLwe::new(&ckks_ctx, &sk, &tfhe_ctx, &tfhe_keys, &mut rng);
        (
            CkksEvaluator::new(ckks_ctx),
            sk,
            keys,
            tfhe_ctx,
            tfhe_keys,
            bridge,
            rng,
        )
    }

    #[test]
    fn extract_recovers_coefficient_messages() {
        let (ev, _sk, keys, tfhe_ctx, tfhe_keys, bridge, mut rng) = setup();
        let messages: Vec<u64> = (0..64).map(|i| i % 4).collect();
        let pt = encode_coefficients(ev.context(), &messages, 8);
        let ct = ev.encrypt_plaintext(&pt, &keys, ev.context().max_level(), &mut rng);
        let lwes = bridge.extract(&ev, &ct, &[0, 1, 5, 33], &tfhe_ctx);
        assert_eq!(lwes.len(), 4);
        for (lwe, &idx) in lwes.iter().zip(&[0usize, 1, 5, 33]) {
            assert_eq!(lwe.dim(), 64);
            assert_eq!(lwe.q, tfhe_ctx.q());
            assert_eq!(
                lwe.decrypt(&tfhe_ctx, &tfhe_keys.lwe_sk, 8),
                messages[idx] % 8,
                "idx={idx}"
            );
        }
    }

    #[test]
    fn extracted_lwes_support_tfhe_bootstrap() {
        // End-to-end §II-D: CKKS → extract → TFHE functional bootstrap.
        let (ev, _sk, keys, tfhe_ctx, tfhe_keys, bridge, mut rng) = setup();
        let messages: Vec<u64> = vec![1, 3, 2, 0];
        let pt = encode_coefficients(ev.context(), &messages, 8);
        let ct = ev.encrypt_plaintext(&pt, &keys, ev.context().max_level(), &mut rng);
        let lwes = bridge.extract(&ev, &ct, &[0, 1, 2, 3], &tfhe_ctx);
        let tv = ufc_tfhe::lut_test_vector(&tfhe_ctx, |m| (m + 1) % 8, 8);
        for (lwe, &m) in lwes.iter().zip(&messages) {
            let out = ufc_tfhe::programmable_bootstrap(&tfhe_ctx, &tfhe_keys, lwe, &tv);
            assert_eq!(out.decrypt(&tfhe_ctx, &tfhe_keys.lwe_sk, 8), (m + 1) % 8);
        }
    }

    #[test]
    fn extraction_records_trace() {
        let (ev, _sk, keys, tfhe_ctx, _tk, bridge, mut rng) = setup();
        let pt = encode_coefficients(ev.context(), &[1, 2], 8);
        let ct = ev.encrypt_plaintext(&pt, &keys, ev.context().max_level(), &mut rng);
        let _ = ev.take_trace();
        let _ = bridge.extract(&ev, &ct, &[0, 1], &tfhe_ctx);
        let tr = ev.take_trace();
        assert!(tr
            .ops
            .iter()
            .any(|op| matches!(op, TraceOp::Extract { count: 2, .. })));
    }
}
