//! # ufc-switch — scheme switching between CKKS and TFHE
//!
//! Hybrid FHE programs (paper §II-D, Fig. 1) alternate between the
//! SIMD scheme (CKKS, high-throughput arithmetic) and the logic scheme
//! (TFHE, exact non-linear functions). This crate implements both
//! directions of the bridge:
//!
//! * **Extraction** ([`extract`]): one CKKS RLWE ciphertext →
//!   many LWE ciphertexts, via sample extraction, an LWE key switch to
//!   the TFHE key, and a modulus switch to TFHE's modulus — "the
//!   extraction requires a TFHE key-switching at the end to convert
//!   the extracted LWE ciphertexts back to the standard parameter
//!   setting".
//! * **Repacking** ([`repack`]): many LWE ciphertexts → one CKKS RLWE
//!   ciphertext, via a homomorphic linear transform against the
//!   CKKS-encrypted TFHE key, followed by the sine-based modular
//!   reduction (Pegasus-style: "homomorphic linear transformation
//!   followed by a key switching and a bootstrapping").
//! * **Hybrid programs** ([`hybrid`]): a driver composing the two with
//!   per-op tracing, used by the k-NN workload.

#![forbid(unsafe_code)]

pub mod error;
pub mod extract;
pub mod hybrid;
pub mod repack;

pub use error::SwitchError;
pub use extract::CkksToLwe;
pub use repack::LweToCkks;

/// Power-of-two bucket tag for a switch batch size, as a static
/// string usable in `ufc-trace` span tags: batches of 5–8 LWEs all
/// report as `b8`, so host profiling can attribute extract/repack time
/// per batch-size bucket without unbounded key cardinality.
pub(crate) fn batch_tag(len: usize) -> &'static str {
    match len.next_power_of_two() {
        0 | 1 => "b1",
        2 => "b2",
        4 => "b4",
        8 => "b8",
        16 => "b16",
        32 => "b32",
        64 => "b64",
        128 => "b128",
        256 => "b256",
        512 => "b512",
        _ => "b1024+",
    }
}
