//! The CKKS context: ring dimension, RNS moduli chain, NTT tables and
//! all precomputed constants for hybrid key-switching.

use std::sync::Arc;
use ufc_math::modops::{inv_mod, mul_mod};
use ufc_math::ntt::{NttContext, NttKernel};
use ufc_math::prime::generate_ntt_primes;
use ufc_math::rns::{BaseConverter, RnsBasis};

/// Precomputation for one key-switching digit (a group of consecutive
/// `Q` limbs).
#[derive(Debug, Clone)]
pub struct DigitTables {
    /// Indices into the `Q` limb list covered by this digit.
    pub limb_range: (usize, usize),
    /// `[Qhat_j^{-1}]_{q_i}` for each limb `i` in the digit, where
    /// `Qhat_j = Q / Q_j` over the limbs active at key-switch time.
    /// Indexed by level then by in-digit limb position.
    pub qhat_inv: Vec<Vec<u64>>,
    /// Base converter from this digit's limbs to every other modulus
    /// (the complement of the digit within `Q ∪ P`), one per level.
    pub mod_up: Vec<Option<Arc<BaseConverter>>>,
}

/// Shared CKKS parameter environment.
///
/// Holds the `Q` moduli chain (one dropped per rescale), the special
/// `P` moduli for hybrid key-switching, NTT tables per modulus, and
/// the digit decomposition tables.
#[derive(Debug, Clone)]
pub struct CkksContext {
    n: usize,
    q_moduli: Vec<u64>,
    p_moduli: Vec<u64>,
    dnum: usize,
    scale: f64,
    ntt: Vec<Arc<NttContext>>, // aligned with q_moduli ++ p_moduli
    digits: Vec<DigitTables>,
    /// BConv from `P` to each `Q` limb (ModDown), per level.
    p_to_q: Vec<Arc<BaseConverter>>,
    /// `[P^{-1}]_{q_i}` per Q limb.
    p_inv_mod_q: Vec<u64>,
    /// `[P]_{q_i}` per Q limb.
    p_mod_q: Vec<u64>,
}

impl CkksContext {
    /// Creates a context with `q_limbs` ciphertext moduli of
    /// `limb_bits` bits, `p_limbs` special moduli, `dnum` key-switch
    /// digits and encoding scale `2^scale_bits`.
    ///
    /// # Panics
    ///
    /// Panics if prime generation cannot find enough distinct
    /// NTT-friendly primes, or `dnum` does not evenly cover the limbs
    /// with digits of at most `p_limbs` size.
    pub fn new(
        n: usize,
        q_limbs: usize,
        p_limbs: usize,
        dnum: usize,
        limb_bits: u32,
        scale_bits: u32,
    ) -> Self {
        let total = q_limbs + p_limbs;
        let primes = generate_ntt_primes(n, limb_bits, total);
        assert_eq!(
            primes.len(),
            total,
            "not enough {limb_bits}-bit NTT primes for N={n}"
        );
        let q_moduli = primes[..q_limbs].to_vec();
        let p_moduli = primes[q_limbs..].to_vec();
        let digit_size = q_limbs.div_ceil(dnum);
        assert!(
            digit_size <= p_limbs,
            "special modulus P must cover the largest digit \
             (digit_size {digit_size} > p_limbs {p_limbs})"
        );
        let ntt: Vec<Arc<NttContext>> = q_moduli
            .iter()
            .chain(&p_moduli)
            .map(|&q| {
                // Generated primes satisfy try_new by construction;
                // route through it so parameter drift surfaces the
                // typed NttError instead of an inversion panic.
                let t = NttContext::try_new(n, q)
                    .unwrap_or_else(|e| panic!("generated CKKS modulus rejected: {e}"));
                Arc::new(t)
            })
            .collect();

        let mut ctx = Self {
            n,
            q_moduli,
            p_moduli,
            dnum,
            scale: 2f64.powi(scale_bits as i32),
            ntt,
            digits: Vec::new(),
            p_to_q: Vec::new(),
            p_inv_mod_q: Vec::new(),
            p_mod_q: Vec::new(),
        };
        ctx.precompute();
        ctx
    }

    fn precompute(&mut self) {
        let q_limbs = self.q_moduli.len();
        let digit_size = q_limbs.div_ceil(self.dnum);
        // Per-digit tables, per level (level = active limbs - 1).
        let mut digits = Vec::new();
        for d in 0..self.dnum {
            let lo = d * digit_size;
            let hi = (lo + digit_size).min(q_limbs);
            if lo >= hi {
                break;
            }
            let mut qhat_inv_per_level = Vec::with_capacity(q_limbs);
            let mut mod_up_per_level = Vec::with_capacity(q_limbs);
            for level in 0..q_limbs {
                let active = level + 1;
                if lo >= active {
                    qhat_inv_per_level.push(Vec::new());
                    mod_up_per_level.push(None);
                    continue;
                }
                let hi_l = hi.min(active);
                // Digit moduli at this level.
                let digit_mods: Vec<u64> = self.q_moduli[lo..hi_l].to_vec();
                // Complement: other active Q limbs + all P limbs.
                let mut compl: Vec<u64> = Vec::new();
                compl.extend_from_slice(&self.q_moduli[..lo]);
                compl.extend_from_slice(&self.q_moduli[hi_l..active]);
                compl.extend_from_slice(&self.p_moduli);
                // Qhat_j = prod of active Q limbs outside the digit.
                let qhat_inv: Vec<u64> = digit_mods
                    .iter()
                    .map(|&qi| {
                        let mut prod = 1u64;
                        for &m in self.q_moduli[..active].iter() {
                            if !digit_mods.contains(&m) {
                                prod = mul_mod(prod, m % qi, qi);
                            }
                        }
                        inv_mod(prod, qi).expect("moduli coprime")
                    })
                    .collect();
                let basis = RnsBasis::new(digit_mods);
                mod_up_per_level.push(Some(Arc::new(BaseConverter::new(&basis, &compl))));
                qhat_inv_per_level.push(qhat_inv);
            }
            digits.push(DigitTables {
                limb_range: (lo, hi),
                qhat_inv: qhat_inv_per_level,
                mod_up: mod_up_per_level,
            });
        }
        self.digits = digits;

        // ModDown tables.
        let p_basis = RnsBasis::new(self.p_moduli.clone());
        self.p_to_q = (0..q_limbs)
            .map(|level| {
                let active = &self.q_moduli[..level + 1];
                Arc::new(BaseConverter::new(&p_basis, active))
            })
            .collect();
        self.p_mod_q = self
            .q_moduli
            .iter()
            .map(|&q| {
                self.p_moduli
                    .iter()
                    .fold(1u64, |acc, &p| mul_mod(acc, p % q, q))
            })
            .collect();
        self.p_inv_mod_q = self
            .p_mod_q
            .iter()
            .zip(&self.q_moduli)
            .map(|(&pm, &q)| inv_mod(pm, q).expect("P invertible mod q"))
            .collect();
    }

    /// Ring dimension `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of packing slots (`N/2`).
    pub fn slots(&self) -> usize {
        self.n / 2
    }

    /// The ciphertext moduli chain `q_0 … q_L`.
    pub fn q_moduli(&self) -> &[u64] {
        &self.q_moduli
    }

    /// The special moduli `p_0 … p_{K-1}`.
    pub fn p_moduli(&self) -> &[u64] {
        &self.p_moduli
    }

    /// Maximum level (fresh ciphertexts start here).
    pub fn max_level(&self) -> usize {
        self.q_moduli.len() - 1
    }

    /// Number of key-switching digits.
    pub fn dnum(&self) -> usize {
        self.dnum
    }

    /// Default encoding scale Δ.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// NTT tables for `Q` limb `i`.
    pub fn ntt_q(&self, i: usize) -> &NttContext {
        &self.ntt[i]
    }

    /// NTT tables for `P` limb `i`.
    pub fn ntt_p(&self, i: usize) -> &NttContext {
        &self.ntt[self.q_moduli.len() + i]
    }

    /// NTT tables for an arbitrary modulus in the chain.
    ///
    /// # Panics
    ///
    /// Panics if `m` is neither a Q nor a P modulus.
    pub fn ntt_for_modulus(&self, m: u64) -> &NttContext {
        let idx = self
            .q_moduli
            .iter()
            .chain(&self.p_moduli)
            .position(|&q| q == m)
            .expect("modulus not in chain");
        &self.ntt[idx]
    }

    /// NTT tables for an arbitrary list of chain moduli, in order —
    /// the shape [`ufc_math::plane::RnsPlane`]'s in-place transforms
    /// consume.
    ///
    /// # Panics
    ///
    /// Panics if any modulus is neither a Q nor a P modulus.
    pub fn ntt_tables(&self, moduli: &[u64]) -> Vec<&NttContext> {
        moduli.iter().map(|&m| self.ntt_for_modulus(m)).collect()
    }

    /// Forces a specific NTT kernel on every table in the chain
    /// (`Q` and `P` limbs alike). All kernels are bit-identical, so
    /// this changes scheduling only; it exists for the cross-kernel
    /// conformance/precision suites and A/B timing.
    ///
    /// Fails with [`ufc_math::ntt::NttError::IfmaPrimeTooWide`] —
    /// without touching any table — when `kernel` is
    /// [`NttKernel::Ifma`] and some chain modulus is at or above
    /// 2⁵⁰: CKKS chains routinely carry ~60-bit limbs, which the
    /// 52-bit product window cannot represent.
    pub fn try_set_ntt_kernel(&mut self, kernel: NttKernel) -> Result<(), ufc_math::ntt::NttError> {
        // Validate the whole chain before mutating so a failure does
        // not leave the tables half-switched.
        for table in &self.ntt {
            if !kernel.supports_modulus(table.modulus()) {
                return Err(ufc_math::ntt::NttError::IfmaPrimeTooWide { q: table.modulus() });
            }
        }
        for table in &mut self.ntt {
            Arc::make_mut(table)
                .try_set_kernel(kernel)
                .expect("chain-wide width check already passed");
        }
        Ok(())
    }

    /// Panicking [`Self::try_set_ntt_kernel`], for tests and benches
    /// whose moduli are known to fit the requested generation.
    ///
    /// # Panics
    ///
    /// Panics when some chain modulus is too wide for `kernel`.
    pub fn set_ntt_kernel(&mut self, kernel: NttKernel) {
        if let Err(e) = self.try_set_ntt_kernel(kernel) {
            panic!("set_ntt_kernel: {e}");
        }
    }

    /// Builder-style [`Self::set_ntt_kernel`].
    #[must_use]
    pub fn with_ntt_kernel(mut self, kernel: NttKernel) -> Self {
        self.set_ntt_kernel(kernel);
        self
    }

    /// Digit tables for hybrid key-switching.
    pub fn digits(&self) -> &[DigitTables] {
        &self.digits
    }

    /// Digits active at `level` (those whose range intersects the
    /// active limbs).
    pub fn active_digits(&self, level: usize) -> usize {
        self.digits
            .iter()
            .filter(|d| d.limb_range.0 <= level)
            .count()
    }

    /// ModDown converter for the given level.
    pub fn p_to_q_converter(&self, level: usize) -> &BaseConverter {
        &self.p_to_q[level]
    }

    /// `[P]_{q_i}`.
    pub fn p_mod_q(&self, i: usize) -> u64 {
        self.p_mod_q[i]
    }

    /// `[P^{-1}]_{q_i}`.
    pub fn p_inv_mod_q(&self, i: usize) -> u64 {
        self.p_inv_mod_q[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CkksContext {
        CkksContext::new(32, 4, 2, 2, 36, 26)
    }

    #[test]
    fn construction_and_accessors() {
        let c = small();
        assert_eq!(c.n(), 32);
        assert_eq!(c.slots(), 16);
        assert_eq!(c.q_moduli().len(), 4);
        assert_eq!(c.p_moduli().len(), 2);
        assert_eq!(c.max_level(), 3);
        assert_eq!(c.dnum(), 2);
        assert_eq!(c.digits().len(), 2);
    }

    #[test]
    fn moduli_are_distinct_ntt_primes() {
        let c = small();
        let mut all: Vec<u64> = c.q_moduli().to_vec();
        all.extend_from_slice(c.p_moduli());
        for &q in &all {
            assert!(ufc_math::prime::is_prime(q));
            assert_eq!(q % 64, 1, "q ≡ 1 mod 2N");
        }
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn digit_ranges_partition_q() {
        let c = CkksContext::new(32, 6, 2, 3, 36, 26);
        let ranges: Vec<(usize, usize)> = c.digits().iter().map(|d| d.limb_range).collect();
        assert_eq!(ranges, vec![(0, 2), (2, 4), (4, 6)]);
    }

    #[test]
    fn active_digits_shrinks_with_level() {
        let c = CkksContext::new(32, 6, 2, 3, 36, 26);
        assert_eq!(c.active_digits(5), 3);
        assert_eq!(c.active_digits(3), 2);
        assert_eq!(c.active_digits(1), 1);
    }

    #[test]
    #[should_panic(expected = "special modulus")]
    fn p_must_cover_digit() {
        // 6 limbs, dnum 2 -> digit size 3 > p_limbs 2.
        let _ = CkksContext::new(32, 6, 2, 2, 36, 26);
    }

    #[test]
    fn p_constants_are_inverses() {
        let c = small();
        for i in 0..c.q_moduli().len() {
            let q = c.q_moduli()[i];
            assert_eq!(mul_mod(c.p_mod_q(i), c.p_inv_mod_q(i), q), 1);
        }
    }
}
