//! # ufc-ckks — RNS-CKKS, the SIMD FHE scheme UFC accelerates
//!
//! A from-scratch implementation of the RNS variant of CKKS
//! (Cheon–Kim–Kim–Song) with:
//!
//! * canonical-embedding encoding of complex/real slot vectors
//!   ([`encoding`]),
//! * encryption / decryption under ternary secrets ([`keys`]),
//! * homomorphic add / multiply / rescale ([`eval`]),
//! * **hybrid key-switching** with `dnum` digits and a special modulus
//!   `P` — the BConv-heavy kernel that dominates CKKS time on
//!   accelerators (§II-B3),
//! * slot rotation and conjugation via Galois automorphisms,
//! * BSGS homomorphic linear transforms and Chebyshev polynomial
//!   evaluation, composed into the bootstrapping pipeline
//!   ([`bootstrap`]),
//! * a ciphertext-granularity tracer: every evaluator call records a
//!   [`ufc_isa::TraceOp`], reproducing the paper's tracing tool
//!   (§VI-B),
//! * noise-budget tracking validated against measured error
//!   ([`noise`]).
//!
//! Parameters are freely configurable; tests exercise reduced rings
//! (`N = 32 … 2^10`) while the workload generators use the paper's
//! Table III sets analytically.

#![forbid(unsafe_code)]

pub mod bootstrap;
pub mod ciphertext;
pub mod context;
pub mod encoding;
pub mod eval;
pub mod keys;
pub mod noise;
pub mod rnspoly;

pub use ciphertext::Ciphertext;
pub use context::CkksContext;
pub use encoding::Encoder;
pub use eval::{Evaluator, HoistedDigits};
pub use keys::{KeySet, SecretKey};
pub use rnspoly::RnsPoly;
