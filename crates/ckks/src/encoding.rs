//! Canonical-embedding encoding: complex slot vectors ↔ ring elements.
//!
//! CKKS packs `N/2` complex slots into one real polynomial by
//! evaluating at the primitive `2N`-th roots `ζ^{5^j}` (one per orbit
//! of the rotation group). Encoding is the inverse embedding scaled by
//! `Δ` and rounded; slot rotation then corresponds to the Galois
//! automorphism `X → X^{5^r}`.
//!
//! This implementation evaluates the embedding directly (`O(N²)`),
//! trading speed for obviously-correct math; tests use reduced rings.

/// A complex number as an `(re, im)` pair.
pub type Complex = (f64, f64);

fn c_add(a: Complex, b: Complex) -> Complex {
    (a.0 + b.0, a.1 + b.1)
}

fn c_mul(a: Complex, b: Complex) -> Complex {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

fn c_conj(a: Complex) -> Complex {
    (a.0, -a.1)
}

/// Encoder/decoder for a fixed ring dimension and scale.
#[derive(Debug, Clone)]
pub struct Encoder {
    n: usize,
    scale: f64,
    /// `5^j mod 2N` for `j` in `0..N/2` — the evaluation-point orbit.
    rot_group: Vec<usize>,
}

impl Encoder {
    /// Creates an encoder for ring dimension `n` (power of two ≥ 4)
    /// and scale `Δ`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `scale <= 0`.
    pub fn new(n: usize, scale: f64) -> Self {
        assert!(
            n.is_power_of_two() && n >= 4,
            "n must be a power of two >= 4"
        );
        assert!(scale > 0.0, "scale must be positive");
        let two_n = 2 * n;
        let mut rot_group = Vec::with_capacity(n / 2);
        let mut k = 1usize;
        for _ in 0..n / 2 {
            rot_group.push(k);
            k = k * 5 % two_n;
        }
        Self {
            n,
            scale,
            rot_group,
        }
    }

    /// Number of slots (`N/2`).
    pub fn slots(&self) -> usize {
        self.n / 2
    }

    /// The scale `Δ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The `j`-th evaluation point `ζ^{5^j}` with `ζ = e^{iπ/N}`.
    fn root(&self, j: usize) -> Complex {
        let theta = std::f64::consts::PI * self.rot_group[j] as f64 / self.n as f64;
        (theta.cos(), theta.sin())
    }

    /// Encodes complex slots into integer polynomial coefficients
    /// (centered). Missing slots are zero-padded.
    ///
    /// # Panics
    ///
    /// Panics if more than `N/2` slots are supplied.
    pub fn encode(&self, slots: &[Complex]) -> Vec<i64> {
        assert!(slots.len() <= self.slots(), "too many slots");
        let n = self.n;
        let mut acc = vec![0.0f64; n];
        // m_k = (Δ/N) * Σ_j (z_j * conj(u_j)^k + conj(z_j) * u_j^k)
        //     = (2Δ/N) * Σ_j Re(z_j * conj(u_j^k)).
        for (j, &z) in slots.iter().enumerate() {
            if z == (0.0, 0.0) {
                continue;
            }
            let u_conj = c_conj(self.root(j));
            let mut u_conj_k = (1.0, 0.0);
            for a in acc.iter_mut() {
                *a += c_mul(z, u_conj_k).0;
                u_conj_k = c_mul(u_conj_k, u_conj);
            }
        }
        let norm = 2.0 * self.scale / n as f64;
        acc.into_iter().map(|a| (norm * a).round() as i64).collect()
    }

    /// Encodes a real vector (imaginary parts zero).
    pub fn encode_real(&self, values: &[f64]) -> Vec<i64> {
        let slots: Vec<Complex> = values.iter().map(|&v| (v, 0.0)).collect();
        self.encode(&slots)
    }

    /// Decodes centered integer coefficients back into complex slots.
    pub fn decode(&self, coeffs: &[i64], scale: f64) -> Vec<Complex> {
        assert_eq!(coeffs.len(), self.n, "coefficient count must be N");
        let mut out = Vec::with_capacity(self.slots());
        for j in 0..self.slots() {
            let u = self.root(j);
            let mut acc = (0.0, 0.0);
            let mut u_k = (1.0, 0.0);
            for &c in coeffs {
                acc = c_add(acc, c_mul((c as f64, 0.0), u_k));
                u_k = c_mul(u_k, u);
            }
            out.push((acc.0 / scale, acc.1 / scale));
        }
        out
    }

    /// Decodes, returning only real parts.
    pub fn decode_real(&self, coeffs: &[i64], scale: f64) -> Vec<f64> {
        self.decode(coeffs, scale)
            .into_iter()
            .map(|z| z.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn roundtrip_real() {
        let enc = Encoder::new(64, 2f64.powi(30));
        let vals: Vec<f64> = (0..32).map(|i| (i as f64) / 7.0 - 2.0).collect();
        let coeffs = enc.encode_real(&vals);
        let back = enc.decode_real(&coeffs, enc.scale());
        assert!(
            max_err(&vals, &back) < 1e-6,
            "err = {}",
            max_err(&vals, &back)
        );
    }

    #[test]
    fn roundtrip_complex() {
        let enc = Encoder::new(32, 2f64.powi(28));
        let slots: Vec<Complex> = (0..16)
            .map(|i| (i as f64 * 0.5, -(i as f64) * 0.25))
            .collect();
        let coeffs = enc.encode(&slots);
        let back = enc.decode(&coeffs, enc.scale());
        for (z, w) in slots.iter().zip(&back) {
            assert!((z.0 - w.0).abs() < 1e-5 && (z.1 - w.1).abs() < 1e-5);
        }
    }

    #[test]
    fn encoding_is_additive() {
        let enc = Encoder::new(32, 2f64.powi(26));
        let a: Vec<f64> = (0..16).map(|i| i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..16).map(|i| 1.5 - i as f64 * 0.05).collect();
        let ca = enc.encode_real(&a);
        let cb = enc.encode_real(&b);
        let sum: Vec<i64> = ca.iter().zip(&cb).map(|(x, y)| x + y).collect();
        let dec = enc.decode_real(&sum, enc.scale());
        let expect: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert!(max_err(&dec, &expect) < 1e-5);
    }

    #[test]
    fn slot_rotation_matches_automorphism() {
        // decode(automorph_{5^r}(m)) == rotate(decode(m), r): the core
        // property CKKS rotations rely on.
        let n = 32;
        let enc = Encoder::new(n, 2f64.powi(26));
        let vals: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let coeffs = enc.encode_real(&vals);
        // Apply X -> X^5 on signed coefficients (one rotation step).
        let k = 5usize;
        let mut rotated = vec![0i64; n];
        for (i, &c) in coeffs.iter().enumerate() {
            let j = (i * k) % (2 * n);
            if j < n {
                rotated[j] += c;
            } else {
                rotated[j - n] -= c;
            }
        }
        let dec = enc.decode_real(&rotated, enc.scale());
        // Slots shift left by 1.
        let expect: Vec<f64> = (0..16).map(|i| vals[(i + 1) % 16]).collect();
        assert!(max_err(&dec, &expect) < 1e-5, "{dec:?}");
    }

    #[test]
    fn zero_padding() {
        let enc = Encoder::new(32, 2f64.powi(26));
        let coeffs = enc.encode_real(&[1.0]);
        let dec = enc.decode_real(&coeffs, enc.scale());
        assert!((dec[0] - 1.0).abs() < 1e-6);
        assert!(dec[1..].iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "too many slots")]
    fn rejects_overfull() {
        let enc = Encoder::new(8, 1024.0);
        let _ = enc.encode_real(&[0.0; 5]);
    }
}
