//! CKKS ciphertexts: a pair of RNS polynomials plus level/scale
//! bookkeeping.

use crate::rnspoly::RnsPoly;

/// An RLWE ciphertext `(c0, c1)` with `c0 + c1·s ≈ Δ·m`.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    /// Constant component (evaluation form).
    pub c0: RnsPoly,
    /// Linear component (evaluation form).
    pub c1: RnsPoly,
    /// Current level (index of the last active `Q` limb).
    pub level: usize,
    /// Current scale `Δ`.
    pub scale: f64,
}

impl Ciphertext {
    /// Wraps components.
    ///
    /// # Panics
    ///
    /// Panics if component limb counts disagree with `level`.
    pub fn new(c0: RnsPoly, c1: RnsPoly, level: usize, scale: f64) -> Self {
        assert_eq!(c0.limb_count(), level + 1, "c0 limb count != level+1");
        assert_eq!(c1.limb_count(), level + 1, "c1 limb count != level+1");
        Self {
            c0,
            c1,
            level,
            scale,
        }
    }

    /// Ring dimension.
    pub fn dim(&self) -> usize {
        self.c0.dim()
    }

    /// Number of active limbs.
    pub fn limb_count(&self) -> usize {
        self.level + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use ufc_math::poly::Form;

    #[test]
    fn construction_checks_limbs() {
        let ctx = CkksContext::new(32, 4, 2, 2, 36, 26);
        let a = RnsPoly::zero(&ctx, 3, Form::Eval);
        let b = RnsPoly::zero(&ctx, 3, Form::Eval);
        let ct = Ciphertext::new(a, b, 2, 1024.0);
        assert_eq!(ct.limb_count(), 3);
        assert_eq!(ct.dim(), 32);
    }

    #[test]
    #[should_panic(expected = "limb count")]
    fn mismatched_level_rejected() {
        let ctx = CkksContext::new(32, 4, 2, 2, 36, 26);
        let a = RnsPoly::zero(&ctx, 3, Form::Eval);
        let b = RnsPoly::zero(&ctx, 3, Form::Eval);
        let _ = Ciphertext::new(a, b, 3, 1024.0);
    }
}
