//! Key material: secret key, public key, and the hybrid key-switching
//! keys (relinearization / rotation / conjugation).
//!
//! Key-switching keys are generated per level so the embedded factor
//! `P · Q̂_j` always matches the active modulus chain — the same
//! accounting the on-the-fly key generation unit of UFC reproduces in
//! hardware (§IV-B5).

use crate::context::CkksContext;
use crate::rnspoly::RnsPoly;
use rand::Rng;
use ufc_math::automorph;
use ufc_math::modops::mul_mod;
use ufc_math::poly::{Form, Poly};
use ufc_math::sample::{gaussian, ternary_poly, uniform_poly};

/// Samples a centered discrete-Gaussian coefficient vector.
fn gaussian_signed<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<i64> {
    (0..n).map(|_| gaussian(rng, NOISE_SIGMA)).collect()
}

/// Noise standard deviation (the ubiquitous σ = 3.2), shared with the
/// static noise model in `ufc_isa::noise`.
pub use ufc_isa::noise::NOISE_SIGMA;

/// The ternary secret key.
#[derive(Debug, Clone)]
pub struct SecretKey {
    /// Centered coefficients in `{-1, 0, 1}`.
    signed: Vec<i64>,
}

impl SecretKey {
    /// Samples a fresh ternary secret for the given context.
    pub fn generate<R: Rng + ?Sized>(ctx: &CkksContext, rng: &mut R) -> Self {
        let p = ternary_poly(rng, ctx.n(), 3);
        let signed: Vec<i64> = p
            .coeffs()
            .iter()
            .map(|&c| if c == 2 { -1 } else { c as i64 })
            .collect();
        Self { signed }
    }

    /// The centered coefficient view.
    pub fn signed(&self) -> &[i64] {
        &self.signed
    }

    /// The secret as a limb polynomial for modulus `q`, in coefficient
    /// form.
    pub fn poly_mod(&self, q: u64, _n: usize) -> Poly {
        Poly::from_signed(&self.signed, q)
    }

    /// The secret over the first `count` Q limbs, in evaluation form.
    pub fn rns_eval(&self, ctx: &CkksContext, count: usize) -> RnsPoly {
        RnsPoly::from_signed(ctx, &self.signed, count).to_eval(ctx)
    }
}

/// One key-switching key: per level, per digit, a pair `(b_j, a_j)`
/// over the active `Q` limbs extended by `P`, in evaluation form.
#[derive(Debug, Clone)]
pub struct SwitchingKey {
    /// `per_level[level][digit] = (b_j, a_j)`.
    per_level: Vec<Vec<(RnsPoly, RnsPoly)>>,
}

impl SwitchingKey {
    /// Generates a key switching `s_from → s` (the context's secret),
    /// where `s_from` is given as centered coefficients.
    pub fn generate<R: Rng + ?Sized>(
        ctx: &CkksContext,
        sk: &SecretKey,
        s_from_signed: &[i64],
        rng: &mut R,
    ) -> Self {
        let n = ctx.n();
        let mut per_level = Vec::with_capacity(ctx.max_level() + 1);
        for level in 0..=ctx.max_level() {
            let active = level + 1;
            let mut digit_keys = Vec::new();
            for dt in ctx.digits() {
                let (lo, hi) = dt.limb_range;
                if lo >= active {
                    break;
                }
                let hi_l = hi.min(active);
                // All moduli for this key: active Q then P.
                let moduli: Vec<u64> = ctx.q_moduli()[..active]
                    .iter()
                    .chain(ctx.p_moduli())
                    .copied()
                    .collect();
                let mut b_limbs = Vec::with_capacity(moduli.len());
                let mut a_limbs = Vec::with_capacity(moduli.len());
                // One small-integer noise polynomial shared by every
                // limb: RNS limbs must be residues of the same integer
                // polynomial or CRT reconstruction breaks.
                let e_signed = gaussian_signed(rng, n);
                for (idx, &q) in moduli.iter().enumerate() {
                    let ntt = ctx.ntt_for_modulus(q);
                    let a = uniform_poly(rng, n, q);
                    let e = Poly::from_signed(&e_signed, q);
                    let s = Poly::from_signed(&sk.signed, q);
                    let s_from = Poly::from_signed(s_from_signed, q);
                    // factor = [P * Qhat_j]_q for active Q limbs inside
                    // the key; 0 on P limbs (P ≡ 0 there) and on Q
                    // limbs automatically via the product.
                    let factor = if idx < active {
                        let mut f = ctx.p_mod_q(idx);
                        for (k, &qk) in ctx.q_moduli()[..active].iter().enumerate() {
                            if !(lo..hi_l).contains(&k) {
                                f = mul_mod(f, qk % q, q);
                            }
                        }
                        f
                    } else {
                        0
                    };
                    // b = -a*s + e + factor * s_from  (over Z_q).
                    let a_eval = ntt.to_eval(&a);
                    let s_eval = ntt.to_eval(&s);
                    let as_prod = ntt.to_coeff(&a_eval.hadamard(&s_eval));
                    let b = as_prod.neg().add(&e).add(&s_from.scale(factor));
                    b_limbs.push(ntt.to_eval(&b));
                    a_limbs.push(a_eval);
                }
                digit_keys.push((
                    RnsPoly::from_limbs(b_limbs, Form::Eval),
                    RnsPoly::from_limbs(a_limbs, Form::Eval),
                ));
            }
            per_level.push(digit_keys);
        }
        Self { per_level }
    }

    /// The digit keys active at `level`.
    pub fn at_level(&self, level: usize) -> &[(RnsPoly, RnsPoly)] {
        &self.per_level[level]
    }
}

/// The public key: `(b, a)` with `b = -a·s + e` over full `Q`.
#[derive(Debug, Clone)]
pub struct PublicKey {
    /// `b` component, evaluation form.
    pub b: RnsPoly,
    /// `a` component, evaluation form.
    pub a: RnsPoly,
}

/// A full key set: public, relinearization, conjugation and rotation
/// keys.
#[derive(Debug)]
pub struct KeySet {
    /// Encryption key.
    pub public: PublicKey,
    /// Key switching `s² → s` (relinearization).
    pub relin: SwitchingKey,
    /// Key switching `conj(s) → s`.
    pub conj: SwitchingKey,
    /// Rotation keys by Galois exponent `k`.
    rotations: std::collections::HashMap<usize, SwitchingKey>,
}

impl KeySet {
    /// Generates public + relinearization + conjugation keys.
    pub fn generate<R: Rng + ?Sized>(ctx: &CkksContext, sk: &SecretKey, rng: &mut R) -> Self {
        let n = ctx.n();
        let active = ctx.max_level() + 1;
        // Public key over full Q (one shared noise polynomial; see
        // SwitchingKey::generate).
        let mut b_limbs = Vec::new();
        let mut a_limbs = Vec::new();
        let e_signed = gaussian_signed(rng, n);
        for i in 0..active {
            let q = ctx.q_moduli()[i];
            let ntt = ctx.ntt_q(i);
            let a = uniform_poly(rng, n, q);
            let e = Poly::from_signed(&e_signed, q);
            let s = Poly::from_signed(&sk.signed, q);
            let a_eval = ntt.to_eval(&a);
            let as_prod = ntt.to_coeff(&a_eval.hadamard(&ntt.to_eval(&s)));
            let b = as_prod.neg().add(&e);
            b_limbs.push(ntt.to_eval(&b));
            a_limbs.push(a_eval);
        }
        let public = PublicKey {
            b: RnsPoly::from_limbs(b_limbs, Form::Eval),
            a: RnsPoly::from_limbs(a_limbs, Form::Eval),
        };

        // s² for relinearization.
        let s2 = square_signed(&sk.signed);
        let relin = SwitchingKey::generate(ctx, sk, &s2, rng);

        // conj(s): automorphism with k = 2N - 1.
        let conj_s = automorph_signed(&sk.signed, 2 * n - 1);
        let conj = SwitchingKey::generate(ctx, sk, &conj_s, rng);

        Self {
            public,
            relin,
            conj,
            rotations: std::collections::HashMap::new(),
        }
    }

    /// Generates and stores the rotation key for slot step `r`.
    pub fn gen_rotation_key<R: Rng + ?Sized>(
        &mut self,
        ctx: &CkksContext,
        sk: &SecretKey,
        step: isize,
        rng: &mut R,
    ) {
        let k = automorph::rotation_exponent(step, ctx.n());
        if self.rotations.contains_key(&k) {
            return;
        }
        let s_k = automorph_signed(sk.signed(), k);
        let key = SwitchingKey::generate(ctx, sk, &s_k, rng);
        self.rotations.insert(k, key);
    }

    /// Fetches the rotation key for Galois exponent `k`.
    pub fn rotation_key(&self, k: usize) -> Option<&SwitchingKey> {
        self.rotations.get(&k)
    }

    /// Number of rotation keys held (memory accounting for the
    /// minimum-key bootstrapping method of ARK the paper reuses).
    pub fn rotation_key_count(&self) -> usize {
        self.rotations.len()
    }
}

/// Negacyclic square of a signed coefficient vector (exact integer
/// arithmetic; used for the `s²` relinearization target).
fn square_signed(s: &[i64]) -> Vec<i64> {
    let n = s.len();
    let mut out = vec![0i64; n];
    for i in 0..n {
        if s[i] == 0 {
            continue;
        }
        for j in 0..n {
            let p = s[i] * s[j];
            let k = i + j;
            if k < n {
                out[k] += p;
            } else {
                out[k - n] -= p;
            }
        }
    }
    out
}

/// Galois automorphism on signed coefficients.
fn automorph_signed(s: &[i64], k: usize) -> Vec<i64> {
    let n = s.len();
    let mut out = vec![0i64; n];
    for (i, &c) in s.iter().enumerate() {
        let j = (i * k) % (2 * n);
        if j < n {
            out[j] = c;
        } else {
            out[j - n] = -c;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> CkksContext {
        CkksContext::new(32, 4, 2, 2, 36, 26)
    }

    #[test]
    fn secret_is_ternary() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let sk = SecretKey::generate(&c, &mut rng);
        assert!(sk.signed().iter().all(|&v| (-1..=1).contains(&v)));
        assert_eq!(sk.signed().len(), 32);
    }

    #[test]
    fn public_key_decrypts_to_noise() {
        // b + a*s should be just the (small) noise e.
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(2);
        let sk = SecretKey::generate(&c, &mut rng);
        let ks = KeySet::generate(&c, &sk, &mut rng);
        let s_eval = sk.rns_eval(&c, c.max_level() + 1);
        let check = ks.public.b.add(&ks.public.a.mul(&s_eval)).to_coeff(&c);
        for l in 0..check.limb_count() {
            let q = check.limb_modulus(l);
            for &v in check.limb(l) {
                let centered = ufc_math::modops::to_signed(v, q);
                assert!(centered.abs() < 64, "noise too large: {centered}");
            }
        }
    }

    #[test]
    fn switching_key_digit_counts_follow_level() {
        let c = CkksContext::new(32, 6, 2, 3, 36, 26);
        let mut rng = StdRng::seed_from_u64(3);
        let sk = SecretKey::generate(&c, &mut rng);
        let swk = SwitchingKey::generate(&c, &sk, sk.signed(), &mut rng);
        assert_eq!(swk.at_level(5).len(), 3);
        assert_eq!(swk.at_level(3).len(), 2);
        assert_eq!(swk.at_level(1).len(), 1);
    }

    #[test]
    fn rotation_keys_are_cached() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(4);
        let sk = SecretKey::generate(&c, &mut rng);
        let mut ks = KeySet::generate(&c, &sk, &mut rng);
        ks.gen_rotation_key(&c, &sk, 1, &mut rng);
        ks.gen_rotation_key(&c, &sk, 1, &mut rng);
        assert_eq!(ks.rotation_key_count(), 1);
        let k = automorph::rotation_exponent(1, c.n());
        assert!(ks.rotation_key(k).is_some());
    }

    #[test]
    fn square_signed_matches_schoolbook_ring() {
        let s = vec![1i64, -1, 0, 1];
        // (1 - X + X^3)^2 = 1 - 2X + X^2 + 2X^3 - 2X^4 + X^6
        // mod X^4+1: X^4 = -1, X^6 = -X^2:
        // 1 - 2X + X^2 + 2X^3 + 2 - X^2 = 3 - 2X + 2X^3.
        assert_eq!(square_signed(&s), vec![3, -2, 0, 2]);
    }
}
