//! RNS polynomials: one limb per active modulus, carried in either
//! coefficient or evaluation (NTT) form.

use crate::context::CkksContext;
use ufc_math::automorph;
use ufc_math::modops::{mul_mod, sub_mod};
use ufc_math::poly::{Form, Poly};

/// A polynomial over `Q = q_0 … q_level` (optionally extended by `P`)
/// in RNS representation.
#[derive(Debug, Clone, PartialEq)]
pub struct RnsPoly {
    /// One limb per modulus, `limbs[i]` over `moduli[i]`.
    limbs: Vec<Poly>,
    /// Representation of all limbs (kept uniform).
    form: Form,
}

impl RnsPoly {
    /// Zero polynomial over the first `count` Q limbs.
    pub fn zero(ctx: &CkksContext, count: usize, form: Form) -> Self {
        let limbs = ctx.q_moduli()[..count]
            .iter()
            .map(|&q| Poly::zero(ctx.n(), q))
            .collect();
        Self { limbs, form }
    }

    /// Wraps limbs that are already consistent.
    ///
    /// # Panics
    ///
    /// Panics if `limbs` is empty or dimensions mismatch.
    pub fn from_limbs(limbs: Vec<Poly>, form: Form) -> Self {
        assert!(!limbs.is_empty(), "need at least one limb");
        let n = limbs[0].dim();
        assert!(limbs.iter().all(|l| l.dim() == n), "limb dims must match");
        Self { limbs, form }
    }

    /// Builds from signed coefficients, reducing into every modulus.
    pub fn from_signed(ctx: &CkksContext, signed: &[i64], count: usize) -> Self {
        let limbs = ctx.q_moduli()[..count]
            .iter()
            .map(|&q| Poly::from_signed(signed, q))
            .collect();
        Self {
            limbs,
            form: Form::Coeff,
        }
    }

    /// The limbs.
    pub fn limbs(&self) -> &[Poly] {
        &self.limbs
    }

    /// Mutable limbs (form invariants are the caller's responsibility).
    pub fn limbs_mut(&mut self) -> &mut [Poly] {
        &mut self.limbs
    }

    /// Current representation.
    pub fn form(&self) -> Form {
        self.form
    }

    /// Number of limbs.
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }

    /// Ring dimension.
    pub fn dim(&self) -> usize {
        self.limbs[0].dim()
    }

    /// Converts all limbs to evaluation form (no-op if already there).
    pub fn to_eval(&self, ctx: &CkksContext) -> Self {
        if self.form == Form::Eval {
            return self.clone();
        }
        let limbs = self
            .limbs
            .iter()
            .map(|l| ctx.ntt_for_modulus(l.modulus()).to_eval(l))
            .collect();
        Self {
            limbs,
            form: Form::Eval,
        }
    }

    /// Converts all limbs to coefficient form (no-op if already there).
    pub fn to_coeff(&self, ctx: &CkksContext) -> Self {
        if self.form == Form::Coeff {
            return self.clone();
        }
        let limbs = self
            .limbs
            .iter()
            .map(|l| ctx.ntt_for_modulus(l.modulus()).to_coeff(l))
            .collect();
        Self {
            limbs,
            form: Form::Coeff,
        }
    }

    /// Limb-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on form or limb-count mismatch.
    pub fn add(&self, rhs: &Self) -> Self {
        self.check(rhs);
        Self {
            limbs: self
                .limbs
                .iter()
                .zip(&rhs.limbs)
                .map(|(a, b)| a.add(b))
                .collect(),
            form: self.form,
        }
    }

    /// Limb-wise subtraction.
    pub fn sub(&self, rhs: &Self) -> Self {
        self.check(rhs);
        Self {
            limbs: self
                .limbs
                .iter()
                .zip(&rhs.limbs)
                .map(|(a, b)| a.sub(b))
                .collect(),
            form: self.form,
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Self {
            limbs: self.limbs.iter().map(ufc_math::Poly::neg).collect(),
            form: self.form,
        }
    }

    /// Limb-wise Hadamard product (both sides must be in evaluation
    /// form — polynomial multiplication in coefficient form would be
    /// wrong).
    ///
    /// # Panics
    ///
    /// Panics unless both operands are in evaluation form.
    pub fn mul(&self, rhs: &Self) -> Self {
        assert_eq!(self.form, Form::Eval, "mul requires evaluation form");
        self.check(rhs);
        Self {
            limbs: self
                .limbs
                .iter()
                .zip(&rhs.limbs)
                .map(|(a, b)| a.hadamard(b))
                .collect(),
            form: Form::Eval,
        }
    }

    /// Multiplies limb `i` by scalar `s_i` (one scalar per limb).
    pub fn scale_per_limb(&self, scalars: &[u64]) -> Self {
        assert_eq!(scalars.len(), self.limbs.len(), "scalar count mismatch");
        Self {
            limbs: self
                .limbs
                .iter()
                .zip(scalars)
                .map(|(l, &s)| l.scale(s))
                .collect(),
            form: self.form,
        }
    }

    /// Drops the last limb (rescale bookkeeping).
    ///
    /// # Panics
    ///
    /// Panics if only one limb remains.
    pub fn drop_last(&self) -> Self {
        assert!(self.limbs.len() > 1, "cannot drop the last limb");
        Self {
            limbs: self.limbs[..self.limbs.len() - 1].to_vec(),
            form: self.form,
        }
    }

    /// Exact RNS rescale: divides by the last modulus with rounding,
    /// dropping that limb. Requires coefficient form.
    ///
    /// For each remaining limb `i`:
    /// `c'_i = (c_i - [c_last]_{q_i}) * q_last^{-1} mod q_i`.
    ///
    /// # Panics
    ///
    /// Panics unless in coefficient form with at least two limbs.
    pub fn rescale(&self) -> Self {
        assert_eq!(self.form, Form::Coeff, "rescale requires coefficient form");
        assert!(self.limbs.len() > 1, "rescale needs two or more limbs");
        let last = &self.limbs[self.limbs.len() - 1];
        let q_last = last.modulus();
        let limbs = self.limbs[..self.limbs.len() - 1]
            .iter()
            .map(|l| {
                let qi = l.modulus();
                let q_last_inv =
                    ufc_math::modops::inv_mod(q_last % qi, qi).expect("moduli coprime");
                let coeffs = l
                    .coeffs()
                    .iter()
                    .zip(last.coeffs())
                    .map(|(&a, &b)| mul_mod(sub_mod(a, b % qi, qi), q_last_inv, qi))
                    .collect();
                Poly::from_coeffs(coeffs, qi)
            })
            .collect();
        Self {
            limbs,
            form: Form::Coeff,
        }
    }

    /// Applies the Galois automorphism `X → X^k` limb-wise, in either
    /// form.
    pub fn automorphism(&self, k: usize) -> Self {
        let apply = match self.form {
            Form::Coeff => automorph::apply_coeff,
            Form::Eval => automorph::apply_eval,
        };
        Self {
            limbs: self.limbs.iter().map(|l| apply(l, k)).collect(),
            form: self.form,
        }
    }

    fn check(&self, rhs: &Self) {
        assert_eq!(self.form, rhs.form, "representation mismatch");
        assert_eq!(self.limbs.len(), rhs.limbs.len(), "limb count mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;

    fn ctx() -> CkksContext {
        CkksContext::new(32, 4, 2, 2, 36, 26)
    }

    #[test]
    fn zero_and_from_signed() {
        let c = ctx();
        let z = RnsPoly::zero(&c, 3, Form::Coeff);
        assert_eq!(z.limb_count(), 3);
        let p = RnsPoly::from_signed(&c, &[1, -1, 0, 5], 2);
        assert_eq!(p.limbs()[0].coeffs()[1], c.q_moduli()[0] - 1);
        assert_eq!(p.limbs()[1].coeffs()[3], 5);
    }

    #[test]
    fn eval_roundtrip() {
        let c = ctx();
        let signed: Vec<i64> = (0..32).map(|i| i * 3 - 40).collect();
        let p = RnsPoly::from_signed(&c, &signed, 4);
        let back = p.to_eval(&c).to_coeff(&c);
        assert_eq!(back, p);
    }

    #[test]
    fn mul_matches_schoolbook_per_limb() {
        let c = ctx();
        let a = RnsPoly::from_signed(&c, &(0..32).map(|i| i % 7).collect::<Vec<_>>(), 2);
        let b = RnsPoly::from_signed(&c, &(0..32).map(|i| (i % 5) - 2).collect::<Vec<_>>(), 2);
        let prod = a.to_eval(&c).mul(&b.to_eval(&c)).to_coeff(&c);
        for (i, limb) in prod.limbs().iter().enumerate() {
            let expect = a.limbs()[i].negacyclic_mul_schoolbook(&b.limbs()[i]);
            assert_eq!(limb, &expect, "limb {i}");
        }
    }

    #[test]
    fn rescale_divides_exactly_scaled_values() {
        let c = ctx();
        // Value v * q_last should rescale to exactly v.
        let q_last = c.q_moduli()[3];
        let v: Vec<i64> = (0..32).map(|i| i - 16).collect();
        // Construct v * q_last in all four limbs.
        let scaled: Vec<Poly> = c.q_moduli()[..4]
            .iter()
            .map(|&q| {
                let coeffs: Vec<u64> = v
                    .iter()
                    .map(|&x| {
                        let sv = ufc_math::modops::from_signed(x, q);
                        mul_mod(sv, q_last % q, q)
                    })
                    .collect();
                Poly::from_coeffs(coeffs, q)
            })
            .collect();
        let p = RnsPoly::from_limbs(scaled, Form::Coeff);
        let r = p.rescale();
        assert_eq!(r.limb_count(), 3);
        let expect = RnsPoly::from_signed(&c, &v, 3);
        assert_eq!(r, expect);
    }

    #[test]
    fn automorphism_consistent_between_forms() {
        let c = ctx();
        let signed: Vec<i64> = (0..32).map(|i| i * i % 11).collect();
        let p = RnsPoly::from_signed(&c, &signed, 3);
        let k = 5;
        let via_coeff = p.automorphism(k).to_eval(&c);
        let via_eval = p.to_eval(&c).automorphism(k);
        assert_eq!(via_coeff, via_eval);
    }

    #[test]
    #[should_panic(expected = "evaluation form")]
    fn mul_in_coeff_form_is_rejected() {
        let c = ctx();
        let a = RnsPoly::from_signed(&c, &[1; 32], 2);
        let _ = a.mul(&a);
    }
}
