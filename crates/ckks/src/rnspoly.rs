//! RNS polynomials: a thin CKKS-facing wrapper over the shared flat
//! [`RnsPlane`] data plane.
//!
//! All arithmetic lives in `ufc_math::plane`; this type binds the
//! plane to a [`CkksContext`] (which owns the NTT tables) and exposes
//! in-place `to_eval` / `to_coeff` so the evaluator's hot paths never
//! clone limb data.

use crate::context::CkksContext;
use ufc_math::plane::RnsPlane;
use ufc_math::poly::{Form, Poly};

/// A polynomial over `Q = q_0 … q_level` (optionally extended by `P`)
/// in RNS representation, stored limb-major in one flat buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct RnsPoly {
    plane: RnsPlane,
}

impl RnsPoly {
    /// Zero polynomial over the first `count` Q limbs.
    pub fn zero(ctx: &CkksContext, count: usize, form: Form) -> Self {
        Self {
            plane: RnsPlane::zero(ctx.n(), &ctx.q_moduli()[..count], form),
        }
    }

    /// Wraps an existing plane.
    pub fn from_plane(plane: RnsPlane) -> Self {
        Self { plane }
    }

    /// Flattens per-limb polynomials into a plane.
    ///
    /// # Panics
    ///
    /// Panics if `limbs` is empty or dimensions mismatch.
    pub fn from_limbs(limbs: Vec<Poly>, form: Form) -> Self {
        Self {
            plane: RnsPlane::from_polys(&limbs, form),
        }
    }

    /// Builds from signed coefficients, reducing into every modulus.
    pub fn from_signed(ctx: &CkksContext, signed: &[i64], count: usize) -> Self {
        Self {
            plane: RnsPlane::from_signed(signed, &ctx.q_moduli()[..count]),
        }
    }

    /// The underlying flat plane.
    #[inline]
    pub fn plane(&self) -> &RnsPlane {
        &self.plane
    }

    /// Read-only view of limb `i`'s residues.
    #[inline]
    pub fn limb(&self, i: usize) -> &[u64] {
        self.plane.limb(i)
    }

    /// The modulus of limb `i`.
    #[inline]
    pub fn limb_modulus(&self, i: usize) -> u64 {
        self.plane.modulus(i)
    }

    /// Copies limb `i` out as a standalone [`Poly`].
    pub fn limb_poly(&self, i: usize) -> Poly {
        self.plane.limb_poly(i)
    }

    /// The limb moduli, in order.
    #[inline]
    pub fn moduli(&self) -> &[u64] {
        self.plane.moduli()
    }

    /// Current representation.
    #[inline]
    pub fn form(&self) -> Form {
        self.plane.form()
    }

    /// Number of limbs.
    #[inline]
    pub fn limb_count(&self) -> usize {
        self.plane.limb_count()
    }

    /// Ring dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.plane.dim()
    }

    /// An explicit copy of the first `count` limbs.
    pub fn prefix(&self, count: usize) -> Self {
        Self {
            plane: self.plane.prefix(count),
        }
    }

    /// Converts to evaluation form in place (no-op if already there).
    pub fn to_eval_mut(&mut self, ctx: &CkksContext) {
        if self.form() == Form::Coeff {
            let tables = ctx.ntt_tables(self.plane.moduli());
            self.plane.ntt_forward(&tables);
        }
    }

    /// Converts to coefficient form in place (no-op if already there).
    pub fn to_coeff_mut(&mut self, ctx: &CkksContext) {
        if self.form() == Form::Eval {
            let tables = ctx.ntt_tables(self.plane.moduli());
            self.plane.ntt_inverse(&tables);
        }
    }

    /// Converts to evaluation form, consuming self (zero-copy).
    #[must_use]
    pub fn to_eval(mut self, ctx: &CkksContext) -> Self {
        self.to_eval_mut(ctx);
        self
    }

    /// Converts to coefficient form, consuming self (zero-copy).
    #[must_use]
    pub fn to_coeff(mut self, ctx: &CkksContext) -> Self {
        self.to_coeff_mut(ctx);
        self
    }

    /// Out-of-place conversion to evaluation form: one buffer copy,
    /// then the in-place transform.
    pub fn to_eval_copy(&self, ctx: &CkksContext) -> Self {
        let mut out = self.prefix(self.limb_count());
        out.to_eval_mut(ctx);
        out
    }

    /// Out-of-place conversion to coefficient form: one buffer copy,
    /// then the in-place transform.
    pub fn to_coeff_copy(&self, ctx: &CkksContext) -> Self {
        let mut out = self.prefix(self.limb_count());
        out.to_coeff_mut(ctx);
        out
    }

    /// In-place limb-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on form, moduli or limb-count mismatch.
    pub fn add_assign(&mut self, rhs: &Self) {
        self.plane.add_assign(&rhs.plane);
    }

    /// In-place limb-wise subtraction.
    pub fn sub_assign(&mut self, rhs: &Self) {
        self.plane.sub_assign(&rhs.plane);
    }

    /// In-place negation.
    pub fn neg_assign(&mut self) {
        self.plane.neg_assign();
    }

    /// In-place Hadamard product (both sides must be in evaluation
    /// form).
    pub fn mul_assign(&mut self, rhs: &Self) {
        self.plane.hadamard_assign(&rhs.plane);
    }

    /// Multiply-accumulate: `self ← self + a ∘ b` (all evaluation
    /// form). The inner loop of key-switch digit accumulation.
    pub fn mac_assign(&mut self, a: &Self, b: &Self) {
        self.plane.mac_assign(&a.plane, &b.plane);
    }

    /// In-place per-limb scalar multiply.
    pub fn scale_limbs_assign(&mut self, scalars: &[u64]) {
        self.plane.scale_limbs_assign(scalars);
    }

    /// In-place Galois automorphism `X → X^k`, in either form.
    pub fn automorph_assign(&mut self, k: usize) {
        self.plane.automorph_assign(k);
    }

    /// In-place exact RNS rescale (drops the last limb). Requires
    /// coefficient form.
    pub fn rescale_assign(&mut self) {
        self.plane.rescale_assign();
    }

    /// Drops all limbs past the first `count`, in place.
    pub fn truncate_limbs(&mut self, count: usize) {
        self.plane.truncate_limbs(count);
    }

    /// Limb-wise addition (allocating convenience wrapper).
    pub fn add(&self, rhs: &Self) -> Self {
        let mut out = self.prefix(self.limb_count());
        out.add_assign(rhs);
        out
    }

    /// Limb-wise subtraction (allocating convenience wrapper).
    pub fn sub(&self, rhs: &Self) -> Self {
        let mut out = self.prefix(self.limb_count());
        out.sub_assign(rhs);
        out
    }

    /// Negation (allocating convenience wrapper).
    pub fn neg(&self) -> Self {
        let mut out = self.prefix(self.limb_count());
        out.neg_assign();
        out
    }

    /// Limb-wise Hadamard product (both sides must be in evaluation
    /// form — polynomial multiplication in coefficient form would be
    /// wrong).
    ///
    /// # Panics
    ///
    /// Panics unless both operands are in evaluation form.
    pub fn mul(&self, rhs: &Self) -> Self {
        let mut out = self.prefix(self.limb_count());
        out.mul_assign(rhs);
        out
    }

    /// Multiplies limb `i` by scalar `s_i` (one scalar per limb;
    /// allocating convenience wrapper).
    pub fn scale_per_limb(&self, scalars: &[u64]) -> Self {
        let mut out = self.prefix(self.limb_count());
        out.scale_limbs_assign(scalars);
        out
    }

    /// Drops the last limb (rescale bookkeeping).
    ///
    /// # Panics
    ///
    /// Panics if only one limb remains.
    pub fn drop_last(&self) -> Self {
        assert!(self.limb_count() > 1, "cannot drop the last limb");
        self.prefix(self.limb_count() - 1)
    }

    /// Exact RNS rescale: divides by the last modulus with rounding,
    /// dropping that limb. Requires coefficient form.
    ///
    /// For each remaining limb `i`:
    /// `c'_i = (c_i - [c_last]_{q_i}) * q_last^{-1} mod q_i`.
    ///
    /// # Panics
    ///
    /// Panics unless in coefficient form with at least two limbs.
    pub fn rescale(&self) -> Self {
        let mut out = self.prefix(self.limb_count());
        out.rescale_assign();
        out
    }

    /// Applies the Galois automorphism `X → X^k` limb-wise, in either
    /// form (allocating convenience wrapper).
    pub fn automorphism(&self, k: usize) -> Self {
        let mut out = self.prefix(self.limb_count());
        out.automorph_assign(k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use ufc_math::modops::mul_mod;

    fn ctx() -> CkksContext {
        CkksContext::new(32, 4, 2, 2, 36, 26)
    }

    #[test]
    fn zero_and_from_signed() {
        let c = ctx();
        let z = RnsPoly::zero(&c, 3, Form::Coeff);
        assert_eq!(z.limb_count(), 3);
        let p = RnsPoly::from_signed(&c, &[1, -1, 0, 5], 2);
        assert_eq!(p.limb(0)[1], c.q_moduli()[0] - 1);
        assert_eq!(p.limb(1)[3], 5);
    }

    #[test]
    fn eval_roundtrip() {
        let c = ctx();
        let signed: Vec<i64> = (0..32).map(|i| i * 3 - 40).collect();
        let p = RnsPoly::from_signed(&c, &signed, 4);
        let back = p.to_eval_copy(&c).to_coeff(&c);
        assert_eq!(back, p);
    }

    #[test]
    fn in_place_and_copy_conversions_agree() {
        let c = ctx();
        let signed: Vec<i64> = (0..32).map(|i| 7 - i * 2).collect();
        let p = RnsPoly::from_signed(&c, &signed, 3);
        let copied = p.to_eval_copy(&c);
        let mut in_place = p.prefix(3);
        in_place.to_eval_mut(&c);
        assert_eq!(copied, in_place);
        assert_eq!(p.form(), Form::Coeff, "source untouched by the copy");
    }

    #[test]
    fn mul_matches_schoolbook_per_limb() {
        let c = ctx();
        let a = RnsPoly::from_signed(&c, &(0..32).map(|i| i % 7).collect::<Vec<_>>(), 2);
        let b = RnsPoly::from_signed(&c, &(0..32).map(|i| (i % 5) - 2).collect::<Vec<_>>(), 2);
        let prod = a.to_eval_copy(&c).mul(&b.to_eval_copy(&c)).to_coeff(&c);
        for i in 0..prod.limb_count() {
            let expect = a.limb_poly(i).negacyclic_mul_schoolbook(&b.limb_poly(i));
            assert_eq!(prod.limb(i), expect.coeffs(), "limb {i}");
        }
    }

    #[test]
    fn rescale_divides_exactly_scaled_values() {
        let c = ctx();
        // Value v * q_last should rescale to exactly v.
        let q_last = c.q_moduli()[3];
        let v: Vec<i64> = (0..32).map(|i| i - 16).collect();
        // Construct v * q_last in all four limbs.
        let scaled: Vec<Poly> = c.q_moduli()[..4]
            .iter()
            .map(|&q| {
                let coeffs: Vec<u64> = v
                    .iter()
                    .map(|&x| {
                        let sv = ufc_math::modops::from_signed(x, q);
                        mul_mod(sv, q_last % q, q)
                    })
                    .collect();
                Poly::from_coeffs(coeffs, q)
            })
            .collect();
        let p = RnsPoly::from_limbs(scaled, Form::Coeff);
        let r = p.rescale();
        assert_eq!(r.limb_count(), 3);
        let expect = RnsPoly::from_signed(&c, &v, 3);
        assert_eq!(r, expect);
    }

    #[test]
    fn automorphism_consistent_between_forms() {
        let c = ctx();
        let signed: Vec<i64> = (0..32).map(|i| i * i % 11).collect();
        let p = RnsPoly::from_signed(&c, &signed, 3);
        let k = 5;
        let via_coeff = p.automorphism(k).to_eval(&c);
        let via_eval = p.to_eval_copy(&c).automorphism(k);
        assert_eq!(via_coeff, via_eval);
    }

    #[test]
    #[should_panic(expected = "evaluation form")]
    fn mul_in_coeff_form_is_rejected() {
        let c = ctx();
        let a = RnsPoly::from_signed(&c, &[1; 32], 2);
        let _ = a.mul(&a);
    }
}
