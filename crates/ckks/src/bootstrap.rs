//! CKKS bootstrapping building blocks: BSGS homomorphic linear
//! transforms, Chebyshev polynomial evaluation, and the
//! ModRaise → CoeffToSlot → EvalMod → SlotToCoeff pipeline.

use crate::ciphertext::Ciphertext;
use crate::encoding::Complex;
use crate::eval::Evaluator;
use crate::keys::{KeySet, SecretKey};
use crate::rnspoly::RnsPoly;
use rand::Rng;
use ufc_isa::trace::TraceOp;

/// A homomorphic linear transform `z ↦ M·z` on slot vectors, stored as
/// its non-zero generalized diagonals (the BSGS-friendly layout).
#[derive(Debug, Clone)]
pub struct LinearTransform {
    slots: usize,
    /// `(shift, diagonal values)` pairs: `out[i] += diag[i] * in[(i+shift) mod slots]`.
    diagonals: Vec<(usize, Vec<Complex>)>,
}

impl LinearTransform {
    /// Builds the transform from a dense `slots × slots` complex
    /// matrix, extracting non-zero diagonals.
    pub fn from_matrix(m: &[Vec<Complex>]) -> Self {
        let slots = m.len();
        assert!(
            slots > 0 && m.iter().all(|r| r.len() == slots),
            "square matrix"
        );
        let mut diagonals = Vec::new();
        for shift in 0..slots {
            let diag: Vec<Complex> = (0..slots).map(|i| m[i][(i + shift) % slots]).collect();
            if diag
                .iter()
                .any(|&(re, im)| re.abs() > 1e-12 || im.abs() > 1e-12)
            {
                diagonals.push((shift, diag));
            }
        }
        Self { slots, diagonals }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The stored diagonals.
    pub fn diagonals(&self) -> &[(usize, Vec<Complex>)] {
        &self.diagonals
    }

    /// The rotation steps needed to evaluate this transform (one per
    /// diagonal, plain method).
    pub fn rotation_steps(&self) -> Vec<isize> {
        self.diagonals
            .iter()
            .map(|&(s, _)| s as isize)
            .filter(|&s| s != 0)
            .collect()
    }

    /// Reference (plaintext) application for validation.
    pub fn apply_plain(&self, z: &[Complex]) -> Vec<Complex> {
        assert_eq!(z.len(), self.slots);
        let mut out = vec![(0.0, 0.0); self.slots];
        for (shift, diag) in &self.diagonals {
            for i in 0..self.slots {
                let x = z[(i + shift) % self.slots];
                let d = diag[i];
                out[i].0 += d.0 * x.0 - d.1 * x.1;
                out[i].1 += d.0 * x.1 + d.1 * x.0;
            }
        }
        out
    }

    /// The rotation steps needed by [`Self::apply_bsgs`] with the
    /// given baby-step count: baby steps `1..bs` plus giant steps
    /// `bs, 2·bs, …`.
    pub fn bsgs_rotation_steps(&self, bs: usize) -> Vec<isize> {
        let giants = self.slots.div_ceil(bs);
        let mut steps: Vec<isize> = (1..bs as isize).collect();
        steps.extend((1..giants as isize).map(|g| g * bs as isize));
        steps.sort_unstable();
        steps.dedup();
        steps
    }

    /// Applies the transform with the **baby-step giant-step** method:
    /// `Σ_g rot_{g·bs}( Σ_b rot_{-g·bs}(diag_{g·bs+b}) ∘ rot_b(ct) )`.
    ///
    /// Same result and depth as [`Self::apply`], but only
    /// `bs + slots/bs` homomorphic rotations instead of one per
    /// diagonal — the structure behind the paper's bootstrapping
    /// rotation counts (§VI-D1's minimum-key method applies BSGS with
    /// shared keys).
    ///
    /// # Panics
    ///
    /// Panics if `bs` is zero or a needed rotation key is missing.
    pub fn apply_bsgs(
        &self,
        ev: &Evaluator,
        ct: &Ciphertext,
        keys: &KeySet,
        bs: usize,
    ) -> Ciphertext {
        assert!(bs > 0, "baby-step count must be positive");
        let s = self.slots;
        // Dense diagonal table for O(1) lookup.
        let mut table: Vec<Option<&Vec<Complex>>> = vec![None; s];
        for (shift, diag) in &self.diagonals {
            table[*shift] = Some(diag);
        }
        // Baby rotations (computed once, reused by every giant step).
        let mut babies: Vec<Ciphertext> = Vec::with_capacity(bs);
        babies.push(ct.clone());
        for b in 1..bs {
            babies.push(ev.rotate(ct, b as isize, keys));
        }
        let giants = s.div_ceil(bs);
        let mut acc: Option<Ciphertext> = None;
        for g in 0..giants {
            let mut inner: Option<Ciphertext> = None;
            for (b, baby) in babies.iter().enumerate() {
                let shift = g * bs + b;
                if shift >= s {
                    break;
                }
                let Some(diag) = table[shift] else { continue };
                // rot_{-g·bs}(diag): entry i holds diag[(i − g·bs) mod s].
                let twisted: Vec<Complex> =
                    (0..s).map(|i| diag[(i + s - (g * bs) % s) % s]).collect();
                let coeffs = ev.encoder().encode(&twisted);
                let pt = RnsPoly::from_signed(ev.context(), &coeffs, baby.level + 1)
                    .to_eval(ev.context());
                let term = ev.mul_plain(baby, &pt);
                inner = Some(match inner {
                    Some(a) => ev.add(&a, &term),
                    None => term,
                });
            }
            let Some(inner) = inner else { continue };
            let rotated = if g == 0 {
                inner
            } else {
                ev.rotate(&inner, (g * bs) as isize, keys)
            };
            acc = Some(match acc {
                Some(a) => ev.add(&a, &rotated),
                None => rotated,
            });
        }
        ev.rescale(&acc.expect("transform has at least one diagonal"))
    }

    /// Applies the transform homomorphically (diagonal method):
    /// `Σ_shift diag_shift ∘ rot_shift(ct)`, consuming one level.
    ///
    /// Requires rotation keys for every step in
    /// [`Self::rotation_steps`].
    pub fn apply(&self, ev: &Evaluator, ct: &Ciphertext, keys: &KeySet) -> Ciphertext {
        assert_eq!(self.slots, ev.context().slots(), "transform size mismatch");
        let mut acc: Option<Ciphertext> = None;
        for (shift, diag) in &self.diagonals {
            let rotated = if *shift == 0 {
                ct.clone()
            } else {
                ev.rotate(ct, *shift as isize, keys)
            };
            let coeffs = ev.encoder().encode(diag);
            let pt = RnsPoly::from_signed(ev.context(), &coeffs, rotated.level + 1)
                .to_eval(ev.context());
            let term = ev.mul_plain(&rotated, &pt);
            acc = Some(match acc {
                Some(a) => ev.add(&a, &term),
                None => term,
            });
        }
        ev.rescale(&acc.expect("transform has at least one diagonal"))
    }
}

/// Evaluates a polynomial `Σ c_k x^k` (real coefficients, degree ≤ 7
/// via direct power basis) homomorphically. Used by EvalMod's sine
/// approximation at test scale.
///
/// Consumes `ceil(log2(deg+1))` levels for the power ladder plus one
/// per coefficient multiply.
pub fn eval_poly(ev: &Evaluator, ct: &Ciphertext, coeffs: &[f64], keys: &KeySet) -> Ciphertext {
    assert!(
        !coeffs.is_empty() && coeffs.len() <= 8,
        "degree 0..7 supported"
    );
    // Build powers x^1..x^d with a simple square-and-multiply ladder.
    let deg = coeffs.len() - 1;
    let mut powers: Vec<Option<Ciphertext>> = vec![None; deg + 1];
    if deg >= 1 {
        powers[1] = Some(ct.clone());
    }
    for k in 2..=deg {
        let half = k / 2;
        let other = k - half;
        let a = powers[half].clone().expect("power computed");
        let b = powers[other].clone().expect("power computed");
        let p = ev.rescale(&ev.mul(&a, &b, keys));
        powers[k] = Some(p);
    }
    // Each term c_k·x^k: plaintext multiply at the power's own level,
    // rescale, then align every term to a common (level, scale) with
    // adjust_scale — scale drift across different rescale histories is
    // the reason the alignment pass exists.
    let slots = ev.context().slots();
    let mut terms: Vec<Ciphertext> = Vec::new();
    for (k, &c) in coeffs.iter().enumerate().skip(1) {
        if c == 0.0 {
            continue;
        }
        let p = powers[k].clone().expect("power computed");
        let pt = ev.encode_real_at(&vec![c; slots], p.level, ev.context().scale());
        let raw = Ciphertext::new(
            p.c0.mul(&pt),
            p.c1.mul(&pt),
            p.level,
            p.scale * ev.context().scale(),
        );
        terms.push(ev.rescale(&raw));
    }
    let target_level = terms
        .iter()
        .map(|t| t.level)
        .min()
        .expect("non-constant poly")
        - 1;
    let target_scale = ev.context().scale();
    let aligned: Vec<Ciphertext> = terms
        .iter()
        .map(|t| ev.adjust_scale(t, target_scale, target_level))
        .collect();
    let mut out = aligned[0].clone();
    for t in &aligned[1..] {
        out = ev.add(&out, t);
    }
    if coeffs[0] != 0.0 {
        let pt = ev.encode_real_at(&vec![coeffs[0]; slots], out.level, out.scale);
        out = ev.add_plain(&out, &pt);
    }
    out
}

/// Evaluates a linear combination of Chebyshev polynomials
/// `Σ c_k·T_k(x)` homomorphically via the recurrence
/// `T_{k+1} = 2x·T_k − T_{k−1}` — the numerically stable basis
/// production EvalMod uses (Han–Ki style) instead of raw powers.
///
/// Consumes one level per recurrence step plus one for the coefficient
/// combination. `x` should carry values in `[-1, 1]`.
///
/// # Panics
///
/// Panics for degree 0 or degree > 8, or when the level budget runs
/// out.
pub fn eval_chebyshev(ev: &Evaluator, x: &Ciphertext, coeffs: &[f64], keys: &KeySet) -> Ciphertext {
    let deg = coeffs.len().saturating_sub(1);
    assert!((1..=8).contains(&deg), "degree 1..8 supported");
    let slots = ev.context().slots();
    // T_0 = 1 (handled as the plaintext constant at the end), T_1 = x.
    let mut t_prev: Option<Ciphertext> = None; // T_{k-1}, None means T_0
    let mut t_cur = x.clone(); // T_1
    let mut terms: Vec<Ciphertext> = Vec::new();
    let push_term = |terms: &mut Vec<Ciphertext>, ev: &Evaluator, t: &Ciphertext, c: f64| {
        if c == 0.0 {
            return;
        }
        let pt = ev.encode_real_at(&vec![c; slots], t.level, ev.context().scale());
        let raw = Ciphertext::new(
            t.c0.mul(&pt),
            t.c1.mul(&pt),
            t.level,
            t.scale * ev.context().scale(),
        );
        terms.push(ev.rescale(&raw));
    };
    push_term(&mut terms, ev, &t_cur, coeffs[1]);
    for (k, &c) in coeffs.iter().enumerate().skip(2) {
        // T_k = 2x·T_{k-1} − T_{k-2}.
        let two_x_t = {
            let prod = ev.mul(x, &t_cur, keys);
            let doubled = Ciphertext::new(
                prod.c0.add(&prod.c0),
                prod.c1.add(&prod.c1),
                prod.level,
                prod.scale,
            );
            ev.rescale(&doubled)
        };
        let t_next = match &t_prev {
            // T_0 = 1: subtract the constant 1 at the current scale.
            None => {
                let one = ev.encode_real_at(&vec![1.0; slots], two_x_t.level, two_x_t.scale);
                Ciphertext::new(
                    two_x_t.c0.sub(&one),
                    two_x_t.c1.clone(),
                    two_x_t.level,
                    two_x_t.scale,
                )
            }
            Some(prev) => {
                let aligned = ev.adjust_scale(prev, two_x_t.scale, two_x_t.level);
                ev.sub(&two_x_t, &aligned)
            }
        };
        push_term(&mut terms, ev, &t_next, c);
        t_prev = Some(t_cur);
        t_cur = t_next;
        let _ = k;
    }
    // Align and sum all terms, then add c_0·T_0 = c_0.
    let target_level = terms.iter().map(|t| t.level).min().expect("non-trivial") - 1;
    let target_scale = ev.context().scale();
    let mut out = ev.adjust_scale(&terms[0], target_scale, target_level);
    for t in &terms[1..] {
        out = ev.add(&out, &ev.adjust_scale(t, target_scale, target_level));
    }
    if coeffs[0] != 0.0 {
        let pt = ev.encode_real_at(&vec![coeffs[0]; slots], out.level, out.scale);
        out = ev.add_plain(&out, &pt);
    }
    out
}

/// Reference Chebyshev evaluation on plaintext values.
pub fn chebyshev_reference(coeffs: &[f64], x: f64) -> f64 {
    let mut acc = coeffs[0];
    let (mut t_prev, mut t_cur) = (1.0f64, x);
    for &c in &coeffs[1..] {
        acc += c * t_cur;
        let t_next = 2.0 * x * t_cur - t_prev;
        t_prev = t_cur;
        t_cur = t_next;
    }
    acc
}

/// Bootstrapping configuration at test scale.
#[derive(Debug, Clone)]
pub struct BootstrapConfig {
    /// Degree-7 odd polynomial approximating `(q/2πΔ)·sin(2πx/q)`
    /// on the reduced domain (precomputed Taylor/Chebyshev hybrid).
    pub sine_coeffs: Vec<f64>,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        // sin(2πt)/2π ≈ t - (2π)²t³/6 + (2π)⁴t⁵/120 - (2π)⁶t⁷/5040
        // for |t| ≤ 1/8 (t = x/q after ModRaise normalization).
        let w = std::f64::consts::TAU;
        Self {
            sine_coeffs: vec![
                0.0,
                1.0,
                0.0,
                -w * w / 6.0,
                0.0,
                w.powi(4) / 120.0,
                0.0,
                -w.powi(6) / 5040.0,
            ],
        }
    }
}

/// The bootstrapping engine: precomputed CoeffToSlot / SlotToCoeff
/// transforms plus the EvalMod polynomial.
#[derive(Debug)]
pub struct Bootstrapper {
    /// Slot-domain DFT-like transform used by CoeffToSlot (test-scale:
    /// the identity composed with scaling; see `new`).
    pub coeff_to_slot: LinearTransform,
    /// Its inverse (SlotToCoeff).
    pub slot_to_coeff: LinearTransform,
    /// EvalMod sine approximation.
    pub config: BootstrapConfig,
}

impl Bootstrapper {
    /// Builds the test-scale bootstrapper for `slots` slots.
    ///
    /// CoeffToSlot/SlotToCoeff are honest dense linear transforms (a
    /// scaled DFT pair), exercising the same rotation/key-switch
    /// kernels as production bootstrapping; the paper's cost model
    /// derives from the same structure at `N = 2^16`.
    pub fn new(slots: usize) -> Self {
        // A unitary DFT matrix and its inverse over the slot domain.
        let mut fwd = vec![vec![(0.0, 0.0); slots]; slots];
        let mut inv = vec![vec![(0.0, 0.0); slots]; slots];
        let norm = 1.0 / (slots as f64).sqrt();
        for (i, row) in fwd.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                let th = std::f64::consts::TAU * (i * j % slots) as f64 / slots as f64;
                *cell = (norm * th.cos(), -norm * th.sin());
            }
        }
        for (i, row) in inv.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                let th = std::f64::consts::TAU * (i * j % slots) as f64 / slots as f64;
                *cell = (norm * th.cos(), norm * th.sin());
            }
        }
        Self {
            coeff_to_slot: LinearTransform::from_matrix(&fwd),
            slot_to_coeff: LinearTransform::from_matrix(&inv),
            config: BootstrapConfig::default(),
        }
    }

    /// All rotation steps the two transforms need (for key
    /// generation — the "minimum-key method" the paper adopts from
    /// ARK reuses keys across both transforms).
    pub fn required_rotations(&self) -> Vec<isize> {
        let mut steps: Vec<isize> = self
            .coeff_to_slot
            .rotation_steps()
            .into_iter()
            .chain(self.slot_to_coeff.rotation_steps())
            .collect();
        steps.sort_unstable();
        steps.dedup();
        steps
    }

    /// Runs the slot-domain bootstrapping pipeline on a ciphertext:
    /// CoeffToSlot → EvalMod(sine) → SlotToCoeff, recording the
    /// ModRaise trace op. At test scale the modulus chain is short, so
    /// this validates the *pipeline structure and noise behaviour*
    /// rather than depth-30 parameters.
    pub fn bootstrap(&self, ev: &Evaluator, ct: &Ciphertext, keys: &KeySet) -> Ciphertext {
        ev.trace_mod_raise(ct.level as u32);
        let in_slots = self.coeff_to_slot.apply(ev, ct, keys);
        // Normalize the scale to exactly Δ before the polynomial
        // ladder: entering EvalMod below Δ compounds multiplicatively
        // through the power ladder and drops x^7 under the noise
        // floor.
        let normalized = ev.adjust_scale(&in_slots, ev.context().scale(), in_slots.level - 1);
        let reduced = eval_poly(ev, &normalized, &self.config.sine_coeffs, keys);
        self.slot_to_coeff.apply(ev, &reduced, keys)
    }
}

impl Evaluator {
    /// Records a ModRaise trace event (bootstrapping entry).
    pub fn trace_mod_raise(&self, from_level: u32) {
        self.record_public(TraceOp::CkksModRaise { from_level });
    }
}

/// Generates every rotation key a bootstrapper needs.
pub fn gen_bootstrap_keys<R: Rng + ?Sized>(
    ev: &Evaluator,
    bs: &Bootstrapper,
    keys: &mut KeySet,
    sk: &SecretKey,
    rng: &mut R,
) {
    for step in bs.required_rotations() {
        keys.gen_rotation_key(ev.context(), sk, step, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn max_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    fn setup(n: usize, q_limbs: usize, seed: u64) -> (Evaluator, SecretKey, KeySet, StdRng) {
        let dnum = q_limbs.div_ceil(3);
        let ctx = CkksContext::new(n, q_limbs, 3, dnum, 36, 34);
        let mut rng = StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let keys = KeySet::generate(&ctx, &sk, &mut rng);
        (Evaluator::new(ctx), sk, keys, rng)
    }

    #[test]
    fn linear_transform_plain_reference() {
        // Cyclic shift matrix: out[i] = in[(i+1) mod s].
        let s = 4;
        let mut m = vec![vec![(0.0, 0.0); s]; s];
        for (i, row) in m.iter_mut().enumerate() {
            row[(i + 1) % s] = (1.0, 0.0);
        }
        let lt = LinearTransform::from_matrix(&m);
        assert_eq!(lt.diagonals().len(), 1);
        let z: Vec<Complex> = (0..s).map(|i| (i as f64, 0.0)).collect();
        let out = lt.apply_plain(&z);
        assert_eq!(out[0].0, 1.0);
        assert_eq!(out[3].0, 0.0);
    }

    #[test]
    fn homomorphic_linear_transform_matches_plain() {
        let (ev, sk, mut keys, mut rng) = setup(16, 3, 31);
        let slots = ev.context().slots(); // 8
                                          // A small dense real matrix.
        let m: Vec<Vec<Complex>> = (0..slots)
            .map(|i| {
                (0..slots)
                    .map(|j| (((i * 3 + j) % 5) as f64 * 0.1, 0.0))
                    .collect()
            })
            .collect();
        let lt = LinearTransform::from_matrix(&m);
        let ctx = ev.context().clone();
        for step in lt.rotation_steps() {
            keys.gen_rotation_key(&ctx, &sk, step, &mut rng);
        }
        let z: Vec<f64> = (0..slots).map(|i| 0.2 * i as f64 - 0.5).collect();
        let ct = ev.encrypt_real(&z, &keys, &mut rng);
        let out = lt.apply(&ev, &ct, &keys);
        let dec = ev.decrypt_real(&out, &sk);
        let zc: Vec<Complex> = z.iter().map(|&v| (v, 0.0)).collect();
        let expect: Vec<f64> = lt.apply_plain(&zc).into_iter().map(|c| c.0).collect();
        assert!(
            max_err(&dec, &expect) < 0.05,
            "err {}",
            max_err(&dec, &expect)
        );
    }

    #[test]
    fn bsgs_matches_plain_diagonal_method() {
        let (ev, sk, mut keys, mut rng) = setup(16, 3, 35);
        let slots = ev.context().slots(); // 8
        let m: Vec<Vec<Complex>> = (0..slots)
            .map(|i| {
                (0..slots)
                    .map(|j| (((i * 2 + j * 3) % 7) as f64 * 0.1 - 0.2, 0.0))
                    .collect()
            })
            .collect();
        let lt = LinearTransform::from_matrix(&m);
        let ctx = ev.context().clone();
        let bs = 3usize;
        for step in lt.rotation_steps() {
            keys.gen_rotation_key(&ctx, &sk, step, &mut rng);
        }
        for step in lt.bsgs_rotation_steps(bs) {
            keys.gen_rotation_key(&ctx, &sk, step, &mut rng);
        }
        let z: Vec<f64> = (0..slots).map(|i| 0.1 * i as f64 - 0.3).collect();
        let ct = ev.encrypt_real(&z, &keys, &mut rng);
        let plain = lt.apply(&ev, &ct, &keys);
        let bsgs = lt.apply_bsgs(&ev, &ct, &keys, bs);
        let d1 = ev.decrypt_real(&plain, &sk);
        let d2 = ev.decrypt_real(&bsgs, &sk);
        assert!(max_err(&d1, &d2) < 0.02, "err {}", max_err(&d1, &d2));
    }

    #[test]
    fn bsgs_uses_fewer_rotations() {
        let (ev, sk, mut keys, mut rng) = setup(16, 3, 36);
        let slots = ev.context().slots();
        // Dense matrix → all `slots` diagonals present.
        let m: Vec<Vec<Complex>> = (0..slots)
            .map(|i| (0..slots).map(|j| ((i + j) as f64 * 0.01, 0.0)).collect())
            .collect();
        let lt = LinearTransform::from_matrix(&m);
        let ctx = ev.context().clone();
        let bs = 3usize;
        for step in lt
            .rotation_steps()
            .into_iter()
            .chain(lt.bsgs_rotation_steps(bs))
        {
            keys.gen_rotation_key(&ctx, &sk, step, &mut rng);
        }
        let ct = ev.encrypt_real(&vec![0.1; slots], &keys, &mut rng);
        let _ = ev.take_trace();
        let _ = lt.apply(&ev, &ct, &keys);
        let plain_rots = count_rotations(&ev.take_trace());
        let _ = lt.apply_bsgs(&ev, &ct, &keys, bs);
        let bsgs_rots = count_rotations(&ev.take_trace());
        assert!(
            bsgs_rots < plain_rots,
            "BSGS {bsgs_rots} rotations vs plain {plain_rots}"
        );
        // bs−1 babies + ceil(s/bs)−1 giants = 2 + 2 = 4 < 7.
        assert_eq!(bsgs_rots, 4);
    }

    fn count_rotations(tr: &ufc_isa::Trace) -> usize {
        tr.ops
            .iter()
            .filter(|o| matches!(o, TraceOp::CkksRotate { .. }))
            .count()
    }

    #[test]
    fn eval_poly_cubic() {
        let (ev, sk, keys, mut rng) = setup(16, 5, 32);
        let x: Vec<f64> = (0..8).map(|i| -0.4 + 0.1 * i as f64).collect();
        let ct = ev.encrypt_real(&x, &keys, &mut rng);
        // p(x) = 0.5 + x - 2x^3.
        let out = eval_poly(&ev, &ct, &[0.5, 1.0, 0.0, -2.0], &keys);
        let dec = ev.decrypt_real(&out, &sk);
        let expect: Vec<f64> = x.iter().map(|&v| 0.5 + v - 2.0 * v * v * v).collect();
        assert!(
            max_err(&dec, &expect) < 0.05,
            "err {}",
            max_err(&dec, &expect)
        );
    }

    #[test]
    fn chebyshev_reference_basics() {
        // T_0=1, T_1=x, T_2=2x²−1, T_3=4x³−3x.
        assert!((chebyshev_reference(&[0.0, 0.0, 1.0], 0.5) - (2.0 * 0.25 - 1.0)).abs() < 1e-12);
        assert!(
            (chebyshev_reference(&[0.0, 0.0, 0.0, 1.0], 0.3) - (4.0 * 0.027 - 0.9)).abs() < 1e-12
        );
    }

    #[test]
    fn homomorphic_chebyshev_matches_reference() {
        let (ev, sk, keys, mut rng) = setup(16, 9, 37);
        let xs: Vec<f64> = (0..8).map(|i| -0.8 + 0.2 * i as f64).collect();
        let ct = ev.encrypt_real(&xs, &keys, &mut rng);
        // 0.3·T_0 + 0.5·T_1 − 0.2·T_2 + 0.1·T_3 + 0.05·T_4.
        let coeffs = [0.3, 0.5, -0.2, 0.1, 0.05];
        let out = eval_chebyshev(&ev, &ct, &coeffs, &keys);
        let dec = ev.decrypt_real(&out, &sk);
        let expect: Vec<f64> = xs
            .iter()
            .map(|&x| chebyshev_reference(&coeffs, x))
            .collect();
        assert!(
            max_err(&dec, &expect) < 0.03,
            "err {}",
            max_err(&dec, &expect)
        );
    }

    #[test]
    fn sine_approximation_reduces_modulo() {
        // The EvalMod polynomial should act as identity for small
        // inputs (|t| << 1): sin(2πt)/2π ≈ t.
        let cfg = BootstrapConfig::default();
        for &t in &[-0.05f64, 0.0, 0.02, 0.06] {
            let approx: f64 = cfg
                .sine_coeffs
                .iter()
                .enumerate()
                .map(|(k, &c)| c * t.powi(k as i32))
                .sum();
            let exact = (std::f64::consts::TAU * t).sin() / std::f64::consts::TAU;
            assert!((approx - exact).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn bootstrap_pipeline_preserves_message() {
        let (ev, sk, mut keys, mut rng) = setup(16, 9, 33);
        let bs = Bootstrapper::new(ev.context().slots());
        gen_bootstrap_keys(&ev, &bs, &mut keys, &sk, &mut rng);
        let vals: Vec<f64> = (0..8).map(|i| 0.01 * i as f64 - 0.03).collect();
        let ct = ev.encrypt_real(&vals, &keys, &mut rng);
        let out = bs.bootstrap(&ev, &ct, &keys);
        let dec = ev.decrypt_real(&out, &sk);
        assert!(max_err(&dec, &vals) < 0.02, "err {}", max_err(&dec, &vals));
        // The trace must record the pipeline: ModRaise + rotations +
        // plaintext muls + rescales + the EvalMod multiplies.
        let tr = ev.take_trace();
        assert!(tr
            .ops
            .iter()
            .any(|op| matches!(op, TraceOp::CkksModRaise { .. })));
        assert!(tr.len() > 10);
    }
}
