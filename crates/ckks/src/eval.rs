//! The CKKS evaluator: encrypt/decrypt, homomorphic arithmetic, hybrid
//! key-switching, rotations — with a built-in ciphertext-granularity
//! tracer (the paper's tracing tool, §VI-B).
//!
//! The hot path (key-switching, rescale, rotation) is allocation-lean:
//! every step works in place on the flat [`RnsPlane`] buffers, and the
//! only copies are the explicit [`RnsPoly::prefix`] /
//! [`RnsPoly::to_coeff_copy`] calls where a borrowed input genuinely
//! has to be materialised.

use crate::ciphertext::Ciphertext;
use crate::context::CkksContext;
use crate::encoding::{Complex, Encoder};
use crate::keys::{KeySet, SecretKey, SwitchingKey, NOISE_SIGMA};
use crate::rnspoly::RnsPoly;
use parking_lot::Mutex;
use rand::Rng;
use ufc_isa::trace::{Trace, TraceOp};
use ufc_math::automorph;
use ufc_math::plane::RnsPlane;
use ufc_math::poly::{Form, Poly};
use ufc_math::sample::{gaussian_poly, ternary_poly};

/// The cached, evaluation-form extended-basis digits of one
/// ciphertext's `c1` — the reusable front half of a key switch.
///
/// Built by [`Evaluator::hoist`]; consumed (by shared reference, any
/// number of times) by [`Evaluator::rotate_hoisted`]. Rotating `r`
/// ways from the same hoisting costs one decompose+ModUp+NTT total
/// instead of `r`.
#[derive(Debug)]
pub struct HoistedDigits {
    digits: Vec<RnsPoly>,
    level: usize,
}

impl HoistedDigits {
    /// The level the digits were built at.
    pub fn level(&self) -> usize {
        self.level
    }
}

/// Homomorphic evaluator bound to a context, key set and encoder.
///
/// Every public operation records a [`TraceOp`]; call
/// [`Evaluator::take_trace`] to retrieve the accumulated trace.
#[derive(Debug)]
pub struct Evaluator {
    ctx: CkksContext,
    encoder: Encoder,
    trace: Mutex<Trace>,
}

impl Evaluator {
    /// Creates an evaluator (and its tracer) for the given context.
    pub fn new(ctx: CkksContext) -> Self {
        let encoder = Encoder::new(ctx.n(), ctx.scale());
        Self {
            ctx,
            encoder,
            trace: Mutex::new(Trace::new("ckks")),
        }
    }

    /// The context.
    pub fn context(&self) -> &CkksContext {
        &self.ctx
    }

    /// The slot encoder.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Takes the recorded trace, resetting the tracer.
    pub fn take_trace(&self) -> Trace {
        std::mem::replace(&mut self.trace.lock(), Trace::new("ckks"))
    }

    fn record(&self, op: TraceOp) {
        self.trace.lock().push(op);
    }

    /// Records an externally-generated trace op (used by the
    /// bootstrapping pipeline for composite events like ModRaise).
    pub fn record_public(&self, op: TraceOp) {
        self.record(op);
    }

    // ---------------------------------------------------------- encrypt

    /// Encodes real slot values into a plaintext RNS polynomial at
    /// `level` (evaluation form), at the context scale.
    pub fn encode_real(&self, values: &[f64], level: usize) -> RnsPoly {
        let _span = ufc_trace::span("ckks", "encode");
        let coeffs = self.encoder.encode_real(values);
        RnsPoly::from_signed(&self.ctx, &coeffs, level + 1).to_eval(&self.ctx)
    }

    /// Encrypts real slot values under the public key at top level.
    pub fn encrypt_real<R: Rng + ?Sized>(
        &self,
        values: &[f64],
        keys: &KeySet,
        rng: &mut R,
    ) -> Ciphertext {
        let level = self.ctx.max_level();
        let m = self.encode_real(values, level);
        self.encrypt_plaintext(&m, keys, level, rng)
    }

    /// Encrypts an already-encoded plaintext.
    pub fn encrypt_plaintext<R: Rng + ?Sized>(
        &self,
        m: &RnsPoly,
        keys: &KeySet,
        level: usize,
        rng: &mut R,
    ) -> Ciphertext {
        let _span = ufc_trace::span("ckks", "encrypt");
        let n = self.ctx.n();
        let v_signed: Vec<i64> = {
            let t = ternary_poly(rng, n, 3);
            t.coeffs()
                .iter()
                .map(|&c| if c == 2 { -1 } else { c as i64 })
                .collect()
        };
        let v = RnsPoly::from_signed(&self.ctx, &v_signed, level + 1).to_eval(&self.ctx);
        let e0 = self.noise(level, rng);
        let e1 = self.noise(level, rng);
        // Slice the public key to the active limbs, then build the
        // ciphertext components in place.
        let mut c0 = keys.public.b.prefix(level + 1);
        c0.mul_assign(&v);
        c0.add_assign(&e0);
        c0.add_assign(m);
        let mut c1 = keys.public.a.prefix(level + 1);
        c1.mul_assign(&v);
        c1.add_assign(&e1);
        Ciphertext::new(c0, c1, level, self.ctx.scale())
    }

    fn noise<R: Rng + ?Sized>(&self, level: usize, rng: &mut R) -> RnsPoly {
        let signed: Vec<i64> = {
            let p = gaussian_poly(rng, self.ctx.n(), 1 << 30, NOISE_SIGMA);
            p.coeffs()
                .iter()
                .map(|&c| ufc_math::modops::to_signed(c, 1 << 30))
                .collect()
        };
        RnsPoly::from_signed(&self.ctx, &signed, level + 1).to_eval(&self.ctx)
    }

    // ---------------------------------------------------------- decrypt

    /// Decrypts to centered coefficients (exact CRT over up to three
    /// limbs — ample for test-scale messages).
    pub fn decrypt_coeffs(&self, ct: &Ciphertext, sk: &SecretKey) -> Vec<i64> {
        let _span = ufc_trace::span("ckks", "decrypt");
        let s = sk.rns_eval(&self.ctx, ct.limb_count());
        let mut m = ct.c1.mul(&s);
        m.add_assign(&ct.c0);
        let m = m.to_coeff(&self.ctx);
        let use_limbs = m.limb_count().min(3);
        let basis = ufc_math::rns::RnsBasis::new(self.ctx.q_moduli()[..use_limbs].to_vec());
        (0..self.ctx.n())
            .map(|i| {
                let residues: Vec<u64> = (0..use_limbs).map(|l| m.limb(l)[i]).collect();
                basis.reconstruct_i128(&residues) as i64
            })
            .collect()
    }

    /// Decrypts and decodes to real slot values.
    pub fn decrypt_real(&self, ct: &Ciphertext, sk: &SecretKey) -> Vec<f64> {
        let coeffs = self.decrypt_coeffs(ct, sk);
        self.encoder.decode_real(&coeffs, ct.scale)
    }

    /// Decrypts and decodes to complex slot values.
    pub fn decrypt_complex(&self, ct: &Ciphertext, sk: &SecretKey) -> Vec<Complex> {
        let coeffs = self.decrypt_coeffs(ct, sk);
        self.encoder.decode(&coeffs, ct.scale)
    }

    // ------------------------------------------------------- arithmetic

    /// Homomorphic addition (levels are aligned by dropping limbs).
    ///
    /// # Panics
    ///
    /// Panics if scales differ by more than 0.5 %.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let _span = ufc_trace::span("ckks", "add");
        let level = a.level.min(b.level);
        let (mut a, b) = (self.drop_to_level(a, level), self.drop_to_level(b, level));
        assert!(
            (a.scale / b.scale - 1.0).abs() < 5e-3,
            "scale mismatch: {} vs {}",
            a.scale,
            b.scale
        );
        self.record(TraceOp::CkksAdd {
            level: level as u32,
        });
        a.c0.add_assign(&b.c0);
        a.c1.add_assign(&b.c1);
        Ciphertext::new(a.c0, a.c1, level, a.scale)
    }

    /// Homomorphic subtraction.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let _span = ufc_trace::span("ckks", "sub");
        let level = a.level.min(b.level);
        let (mut a, b) = (self.drop_to_level(a, level), self.drop_to_level(b, level));
        self.record(TraceOp::CkksAdd {
            level: level as u32,
        });
        a.c0.sub_assign(&b.c0);
        a.c1.sub_assign(&b.c1);
        Ciphertext::new(a.c0, a.c1, level, a.scale)
    }

    /// Ciphertext × plaintext multiplication (plaintext in evaluation
    /// form at the same level, encoded at the context scale).
    pub fn mul_plain(&self, a: &Ciphertext, pt: &RnsPoly) -> Ciphertext {
        let _span = ufc_trace::span("ckks", "mul_plain");
        assert_eq!(pt.limb_count(), a.limb_count(), "plaintext level mismatch");
        self.record(TraceOp::CkksMulPlain {
            level: a.level as u32,
        });
        Ciphertext::new(
            a.c0.mul(pt),
            a.c1.mul(pt),
            a.level,
            a.scale * self.ctx.scale(),
        )
    }

    /// Adds an encoded plaintext to the ciphertext (scales must match).
    pub fn add_plain(&self, a: &Ciphertext, pt: &RnsPoly) -> Ciphertext {
        assert_eq!(pt.limb_count(), a.limb_count(), "plaintext level mismatch");
        self.record(TraceOp::CkksAdd {
            level: a.level as u32,
        });
        Ciphertext::new(
            a.c0.add(pt),
            a.c1.prefix(a.c1.limb_count()),
            a.level,
            a.scale,
        )
    }

    /// Homomorphic ciphertext multiplication with relinearization.
    pub fn mul(&self, a: &Ciphertext, b: &Ciphertext, keys: &KeySet) -> Ciphertext {
        let _span = ufc_trace::span("ckks", "mul");
        let level = a.level.min(b.level);
        let (a, b) = (self.drop_to_level(a, level), self.drop_to_level(b, level));
        self.record(TraceOp::CkksMulCt {
            level: level as u32,
        });
        let mut d0 = a.c0.mul(&b.c0);
        let mut d1 = a.c0.mul(&b.c1);
        d1.mac_assign(&a.c1, &b.c0);
        let d2 = a.c1.mul(&b.c1);
        // Relinearize d2 with the s² key.
        let (k0, k1) = self.key_switch(&d2, &keys.relin, level);
        d0.add_assign(&k0);
        d1.add_assign(&k1);
        Ciphertext::new(d0, d1, level, a.scale * b.scale)
    }

    /// Rescale: divide by the last limb's modulus, dropping one level.
    pub fn rescale(&self, a: &Ciphertext) -> Ciphertext {
        let _span = ufc_trace::span("ckks", "rescale");
        assert!(a.level > 0, "no levels left to rescale");
        self.record(TraceOp::CkksRescale {
            level: a.level as u32,
        });
        let q_last = self.ctx.q_moduli()[a.level];
        let mut c0 = a.c0.to_coeff_copy(&self.ctx);
        c0.rescale_assign();
        c0.to_eval_mut(&self.ctx);
        let mut c1 = a.c1.to_coeff_copy(&self.ctx);
        c1.rescale_assign();
        c1.to_eval_mut(&self.ctx);
        Ciphertext::new(c0, c1, a.level - 1, a.scale / q_last as f64)
    }

    /// Homomorphic slot rotation by `step` (left-rotation of the
    /// packed vector). The rotation key must already exist.
    ///
    /// # Panics
    ///
    /// Panics if the rotation key was not generated.
    pub fn rotate(&self, a: &Ciphertext, step: isize, keys: &KeySet) -> Ciphertext {
        let _span = ufc_trace::span("ckks", "rotate");
        if step == 0 {
            return self.drop_to_level(a, a.level);
        }
        let k = automorph::rotation_exponent(step, self.ctx.n());
        let key = keys
            .rotation_key(k)
            .unwrap_or_else(|| panic!("missing rotation key for step {step}"));
        self.record(TraceOp::CkksRotate {
            level: a.level as u32,
            step: step as i32,
        });
        self.apply_galois(a, k, key)
    }

    /// Homomorphic complex conjugation.
    pub fn conjugate(&self, a: &Ciphertext, keys: &KeySet) -> Ciphertext {
        let _span = ufc_trace::span("ckks", "conjugate");
        let k = 2 * self.ctx.n() - 1;
        self.record(TraceOp::CkksConjugate {
            level: a.level as u32,
        });
        self.apply_galois(a, k, &keys.conj)
    }

    fn apply_galois(&self, a: &Ciphertext, k: usize, key: &SwitchingKey) -> Ciphertext {
        let mut c0r = a.c0.automorphism(k);
        let c1r = a.c1.automorphism(k);
        let (k0, k1) = self.key_switch(&c1r, key, a.level);
        c0r.add_assign(&k0);
        Ciphertext::new(c0r, k1, a.level, a.scale)
    }

    /// Encodes real slot values at an explicit scale (used for scale
    /// management in deep circuits).
    pub fn encode_real_at(&self, values: &[f64], level: usize, scale: f64) -> RnsPoly {
        let enc = Encoder::new(self.ctx.n(), scale);
        let coeffs = enc.encode_real(values);
        RnsPoly::from_signed(&self.ctx, &coeffs, level + 1).to_eval(&self.ctx)
    }

    /// Rescales `a` to exactly (`target_level`, `target_scale`) by one
    /// constant multiplication and rescale — the standard scale
    /// alignment trick for adding ciphertexts with different rescale
    /// histories.
    ///
    /// # Panics
    ///
    /// Panics if `a.level <= target_level` is violated (at least one
    /// level is consumed).
    pub fn adjust_scale(
        &self,
        a: &Ciphertext,
        target_scale: f64,
        target_level: usize,
    ) -> Ciphertext {
        assert!(a.level > target_level, "adjust_scale consumes one level");
        let a = self.drop_to_level(a, target_level + 1);
        let q_next = self.ctx.q_moduli()[target_level + 1] as f64;
        let factor_scale = target_scale * q_next / a.scale;
        let ones = vec![1.0; self.ctx.slots()];
        let pt = self.encode_real_at(&ones, a.level, factor_scale);
        let scaled = Ciphertext::new(
            a.c0.mul(&pt),
            a.c1.mul(&pt),
            a.level,
            a.scale * factor_scale,
        );
        self.record(TraceOp::CkksMulPlain {
            level: a.level as u32,
        });
        let out = self.rescale(&scaled);
        // Snap the bookkeeping to the exact target (the numeric drift
        // is far below encoding noise).
        Ciphertext::new(out.c0, out.c1, out.level, target_scale)
    }

    /// Drops limbs to reach `level` (modulus reduction, no scaling).
    pub fn drop_to_level(&self, a: &Ciphertext, level: usize) -> Ciphertext {
        assert!(level <= a.level, "cannot raise level by dropping limbs");
        Ciphertext::new(
            a.c0.prefix(level + 1),
            a.c1.prefix(level + 1),
            level,
            a.scale,
        )
    }

    // ----------------------------------------------------- key switching

    /// Hybrid key switching of a single polynomial `d` (evaluation
    /// form, `level+1` limbs): returns `(k0, k1)` over the active `Q`
    /// limbs with `k0 + k1·s ≈ d·s_from`.
    ///
    /// This is the paper's dominant CKKS kernel: digit decomposition,
    /// ModUp base conversions, the big MAC accumulation against the
    /// key, and the ModDown division by `P` (§II-B3). Each extended
    /// digit is assembled directly into a flat limb-major buffer and
    /// MAC-accumulated in place — no per-digit limb vectors.
    pub fn key_switch(&self, d: &RnsPoly, key: &SwitchingKey, level: usize) -> (RnsPoly, RnsPoly) {
        let _span = ufc_trace::span_n("ckks", "key_switch", level as u64);
        let digits = self.decompose_mod_up(d, level);
        self.mac_digits(&digits, key, level)
    }

    /// Digit-decomposes `d` and ModUps every digit to the extended
    /// basis (active Q limbs ++ all P limbs, evaluation form) — the
    /// expensive front half of [`Evaluator::key_switch`], shared with
    /// [`Evaluator::hoist`].
    fn decompose_mod_up(&self, d: &RnsPoly, level: usize) -> Vec<RnsPoly> {
        let ctx = &self.ctx;
        let active = level + 1;
        let n = ctx.n();
        let d_coeff = d.to_coeff_copy(ctx);

        // Extended basis: active Q limbs followed by all P limbs.
        let mut ext_moduli: Vec<u64> = Vec::with_capacity(active + ctx.p_moduli().len());
        ext_moduli.extend_from_slice(&ctx.q_moduli()[..active]);
        ext_moduli.extend_from_slice(ctx.p_moduli());

        let mut digits = Vec::with_capacity(ctx.digits().len());
        for dt in ctx.digits() {
            let (lo, hi) = dt.limb_range;
            if lo >= active {
                break;
            }
            let hi_l = hi.min(active);
            // d~_j = [d * Qhat_j^{-1}]_{Q_j} on the digit limbs.
            let digit_rows: Vec<Poly> = (lo..hi_l)
                .map(|i| {
                    let mut p = d_coeff.limb_poly(i);
                    p.scale_assign(dt.qhat_inv[level][i - lo]);
                    p
                })
                .collect();
            // ModUp to the complement moduli: the converter emits a
            // flat limb-major buffer ordered q[..lo], q[hi_l..active],
            // p[..] — splice the digit rows back in to get the
            // extended-basis layout directly.
            let conv = dt.mod_up[level].as_ref().expect("digit active");
            let rows: Vec<&[u64]> = digit_rows.iter().map(ufc_math::Poly::coeffs).collect();
            let converted = conv.convert_rows(&rows);
            let mut flat = Vec::with_capacity(ext_moduli.len() * n);
            flat.extend_from_slice(&converted[..lo * n]);
            for row in &digit_rows {
                flat.extend_from_slice(row.coeffs());
            }
            flat.extend_from_slice(&converted[lo * n..]);
            let mut d_ext = RnsPoly::from_plane(RnsPlane::from_flat_unchecked(
                flat,
                &ext_moduli,
                Form::Coeff,
            ));
            d_ext.to_eval_mut(ctx);
            digits.push(d_ext);
        }
        digits
    }

    /// MAC-accumulates extended-basis digits against a switching key
    /// and ModDowns — the back half of [`Evaluator::key_switch`].
    fn mac_digits(
        &self,
        digits: &[RnsPoly],
        key: &SwitchingKey,
        level: usize,
    ) -> (RnsPoly, RnsPoly) {
        let ctx = &self.ctx;
        let active = level + 1;
        let n = ctx.n();
        let digit_keys = key.at_level(level);
        let mut ext_moduli: Vec<u64> = Vec::with_capacity(active + ctx.p_moduli().len());
        ext_moduli.extend_from_slice(&ctx.q_moduli()[..active]);
        ext_moduli.extend_from_slice(ctx.p_moduli());
        let mut acc0 = RnsPoly::from_plane(RnsPlane::zero(n, &ext_moduli, Form::Eval));
        let mut acc1 = RnsPoly::from_plane(RnsPlane::zero(n, &ext_moduli, Form::Eval));
        for (d_ext, (b_j, a_j)) in digits.iter().zip(digit_keys) {
            acc0.mac_assign(d_ext, b_j);
            acc1.mac_assign(d_ext, a_j);
        }
        (self.mod_down(acc0, level), self.mod_down(acc1, level))
    }

    /// Precomputes the hoisted decomposition of `ct.c1` for a series
    /// of rotations of the same ciphertext: digit decomposition,
    /// ModUp, and the forward NTTs happen **once** here; each
    /// subsequent [`Evaluator::rotate_hoisted`] only permutes the
    /// cached evaluation-form digits and runs the MAC + ModDown.
    pub fn hoist(&self, ct: &Ciphertext) -> HoistedDigits {
        let _span = ufc_trace::span_n("ckks", "hoist", ct.level as u64);
        HoistedDigits {
            digits: self.decompose_mod_up(&ct.c1, ct.level),
            level: ct.level,
        }
    }

    /// Rotation via a precomputed [`HoistedDigits`]. Not bit-identical
    /// to [`Evaluator::rotate`] — fast base conversion and the
    /// automorphism commute only up to a multiple of the digit modulus,
    /// absorbed as key-switching noise — but equal within normal
    /// rotation noise, which is what the repack precision pins measure.
    ///
    /// # Panics
    ///
    /// Panics if the rotation key is missing or `hoisted` was built at
    /// a different level than `a`.
    pub fn rotate_hoisted(
        &self,
        a: &Ciphertext,
        hoisted: &HoistedDigits,
        step: isize,
        keys: &KeySet,
    ) -> Ciphertext {
        let _span = ufc_trace::span("ckks", "rotate_hoisted");
        assert_eq!(hoisted.level, a.level, "hoisted digits level mismatch");
        if step == 0 {
            return self.drop_to_level(a, a.level);
        }
        let k = automorph::rotation_exponent(step, self.ctx.n());
        let key = keys
            .rotation_key(k)
            .unwrap_or_else(|| panic!("missing rotation key for step {step}"));
        self.record(TraceOp::CkksRotate {
            level: a.level as u32,
            step: step as i32,
        });
        let permuted: Vec<RnsPoly> = hoisted.digits.iter().map(|d| d.automorphism(k)).collect();
        let (k0, k1) = self.mac_digits(&permuted, key, a.level);
        let mut c0r = a.c0.automorphism(k);
        c0r.add_assign(&k0);
        Ciphertext::new(c0r, k1, a.level, a.scale)
    }

    /// ModDown: divides an (active Q ++ P)-limb polynomial by `P` with
    /// rounding, consuming the input and returning active-Q limbs
    /// (evaluation form).
    fn mod_down(&self, mut x: RnsPoly, level: usize) -> RnsPoly {
        let ctx = &self.ctx;
        let active = level + 1;
        x.to_coeff_mut(ctx);
        let p_count = ctx.p_moduli().len();
        assert_eq!(x.limb_count(), active + p_count, "limb layout");
        let conv = ctx.p_to_q_converter(level);
        let p_on_q_flat = {
            let rows: Vec<&[u64]> = (active..active + p_count).map(|i| x.limb(i)).collect();
            conv.convert_rows(&rows)
        };
        let p_on_q = RnsPoly::from_plane(RnsPlane::from_flat_unchecked(
            p_on_q_flat,
            &ctx.q_moduli()[..active],
            Form::Coeff,
        ));
        x.truncate_limbs(active);
        x.sub_assign(&p_on_q);
        let p_inv: Vec<u64> = (0..active).map(|i| ctx.p_inv_mod_q(i)).collect();
        x.scale_limbs_assign(&p_inv);
        x.to_eval_mut(ctx);
        x
    }

    /// Decrypts `ct` and measures the achieved precision against the
    /// known plaintext `reference`: `-log2(max slot error)`, in bits.
    ///
    /// When the runtime recorder is live the result is also emitted
    /// as the `ckks/measured_precision_bits` gauge — the empirical
    /// side of the noise "headroom drift" metric (the static side is
    /// `ufc-verify`'s `NoiseSchedule` lower bound).
    pub fn measured_precision_bits(
        &self,
        ct: &Ciphertext,
        sk: &SecretKey,
        reference: &[f64],
    ) -> f64 {
        let got = self.decrypt_real(ct, sk);
        let max_err = got
            .iter()
            .zip(reference)
            .map(|(g, r)| (g - r).abs())
            .fold(0.0_f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let bits = -max_err.log2();
        ufc_trace::gauge("ckks/measured_precision_bits", bits);
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        n: usize,
        q_limbs: usize,
        p_limbs: usize,
        dnum: usize,
        seed: u64,
    ) -> (Evaluator, SecretKey, KeySet, StdRng) {
        let ctx = CkksContext::new(n, q_limbs, p_limbs, dnum, 36, 34);
        let mut rng = StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let keys = KeySet::generate(&ctx, &sk, &mut rng);
        (Evaluator::new(ctx), sk, keys, rng)
    }

    fn max_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (ev, sk, keys, mut rng) = setup(64, 3, 2, 2, 11);
        let vals: Vec<f64> = (0..32).map(|i| (i as f64) * 0.25 - 4.0).collect();
        let ct = ev.encrypt_real(&vals, &keys, &mut rng);
        let dec = ev.decrypt_real(&ct, &sk);
        assert!(max_err(&vals, &dec) < 1e-3, "err {}", max_err(&vals, &dec));
    }

    #[test]
    fn homomorphic_addition() {
        let (ev, sk, keys, mut rng) = setup(64, 3, 2, 2, 12);
        let a: Vec<f64> = (0..32).map(|i| i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..32).map(|i| 3.0 - i as f64 * 0.05).collect();
        let ca = ev.encrypt_real(&a, &keys, &mut rng);
        let cb = ev.encrypt_real(&b, &keys, &mut rng);
        let sum = ev.add(&ca, &cb);
        let dec = ev.decrypt_real(&sum, &sk);
        let expect: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert!(max_err(&dec, &expect) < 1e-3);
    }

    #[test]
    fn plaintext_multiplication_and_rescale() {
        let (ev, sk, keys, mut rng) = setup(64, 3, 2, 2, 13);
        let a: Vec<f64> = (0..32).map(|i| i as f64 * 0.1 - 1.0).collect();
        let b: Vec<f64> = (0..32).map(|i| 0.5 + i as f64 * 0.02).collect();
        let ca = ev.encrypt_real(&a, &keys, &mut rng);
        let pb = ev.encode_real(&b, ca.level);
        let prod = ev.rescale(&ev.mul_plain(&ca, &pb));
        let dec = ev.decrypt_real(&prod, &sk);
        let expect: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
        assert!(
            max_err(&dec, &expect) < 1e-2,
            "err {}",
            max_err(&dec, &expect)
        );
    }

    #[test]
    fn ciphertext_multiplication_with_relinearization() {
        let (ev, sk, keys, mut rng) = setup(64, 3, 2, 2, 14);
        let a: Vec<f64> = (0..32).map(|i| (i as f64 - 16.0) * 0.05).collect();
        let b: Vec<f64> = (0..32).map(|i| 1.0 - i as f64 * 0.03).collect();
        let ca = ev.encrypt_real(&a, &keys, &mut rng);
        let cb = ev.encrypt_real(&b, &keys, &mut rng);
        let prod = ev.rescale(&ev.mul(&ca, &cb, &keys));
        let dec = ev.decrypt_real(&prod, &sk);
        let expect: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
        assert!(
            max_err(&dec, &expect) < 1e-2,
            "err {}",
            max_err(&dec, &expect)
        );
    }

    #[test]
    fn multiplication_depth_two() {
        let (ev, sk, keys, mut rng) = setup(64, 4, 2, 2, 15);
        let a: Vec<f64> = (0..32).map(|i| 0.9 - i as f64 * 0.01).collect();
        let ca = ev.encrypt_real(&a, &keys, &mut rng);
        let sq = ev.rescale(&ev.mul(&ca, &ca, &keys));
        let quad = ev.rescale(&ev.mul(&sq, &sq, &keys));
        let dec = ev.decrypt_real(&quad, &sk);
        let expect: Vec<f64> = a.iter().map(|x| x.powi(4)).collect();
        assert!(
            max_err(&dec, &expect) < 5e-2,
            "err {}",
            max_err(&dec, &expect)
        );
    }

    #[test]
    fn rotation_rotates_slots() {
        let (ev, sk, mut keys, mut rng) = setup(64, 3, 2, 2, 16);
        let vals: Vec<f64> = (0..32).map(|i| i as f64).collect();
        keys.gen_rotation_key(ev.context(), &sk, 1, &mut rng);
        keys.gen_rotation_key(ev.context(), &sk, 5, &mut rng);
        let ct = ev.encrypt_real(&vals, &keys, &mut rng);
        for step in [1isize, 5] {
            let rot = ev.rotate(&ct, step, &keys);
            let dec = ev.decrypt_real(&rot, &sk);
            let expect: Vec<f64> = (0..32).map(|i| vals[(i + step as usize) % 32]).collect();
            assert!(
                max_err(&dec, &expect) < 1e-2,
                "step {step}: err {}",
                max_err(&dec, &expect)
            );
        }
    }

    #[test]
    fn hoisted_rotation_matches_plain_rotation() {
        let (ev, sk, mut keys, mut rng) = setup(64, 3, 2, 2, 16);
        let vals: Vec<f64> = (0..32).map(|i| i as f64 * 0.125 - 2.0).collect();
        for step in [1usize, 3, 5] {
            keys.gen_rotation_key(ev.context(), &sk, step as isize, &mut rng);
        }
        let ct = ev.encrypt_real(&vals, &keys, &mut rng);
        let hoisted = ev.hoist(&ct);
        for step in [0isize, 1, 3, 5] {
            let fast = ev.rotate_hoisted(&ct, &hoisted, step, &keys);
            let slow = ev.rotate(&ct, step, &keys);
            let df = ev.decrypt_real(&fast, &sk);
            let ds = ev.decrypt_real(&slow, &sk);
            assert!(
                max_err(&df, &ds) < 1e-2,
                "step {step}: err {}",
                max_err(&df, &ds)
            );
        }
    }

    #[test]
    fn conjugation_conjugates() {
        let (ev, sk, keys, mut rng) = setup(64, 3, 2, 2, 17);
        let slots: Vec<Complex> = (0..32)
            .map(|i| (i as f64 * 0.1, 1.0 - i as f64 * 0.05))
            .collect();
        let coeffs = ev.encoder().encode(&slots);
        let m = RnsPoly::from_signed(ev.context(), &coeffs, ev.context().max_level() + 1)
            .to_eval(ev.context());
        let ct = ev.encrypt_plaintext(&m, &keys, ev.context().max_level(), &mut rng);
        let conj = ev.conjugate(&ct, &keys);
        let dec = ev.decrypt_complex(&conj, &sk);
        for (z, w) in slots.iter().zip(&dec) {
            assert!((z.0 - w.0).abs() < 1e-2, "re {} vs {}", z.0, w.0);
            assert!((z.1 + w.1).abs() < 1e-2, "im {} vs {}", z.1, w.1);
        }
    }

    #[test]
    fn dnum_three_configuration_works() {
        let (ev, sk, keys, mut rng) = setup(32, 6, 2, 3, 18);
        let a: Vec<f64> = (0..16).map(|i| 0.4 + i as f64 * 0.02).collect();
        let ca = ev.encrypt_real(&a, &keys, &mut rng);
        let sq = ev.rescale(&ev.mul(&ca, &ca, &keys));
        let dec = ev.decrypt_real(&sq, &sk);
        let expect: Vec<f64> = a.iter().map(|x| x * x).collect();
        assert!(
            max_err(&dec, &expect) < 1e-2,
            "err {}",
            max_err(&dec, &expect)
        );
    }

    #[test]
    fn trace_records_operations() {
        let (ev, _sk, keys, mut rng) = setup(64, 3, 2, 2, 19);
        let a: Vec<f64> = vec![1.0; 32];
        let ca = ev.encrypt_real(&a, &keys, &mut rng);
        let _ = ev.take_trace(); // clear encrypt-time noise ops
        let sum = ev.add(&ca, &ca);
        let _ = ev.rescale(&ev.mul(&sum, &ca, &keys));
        let tr = ev.take_trace();
        assert_eq!(tr.len(), 3);
        assert!(matches!(tr.ops[0], TraceOp::CkksAdd { .. }));
        assert!(matches!(tr.ops[1], TraceOp::CkksMulCt { .. }));
        assert!(matches!(tr.ops[2], TraceOp::CkksRescale { .. }));
    }
}
