//! Noise-budget tracking for CKKS ciphertexts.
//!
//! CKKS is approximate: every operation adds (or amplifies) error, and
//! applications must know when the remaining precision is exhausted —
//! it is the level/noise schedule that decides where the workload
//! generators insert bootstraps. This module tracks a conservative
//! slot-domain error bound through the evaluator's operations and is
//! validated against *measured* error on the real scheme.

use crate::ciphertext::Ciphertext;
use crate::eval::Evaluator;
use crate::keys::SecretKey;

/// A conservative estimate of a ciphertext's slot-domain state:
/// the largest message magnitude and the error bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseBudget {
    /// Upper bound on `|message|` in the slots.
    pub value_bound: f64,
    /// Upper bound on the absolute slot error.
    pub error_bound: f64,
}

impl NoiseBudget {
    /// Budget of a fresh encryption of values bounded by `value_bound`
    /// at scale `delta` in ring dimension `n`.
    ///
    /// Fresh noise is `(e0 + e1·s + v·e_pk)` with ternary `s`/`v`:
    /// coefficient magnitude `O(σ·N)`, decoded to roughly
    /// `σ·N / Δ` per slot (embedding spreads it by at most `N`).
    pub fn fresh(value_bound: f64, n: usize, delta: f64) -> Self {
        let sigma = crate::keys::NOISE_SIGMA;
        Self {
            value_bound,
            error_bound: 16.0 * sigma * n as f64 / delta,
        }
    }

    /// Remaining precision in bits (`log2(value/error)`); `None` when
    /// the error has swallowed the message.
    pub fn precision_bits(&self) -> Option<f64> {
        if self.error_bound <= 0.0 {
            return Some(f64::INFINITY);
        }
        let r = self.value_bound / self.error_bound;
        (r > 1.0).then(|| r.log2())
    }

    /// Budget after homomorphic addition.
    pub fn add(&self, rhs: &Self) -> Self {
        Self {
            value_bound: self.value_bound + rhs.value_bound,
            error_bound: self.error_bound + rhs.error_bound,
        }
    }

    /// Budget after multiplying by a plaintext with values bounded by
    /// `p_bound` (encoding error of the plaintext included).
    pub fn mul_plain(&self, p_bound: f64, n: usize, delta: f64) -> Self {
        let encode_err = n as f64 / delta; // rounding of the encoding
        Self {
            value_bound: self.value_bound * p_bound,
            error_bound: self.error_bound * p_bound + self.value_bound * encode_err,
        }
    }

    /// Budget after ciphertext × ciphertext multiplication (including
    /// the relinearization key-switch noise).
    pub fn mul_ct(&self, rhs: &Self, n: usize, delta: f64) -> Self {
        let sigma = crate::keys::NOISE_SIGMA;
        // Cross terms plus the key-switch additive noise (≈ digit
        // noise divided by P, decoded).
        let ks_err = 32.0 * sigma * n as f64 / delta;
        Self {
            value_bound: self.value_bound * rhs.value_bound,
            error_bound: self.error_bound * rhs.value_bound
                + rhs.error_bound * self.value_bound
                + self.error_bound * rhs.error_bound
                + ks_err,
        }
    }

    /// Budget after a rescale (slot values are scale-invariant; the
    /// division adds a small rounding term).
    pub fn rescale(&self, n: usize, new_scale: f64) -> Self {
        Self {
            value_bound: self.value_bound,
            error_bound: self.error_bound + n as f64 / new_scale,
        }
    }

    /// Budget after a rotation (pure permutation + key-switch noise).
    pub fn rotate(&self, n: usize, delta: f64) -> Self {
        let sigma = crate::keys::NOISE_SIGMA;
        Self {
            value_bound: self.value_bound,
            error_bound: self.error_bound + 32.0 * sigma * n as f64 / delta,
        }
    }
}

/// Measures the actual slot-domain error of a ciphertext against
/// reference values (test harness utility).
pub fn measured_error(ev: &Evaluator, ct: &Ciphertext, sk: &SecretKey, reference: &[f64]) -> f64 {
    let dec = ev.decrypt_real(ct, sk);
    dec.iter()
        .zip(reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use crate::keys::KeySet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Evaluator, SecretKey, KeySet, StdRng) {
        let ctx = CkksContext::new(64, 4, 2, 2, 36, 34);
        let mut rng = StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let keys = KeySet::generate(&ctx, &sk, &mut rng);
        (Evaluator::new(ctx), sk, keys, rng)
    }

    #[test]
    fn fresh_estimate_bounds_measured() {
        let (ev, sk, keys, mut rng) = setup(301);
        let xs: Vec<f64> = (0..32).map(|i| 1.5 - 0.1 * i as f64).collect();
        let ct = ev.encrypt_real(&xs, &keys, &mut rng);
        let est = NoiseBudget::fresh(1.5, 64, ev.context().scale());
        let measured = measured_error(&ev, &ct, &sk, &xs);
        assert!(
            measured <= est.error_bound,
            "{measured} > {}",
            est.error_bound
        );
        // The bound should not be absurdly loose either (< 2^20 slack).
        assert!(est.error_bound < measured.max(1e-12) * (1 << 20) as f64);
    }

    #[test]
    fn estimate_survives_an_op_sequence() {
        let (ev, sk, keys, mut rng) = setup(302);
        let n = 64;
        let delta = ev.context().scale();
        let xs: Vec<f64> = (0..32).map(|i| 0.5 + 0.01 * i as f64).collect();
        let ct = ev.encrypt_real(&xs, &keys, &mut rng);
        let mut budget = NoiseBudget::fresh(0.9, n, delta);

        // (x + x) * x, rescaled.
        let sum = ev.add(&ct, &ct);
        budget = budget.add(&budget);
        let prod = ev.mul(&sum, &ct, &keys);
        budget = budget.mul_ct(&NoiseBudget::fresh(0.9, n, delta), n, delta);
        let out = ev.rescale(&prod);
        budget = budget.rescale(n, out.scale);

        let reference: Vec<f64> = xs.iter().map(|&x| 2.0 * x * x).collect();
        let measured = measured_error(&ev, &out, &sk, &reference);
        assert!(
            measured <= budget.error_bound,
            "measured {measured} > bound {}",
            budget.error_bound
        );
        assert!(budget.precision_bits().unwrap() > 8.0);
    }

    #[test]
    fn precision_bits_reports_exhaustion() {
        let dead = NoiseBudget {
            value_bound: 1.0,
            error_bound: 2.0,
        };
        assert!(dead.precision_bits().is_none());
        let alive = NoiseBudget {
            value_bound: 1.0,
            error_bound: 1.0 / 1024.0,
        };
        assert!((alive.precision_bits().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn error_grows_monotonically_through_ops() {
        let n = 64;
        let delta = 2f64.powi(34);
        let fresh = NoiseBudget::fresh(1.0, n, delta);
        let added = fresh.add(&fresh);
        let mulled = added.mul_ct(&fresh, n, delta);
        assert!(added.error_bound > fresh.error_bound);
        assert!(mulled.error_bound > added.error_bound);
        assert_eq!(mulled.value_bound, 2.0);
    }
}
