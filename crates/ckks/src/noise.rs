//! Noise-budget tracking for CKKS ciphertexts.
//!
//! CKKS is approximate: every operation adds (or amplifies) error, and
//! applications must know when the remaining precision is exhausted —
//! it is the level/noise schedule that decides where the workload
//! generators insert bootstraps. This module tracks a conservative
//! slot-domain error bound through the evaluator's operations and is
//! validated against *measured* error on the real scheme.

use crate::ciphertext::Ciphertext;
use crate::eval::Evaluator;
use crate::keys::SecretKey;

// The transfer functions live in `ufc_isa::noise` so the static noise
// pass (`ufc-verify`) shares the exact model this crate's tests
// calibrate against measured error; re-exported here for the runtime
// callers that grew up with the `ufc_ckks::noise` path.
pub use ufc_isa::noise::NoiseBudget;

/// Measures the actual slot-domain error of a ciphertext against
/// reference values (test harness utility).
pub fn measured_error(ev: &Evaluator, ct: &Ciphertext, sk: &SecretKey, reference: &[f64]) -> f64 {
    let dec = ev.decrypt_real(ct, sk);
    dec.iter()
        .zip(reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use crate::keys::KeySet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Evaluator, SecretKey, KeySet, StdRng) {
        let ctx = CkksContext::new(64, 4, 2, 2, 36, 34);
        let mut rng = StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let keys = KeySet::generate(&ctx, &sk, &mut rng);
        (Evaluator::new(ctx), sk, keys, rng)
    }

    #[test]
    fn fresh_estimate_bounds_measured() {
        let (ev, sk, keys, mut rng) = setup(301);
        let xs: Vec<f64> = (0..32).map(|i| 1.5 - 0.1 * i as f64).collect();
        let ct = ev.encrypt_real(&xs, &keys, &mut rng);
        let est = NoiseBudget::fresh(1.5, 64, ev.context().scale());
        let measured = measured_error(&ev, &ct, &sk, &xs);
        assert!(
            measured <= est.error_bound,
            "{measured} > {}",
            est.error_bound
        );
        // The bound should not be absurdly loose either (< 2^20 slack).
        assert!(est.error_bound < measured.max(1e-12) * (1 << 20) as f64);
    }

    #[test]
    fn estimate_survives_an_op_sequence() {
        let (ev, sk, keys, mut rng) = setup(302);
        let n = 64;
        let delta = ev.context().scale();
        let xs: Vec<f64> = (0..32).map(|i| 0.5 + 0.01 * i as f64).collect();
        let ct = ev.encrypt_real(&xs, &keys, &mut rng);
        let mut budget = NoiseBudget::fresh(0.9, n, delta);

        // (x + x) * x, rescaled.
        let sum = ev.add(&ct, &ct);
        budget = budget.add(&budget);
        let prod = ev.mul(&sum, &ct, &keys);
        budget = budget.mul_ct(&NoiseBudget::fresh(0.9, n, delta), n, delta);
        let out = ev.rescale(&prod);
        budget = budget.rescale(n, out.scale);

        let reference: Vec<f64> = xs.iter().map(|&x| 2.0 * x * x).collect();
        let measured = measured_error(&ev, &out, &sk, &reference);
        assert!(
            measured <= budget.error_bound,
            "measured {measured} > bound {}",
            budget.error_bound
        );
        assert!(budget.precision_bits().unwrap() > 8.0);
    }

    #[test]
    fn precision_bits_reports_exhaustion() {
        let dead = NoiseBudget {
            value_bound: 1.0,
            error_bound: 2.0,
        };
        assert!(dead.precision_bits().is_none());
        let alive = NoiseBudget {
            value_bound: 1.0,
            error_bound: 1.0 / 1024.0,
        };
        assert!((alive.precision_bits().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn error_grows_monotonically_through_ops() {
        let n = 64;
        let delta = 2f64.powi(34);
        let fresh = NoiseBudget::fresh(1.0, n, delta);
        let added = fresh.add(&fresh);
        let mulled = added.mul_ct(&fresh, n, delta);
        assert!(added.error_bound > fresh.error_bound);
        assert!(mulled.error_bound > added.error_bound);
        assert_eq!(mulled.value_bound, 2.0);
    }
}
