//! End-to-end CKKS precision regression, pinned per NTT kernel.
//!
//! Walks the canonical pipeline — encode → encrypt → multiply →
//! rotate → rescale → decrypt — under every NTT kernel generation and
//! pins the observed error against fixed bounds. Because all kernels
//! are bit-identical and the whole pipeline is deterministic given
//! the RNG seed, the decrypted floating-point outputs must also match
//! *exactly* across kernels; any drift in precision or cross-kernel
//! divergence fails loudly rather than eroding silently.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ufc_ckks::{CkksContext, Evaluator, KeySet, SecretKey};
use ufc_math::ntt::NttKernel;

/// Pinned worst-case slot errors for the fixed seed below. The
/// observed values are ≈ 1–2·10⁻⁸ (Δ = 2³⁴, 36-bit limbs); the
/// bounds leave ~50× headroom, so they tolerate benign encoder
/// tweaks but trip on any real precision regression — a lost
/// rescale, a mis-scaled twiddle, a broken kernel.
const ROUNDTRIP_BOUND: f64 = 1e-6;
const MUL_RESCALE_BOUND: f64 = 1e-6;
const ROTATE_BOUND: f64 = 1e-6;

const SEED: u64 = 0xC0FFEE;
const ROT_STEP: isize = 3;

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

struct PipelineOut {
    roundtrip: Vec<f64>,
    product: Vec<f64>,
    rotated: Vec<f64>,
}

/// Runs the full pipeline under one kernel. Everything (keys, noise,
/// ciphertexts) is re-derived from the same seed, so outputs are
/// comparable bit-for-bit across kernels.
fn pipeline(kernel: NttKernel) -> PipelineOut {
    let ctx = CkksContext::new(32, 3, 2, 2, 36, 34).with_ntt_kernel(kernel);
    let mut rng = StdRng::seed_from_u64(SEED);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let mut keys = KeySet::generate(&ctx, &sk, &mut rng);
    keys.gen_rotation_key(&ctx, &sk, ROT_STEP, &mut rng);
    let ev = Evaluator::new(ctx);

    let slots = ev.context().slots();
    let a: Vec<f64> = (0..slots).map(|i| (i as f64 * 0.37).sin()).collect();
    let b: Vec<f64> = (0..slots).map(|i| 1.5 - (i as f64 * 0.11)).collect();
    let ca = ev.encrypt_real(&a, &keys, &mut rng);
    let cb = ev.encrypt_real(&b, &keys, &mut rng);

    let roundtrip = ev.decrypt_real(&ca, &sk);
    assert!(
        max_err(&roundtrip, &a) < ROUNDTRIP_BOUND,
        "encrypt/decrypt roundtrip error {} exceeds {ROUNDTRIP_BOUND} under {kernel}",
        max_err(&roundtrip, &a)
    );

    let product = ev.decrypt_real(&ev.rescale(&ev.mul(&ca, &cb, &keys)), &sk);
    let expect: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
    assert!(
        max_err(&product, &expect) < MUL_RESCALE_BOUND,
        "mul+rescale error {} exceeds {MUL_RESCALE_BOUND} under {kernel}",
        max_err(&product, &expect)
    );

    let rotated = ev.decrypt_real(&ev.rotate(&ca, ROT_STEP, &keys), &sk);
    let expect: Vec<f64> = (0..slots)
        .map(|i| a[(i + ROT_STEP as usize) % slots])
        .collect();
    assert!(
        max_err(&rotated, &expect) < ROTATE_BOUND,
        "rotation error {} exceeds {ROTATE_BOUND} under {kernel}",
        max_err(&rotated, &expect)
    );

    PipelineOut {
        roundtrip,
        product,
        rotated,
    }
}

#[test]
fn precision_pinned_and_bit_identical_across_kernels() {
    // The 36-bit limbs here sit inside the IFMA window, so the fifth
    // generation joins the sweep — on hosts without AVX-512 IFMA it
    // runs the bit-identical portable mirror lanes, which is exactly
    // the leg non-IFMA CI needs pinned.
    let reference = pipeline(NttKernel::Reference);
    for kernel in [
        NttKernel::Radix2,
        NttKernel::Radix4,
        NttKernel::Simd,
        NttKernel::Ifma,
    ] {
        let out = pipeline(kernel);
        assert_eq!(
            out.roundtrip, reference.roundtrip,
            "decrypted roundtrip under {kernel} diverged from the reference kernel"
        );
        assert_eq!(
            out.product, reference.product,
            "decrypted product under {kernel} diverged from the reference kernel"
        );
        assert_eq!(
            out.rotated, reference.rotated,
            "decrypted rotation under {kernel} diverged from the reference kernel"
        );
    }
}
