//! Property-based tests for CKKS homomorphism invariants.
//!
//! Key generation is expensive, so keys are built once per property
//! and the case count is kept small; the *values* are what proptest
//! explores.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use ufc_ckks::{CkksContext, Evaluator, KeySet, SecretKey};

struct Env {
    ev: Evaluator,
    sk: SecretKey,
    keys: KeySet,
}

fn env() -> &'static Env {
    static ENV: OnceLock<Env> = OnceLock::new();
    ENV.get_or_init(|| {
        let ctx = CkksContext::new(32, 3, 2, 2, 36, 34);
        let mut rng = StdRng::seed_from_u64(777);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let keys = KeySet::generate(&ctx, &sk, &mut rng);
        Env {
            ev: Evaluator::new(ctx),
            sk,
            keys,
        }
    })
}

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-2.0f64..2.0, 16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_encrypt_decrypt_roundtrip(xs in values(), seed in any::<u64>()) {
        let e = env();
        let mut rng = StdRng::seed_from_u64(seed);
        let ct = e.ev.encrypt_real(&xs, &e.keys, &mut rng);
        let dec = e.ev.decrypt_real(&ct, &e.sk);
        prop_assert!(max_err(&xs, &dec) < 1e-3);
    }

    #[test]
    fn prop_addition_is_homomorphic(a in values(), b in values(), seed in any::<u64>()) {
        let e = env();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = e.ev.encrypt_real(&a, &e.keys, &mut rng);
        let cb = e.ev.encrypt_real(&b, &e.keys, &mut rng);
        let dec = e.ev.decrypt_real(&e.ev.add(&ca, &cb), &e.sk);
        let expect: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        prop_assert!(max_err(&dec, &expect) < 2e-3);
    }

    #[test]
    fn prop_multiplication_is_homomorphic(a in values(), b in values(), seed in any::<u64>()) {
        let e = env();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = e.ev.encrypt_real(&a, &e.keys, &mut rng);
        let cb = e.ev.encrypt_real(&b, &e.keys, &mut rng);
        let prod = e.ev.rescale(&e.ev.mul(&ca, &cb, &e.keys));
        let dec = e.ev.decrypt_real(&prod, &e.sk);
        let expect: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
        prop_assert!(max_err(&dec, &expect) < 0.05, "err {}", max_err(&dec, &expect));
    }

    #[test]
    fn prop_sub_of_self_is_zero(a in values(), seed in any::<u64>()) {
        let e = env();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = e.ev.encrypt_real(&a, &e.keys, &mut rng);
        let dec = e.ev.decrypt_real(&e.ev.sub(&ca, &ca), &e.sk);
        prop_assert!(dec.iter().all(|v| v.abs() < 1e-3));
    }
}
