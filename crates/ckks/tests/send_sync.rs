//! C-SEND-SYNC: the evaluator and key material must be shareable
//! across threads (the batch comparison runner relies on it).

use ufc_ckks::{CkksContext, Evaluator, KeySet, SecretKey};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn public_types_are_send_sync() {
    assert_send_sync::<CkksContext>();
    assert_send_sync::<Evaluator>();
    assert_send_sync::<SecretKey>();
    assert_send_sync::<KeySet>();
    assert_send_sync::<ufc_ckks::Ciphertext>();
    assert_send_sync::<ufc_ckks::RnsPoly>();
}
