//! Static checks over lowered [`InstrStream`]s.
//!
//! The dependency DAG *is* the dataflow: `deps` name the producers an
//! instruction reads. The checks here prove, without simulating,
//! that the DAG is well-formed (defined-before-use, no forward or
//! dangling edges), that shapes/word sizes/packing are consistent
//! with the kernel and phase that carry them, and that a liveness
//! sweep of producer→last-consumer buffers never exceeds the
//! scratchpad capacity.

use crate::diag::{Location, Report, Severity};
use crate::{Target, VerifyOptions};
use ufc_isa::instr::{InstrStream, Kernel, MacroInstr, Phase};

/// Runs every stream check, returning the merged report.
pub fn check_stream(stream: &InstrStream, opts: &VerifyOptions) -> Report {
    let mut report = Report::new();
    let deps_ok = check_dataflow(stream, &mut report);
    check_shapes(stream, opts, &mut report);
    check_scheme_crossings(stream, &mut report);
    // The liveness sweep walks dependency edges, so it only makes
    // sense on a well-formed DAG.
    if deps_ok {
        check_scratchpad(stream, opts, &mut report);
    }
    report
}

/// `stream/id-mismatch`, `stream/dep-forward`, `stream/dep-out-of-range`,
/// `stream/dep-duplicate`: the stream must be a topologically ordered
/// DAG whose ids equal positions. Returns whether every dependency
/// edge is usable (backward and in range).
fn check_dataflow(stream: &InstrStream, report: &mut Report) -> bool {
    let len = stream.len();
    let mut ok = true;
    for (pos, ins) in stream.instrs().iter().enumerate() {
        if ins.id != pos {
            report.push(
                Severity::Error,
                "stream/id-mismatch",
                Location::Instr(pos),
                format!("instruction at position {pos} carries id {}", ins.id),
            );
        }
        let mut seen = std::collections::HashSet::new();
        for &d in &ins.deps {
            if d >= len {
                ok = false;
                report.push(
                    Severity::Error,
                    "stream/dep-out-of-range",
                    Location::Instr(pos),
                    format!("dependency {d} does not exist (stream has {len} instrs)"),
                );
            } else if d >= pos {
                ok = false;
                report.push(
                    Severity::Error,
                    "stream/dep-forward",
                    Location::Instr(pos),
                    format!(
                        "dependency {d} is not defined before use (position {pos}); \
                         the stream must be topologically ordered"
                    ),
                );
            }
            if !seen.insert(d) {
                report.push(
                    Severity::Warning,
                    "stream/dep-duplicate",
                    Location::Instr(pos),
                    format!("dependency {d} listed more than once"),
                );
            }
        }
    }
    ok
}

/// Whether this kernel's word size is pinned by its phase. `Transfer`
/// moves opaque bytes (word = 8) regardless of phase.
fn phase_word_bits(ins: &MacroInstr) -> Option<u32> {
    if ins.kernel == Kernel::Transfer {
        return None;
    }
    match ins.phase {
        Phase::CkksEval | Phase::CkksKeySwitch | Phase::CkksBootstrap => Some(36),
        Phase::TfheBlindRotate | Phase::TfheKeySwitch => Some(32),
        Phase::SchemeSwitch | Phase::Other => None,
    }
}

/// Shape/word/pack consistency and per-kernel sanity:
/// `stream/shape-empty`, `stream/word-bits-invalid`,
/// `stream/phase-word-mismatch`, `stream/pack-zero`,
/// `stream/pack-exceeds-count`, `stream/transfer-on-unified`,
/// `stream/transfer-no-bytes`, `stream/load-store-no-bytes`.
fn check_shapes(stream: &InstrStream, opts: &VerifyOptions, report: &mut Report) {
    for (pos, ins) in stream.instrs().iter().enumerate() {
        if ins.shape.count == 0 {
            report.push(
                Severity::Error,
                "stream/shape-empty",
                Location::Instr(pos),
                format!("{:?} over an empty batch (count = 0)", ins.kernel),
            );
        }
        if !matches!(ins.word_bits, 8 | 32 | 36) {
            report.push(
                Severity::Error,
                "stream/word-bits-invalid",
                Location::Instr(pos),
                format!(
                    "word size {} bits; the machine models only know 8 (opaque \
                     bytes), 32 (TFHE torus) and 36 (CKKS limb)",
                    ins.word_bits
                ),
            );
        } else if let Some(expect) = phase_word_bits(ins) {
            if ins.word_bits != expect {
                report.push(
                    Severity::Warning,
                    "stream/phase-word-mismatch",
                    Location::Instr(pos),
                    format!(
                        "{:?} in phase {:?} uses {}-bit words; this phase's \
                         pipeline is {expect}-bit",
                        ins.kernel, ins.phase, ins.word_bits
                    ),
                );
            }
        }
        if ins.pack == 0 {
            report.push(
                Severity::Error,
                "stream/pack-zero",
                Location::Instr(pos),
                "packing cap of 0 lanes can never issue",
            );
        } else if ins.pack != u32::MAX && ins.pack > ins.shape.count {
            report.push(
                Severity::Warning,
                "stream/pack-exceeds-count",
                Location::Instr(pos),
                format!(
                    "packing cap {} exceeds batch count {}; cap is ineffective",
                    ins.pack, ins.shape.count
                ),
            );
        }
        match ins.kernel {
            Kernel::Transfer => {
                if opts.target == Target::Ufc {
                    report.push(
                        Severity::Error,
                        "stream/transfer-on-unified",
                        Location::Instr(pos),
                        "Transfer models the composed baseline's PCIe hop; UFC \
                         keeps scheme switches on-chip",
                    );
                }
                if ins.hbm_bytes == 0 {
                    report.push(
                        Severity::Warning,
                        "stream/transfer-no-bytes",
                        Location::Instr(pos),
                        "Transfer moves 0 bytes",
                    );
                }
            }
            Kernel::Load | Kernel::Store if ins.hbm_bytes == 0 => {
                report.push(
                    Severity::Warning,
                    "stream/load-store-no-bytes",
                    Location::Instr(pos),
                    format!("{:?} streams 0 HBM bytes", ins.kernel),
                );
            }
            _ => {}
        }
    }
}

/// Which scheme pipeline a phase occupies, if it pins one.
fn phase_scheme(phase: Phase) -> Option<&'static str> {
    match phase {
        Phase::CkksEval | Phase::CkksKeySwitch | Phase::CkksBootstrap => Some("CKKS"),
        Phase::TfheBlindRotate | Phase::TfheKeySwitch => Some("TFHE"),
        Phase::SchemeSwitch | Phase::Other => None,
    }
}

/// `stream/unsynchronized-scheme-crossing`: when adjacent instructions
/// hop between the CKKS and TFHE pipelines, the later one must carry
/// at least one dependency, otherwise the machine models are free to
/// overlap the two sides and the scheme switch is not actually
/// sequenced (mirrors `compile_with_barriers` in `ufc-core`).
fn check_scheme_crossings(stream: &InstrStream, report: &mut Report) {
    let instrs = stream.instrs();
    for pos in 1..instrs.len() {
        let (prev, cur) = (&instrs[pos - 1], &instrs[pos]);
        if let (Some(a), Some(b)) = (phase_scheme(prev.phase), phase_scheme(cur.phase)) {
            if a != b && cur.deps.is_empty() {
                report.push(
                    Severity::Warning,
                    "stream/unsynchronized-scheme-crossing",
                    Location::Instr(pos),
                    format!(
                        "{a}→{b} pipeline crossing with no dependency edge; \
                         the switch is unsequenced"
                    ),
                );
            }
        }
    }
}

/// Bytes one element occupies on the scratchpad for a given word size
/// (36-bit limbs are stored in 8-byte words, matching
/// `CkksParams::ciphertext_bytes`; 32-bit torus words in 4; opaque
/// transfer payloads byte-for-byte).
fn word_bytes(word_bits: u32) -> u64 {
    match word_bits {
        36 => 8,
        32 => 4,
        8 => 1,
        // Invalid word sizes are flagged by `stream/word-bits-invalid`;
        // account conservatively so the sweep still runs.
        _ => 8,
    }
}

/// Scratchpad bytes the result of `ins` occupies while live.
fn output_bytes(ins: &MacroInstr) -> u64 {
    match ins.kernel {
        // Store drains to HBM: nothing stays resident.
        Kernel::Store => 0,
        // Transfer is a chip-to-chip hop, not a scratchpad resident.
        Kernel::Transfer => 0,
        // A BConv shape counts MAC passes (input limbs × output
        // limbs), not resident polynomials; its result is bounded by
        // — and charged to — the consumer that reads it.
        Kernel::BconvMac => 0,
        _ => ins.shape.elems() * word_bytes(ins.word_bits),
    }
}

/// `stream/scratchpad-overflow`: a liveness sweep. Each instruction's
/// output buffer is live from its position to its last consumer
/// (instructions naming it in `deps`); the running sum of live bytes
/// must stay within the scratchpad capacity. This is an upper bound a
/// real allocator must also satisfy — exceeding it statically means
/// no schedule without spills exists for this stream.
fn check_scratchpad(stream: &InstrStream, opts: &VerifyOptions, report: &mut Report) {
    let capacity = opts.scratchpad_capacity();
    let instrs = stream.instrs();
    let mut last_use: Vec<usize> = (0..instrs.len()).collect();
    for (pos, ins) in instrs.iter().enumerate() {
        for &d in &ins.deps {
            last_use[d] = last_use[d].max(pos);
        }
    }
    let mut live: u64 = 0;
    let mut high_water: u64 = 0;
    let mut high_pos = 0;
    // Buffers that die at position p (after p executes).
    let mut dying: Vec<Vec<u64>> = vec![Vec::new(); instrs.len()];
    for (pos, ins) in instrs.iter().enumerate() {
        dying[last_use[pos]].push(output_bytes(ins));
        live += output_bytes(ins);
        if live > high_water {
            high_water = live;
            high_pos = pos;
        }
        for bytes in dying[pos].drain(..) {
            live -= bytes;
        }
    }
    if high_water > capacity {
        report.push(
            Severity::Error,
            "stream/scratchpad-overflow",
            Location::Instr(high_pos),
            format!(
                "live-buffer high-water mark {high_water} bytes exceeds the \
                 {capacity}-byte scratchpad; no spill-free schedule exists"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_isa::instr::PolyShape;

    fn opts() -> VerifyOptions {
        VerifyOptions::default()
    }

    fn instr(id: usize, kernel: Kernel, deps: Vec<usize>) -> MacroInstr {
        MacroInstr {
            id,
            kernel,
            shape: PolyShape::new(10, 4),
            word_bits: 36,
            deps,
            hbm_bytes: if matches!(kernel, Kernel::Load | Kernel::Store | Kernel::Transfer) {
                4096
            } else {
                0
            },
            phase: Phase::CkksEval,
            pack: u32::MAX,
        }
    }

    #[test]
    fn clean_stream_passes() {
        let mut s = InstrStream::new();
        let a = s.push(
            Kernel::Load,
            PolyShape::new(10, 2),
            36,
            vec![],
            1024,
            Phase::CkksEval,
        );
        let b = s.push(
            Kernel::Ntt,
            PolyShape::new(10, 2),
            36,
            vec![a],
            0,
            Phase::CkksEval,
        );
        s.push(
            Kernel::Ewmm,
            PolyShape::new(10, 2),
            36,
            vec![b],
            0,
            Phase::CkksEval,
        );
        assert!(check_stream(&s, &opts()).is_clean());
    }

    #[test]
    fn forward_and_dangling_deps_flagged() {
        let s = InstrStream::from_raw(vec![
            instr(0, Kernel::Ntt, vec![1]),
            instr(1, Kernel::Ewmm, vec![99]),
        ]);
        let r = check_stream(&s, &opts());
        assert!(r.has_code("stream/dep-forward"));
        assert!(r.has_code("stream/dep-out-of-range"));
    }

    #[test]
    fn id_mismatch_flagged() {
        let s = InstrStream::from_raw(vec![instr(7, Kernel::Ntt, vec![])]);
        assert!(check_stream(&s, &opts()).has_code("stream/id-mismatch"));
    }

    #[test]
    fn duplicate_dep_warned() {
        let s = InstrStream::from_raw(vec![
            instr(0, Kernel::Ntt, vec![]),
            instr(1, Kernel::Ewmm, vec![0, 0]),
        ]);
        let r = check_stream(&s, &opts());
        assert!(r.has_code("stream/dep-duplicate"));
        assert!(!r.has_errors());
    }

    #[test]
    fn empty_shape_and_bad_word_flagged() {
        let mut bad = instr(0, Kernel::Ntt, vec![]);
        bad.shape.count = 0;
        bad.word_bits = 17;
        let s = InstrStream::from_raw(vec![bad]);
        let r = check_stream(&s, &opts());
        assert!(r.has_code("stream/shape-empty"));
        assert!(r.has_code("stream/word-bits-invalid"));
    }

    #[test]
    fn phase_word_mismatch_warned() {
        let mut ins = instr(0, Kernel::Ntt, vec![]);
        ins.word_bits = 32; // TFHE words in a CKKS phase.
        let s = InstrStream::from_raw(vec![ins]);
        assert!(check_stream(&s, &opts()).has_code("stream/phase-word-mismatch"));
    }

    #[test]
    fn transfer_exempt_from_phase_word() {
        let mut ins = instr(0, Kernel::Transfer, vec![]);
        ins.word_bits = 8;
        ins.phase = Phase::Other;
        let s = InstrStream::from_raw(vec![ins]);
        assert!(check_stream(&s, &opts()).is_clean());
    }

    #[test]
    fn pack_checks() {
        let mut zero = instr(0, Kernel::Ntt, vec![]);
        zero.pack = 0;
        let mut wide = instr(1, Kernel::Ntt, vec![]);
        wide.pack = 1000; // count is 4.
        let s = InstrStream::from_raw(vec![zero, wide]);
        let r = check_stream(&s, &opts());
        assert!(r.has_code("stream/pack-zero"));
        assert!(r.has_code("stream/pack-exceeds-count"));
    }

    #[test]
    fn transfer_on_unified_is_error() {
        let mut ins = instr(0, Kernel::Transfer, vec![]);
        ins.word_bits = 8;
        ins.phase = Phase::Other;
        let s = InstrStream::from_raw(vec![ins]);
        let ufc = VerifyOptions {
            target: Target::Ufc,
            ..VerifyOptions::default()
        };
        assert!(check_stream(&s, &ufc).has_code("stream/transfer-on-unified"));
        assert!(check_stream(&s, &opts()).is_clean());
    }

    #[test]
    fn zero_byte_movement_warned() {
        let mut ld = instr(0, Kernel::Load, vec![]);
        ld.hbm_bytes = 0;
        let s = InstrStream::from_raw(vec![ld]);
        assert!(check_stream(&s, &opts()).has_code("stream/load-store-no-bytes"));
    }

    #[test]
    fn unsynchronized_crossing_warned() {
        let mut a = instr(0, Kernel::Ntt, vec![]);
        a.phase = Phase::CkksEval;
        let mut b = instr(1, Kernel::Rotate, vec![]);
        b.phase = Phase::TfheBlindRotate;
        b.word_bits = 32;
        let s = InstrStream::from_raw(vec![a.clone(), b.clone()]);
        assert!(check_stream(&s, &opts()).has_code("stream/unsynchronized-scheme-crossing"));

        // Adding the dependency sequences the crossing.
        b.deps = vec![0];
        let s = InstrStream::from_raw(vec![a, b]);
        assert!(check_stream(&s, &opts()).is_clean());
    }

    #[test]
    fn scratchpad_overflow_detected() {
        // One poly batch of 2^16 * 64 limbs at 8 B = 32 MiB per buffer;
        // cap the scratchpad at 16 MiB so a single buffer overflows.
        let tiny = VerifyOptions {
            scratchpad_bytes: Some(16 << 20),
            ..VerifyOptions::default()
        };
        let mut s = InstrStream::new();
        s.push(
            Kernel::Ntt,
            PolyShape::new(16, 64),
            36,
            vec![],
            0,
            Phase::CkksEval,
        );
        assert!(check_stream(&s, &tiny).has_code("stream/scratchpad-overflow"));
        // The default 256 MiB capacity accommodates it.
        assert!(check_stream(&s, &opts()).is_clean());
    }

    #[test]
    fn liveness_frees_dead_buffers() {
        // A long chain of small buffers never accumulates: each dies
        // as soon as its consumer runs.
        let tiny = VerifyOptions {
            scratchpad_bytes: Some(1 << 20),
            ..VerifyOptions::default()
        };
        let mut s = InstrStream::new();
        let mut prev = s.push(
            Kernel::Load,
            PolyShape::new(12, 8),
            36,
            vec![],
            64,
            Phase::CkksEval,
        );
        for _ in 0..100 {
            prev = s.push(
                Kernel::Ewmm,
                PolyShape::new(12, 8),
                36,
                vec![prev],
                0,
                Phase::CkksEval,
            );
        }
        // 2^12 * 8 * 8 B = 256 KiB per buffer, two live at a time.
        assert!(check_stream(&s, &tiny).is_clean());
    }
}
