//! # ufc-verify — static checking for UFC traces and instruction streams
//!
//! The simulator trusts its inputs: a malformed [`Trace`] or
//! [`InstrStream`] produces plausible-looking but meaningless cycle
//! counts. This crate proves properties of both IR levels **without
//! executing them**:
//!
//! * **Dataflow** — dependency edges are defined-before-use, in range,
//!   and non-duplicated; instruction ids match stream positions
//!   ([`stream_checks`]).
//! * **Resource invariants** — a producer→last-consumer liveness sweep
//!   bounds the scratchpad high-water mark against capacity; word
//!   sizes, shapes and packing caps are consistent with the kernel and
//!   phase that carry them; levels fit the declared modulus chain and
//!   rescales have a limb to drop ([`trace_checks`], [`stream_checks`]).
//! * **Scheme-switching sequencing** — TFHE work follows an `Extract`,
//!   `Repack` only consumes previously extracted LWEs, cross-pipeline
//!   hops carry a dependency edge, and `SchemeTransfer` appears only
//!   when targeting the composed baseline.
//!
//! Findings come back as a severity-ranked [`Report`] of
//! [`Diagnostic`]s with stable codes (`trace/…`, `stream/…`), rendered
//! human-readable or as JSON. Three front doors use it: the
//! `ufc-lint` CLI, the `--verify` pre-pass in `ufc-sim`/`ufc-core`,
//! and post-lowering assertions in `ufc-compiler`.

#![forbid(unsafe_code)]

pub mod diag;
pub mod noise_checks;
pub mod stream_checks;
pub mod trace_checks;

pub use diag::{Diagnostic, Location, Report, Severity};
pub use noise_checks::{NoiseOptions, NoiseSchedule};

use ufc_isa::instr::InstrStream;
use ufc_isa::serial::{self, ParseError};
use ufc_isa::trace::Trace;

/// Scratchpad capacity assumed when [`VerifyOptions::scratchpad_bytes`]
/// is unset: 256 MiB, the `UfcConfig::default()` scratchpad.
pub const DEFAULT_SCRATCHPAD_BYTES: u64 = 256 << 20;

/// Which machine the artifact claims to target. Some constructs are
/// only legal on one side of the UFC-vs-composed comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Target {
    /// No target claimed: skip target-specific checks.
    #[default]
    Any,
    /// The unified accelerator: scheme switches stay on-chip, so
    /// `SchemeTransfer`/`Transfer` must not appear.
    Ufc,
    /// The composed SHARP+Strix baseline: chip-to-chip transfers are
    /// expected.
    Composed,
}

impl Target {
    /// Parses a CLI-facing target name.
    pub fn parse(s: &str) -> Option<Target> {
        match s {
            "any" => Some(Target::Any),
            "ufc" => Some(Target::Ufc),
            "composed" => Some(Target::Composed),
            _ => None,
        }
    }
}

/// Knobs for a verification run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VerifyOptions {
    /// Target machine for target-specific checks.
    pub target: Target,
    /// Scratchpad capacity for the liveness sweep;
    /// [`DEFAULT_SCRATCHPAD_BYTES`] when `None`.
    pub scratchpad_bytes: Option<u64>,
    /// Run the noise/scale abstract interpreter with these knobs;
    /// `None` skips the noise pass entirely.
    pub noise: Option<NoiseOptions>,
}

impl VerifyOptions {
    /// Options for a given target with the default scratchpad.
    pub fn for_target(target: Target) -> Self {
        Self {
            target,
            ..Self::default()
        }
    }

    /// The same options with the noise pass enabled at its defaults.
    pub fn with_noise(mut self) -> Self {
        self.noise = Some(NoiseOptions::default());
        self
    }

    /// The effective scratchpad capacity in bytes.
    pub fn scratchpad_capacity(&self) -> u64 {
        self.scratchpad_bytes.unwrap_or(DEFAULT_SCRATCHPAD_BYTES)
    }
}

/// Verifies a ciphertext-granularity trace.
pub fn verify_trace(trace: &Trace, opts: &VerifyOptions) -> Report {
    let mut report = trace_checks::check_trace(trace, opts);
    if let Some(noise) = &opts.noise {
        noise_checks::check_trace_noise(trace, noise, &mut report);
    }
    report
}

/// Verifies a lowered instruction stream.
pub fn verify_stream(stream: &InstrStream, opts: &VerifyOptions) -> Report {
    let mut report = stream_checks::check_stream(stream, opts);
    if let Some(noise) = &opts.noise {
        noise_checks::check_stream_noise(stream, noise, &mut report);
    }
    report
}

/// What a serialized artifact turned out to contain.
#[derive(Debug, Clone, PartialEq)]
pub enum Artifact {
    /// A ciphertext-granularity trace.
    Trace(Trace),
    /// A lowered instruction stream.
    Stream(InstrStream),
}

/// Parses serialized text as either a trace or a stream (sniffed from
/// the first directive line) and verifies it.
pub fn verify_text(text: &str, opts: &VerifyOptions) -> Result<(Artifact, Report), ParseError> {
    match sniff(text) {
        Sniff::Stream => {
            let s = serial::stream_from_text(text)?;
            let r = verify_stream(&s, opts);
            Ok((Artifact::Stream(s), r))
        }
        // Traces are the default: their parser produces the more
        // useful error for unrecognizable input.
        Sniff::Trace => {
            let t = serial::trace_from_text(text)?;
            let r = verify_trace(&t, opts);
            Ok((Artifact::Trace(t), r))
        }
    }
}

enum Sniff {
    Trace,
    Stream,
}

fn sniff(text: &str) -> Sniff {
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let word = line.split_whitespace().next().unwrap_or("");
        return match word {
            "stream" | "instr" => Sniff::Stream,
            _ => Sniff::Trace,
        };
    }
    Sniff::Trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_isa::instr::{Kernel, Phase, PolyShape};
    use ufc_isa::trace::TraceOp;

    #[test]
    fn options_default_scratchpad() {
        assert_eq!(VerifyOptions::default().scratchpad_capacity(), 256 << 20);
        let o = VerifyOptions {
            scratchpad_bytes: Some(1024),
            ..VerifyOptions::default()
        };
        assert_eq!(o.scratchpad_capacity(), 1024);
    }

    #[test]
    fn target_parse() {
        assert_eq!(Target::parse("ufc"), Some(Target::Ufc));
        assert_eq!(Target::parse("composed"), Some(Target::Composed));
        assert_eq!(Target::parse("any"), Some(Target::Any));
        assert_eq!(Target::parse("x"), None);
    }

    #[test]
    fn verify_text_sniffs_trace() {
        let text = "# ufc trace v1\ntrace t\nckks C1\nop CkksAdd level=1\n";
        let (art, report) = verify_text(text, &VerifyOptions::default()).unwrap();
        assert!(matches!(art, Artifact::Trace(_)));
        assert!(report.is_clean());
    }

    #[test]
    fn verify_text_sniffs_stream() {
        let mut s = InstrStream::new();
        s.push(
            Kernel::Ntt,
            PolyShape::new(10, 1),
            36,
            vec![],
            0,
            Phase::CkksEval,
        );
        let text = serial::stream_to_text(&s);
        let (art, report) = verify_text(&text, &VerifyOptions::default()).unwrap();
        assert!(matches!(art, Artifact::Stream(_)));
        assert!(report.is_clean());
    }

    #[test]
    fn verify_text_propagates_parse_errors() {
        assert!(verify_text("garbage here\n", &VerifyOptions::default()).is_err());
    }

    #[test]
    fn end_to_end_trace_diagnostics() {
        let mut tr = Trace::new("bad").with_ckks("C1");
        tr.push(TraceOp::CkksRescale { level: 0 });
        let text = serial::trace_to_text(&tr);
        let (_, report) = verify_text(&text, &VerifyOptions::default()).unwrap();
        assert!(report.has_code("trace/rescale-at-zero"));
        assert!(report.has_errors());
    }
}
