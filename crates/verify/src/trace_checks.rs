//! Static checks over ciphertext-granularity [`Trace`]s.
//!
//! Everything here runs without executing the trace: parameter
//! resolution, per-op level/shape sanity against the modulus chain,
//! and scheme-switching sequencing (`Extract` before TFHE work,
//! `Repack` only consuming previously extracted LWEs,
//! `SchemeTransfer` only on the composed baseline).

use crate::diag::{Location, Report, Severity};
use crate::{Target, VerifyOptions};
use ufc_isa::params::{ckks_params, tfhe_params};
use ufc_isa::trace::{Trace, TraceOp};

/// Runs every trace check, returning the merged report.
pub fn check_trace(trace: &Trace, opts: &VerifyOptions) -> Report {
    let mut report = Report::new();
    check_params(trace, &mut report);
    check_levels(trace, &mut report);
    check_shapes(trace, &mut report);
    check_scheme_switching(trace, opts, &mut report);
    report
}

/// `trace/params-unknown`, `trace/params-missing`: the parameter
/// environment must resolve in the Table III registry and cover every
/// scheme the trace uses.
fn check_params(trace: &Trace, report: &mut Report) {
    let (ckks_ops, tfhe_ops, _) = trace.scheme_mix();
    match trace.ckks_params {
        Some(id) if ckks_params(id).is_none() => report.push(
            Severity::Error,
            "trace/params-unknown",
            Location::Global,
            format!("CKKS parameter set `{id}` is not in the registry"),
        ),
        None if ckks_ops > 0 => report.push(
            Severity::Error,
            "trace/params-missing",
            Location::Global,
            format!("{ckks_ops} CKKS op(s) but no CKKS parameter set declared"),
        ),
        _ => {}
    }
    match trace.tfhe_params {
        Some(id) if tfhe_params(id).is_none() => report.push(
            Severity::Error,
            "trace/params-unknown",
            Location::Global,
            format!("TFHE parameter set `{id}` is not in the registry"),
        ),
        None if tfhe_ops > 0 => report.push(
            Severity::Error,
            "trace/params-missing",
            Location::Global,
            format!("{tfhe_ops} TFHE op(s) but no TFHE parameter set declared"),
        ),
        _ => {}
    }
}

/// The CKKS level an op claims to run at, if any.
fn op_level(op: &TraceOp) -> Option<u32> {
    match *op {
        TraceOp::CkksAdd { level }
        | TraceOp::CkksMulPlain { level }
        | TraceOp::CkksMulCt { level }
        | TraceOp::CkksRescale { level }
        | TraceOp::CkksRotate { level, .. }
        | TraceOp::CkksConjugate { level }
        | TraceOp::Extract { level, .. }
        | TraceOp::Repack { level, .. } => Some(level),
        TraceOp::CkksModRaise { from_level } => Some(from_level),
        _ => None,
    }
}

/// `trace/level-exceeds-max`, `trace/rescale-at-zero`: every claimed
/// level must fit the declared modulus chain, and a rescale must have
/// a limb to drop.
fn check_levels(trace: &Trace, report: &mut Report) {
    let max_level = trace
        .ckks_params
        .and_then(ckks_params)
        .map(|p| p.max_level());
    for (i, op) in trace.ops.iter().enumerate() {
        if let (Some(level), Some(max)) = (op_level(op), max_level) {
            if level > max {
                report.push(
                    Severity::Error,
                    "trace/level-exceeds-max",
                    Location::Op(i),
                    format!(
                        "{op:?} claims level {level} but `{}` tops out at {max}",
                        trace.ckks_params.unwrap_or("?")
                    ),
                );
            }
        }
        if matches!(op, TraceOp::CkksRescale { level: 0 }) {
            report.push(
                Severity::Error,
                "trace/rescale-at-zero",
                Location::Op(i),
                "rescale at level 0 has no limb to drop",
            );
        }
    }
}

/// `trace/batch-zero`, `trace/transfer-zero-bytes`: degenerate op
/// shapes that lower to nothing and usually indicate a broken tracer.
fn check_shapes(trace: &Trace, report: &mut Report) {
    for (i, op) in trace.ops.iter().enumerate() {
        let zero = match *op {
            TraceOp::TfhePbs { batch } | TraceOp::TfheKeySwitch { batch } => batch == 0,
            TraceOp::TfheLinear { count }
            | TraceOp::Extract { count, .. }
            | TraceOp::Repack { count, .. } => count == 0,
            _ => false,
        };
        if zero {
            report.push(
                Severity::Warning,
                "trace/batch-zero",
                Location::Op(i),
                format!("{op:?} has a zero batch/count and lowers to nothing"),
            );
        }
        if matches!(op, TraceOp::SchemeTransfer { bytes: 0 }) {
            report.push(
                Severity::Warning,
                "trace/transfer-zero-bytes",
                Location::Op(i),
                "scheme transfer of 0 bytes",
            );
        }
    }
}

/// Scheme-switching sequencing (§II-D):
///
/// * `trace/tfhe-before-extract` — in a hybrid trace, TFHE work before
///   any LWEs have been extracted operates on nothing;
/// * `trace/repack-without-extract` — a repack needs extracted LWEs;
/// * `trace/repack-count-exceeds-extracted` — cannot repack more LWEs
///   than were extracted so far;
/// * `trace/extract-never-repacked` — extracted LWEs left unconsumed
///   (fine if the program ends on the TFHE side, hence Info);
/// * `trace/transfer-on-unified` — `SchemeTransfer` models the PCIe
///   hop of the composed SHARP+Strix baseline and must not appear in a
///   trace targeting the unified accelerator.
fn check_scheme_switching(trace: &Trace, opts: &VerifyOptions, report: &mut Report) {
    let hybrid = trace.is_hybrid();
    let mut extracted: u64 = 0;
    let mut repacked: u64 = 0;
    let mut warned_tfhe_before_extract = false;
    for (i, op) in trace.ops.iter().enumerate() {
        match *op {
            TraceOp::Extract { count, .. } => extracted += count as u64,
            TraceOp::Repack { count, .. } => {
                if extracted == 0 {
                    report.push(
                        Severity::Error,
                        "trace/repack-without-extract",
                        Location::Op(i),
                        "repack with no preceding extract: no LWE ciphertexts exist",
                    );
                } else if repacked + count as u64 > extracted {
                    report.push(
                        Severity::Error,
                        "trace/repack-count-exceeds-extracted",
                        Location::Op(i),
                        format!(
                            "repacking {count} LWEs but only {} of {extracted} \
                             extracted remain",
                            extracted - repacked
                        ),
                    );
                }
                repacked += count as u64;
            }
            TraceOp::TfhePbs { .. }
            | TraceOp::TfheKeySwitch { .. }
            | TraceOp::TfheLinear { .. }
                if hybrid && extracted == 0 && !warned_tfhe_before_extract =>
            {
                warned_tfhe_before_extract = true;
                report.push(
                    Severity::Warning,
                    "trace/tfhe-before-extract",
                    Location::Op(i),
                    "hybrid trace runs TFHE ops before any Extract; the logic \
                         side has no data derived from the SIMD side",
                );
            }
            TraceOp::SchemeTransfer { .. } if opts.target == Target::Ufc => {
                report.push(
                    Severity::Error,
                    "trace/transfer-on-unified",
                    Location::Op(i),
                    "SchemeTransfer belongs to the composed baseline; UFC keeps \
                         data on-chip across scheme switches",
                );
            }
            _ => {}
        }
    }
    if extracted > repacked && repacked > 0 {
        report.push(
            Severity::Info,
            "trace/extract-never-repacked",
            Location::Global,
            format!("{} extracted LWE(s) never repacked", extracted - repacked),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> VerifyOptions {
        VerifyOptions::default()
    }

    #[test]
    fn clean_ckks_trace_passes() {
        let mut tr = Trace::new("ok").with_ckks("C1");
        tr.push(TraceOp::CkksMulCt { level: 10 });
        tr.push(TraceOp::CkksRescale { level: 10 });
        assert!(check_trace(&tr, &opts()).is_clean());
    }

    #[test]
    fn unknown_params_flagged() {
        let mut tr = Trace::new("bad").with_ckks("C9");
        tr.push(TraceOp::CkksAdd { level: 1 });
        let r = check_trace(&tr, &opts());
        assert!(r.has_code("trace/params-unknown"));
        assert!(r.has_errors());
    }

    #[test]
    fn missing_params_flagged() {
        let mut tr = Trace::new("bad");
        tr.push(TraceOp::TfhePbs { batch: 8 });
        let r = check_trace(&tr, &opts());
        assert!(r.has_code("trace/params-missing"));
    }

    #[test]
    fn level_exceeding_chain_flagged() {
        let max = ckks_params("C1").unwrap().max_level();
        let mut tr = Trace::new("deep").with_ckks("C1");
        tr.push(TraceOp::CkksRotate {
            level: max + 1,
            step: 1,
        });
        let r = check_trace(&tr, &opts());
        assert!(r.has_code("trace/level-exceeds-max"));
    }

    #[test]
    fn rescale_at_zero_flagged() {
        let mut tr = Trace::new("z").with_ckks("C1");
        tr.push(TraceOp::CkksRescale { level: 0 });
        assert!(check_trace(&tr, &opts()).has_code("trace/rescale-at-zero"));
    }

    #[test]
    fn zero_batch_warned() {
        let mut tr = Trace::new("zb").with_tfhe("T1");
        tr.push(TraceOp::TfhePbs { batch: 0 });
        let r = check_trace(&tr, &opts());
        assert!(r.has_code("trace/batch-zero"));
        assert!(!r.has_errors());
    }

    #[test]
    fn repack_without_extract_is_error() {
        let mut tr = Trace::new("rp").with_ckks("C1").with_tfhe("T1");
        tr.push(TraceOp::Repack {
            count: 16,
            level: 4,
        });
        assert!(check_trace(&tr, &opts()).has_code("trace/repack-without-extract"));
    }

    #[test]
    fn repack_budget_enforced() {
        let mut tr = Trace::new("rb").with_ckks("C1").with_tfhe("T1");
        tr.push(TraceOp::Extract { level: 5, count: 8 });
        tr.push(TraceOp::TfhePbs { batch: 8 });
        tr.push(TraceOp::Repack {
            count: 16,
            level: 4,
        });
        let r = check_trace(&tr, &opts());
        assert!(r.has_code("trace/repack-count-exceeds-extracted"));
    }

    #[test]
    fn tfhe_before_extract_warned_only_for_hybrid() {
        let mut hybrid = Trace::new("h").with_ckks("C1").with_tfhe("T1");
        hybrid.push(TraceOp::TfhePbs { batch: 4 });
        hybrid.push(TraceOp::CkksAdd { level: 1 });
        assert!(check_trace(&hybrid, &opts()).has_code("trace/tfhe-before-extract"));

        let mut pure = Trace::new("p").with_tfhe("T1");
        pure.push(TraceOp::TfhePbs { batch: 4 });
        assert!(check_trace(&pure, &opts()).is_clean());
    }

    #[test]
    fn transfer_rejected_on_unified_target() {
        let mut tr = Trace::new("t").with_ckks("C1");
        tr.push(TraceOp::SchemeTransfer { bytes: 4096 });
        let ufc = VerifyOptions {
            target: Target::Ufc,
            ..VerifyOptions::default()
        };
        assert!(check_trace(&tr, &ufc).has_code("trace/transfer-on-unified"));
        assert!(check_trace(&tr, &opts()).is_clean());
        let composed = VerifyOptions {
            target: Target::Composed,
            ..VerifyOptions::default()
        };
        assert!(check_trace(&tr, &composed).is_clean());
    }

    #[test]
    fn leftover_extracts_are_info() {
        let mut tr = Trace::new("i").with_ckks("C1").with_tfhe("T1");
        tr.push(TraceOp::Extract {
            level: 5,
            count: 64,
        });
        tr.push(TraceOp::TfhePbs { batch: 64 });
        tr.push(TraceOp::Repack {
            count: 32,
            level: 4,
        });
        let r = check_trace(&tr, &opts());
        assert!(r.has_code("trace/extract-never-repacked"));
        assert!(!r.has_errors());
    }
}
