//! Static noise/scale abstract interpretation over both IR levels.
//!
//! The dataflow and resource checks prove a trace is *well-formed*;
//! this pass proves it is *cryptographically survivable*. It replays
//! the program over an abstract ciphertext state — no keys, no
//! polynomials — using the exact transfer functions the runtime
//! schemes were calibrated with ([`ufc_isa::noise`]):
//!
//! * **CKKS** — one abstract ciphertext chain `(level, raised,
//!   NoiseBudget)`. The traces here are *analytic* (BSGS sums and
//!   depth-compressed polynomial ladders emit many same-level
//!   multiplies that share rescales), so the scale model saturates:
//!   a multiply raises the level's products to `2Δ`, further
//!   same-level multiplies are parallel products at `2Δ`, and one
//!   rescale returns the whole level to `Δ`. What *is* checked
//!   exactly: the product scale must fit the level's modulus
//!   (`LIMB_BITS + scale_bits·ℓ`, a scale-calibrated chain), raised
//!   products must be rescaled before the chain moves down a level,
//!   and a segment must never rescale more often than it multiplied
//!   (dividing a base-scale ciphertext by `Δ` destroys the message).
//!   A declared level *above* the chain's is read as a new fresh
//!   segment, below as a drop-to-level.
//! * **TFHE** — per-sample phase-error variance ([`LweNoise`])
//!   through gate linear parts, key switches and the PBS reset, with
//!   the pre-blind-rotation modulus switch checked against the
//!   decoding margin `q/(2·space)`.
//! * **Boundaries** — `Extract` requires CKKS precision to cover the
//!   TFHE message space; `Repack` folds the 6σ LWE phase error back
//!   into the CKKS slot budget.
//!
//! The same interpretation produces the [`NoiseSchedule`]: the per-op
//! level/scale/precision table that `ufc-compiler` attaches to its
//! [`CompileStats`](https://docs.rs/) and `ufc-profile` renders.
//!
//! On the lowered stream the ciphertext structure is gone, so the
//! stream pass works from *lowering signatures*: a `CkksEval`
//! `Intt(2L+2) → Ntt(2L)` pair is a rescale (counted against the
//! modulus chain, reset by `CkksBootstrap` phases), a 32-bit
//! `TfheKeySwitch` `Ewma` is a gate linear part, a `TfheBlindRotate`
//! run is a PBS reset, and a `TfheKeySwitch` `Redc` is the LWE key
//! switch.

use crate::diag::{Location, Report, Severity};
use ufc_isa::instr::{InstrStream, Kernel, Phase};
use ufc_isa::noise::{LweNoise, NoiseBudget, TFHE_Q};
use ufc_isa::params::{ckks_params, tfhe_params, CkksParams, TfheParams, LIMB_BITS};
use ufc_isa::trace::{Trace, TraceOp};

/// Headroom (in bits) kept between the scale·value magnitude and the
/// modulus before `noise/scale-overflow` fires.
const GUARD_BITS: f64 = 2.0;

/// A bootstrap this far above the level floor is flagged as
/// `noise/level-waste` (fraction of `max_level`).
const LEVEL_WASTE_FRACTION: f64 = 0.75;

/// Knobs of the noise pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseOptions {
    /// CKKS parameter set used when the artifact does not declare one
    /// (streams never do; traces usually do).
    pub ckks: Option<CkksParams>,
    /// TFHE parameter set used when the artifact does not declare one.
    pub tfhe: Option<TfheParams>,
    /// log2 of the CKKS encoding scale `Δ` (the runtime default
    /// is 34).
    pub scale_bits: u32,
    /// Assumed `|message|` bound of fresh CKKS inputs.
    pub value_bound: f64,
    /// TFHE message-space size (`8` = 3-bit torus messages, the gate
    /// encoding the runtime uses).
    pub space: f64,
}

impl Default for NoiseOptions {
    fn default() -> Self {
        Self {
            ckks: None,
            tfhe: None,
            scale_bits: 34,
            value_bound: 1.0,
            space: 8.0,
        }
    }
}

impl NoiseOptions {
    /// The encoding scale `Δ`.
    pub fn delta(&self) -> f64 {
        2f64.powi(self.scale_bits as i32)
    }
}

/// One row of the per-op noise schedule.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct NoiseScheduleEntry {
    /// Index of the op in the trace.
    pub index: usize,
    /// Trace-op name.
    pub op: String,
    /// CKKS chain level after the op (absent for pure-TFHE ops).
    pub level: Option<u32>,
    /// log2 of the CKKS scale after the op.
    pub scale_log2: Option<f64>,
    /// Remaining CKKS precision in bits; `Some(0.0)` when exhausted.
    pub precision_bits: Option<f64>,
    /// log2 of the absolute CKKS slot-error bound.
    pub error_log2: Option<f64>,
    /// TFHE headroom in standard deviations to the decoding margin
    /// (absent for pure-CKKS ops).
    pub margin_sigmas: Option<f64>,
}

/// The noise schedule of a whole trace: what the static pass believes
/// every ciphertext's health is after every op.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct NoiseSchedule {
    /// Per-op rows, in trace order.
    pub entries: Vec<NoiseScheduleEntry>,
    /// Worst CKKS precision seen anywhere (bits).
    pub min_precision_bits: Option<f64>,
    /// Worst TFHE margin seen anywhere (σ).
    pub min_margin_sigmas: Option<f64>,
}

impl NoiseSchedule {
    /// Whether the schedule carries any CKKS or TFHE rows at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// ------------------------------------------------------------- trace

/// Abstract CKKS ciphertext chain.
#[derive(Debug, Clone, Copy)]
struct CkksChain {
    level: u32,
    /// The current level holds unrescaled products at scale `2Δ`.
    raised: bool,
    /// Multiplies since the segment began (capped; overflow-safe).
    muls_seg: u64,
    /// Rescales since the segment began.
    rescales_seg: u64,
    budget: NoiseBudget,
    /// Exhaustion already reported for this segment.
    risk_flagged: bool,
}

impl CkksChain {
    /// log2 of the scale the chain's products currently carry.
    fn scale_log2(&self, scale_bits: u32) -> f64 {
        f64::from(scale_bits) * if self.raised { 2.0 } else { 1.0 }
    }
}

struct TraceInterp<'a> {
    opts: &'a NoiseOptions,
    ckks: Option<CkksParams>,
    tfhe: Option<TfheParams>,
    chain: Option<CkksChain>,
    lwe: Option<LweNoise>,
    /// Exhaustion was observed anywhere in the trace.
    exhausted_ever: bool,
    /// A `CkksModRaise` appears anywhere in the trace.
    has_bootstrap: bool,
    tfhe_risk_flagged: bool,
    add_mismatch_flagged: bool,
    schedule: NoiseSchedule,
}

impl<'a> TraceInterp<'a> {
    fn new(trace: &Trace, opts: &'a NoiseOptions) -> Self {
        Self {
            opts,
            ckks: trace.ckks_params.and_then(ckks_params).or(opts.ckks),
            tfhe: trace.tfhe_params.and_then(tfhe_params).or(opts.tfhe),
            chain: None,
            lwe: None,
            exhausted_ever: false,
            has_bootstrap: trace
                .ops
                .iter()
                .any(|op| matches!(op, TraceOp::CkksModRaise { .. })),
            tfhe_risk_flagged: false,
            add_mismatch_flagged: false,
            schedule: NoiseSchedule::default(),
        }
    }

    fn n(&self) -> usize {
        self.ckks.map(|p| p.n()).unwrap_or(1 << 16)
    }

    fn max_level(&self) -> u32 {
        self.ckks.map(|p| p.max_level()).unwrap_or(32)
    }

    /// Modulus headroom in bits at `level` for a scale-calibrated
    /// chain: one `LIMB_BITS` base limb plus `Δ` per level.
    fn headroom_bits(&self, level: u32) -> f64 {
        f64::from(LIMB_BITS) + f64::from(self.opts.scale_bits) * f64::from(level)
    }

    fn fresh_chain(&self, level: u32) -> CkksChain {
        CkksChain {
            level,
            raised: false,
            muls_seg: 0,
            rescales_seg: 0,
            budget: NoiseBudget::fresh(self.opts.value_bound, self.n(), self.opts.delta()),
            risk_flagged: false,
        }
    }

    /// Aligns the chain with an op's declared level: a *higher*
    /// declared level means the op consumes a ciphertext this chain
    /// never produced (a fresh segment); a *lower* one is a
    /// drop-to-level — legal, unless the level still holds raised
    /// products whose rescale never happened.
    fn sync(&mut self, level: u32, i: usize, report: &mut Report) -> &mut CkksChain {
        match self.chain {
            None => self.chain = Some(self.fresh_chain(level)),
            Some(c) if level > c.level => self.chain = Some(self.fresh_chain(level)),
            Some(ref mut c) => {
                if level < c.level && c.raised {
                    c.raised = false;
                    report.push(
                        Severity::Warning,
                        "noise/skipped-rescale",
                        Location::Op(i),
                        format!(
                            "the chain drops from level {} to {level} while level {} \
                             still holds unrescaled products at scale 2Δ: the rescale \
                             that should produce this drop is missing",
                            c.level, c.level
                        ),
                    );
                }
                c.level = level;
            }
        }
        self.chain.as_mut().unwrap()
    }

    /// Post-op exhaustion check on the CKKS chain.
    fn check_exhaustion(&mut self, i: usize, report: &mut Report) {
        let Some(c) = &mut self.chain else { return };
        if c.budget.precision_bits().is_none() && !c.risk_flagged {
            c.risk_flagged = true;
            self.exhausted_ever = true;
            report.push(
                Severity::DecryptionRisk,
                "noise/decryption-risk",
                Location::Op(i),
                format!(
                    "CKKS error bound {:.3e} has swallowed the message bound {:.3e}: \
                     decryption returns noise from here on",
                    c.budget.error_bound, c.budget.value_bound
                ),
            );
        }
    }

    /// Modulus overflow check, run when a multiply raises the level's
    /// products to `2Δ`.
    fn check_overflow(&mut self, i: usize, report: &mut Report) {
        let Some(c) = &self.chain else { return };
        let magnitude =
            2.0 * f64::from(self.opts.scale_bits) + c.budget.value_bound.max(1.0).log2();
        let headroom = self.headroom_bits(c.level);
        if magnitude > headroom - GUARD_BITS {
            report.push(
                Severity::DecryptionRisk,
                "noise/scale-overflow",
                Location::Op(i),
                format!(
                    "the product scale·|value| needs {magnitude:.1} bits but the \
                     level-{} modulus offers {headroom:.0} (guard {GUARD_BITS:.0}): the \
                     ciphertext wraps around q and decrypts garbage — this level is too \
                     low to multiply at",
                    c.level
                ),
            );
        }
    }

    /// One multiply's worth of bookkeeping shared by `CkksMulPlain`
    /// and `CkksMulCt`.
    fn note_mul(&mut self, i: usize, report: &mut Report) {
        let c = self.chain.as_mut().unwrap();
        c.raised = true;
        c.muls_seg = c.muls_seg.saturating_add(1);
        self.check_overflow(i, report);
        self.check_exhaustion(i, report);
    }

    fn record(&mut self, i: usize, op: &TraceOp) {
        let (level, scale_log2, precision_bits, error_log2) = match &self.chain {
            Some(c)
                if op.is_ckks()
                    || matches!(op, TraceOp::Extract { .. } | TraceOp::Repack { .. }) =>
            {
                (
                    Some(c.level),
                    Some(c.scale_log2(self.opts.scale_bits)),
                    Some(c.budget.precision_bits().unwrap_or(0.0)),
                    Some(c.budget.error_bound.max(f64::MIN_POSITIVE).log2()),
                )
            }
            _ => (None, None, None, None),
        };
        let margin_sigmas = match (&self.lwe, op.is_ckks()) {
            (Some(v), false) => Some(v.margin_sigmas(LweNoise::margin(TFHE_Q, self.opts.space))),
            _ => None,
        };
        if let Some(p) = precision_bits {
            let min = self.schedule.min_precision_bits.get_or_insert(p);
            *min = min.min(p);
        }
        if let Some(m) = margin_sigmas {
            if m.is_finite() {
                let min = self.schedule.min_margin_sigmas.get_or_insert(m);
                *min = min.min(m);
            }
        }
        self.schedule.entries.push(NoiseScheduleEntry {
            index: i,
            op: op.name().to_string(),
            level,
            scale_log2,
            precision_bits,
            error_log2,
            margin_sigmas,
        });
    }

    fn lwe_state(&self) -> LweNoise {
        self.lwe.unwrap_or_else(LweNoise::fresh)
    }

    fn step(&mut self, i: usize, op: &TraceOp, report: &mut Report) {
        let n = self.n();
        let delta = self.opts.delta();
        let scale_bits = f64::from(self.opts.scale_bits);
        let margin = LweNoise::margin(TFHE_Q, self.opts.space);
        match *op {
            TraceOp::CkksAdd { level } => {
                let raised = self.sync(level, i, report).raised;
                if raised && !self.add_mismatch_flagged {
                    self.add_mismatch_flagged = true;
                    report.push(
                        Severity::Info,
                        "noise/scale-mismatch",
                        Location::Op(i),
                        format!(
                            "addition joins operands at raised scale 2^{:.0}: the \
                             runtime asserts operand scales match — make sure the other \
                             side carries the same unrescaled scale",
                            2.0 * scale_bits
                        ),
                    );
                }
                let c = self.chain.as_mut().unwrap();
                let b = c.budget;
                c.budget = b.add(&b);
                self.check_exhaustion(i, report);
            }
            TraceOp::CkksMulPlain { level } => {
                self.sync(level, i, report);
                let p_bound = self.opts.value_bound.max(1.0);
                let c = self.chain.as_mut().unwrap();
                c.budget = c.budget.mul_plain(p_bound, n, delta);
                self.note_mul(i, report);
            }
            TraceOp::CkksMulCt { level } => {
                self.sync(level, i, report);
                let rhs = NoiseBudget::fresh(self.opts.value_bound, n, delta);
                let c = self.chain.as_mut().unwrap();
                c.budget = c.budget.mul_ct(&rhs, n, delta);
                self.note_mul(i, report);
            }
            TraceOp::CkksRescale { level } => {
                if level == 0 {
                    // trace/rescale-at-zero already fired; the noise
                    // transfer is undefined with no limb to drop.
                    return;
                }
                let c = self.sync(level, i, report);
                c.rescales_seg += 1;
                let redundant = c.rescales_seg > c.muls_seg;
                if redundant {
                    report.push(
                        Severity::Warning,
                        "noise/redundant-rescale",
                        Location::Op(i),
                        "this segment has now rescaled more often than it multiplied: \
                         the division by Δ hits a base-scale ciphertext and pushes the \
                         message below the error floor",
                    );
                }
                let c = self.chain.as_mut().unwrap();
                // A legitimate rescale divides a 2Δ product back to Δ
                // (cheap rounding term); a redundant one divides the
                // message itself away.
                c.budget = c.budget.rescale(n, if redundant { 1.0 } else { delta });
                c.raised = false;
                c.level = level - 1;
                self.check_exhaustion(i, report);
            }
            TraceOp::CkksRotate { level, .. } | TraceOp::CkksConjugate { level } => {
                let c = self.sync(level, i, report);
                c.budget = c.budget.rotate(n, delta);
                self.check_exhaustion(i, report);
            }
            TraceOp::CkksModRaise { from_level } => {
                // A mod-raise as the chain's first act (bootstrapping
                // benchmarks) wastes nothing: there was no budget to
                // spend yet.
                let had_chain = self.chain.is_some();
                let c = self.sync(from_level, i, report);
                if c.raised {
                    c.raised = false;
                    report.push(
                        Severity::Warning,
                        "noise/skipped-rescale",
                        Location::Op(i),
                        "bootstrapping a level that still holds unrescaled products: \
                         the 2Δ scale survives the mod-raise and EvalMod decodes the \
                         wrong interval",
                    );
                }
                let exhausted = c.budget.precision_bits().is_none();
                if exhausted {
                    report.push(
                        Severity::Error,
                        "noise/bootstrap-too-late",
                        Location::Op(i),
                        "bootstrap arrives after the budget is already exhausted: \
                         EvalMod amplifies garbage, it cannot recover it — bootstrap \
                         earlier in the chain",
                    );
                }
                let max_level = self.max_level();
                if had_chain && f64::from(from_level) >= LEVEL_WASTE_FRACTION * f64::from(max_level)
                {
                    report.push(
                        Severity::Info,
                        "noise/level-waste",
                        Location::Op(i),
                        format!(
                            "bootstrapping from level {from_level} of {max_level}: most \
                             of the modulus chain is unspent — deferring the bootstrap \
                             amortizes its cost over more levels"
                        ),
                    );
                }
                let c = self.chain.as_mut().unwrap();
                c.budget = c.budget.bootstrap(n, delta);
                c.level = max_level;
                c.raised = false;
                c.muls_seg = 0;
                c.rescales_seg = 0;
                c.risk_flagged = false;
            }
            TraceOp::TfheLinear { .. } => {
                // `count` is the batch width (independent samples),
                // not a chain depth: one gate linear part per op.
                let v = self.lwe_state().gate_linear();
                if v.exceeds_margin(margin) && !self.tfhe_risk_flagged {
                    self.tfhe_risk_flagged = true;
                    report.push(
                        Severity::DecryptionRisk,
                        "noise/pbs-starved",
                        Location::Op(i),
                        format!(
                            "TFHE linear chain reaches 6σ = {:.3e} past the decoding \
                             margin {margin:.3e} with no PBS in sight: insert a \
                             programmable bootstrap to reset the noise",
                            6.0 * v.std_dev()
                        ),
                    );
                }
                self.lwe = Some(v);
            }
            TraceOp::TfhePbs { .. } => {
                if let Some(p) = self.tfhe {
                    let at_input = self.lwe_state().mod_switch(&p, TFHE_Q);
                    if at_input.exceeds_margin(margin) && !self.tfhe_risk_flagged {
                        self.tfhe_risk_flagged = true;
                        report.push(
                            Severity::DecryptionRisk,
                            "noise/pbs-starved",
                            Location::Op(i),
                            format!(
                                "blind-rotation input noise 6σ = {:.3e} exceeds the \
                                 decoding margin {margin:.3e}: the bootstrap itself \
                                 decodes the wrong message — it arrived too late",
                                6.0 * at_input.std_dev()
                            ),
                        );
                    }
                    self.lwe = Some(LweNoise::pbs_output(&p, TFHE_Q));
                    self.tfhe_risk_flagged = false;
                }
            }
            TraceOp::TfheKeySwitch { .. } => {
                if let Some(p) = self.tfhe {
                    self.lwe = Some(self.lwe_state().key_switch(&p, TFHE_Q));
                }
            }
            TraceOp::Extract { level, .. } => {
                let needed = self.opts.space.log2() + 1.0;
                let c = self.sync(level, i, report);
                let have = c.budget.precision_bits().unwrap_or(0.0);
                if have < needed {
                    report.push(
                        Severity::Warning,
                        "noise/extract-degraded-precision",
                        Location::Op(i),
                        format!(
                            "extracting LWE samples from a ciphertext holding only \
                             {have:.1} bits of precision; the TFHE message space needs \
                             {needed:.1} — the extracted bits are already noise"
                        ),
                    );
                }
                // Extraction includes the switch to TFHE parameters.
                self.lwe = Some(match self.tfhe {
                    Some(p) => LweNoise::fresh().key_switch(&p, TFHE_Q),
                    None => LweNoise::fresh(),
                });
            }
            TraceOp::Repack { level, .. } => {
                let space = self.opts.space;
                let lwe_err = self
                    .lwe
                    .take()
                    .map(|v| 6.0 * v.std_dev() * space / TFHE_Q)
                    .unwrap_or(0.0);
                let c = self.sync(level, i, report);
                // The repacking linear transform is rotations + a key
                // switch; fold the LWE phase error into the slots.
                c.budget = c.budget.rotate(n, delta);
                c.budget.error_bound += lwe_err;
                self.tfhe_risk_flagged = false;
                self.check_exhaustion(i, report);
            }
            TraceOp::SchemeTransfer { .. } => {}
        }
        self.record(i, op);
    }

    fn finish(mut self, report: &mut Report) -> NoiseSchedule {
        if self.exhausted_ever && !self.has_bootstrap {
            report.push(
                Severity::Error,
                "noise/missing-bootstrap",
                Location::Global,
                "the CKKS budget exhausts and the trace never bootstraps: no \
                 schedule of these ops can decrypt — insert a CkksModRaise \
                 before the budget dies",
            );
        }
        if let Some(v) = self.lwe {
            let margin = LweNoise::margin(TFHE_Q, self.opts.space);
            if v.exceeds_margin(margin) && !self.tfhe_risk_flagged {
                report.push(
                    Severity::DecryptionRisk,
                    "noise/pbs-starved",
                    Location::Global,
                    format!(
                        "the trace ends with live TFHE samples at 6σ = {:.3e}, past \
                         the decoding margin {margin:.3e}: they decrypt wrong",
                        6.0 * v.std_dev()
                    ),
                );
            }
        }
        let s = &mut self.schedule;
        std::mem::take(s)
    }
}

/// Runs the noise abstract interpreter over a trace, pushing findings
/// into `report` and returning the per-op [`NoiseSchedule`].
pub fn interpret_trace(trace: &Trace, opts: &NoiseOptions, report: &mut Report) -> NoiseSchedule {
    let mut interp = TraceInterp::new(trace, opts);
    for (i, op) in trace.ops.iter().enumerate() {
        interp.step(i, op, report);
    }
    interp.finish(report)
}

/// The diagnostics-only entry point used by [`crate::verify_trace`].
pub fn check_trace_noise(trace: &Trace, opts: &NoiseOptions, report: &mut Report) {
    let _ = interpret_trace(trace, opts, report);
}

/// The schedule-only entry point used by `ufc-compiler`.
pub fn noise_schedule(trace: &Trace, opts: &NoiseOptions) -> NoiseSchedule {
    let mut sink = Report::new();
    interpret_trace(trace, opts, &mut sink)
}

// ------------------------------------------------------------ stream

/// Stream-level noise pass: works from lowering signatures (see the
/// module docs) because ciphertext identity is gone after lowering.
pub fn check_stream_noise(stream: &InstrStream, opts: &NoiseOptions, report: &mut Report) {
    let ckks = opts.ckks.or_else(|| ckks_params("C1"));
    let tfhe = opts.tfhe.or_else(|| tfhe_params("T1"));
    let max_level = ckks.map(|p| p.max_level()).unwrap_or(32);
    let margin = LweNoise::margin(TFHE_Q, opts.space);

    let mut last_intt_count: Option<u32> = None;
    let mut rescales: u32 = 0;
    let mut budget_flagged = false;

    let mut lwe: Option<LweNoise> = None;
    let mut lwe_flagged = false;
    let mut prev_phase: Option<Phase> = None;

    for instr in stream.instrs() {
        // CKKS rescale signature: Intt(2L+2) → Ntt(2L), both CkksEval.
        if instr.phase == Phase::CkksEval {
            match instr.kernel {
                Kernel::Intt => last_intt_count = Some(instr.shape.count),
                Kernel::Ntt => {
                    if last_intt_count == Some(instr.shape.count + 2) {
                        rescales += 1;
                        if rescales > max_level && !budget_flagged {
                            budget_flagged = true;
                            report.push(
                                Severity::Error,
                                "noise/stream-rescale-budget-exceeded",
                                Location::Instr(instr.id),
                                format!(
                                    "rescale #{rescales} with only {max_level} levels in \
                                     the modulus chain and no bootstrap phase in \
                                     between: the chain has no limb left to drop"
                                ),
                            );
                        }
                    }
                    last_intt_count = None;
                }
                _ => {}
            }
        } else if instr.phase == Phase::CkksBootstrap {
            // A mod-raise refreshes the chain.
            rescales = 0;
            budget_flagged = false;
        }

        match (instr.phase, instr.kernel) {
            // TFHE gate linear part: the only 32-bit Ewma outside the
            // blind-rotation loop.
            (Phase::TfheKeySwitch, Kernel::Ewma) => {
                let v = lwe.unwrap_or_else(LweNoise::fresh).gate_linear();
                if v.exceeds_margin(margin) && !lwe_flagged {
                    lwe_flagged = true;
                    report.push(
                        Severity::DecryptionRisk,
                        "noise/stream-pbs-starved",
                        Location::Instr(instr.id),
                        format!(
                            "TFHE linear chain reaches 6σ = {:.3e} past the decoding \
                             margin {margin:.3e} with no blind-rotation phase since \
                             the last reset",
                            6.0 * v.std_dev()
                        ),
                    );
                }
                lwe = Some(v);
            }
            // LWE key switch commits on its final reduction.
            (Phase::TfheKeySwitch, Kernel::Redc) => {
                if let Some(p) = tfhe {
                    lwe = Some(lwe.unwrap_or_else(LweNoise::fresh).key_switch(&p, TFHE_Q));
                }
            }
            (Phase::TfheBlindRotate, _) if prev_phase != Some(Phase::TfheBlindRotate) => {
                if let Some(p) = tfhe {
                    let at_input = lwe.unwrap_or_else(LweNoise::fresh).mod_switch(&p, TFHE_Q);
                    if at_input.exceeds_margin(margin) && !lwe_flagged {
                        report.push(
                            Severity::DecryptionRisk,
                            "noise/stream-pbs-starved",
                            Location::Instr(instr.id),
                            format!(
                                "blind rotation begins with input noise 6σ = {:.3e} \
                                 past the decoding margin {margin:.3e}: the \
                                 bootstrap decodes the wrong message",
                                6.0 * at_input.std_dev()
                            ),
                        );
                    }
                    lwe = Some(LweNoise::pbs_output(&p, TFHE_Q));
                    lwe_flagged = false;
                }
            }
            _ => {}
        }
        prev_phase = Some(instr.phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_opts() -> NoiseOptions {
        NoiseOptions::default()
    }

    fn run(trace: &Trace) -> Report {
        let mut r = Report::new();
        check_trace_noise(trace, &noisy_opts(), &mut r);
        r
    }

    #[test]
    fn well_scheduled_chain_is_clean() {
        let mut t = Trace::new("ok").with_ckks("C1");
        let mut level = 20;
        for _ in 0..8 {
            t.push(TraceOp::CkksMulCt { level });
            t.push(TraceOp::CkksRescale { level });
            level -= 1;
            t.push(TraceOp::CkksRotate { level, step: 1 });
        }
        let r = run(&t);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn multiplying_at_the_chain_floor_overflows() {
        let mut t = Trace::new("overflow").with_ckks("C1");
        t.push(TraceOp::CkksMulCt { level: 0 });
        let r = run(&t);
        assert!(r.has_code("noise/scale-overflow"), "{r}");
        assert!(r.has_errors());
    }

    #[test]
    fn dropping_levels_with_raised_products_skips_a_rescale() {
        let mut t = Trace::new("skipped").with_ckks("C1");
        t.push(TraceOp::CkksMulCt { level: 5 });
        t.push(TraceOp::CkksRotate { level: 4, step: 1 });
        let r = run(&t);
        assert!(r.has_code("noise/skipped-rescale"), "{r}");
        assert!(!r.has_errors(), "{r}");
    }

    #[test]
    fn bsgs_sums_share_one_rescale_cleanly() {
        // Depth-compressed ladders (many same-level multiplies, fewer
        // rescales) are the corpus idiom and must stay clean.
        let mut t = Trace::new("bsgs").with_ckks("C1");
        for _ in 0..14 {
            t.push(TraceOp::CkksMulCt { level: 20 });
        }
        for level in (13..=20).rev() {
            t.push(TraceOp::CkksRescale { level });
        }
        let r = run(&t);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn redundant_rescale_kills_the_budget() {
        let mut t = Trace::new("redundant").with_ckks("C1");
        t.push(TraceOp::CkksMulCt { level: 10 });
        t.push(TraceOp::CkksRescale { level: 10 });
        t.push(TraceOp::CkksRescale { level: 9 });
        let r = run(&t);
        assert!(r.has_code("noise/redundant-rescale"), "{r}");
        assert!(r.has_code("noise/decryption-risk"), "{r}");
        assert!(r.has_code("noise/missing-bootstrap"), "{r}");
    }

    #[test]
    fn late_bootstrap_is_flagged_and_missing_bootstrap_is_not() {
        let mut t = Trace::new("late").with_ckks("C1");
        t.push(TraceOp::CkksMulCt { level: 10 });
        t.push(TraceOp::CkksRescale { level: 10 });
        t.push(TraceOp::CkksRescale { level: 9 });
        t.push(TraceOp::CkksModRaise { from_level: 8 });
        let r = run(&t);
        assert!(r.has_code("noise/bootstrap-too-late"), "{r}");
        assert!(!r.has_code("noise/missing-bootstrap"), "{r}");
    }

    #[test]
    fn early_bootstrap_wastes_levels() {
        let mut t = Trace::new("early").with_ckks("C1");
        t.push(TraceOp::CkksMulCt { level: 30 });
        t.push(TraceOp::CkksRescale { level: 30 });
        t.push(TraceOp::CkksModRaise { from_level: 29 });
        let r = run(&t);
        assert!(r.has_code("noise/level-waste"), "{r}");
        assert!(!r.has_errors(), "{r}");
    }

    #[test]
    fn tfhe_gate_chain_without_pbs_starves() {
        let mut t = Trace::new("starved").with_tfhe("T1");
        t.push(TraceOp::TfhePbs { batch: 1 });
        t.push(TraceOp::TfheKeySwitch { batch: 1 });
        for _ in 0..8 {
            t.push(TraceOp::TfheLinear { count: 2 });
        }
        let r = run(&t);
        assert!(r.has_code("noise/pbs-starved"), "{r}");
        assert_eq!(r.risk_count(), 1, "{r}");
    }

    #[test]
    fn pbs_after_every_gate_stays_clean() {
        let mut t = Trace::new("gates").with_tfhe("T1");
        for _ in 0..50 {
            t.push(TraceOp::TfheLinear { count: 2 });
            t.push(TraceOp::TfhePbs { batch: 1 });
            t.push(TraceOp::TfheKeySwitch { batch: 1 });
        }
        let r = run(&t);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn hybrid_boundary_folds_lwe_noise_back() {
        let mut t = Trace::new("hybrid").with_ckks("C1").with_tfhe("T1");
        t.push(TraceOp::CkksMulCt { level: 20 });
        t.push(TraceOp::CkksRescale { level: 20 });
        t.push(TraceOp::Extract {
            level: 19,
            count: 8,
        });
        t.push(TraceOp::TfheLinear { count: 8 });
        t.push(TraceOp::TfhePbs { batch: 8 });
        t.push(TraceOp::TfheKeySwitch { batch: 8 });
        t.push(TraceOp::Repack {
            count: 8,
            level: 19,
        });
        t.push(TraceOp::CkksAdd { level: 19 });
        let r = run(&t);
        assert!(r.is_clean(), "{r}");
        let sched = noise_schedule(&t, &noisy_opts());
        assert_eq!(sched.entries.len(), t.ops.len());
        // The repack row must reflect the folded-in LWE error.
        let repack = &sched.entries[6];
        assert_eq!(repack.op, "Repack");
        assert!(repack.precision_bits.unwrap() < 12.0);
        assert!(sched.min_precision_bits.unwrap() > 2.0);
        assert!(sched.min_margin_sigmas.unwrap() > 6.0);
    }

    #[test]
    fn extract_from_exhausted_ciphertext_warns() {
        let mut t = Trace::new("bad-extract").with_ckks("C1").with_tfhe("T1");
        t.push(TraceOp::CkksMulCt { level: 5 });
        t.push(TraceOp::CkksRescale { level: 5 });
        t.push(TraceOp::CkksRescale { level: 4 }); // kills the budget
        t.push(TraceOp::Extract { level: 3, count: 4 });
        let r = run(&t);
        assert!(r.has_code("noise/extract-degraded-precision"), "{r}");
    }

    #[test]
    fn schedule_serializes() {
        let mut t = Trace::new("s").with_ckks("C1");
        t.push(TraceOp::CkksMulCt { level: 4 });
        let sched = noise_schedule(&t, &noisy_opts());
        let v = serde::Serialize::to_value(&sched);
        let text = v.to_json();
        assert!(text.contains("\"entries\""), "{text}");
        assert!(text.contains("\"CkksMulCt\""), "{text}");
    }

    #[test]
    fn paper_workloads_are_noise_clean() {
        // The repo's own generated workloads must never trip the noise
        // pass: they are the calibration corpus.
        let mut traces = ufc_workloads::all_ckks_workloads("C1");
        traces.extend(ufc_workloads::all_tfhe_workloads("T1"));
        traces.push(ufc_workloads::knn::generate(
            "C1",
            "T1",
            ufc_workloads::knn::KnnConfig::default(),
        ));
        for trace in traces {
            let r = run(&trace);
            assert!(r.is_clean(), "{}: {r}", trace.name);
        }
    }
}
