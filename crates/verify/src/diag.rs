//! Diagnostics: severity-ranked findings with stable codes, a
//! sortable report, and JSON emission for tooling.

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, never blocks.
    Info,
    /// Suspicious: very likely a mistake, does not invalidate results.
    Warning,
    /// Invalid: the stream/trace violates a hard invariant; any
    /// simulation result derived from it is untrustworthy.
    Error,
    /// The noise model predicts the program decrypts garbage: the
    /// worst a static finding can get. Ranks above [`Severity::Error`]
    /// and is fatal everywhere errors are (`ufc-lint` exits non-zero,
    /// verified runs abort).
    DecryptionRisk,
}

impl Severity {
    /// Lower-case display name (`decryption-risk`, `error`,
    /// `warning`, `info`).
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
            Severity::DecryptionRisk => "decryption-risk",
        }
    }

    /// Whether findings at this severity invalidate the artifact
    /// (error or worse).
    pub fn is_fatal(&self) -> bool {
        *self >= Severity::Error
    }
}

/// Where in the input a finding points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// The whole trace/stream.
    Global,
    /// Trace operation at this index.
    Op(usize),
    /// Macro-instruction at this stream position.
    Instr(usize),
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Location::Global => write!(f, "global"),
            Location::Op(i) => write!(f, "op {i}"),
            Location::Instr(i) => write!(f, "instr {i}"),
        }
    }
}

/// One finding of one check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity rank.
    pub severity: Severity,
    /// Stable machine-readable code, e.g. `trace/level-exceeds-max`.
    pub code: &'static str,
    /// What the finding points at.
    pub location: Location,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity.name(),
            self.code,
            self.location,
            self.message
        )
    }
}

/// The outcome of running a set of checks: diagnostics ranked
/// most-severe first (stable within a severity by input order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a finding.
    pub fn push(
        &mut self,
        severity: Severity,
        code: &'static str,
        location: Location,
        message: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            severity,
            code,
            location,
            message: message.into(),
        });
    }

    /// Absorbs all findings of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// The findings, most severe first.
    pub fn diagnostics(&self) -> Vec<&Diagnostic> {
        let mut v: Vec<&Diagnostic> = self.diagnostics.iter().collect();
        v.sort_by_key(|d| std::cmp::Reverse(d.severity));
        v
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of decryption-risk findings.
    pub fn risk_count(&self) -> usize {
        self.count(Severity::DecryptionRisk)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any fatal finding (error severity or worse) exists.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity.is_fatal())
    }

    /// Whether the report is completely clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding carries this code.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Serializes the ranked findings as a JSON array (objects with
    /// `severity`, `code`, `location`, `index`, `message`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diagnostics().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (loc_kind, loc_index) = match d.location {
                Location::Global => ("global", None),
                Location::Op(i) => ("op", Some(i)),
                Location::Instr(i) => ("instr", Some(i)),
            };
            out.push_str("{\"severity\":\"");
            out.push_str(d.severity.name());
            out.push_str("\",\"code\":\"");
            out.push_str(d.code);
            out.push_str("\",\"location\":\"");
            out.push_str(loc_kind);
            out.push('"');
            if let Some(idx) = loc_index {
                out.push_str(&format!(",\"index\":{idx}"));
            }
            out.push_str(",\"message\":\"");
            out.push_str(&json_escape(&d.message));
            out.push_str("\"}");
        }
        out.push(']');
        out
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return writeln!(f, "clean: no findings");
        }
        for d in self.diagnostics() {
            writeln!(f, "{d}")?;
        }
        if self.risk_count() > 0 {
            write!(f, "{} decryption risk(s), ", self.risk_count())?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} info",
            self.error_count(),
            self.warning_count(),
            self.count(Severity::Info)
        )
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_risks_highest() {
        assert!(Severity::DecryptionRisk > Severity::Error);
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert!(Severity::DecryptionRisk.is_fatal());
        assert!(Severity::Error.is_fatal());
        assert!(!Severity::Warning.is_fatal());
    }

    #[test]
    fn decryption_risk_counts_as_fatal() {
        let mut r = Report::new();
        r.push(Severity::DecryptionRisk, "noise/x", Location::Op(0), "bad");
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 0);
        assert_eq!(r.risk_count(), 1);
        assert_eq!(r.diagnostics()[0].severity.name(), "decryption-risk");
        let s = r.to_string();
        assert!(s.contains("1 decryption risk(s)"), "{s}");
    }

    #[test]
    fn report_ranks_most_severe_first() {
        let mut r = Report::new();
        r.push(Severity::Info, "a/i", Location::Global, "i");
        r.push(Severity::Error, "a/e", Location::Op(3), "e");
        r.push(Severity::Warning, "a/w", Location::Instr(1), "w");
        let d = r.diagnostics();
        assert_eq!(d[0].code, "a/e");
        assert_eq!(d[1].code, "a/w");
        assert_eq!(d[2].code, "a/i");
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert!(r.has_code("a/w"));
        assert!(!r.has_code("a/x"));
    }

    #[test]
    fn json_output_is_escaped_and_ranked() {
        let mut r = Report::new();
        r.push(
            Severity::Info,
            "x/i",
            Location::Global,
            "quote \" and \\ backslash",
        );
        r.push(Severity::Error, "x/e", Location::Instr(7), "bad");
        let j = r.to_json();
        assert!(j.starts_with("[{\"severity\":\"error\""));
        assert!(j.contains("\\\""));
        assert!(j.contains("\"index\":7"));
    }

    #[test]
    fn display_formats_counts() {
        let mut r = Report::new();
        r.push(Severity::Error, "x/e", Location::Op(0), "bad");
        let s = r.to_string();
        assert!(s.contains("error[x/e] op 0: bad"));
        assert!(s.contains("1 error(s)"));
        assert!(Report::new().to_string().contains("clean"));
    }
}
