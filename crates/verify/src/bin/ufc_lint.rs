//! `ufc-lint` — static checker for serialized UFC traces and
//! instruction streams.
//!
//! ```text
//! ufc-lint [OPTIONS] FILE...
//!
//!   --json                 emit diagnostics as a JSON object per file
//!   --target any|ufc|composed
//!                          enable target-specific checks (default: any)
//!   --scratchpad-mib N     scratchpad capacity for the liveness sweep
//!                          (default: 256, the UfcConfig default)
//!   --noise                run the noise/scale abstract interpreter
//!   --params IDS           parameter sets for the noise pass, e.g.
//!                          "C1,T2" (implies --noise)
//!   --deny-warnings        treat warnings as fatal
//!   -h, --help             this text
//! ```
//!
//! Exit codes: 0 = clean (or info only), 1 = findings at the fatal
//! threshold (errors or decryption risks), 2 = usage or I/O or parse
//! failure.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use ufc_verify::{verify_text, NoiseOptions, Target, VerifyOptions};

const USAGE: &str = "\
usage: ufc-lint [OPTIONS] FILE...

Statically checks serialized UFC traces (*.trace) and instruction
streams (*.stream) without executing them.

options:
  --json                emit diagnostics as JSON (one object per file)
  --target TARGET       any | ufc | composed   (default: any)
  --scratchpad-mib N    scratchpad capacity in MiB (default: 256)
  --noise               run the noise/scale abstract interpreter
  --params IDS          comma-separated parameter sets for the noise
                        pass (C1..C3, T1..T4), e.g. \"C1,T2\"; used
                        when the artifact does not declare its own
                        (implies --noise)
  --deny-warnings       non-zero exit on warnings, not just errors
  -h, --help            show this help
";

struct Args {
    files: Vec<String>,
    json: bool,
    target: Target,
    scratchpad_mib: Option<u64>,
    noise: Option<NoiseOptions>,
    deny_warnings: bool,
}

/// Parses a `--params` value ("C1,T2") into noise-pass overrides.
fn parse_params(v: &str, base: NoiseOptions) -> Result<NoiseOptions, ArgError> {
    let mut opts = base;
    for id in v.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        if let Some(p) = ufc_isa::params::ckks_params(id) {
            opts.ckks = Some(p);
        } else if let Some(p) = ufc_isa::params::tfhe_params(id) {
            opts.tfhe = Some(p);
        } else {
            return Err(ArgError::Bad(format!(
                "unknown parameter set `{id}` (C1..C3, T1..T4)"
            )));
        }
    }
    Ok(opts)
}

enum ArgError {
    Help,
    Bad(String),
}

fn parse_args(argv: &[String]) -> Result<Args, ArgError> {
    let mut args = Args {
        files: Vec::new(),
        json: false,
        target: Target::Any,
        scratchpad_mib: None,
        noise: None,
        deny_warnings: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => return Err(ArgError::Help),
            "--json" => args.json = true,
            "--deny-warnings" => args.deny_warnings = true,
            "--noise" => {
                args.noise.get_or_insert_with(NoiseOptions::default);
            }
            "--params" => {
                let v = it
                    .next()
                    .ok_or_else(|| ArgError::Bad("--params needs a value".into()))?;
                let base = args.noise.unwrap_or_default();
                args.noise = Some(parse_params(v, base)?);
            }
            "--target" => {
                let v = it
                    .next()
                    .ok_or_else(|| ArgError::Bad("--target needs a value".into()))?;
                args.target = Target::parse(v).ok_or_else(|| {
                    ArgError::Bad(format!("unknown target `{v}` (any|ufc|composed)"))
                })?;
            }
            "--scratchpad-mib" => {
                let v = it
                    .next()
                    .ok_or_else(|| ArgError::Bad("--scratchpad-mib needs a value".into()))?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| ArgError::Bad(format!("invalid MiB count `{v}`")))?;
                args.scratchpad_mib = Some(n);
            }
            flag if flag.starts_with('-') => {
                return Err(ArgError::Bad(format!("unknown option `{flag}`")));
            }
            file => args.files.push(file.to_string()),
        }
    }
    if args.files.is_empty() {
        return Err(ArgError::Bad("no input files".into()));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(ArgError::Help) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(ArgError::Bad(msg)) => {
            eprintln!("ufc-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let opts = VerifyOptions {
        target: args.target,
        scratchpad_bytes: args.scratchpad_mib.map(|m| m << 20),
        noise: args.noise,
    };

    let mut fatal = false;
    let mut broken = false;
    let mut json_files = Vec::new();
    for file in &args.files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ufc-lint: {file}: {e}");
                broken = true;
                continue;
            }
        };
        match verify_text(&text, &opts) {
            Ok((_, report)) => {
                if report.has_errors() || (args.deny_warnings && report.warning_count() > 0) {
                    fatal = true;
                }
                if args.json {
                    json_files.push(format!(
                        "{{\"file\":\"{}\",\"risks\":{},\"errors\":{},\"warnings\":{},\"diagnostics\":{}}}",
                        ufc_verify::diag::json_escape(file),
                        report.risk_count(),
                        report.error_count(),
                        report.warning_count(),
                        report.to_json()
                    ));
                } else if report.is_clean() {
                    println!("{file}: clean");
                } else {
                    for d in report.diagnostics() {
                        println!("{file}: {d}");
                    }
                }
            }
            Err(e) => {
                eprintln!("ufc-lint: {file}: {e}");
                broken = true;
            }
        }
    }

    if args.json {
        println!("[{}]", json_files.join(","));
    }

    if broken {
        ExitCode::from(2)
    } else if fatal {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn parses_flags_and_files() {
        let a = parse_args(&argv(&[
            "--json",
            "--target",
            "ufc",
            "--scratchpad-mib",
            "64",
            "--deny-warnings",
            "x.trace",
            "y.stream",
        ]))
        .unwrap_or_else(|_| panic!("should parse"));
        assert!(a.json);
        assert!(a.deny_warnings);
        assert_eq!(a.target, Target::Ufc);
        assert_eq!(a.scratchpad_mib, Some(64));
        assert_eq!(a.files, vec!["x.trace", "y.stream"]);
    }

    #[test]
    fn parses_noise_flags() {
        let a = parse_args(&argv(&["--noise", "x.trace"])).unwrap_or_else(|_| panic!("parse"));
        assert_eq!(a.noise, Some(NoiseOptions::default()));

        let a = parse_args(&argv(&["--params", "C2,T3", "x.trace"]))
            .unwrap_or_else(|_| panic!("parse"));
        let n = a.noise.expect("--params implies --noise");
        assert_eq!(n.ckks.unwrap().id, "C2");
        assert_eq!(n.tfhe.unwrap().id, "T3");

        assert!(matches!(
            parse_args(&argv(&["--params", "C9", "x.trace"])),
            Err(ArgError::Bad(_))
        ));
        assert!(matches!(
            parse_args(&argv(&["--params"])),
            Err(ArgError::Bad(_))
        ));
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(matches!(parse_args(&argv(&[])), Err(ArgError::Bad(_))));
        assert!(matches!(
            parse_args(&argv(&["--target", "weird", "f"])),
            Err(ArgError::Bad(_))
        ));
        assert!(matches!(
            parse_args(&argv(&["--frobnicate", "f"])),
            Err(ArgError::Bad(_))
        ));
        assert!(matches!(
            parse_args(&argv(&["--help"])),
            Err(ArgError::Help)
        ));
    }
}
