//! Fixture-driven acceptance tests for the verifier.
//!
//! Every check ships with a seeded-violation fixture under
//! `tests/fixtures/` plus a clean counterpart; this test proves each
//! fixture triggers exactly its intended code at the intended
//! severity, that the clean fixtures stay clean, and that the
//! `ufc-lint` binary agrees end-to-end.

use std::path::PathBuf;
use ufc_verify::{verify_text, Severity, Target, VerifyOptions};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `(fixture file, expected code, expected top severity, target)`.
const SEEDED: &[(&str, &str, Severity, Target)] = &[
    // ------------------------------------------------------- traces
    (
        "params_unknown.trace",
        "trace/params-unknown",
        Severity::Error,
        Target::Any,
    ),
    (
        "params_missing.trace",
        "trace/params-missing",
        Severity::Error,
        Target::Any,
    ),
    (
        "level_exceeds_max.trace",
        "trace/level-exceeds-max",
        Severity::Error,
        Target::Any,
    ),
    (
        "rescale_at_zero.trace",
        "trace/rescale-at-zero",
        Severity::Error,
        Target::Any,
    ),
    (
        "batch_zero.trace",
        "trace/batch-zero",
        Severity::Warning,
        Target::Any,
    ),
    (
        "transfer_zero_bytes.trace",
        "trace/transfer-zero-bytes",
        Severity::Warning,
        Target::Any,
    ),
    (
        "repack_without_extract.trace",
        "trace/repack-without-extract",
        Severity::Error,
        Target::Any,
    ),
    (
        "repack_exceeds_extracted.trace",
        "trace/repack-count-exceeds-extracted",
        Severity::Error,
        Target::Any,
    ),
    (
        "tfhe_before_extract.trace",
        "trace/tfhe-before-extract",
        Severity::Warning,
        Target::Any,
    ),
    (
        "extract_never_repacked.trace",
        "trace/extract-never-repacked",
        Severity::Info,
        Target::Any,
    ),
    (
        "clean_composed.trace",
        "trace/transfer-on-unified",
        Severity::Error,
        Target::Ufc,
    ),
    // ------------------------------------------------------ streams
    (
        "id_mismatch.stream",
        "stream/id-mismatch",
        Severity::Error,
        Target::Any,
    ),
    (
        "dep_out_of_range.stream",
        "stream/dep-out-of-range",
        Severity::Error,
        Target::Any,
    ),
    (
        "dep_forward.stream",
        "stream/dep-forward",
        Severity::Error,
        Target::Any,
    ),
    (
        "dep_duplicate.stream",
        "stream/dep-duplicate",
        Severity::Warning,
        Target::Any,
    ),
    (
        "shape_empty.stream",
        "stream/shape-empty",
        Severity::Error,
        Target::Any,
    ),
    (
        "word_bits_invalid.stream",
        "stream/word-bits-invalid",
        Severity::Error,
        Target::Any,
    ),
    (
        "phase_word_mismatch.stream",
        "stream/phase-word-mismatch",
        Severity::Warning,
        Target::Any,
    ),
    (
        "pack_zero.stream",
        "stream/pack-zero",
        Severity::Error,
        Target::Any,
    ),
    (
        "pack_exceeds_count.stream",
        "stream/pack-exceeds-count",
        Severity::Warning,
        Target::Any,
    ),
    (
        "transfer_on_unified.stream",
        "stream/transfer-on-unified",
        Severity::Error,
        Target::Ufc,
    ),
    (
        "transfer_no_bytes.stream",
        "stream/transfer-no-bytes",
        Severity::Warning,
        Target::Any,
    ),
    (
        "load_store_no_bytes.stream",
        "stream/load-store-no-bytes",
        Severity::Warning,
        Target::Any,
    ),
    (
        "unsynchronized_crossing.stream",
        "stream/unsynchronized-scheme-crossing",
        Severity::Warning,
        Target::Any,
    ),
    (
        "scratchpad_overflow.stream",
        "stream/scratchpad-overflow",
        Severity::Error,
        Target::Any,
    ),
];

/// Seeded noise-violation fixtures, `(file, code, top severity)`.
/// These require the noise pass (`--noise`), so they get their own
/// table with noise-enabled options rather than riding in `SEEDED`.
const SEEDED_NOISE: &[(&str, &str, Severity)] = &[
    (
        "noise_scale_overflow.trace",
        "noise/scale-overflow",
        Severity::DecryptionRisk,
    ),
    (
        "noise_skipped_rescale.trace",
        "noise/skipped-rescale",
        Severity::Warning,
    ),
    (
        "noise_redundant_rescale.trace",
        "noise/redundant-rescale",
        Severity::DecryptionRisk,
    ),
    (
        "noise_bootstrap_too_late.trace",
        "noise/bootstrap-too-late",
        Severity::DecryptionRisk,
    ),
    (
        "noise_missing_bootstrap.trace",
        "noise/missing-bootstrap",
        Severity::DecryptionRisk,
    ),
    (
        "noise_pbs_starved.trace",
        "noise/pbs-starved",
        Severity::DecryptionRisk,
    ),
    (
        "noise_pbs_starved.stream",
        "noise/stream-pbs-starved",
        Severity::DecryptionRisk,
    ),
    (
        "noise_rescale_budget.stream",
        "noise/stream-rescale-budget-exceeded",
        Severity::Error,
    ),
];

fn noise_options() -> VerifyOptions {
    VerifyOptions {
        noise: Some(ufc_verify::NoiseOptions::default()),
        ..VerifyOptions::default()
    }
}

#[test]
fn every_seeded_fixture_triggers_its_code() {
    for &(file, code, severity, target) in SEEDED {
        let (_, report) = verify_text(&fixture(file), &VerifyOptions::for_target(target))
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        assert!(
            report.has_code(code),
            "{file}: expected {code}, got:\n{report}"
        );
        let top = report
            .diagnostics()
            .first()
            .unwrap_or_else(|| panic!("{file}: empty report"))
            .severity;
        assert_eq!(top, severity, "{file}: top severity mismatch:\n{report}");
    }
}

#[test]
fn every_seeded_noise_fixture_triggers_its_code() {
    for &(file, code, severity) in SEEDED_NOISE {
        let (_, report) =
            verify_text(&fixture(file), &noise_options()).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert!(
            report.has_code(code),
            "{file}: expected {code}, got:\n{report}"
        );
        let top = report
            .diagnostics()
            .first()
            .unwrap_or_else(|| panic!("{file}: empty report"))
            .severity;
        assert_eq!(top, severity, "{file}: top severity mismatch:\n{report}");
    }
}

#[test]
fn noise_fixtures_are_silent_without_the_noise_pass() {
    // The noise pass is opt-in: with `noise: None` the seeded noise
    // fixtures must not emit any `noise/*` diagnostic (structural
    // checks may still warn, e.g. a trace that never repacks).
    for &(file, _, _) in SEEDED_NOISE {
        let (_, report) = verify_text(&fixture(file), &VerifyOptions::default()).unwrap();
        for d in report.diagnostics() {
            assert!(
                !d.code.starts_with("noise/"),
                "{file}: {} fired without the noise pass",
                d.code
            );
        }
    }
}

#[test]
fn clean_fixtures_stay_clean_under_the_noise_pass() {
    for file in [
        "clean.trace",
        "clean.stream",
        "clean_composed.trace",
        "clean_noise_pipeline.trace",
    ] {
        let (_, report) = verify_text(&fixture(file), &noise_options()).unwrap();
        assert!(
            report.is_clean(),
            "{file} should be clean under --noise:\n{report}"
        );
    }
}

#[test]
fn seeded_fixture_codes_are_exhaustive_and_unique() {
    // One fixture per check code: a new check without a fixture (or a
    // renamed code) must show up here.
    let mut codes: Vec<&str> = SEEDED.iter().map(|&(_, c, _, _)| c).collect();
    codes.sort_unstable();
    let n = codes.len();
    codes.dedup();
    assert_eq!(n, codes.len(), "duplicate code in the fixture table");
    assert_eq!(n, 25, "fixture table out of sync with the check inventory");

    let mut noise_codes: Vec<&str> = SEEDED_NOISE.iter().map(|&(_, c, _)| c).collect();
    noise_codes.sort_unstable();
    let n = noise_codes.len();
    noise_codes.dedup();
    assert_eq!(n, noise_codes.len(), "duplicate code in the noise table");
    assert_eq!(
        n, 8,
        "noise table out of sync with the noise-check inventory"
    );
}

#[test]
fn clean_fixtures_are_clean_under_their_targets() {
    for (file, targets) in [
        (
            "clean.trace",
            &[Target::Any, Target::Ufc, Target::Composed][..],
        ),
        (
            "clean.stream",
            &[Target::Any, Target::Ufc, Target::Composed][..],
        ),
        ("clean_composed.trace", &[Target::Any, Target::Composed][..]),
        (
            "transfer_on_unified.stream",
            &[Target::Any, Target::Composed][..],
        ),
    ] {
        let text = fixture(file);
        for &target in targets {
            let (_, report) = verify_text(&text, &VerifyOptions::for_target(target)).unwrap();
            assert!(
                report.is_clean(),
                "{file} under {target:?} should be clean:\n{report}"
            );
        }
    }
}

#[test]
fn seeded_violations_stay_localized() {
    // A seeded fixture must not drown its signal: no *error* other
    // than the intended code (extra warnings/infos are tolerated, an
    // unrelated error means the fixture tests two things at once).
    for &(file, code, severity, target) in SEEDED {
        if severity != Severity::Error {
            continue;
        }
        let (_, report) = verify_text(&fixture(file), &VerifyOptions::for_target(target)).unwrap();
        for d in report.diagnostics() {
            if d.severity == Severity::Error {
                assert_eq!(
                    d.code, code,
                    "{file}: unintended error {} alongside {code}",
                    d.code
                );
            }
        }
    }
}

// ------------------------------------------------- ufc-lint end-to-end

fn lint(args: &[&str]) -> (i32, String) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ufc-lint"))
        .current_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures"))
        .args(args)
        .output()
        .expect("spawn ufc-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn lint_cli_passes_clean_fixtures() {
    let (code, out) = lint(&["clean.trace", "clean.stream"]);
    assert_eq!(code, 0, "stdout:\n{out}");
    assert!(out.contains("clean"), "stdout:\n{out}");
}

#[test]
fn lint_cli_fails_on_seeded_errors() {
    let (code, out) = lint(&["rescale_at_zero.trace"]);
    assert_eq!(code, 1, "stdout:\n{out}");
    assert!(out.contains("trace/rescale-at-zero"), "stdout:\n{out}");
}

#[test]
fn lint_cli_deny_warnings_promotes_fixtures() {
    let (code, _) = lint(&["dep_duplicate.stream"]);
    assert_eq!(code, 0, "warnings alone exit 0");
    let (code, out) = lint(&["--deny-warnings", "dep_duplicate.stream"]);
    assert_eq!(code, 1, "stdout:\n{out}");
}

#[test]
fn lint_cli_target_gates_transfer_fixtures() {
    let (code, _) = lint(&["transfer_on_unified.stream"]);
    assert_eq!(code, 0);
    let (code, out) = lint(&["--target", "ufc", "transfer_on_unified.stream"]);
    assert_eq!(code, 1, "stdout:\n{out}");
    assert!(out.contains("stream/transfer-on-unified"), "stdout:\n{out}");
}

#[test]
fn lint_cli_noise_flag_fails_on_decryption_risk() {
    // Without --noise the fixture is structurally fine...
    let (code, out) = lint(&["noise_redundant_rescale.trace"]);
    assert_eq!(code, 0, "stdout:\n{out}");
    // ...with it, the decryption risk makes the exit code non-zero.
    let (code, out) = lint(&["--noise", "noise_redundant_rescale.trace"]);
    assert_eq!(code, 1, "stdout:\n{out}");
    assert!(out.contains("noise/redundant-rescale"), "stdout:\n{out}");
    assert!(out.contains("noise/decryption-risk"), "stdout:\n{out}");
}

#[test]
fn lint_cli_params_flag_implies_noise() {
    let (code, out) = lint(&["--params", "C1,T1", "noise_pbs_starved.trace"]);
    assert_eq!(code, 1, "stdout:\n{out}");
    assert!(out.contains("noise/pbs-starved"), "stdout:\n{out}");
}

#[test]
fn lint_cli_json_is_machine_readable() {
    let (code, out) = lint(&["--json", "params_unknown.trace"]);
    assert_eq!(code, 1, "stdout:\n{out}");
    assert!(out.trim_start().starts_with('['), "stdout:\n{out}");
    assert!(
        out.contains("\"code\":\"trace/params-unknown\""),
        "stdout:\n{out}"
    );
}
