//! Empirical soundness of the static noise model.
//!
//! The noise pass is only worth trusting if its transfer functions
//! dominate reality. This suite runs real scheme pipelines — CKKS
//! encrypt → square → rescale chains at several depths plus a rotate,
//! and TFHE gate/PBS chains — and asserts at EVERY step that the
//! static bound is an upper bound on the measured error. The slack
//! (log2 of bound over measured) is pinned against a golden file so
//! the model cannot silently drift loose (useless) or tight (unsound
//! soon) either.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use ufc_ckks::noise::{measured_error, NoiseBudget};
use ufc_ckks::{CkksContext, Evaluator, KeySet, SecretKey};
use ufc_isa::noise::LweNoise;
use ufc_isa::params::TfheParams;
use ufc_tfhe::gates::{apply_gate, decrypt_bool, encrypt_bool, Gate};
use ufc_tfhe::{LweCiphertext, TfheContext, TfheKeys};

const N: usize = 64;
const SCALE_BITS: u32 = 34;
const ROT_STEP: isize = 3;
/// Allowed drift of the pinned slack, in bits. Wide enough for benign
/// encoder or sampler tweaks, narrow enough that a change to a
/// transfer function (or a lost noise term) trips it.
const SLACK_TOLERANCE_BITS: f64 = 2.0;

/// One squaring chain: encrypt, square+rescale `depth` times, rotate.
/// Asserts `error_bound >= measured` after every operation and
/// returns the final-step slack in bits.
fn ckks_pipeline_slack(depth: usize) -> f64 {
    let ctx = CkksContext::new(N, depth + 1, 2, 2, 36, SCALE_BITS);
    let mut rng = StdRng::seed_from_u64(0x5eed ^ depth as u64);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let mut keys = KeySet::generate(&ctx, &sk, &mut rng);
    keys.gen_rotation_key(&ctx, &sk, ROT_STEP, &mut rng);
    let ev = Evaluator::new(ctx);
    let slots = ev.context().slots();

    let xs: Vec<f64> = (0..slots).map(|i| 0.9 * (i as f64 * 0.37).sin()).collect();
    let mut ct = ev.encrypt_real(&xs, &keys, &mut rng);
    let mut reference = xs;
    // Each rescale divides by a 36-bit limb while Δ is 2^34, so the
    // true scale decays level by level; the transfer functions are
    // only sound when fed the scale the ciphertext actually carries.
    let mut budget = NoiseBudget::fresh(0.9, N, ct.scale);

    let check = |stage: &str, budget: &NoiseBudget, ct: &ufc_ckks::Ciphertext, r: &[f64]| {
        let measured = measured_error(&ev, ct, &sk, r);
        assert!(
            measured <= budget.error_bound,
            "depth {depth}, {stage}: measured error {measured:.3e} exceeds \
             the static bound {:.3e} — the noise model is UNSOUND here",
            budget.error_bound
        );
        measured
    };
    check("fresh", &budget, &ct, &reference);

    for step in 0..depth {
        ct = ev.rescale(&ev.mul(&ct, &ct, &keys));
        reference.iter_mut().for_each(|v| *v *= *v);
        budget = budget.mul_ct(&budget, N, ct.scale).rescale(N, ct.scale);
        check(&format!("square+rescale {step}"), &budget, &ct, &reference);
    }

    ct = ev.rotate(&ct, ROT_STEP, &keys);
    let rotated: Vec<f64> = (0..slots)
        .map(|i| reference[(i + ROT_STEP as usize) % slots])
        .collect();
    budget = budget.rotate(N, ct.scale);
    let measured = check("rotate", &budget, &ct, &rotated);

    (budget.error_bound / measured.max(f64::MIN_POSITIVE)).log2()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/soundness_slack.golden")
}

#[test]
fn static_ckks_bound_dominates_measured_error_at_every_depth() {
    let golden = std::fs::read_to_string(golden_path())
        .expect("tests/fixtures/soundness_slack.golden is committed");
    for line in golden.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let depth: usize = parts
            .next()
            .and_then(|s| s.strip_prefix("depth="))
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad golden line: {line}"));
        let pinned: f64 = parts
            .next()
            .and_then(|s| s.strip_prefix("slack_bits="))
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad golden line: {line}"));
        let slack = ckks_pipeline_slack(depth);
        assert!(
            (slack - pinned).abs() <= SLACK_TOLERANCE_BITS,
            "depth {depth}: slack {slack:.2} bits drifted from the pinned \
             {pinned:.2} (tolerance {SLACK_TOLERANCE_BITS}); if the model \
             changed deliberately, re-pin tests/fixtures/soundness_slack.golden"
        );
    }
}

// ------------------------------------------------------------- TFHE

/// Small-but-real bootstrappable parameters (the same shape the tfhe
/// crate's own gate tests use), mirrored as a params literal so the
/// static model sees exactly what the runtime context instantiates.
const SOUNDNESS_TFHE: TfheParams = TfheParams {
    id: "soundness",
    lwe_dim: 64,
    log_n: 8,
    glwe_levels: 3,
    glwe_log_base: 7,
    ks_levels: 4,
    ks_log_base: 6,
};

fn tfhe_setup(seed: u64) -> (TfheContext, TfheKeys, StdRng) {
    let p = &SOUNDNESS_TFHE;
    let ctx = TfheContext::new(
        p.lwe_dim as usize,
        p.n(),
        p.glwe_log_base,
        p.glwe_levels as usize,
        p.ks_log_base,
        p.ks_levels as usize,
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let keys = TfheKeys::generate(&ctx, &mut rng);
    (ctx, keys, rng)
}

/// Signed phase error of `ct` against the noiseless version of the
/// same linear combination (trivial ciphertexts carry the exact
/// encodings, so their phase IS the intended message point).
fn phase_error(ct: &LweCiphertext, exact: &LweCiphertext, key: &[u64]) -> f64 {
    let q = ct.q;
    let diff = (ct.phase(key) + q - exact.phase(key)) % q;
    let signed = if diff > q / 2 {
        diff as f64 - q as f64
    } else {
        diff as f64
    };
    signed.abs()
}

#[test]
fn six_sigma_envelope_dominates_measured_tfhe_phase_error() {
    let (ctx, keys, mut rng) = tfhe_setup(0xdecafbad);
    let p = &SOUNDNESS_TFHE;
    let q = ctx.q() as f64;
    // The model works over the nominal 2^31 torus; rescale its σ to
    // the context's actual (31-bit prime) modulus. The ratio is ~1,
    // but the comparison should not depend on that accident.
    let torus_ratio = q / ufc_isa::noise::TFHE_Q;

    // Fresh encryptions: error within 6σ.
    let c1 = encrypt_bool(&ctx, &keys, true, &mut rng);
    let c2 = encrypt_bool(&ctx, &keys, true, &mut rng);
    let exact1 = LweCiphertext::trivial(ctx.encode(1, 8), ctx.lwe_dim(), ctx.q());
    let fresh = LweNoise::fresh();
    for c in [&c1, &c2] {
        let err = phase_error(c, &exact1, &keys.lwe_sk);
        assert!(
            err <= 6.0 * fresh.std_dev() * torus_ratio,
            "fresh phase error {err} exceeds the 6σ envelope"
        );
    }

    // Worst-case gate linear part (the XOR family): 2·(c1+c2)+q/4.
    let q4 = LweCiphertext::trivial(ctx.encode(1, 4), ctx.lwe_dim(), ctx.q());
    let lin = c1.add(&c2).scale(2).add(&q4);
    let lin_exact = exact1.add(&exact1).scale(2).add(&q4);
    let lin_noise = fresh.gate_linear();
    let err = phase_error(&lin, &lin_exact, &keys.lwe_sk);
    assert!(
        err <= 6.0 * lin_noise.std_dev() * torus_ratio,
        "gate-linear phase error {err} exceeds the 6σ envelope {}",
        6.0 * lin_noise.std_dev() * torus_ratio
    );
    // The static margin check must agree with reality: the model says
    // this still decodes, and it does.
    let margin = LweNoise::margin(q, 8.0);
    assert!(!lin_noise.exceeds_margin(margin / torus_ratio));

    // Through a full bootstrapped gate: output error within the 6σ of
    // the PBS+key-switch model, and the bit survives.
    let out = apply_gate(&ctx, &keys, Gate::And, &c1, &c2);
    let out_exact = LweCiphertext::trivial(ctx.encode(1, 8), ctx.lwe_dim(), ctx.q());
    let pbs_noise = LweNoise::pbs_output(p, q).key_switch(p, q);
    let err = phase_error(&out, &out_exact, &keys.lwe_sk);
    assert!(
        err <= 6.0 * pbs_noise.std_dev(),
        "PBS output phase error {err} exceeds the 6σ envelope {}",
        6.0 * pbs_noise.std_dev()
    );
    assert!(decrypt_bool(&ctx, &keys, &out), "AND(true, true) flipped");
    assert!(!pbs_noise.exceeds_margin(margin));
}
