//! End-to-end homomorphic SHA-256 on the real TFHE evaluator:
//! encrypt → bootstrapped gate circuit → decrypt, checked bit-for-bit
//! against the plaintext reference on NIST-vector messages and seeded
//! random messages.
//!
//! Every test here is `#[ignore]`d: a single reduced-round block is
//! hundreds of bootstrapped gates (~5 ms each in release, ~40× that
//! in debug), so the suite runs in the release-mode `sha256-smoke` CI
//! job (`cargo test -p ufc-workloads --release -- --ignored sha256`)
//! rather than the per-PR debug tier. The full-width single-block
//! digest — six-figure gate counts — additionally sits behind the
//! scheduled `sha256-full` job.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;
use ufc_tfhe::{TfheContext, TfheKeys};
use ufc_workloads::sha256::{host, AdderKind, ShaParams};

/// One shared key set: keygen dominates the short runs otherwise.
fn env() -> &'static (TfheContext, TfheKeys) {
    static ENV: OnceLock<(TfheContext, TfheKeys)> = OnceLock::new();
    ENV.get_or_init(|| {
        let ctx = host::test_context();
        let mut rng = StdRng::seed_from_u64(0x5AA5_1DEA);
        let keys = TfheKeys::generate(&ctx, &mut rng);
        (ctx, keys)
    })
}

fn check(p: &ShaParams, adder: AdderKind, msg: &[u8], seed: u64) {
    let (ctx, keys) = env();
    let mut rng = StdRng::seed_from_u64(seed);
    let out = host::hom_digest_with(ctx, keys, &mut rng, p, adder, msg);
    assert!(
        out.matches(),
        "homomorphic digest diverged from the reference: w={} r={} {} msg_len={} \
         (got {:02x?}, want {:02x?})",
        p.word_bits,
        p.rounds,
        adder.label(),
        msg.len(),
        out.digest,
        out.reference
    );
    assert!(out.gates > 0);
}

#[test]
#[ignore = "hundreds of host bootstraps; release-mode sha256-smoke CI job"]
fn hom_reduced_one_round_nist_messages() {
    let p = ShaParams::new(8, 1);
    for adder in AdderKind::ALL {
        // "abc" pads to one 16-byte block; the empty message checks
        // the all-padding block.
        check(&p, adder, b"abc", 1);
        check(&p, adder, b"", 2);
    }
}

#[test]
#[ignore = "hundreds of host bootstraps; release-mode sha256-smoke CI job"]
fn hom_reduced_two_rounds_multi_block() {
    let p = ShaParams::new(8, 2);
    // 14 bytes forces a second (length-only) block at w = 8.
    check(&p, AdderKind::Ripple, b"abcdbcdecdefde", 3);
    check(&p, AdderKind::Prefix, b"abcdbcdecdefde", 4);
}

#[test]
#[ignore = "hundreds of host bootstraps; release-mode sha256-smoke CI job"]
fn hom_reduced_seeded_random_messages() {
    let p = ShaParams::new(8, 1);
    let mut msg_rng = StdRng::seed_from_u64(0xFEED_5EED);
    for (i, adder) in [AdderKind::Ripple, AdderKind::Prefix, AdderKind::Ripple]
        .into_iter()
        .enumerate()
    {
        let len = msg_rng.gen_range(0usize..=40);
        let msg: Vec<u8> = (0..len).map(|_| msg_rng.gen_range(0u8..=255)).collect();
        check(&p, adder, &msg, 100 + i as u64);
    }
}

#[test]
#[ignore = "full-width 64-round block (>100k bootstraps); scheduled sha256-full CI job"]
fn hom_full_width_single_block() {
    let p = ShaParams::new(32, 64);
    assert_eq!(p, ShaParams::FULL);
    // "abc" is the canonical FIPS 180-4 single-block vector; the
    // reference side of `check` pins the digest to
    // ba7816bf…f20015ad via the oracle equality.
    check(&p, AdderKind::Prefix, b"abc", 7);
}
