//! Regression pins for the SHA-256 circuit generator itself: exact
//! full-width circuit shapes, trace emission shape, and a generous
//! wall-clock budget for one-block trace generation.
//!
//! The wire arena is designed to build six-figure circuits by index
//! bookkeeping alone (no per-gate cloning); an accidental
//! clone-heavy or quadratic allocation path in the builders would
//! blow the time budget long before it breaks correctness. The shape
//! pins also guard the constant-folding rules: a folding regression
//! shows up as a gate-count drift here before it shows up as noise in
//! the bench tables.

use std::time::{Duration, Instant};
use ufc_isa::trace::TraceOp;
use ufc_workloads::sha256::{self, AdderKind, ShaParams};

// Exact full-width one-block shapes (gates, ASAP depth). The ripple
// circuit is the gate-count floor, the prefix circuit the depth
// floor; both are deterministic functions of the generator.
const RIPPLE_FULL: (usize, u32) = (115_276, 3853);
const PREFIX_FULL: (usize, u32) = (162_220, 1994);

#[test]
fn full_width_circuit_shapes_are_pinned() {
    for (adder, (gates, depth)) in [
        (AdderKind::Ripple, RIPPLE_FULL),
        (AdderKind::Prefix, PREFIX_FULL),
    ] {
        let c = sha256::compression_circuit(&ShaParams::FULL, adder, None);
        assert_eq!(
            (c.gate_count(), c.depth()),
            (gates, depth),
            "{} circuit shape drifted; update the pin if the generator \
             change is intentional",
            adder.label()
        );
        // 8 state words + 16 message words in, 8 state words out.
        assert_eq!(c.input_count(), 24 * 32);
        assert_eq!(c.outputs().len(), 8 * 32);
        // Every ASAP level is populated and they sum to the circuit.
        let levels = c.levels();
        assert_eq!(levels.len(), c.depth() as usize);
        assert!(levels.iter().all(|&w| w > 0));
        assert_eq!(levels.iter().map(|&w| w as usize).sum::<usize>(), gates);
    }
}

#[test]
fn trace_emission_is_three_ops_per_level() {
    let tr = sha256::generate("T1", &ShaParams::FULL, AdderKind::Prefix, 1);
    let c = sha256::compression_circuit(&ShaParams::FULL, AdderKind::Prefix, None);
    // One Linear/Pbs/KeySwitch triple per populated level.
    assert_eq!(tr.len(), 3 * c.depth() as usize);
    let pbs_total: u64 = tr
        .ops
        .iter()
        .filter_map(|op| match op {
            TraceOp::TfhePbs { batch } => Some(*batch as u64),
            _ => None,
        })
        .sum();
    assert_eq!(pbs_total, PREFIX_FULL.0 as u64);
}

#[test]
fn one_block_generation_stays_in_budget() {
    // Wide margin over the observed cost (well under a second in
    // debug for both variants together): this only catches
    // order-of-magnitude regressions such as per-gate Vec clones in
    // the arena or adder builders.
    let budget = Duration::from_secs(30);
    let start = Instant::now();
    for adder in AdderKind::ALL {
        let tr = sha256::generate("T1", &ShaParams::FULL, adder, 1);
        assert!(!tr.ops.is_empty());
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < budget,
        "one-block trace generation took {elapsed:?} (budget {budget:?}); \
         a clone-heavy path crept into the circuit builders"
    );
}
