//! Homomorphic SHA-256 conformance across NTT kernel generations.
//!
//! One reduced-width compression round is evaluated homomorphically
//! — every bootstrapped gate of the circuit — once per NTT kernel.
//! All kernels are bit-identical and the rest of the pipeline is
//! deterministic given the RNG stream, so the output *ciphertexts*
//! (not just the decrypted digest bits) must match exactly across
//! kernels; the decrypted state is additionally checked against the
//! plaintext reference compression.
//!
//! When `UFC_NTT_KERNEL` is set (the CI kernel matrix), the round
//! runs once under that ambient kernel — the matrix legs jointly
//! cover all kernels. When unset, the test iterates all five kernels
//! itself and asserts cross-kernel ciphertext equality (the 31-bit
//! TFHE primes sit inside the IFMA window, so the fifth generation
//! runs everywhere — portable mirror lanes without the hardware).
//! `#[ignore]`d
//! like the rest of the homomorphic suite: hundreds of host
//! bootstraps per kernel, run by the release-mode `sha256-smoke` job.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ufc_math::ntt::{NttKernel, KERNEL_ENV};
use ufc_tfhe::gates::{decrypt_bool, encrypt_bool};
use ufc_tfhe::{LweCiphertext, TfheContext, TfheKeys};
use ufc_workloads::sha256::{circuit, reference, AdderKind, ShaParams};

const SEED: u64 = 0x51A2_5600;

fn params() -> ShaParams {
    ShaParams::new(8, 1)
}

/// Runs one homomorphic compression round under one kernel,
/// returning the output state ciphertexts for cross-kernel
/// comparison. The decrypted state is oracle-checked inline.
fn round_sweep(kernel: NttKernel) -> Vec<LweCiphertext> {
    let p = params();
    let ctx = TfheContext::new(64, 256, 7, 3, 6, 4).with_ntt_kernel(kernel);
    assert_eq!(ctx.ntt_kernel(), kernel);
    let mut rng = StdRng::seed_from_u64(SEED);
    let keys = TfheKeys::generate(&ctx, &mut rng);

    let c = circuit::compression_circuit(&p, AdderKind::Ripple, None);
    let block = reference::pad(&p, b"abc");
    assert_eq!(block.len(), p.block_bytes(), "one padded block");

    let mut input_bits = circuit::state_input_bits(&p, &p.h0());
    input_bits.extend(circuit::block_input_bits(&p, &block));
    let inputs: Vec<LweCiphertext> = input_bits
        .into_iter()
        .map(|bit| encrypt_bool(&ctx, &keys, bit, &mut rng))
        .collect();
    let outputs = c.eval_encrypted(&ctx, &keys, &inputs);

    let bits: Vec<bool> = outputs
        .iter()
        .map(|ct| decrypt_bool(&ctx, &keys, ct))
        .collect();
    let mut want = p.h0();
    reference::compress(&p, &mut want, &block);
    assert_eq!(
        circuit::state_from_bits(&p, &bits),
        want,
        "homomorphic compression wrong under {kernel} kernel"
    );
    outputs
}

#[test]
#[ignore = "hundreds of host bootstraps per kernel; release-mode sha256-smoke CI job"]
fn hom_round_bit_identical_across_kernels() {
    // Under the CI kernel matrix the ambient kernel is forced via the
    // environment and the matrix legs jointly cover all kernels, so
    // one decrypt-checked sweep suffices; `from_env` rejects a typo'd
    // matrix value instead of silently falling back.
    if std::env::var_os(KERNEL_ENV).is_some() {
        NttKernel::from_env().expect("kernel matrix leg set a malformed UFC_NTT_KERNEL");
        let ambient = TfheContext::new(64, 256, 7, 3, 6, 4).ntt_kernel();
        round_sweep(ambient);
        return;
    }
    let reference_cts = round_sweep(NttKernel::Reference);
    for kernel in [
        NttKernel::Radix2,
        NttKernel::Radix4,
        NttKernel::Simd,
        NttKernel::Ifma,
    ] {
        assert_eq!(
            round_sweep(kernel),
            reference_cts,
            "SHA-256 round ciphertexts under {kernel} diverged from the reference kernel"
        );
    }
}
