//! Property tests for the SHA-256 oracle stack: the plaintext
//! reference model against the FIPS 180-4 known-answer vectors, and
//! the gate circuit against the reference model over random messages
//! and every padding boundary.
//!
//! These run entirely in plaintext (the circuit's `eval`), so the
//! full-width 64-round circuit — >100k gates — is cheap enough to
//! sweep under proptest in the tier-1 suite.

use proptest::prelude::*;
use ufc_workloads::sha256::{circuit, reference, AdderKind, ShaParams};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Digest of `msg` computed by chaining the gate circuit over the
/// padded blocks in plaintext — the same chaining the host evaluator
/// does over ciphertexts.
fn circuit_digest(p: &ShaParams, adder: AdderKind, msg: &[u8]) -> Vec<u8> {
    let c = circuit::compression_circuit(p, adder, None);
    let padded = reference::pad(p, msg);
    let mut state_bits = circuit::state_input_bits(p, &p.h0());
    for block in padded.chunks(p.block_bytes()) {
        let mut inputs = state_bits;
        inputs.extend(circuit::block_input_bits(p, block));
        state_bits = c.eval(&inputs);
    }
    reference::state_bytes(p, &circuit::state_from_bits(p, &state_bits))
}

// FIPS 180-4 / NIST CAVP known-answer vectors, checked against the
// *circuit* (the reference model itself pins them in its unit tests),
// under both adder families.
#[test]
fn circuit_matches_nist_vectors() {
    let cases: [(&[u8], &str); 3] = [
        (
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
    ];
    for adder in AdderKind::ALL {
        for (msg, want) in cases {
            assert_eq!(
                hex(&circuit_digest(&ShaParams::FULL, adder, msg)),
                want,
                "{} adder diverged on {:?}",
                adder.label(),
                String::from_utf8_lossy(msg)
            );
        }
    }
}

// The three padding boundaries of the full-width block: 55 bytes (the
// last length that fits one block), 56 (first spill into a second
// block), 64 (exactly one block of message).
#[test]
fn circuit_matches_reference_at_padding_boundaries() {
    let p = ShaParams::FULL;
    for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
        let msg: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
        for adder in AdderKind::ALL {
            assert_eq!(
                circuit_digest(&p, adder, &msg),
                reference::digest(&p, &msg),
                "len {len}, {} adder",
                adder.label()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Random messages spanning 0–3 full-width blocks (a 128-byte
    // message pads to 3 × 64 bytes).
    #[test]
    fn prop_full_width_circuit_matches_reference(
        msg in proptest::collection::vec(any::<u8>(), 0..129),
        ripple in any::<bool>(),
    ) {
        let adder = if ripple { AdderKind::Ripple } else { AdderKind::Prefix };
        prop_assert_eq!(
            circuit_digest(&ShaParams::FULL, adder, &msg),
            reference::digest(&ShaParams::FULL, &msg)
        );
    }

    // The reduced host-scale configurations stay oracle-exact too
    // (16-byte blocks, so the same length range crosses many more
    // block boundaries).
    #[test]
    fn prop_reduced_circuit_matches_reference(
        msg in proptest::collection::vec(any::<u8>(), 0..49),
        rounds in 1u32..=8,
        ripple in any::<bool>(),
    ) {
        let p = ShaParams::new(8, rounds);
        let adder = if ripple { AdderKind::Ripple } else { AdderKind::Prefix };
        prop_assert_eq!(
            circuit_digest(&p, adder, &msg),
            reference::digest(&p, &msg)
        );
    }

    // Structural padding invariants at every width.
    #[test]
    fn prop_padding_invariants(
        len in 0usize..=200,
        width_idx in 0usize..3,
    ) {
        let p = ShaParams::new([8u32, 16, 32][width_idx], 1);
        let msg = vec![0xA5u8; len];
        let padded = reference::pad(&p, &msg);
        let block = p.block_bytes();
        prop_assert_eq!(padded.len() % block, 0);
        prop_assert!(padded.len() > len);
        prop_assert_eq!(&padded[..len], &msg[..]);
        prop_assert_eq!(padded[len], 0x80);
        // Big-endian bit length in the trailing length field.
        let lf = &padded[padded.len() - p.len_bytes()..];
        let bit_len = lf.iter().fold(0u128, |acc, &b| (acc << 8) | b as u128);
        prop_assert_eq!(bit_len, len as u128 * 8);
    }

    // Digest size and determinism.
    #[test]
    fn prop_digest_shape(msg in proptest::collection::vec(any::<u8>(), 0..81)) {
        let p = ShaParams::FULL;
        let d = reference::digest(&p, &msg);
        prop_assert_eq!(d.len(), p.digest_bytes());
        prop_assert_eq!(&d, &reference::digest(&p, &msg));
    }
}
