//! Logic-scheme workloads (§VI-D2): functional-bootstrapping
//! throughput tests and the ZAMA neural networks.

use ufc_isa::trace::{Trace, TraceOp};

/// Functional bootstrapping throughput test: `count` independent
/// PBS operations (batched — the TvLP source).
pub fn pbs_throughput(params: &'static str, count: u32) -> Trace {
    let mut tr = Trace::new(format!("PBS-throughput/{params}")).with_tfhe(params);
    let batch = 64u32;
    let mut remaining = count;
    while remaining > 0 {
        let b = remaining.min(batch);
        tr.push(TraceOp::TfhePbs { batch: b });
        tr.push(TraceOp::TfheKeySwitch { batch: b });
        remaining -= b;
    }
    tr
}

/// A ZAMA-style deep NN (Chillotti et al., programmable
/// bootstrapping inference): `layers` dense layers of 92 neurons,
/// each neuron a weighted sum (LWE linear ops) followed by one PBS
/// activation.
pub fn zama_nn(params: &'static str, layers: u32) -> Trace {
    let neurons = 92u32;
    let mut tr = Trace::new(format!("NN-{layers}/{params}")).with_tfhe(params);
    for _ in 0..layers {
        // Weighted sums: `neurons` dot products of width `neurons`.
        tr.push(TraceOp::TfheLinear {
            count: neurons * neurons,
        });
        // One PBS per neuron, batched.
        tr.push(TraceOp::TfhePbs { batch: neurons });
        tr.push(TraceOp::TfheKeySwitch { batch: neurons });
    }
    tr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_test_batches() {
        let tr = pbs_throughput("T1", 256);
        let pbs: u32 = tr
            .ops
            .iter()
            .filter_map(|o| match o {
                TraceOp::TfhePbs { batch } => Some(*batch),
                _ => None,
            })
            .sum();
        assert_eq!(pbs, 256);
    }

    #[test]
    fn nn_has_one_pbs_batch_per_layer() {
        let tr = zama_nn("T2", 20);
        let pbs_ops = tr
            .ops
            .iter()
            .filter(|o| matches!(o, TraceOp::TfhePbs { .. }))
            .count();
        assert_eq!(pbs_ops, 20);
        assert_eq!(tr.tfhe_params, Some("T2"));
    }

    #[test]
    fn deeper_nn_is_proportionally_bigger() {
        assert_eq!(zama_nn("T1", 50).len(), 50 * 3);
        assert_eq!(zama_nn("T1", 20).len(), 20 * 3);
    }
}

/// Gate-bootstrapping throughput test: `count` two-input gates, each
/// one linear combination + one sign bootstrap + key switch (the
/// workload Strix's gates/s numbers measure). Emitted through the
/// shared [`crate::gate_circuit::emit_gate_level`] helper — the same
/// batched triple the levelized SHA-256 circuit uses.
pub fn gate_throughput(params: &'static str, count: u32) -> Trace {
    let mut tr = Trace::new(format!("gates/{params}")).with_tfhe(params);
    let batch = 64u32;
    let mut remaining = count;
    while remaining > 0 {
        let b = remaining.min(batch);
        crate::gate_circuit::emit_gate_level(&mut tr, b);
        remaining -= b;
    }
    tr
}

#[cfg(test)]
mod gate_tests {
    use super::*;

    #[test]
    fn gate_throughput_counts() {
        let tr = gate_throughput("T1", 200);
        let total: u32 = tr
            .ops
            .iter()
            .filter_map(|o| match o {
                TraceOp::TfhePbs { batch } => Some(*batch),
                _ => None,
            })
            .sum();
        assert_eq!(total, 200);
        // Each batch carries its linear part.
        assert!(tr
            .ops
            .iter()
            .any(|o| matches!(o, TraceOp::TfheLinear { .. })));
    }
}
