//! Sorting: 2-way bitonic sorting of a 16384-element array (§VI-D1,
//! after Hong et al. — the same configuration SHARP evaluates).

use crate::builder::CkksProgramBuilder;
use ufc_isa::trace::Trace;

/// Elements to sort.
pub const ELEMENTS: u32 = 16_384;

/// Generates the bitonic-sort trace at the given CKKS parameter set.
pub fn generate(params: &'static str) -> Trace {
    let mut b = CkksProgramBuilder::new("Sorting", params);
    let k = ELEMENTS.ilog2(); // 14
                              // Bitonic network: k(k+1)/2 = 105 compare-exchange stages.
    for stage in 1..=k {
        for substage in (1..=stage).rev() {
            let step = 1i32 << (substage - 1);
            // Compare-exchange on packed data: rotate partner lanes
            // next to each other, evaluate the comparison polynomial
            // (approximate max/min: depth-4 composite), then blend.
            b.rotate(step);
            b.poly_eval(4, 6);
            b.mul_ct(); // blend: a·cmp + b·(1−cmp)
            b.add();
            b.rotate(-step);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_isa::trace::TraceOp;

    #[test]
    fn stage_count_matches_bitonic_network() {
        let tr = generate("C1");
        // 105 compare stages, 2 rotations each, plus bootstrap
        // rotations on top.
        let rot = tr
            .ops
            .iter()
            .filter(|o| matches!(o, TraceOp::CkksRotate { .. }))
            .count();
        assert!(rot >= 210, "rot = {rot}");
    }

    #[test]
    fn comparison_depth_forces_bootstraps() {
        let tr = generate("C3");
        let boots = tr
            .ops
            .iter()
            .filter(|o| matches!(o, TraceOp::CkksModRaise { .. }))
            .count();
        assert!(boots >= 10, "boots = {boots}");
    }
}
