//! Hybrid k-NN (§VI-D3, after Cong et al.): distances in CKKS,
//! oblivious top-k selection in TFHE, with scheme switching (and, on
//! the composed baseline, PCIe transfers) in between.

use crate::builder::CkksProgramBuilder;
use ufc_isa::params::{ckks_params, tfhe_params};
use ufc_isa::trace::{Trace, TraceOp};

/// Configuration of the k-NN benchmark.
#[derive(Debug, Clone, Copy)]
pub struct KnnConfig {
    /// Database size (candidate points).
    pub candidates: u32,
    /// Feature dimension.
    pub dim: u32,
    /// Neighbors to select.
    pub k: u32,
}

impl Default for KnnConfig {
    fn default() -> Self {
        Self {
            candidates: 2048,
            dim: 256,
            k: 8,
        }
    }
}

/// Generates the hybrid k-NN trace for a CKKS set and a TFHE set
/// (the Fig. 11 sweep runs T1–T4 against C2).
///
/// Following the oblivious top-k structure of Cong et al., the heavy
/// lifting — pairwise distances plus the approximate pre-selection
/// network — runs in CKKS; TFHE performs only the *exact* comparisons
/// on the shortlisted `16k` candidates, so at small TFHE parameters
/// the CKKS phase dominates end-to-end time (Fig. 11).
pub fn generate(ckks: &'static str, tfhe: &'static str, cfg: KnnConfig) -> Trace {
    let cp = ckks_params(ckks).expect("unknown CKKS set");
    let tp = tfhe_params(tfhe).expect("unknown TFHE set");

    // ---- CKKS phase 1: squared distances ‖x − c_i‖² for all
    // candidates (packed 32768 values per ciphertext).
    let mut b = CkksProgramBuilder::new(format!("kNN/{tfhe}"), ckks);
    let packed = (cfg.candidates * cfg.dim)
        .div_ceil(cp.slots() as u32)
        .max(1);
    for _ in 0..packed {
        b.add(); // x − c (broadcast subtract)
        b.mul_ct(); // squaring
        b.rotations(cfg.dim.ilog2()); // feature-sum tree
    }
    // ---- CKKS phase 2: approximate pre-selection — a shallow
    // bitonic network over the distance vector narrows the field to
    // ~16k candidates with sign-polynomial comparisons.
    let preselect_stages = cfg.candidates.ilog2();
    for _ in 0..preselect_stages {
        b.rotate(1);
        b.poly_eval(4, 6);
        b.mul_ct();
        b.add();
    }
    // SlotToCoeff so the shortlist sits in coefficients for
    // extraction.
    b.rotations(16);
    b.mul_plain();
    let mut tr = b.build();
    tr.tfhe_params = Some(tfhe);

    // ---- Scheme switch: extract one LWE per shortlisted candidate.
    let shortlist = 16 * cfg.k;
    tr.push(TraceOp::Extract {
        level: 0,
        count: shortlist,
    });
    // Composed baseline must ship the extracted LWEs over PCIe.
    let lwe_bytes = shortlist as u64 * tp.lwe_bytes();
    tr.push(TraceOp::SchemeTransfer { bytes: lwe_bytes });

    // ---- TFHE phase: exact top-k tournament on the shortlist. Each
    // round halves the candidate set with one comparator PBS per
    // surviving pair.
    let mut remaining = shortlist;
    while remaining > cfg.k {
        let pairs = remaining / 2;
        tr.push(TraceOp::TfheLinear { count: pairs });
        tr.push(TraceOp::TfhePbs { batch: pairs });
        tr.push(TraceOp::TfheKeySwitch { batch: pairs });
        remaining = pairs.max(cfg.k);
    }

    // ---- Scheme switch back: repack the k winners for the caller.
    tr.push(TraceOp::SchemeTransfer {
        bytes: cfg.k as u64 * tp.lwe_bytes(),
    });
    tr.push(TraceOp::Repack {
        count: cfg.k,
        level: 4,
    });
    tr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_hybrid() {
        let tr = generate("C2", "T1", KnnConfig::default());
        assert!(tr.is_hybrid());
        assert_eq!(tr.ckks_params, Some("C2"));
        assert_eq!(tr.tfhe_params, Some("T1"));
    }

    #[test]
    fn tournament_shrinks_to_k() {
        let tr = generate("C2", "T2", KnnConfig::default());
        let pbs_batches: Vec<u32> = tr
            .ops
            .iter()
            .filter_map(|o| match o {
                TraceOp::TfhePbs { batch } => Some(*batch),
                _ => None,
            })
            .collect();
        // Shortlist 16k = 128 halves per round down to k = 8.
        assert!(pbs_batches.len() >= 4);
        assert!(pbs_batches.windows(2).all(|w| w[1] <= w[0]));
        assert_eq!(*pbs_batches.last().unwrap(), 8);
    }

    #[test]
    fn transfers_bracket_the_tfhe_phase() {
        let tr = generate("C2", "T4", KnnConfig::default());
        let transfers = tr
            .ops
            .iter()
            .filter(|o| matches!(o, TraceOp::SchemeTransfer { .. }))
            .count();
        assert_eq!(transfers, 2);
    }

    #[test]
    fn all_tfhe_sets_supported() {
        for t in ["T1", "T2", "T3", "T4"] {
            let tr = generate("C2", t, KnnConfig::default());
            assert!(tr.len() > 20, "{t}");
        }
    }
}
