//! ResNet-20: homomorphic CIFAR-10 inference (§VI-D1, after Lee et
//! al.): 3 residual stages of multi-channel convolutions with
//! approximated ReLU, a final average-pool and a dense layer.

use crate::builder::CkksProgramBuilder;
use ufc_isa::trace::Trace;

/// Convolution layers in ResNet-20.
pub const CONV_LAYERS: u32 = 19;

/// Generates the ResNet-20 trace at the given CKKS parameter set.
pub fn generate(params: &'static str) -> Trace {
    let mut b = CkksProgramBuilder::new("ResNet-20", params);
    for layer in 0..CONV_LAYERS {
        // Packed 3×3 convolution: 9 plaintext (weight) multiplies and
        // 8 shift rotations, repeated per channel block (channels are
        // packed; deeper layers have more channel blocks but smaller
        // spatial dims — net block count grows slowly).
        let channel_blocks = 1 + layer / 8;
        for _ in 0..channel_blocks {
            for _ in 0..9 {
                b.rotate(1);
                b.mul_plain();
            }
            // Channel accumulation tree.
            b.rotations(4);
            b.add();
        }
        // Approximated ReLU: high-degree composite polynomial
        // (depth-8, ~14 multiplies in the Lee et al. recipe).
        b.poly_eval(8, 14);
    }
    // Average pool (rotation tree) + fully-connected layer.
    b.rotations(6);
    b.mul_plain();
    b.rotations(4);
    b.add();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_isa::trace::TraceOp;

    #[test]
    fn network_depth_forces_many_bootstraps() {
        let tr = generate("C2");
        let boots = tr
            .ops
            .iter()
            .filter(|o| matches!(o, TraceOp::CkksModRaise { .. }))
            .count();
        // 19 ReLUs of depth 8 on a ~20-level budget: roughly one
        // bootstrap per couple of layers.
        assert!(boots >= 6, "boots = {boots}");
    }

    #[test]
    fn convolutions_dominate_plaintext_multiplies() {
        let tr = generate("C2");
        let mp = tr
            .ops
            .iter()
            .filter(|o| matches!(o, TraceOp::CkksMulPlain { .. }))
            .count();
        assert!(mp >= (9 * CONV_LAYERS) as usize);
    }

    #[test]
    fn trace_is_substantial() {
        assert!(generate("C1").len() > 2000);
    }
}
