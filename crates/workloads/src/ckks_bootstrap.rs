//! The CKKS bootstrapping benchmark (§VI-D1): 30 refreshed (32-bit)
//! levels per run, using the minimum-rotation-key method of ARK.

use crate::builder::CkksProgramBuilder;
use ufc_isa::trace::Trace;

/// Levels of computation refreshed per benchmark run.
pub const REFRESHED_LEVELS: u32 = 30;

/// Generates the bootstrapping benchmark trace: enough consecutive
/// multiplications to burn 30 levels, with the bootstraps that
/// sustain them.
pub fn generate(params: &'static str) -> Trace {
    let mut b = CkksProgramBuilder::new("Bootstrapping", params);
    // Force an immediate bootstrap so the trace is dominated by the
    // bootstrap pipeline itself, then burn the refreshed levels.
    b.bootstrap();
    for _ in 0..REFRESHED_LEVELS {
        b.mul_ct();
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_isa::trace::TraceOp;

    #[test]
    fn bootstrap_work_dominates() {
        let tr = generate("C1");
        let rot = tr
            .ops
            .iter()
            .filter(|o| matches!(o, TraceOp::CkksRotate { .. }))
            .count();
        let mul = tr
            .ops
            .iter()
            .filter(|o| matches!(o, TraceOp::CkksMulCt { .. }))
            .count();
        assert!(rot > mul, "bootstrapping is rotation-heavy");
    }

    #[test]
    fn multiple_bootstraps_sustain_thirty_levels() {
        let tr = generate("C3");
        let boots = tr
            .ops
            .iter()
            .filter(|o| matches!(o, TraceOp::CkksModRaise { .. }))
            .count();
        assert!(boots >= 2, "boots = {boots}");
    }
}
