//! Real-execution hybrid k-NN pipeline for host profiling.
//!
//! The other modules in this crate *generate traces analytically* at
//! paper scale; this one actually **runs** the hybrid pipeline at
//! test scale on the host evaluator stack — CKKS arithmetic (encrypt,
//! plaintext multiply, rescale, rotate, add), the CKKS→LWE extraction
//! bridge, one comparator programmable bootstrap per candidate, and a
//! TFHE gate sweep — so the `ufc-trace` recorder has something real
//! to measure. `ufc-profile --host` drives [`run_threshold_knn`] with
//! the recorder live and reports the spans; the run also emits the
//! decrypt-side noise gauges (`ckks/measured_precision_bits`,
//! `tfhe/phase_margin`) that feed the noise headroom-drift metric.
//!
//! Everything is seeded and the pipeline is single-path, so two runs
//! with the same [`HostRunConfig`] produce identical ciphertext bits
//! (the tracing bit-identity suite in `tests/trace_identity.rs`
//! depends on this).

use rand::rngs::StdRng;
use rand::SeedableRng;
use ufc_isa::trace::Trace;
use ufc_switch::hybrid::HybridEnv;
use ufc_tfhe::gates::{self, Gate};

/// Configuration for one host pipeline run.
#[derive(Debug, Clone)]
pub struct HostRunConfig {
    /// RNG seed for keys, encryption randomness, and bridge setup.
    pub seed: u64,
    /// Candidate messages for the comparator stage (must fit in
    /// `0..space/2`).
    pub values: Vec<u64>,
    /// Comparator threshold: the PBS computes `m >= threshold`.
    pub threshold: u64,
    /// TFHE message space for the comparator stage.
    pub space: u64,
}

impl Default for HostRunConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            values: vec![0, 1, 2, 3, 2, 1],
            threshold: 2,
            space: 8,
        }
    }
}

/// Everything one [`run_threshold_knn`] execution produced.
#[derive(Debug)]
pub struct HostKnnRun {
    /// Comparator bits decrypted from the TFHE stage.
    pub bits: Vec<bool>,
    /// Plaintext-computed expected comparator bits.
    pub expected_bits: Vec<bool>,
    /// The CKKS-op trace the evaluator accumulated across the run
    /// (arithmetic stage + extraction), for the static noise pass.
    pub trace: Trace,
    /// Measured decrypt-side precision of the CKKS arithmetic stage,
    /// in bits (`-log2(max slot error)`).
    pub measured_precision_bits: f64,
    /// `(gate name, homomorphic output, plaintext expectation)` for
    /// the gate sweep.
    pub gate_results: Vec<(&'static str, bool, bool)>,
}

impl HostKnnRun {
    /// Whether every homomorphic result matched its plaintext
    /// expectation.
    pub fn all_correct(&self) -> bool {
        self.bits == self.expected_bits
            && self.gate_results.iter().all(|(_, got, want)| got == want)
    }
}

/// Runs the hybrid threshold-k-NN pipeline for real at test scale.
///
/// Deterministic for a fixed config; instrumented end to end with
/// `ufc-trace` spans (category `workload` for the stage markers, with
/// the library crates' own spans nested underneath).
pub fn run_threshold_knn(cfg: &HostRunConfig) -> HostKnnRun {
    let _run = ufc_trace::span_n("workload", "hybrid_knn", cfg.values.len() as u64);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut env = {
        let _setup = ufc_trace::span("workload", "setup");
        HybridEnv::new_test_scale(&mut rng)
    };

    // --- CKKS arithmetic stage: an inner-product-style fragment
    // (mul_plain → rescale → rotate → add), checked against the same
    // computation on plaintext to measure achieved precision.
    let measured_precision_bits = {
        let _arith = ufc_trace::span("workload", "ckks_arith");
        let slots = env.ckks.context().slots();
        let vals: Vec<f64> = (0..slots)
            .map(|i| ((i % 7) as f64) * 0.125 - 0.375)
            .collect();
        let weights: Vec<f64> = (0..slots).map(|i| ((i % 5) as f64) * 0.25 - 0.5).collect();
        env.ckks_keys
            .gen_rotation_key(env.ckks.context(), &env.ckks_sk, 1, &mut rng);
        let ct = env.ckks.encrypt_real(&vals, &env.ckks_keys, &mut rng);
        let pt_w = env.ckks.encode_real(&weights, ct.level);
        let prod = env.ckks.rescale(&env.ckks.mul_plain(&ct, &pt_w));
        let rot = env.ckks.rotate(&prod, 1, &env.ckks_keys);
        let sum = env.ckks.add(&prod, &rot);
        let reference: Vec<f64> = (0..slots)
            .map(|i| vals[i] * weights[i] + vals[(i + 1) % slots] * weights[(i + 1) % slots])
            .collect();
        env.ckks
            .measured_precision_bits(&sum, &env.ckks_sk, &reference)
    };

    // --- Scheme switch + comparator PBS per candidate. take_trace
    // inside also drains the arithmetic-stage ops recorded above.
    let (bits, trace) = {
        let _cmp = ufc_trace::span_n("workload", "threshold_compare", cfg.values.len() as u64);
        env.threshold_compare(&cfg.values, cfg.threshold, cfg.space, &mut rng)
            .expect("candidate count fits the test-scale ring")
    };
    let expected_bits: Vec<bool> = cfg.values.iter().map(|&v| v >= cfg.threshold).collect();

    // --- TFHE gate sweep: every supported gate once, with the
    // decrypt-side phase-margin gauge firing per decryption.
    let gate_results = {
        let _gates = ufc_trace::span_n("workload", "tfhe_gates", Gate::ALL.len() as u64);
        let a = gates::encrypt_bool(&env.tfhe, &env.tfhe_keys, true, &mut rng);
        let b = gates::encrypt_bool(&env.tfhe, &env.tfhe_keys, false, &mut rng);
        Gate::ALL
            .iter()
            .map(|&g| {
                let out = gates::apply_gate(&env.tfhe, &env.tfhe_keys, g, &a, &b);
                let got = gates::decrypt_bool(&env.tfhe, &env.tfhe_keys, &out);
                (g.name(), got, g.eval(true, false))
            })
            .collect()
    };

    HostKnnRun {
        bits,
        expected_bits,
        trace,
        measured_precision_bits,
        gate_results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_run_is_correct_and_deterministic() {
        let cfg = HostRunConfig::default();
        let a = run_threshold_knn(&cfg);
        assert!(
            a.all_correct(),
            "results: {:?} {:?}",
            a.bits,
            a.gate_results
        );
        assert!(
            a.measured_precision_bits > 5.0,
            "precision {} bits",
            a.measured_precision_bits
        );
        assert!(!a.trace.ops.is_empty());
        let b = run_threshold_knn(&cfg);
        assert_eq!(a.bits, b.bits);
        assert_eq!(
            a.measured_precision_bits, b.measured_precision_bits,
            "same seed must reproduce the same noise"
        );
        assert_eq!(a.trace.ops.len(), b.trace.ops.len());
    }
}
