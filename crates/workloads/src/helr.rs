//! HELR: 30 iterations of homomorphic logistic regression training,
//! 1024 samples × 256 features per batch (§VI-D1, after Han et al.).

use crate::builder::CkksProgramBuilder;
use ufc_isa::trace::Trace;

/// Samples per training batch.
pub const SAMPLES: u32 = 1024;
/// Features per sample.
pub const FEATURES: u32 = 256;
/// Training iterations.
pub const ITERATIONS: u32 = 30;

/// Generates the HELR trace at the given CKKS parameter set.
pub fn generate(params: &'static str) -> Trace {
    let mut b = CkksProgramBuilder::new("HELR", params);
    // 1024 × 256 values pack into 8 ciphertexts of 2^15 slots.
    let cts = (SAMPLES * FEATURES).div_ceil(1 << 15);
    for _ in 0..ITERATIONS {
        // Inner products X·w: one ct-ct multiply per packed ciphertext
        // plus a log-depth rotation tree to sum across features.
        for _ in 0..cts {
            b.mul_ct();
            b.rotations(8); // log2(256) rotations for the feature sum
        }
        // Sigmoid approximation (degree-7 minimax): depth 3.
        b.poly_eval(3, 4);
        // Gradient: X^T·(σ − y): another multiply + sample-sum tree.
        for _ in 0..cts {
            b.mul_ct();
            b.rotations(10); // log2(1024) rotations across samples
        }
        // Weight update: scaled addition.
        b.mul_plain();
        b.add();
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_isa::trace::TraceOp;

    #[test]
    fn trace_has_thirty_iterations_of_work() {
        let tr = generate("C1");
        let muls = tr
            .ops
            .iter()
            .filter(|o| matches!(o, TraceOp::CkksMulCt { .. }))
            .count();
        // ≥ 2 ct-muls per packed ciphertext per iteration.
        assert!(muls >= (2 * 8 * ITERATIONS) as usize, "muls = {muls}");
    }

    #[test]
    fn deep_program_needs_bootstrapping() {
        // "The multiplication depth is deep, requiring several
        // bootstrapping operations" (§VI-D1).
        let tr = generate("C1");
        let boots = tr
            .ops
            .iter()
            .filter(|o| matches!(o, TraceOp::CkksModRaise { .. }))
            .count();
        assert!(boots >= 3, "bootstraps = {boots}");
    }

    #[test]
    fn works_for_all_parameter_sets() {
        for p in ["C1", "C2", "C3"] {
            let tr = generate(p);
            assert_eq!(tr.ckks_params, Some(p));
            assert!(tr.len() > 1000);
        }
    }
}
