//! # ufc-workloads — the paper's evaluation workloads as trace generators
//!
//! Every workload of §VI-D, emitted as a ciphertext-granularity
//! [`ufc_isa::Trace`] at the paper's Table III parameters:
//!
//! * **HELR** — 30 iterations of homomorphic logistic regression,
//!   1024 samples × 256 features per batch ([`helr`]);
//! * **ResNet-20** — CIFAR-10 inference with multi-channel
//!   convolutions and approximated ReLU ([`resnet`]);
//! * **Sorting** — 2-way bitonic sorting of 16384 elements
//!   ([`sorting`]);
//! * **Bootstrapping** — the CKKS bootstrapping benchmark
//!   ([`ckks_bootstrap`]);
//! * **TFHE PBS throughput** and **ZAMA NN-20/NN-50** ([`tfhe_apps`]);
//! * **hybrid k-NN** with scheme switching ([`knn`]);
//! * **homomorphic SHA-256** — a self-checking deep boolean circuit
//!   with ripple vs. parallel-prefix adder variants ([`sha256`],
//!   built on the [`gate_circuit`] wire arena; beyond the paper's
//!   workload set).
//!
//! The generators build traces analytically from the published
//! algorithm structures (op sequence + level schedule); functional
//! correctness of the underlying operations is established separately
//! by the scheme crates, whose tracing evaluators emit the same op
//! vocabulary.

//! ```
//! let trace = ufc_workloads::helr::generate("C1");
//! assert!(trace.len() > 1000);
//! assert_eq!(trace.ckks_params, Some("C1"));
//! ```

#![forbid(unsafe_code)]

pub mod builder;
pub mod ckks_bootstrap;
pub mod gate_circuit;
pub mod helr;
pub mod host;
pub mod knn;
pub mod resnet;
pub mod sha256;
pub mod sorting;
pub mod tfhe_apps;

pub use builder::CkksProgramBuilder;

use ufc_isa::trace::Trace;

/// All CKKS workloads of Fig. 10(a), at the given parameter set.
pub fn all_ckks_workloads(params: &'static str) -> Vec<Trace> {
    vec![
        helr::generate(params),
        resnet::generate(params),
        sorting::generate(params),
        ckks_bootstrap::generate(params),
    ]
}

/// All TFHE workloads of Fig. 10(b), at the given parameter set.
pub fn all_tfhe_workloads(params: &'static str) -> Vec<Trace> {
    vec![
        tfhe_apps::pbs_throughput(params, 256),
        tfhe_apps::zama_nn(params, 20),
        tfhe_apps::zama_nn(params, 50),
    ]
}
