//! Wire-arena gate circuits: the shared substrate for boolean
//! (logic-scheme) workloads.
//!
//! A [`WireArena`] interns every gate node once — operands are plain
//! `u32` indices with a free inversion flag, so circuit construction
//! allocates no per-wire ciphertexts or boxed expression trees (the
//! clone-heavy pattern the earlier ad-hoc gate builders trended
//! toward). On top of the arena a finished [`GateCircuit`] offers the
//! three evaluations every workload needs:
//!
//! * **plaintext** ([`GateCircuit::eval`]) — the self-checking
//!   oracle;
//! * **homomorphic** ([`GateCircuit::eval_encrypted`]) — every gate
//!   runs as a real `ufc-tfhe` bootstrapped gate;
//! * **trace** ([`GateCircuit::to_trace`]) — ASAP levelization: all
//!   gates at the same dependence depth become one batched
//!   `TfheLinear`/`TfhePbs`/`TfheKeySwitch` triple, the TvLP source
//!   the compiler packs (§V-B).
//!
//! Free operations stay free: `NOT` is an operand flag (LWE negation
//! on hardware), rotations/shifts of bit vectors are index moves, and
//! gates with constant operands fold away at build time (public
//! constants never cost a bootstrap).

use std::collections::BTreeMap;

use ufc_isa::trace::{Trace, TraceOp};
use ufc_tfhe::gates::{self, Gate};
use ufc_tfhe::{LweCiphertext, TfheContext, TfheKeys};

/// A boolean value in a circuit under construction: a public
/// constant, or a wire (arena node) with a free inversion flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bit {
    /// A public constant, folded through gates at build time.
    Const(bool),
    /// An arena wire, optionally inverted (free on TFHE hardware).
    Wire {
        /// Index of the producing node in the arena.
        node: u32,
        /// Logical NOT applied on read (LWE negation, no bootstrap).
        invert: bool,
    },
}

impl std::ops::Not for Bit {
    type Output = Bit;

    /// Free logical NOT.
    fn not(self) -> Bit {
        match self {
            Bit::Const(v) => Bit::Const(!v),
            Bit::Wire { node, invert } => Bit::Wire {
                node,
                invert: !invert,
            },
        }
    }
}

/// One arena node: an encrypted input or a two-input bootstrapped
/// gate over earlier nodes.
#[derive(Debug, Clone, Copy)]
enum Node {
    Input,
    Gate {
        gate: Gate,
        a: u32,
        a_inv: bool,
        b: u32,
        b_inv: bool,
    },
}

/// Append-only arena of gate nodes (see module docs).
#[derive(Debug, Default)]
pub struct WireArena {
    nodes: Vec<Node>,
    /// ASAP dependence depth per node (inputs at 0).
    depth: Vec<u32>,
    inputs: u32,
}

impl WireArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh encrypted-input wire.
    pub fn input(&mut self) -> Bit {
        self.nodes.push(Node::Input);
        self.depth.push(0);
        self.inputs += 1;
        Bit::Wire {
            node: (self.nodes.len() - 1) as u32,
            invert: false,
        }
    }

    /// Number of input wires allocated so far.
    pub fn inputs(&self) -> u32 {
        self.inputs
    }

    /// Number of bootstrapped gates allocated so far.
    pub fn gates(&self) -> usize {
        self.nodes.len() - self.inputs as usize
    }

    /// A two-input bootstrapped gate. Constant and same-wire operands
    /// fold away without allocating (public logic is free), so the
    /// returned [`Bit`] may be a constant or an alias of an operand.
    pub fn gate(&mut self, g: Gate, a: Bit, b: Bit) -> Bit {
        match (a, b) {
            (Bit::Const(x), Bit::Const(y)) => Bit::Const(g.eval(x, y)),
            (Bit::Const(c), w @ Bit::Wire { .. }) | (w @ Bit::Wire { .. }, Bit::Const(c)) => {
                match (g, c) {
                    (Gate::And, true) | (Gate::Or, false) | (Gate::Xor, false) => w,
                    (Gate::Xnor, true) => w,
                    (Gate::And, false) | (Gate::Nor, true) => Bit::Const(false),
                    (Gate::Or, true) | (Gate::Nand, false) => Bit::Const(true),
                    (Gate::Xor, true)
                    | (Gate::Nand, true)
                    | (Gate::Nor, false)
                    | (Gate::Xnor, false) => !w,
                }
            }
            (
                Bit::Wire {
                    node: na,
                    invert: ia,
                },
                Bit::Wire {
                    node: nb,
                    invert: ib,
                },
            ) => {
                if na == nb {
                    return Self::fold_same_wire(g, a, ia == ib);
                }
                let d = 1 + self.depth[na as usize].max(self.depth[nb as usize]);
                self.nodes.push(Node::Gate {
                    gate: g,
                    a: na,
                    a_inv: ia,
                    b: nb,
                    b_inv: ib,
                });
                self.depth.push(d);
                Bit::Wire {
                    node: (self.nodes.len() - 1) as u32,
                    invert: false,
                }
            }
        }
    }

    /// `g(a, a)` and `g(a, !a)` are wire moves or constants.
    fn fold_same_wire(g: Gate, a: Bit, same_polarity: bool) -> Bit {
        if same_polarity {
            match g {
                Gate::And | Gate::Or => a,
                Gate::Nand | Gate::Nor => !a,
                Gate::Xor => Bit::Const(false),
                Gate::Xnor => Bit::Const(true),
            }
        } else {
            match g {
                Gate::And | Gate::Nor => Bit::Const(false),
                Gate::Or | Gate::Nand | Gate::Xor => Bit::Const(true),
                Gate::Xnor => Bit::Const(false),
            }
        }
    }

    /// Shorthand for [`WireArena::gate`] with [`Gate::And`].
    pub fn and(&mut self, a: Bit, b: Bit) -> Bit {
        self.gate(Gate::And, a, b)
    }

    /// Shorthand for [`WireArena::gate`] with [`Gate::Or`].
    pub fn or(&mut self, a: Bit, b: Bit) -> Bit {
        self.gate(Gate::Or, a, b)
    }

    /// Shorthand for [`WireArena::gate`] with [`Gate::Xor`].
    pub fn xor(&mut self, a: Bit, b: Bit) -> Bit {
        self.gate(Gate::Xor, a, b)
    }

    /// Finishes the circuit with the given output bits.
    pub fn finish(self, name: impl Into<String>, outputs: Vec<Bit>) -> GateCircuit {
        GateCircuit {
            name: name.into(),
            arena: self,
            outputs,
        }
    }
}

/// Structural statistics of a finished circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Encrypted input wires.
    pub inputs: u32,
    /// Output bits.
    pub outputs: usize,
    /// Bootstrapped two-input gates.
    pub gates: usize,
    /// Critical-path length in gate levels (bootstrap depth).
    pub depth: u32,
    /// Widest ASAP level (peak gate-level parallelism).
    pub max_width: u32,
    /// Mean ASAP level width (`gates / depth`).
    pub mean_width: f64,
    /// Gate count per gate kind.
    pub histogram: BTreeMap<&'static str, u64>,
}

/// A finished gate circuit: arena + designated outputs.
#[derive(Debug)]
pub struct GateCircuit {
    /// Display name (trace and report labels).
    pub name: String,
    arena: WireArena,
    outputs: Vec<Bit>,
}

impl GateCircuit {
    /// The designated output bits.
    pub fn outputs(&self) -> &[Bit] {
        &self.outputs
    }

    /// Number of encrypted input wires the circuit expects.
    pub fn input_count(&self) -> u32 {
        self.arena.inputs
    }

    /// Number of bootstrapped gates.
    pub fn gate_count(&self) -> usize {
        self.arena.gates()
    }

    /// Critical-path length in gate levels.
    pub fn depth(&self) -> u32 {
        self.arena.depth.iter().copied().max().unwrap_or(0)
    }

    /// Gate count of each ASAP level (index 0 = depth-1 gates).
    pub fn levels(&self) -> Vec<u32> {
        let mut widths = vec![0u32; self.depth() as usize];
        for (node, d) in self.arena.nodes.iter().zip(&self.arena.depth) {
            if matches!(node, Node::Gate { .. }) {
                widths[(*d - 1) as usize] += 1;
            }
        }
        widths
    }

    /// Structural statistics.
    pub fn stats(&self) -> CircuitStats {
        let mut histogram = BTreeMap::new();
        for node in &self.arena.nodes {
            if let Node::Gate { gate, .. } = node {
                *histogram.entry(gate.name()).or_insert(0u64) += 1;
            }
        }
        let levels = self.levels();
        let gates = self.gate_count();
        CircuitStats {
            inputs: self.arena.inputs,
            outputs: self.outputs.len(),
            gates,
            depth: self.depth(),
            max_width: levels.iter().copied().max().unwrap_or(0),
            mean_width: if levels.is_empty() {
                0.0
            } else {
                gates as f64 / levels.len() as f64
            },
            histogram,
        }
    }

    /// Plaintext evaluation — the oracle for both the homomorphic
    /// path and the trace-level model.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`Self::input_count`].
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.arena.inputs as usize, "input arity");
        let mut values = Vec::with_capacity(self.arena.nodes.len());
        let mut next_input = 0usize;
        for node in &self.arena.nodes {
            let v = match *node {
                Node::Input => {
                    let v = inputs[next_input];
                    next_input += 1;
                    v
                }
                Node::Gate {
                    gate,
                    a,
                    a_inv,
                    b,
                    b_inv,
                } => gate.eval(values[a as usize] ^ a_inv, values[b as usize] ^ b_inv),
            };
            values.push(v);
        }
        self.outputs
            .iter()
            .map(|bit| match *bit {
                Bit::Const(v) => v,
                Bit::Wire { node, invert } => values[node as usize] ^ invert,
            })
            .collect()
    }

    /// Homomorphic evaluation on the real `ufc-tfhe` gate evaluator:
    /// one bootstrapped [`gates::apply_gate`] per arena gate, free
    /// negations for inversion flags, trivial ciphertexts for
    /// constant outputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`Self::input_count`].
    pub fn eval_encrypted(
        &self,
        ctx: &TfheContext,
        keys: &TfheKeys,
        inputs: &[LweCiphertext],
    ) -> Vec<LweCiphertext> {
        assert_eq!(inputs.len(), self.arena.inputs as usize, "input arity");
        let _span = ufc_trace::span_n("workload", "gate_circuit", self.gate_count() as u64);
        let mut cts: Vec<LweCiphertext> = Vec::with_capacity(self.arena.nodes.len());
        let mut next_input = 0usize;
        for node in &self.arena.nodes {
            let ct = match *node {
                Node::Input => {
                    let ct = inputs[next_input].clone();
                    next_input += 1;
                    ct
                }
                Node::Gate {
                    gate,
                    a,
                    a_inv,
                    b,
                    b_inv,
                } => {
                    let ca = resolve(&cts[a as usize], a_inv);
                    let cb = resolve(&cts[b as usize], b_inv);
                    gates::apply_gate(ctx, keys, gate, &ca, &cb)
                }
            };
            cts.push(ct);
        }
        let trivial = |v: bool| {
            let enc = if v {
                ctx.encode(1, 8)
            } else {
                ctx.encode(7, 8)
            };
            LweCiphertext::trivial(enc, ctx.lwe_dim(), ctx.q())
        };
        self.outputs
            .iter()
            .map(|bit| match *bit {
                Bit::Const(v) => trivial(v),
                Bit::Wire { node, invert } => resolve(&cts[node as usize], invert).into_owned(),
            })
            .collect()
    }

    /// Emits the circuit as a compiler/simulator [`Trace`]: one
    /// batched gate level per ASAP depth (see [`emit_gate_level`]).
    pub fn to_trace(&self, params: &'static str) -> Trace {
        let mut tr = Trace::new(format!("{}/{params}", self.name)).with_tfhe(params);
        for width in self.levels() {
            emit_gate_level(&mut tr, width);
        }
        tr
    }
}

fn resolve(ct: &LweCiphertext, invert: bool) -> std::borrow::Cow<'_, LweCiphertext> {
    if invert {
        std::borrow::Cow::Owned(gates::not(ct))
    } else {
        std::borrow::Cow::Borrowed(ct)
    }
}

/// One ASAP level of `width` independent bootstrapped gates: the
/// linear parts batched as one wide `TfheLinear`, then a `TfhePbs`
/// batch (the TvLP source) and its key switch. Each gate's linear
/// combination is immediately reset by its bootstrap, so traces built
/// from levels are noise-clean by construction (`ufc-verify`'s LWE
/// rules). Zero-width levels emit nothing.
pub fn emit_gate_level(tr: &mut Trace, width: u32) {
    if width == 0 {
        return;
    }
    tr.push(TraceOp::TfheLinear { count: 2 * width });
    tr.push(TraceOp::TfhePbs { batch: width });
    tr.push(TraceOp::TfheKeySwitch { batch: width });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Full adder over three inputs: (sum, carry).
    fn full_adder(arena: &mut WireArena, a: Bit, b: Bit, c: Bit) -> (Bit, Bit) {
        let ab = arena.xor(a, b);
        let sum = arena.xor(ab, c);
        let t1 = arena.and(a, b);
        let t2 = arena.and(ab, c);
        let carry = arena.or(t1, t2);
        (sum, carry)
    }

    #[test]
    fn constant_folding_is_exhaustive() {
        for g in Gate::ALL {
            for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
                let mut arena = WireArena::new();
                let folded = arena.gate(g, Bit::Const(x), Bit::Const(y));
                assert_eq!(folded, Bit::Const(g.eval(x, y)));
                assert_eq!(arena.gates(), 0);

                // One const operand: fold must agree with the truth
                // table applied to a live wire.
                let mut arena = WireArena::new();
                let w = arena.input();
                let out = arena.gate(g, Bit::Const(x), w);
                let circuit = arena.finish("fold", vec![out]);
                assert_eq!(circuit.gate_count(), 0, "{g:?} const fold allocated");
                assert_eq!(circuit.eval(&[y])[0], g.eval(x, y), "{g:?}({x}, wire={y})");
            }
        }
    }

    #[test]
    fn same_wire_folding_matches_truth_table() {
        for g in Gate::ALL {
            for inv in [false, true] {
                for v in [false, true] {
                    let mut arena = WireArena::new();
                    let w = arena.input();
                    let rhs = if inv { !w } else { w };
                    let out = arena.gate(g, w, rhs);
                    let circuit = arena.finish("same", vec![out]);
                    assert_eq!(circuit.gate_count(), 0);
                    assert_eq!(circuit.eval(&[v])[0], g.eval(v, v ^ inv), "{g:?} inv={inv}");
                }
            }
        }
    }

    #[test]
    fn full_adder_truth_table_and_stats() {
        let mut arena = WireArena::new();
        let a = arena.input();
        let b = arena.input();
        let c = arena.input();
        let (sum, carry) = full_adder(&mut arena, a, b, c);
        let circuit = arena.finish("full-adder", vec![sum, carry]);
        assert_eq!(circuit.gate_count(), 5);
        assert_eq!(circuit.depth(), 3); // ab → t2 → carry
        for bits in 0..8u32 {
            let ins = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let total = ins.iter().filter(|&&x| x).count();
            let out = circuit.eval(&ins);
            assert_eq!(out[0], total % 2 == 1, "sum({ins:?})");
            assert_eq!(out[1], total >= 2, "carry({ins:?})");
        }
        let stats = circuit.stats();
        assert_eq!(stats.gates, 5);
        assert_eq!(stats.histogram["xor"], 2);
        assert_eq!(stats.histogram["and"], 2);
        assert_eq!(stats.histogram["or"], 1);
        assert_eq!(stats.max_width, 2); // levels: {ab, t1}, {sum, t2}, {carry}
    }

    #[test]
    fn trace_levels_match_widths() {
        let mut arena = WireArena::new();
        let a = arena.input();
        let b = arena.input();
        let c = arena.input();
        let (sum, carry) = full_adder(&mut arena, a, b, c);
        let circuit = arena.finish("full-adder", vec![sum, carry]);
        let tr = circuit.to_trace("T1");
        assert_eq!(tr.tfhe_params, Some("T1"));
        let widths: Vec<u32> = tr
            .ops
            .iter()
            .filter_map(|op| match op {
                TraceOp::TfhePbs { batch } => Some(*batch),
                _ => None,
            })
            .collect();
        assert_eq!(widths, circuit.levels());
        assert_eq!(widths.iter().sum::<u32>() as usize, circuit.gate_count());
    }

    #[test]
    fn encrypted_eval_matches_plaintext() {
        let ctx = TfheContext::new(64, 256, 7, 3, 6, 4);
        let mut rng = StdRng::seed_from_u64(0x5aa5);
        let keys = TfheKeys::generate(&ctx, &mut rng);

        let mut arena = WireArena::new();
        let a = arena.input();
        let b = arena.input();
        let c = arena.input();
        let (sum, carry) = full_adder(&mut arena, a, b, c);
        // Exercise inverted and constant outputs too.
        let circuit = arena.finish("full-adder", vec![sum, !carry, Bit::Const(true)]);

        for bits in [0b000u32, 0b011, 0b101, 0b111] {
            let ins = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let cts: Vec<LweCiphertext> = ins
                .iter()
                .map(|&v| gates::encrypt_bool(&ctx, &keys, v, &mut rng))
                .collect();
            let out = circuit.eval_encrypted(&ctx, &keys, &cts);
            let expect = circuit.eval(&ins);
            let got: Vec<bool> = out
                .iter()
                .map(|ct| gates::decrypt_bool(&ctx, &keys, ct))
                .collect();
            assert_eq!(got, expect, "inputs {ins:?}");
        }
    }
}
