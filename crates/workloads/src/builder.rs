//! A small program builder that tracks the CKKS level schedule while
//! emitting trace ops — the piece of the tracing tool that workload
//! generators share.

use ufc_isa::params::{ckks_params, CkksParams};
use ufc_isa::trace::{Trace, TraceOp};
use ufc_telemetry::MetricsRegistry;

/// Builds CKKS traces with automatic level tracking and bootstrap
/// insertion.
///
/// Every emitted op is also counted in a [`MetricsRegistry`] under
/// `op/<name>` (plus `builder/bootstraps`), so workload generators
/// report their op mix without re-walking the trace.
#[derive(Debug)]
pub struct CkksProgramBuilder {
    trace: Trace,
    params: CkksParams,
    level: u32,
    /// Bootstrap when the level falls to this floor.
    floor: u32,
    bootstrap_count: u32,
    metrics: MetricsRegistry,
}

impl CkksProgramBuilder {
    /// Creates a builder for a named workload and parameter set.
    ///
    /// # Panics
    ///
    /// Panics on an unknown parameter-set id.
    pub fn new(name: impl Into<String>, params_id: &'static str) -> Self {
        let params = ckks_params(params_id).expect("unknown CKKS parameter set");
        Self {
            trace: Trace::new(name).with_ckks(params_id),
            level: params.max_level(),
            params,
            floor: 4,
            bootstrap_count: 0,
            metrics: MetricsRegistry::new(),
        }
    }

    /// Current level.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Number of bootstraps inserted so far.
    pub fn bootstrap_count(&self) -> u32 {
        self.bootstrap_count
    }

    /// The op counters accumulated so far (`op/<name>` plus
    /// `builder/bootstraps`).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Finishes, returning the trace.
    pub fn build(self) -> Trace {
        self.trace
    }

    /// Finishes, returning the trace together with its op counters.
    pub fn build_with_metrics(self) -> (Trace, MetricsRegistry) {
        (self.trace, self.metrics)
    }

    /// Records and appends one op.
    fn emit(&mut self, op: TraceOp) {
        self.metrics.inc(&format!("op/{}", op.name()));
        self.trace.push(op);
    }

    fn ensure_depth(&mut self, needed: u32) {
        if self.level < self.floor + needed {
            self.bootstrap();
        }
    }

    /// Emits a ciphertext addition.
    pub fn add(&mut self) -> &mut Self {
        self.emit(TraceOp::CkksAdd { level: self.level });
        self
    }

    /// Emits a ciphertext × plaintext multiply followed by a rescale
    /// (consumes one level).
    pub fn mul_plain(&mut self) -> &mut Self {
        self.ensure_depth(1);
        self.emit(TraceOp::CkksMulPlain { level: self.level });
        self.emit(TraceOp::CkksRescale { level: self.level });
        self.level -= 1;
        self
    }

    /// Emits a ciphertext × ciphertext multiply (with key switch)
    /// followed by a rescale.
    pub fn mul_ct(&mut self) -> &mut Self {
        self.ensure_depth(1);
        self.emit(TraceOp::CkksMulCt { level: self.level });
        self.emit(TraceOp::CkksRescale { level: self.level });
        self.level -= 1;
        self
    }

    /// Emits a rotation (automorphism + key switch).
    pub fn rotate(&mut self, step: i32) -> &mut Self {
        self.emit(TraceOp::CkksRotate {
            level: self.level,
            step,
        });
        self
    }

    /// Emits `count` rotations with distinct steps (BSGS-style sums).
    pub fn rotations(&mut self, count: u32) -> &mut Self {
        for k in 0..count {
            self.rotate(1 << (k % 16));
        }
        self
    }

    /// Evaluates a polynomial of the given multiplicative depth with
    /// `muls` ct-ct multiplies (approximated activation functions).
    pub fn poly_eval(&mut self, depth: u32, muls: u32) -> &mut Self {
        self.ensure_depth(depth);
        for _ in 0..muls {
            self.emit(TraceOp::CkksMulCt { level: self.level });
        }
        for _ in 0..depth {
            self.emit(TraceOp::CkksRescale { level: self.level });
            self.level -= 1;
        }
        self
    }

    /// Emits one full CKKS bootstrap: ModRaise, CoeffToSlot (BSGS
    /// rotations + plaintext multiplies over 3 level-consuming
    /// stages), EvalMod (sine polynomial), SlotToCoeff. Resets the
    /// level to `max − bootstrap_depth`.
    pub fn bootstrap(&mut self) -> &mut Self {
        self.bootstrap_count += 1;
        self.metrics.inc("builder/bootstraps");
        self.emit(TraceOp::CkksModRaise {
            from_level: self.level,
        });
        self.level = self.params.max_level();
        // CoeffToSlot: 3 matrix stages, ~18 rotations + multiplies
        // each (minimum-key method of ARK, §VI-D1).
        for _ in 0..3 {
            for k in 0..18 {
                self.emit(TraceOp::CkksRotate {
                    level: self.level,
                    step: 1 << (k % 15),
                });
                self.emit(TraceOp::CkksMulPlain { level: self.level });
            }
            self.emit(TraceOp::CkksRescale { level: self.level });
            self.level -= 1;
        }
        self.trace
            .push(TraceOp::CkksConjugate { level: self.level });
        // EvalMod: degree-31 sine ladder — 8 ct-ct multiplies over 5
        // levels.
        for _ in 0..5 {
            for _ in 0..2 {
                self.emit(TraceOp::CkksMulCt { level: self.level });
            }
            self.emit(TraceOp::CkksRescale { level: self.level });
            self.level -= 1;
        }
        // SlotToCoeff: 3 more stages.
        for _ in 0..3 {
            for k in 0..18 {
                self.emit(TraceOp::CkksRotate {
                    level: self.level,
                    step: 1 << (k % 15),
                });
                self.emit(TraceOp::CkksMulPlain { level: self.level });
            }
            self.emit(TraceOp::CkksRescale { level: self.level });
            self.level -= 1;
        }
        debug_assert!(self.level >= self.floor);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_tracking() {
        let mut b = CkksProgramBuilder::new("t", "C1");
        let top = b.level();
        b.mul_ct().mul_ct().mul_plain();
        assert_eq!(b.level(), top - 3);
    }

    #[test]
    fn metrics_count_emitted_ops() {
        let mut b = CkksProgramBuilder::new("t", "C1");
        b.mul_ct().mul_ct().mul_plain().add().rotate(5);
        let (trace, metrics) = b.build_with_metrics();
        assert_eq!(metrics.get("op/CkksMulCt"), 2);
        assert_eq!(metrics.get("op/CkksMulPlain"), 1);
        assert_eq!(metrics.get("op/CkksRescale"), 3);
        assert_eq!(metrics.get("op/CkksAdd"), 1);
        assert_eq!(metrics.get("op/CkksRotate"), 1);
        // Counters and the trace histogram agree exactly.
        for (name, count) in trace.op_histogram() {
            assert_eq!(metrics.get(&format!("op/{name}")), count as u64);
        }
    }

    #[test]
    fn auto_bootstrap_on_depth_exhaustion() {
        let mut b = CkksProgramBuilder::new("t", "C1");
        for _ in 0..100 {
            b.mul_ct();
        }
        assert!(b.bootstrap_count() >= 3);
        assert!(b.level() >= 4);
        let tr = b.build();
        assert!(tr
            .ops
            .iter()
            .any(|op| matches!(op, TraceOp::CkksModRaise { .. })));
    }

    #[test]
    fn bootstrap_structure() {
        let mut b = CkksProgramBuilder::new("t", "C2");
        b.bootstrap();
        let tr = b.build();
        let rot = tr
            .ops
            .iter()
            .filter(|o| matches!(o, TraceOp::CkksRotate { .. }))
            .count();
        let mul = tr
            .ops
            .iter()
            .filter(|o| matches!(o, TraceOp::CkksMulCt { .. }))
            .count();
        assert_eq!(rot, 108, "6 stages × 18 rotations");
        assert_eq!(mul, 10, "EvalMod multiplies");
    }

    #[test]
    fn rescale_levels_are_consistent() {
        let mut b = CkksProgramBuilder::new("t", "C3");
        b.mul_ct().rotate(3).mul_plain().add();
        let tr = b.build();
        // Every rescale must be recorded at a level > 0.
        for op in &tr.ops {
            if let TraceOp::CkksRescale { level } = op {
                assert!(*level > 0);
            }
        }
    }
}
