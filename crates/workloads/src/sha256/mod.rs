//! Homomorphic SHA-256: the deepest boolean workload in the repo.
//!
//! SHA-256 as a TFHE gate circuit — message schedule, Ch/Maj/Σ₀/Σ₁/
//! σ₀/σ₁ and the 64 compression rounds, with ROTR/SHR as free wire
//! renumbering — built on the [`crate::gate_circuit`] wire arena and
//! emitted as a levelized [`ufc_isa::Trace`] for the compiler/
//! simulator pipeline. The workload is **its own oracle**: every
//! homomorphic or trace-level run is checked bit-for-bit against the
//! plaintext reference in [`reference`].
//!
//! Two adder families make scheduling depth vs. gate count a
//! measurable experiment ([`AdderKind`]): ripple-carry (fewest gates,
//! O(w) depth per addition — long thin levels the TvLP packer cannot
//! fill) and carry-save + Sklansky parallel-prefix (more gates,
//! O(log w) depth — short wide levels that saturate the lanes).
//!
//! The whole model is parameterized by [`ShaParams`]: word width
//! `w ∈ {8, 16, 32}` bits and `1..=64` rounds. `w = 32, rounds = 64`
//! is exact FIPS 180-4 SHA-256 (pinned against the NIST vectors);
//! reduced configurations shrink the state, block and digest
//! consistently so the host evaluator can run the full encrypt →
//! gate-circuit → decrypt path at test scale, still oracle-checked
//! against the same-config plaintext model.

pub mod circuit;
pub mod host;
pub mod reference;

pub use circuit::compression_circuit;

use ufc_isa::trace::Trace;

/// Adder family used for every multi-bit addition in the circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdderKind {
    /// Ripple-carry: 5 gates per bit per two-operand add, carry chain
    /// of depth ~2 per bit. Minimal gates, maximal depth.
    Ripple,
    /// Carry-save reduction of multi-operand sums to two addends,
    /// then one Sklansky parallel-prefix adder: ~2 + 2·log₂w depth
    /// per add at higher gate count. Minimal depth, maximal
    /// gate-level parallelism.
    Prefix,
}

impl AdderKind {
    /// Both variants, for sweeps.
    pub const ALL: [AdderKind; 2] = [AdderKind::Ripple, AdderKind::Prefix];

    /// Short label for names and benchmark tables.
    pub fn label(&self) -> &'static str {
        match self {
            AdderKind::Ripple => "ripple",
            AdderKind::Prefix => "prefix",
        }
    }
}

/// The round constants of FIPS 180-4 §4.2.2 (cube-root fractions of
/// the first 64 primes). Reduced widths use the low `w` bits.
pub const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// The initial hash value of FIPS 180-4 §5.3.3 (square-root
/// fractions of the first 8 primes). Reduced widths use the low `w`
/// bits.
pub const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Model parameters: word width and round count.
///
/// All FIPS 180-4 structure is kept — 16-word blocks, 8-word state,
/// the same rotation constants (taken mod `w`) — so
/// [`ShaParams::FULL`] is exact SHA-256 and every reduced
/// configuration has a matching plaintext oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShaParams {
    /// Word width in bits: 8, 16, or 32.
    pub word_bits: u32,
    /// Compression rounds per block: 1..=64.
    pub rounds: u32,
}

impl ShaParams {
    /// Exact FIPS 180-4 SHA-256.
    pub const FULL: ShaParams = ShaParams {
        word_bits: 32,
        rounds: 64,
    };

    /// A validated reduced (or full) configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `word_bits ∈ {8, 16, 32}` and `rounds ∈ 1..=64`.
    pub fn new(word_bits: u32, rounds: u32) -> ShaParams {
        assert!(
            matches!(word_bits, 8 | 16 | 32),
            "word_bits must be 8, 16 or 32 (got {word_bits})"
        );
        assert!(
            (1..=64).contains(&rounds),
            "rounds must be in 1..=64 (got {rounds})"
        );
        ShaParams { word_bits, rounds }
    }

    /// Low-`w`-bits mask.
    pub fn mask(&self) -> u32 {
        if self.word_bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.word_bits) - 1
        }
    }

    /// Block size: 16 words = `2w` bytes (64 for full SHA-256).
    pub fn block_bytes(&self) -> usize {
        2 * self.word_bits as usize
    }

    /// Length-field size: the message bit length occupies two words
    /// (8 bytes for full SHA-256).
    pub fn len_bytes(&self) -> usize {
        self.word_bits as usize / 4
    }

    /// Digest size: 8 words = `w` bytes (32 for full SHA-256).
    pub fn digest_bytes(&self) -> usize {
        self.word_bits as usize
    }

    /// Σ₀ rotation amounts (mod `w`).
    pub fn big_sigma0(&self) -> [u32; 3] {
        [2, 13, 22].map(|r| r % self.word_bits)
    }

    /// Σ₁ rotation amounts (mod `w`).
    pub fn big_sigma1(&self) -> [u32; 3] {
        [6, 11, 25].map(|r| r % self.word_bits)
    }

    /// σ₀ rotations and shift (mod `w`).
    pub fn small_sigma0(&self) -> ([u32; 2], u32) {
        (
            [7 % self.word_bits, 18 % self.word_bits],
            3 % self.word_bits,
        )
    }

    /// σ₁ rotations and shift (mod `w`).
    pub fn small_sigma1(&self) -> ([u32; 2], u32) {
        (
            [17 % self.word_bits, 19 % self.word_bits],
            10 % self.word_bits,
        )
    }

    /// Truncated round constant.
    pub fn k(&self, t: usize) -> u32 {
        K[t] & self.mask()
    }

    /// Truncated initial state.
    pub fn h0(&self) -> [u32; 8] {
        H0.map(|h| h & self.mask())
    }
}

/// Emits `blocks` chained compression circuits as one levelized
/// trace (state enters encrypted, so every block shares one circuit
/// shape). This is the trace the acceptance experiment compiles and
/// simulates: per-level PBS batch widths are the TvLP source, and
/// the level count is the bootstrap critical path.
pub fn generate(params: &'static str, p: &ShaParams, adder: AdderKind, blocks: u32) -> Trace {
    let circuit = compression_circuit(p, adder, None);
    let mut tr = Trace::new(format!(
        "SHA256[w{},r{},{}]x{blocks}/{params}",
        p.word_bits,
        p.rounds,
        adder.label()
    ))
    .with_tfhe(params);
    let levels = circuit.levels();
    for _ in 0..blocks {
        for &width in &levels {
            crate::gate_circuit::emit_gate_level(&mut tr, width);
        }
    }
    tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_isa::trace::TraceOp;

    #[test]
    fn full_params_are_fips_shapes() {
        let p = ShaParams::FULL;
        assert_eq!(p.block_bytes(), 64);
        assert_eq!(p.len_bytes(), 8);
        assert_eq!(p.digest_bytes(), 32);
        assert_eq!(p.big_sigma0(), [2, 13, 22]);
        assert_eq!(p.small_sigma1(), ([17, 19], 10));
        assert_eq!(p.k(0), 0x428a2f98);
        assert_eq!(p.h0()[0], 0x6a09e667);
    }

    #[test]
    fn reduced_params_truncate_consistently() {
        let p = ShaParams::new(8, 4);
        assert_eq!(p.mask(), 0xff);
        assert_eq!(p.block_bytes(), 16);
        assert_eq!(p.len_bytes(), 2);
        assert_eq!(p.digest_bytes(), 8);
        assert_eq!(p.big_sigma0(), [2, 5, 6]);
        assert_eq!(p.k(1), 0x91); // 0x71374491 & 0xff
    }

    #[test]
    #[should_panic(expected = "word_bits")]
    fn rejects_unsupported_width() {
        let _ = ShaParams::new(12, 4);
    }

    #[test]
    fn trace_repeats_block_levels() {
        let p = ShaParams::new(8, 2);
        let one = generate("T1", &p, AdderKind::Ripple, 1);
        let three = generate("T1", &p, AdderKind::Ripple, 3);
        assert_eq!(three.len(), 3 * one.len());
        assert_eq!(one.tfhe_params, Some("T1"));
        let pbs_gates = |tr: &Trace| -> u32 {
            tr.ops
                .iter()
                .filter_map(|op| match op {
                    TraceOp::TfhePbs { batch } => Some(*batch),
                    _ => None,
                })
                .sum()
        };
        let circuit = compression_circuit(&p, AdderKind::Ripple, None);
        assert_eq!(pbs_gates(&one) as usize, circuit.gate_count());
        assert_eq!(pbs_gates(&three) as usize, 3 * circuit.gate_count());
    }
}
