//! Host-side homomorphic SHA-256 on the real `ufc-tfhe` evaluator.
//!
//! Runs the full pipeline — pad, encrypt the chaining state and each
//! message block bit-by-bit, evaluate the compression circuit gate by
//! bootstrapped gate, chain ciphertext state across blocks, decrypt —
//! and checks the digest bit-for-bit against the plaintext reference.
//! Stage boundaries are `ufc-trace` spans (category `workload`), so
//! `ufc-profile --host`-style tooling attributes the wall time to
//! keygen / encrypt / gate evaluation / decrypt.
//!
//! Reduced configurations ([`ShaParams::new`]) keep this tractable in
//! CI; the full-width single-block run sits behind an `#[ignore]`d
//! test and the scheduled CI job.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ufc_tfhe::gates::{decrypt_bool, encrypt_bool};
use ufc_tfhe::{LweCiphertext, TfheContext, TfheKeys};

use super::{circuit, reference, AdderKind, ShaParams};

/// Result of one homomorphic digest run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostDigest {
    /// Digest decrypted from the homomorphic run.
    pub digest: Vec<u8>,
    /// Plaintext reference digest of the same message and config.
    pub reference: Vec<u8>,
    /// Blocks processed (after padding).
    pub blocks: usize,
    /// Bootstrapped gates evaluated across all blocks.
    pub gates: usize,
}

impl HostDigest {
    /// Whether the homomorphic digest matches the oracle.
    pub fn matches(&self) -> bool {
        self.digest == self.reference
    }
}

/// The test-scale TFHE context the gate suites use (`n = 64`,
/// `N = 256`): small enough for host evaluation, sound enough that
/// every bootstrapped gate decrypts correctly.
pub fn test_context() -> TfheContext {
    TfheContext::new(64, 256, 7, 3, 6, 4)
}

/// Homomorphic digest with caller-provided context/keys (lets tests
/// amortize keygen across cases).
pub fn hom_digest_with(
    ctx: &TfheContext,
    keys: &TfheKeys,
    rng: &mut StdRng,
    p: &ShaParams,
    adder: AdderKind,
    msg: &[u8],
) -> HostDigest {
    let _span = ufc_trace::span_tagged("workload", "sha256_host", adder.label());
    let circuit = {
        let _s = ufc_trace::span("workload", "sha256_build_circuit");
        circuit::compression_circuit(p, adder, None)
    };
    let padded = reference::pad(p, msg);
    let blocks = padded.len() / p.block_bytes();

    let mut state_cts: Vec<LweCiphertext> = {
        let _s = ufc_trace::span("workload", "sha256_encrypt");
        circuit::state_input_bits(p, &p.h0())
            .into_iter()
            .map(|bit| encrypt_bool(ctx, keys, bit, rng))
            .collect()
    };

    for block in padded.chunks(p.block_bytes()) {
        let _s = ufc_trace::span_n("workload", "sha256_block", circuit.gate_count() as u64);
        let mut inputs = state_cts;
        {
            let _e = ufc_trace::span("workload", "sha256_encrypt");
            inputs.extend(
                circuit::block_input_bits(p, block)
                    .into_iter()
                    .map(|bit| encrypt_bool(ctx, keys, bit, rng)),
            );
        }
        state_cts = circuit.eval_encrypted(ctx, keys, &inputs);
    }

    let digest = {
        let _s = ufc_trace::span("workload", "sha256_decrypt");
        let bits: Vec<bool> = state_cts
            .iter()
            .map(|ct| decrypt_bool(ctx, keys, ct))
            .collect();
        reference::state_bytes(p, &circuit::state_from_bits(p, &bits))
    };

    HostDigest {
        digest,
        reference: reference::digest(p, msg),
        blocks,
        gates: circuit.gate_count() * blocks,
    }
}

/// Convenience wrapper: seeded RNG, test-scale context, fresh keys.
pub fn hom_digest(p: &ShaParams, adder: AdderKind, msg: &[u8], seed: u64) -> HostDigest {
    let ctx = test_context();
    let mut rng = StdRng::seed_from_u64(seed);
    let keys = {
        let _s = ufc_trace::span("workload", "sha256_keygen");
        TfheKeys::generate(&ctx, &mut rng)
    };
    hom_digest_with(&ctx, &keys, &mut rng, p, adder, msg)
}
