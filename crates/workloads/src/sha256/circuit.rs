//! The SHA-256 compression function as a wire-arena gate circuit.
//!
//! Everything FIPS 180-4 computes with rotations and shifts is free
//! here — ROTR/SHR are index renumbering over LSB-first bit vectors,
//! NOT is an operand flag — so the bootstrapped-gate cost is exactly
//! the boolean algebra: Ch (3 gates/bit), Maj (4), Σ/σ (2), and the
//! additions, where the [`AdderKind`] choice sets the experiment:
//!
//! * **ripple**: each 2-operand add is 5 gates/bit with an O(w)
//!   carry chain — the circuit is deep and thin;
//! * **prefix**: multi-operand sums first collapse through carry-save
//!   adders (5 gates/bit, depth 2 per layer), then one Sklansky
//!   parallel-prefix adder of depth ~2 + 2·log₂w — the circuit is
//!   shallow and wide.
//!
//! Round constants and (optionally) the initial state are public, so
//! the arena folds them through gates at build time: adding a
//! constant word costs measurably fewer gates than adding two
//! encrypted words.

use crate::gate_circuit::{Bit, GateCircuit, WireArena};

use super::{reference, AdderKind, ShaParams};

/// A `w`-bit word as LSB-first circuit bits.
type Word = Vec<Bit>;

struct Builder {
    arena: WireArena,
    p: ShaParams,
    adder: AdderKind,
}

impl Builder {
    fn w(&self) -> usize {
        self.p.word_bits as usize
    }

    fn const_word(&self, v: u32) -> Word {
        (0..self.w())
            .map(|i| Bit::Const((v >> i) & 1 == 1))
            .collect()
    }

    fn input_word(&mut self) -> Word {
        (0..self.w()).map(|_| self.arena.input()).collect()
    }

    /// Free rotate right: bit `i` of the result is bit `(i + r) mod w`.
    fn rotr(&self, x: &Word, r: u32) -> Word {
        let w = self.w();
        (0..w).map(|i| x[(i + r as usize) % w]).collect()
    }

    /// Free shift right: high bits fill with constants and fold away.
    fn shr(&self, x: &Word, r: u32) -> Word {
        let w = self.w();
        (0..w)
            .map(|i| {
                if i + (r as usize) < w {
                    x[i + r as usize]
                } else {
                    Bit::Const(false)
                }
            })
            .collect()
    }

    fn xor3(&mut self, a: &Word, b: &Word, c: &Word) -> Word {
        (0..self.w())
            .map(|i| {
                let ab = self.arena.xor(a[i], b[i]);
                self.arena.xor(ab, c[i])
            })
            .collect()
    }

    /// Σ(x) = ROTR^r0 ⊕ ROTR^r1 ⊕ ROTR^r2 — two gates per bit.
    fn big_sigma(&mut self, x: &Word, rots: [u32; 3]) -> Word {
        let (a, b, c) = (
            self.rotr(x, rots[0]),
            self.rotr(x, rots[1]),
            self.rotr(x, rots[2]),
        );
        self.xor3(&a, &b, &c)
    }

    /// σ(x) = ROTR^r0 ⊕ ROTR^r1 ⊕ SHR^s.
    fn small_sigma(&mut self, x: &Word, rots: [u32; 2], shift: u32) -> Word {
        let (a, b, c) = (
            self.rotr(x, rots[0]),
            self.rotr(x, rots[1]),
            self.shr(x, shift),
        );
        self.xor3(&a, &b, &c)
    }

    /// Ch(e, f, g) = (e ∧ f) ⊕ (¬e ∧ g) — three gates per bit, the
    /// NOT is free.
    fn ch(&mut self, e: &Word, f: &Word, g: &Word) -> Word {
        (0..self.w())
            .map(|i| {
                let ef = self.arena.and(e[i], f[i]);
                let eg = self.arena.and(!e[i], g[i]);
                self.arena.xor(ef, eg)
            })
            .collect()
    }

    /// Maj(a, b, c) = (a ∧ b) ⊕ ((a ⊕ b) ∧ c) — four gates per bit.
    fn maj(&mut self, a: &Word, b: &Word, c: &Word) -> Word {
        (0..self.w())
            .map(|i| {
                let t = self.arena.xor(a[i], b[i]);
                let tc = self.arena.and(t, c[i]);
                let ab = self.arena.and(a[i], b[i]);
                self.arena.xor(tc, ab)
            })
            .collect()
    }

    /// Ripple-carry addition mod 2^w: the carry out of the top bit is
    /// dropped, so its generate gates are never built.
    fn ripple_add(&mut self, a: &Word, b: &Word) -> Word {
        let w = self.w();
        let mut carry = Bit::Const(false);
        let mut sum = Vec::with_capacity(w);
        for i in 0..w {
            let x = self.arena.xor(a[i], b[i]);
            sum.push(self.arena.xor(x, carry));
            if i < w - 1 {
                let g = self.arena.and(a[i], b[i]);
                let t = self.arena.and(x, carry);
                carry = self.arena.or(g, t);
            }
        }
        sum
    }

    /// Sklansky parallel-prefix addition mod 2^w: generate/propagate,
    /// log₂w combine stages, sum. Dead combines (the dropped carry
    /// out, and propagate terms past the last stage) are skipped so
    /// the gate count reflects live logic only.
    fn sklansky_add(&mut self, a: &Word, b: &Word) -> Word {
        let w = self.w();
        let mut g: Vec<Bit> = (0..w).map(|i| self.arena.and(a[i], b[i])).collect();
        let p_orig: Vec<Bit> = (0..w).map(|i| self.arena.xor(a[i], b[i])).collect();
        let mut p = p_orig.clone();
        let mut d = 0usize;
        while (1 << d) < w {
            let last_stage = (1 << (d + 1)) >= w;
            for i in 0..w - 1 {
                // g[w-1] is the dropped carry out; its chain is dead.
                if (i >> d) & 1 == 1 {
                    let j = ((i >> d) << d) - 1;
                    let t = self.arena.and(p[i], g[j]);
                    g[i] = self.arena.or(g[i], t);
                    if !last_stage {
                        p[i] = self.arena.and(p[i], p[j]);
                    }
                }
            }
            d += 1;
        }
        let mut sum = Vec::with_capacity(w);
        sum.push(p_orig[0]);
        for i in 1..w {
            sum.push(self.arena.xor(p_orig[i], g[i - 1]));
        }
        sum
    }

    /// Carry-save adder: three addends to (sum, carry) in depth 2.
    fn csa(&mut self, a: &Word, b: &Word, c: &Word) -> (Word, Word) {
        let w = self.w();
        let mut sum = Vec::with_capacity(w);
        let mut carry = Vec::with_capacity(w);
        carry.push(Bit::Const(false));
        for i in 0..w {
            let x = self.arena.xor(a[i], b[i]);
            sum.push(self.arena.xor(x, c[i]));
            if i < w - 1 {
                let g = self.arena.and(a[i], b[i]);
                let t = self.arena.and(x, c[i]);
                carry.push(self.arena.or(g, t));
            }
        }
        (sum, carry)
    }

    fn add2(&mut self, a: &Word, b: &Word) -> Word {
        match self.adder {
            AdderKind::Ripple => self.ripple_add(a, b),
            AdderKind::Prefix => self.sklansky_add(a, b),
        }
    }

    /// Multi-operand addition mod 2^w. Ripple folds left; prefix
    /// reduces through carry-save layers to two addends first, so a
    /// 5-operand sum costs ~3 CSA layers of depth 2 plus one
    /// logarithmic adder instead of four carry chains.
    fn add_many(&mut self, words: &[Word]) -> Word {
        assert!(!words.is_empty());
        match self.adder {
            AdderKind::Ripple => {
                let mut acc = words[0].clone();
                for w in &words[1..] {
                    acc = self.ripple_add(&acc, w);
                }
                acc
            }
            AdderKind::Prefix => {
                let mut ws: Vec<Word> = words.to_vec();
                while ws.len() > 2 {
                    let mut next = Vec::with_capacity(ws.len().div_ceil(3) * 2);
                    for group in ws.chunks(3) {
                        match group {
                            [a, b, c] => {
                                let (s, k) = self.csa(a, b, c);
                                next.push(s);
                                next.push(k);
                            }
                            rest => next.extend_from_slice(rest),
                        }
                    }
                    ws = next;
                }
                if ws.len() == 1 {
                    ws.pop().expect("nonempty")
                } else {
                    self.sklansky_add(&ws[0], &ws[1])
                }
            }
        }
    }
}

/// Builds one compression-function circuit.
///
/// Inputs, in arena order (each word LSB-first):
/// * with `iv: None` — the 8 chaining-state words (encrypted, so the
///   same circuit chains across blocks), then the 16 message words;
/// * with `iv: Some(state)` — the state is a public constant that
///   folds into the logic; only the 16 message words are inputs.
///
/// Outputs: the 8 updated state words, flattened LSB-first.
pub fn compression_circuit(p: &ShaParams, adder: AdderKind, iv: Option<[u32; 8]>) -> GateCircuit {
    let mut b = Builder {
        arena: WireArena::new(),
        p: *p,
        adder,
    };
    let state: Vec<Word> = match iv {
        Some(words) => words.iter().map(|&v| b.const_word(v & p.mask())).collect(),
        None => (0..8).map(|_| b.input_word()).collect(),
    };
    let mut w: Vec<Word> = (0..16.min(p.rounds as usize))
        .map(|_| b.input_word())
        .collect();
    // Message inputs beyond the round count still exist (a block is
    // always 16 words) but feed nothing.
    for _ in w.len()..16 {
        let _ = b.input_word();
    }
    let (s0_rots, s0_shift) = p.small_sigma0();
    let (s1_rots, s1_shift) = p.small_sigma1();
    for t in 16..p.rounds as usize {
        let s0 = b.small_sigma(&w[t - 15], s0_rots, s0_shift);
        let s1 = b.small_sigma(&w[t - 2], s1_rots, s1_shift);
        let wt = b.add_many(&[w[t - 16].clone(), s0, w[t - 7].clone(), s1]);
        w.push(wt);
    }

    let [mut a, mut bb, mut c, mut d, mut e, mut f, mut g, mut h] =
        <[Word; 8]>::try_from(state).expect("eight state words");
    for (t, wt) in w.iter().enumerate().take(p.rounds as usize) {
        let sig1 = b.big_sigma(&e, p.big_sigma1());
        let ch = b.ch(&e, &f, &g);
        let k = b.const_word(p.k(t));
        let t1 = b.add_many(&[h.clone(), sig1, ch, k, wt.clone()]);
        let sig0 = b.big_sigma(&a, p.big_sigma0());
        let maj = b.maj(&a, &bb, &c);
        let t2 = b.add2(&sig0, &maj);
        h = g;
        g = f;
        f = e;
        e = b.add2(&d, &t1);
        d = c;
        c = bb;
        bb = a;
        a = b.add2(&t1, &t2);
    }

    let working = [a, bb, c, d, e, f, g, h];
    let mut outputs = Vec::with_capacity(8 * p.word_bits as usize);
    match iv {
        Some(words) => {
            for (i, wk) in working.iter().enumerate() {
                let cw = b.const_word(words[i] & p.mask());
                let out = b.add2(&cw, wk);
                outputs.extend(out);
            }
        }
        None => {
            // Re-read the state inputs (nodes 0..8w in arena order).
            for (i, wk) in working.iter().enumerate() {
                let sin: Word = (0..p.word_bits)
                    .map(|bit| Bit::Wire {
                        node: i as u32 * p.word_bits + bit,
                        invert: false,
                    })
                    .collect();
                let out = b.add2(&sin, wk);
                outputs.extend(out);
            }
        }
    }

    let name = format!("sha256[w{},r{},{}]", p.word_bits, p.rounds, adder.label());
    b.arena.finish(name, outputs)
}

/// A `u32` as LSB-first bools (low `w` bits).
pub fn word_bits_lsb(p: &ShaParams, v: u32) -> Vec<bool> {
    (0..p.word_bits).map(|i| (v >> i) & 1 == 1).collect()
}

/// The chaining-state input bits of a `iv: None` circuit.
pub fn state_input_bits(p: &ShaParams, state: &[u32; 8]) -> Vec<bool> {
    state.iter().flat_map(|&v| word_bits_lsb(p, v)).collect()
}

/// The message input bits for one padded block (16 big-endian words,
/// LSB-first bits).
pub fn block_input_bits(p: &ShaParams, block: &[u8]) -> Vec<bool> {
    reference::block_words(p, block)
        .iter()
        .flat_map(|&v| word_bits_lsb(p, v))
        .collect()
}

/// Decodes the 8 output state words from circuit output bits.
///
/// # Panics
///
/// Panics unless `bits` holds exactly `8w` values.
pub fn state_from_bits(p: &ShaParams, bits: &[bool]) -> [u32; 8] {
    assert_eq!(bits.len(), 8 * p.word_bits as usize);
    let mut state = [0u32; 8];
    for (i, word) in bits.chunks(p.word_bits as usize).enumerate() {
        state[i] = word
            .iter()
            .enumerate()
            .fold(0u32, |acc, (bit, &v)| acc | ((v as u32) << bit));
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the circuit in plaintext over `msg` and compares with the
    /// reference digest.
    fn circuit_digest(p: &ShaParams, adder: AdderKind, msg: &[u8]) -> Vec<u8> {
        let circuit = compression_circuit(p, adder, None);
        let padded = reference::pad(p, msg);
        let mut state = p.h0();
        for block in padded.chunks(p.block_bytes()) {
            let mut inputs = state_input_bits(p, &state);
            inputs.extend(block_input_bits(p, block));
            let out = circuit.eval(&inputs);
            state = state_from_bits(p, &out);
        }
        reference::state_bytes(p, &state)
    }

    #[test]
    fn full_width_both_adders_match_reference() {
        let p = ShaParams::FULL;
        for adder in AdderKind::ALL {
            for msg in [
                &b"abc"[..],
                b"",
                b"The quick brown fox jumps over the lazy dog",
            ] {
                assert_eq!(
                    circuit_digest(&p, adder, msg),
                    reference::digest(&p, msg),
                    "{} on {msg:?}",
                    adder.label()
                );
            }
        }
    }

    #[test]
    fn reduced_configs_both_adders_match_reference() {
        for (wbits, rounds) in [(8, 1), (8, 4), (16, 17), (32, 20)] {
            let p = ShaParams::new(wbits, rounds);
            for adder in AdderKind::ALL {
                for msg in [&b""[..], b"a", b"abc", &[0xffu8; 33]] {
                    assert_eq!(
                        circuit_digest(&p, adder, msg),
                        reference::digest(&p, msg),
                        "w={wbits} r={rounds} {}",
                        adder.label()
                    );
                }
            }
        }
    }

    #[test]
    fn iv_folding_matches_state_input_circuit() {
        let p = ShaParams::new(8, 4);
        for adder in AdderKind::ALL {
            let folded = compression_circuit(&p, adder, Some(p.h0()));
            let chained = compression_circuit(&p, adder, None);
            let block = reference::pad(&p, b"xy");
            let inputs = block_input_bits(&p, &block);
            let mut chained_inputs = state_input_bits(&p, &p.h0());
            chained_inputs.extend(inputs.iter().copied());
            assert_eq!(
                state_from_bits(&p, &folded.eval(&inputs)),
                state_from_bits(&p, &chained.eval(&chained_inputs)),
            );
            // Folding a public IV must save gates.
            assert!(
                folded.gate_count() < chained.gate_count(),
                "{}: {} !< {}",
                adder.label(),
                folded.gate_count(),
                chained.gate_count()
            );
        }
    }

    #[test]
    fn prefix_is_shallower_and_wider_than_ripple() {
        // Only at w ≥ 16: at w = 8 chained ripple adds overlap their
        // carry chains into a wavefront as shallow as the prefix
        // tree, so the depth advantage only appears once the carry
        // chain (O(w)) clearly exceeds the prefix depth (O(log w)) —
        // exactly the tradeoff the bench experiment measures.
        for p in [
            ShaParams::new(16, 8),
            ShaParams::new(32, 2),
            ShaParams::FULL,
        ] {
            let ripple = compression_circuit(&p, AdderKind::Ripple, None);
            let prefix = compression_circuit(&p, AdderKind::Prefix, None);
            assert!(
                prefix.depth() < ripple.depth(),
                "depth {} !< {}",
                prefix.depth(),
                ripple.depth()
            );
            let rs = ripple.stats();
            let ps = prefix.stats();
            assert!(ps.mean_width > rs.mean_width);
        }
    }

    #[test]
    fn full_block_is_tens_of_thousands_of_gates() {
        let stats = compression_circuit(&ShaParams::FULL, AdderKind::Ripple, None).stats();
        assert!(
            stats.gates > 20_000,
            "full SHA-256 block should be tens of thousands of gates, got {}",
            stats.gates
        );
        assert_eq!(stats.inputs, 8 * 32 + 16 * 32);
        assert_eq!(stats.outputs, 8 * 32);
    }
}
