//! Plaintext reference model — the oracle every homomorphic and
//! trace-level SHA-256 run is checked against.
//!
//! At [`ShaParams::FULL`] this is exact FIPS 180-4 SHA-256 (pinned
//! against the NIST vectors in the test suite); reduced
//! configurations keep the identical structure over `w`-bit words so
//! the gate circuit in [`super::circuit`] always has a bit-exact
//! plaintext twin.

use super::ShaParams;

/// `w`-bit rotate right.
fn rotr(p: &ShaParams, x: u32, r: u32) -> u32 {
    if r == 0 {
        return x & p.mask();
    }
    ((x >> r) | (x << (p.word_bits - r))) & p.mask()
}

fn big_sigma(p: &ShaParams, x: u32, rots: [u32; 3]) -> u32 {
    rotr(p, x, rots[0]) ^ rotr(p, x, rots[1]) ^ rotr(p, x, rots[2])
}

fn small_sigma(p: &ShaParams, x: u32, rots: [u32; 2], shift: u32) -> u32 {
    rotr(p, x, rots[0]) ^ rotr(p, x, rots[1]) ^ ((x & p.mask()) >> shift)
}

fn add(p: &ShaParams, a: u32, b: u32) -> u32 {
    a.wrapping_add(b) & p.mask()
}

/// FIPS 180-4 §5.1.1 padding, generalized to `2w`-byte blocks with a
/// two-word length field: append `0x80`, zero-fill to the length
/// boundary, append the message **bit** length big-endian.
///
/// # Panics
///
/// Panics if the bit length does not fit the `2w`-bit length field
/// (only reachable for reduced widths).
pub fn pad(p: &ShaParams, msg: &[u8]) -> Vec<u8> {
    let block = p.block_bytes();
    let len_bytes = p.len_bytes();
    let bit_len = msg.len() as u128 * 8;
    assert!(
        bit_len < 1u128 << (2 * p.word_bits),
        "message too long for the {}-bit length field",
        2 * p.word_bits
    );
    let mut out = msg.to_vec();
    out.push(0x80);
    while out.len() % block != block - len_bytes {
        out.push(0);
    }
    for i in (0..len_bytes).rev() {
        out.push((bit_len >> (8 * i)) as u8);
    }
    debug_assert_eq!(out.len() % block, 0);
    out
}

/// The 16 big-endian message words of one padded block.
///
/// # Panics
///
/// Panics if `block` is not exactly [`ShaParams::block_bytes`] long.
pub fn block_words(p: &ShaParams, block: &[u8]) -> [u32; 16] {
    assert_eq!(block.len(), p.block_bytes(), "exactly one block");
    let bytes = p.word_bits as usize / 8;
    let mut words = [0u32; 16];
    for (i, chunk) in block.chunks(bytes).enumerate() {
        words[i] = chunk.iter().fold(0u32, |acc, &b| (acc << 8) | b as u32);
    }
    words
}

/// One compression over a padded block (§6.2.2, truncated to
/// `p.rounds` rounds).
pub fn compress(p: &ShaParams, state: &mut [u32; 8], block: &[u8]) {
    let words = block_words(p, block);
    let mut w = [0u32; 64];
    let (s0_rots, s0_shift) = p.small_sigma0();
    let (s1_rots, s1_shift) = p.small_sigma1();
    for t in 0..p.rounds as usize {
        w[t] = if t < 16 {
            words[t]
        } else {
            let s0 = small_sigma(p, w[t - 15], s0_rots, s0_shift);
            let s1 = small_sigma(p, w[t - 2], s1_rots, s1_shift);
            add(p, add(p, add(p, w[t - 16], s0), w[t - 7]), s1)
        };
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for (t, &wt) in w.iter().enumerate().take(p.rounds as usize) {
        let ch = (e & f) ^ (!e & g & p.mask());
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t1 = add(
            p,
            add(
                p,
                add(p, add(p, h, big_sigma(p, e, p.big_sigma1())), ch),
                p.k(t),
            ),
            wt,
        );
        let t2 = add(p, big_sigma(p, a, p.big_sigma0()), maj);
        h = g;
        g = f;
        f = e;
        e = add(p, d, t1);
        d = c;
        c = b;
        b = a;
        a = add(p, t1, t2);
    }
    for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *s = add(p, *s, v);
    }
}

/// The digest of `msg`: pad, compress every block from the truncated
/// initial state, serialize the 8 state words big-endian.
pub fn digest(p: &ShaParams, msg: &[u8]) -> Vec<u8> {
    let padded = pad(p, msg);
    let mut state = p.h0();
    for block in padded.chunks(p.block_bytes()) {
        compress(p, &mut state, block);
    }
    state_bytes(p, &state)
}

/// Serializes a state as the digest byte string (big-endian words).
pub fn state_bytes(p: &ShaParams, state: &[u32; 8]) -> Vec<u8> {
    let bytes = p.word_bits as usize / 8;
    let mut out = Vec::with_capacity(p.digest_bytes());
    for &word in state {
        for i in (0..bytes).rev() {
            out.push((word >> (8 * i)) as u8);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-4 / NIST CAVP known-answer vectors.
    #[test]
    fn nist_vector_abc() {
        let d = digest(&ShaParams::FULL, b"abc");
        assert_eq!(
            hex(&d),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_vector_empty() {
        let d = digest(&ShaParams::FULL, b"");
        assert_eq!(
            hex(&d),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_vector_two_blocks() {
        let d = digest(
            &ShaParams::FULL,
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        );
        assert_eq!(
            hex(&d),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_vector_million_a() {
        let msg = vec![b'a'; 1_000_000];
        let d = digest(&ShaParams::FULL, &msg);
        assert_eq!(
            hex(&d),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn padding_boundaries() {
        let p = ShaParams::FULL;
        // 55 bytes: fits one block with the 9 padding bytes exactly.
        assert_eq!(pad(&p, &[0u8; 55]).len(), 64);
        // 56 bytes: the 0x80 no longer fits before the length field.
        assert_eq!(pad(&p, &[0u8; 56]).len(), 128);
        assert_eq!(pad(&p, &[0u8; 64]).len(), 128);
        assert_eq!(pad(&p, &[]).len(), 64);
    }

    #[test]
    fn reduced_width_digest_is_stable() {
        // Pinned so reduced-config oracles can't drift silently: the
        // circuit tests, host path and bench all compare against this
        // model.
        let p = ShaParams::new(8, 4);
        assert_eq!(hex(&digest(&p, b"abc")), "629da76b0ac42c9e");
    }
}
