//! Compilation options: packing strategy and machine-width hints.

/// Parallelism source used to pack small (logic-scheme) polynomials
/// across the machine's lanes (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Packing {
    /// No packing: each polynomial occupies only its own lanes
    /// (baseline; the rest of the hardware idles).
    None,
    /// Polynomial-level parallelism only: the two polynomials of each
    /// RLWE ciphertext are processed together.
    Plp,
    /// Column-level parallelism (+PLP): the `2·g_k` decomposed
    /// polynomials of each external product are packed. Requires a
    /// shuffle pass to restore the continuous layout and holds more
    /// bootstrapping-key columns on chip.
    ColpPlp,
    /// Test-vector-level parallelism (+PLP): independent bootstraps
    /// are batched so the bootstrapping key is loaded once per batch
    /// (lowest memory-bandwidth pressure — the paper's default).
    TvlpPlp,
}

impl Packing {
    /// Short display label used in benchmark tables.
    pub fn label(&self) -> &'static str {
        match self {
            Packing::None => "none",
            Packing::Plp => "PLP",
            Packing::ColpPlp => "CoLP+PLP",
            Packing::TvlpPlp => "TvLP+PLP",
        }
    }
}

/// Options controlling lowering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileOptions {
    /// Packing strategy for logic-scheme ops.
    pub packing: Packing,
    /// Total machine lanes (UFC: 64 PEs × 256 = 16384), the packing
    /// width target.
    pub total_lanes: u32,
    /// TvLP batch width cap (how many test vectors are interleaved).
    pub max_batch: u32,
    /// Scratchpad capacity the spill model checks working sets
    /// against (Table II: 256 MB on-chip SRAM).
    pub scratchpad_bytes: u64,
    /// Blind-rotation iteration coarsening for very deep logic
    /// traces: each `TfhePbs` lowers its `lwe_dim` iterations in
    /// chunks of this many per Decomp→NTT→EWMM→EWMA→iNTT quintet
    /// (shapes and key traffic scaled by the chunk size). `1` (the
    /// default) is the exact per-iteration lowering. The iterations
    /// of one bootstrap form a serial dependency chain, so chunking
    /// preserves total work and chain latency up to lane-rounding;
    /// it exists to keep multi-thousand-level gate circuits (e.g.
    /// homomorphic SHA-256) at a tractable instruction count.
    pub pbs_iter_chunk: u32,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            packing: Packing::TvlpPlp,
            total_lanes: 16_384,
            max_batch: 64,
            scratchpad_bytes: 256 << 20,
            pbs_iter_chunk: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = CompileOptions::default();
        assert_eq!(o.packing, Packing::TvlpPlp);
        assert_eq!(o.total_lanes, 16_384);
        assert_eq!(o.pbs_iter_chunk, 1);
    }

    #[test]
    fn labels_are_unique() {
        let labels = [
            Packing::None.label(),
            Packing::Plp.label(),
            Packing::ColpPlp.label(),
            Packing::TvlpPlp.label(),
        ];
        let mut dedup = labels.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
