//! Lowering rules: one block of macro-instructions per trace op.
//!
//! Every rule mirrors the operation breakdowns of Fig. 3 (CKKS) and
//! Fig. 4 (TFHE): key-switching expands into ModUp base conversions,
//! the key MAC and ModDown; functional bootstrapping expands into `n`
//! blind-rotation iterations of decompose → NTT → multiply-accumulate
//! → iNTT → rotate.
//!
//! Library paths are fallible (`try_for_trace`, `try_compile`,
//! `try_lower_op`) and return [`CompileError`]; the panicking
//! spellings wrap them for tests and binaries. `try_compile` runs the
//! static verifier over its own output as a post-condition, so a
//! lowering bug surfaces here rather than as a nonsense cycle count.

use crate::error::CompileError;
use crate::memory::{key_reuse_factor, SpillModel};
use crate::options::{CompileOptions, Packing};
use crate::stats::{CompileStats, OpLowering, SpillEvent};
use ufc_isa::instr::{InstrStream, Kernel, Phase, PolyShape};
use ufc_isa::params::{CkksParams, TfheParams, LIMB_BITS};
use ufc_isa::trace::{Trace, TraceOp};
use ufc_verify::{verify_stream, VerifyOptions};

/// CKKS limb word size on the instruction stream.
pub const CKKS_WORD_BITS: u32 = LIMB_BITS;
/// TFHE torus word size.
pub const TFHE_WORD_BITS: u32 = 32;
/// Traffic reduction from on-the-fly evaluation-key generation
/// (§IV-B5): only seeds and the non-expandable share stream from HBM.
pub const KEYGEN_ONTHEFLY_FACTOR: u64 = 3;

/// The trace-to-instruction compiler.
#[derive(Debug, Clone)]
pub struct Compiler {
    ckks: Option<CkksParams>,
    tfhe: Option<TfheParams>,
    opts: CompileOptions,
}

impl Compiler {
    /// Creates a compiler for the given parameter environment.
    pub fn new(ckks: Option<CkksParams>, tfhe: Option<TfheParams>, opts: CompileOptions) -> Self {
        Self { ckks, tfhe, opts }
    }

    /// Builds a compiler from a trace's recorded parameter-set ids.
    pub fn try_for_trace(trace: &Trace, opts: CompileOptions) -> Result<Self, CompileError> {
        let ckks = trace
            .ckks_params
            .map(ufc_isa::params::try_ckks_params)
            .transpose()?;
        let tfhe = trace
            .tfhe_params
            .map(ufc_isa::params::try_tfhe_params)
            .transpose()?;
        Ok(Self::new(ckks, tfhe, opts))
    }

    /// Like [`Compiler::try_for_trace`].
    ///
    /// # Panics
    ///
    /// Panics if the trace names an unknown parameter set.
    pub fn for_trace(trace: &Trace, opts: CompileOptions) -> Self {
        Self::try_for_trace(trace, opts).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The options in use.
    pub fn options(&self) -> &CompileOptions {
        &self.opts
    }

    /// Compiles a full trace. Blocks from different trace ops carry no
    /// cross dependencies (program-level parallelism is abundant in
    /// the evaluated workloads); the simulator's resource model bounds
    /// the achievable overlap.
    ///
    /// As a post-condition the lowered stream is run through the
    /// static verifier (`ufc-verify`); error-severity findings mean a
    /// lowering bug and come back as [`CompileError::PostCondition`].
    pub fn try_compile(&self, trace: &Trace) -> Result<InstrStream, CompileError> {
        self.try_compile_stats(trace).map(|(stream, _)| stream)
    }

    /// Like [`Compiler::try_compile`], additionally reporting what
    /// the lowering did: one [`OpLowering`] per trace op and one
    /// [`SpillEvent`] per op whose modeled working set overflows the
    /// scratchpad ([`CompileOptions::scratchpad_bytes`]).
    pub fn try_compile_stats(
        &self,
        trace: &Trace,
    ) -> Result<(InstrStream, CompileStats), CompileError> {
        let _span = ufc_trace::span_n("compiler", "compile", trace.len() as u64);
        let mut out = InstrStream::new();
        let mut ops = Vec::with_capacity(trace.len());
        let mut spills = Vec::new();
        {
            let _lower = ufc_trace::span("compiler", "lower");
            for (index, op) in trace.ops.iter().enumerate() {
                let block = self.try_lower_op(op)?;
                ops.push(OpLowering {
                    index,
                    op: op.name().to_owned(),
                    instrs: block.len(),
                    hbm_bytes: block.total_hbm_bytes(),
                });
                if let Some(ev) = self.spill_event(index, op) {
                    spills.push(ev);
                }
                out.append(block, &[]);
            }
        }
        let report = {
            let _verify = ufc_trace::span_n("compiler", "verify_stream", out.len() as u64);
            verify_stream(&out, &VerifyOptions::default())
        };
        if report.has_errors() {
            return Err(CompileError::PostCondition(report));
        }
        let noise = {
            let _noise = ufc_trace::span_n("compiler", "noise_pass", trace.len() as u64);
            ufc_verify::noise_checks::noise_schedule(trace, &ufc_verify::NoiseOptions::default())
        };
        let stats = CompileStats {
            total_instrs: out.len(),
            total_hbm_bytes: out.total_hbm_bytes(),
            scratchpad_bytes: self.opts.scratchpad_bytes,
            ops,
            spills,
            noise,
        };
        Ok((out, stats))
    }

    /// Checks one op's modeled working set (§V-C) against the
    /// scratchpad, returning the overflow event if it does not fit.
    /// Linear/transfer ops have no resident working set. Public so
    /// alternative compilation drivers (the barrier-aware hybrid
    /// compiler in `ufc-core`) can report the same statistics.
    pub fn spill_event(&self, index: usize, op: &TraceOp) -> Option<SpillEvent> {
        let working_set = match *op {
            TraceOp::CkksAdd { level }
            | TraceOp::CkksMulPlain { level }
            | TraceOp::CkksMulCt { level }
            | TraceOp::CkksRescale { level }
            | TraceOp::CkksRotate { level, .. }
            | TraceOp::CkksConjugate { level }
            | TraceOp::Repack { level, .. } => {
                SpillModel::ckks_working_set(self.ckks.as_ref()?, level, 4)
            }
            // Mod raise lands on the full limb budget.
            TraceOp::CkksModRaise { .. } => {
                let p = self.ckks.as_ref()?;
                SpillModel::ckks_working_set(p, p.max_level(), 4)
            }
            TraceOp::TfhePbs { batch } | TraceOp::TfheKeySwitch { batch } => {
                SpillModel::tfhe_working_set(self.tfhe.as_ref()?, batch)
            }
            TraceOp::TfheLinear { .. }
            | TraceOp::Extract { .. }
            | TraceOp::SchemeTransfer { .. } => return None,
        };
        let capacity = self.opts.scratchpad_bytes;
        (working_set > capacity).then(|| SpillEvent {
            index,
            op: op.name().to_owned(),
            working_set,
            capacity,
            overflow: working_set - capacity,
        })
    }

    /// Like [`Compiler::try_compile`].
    ///
    /// # Panics
    ///
    /// Panics on any [`CompileError`].
    pub fn compile(&self, trace: &Trace) -> InstrStream {
        self.try_compile(trace).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Lowers a single trace op into its instruction block.
    pub fn try_lower_op(&self, op: &TraceOp) -> Result<InstrStream, CompileError> {
        let lowered = match *op {
            TraceOp::CkksAdd { level } => self.ckks_elementwise(level, Kernel::Ewma),
            TraceOp::CkksMulPlain { level } => self.ckks_elementwise(level, Kernel::Ewmm),
            TraceOp::CkksMulCt { level } => self.ckks_mul_ct(level),
            TraceOp::CkksRescale { level } => self.ckks_rescale(level),
            TraceOp::CkksRotate { level, .. } | TraceOp::CkksConjugate { level } => {
                self.ckks_rotate(level)
            }
            TraceOp::CkksModRaise { from_level } => self.ckks_mod_raise(from_level),
            TraceOp::TfhePbs { batch } => self.tfhe_pbs(batch),
            TraceOp::TfheKeySwitch { batch } => self.tfhe_key_switch(batch),
            TraceOp::TfheLinear { count } => self.tfhe_linear(count),
            TraceOp::Extract { level, count } => self.extract(level, count),
            TraceOp::Repack { count, level } => self.repack(count, level),
            TraceOp::SchemeTransfer { bytes } => {
                let mut s = InstrStream::new();
                s.push(
                    Kernel::Transfer,
                    PolyShape::new(0, 1),
                    8,
                    vec![],
                    bytes,
                    Phase::SchemeSwitch,
                );
                Ok(s)
            }
        };
        // The parameter-availability helpers don't know which op asked
        // for them; attach that context here.
        lowered.map_err(|e| match e {
            CompileError::MissingParams { scheme, .. } => CompileError::MissingParams {
                scheme,
                op: format!("{op:?}"),
            },
            other => other,
        })
    }

    /// Like [`Compiler::try_lower_op`].
    ///
    /// # Panics
    ///
    /// Panics if the op's scheme has no declared parameter set.
    pub fn lower_op(&self, op: &TraceOp) -> InstrStream {
        self.try_lower_op(op).unwrap_or_else(|e| panic!("{e}"))
    }

    // ------------------------------------------------------------ CKKS

    fn ckks(&self) -> Result<&CkksParams, CompileError> {
        self.ckks.as_ref().ok_or(CompileError::MissingParams {
            scheme: "CKKS",
            op: String::new(),
        })
    }

    fn ckks_elementwise(&self, level: u32, kernel: Kernel) -> Result<InstrStream, CompileError> {
        let p = self.ckks()?;
        let limbs = level + 1;
        let mut s = InstrStream::new();
        s.push(
            kernel,
            PolyShape::new(p.log_n, 2 * limbs),
            CKKS_WORD_BITS,
            vec![],
            0,
            Phase::CkksEval,
        );
        Ok(s)
    }

    fn ckks_mul_ct(&self, level: u32) -> Result<InstrStream, CompileError> {
        let p = self.ckks()?;
        let limbs = level + 1;
        let n = p.log_n;
        let mut s = InstrStream::new();
        // Tensor: d0, d2, and the two cross terms + add.
        let t0 = s.push(
            Kernel::Ewmm,
            PolyShape::new(n, limbs),
            CKKS_WORD_BITS,
            vec![],
            0,
            Phase::CkksEval,
        );
        let t2 = s.push(
            Kernel::Ewmm,
            PolyShape::new(n, limbs),
            CKKS_WORD_BITS,
            vec![],
            0,
            Phase::CkksEval,
        );
        let tc = s.push(
            Kernel::Ewmm,
            PolyShape::new(n, 2 * limbs),
            CKKS_WORD_BITS,
            vec![],
            0,
            Phase::CkksEval,
        );
        let td = s.push(
            Kernel::Ewma,
            PolyShape::new(n, limbs),
            CKKS_WORD_BITS,
            vec![tc],
            0,
            Phase::CkksEval,
        );
        // Relinearize d2.
        let ks_exits = self.key_switch_block(&mut s, level, vec![t2], Phase::CkksKeySwitch)?;
        // Final adds into (c0, c1).
        let mut deps = ks_exits;
        deps.push(t0);
        deps.push(td);
        s.push(
            Kernel::Ewma,
            PolyShape::new(n, 2 * limbs),
            CKKS_WORD_BITS,
            deps,
            0,
            Phase::CkksEval,
        );
        Ok(s)
    }

    /// Hybrid key switching (Fig. 3): iNTT, per-digit ModUp BConv,
    /// the key MAC, and ModDown. Returns the exit instruction ids.
    fn key_switch_block(
        &self,
        s: &mut InstrStream,
        level: u32,
        input_deps: Vec<usize>,
        phase: Phase,
    ) -> Result<Vec<usize>, CompileError> {
        let p = self.ckks()?;
        let n = p.log_n;
        let limbs = level + 1;
        let k = p.special_limbs();
        let digit_size = p.q_limbs().div_ceil(p.dnum);
        let digits = limbs.div_ceil(digit_size);
        let w = CKKS_WORD_BITS;

        let intt = s.push(
            Kernel::Intt,
            PolyShape::new(n, limbs),
            w,
            input_deps,
            0,
            phase,
        );
        let mut digit_exits = Vec::new();
        for d in 0..digits {
            let lj = digit_size.min(limbs - d * digit_size);
            let target = limbs - lj + k;
            // d~_j = [d · Qhat^{-1}]: one EWMM over the digit limbs.
            let scale = s.push(Kernel::Ewmm, PolyShape::new(n, lj), w, vec![intt], 0, phase);
            // ModUp: BConv from lj limbs to the complement.
            let bconv = s.push(
                Kernel::BconvMac,
                PolyShape::new(n, lj * target),
                w,
                vec![scale],
                0,
                phase,
            );
            // Back to evaluation form on the extended basis.
            let ntt = s.push(
                Kernel::Ntt,
                PolyShape::new(n, target),
                w,
                vec![bconv],
                0,
                phase,
            );
            // MAC against the digit key (2 output polys over Q+P).
            // The on-the-fly key generation unit (§IV-B5, reused from
            // ARK/SHARP/CraterLake) expands keys from seeds on die;
            // only ~1/3 of the raw key footprint crosses HBM.
            let key_bytes = 2 * (limbs + k) as u64 * (1u64 << n) * 8 / KEYGEN_ONTHEFLY_FACTOR;
            let mac = s.push(
                Kernel::Ewmm,
                PolyShape::new(n, 2 * (limbs + k)),
                w,
                vec![ntt],
                key_bytes,
                phase,
            );
            let acc = s.push(
                Kernel::Ewma,
                PolyShape::new(n, 2 * (limbs + k)),
                w,
                vec![mac],
                0,
                phase,
            );
            digit_exits.push(acc);
        }
        // ModDown both result polys: iNTT, BConv P→Q, sub+scale, NTT.
        let intt2 = s.push(
            Kernel::Intt,
            PolyShape::new(n, 2 * (limbs + k)),
            w,
            digit_exits,
            0,
            phase,
        );
        let bconv2 = s.push(
            Kernel::BconvMac,
            PolyShape::new(n, 2 * k * limbs),
            w,
            vec![intt2],
            0,
            phase,
        );
        let fix = s.push(
            Kernel::Ewma,
            PolyShape::new(n, 2 * limbs),
            w,
            vec![bconv2],
            0,
            phase,
        );
        let ntt2 = s.push(
            Kernel::Ntt,
            PolyShape::new(n, 2 * limbs),
            w,
            vec![fix],
            0,
            phase,
        );
        Ok(vec![ntt2])
    }

    fn ckks_rescale(&self, level: u32) -> Result<InstrStream, CompileError> {
        let p = self.ckks()?;
        let n = p.log_n;
        let limbs = level + 1;
        let w = CKKS_WORD_BITS;
        let mut s = InstrStream::new();
        let intt = s.push(
            Kernel::Intt,
            PolyShape::new(n, 2 * limbs),
            w,
            vec![],
            0,
            Phase::CkksEval,
        );
        let sub = s.push(
            Kernel::Ewma,
            PolyShape::new(n, 2 * (limbs - 1)),
            w,
            vec![intt],
            0,
            Phase::CkksEval,
        );
        let mul = s.push(
            Kernel::Ewmm,
            PolyShape::new(n, 2 * (limbs - 1)),
            w,
            vec![sub],
            0,
            Phase::CkksEval,
        );
        s.push(
            Kernel::Ntt,
            PolyShape::new(n, 2 * (limbs - 1)),
            w,
            vec![mul],
            0,
            Phase::CkksEval,
        );
        Ok(s)
    }

    fn ckks_rotate(&self, level: u32) -> Result<InstrStream, CompileError> {
        let p = self.ckks()?;
        let limbs = level + 1;
        let mut s = InstrStream::new();
        // Automorphism on both polys (UFC folds this onto the NTT
        // network, §IV-C2; SHARP uses its all-to-all NoC — the
        // machine models cost the same Auto kernel differently).
        let auto = s.push(
            Kernel::Auto,
            PolyShape::new(p.log_n, 2 * limbs),
            CKKS_WORD_BITS,
            vec![],
            0,
            Phase::CkksKeySwitch,
        );
        self.key_switch_block(&mut s, level, vec![auto], Phase::CkksKeySwitch)?;
        Ok(s)
    }

    fn ckks_mod_raise(&self, from_level: u32) -> Result<InstrStream, CompileError> {
        let p = self.ckks()?;
        let n = p.log_n;
        let full = p.q_limbs();
        let src = from_level + 1;
        let w = CKKS_WORD_BITS;
        let mut s = InstrStream::new();
        let intt = s.push(
            Kernel::Intt,
            PolyShape::new(n, 2 * src),
            w,
            vec![],
            0,
            Phase::CkksBootstrap,
        );
        let bconv = s.push(
            Kernel::BconvMac,
            PolyShape::new(n, 2 * src * full),
            w,
            vec![intt],
            0,
            Phase::CkksBootstrap,
        );
        s.push(
            Kernel::Ntt,
            PolyShape::new(n, 2 * full),
            w,
            vec![bconv],
            0,
            Phase::CkksBootstrap,
        );
        Ok(s)
    }

    // ------------------------------------------------------------ TFHE

    fn tfhe(&self) -> Result<&TfheParams, CompileError> {
        self.tfhe.as_ref().ok_or(CompileError::MissingParams {
            scheme: "TFHE",
            op: String::new(),
        })
    }

    /// Effective packed width (how many small polynomials ride one
    /// instruction) for the active packing strategy (§V-A/B).
    pub fn try_tfhe_pack_width(&self, batch: u32) -> Result<u32, CompileError> {
        let p = self.tfhe()?;
        let lanes_per_poly = p.n() as u32;
        let max_pack = (self.opts.total_lanes / lanes_per_poly).max(1);
        Ok(match self.opts.packing {
            Packing::None => 1,
            Packing::Plp => 2.min(max_pack),
            // CoLP: the 2·g_k decomposed polynomials (+PLP).
            Packing::ColpPlp => (2 * p.glwe_levels).min(max_pack),
            // TvLP: batch test vectors (+PLP pairs).
            Packing::TvlpPlp => (2 * batch.min(self.opts.max_batch)).min(max_pack),
        })
    }

    /// Like [`Compiler::try_tfhe_pack_width`].
    ///
    /// # Panics
    ///
    /// Panics if no TFHE parameter set was declared.
    pub fn tfhe_pack_width(&self, batch: u32) -> u32 {
        self.try_tfhe_pack_width(batch)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn tfhe_pbs(&self, batch: u32) -> Result<InstrStream, CompileError> {
        let p = self.tfhe()?;
        let n = p.log_n;
        let w = TFHE_WORD_BITS;
        let mut s = InstrStream::new();
        // The packing width caps how many of the batch's polynomials
        // occupy the lanes at once; the machine model serializes the
        // rest (§V-A).
        let pack = self.try_tfhe_pack_width(batch)?;
        // Key reuse: TvLP streams the bootstrapping key once per
        // batch; CoLP/PLP re-stream per ciphertext (§V-B).
        let reuse = key_reuse_factor(self.opts.packing, batch);
        let bsk_bytes_per_iter = 2 * p.glwe_levels as u64 * 2 * p.n() as u64 * 4;
        let iter_bsk = (bsk_bytes_per_iter * batch as u64) / reuse as u64;
        let ph = Phase::TfheBlindRotate;

        // Test-vector preparation (LWEU dispatches X^{a_i} factors).
        let prep = s.push_packed(
            Kernel::Rotate,
            PolyShape::new(n, batch * 2),
            w,
            vec![],
            0,
            ph,
            pack,
        );
        let mut last = prep;
        // n blind-rotation iterations; each is Decomp → NTT → MAC →
        // accumulate → iNTT (+ the monomial multiply, folded into the
        // evaluation-form EWMM per §IV-C3). The iterations form a
        // serial chain, so `pbs_iter_chunk > 1` may fold `k` of them
        // into one quintet with k-scaled shapes and key traffic:
        // total work and chain latency are preserved up to
        // lane-rounding, at 1/k the instruction count (the knob deep
        // gate circuits rely on).
        let g2 = 2 * p.glwe_levels;
        let chunk = self.opts.pbs_iter_chunk.max(1);
        let iters = p.blind_rotations();
        let mut done = 0u32;
        while done < iters {
            let k = chunk.min(iters - done);
            done += k;
            let dec = s.push_packed(
                Kernel::Decomp,
                PolyShape::new(n, batch * g2 * k),
                w,
                vec![last],
                0,
                ph,
                pack,
            );
            let ntt = s.push_packed(
                Kernel::Ntt,
                PolyShape::new(n, batch * g2 * k),
                w,
                vec![dec],
                0,
                ph,
                pack,
            );
            let mac = s.push_packed(
                Kernel::Ewmm,
                PolyShape::new(n, batch * g2 * 2 * k),
                w,
                vec![ntt],
                iter_bsk * k as u64,
                ph,
                pack,
            );
            let acc = s.push_packed(
                Kernel::Ewma,
                PolyShape::new(n, batch * 2 * k),
                w,
                vec![mac],
                0,
                ph,
                pack,
            );
            let intt = s.push_packed(
                Kernel::Intt,
                PolyShape::new(n, batch * 2 * k),
                w,
                vec![acc],
                0,
                ph,
                pack,
            );
            // CoLP pays a shuffle pass to restore the continuous
            // layout before the next decomposition (§V-B).
            last = if self.opts.packing == Packing::ColpPlp {
                s.push_packed(
                    Kernel::Rotate,
                    PolyShape::new(n, batch * 2 * k),
                    w,
                    vec![intt],
                    0,
                    ph,
                    pack,
                )
            } else {
                intt
            };
        }
        // Sample extraction on the LWEU.
        s.push(
            Kernel::Extract,
            PolyShape::new(n, batch),
            w,
            vec![last],
            0,
            ph,
        );
        Ok(s)
    }

    fn tfhe_key_switch(&self, batch: u32) -> Result<InstrStream, CompileError> {
        let p = self.tfhe()?;
        let n = p.log_n;
        let w = TFHE_WORD_BITS;
        let mut s = InstrStream::new();
        // Decompose the N-dim mask, then N·d_ks MACs of length n+1,
        // reduced on the LWEU.
        let dec = s.push(
            Kernel::Decomp,
            PolyShape::new(n, batch * p.ks_levels),
            w,
            vec![],
            0,
            Phase::TfheKeySwitch,
        );
        let macs = s.push(
            Kernel::BconvMac,
            PolyShape::new(n, batch * p.ks_levels * (p.lwe_dim + 1) / 64),
            w,
            vec![dec],
            p.ksk_bytes() / key_reuse_factor(self.opts.packing, batch) as u64,
            Phase::TfheKeySwitch,
        );
        s.push(
            Kernel::Redc,
            PolyShape::new(n, batch),
            w,
            vec![macs],
            0,
            Phase::TfheKeySwitch,
        );
        Ok(s)
    }

    fn tfhe_linear(&self, count: u32) -> Result<InstrStream, CompileError> {
        let p = self.tfhe()?;
        let mut s = InstrStream::new();
        // LWE adds: n+1 words each; batch them as one wide EWMA.
        let log_n = 64 - (p.lwe_dim as u64 + 1).leading_zeros() - 1;
        s.push(
            Kernel::Ewma,
            PolyShape::new(log_n, count),
            TFHE_WORD_BITS,
            vec![],
            0,
            Phase::TfheKeySwitch,
        );
        Ok(s)
    }

    // ------------------------------------------------- scheme switching

    fn extract(&self, level: u32, count: u32) -> Result<InstrStream, CompileError> {
        let c = self.ckks()?;
        let mut s = InstrStream::new();
        // LWEU reorders coefficients from the PE scratchpads.
        let ex = s.push(
            Kernel::Extract,
            PolyShape::new(c.log_n, count),
            CKKS_WORD_BITS,
            vec![],
            0,
            Phase::SchemeSwitch,
        );
        let _ = level;
        // TFHE key switch back to standard parameters (§II-D).
        let ks = self.tfhe_key_switch(count)?;
        s.append(ks, &[ex]);
        Ok(s)
    }

    fn repack(&self, count: u32, level: u32) -> Result<InstrStream, CompileError> {
        let t = self.tfhe()?;
        // One rotation + plaintext MAC per LWE dimension step
        // (diagonal method), then the EvalMod bootstrap. Modeled as
        // `lwe_dim` rotation blocks at the CKKS level plus one
        // mod-raise-sized polynomial evaluation.
        let mut s = InstrStream::new();
        let steps = t.lwe_dim.min(count.max(1) * 64);
        for _ in 0..steps.min(64) {
            let r = self.ckks_rotate(level)?;
            s.append(r, &[]);
        }
        // The sine evaluation: a handful of ct-ct multiplies.
        for _ in 0..4 {
            let m = self.ckks_mul_ct(level.saturating_sub(1).max(1))?;
            s.append(m, &[]);
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_isa::params::{ckks_params, tfhe_params};

    fn compiler(packing: Packing) -> Compiler {
        Compiler::new(
            ckks_params("C2"),
            tfhe_params("T1"),
            CompileOptions {
                packing,
                ..CompileOptions::default()
            },
        )
    }

    #[test]
    fn ckks_add_is_one_ewma() {
        let c = compiler(Packing::TvlpPlp);
        let s = c.lower_op(&TraceOp::CkksAdd { level: 20 });
        assert_eq!(s.len(), 1);
        assert_eq!(s.instrs()[0].kernel, Kernel::Ewma);
        assert_eq!(s.instrs()[0].shape.count, 42);
    }

    #[test]
    fn mul_ct_contains_keyswitch_pipeline() {
        let c = compiler(Packing::TvlpPlp);
        let s = c.lower_op(&TraceOp::CkksMulCt { level: 20 });
        let h = s.kernel_histogram();
        assert!(h[&Kernel::Ntt] >= 2, "ModUp + ModDown NTTs");
        assert!(h[&Kernel::Intt] >= 2);
        assert!(h[&Kernel::BconvMac] >= 2);
        assert!(s.total_hbm_bytes() > 0, "key material streams from HBM");
    }

    #[test]
    fn keyswitch_digits_follow_dnum() {
        // At full level, C2 (dnum=3) must produce 3 digit MACs.
        let c = compiler(Packing::TvlpPlp);
        let p = ckks_params("C2").unwrap();
        let s = c.lower_op(&TraceOp::CkksRotate {
            level: p.max_level(),
            step: 1,
        });
        let macs = s
            .instrs()
            .iter()
            .filter(|i| i.kernel == Kernel::Ewmm && i.hbm_bytes > 0)
            .count();
        assert_eq!(macs, 3);
    }

    #[test]
    fn pbs_iter_chunk_preserves_work_and_traffic() {
        let exact = compiler(Packing::TvlpPlp);
        let coarse = Compiler::new(
            ckks_params("C2"),
            tfhe_params("T1"),
            CompileOptions {
                pbs_iter_chunk: 8,
                ..CompileOptions::default()
            },
        );
        let op = TraceOp::TfhePbs { batch: 4 };
        let se = exact.lower_op(&op);
        let sc = coarse.lower_op(&op);
        // T1 has lwe_dim = 500: 8-chunking cuts 500 quintets to 63.
        let t1 = tfhe_params("T1").unwrap();
        assert_eq!(
            sc.kernel_histogram()[&Kernel::Ntt],
            (t1.lwe_dim as usize).div_ceil(8)
        );
        assert!(sc.len() < se.len() / 6);
        // Total polynomial work and key traffic are invariant.
        let elems = |s: &InstrStream| -> u64 { s.instrs().iter().map(|i| i.shape.elems()).sum() };
        assert_eq!(elems(&se), elems(&sc));
        assert_eq!(se.total_hbm_bytes(), sc.total_hbm_bytes());
    }

    #[test]
    fn pbs_iter_chunk_one_is_identical() {
        let exact = compiler(Packing::TvlpPlp);
        let chunk1 = Compiler::new(
            ckks_params("C2"),
            tfhe_params("T1"),
            CompileOptions {
                pbs_iter_chunk: 1,
                ..CompileOptions::default()
            },
        );
        let op = TraceOp::TfhePbs { batch: 16 };
        assert_eq!(exact.lower_op(&op).instrs(), chunk1.lower_op(&op).instrs());
    }

    #[test]
    fn pbs_has_n_iterations() {
        let c = compiler(Packing::TvlpPlp);
        let s = c.lower_op(&TraceOp::TfhePbs { batch: 1 });
        let t1 = tfhe_params("T1").unwrap();
        let h = s.kernel_histogram();
        assert_eq!(h[&Kernel::Ntt], t1.lwe_dim as usize);
        assert_eq!(h[&Kernel::Intt], t1.lwe_dim as usize);
        assert_eq!(h[&Kernel::Decomp], t1.lwe_dim as usize);
    }

    #[test]
    fn tvlp_amortizes_bootstrapping_key() {
        let tv = compiler(Packing::TvlpPlp);
        let co = compiler(Packing::ColpPlp);
        let batch = 32;
        let tv_bytes = tv.lower_op(&TraceOp::TfhePbs { batch }).total_hbm_bytes();
        let co_bytes = co.lower_op(&TraceOp::TfhePbs { batch }).total_hbm_bytes();
        assert!(
            tv_bytes * 4 < co_bytes,
            "TvLP ({tv_bytes}) must stream far less key data than CoLP ({co_bytes})"
        );
    }

    #[test]
    fn colp_adds_shuffle_passes() {
        let tv = compiler(Packing::TvlpPlp);
        let co = compiler(Packing::ColpPlp);
        let tv_rot = tv
            .lower_op(&TraceOp::TfhePbs { batch: 4 })
            .kernel_histogram()[&Kernel::Rotate];
        let co_rot = co
            .lower_op(&TraceOp::TfhePbs { batch: 4 })
            .kernel_histogram()[&Kernel::Rotate];
        assert!(co_rot > tv_rot);
    }

    #[test]
    fn pack_width_respects_lanes() {
        let c = Compiler::new(
            None,
            tfhe_params("T4"), // N = 2^14: only one poly fits
            CompileOptions::default(),
        );
        assert_eq!(c.tfhe_pack_width(64), 1);
        let c = Compiler::new(None, tfhe_params("T1"), CompileOptions::default());
        // N = 2^10: 16 polys fit in 16384 lanes.
        assert_eq!(c.tfhe_pack_width(64), 16);
    }

    #[test]
    fn full_trace_compiles_with_phases() {
        let mut tr = Trace::new("mix").with_ckks("C1").with_tfhe("T2");
        tr.push(TraceOp::CkksMulCt { level: 10 });
        tr.push(TraceOp::CkksRescale { level: 10 });
        tr.push(TraceOp::Extract {
            level: 0,
            count: 16,
        });
        tr.push(TraceOp::TfhePbs { batch: 16 });
        tr.push(TraceOp::SchemeTransfer { bytes: 1 << 20 });
        let c = Compiler::for_trace(&tr, CompileOptions::default());
        let s = c.compile(&tr);
        assert!(s.len() > 100);
        assert!(s.instrs().iter().any(|i| i.phase == Phase::SchemeSwitch));
        assert!(s.instrs().iter().any(|i| i.phase == Phase::TfheBlindRotate));
        assert!(s.instrs().iter().any(|i| i.phase == Phase::CkksKeySwitch));
    }

    #[test]
    fn transfer_costs_only_bytes() {
        let c = compiler(Packing::TvlpPlp);
        let s = c.lower_op(&TraceOp::SchemeTransfer { bytes: 4096 });
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_hbm_bytes(), 4096);
        assert_eq!(s.total_modmul_ops(), 0);
    }

    #[test]
    fn unknown_params_are_typed_errors() {
        let tr = Trace::new("bad").with_ckks("C9");
        let err = Compiler::try_for_trace(&tr, CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::Params(_)));
        assert!(err.to_string().contains("C9"));
    }

    #[test]
    fn missing_params_are_typed_errors() {
        let c = Compiler::new(None, None, CompileOptions::default());
        let err = c.try_lower_op(&TraceOp::CkksAdd { level: 3 }).unwrap_err();
        match err {
            CompileError::MissingParams { scheme, op } => {
                assert_eq!(scheme, "CKKS");
                assert!(op.contains("CkksAdd"));
            }
            other => panic!("wrong error: {other:?}"),
        }
        let err = c.try_lower_op(&TraceOp::TfhePbs { batch: 1 }).unwrap_err();
        assert!(matches!(
            err,
            CompileError::MissingParams { scheme: "TFHE", .. }
        ));
    }

    #[test]
    fn compiled_streams_pass_static_verification() {
        let mut tr = Trace::new("verified").with_ckks("C3").with_tfhe("T3");
        tr.push(TraceOp::CkksMulCt { level: 15 });
        tr.push(TraceOp::Extract { level: 2, count: 8 });
        tr.push(TraceOp::TfhePbs { batch: 8 });
        tr.push(TraceOp::Repack { count: 8, level: 2 });
        let c = Compiler::for_trace(&tr, CompileOptions::default());
        // try_compile runs the verifier post-condition internally; it
        // returning Ok *is* the assertion.
        let s = c.try_compile(&tr).expect("post-conditions hold");
        assert!(!s.is_empty());
    }
}
