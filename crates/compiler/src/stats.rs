//! Lowering statistics: what the compiler did, per trace op.
//!
//! [`Compiler::try_compile_stats`](crate::Compiler::try_compile_stats)
//! produces a [`CompileStats`] alongside the instruction stream: one
//! [`OpLowering`] per trace op (how many macro-instructions it
//! expanded into and how much HBM traffic they carry) plus one
//! [`SpillEvent`] per op whose modeled working set overflows the
//! scratchpad (§V-C). All types serialize, so the numbers flow
//! straight into `--json` bench output and `ufc-profile` reports.

/// How one trace op lowered.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct OpLowering {
    /// Position of the op in the trace.
    pub index: usize,
    /// Stable op variant name (`TraceOp::name`).
    pub op: String,
    /// Macro-instructions the op expanded into.
    pub instrs: usize,
    /// HBM bytes carried by those instructions.
    pub hbm_bytes: u64,
}

/// A scratchpad-overflow event observed while lowering one op.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct SpillEvent {
    /// Position of the op in the trace.
    pub index: usize,
    /// Stable op variant name.
    pub op: String,
    /// Modeled working set of the op in bytes.
    pub working_set: u64,
    /// Scratchpad capacity the working set was checked against.
    pub capacity: u64,
    /// Overflow in bytes (`working_set - capacity`).
    pub overflow: u64,
}

/// Aggregate view of one op kind across the whole trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct OpKindStat {
    /// Stable op variant name.
    pub op: String,
    /// How many times the op kind appears.
    pub count: u64,
    /// Total macro-instructions emitted for it.
    pub instrs: u64,
    /// Total HBM bytes carried by those instructions.
    pub hbm_bytes: u64,
}

/// Everything the compiler can report about one lowering run.
///
/// Not `Eq`: the [noise schedule](ufc_verify::NoiseSchedule) rows
/// carry floating-point precision/margin estimates.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct CompileStats {
    /// Per-op lowering records, in trace order.
    pub ops: Vec<OpLowering>,
    /// Scratchpad-overflow events, in trace order.
    pub spills: Vec<SpillEvent>,
    /// Total macro-instructions emitted.
    pub total_instrs: usize,
    /// Total HBM bytes across the stream.
    pub total_hbm_bytes: u64,
    /// Scratchpad capacity used for the spill checks, in bytes.
    pub scratchpad_bytes: u64,
    /// Static noise schedule of the source trace: per-op CKKS
    /// precision and TFHE margin estimates from the `ufc-verify`
    /// abstract interpreter.
    pub noise: ufc_verify::NoiseSchedule,
}

impl CompileStats {
    /// Aggregates the per-op records by op kind; most instructions
    /// first, name as tie-break.
    pub fn by_op_kind(&self) -> Vec<OpKindStat> {
        let mut out: Vec<OpKindStat> = Vec::new();
        for rec in &self.ops {
            let slot = match out.iter_mut().find(|s| s.op == rec.op) {
                Some(s) => s,
                None => {
                    out.push(OpKindStat {
                        op: rec.op.clone(),
                        ..OpKindStat::default()
                    });
                    out.last_mut().expect("just pushed")
                }
            };
            slot.count += 1;
            slot.instrs += rec.instrs as u64;
            slot.hbm_bytes += rec.hbm_bytes;
        }
        out.sort_by(|a, b| b.instrs.cmp(&a.instrs).then_with(|| a.op.cmp(&b.op)));
        out
    }

    /// Total bytes by which working sets overflowed the scratchpad.
    pub fn total_spill_overflow(&self) -> u64 {
        self.spills.iter().map(|s| s.overflow).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(index: usize, op: &str, instrs: usize, hbm: u64) -> OpLowering {
        OpLowering {
            index,
            op: op.to_owned(),
            instrs,
            hbm_bytes: hbm,
        }
    }

    #[test]
    fn by_op_kind_aggregates_and_sorts() {
        let stats = CompileStats {
            ops: vec![
                rec(0, "CkksAdd", 1, 0),
                rec(1, "TfhePbs", 500, 4096),
                rec(2, "CkksAdd", 1, 0),
            ],
            spills: vec![],
            total_instrs: 502,
            total_hbm_bytes: 4096,
            scratchpad_bytes: 256 << 20,
            noise: ufc_verify::NoiseSchedule::default(),
        };
        let kinds = stats.by_op_kind();
        assert_eq!(kinds.len(), 2);
        assert_eq!(kinds[0].op, "TfhePbs");
        assert_eq!(kinds[0].instrs, 500);
        assert_eq!(kinds[1].op, "CkksAdd");
        assert_eq!(kinds[1].count, 2);
    }

    #[test]
    fn stats_serialize() {
        let stats = CompileStats {
            ops: vec![rec(0, "CkksAdd", 1, 0)],
            spills: vec![SpillEvent {
                index: 0,
                op: "CkksAdd".into(),
                working_set: 10,
                capacity: 4,
                overflow: 6,
            }],
            total_instrs: 1,
            total_hbm_bytes: 0,
            scratchpad_bytes: 4,
            noise: ufc_verify::NoiseSchedule::default(),
        };
        let v = serde::Serialize::to_value(&stats);
        assert!(v.get("spills").is_some());
        assert!(v.get("noise").is_some());
        assert_eq!(stats.total_spill_overflow(), 6);
    }
}
