//! # ufc-compiler — from ciphertext traces to hardware instructions
//!
//! Reproduces the paper's Python compiler (§VI-B): takes a
//! ciphertext-granularity [`ufc_isa::Trace`] and lowers every
//! high-level operation into the primitive macro-instructions of
//! Table I, applying the compiler-level optimizations of §V:
//!
//! * **small-polynomial packing** (§V-A): logic-scheme polynomials
//!   smaller than the machine width are batched into packed
//!   instructions (continuous/interleaved layouts switched by
//!   DIF-NTT/DIT-iNTT);
//! * **parallel scheduling** (§V-B): parallelism is harvested in the
//!   paper's priority order — test-vector level (TvLP), then
//!   polynomial level (PLP), then column level (CoLP);
//! * **memory allocation** (§V-C): key material is streamed from HBM
//!   with reuse factors determined by the packing strategy, and a
//!   working-set model charges spill traffic when the scratchpad
//!   overflows.
//!
//! The same instruction stream drives the UFC machine model *and* the
//! SHARP/Strix baselines, mirroring the paper's fair-comparison
//! methodology (§VI-C).

//! ```
//! use ufc_compiler::{CompileOptions, Compiler};
//! use ufc_isa::trace::{Trace, TraceOp};
//!
//! let mut trace = Trace::new("demo").with_ckks("C1");
//! trace.push(TraceOp::CkksMulCt { level: 20 });
//! let compiler = Compiler::for_trace(&trace, CompileOptions::default());
//! let stream = compiler.compile(&trace);
//! assert!(stream.len() > 10); // tensor + key-switch pipeline
//! ```

#![forbid(unsafe_code)]

pub mod error;
pub mod lower;
pub mod memory;
pub mod options;
pub mod stats;

pub use error::CompileError;
pub use lower::Compiler;
pub use options::{CompileOptions, Packing};
pub use stats::{CompileStats, OpKindStat, OpLowering, SpillEvent};
