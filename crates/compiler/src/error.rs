//! Typed compilation errors.
//!
//! Library paths report failures through [`CompileError`] instead of
//! panicking; the panicking entry points (`Compiler::for_trace`,
//! `Compiler::compile`, …) are thin wrappers kept for ergonomic use in
//! tests and binaries.

use ufc_isa::params::ParamsError;
use ufc_verify::Report;

/// Why a trace could not be compiled.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The trace names a parameter set the registry doesn't know.
    Params(ParamsError),
    /// The trace contains ops of a scheme whose parameter set was
    /// never declared (`scheme` is `"CKKS"` or `"TFHE"`).
    MissingParams {
        /// Which scheme's parameters are missing.
        scheme: &'static str,
        /// Debug rendering of the op that needed them.
        op: String,
    },
    /// Lowering produced an instruction stream that fails the static
    /// verifier's post-conditions — a compiler bug, surfaced instead
    /// of handing the simulator a broken stream.
    PostCondition(Report),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Params(e) => write!(f, "{e}"),
            CompileError::MissingParams { scheme, op } => {
                write!(
                    f,
                    "{op} requires {scheme} parameters but the trace declares none"
                )
            }
            CompileError::PostCondition(report) => {
                write!(
                    f,
                    "lowered stream fails verification ({} error(s)):\n{report}",
                    report.error_count()
                )
            }
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Params(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParamsError> for CompileError {
    fn from(e: ParamsError) -> Self {
        CompileError::Params(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = CompileError::from(ParamsError::UnknownCkks { id: "C9".into() });
        assert!(e.to_string().contains("C9"));
        let e = CompileError::MissingParams {
            scheme: "TFHE",
            op: "TfhePbs { batch: 4 }".into(),
        };
        assert!(e.to_string().contains("TFHE parameters"));
    }

    #[test]
    fn source_chains_params_errors() {
        use std::error::Error;
        let e = CompileError::from(ParamsError::UnknownTfhe { id: "T9".into() });
        assert!(e.source().is_some());
    }
}
