//! Memory-side compiler models: key-reuse factors for the packing
//! strategies and the scratchpad working-set / spill model (§V-C).

use crate::options::Packing;
use ufc_isa::params::{CkksParams, TfheParams};

/// How many times one streamed copy of the bootstrapping key is
/// reused, per packing strategy (§V-B: "TvLP can effectively reuse
/// the bootstrapping key across different ciphertexts, resulting in
/// the lowest memory bandwidth stress").
pub fn key_reuse_factor(packing: Packing, batch: u32) -> u32 {
    match packing {
        Packing::None | Packing::Plp => 1,
        // CoLP holds more key columns resident but still re-streams
        // per ciphertext; modest reuse.
        Packing::ColpPlp => 2,
        // TvLP loads the key once per batch.
        Packing::TvlpPlp => batch.max(1),
    }
}

/// Analytic scratchpad working-set model. If the working set of a
/// workload phase exceeds the scratchpad capacity, the overflow
/// fraction of ciphertext traffic is charged to HBM (§V-C; also the
/// mechanism behind the scratchpad-capacity DSE of Figs. 13–14).
#[derive(Debug, Clone, Copy)]
pub struct SpillModel {
    /// Scratchpad capacity in bytes.
    pub capacity: u64,
}

impl SpillModel {
    /// Creates the model for a capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        Self { capacity }
    }

    /// Working set of a CKKS workload at a given level: a handful of
    /// live ciphertexts plus one key-switching key.
    pub fn ckks_working_set(p: &CkksParams, level: u32, live_cts: u32) -> u64 {
        live_cts as u64 * p.ciphertext_bytes(level) + p.ksk_bytes()
    }

    /// Working set of a TFHE batch: accumulators plus the resident
    /// slice of the bootstrapping key.
    pub fn tfhe_working_set(p: &TfheParams, batch: u32) -> u64 {
        let acc = batch as u64 * 2 * p.n() as u64 * 4;
        // One RGSW (the current iteration's key element) per wave.
        let key_slice = 2 * p.glwe_levels as u64 * 2 * p.n() as u64 * 4;
        acc + key_slice
    }

    /// Fraction of ciphertext traffic that spills to HBM (0.0 when the
    /// working set fits).
    pub fn spill_fraction(&self, working_set: u64) -> f64 {
        if working_set <= self.capacity {
            0.0
        } else {
            (working_set - self.capacity) as f64 / working_set as f64
        }
    }

    /// Extra HBM bytes charged for one pass over `bytes` of ciphertext
    /// data given the working set.
    pub fn spill_bytes(&self, working_set: u64, bytes: u64) -> u64 {
        (self.spill_fraction(working_set) * bytes as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_isa::params::{ckks_params, tfhe_params};

    #[test]
    fn reuse_ordering_matches_paper() {
        let b = 32;
        assert!(key_reuse_factor(Packing::TvlpPlp, b) > key_reuse_factor(Packing::ColpPlp, b));
        assert!(key_reuse_factor(Packing::ColpPlp, b) > key_reuse_factor(Packing::Plp, b));
        assert_eq!(key_reuse_factor(Packing::None, b), 1);
    }

    #[test]
    fn spill_is_zero_when_fitting() {
        let m = SpillModel::new(256 << 20);
        let ws = SpillModel::ckks_working_set(&ckks_params("C1").unwrap(), 10, 4);
        assert!(ws < 256 << 20);
        assert_eq!(m.spill_fraction(ws), 0.0);
        assert_eq!(m.spill_bytes(ws, 1 << 30), 0);
    }

    #[test]
    fn spill_grows_as_capacity_shrinks() {
        let p = ckks_params("C1").unwrap();
        let ws = SpillModel::ckks_working_set(&p, p.max_level(), 8);
        let big = SpillModel::new(256 << 20).spill_bytes(ws, 1 << 30);
        let small = SpillModel::new(64 << 20).spill_bytes(ws, 1 << 30);
        assert!(small >= big);
    }

    #[test]
    fn tfhe_working_set_is_small() {
        // The paper observes TFHE workloads fit on chip ("the 256MB
        // on-chip scratchpad is sufficiently large", §VII-B).
        let ws = SpillModel::tfhe_working_set(&tfhe_params("T2").unwrap(), 64);
        assert!(ws < 16 << 20, "ws = {ws}");
    }
}
