//! Property-based tests for lowering invariants: every produced
//! stream must be a valid DAG with sensible shapes, monotone in the
//! obvious parameters.

use proptest::prelude::*;
use ufc_compiler::{CompileOptions, Compiler, Packing};
use ufc_isa::params::{ckks_params, tfhe_params};
use ufc_isa::trace::TraceOp;

fn compiler(packing: Packing) -> Compiler {
    Compiler::new(
        ckks_params("C2"),
        tfhe_params("T2"),
        CompileOptions {
            packing,
            ..CompileOptions::default()
        },
    )
}

fn stream_is_valid(s: &ufc_isa::InstrStream) -> bool {
    s.instrs().iter().all(|i| {
        i.deps.iter().all(|&d| d < i.id)
            && i.shape.count > 0
            && i.pack >= 1
            && (i.word_bits == 8 || i.word_bits == 32 || i.word_bits == 36)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_every_ckks_op_lowers_to_a_valid_dag(level in 1u32..35) {
        let c = compiler(Packing::TvlpPlp);
        for op in [
            TraceOp::CkksAdd { level },
            TraceOp::CkksMulPlain { level },
            TraceOp::CkksMulCt { level },
            TraceOp::CkksRescale { level },
            TraceOp::CkksRotate { level, step: 1 },
            TraceOp::CkksModRaise { from_level: level.min(10) },
        ] {
            let s = c.lower_op(&op);
            prop_assert!(!s.is_empty());
            prop_assert!(stream_is_valid(&s), "{op:?}");
        }
    }

    #[test]
    fn prop_keyswitch_work_grows_with_level(lo in 2u32..15, hi in 16u32..35) {
        let c = compiler(Packing::TvlpPlp);
        let small = c.lower_op(&TraceOp::CkksMulCt { level: lo });
        let big = c.lower_op(&TraceOp::CkksMulCt { level: hi });
        prop_assert!(big.total_modmul_ops() > small.total_modmul_ops());
        prop_assert!(big.total_hbm_bytes() >= small.total_hbm_bytes());
    }

    #[test]
    fn prop_pbs_work_scales_with_batch(b in 1u32..64) {
        let c = compiler(Packing::TvlpPlp);
        let one = c.lower_op(&TraceOp::TfhePbs { batch: 1 }).total_modmul_ops();
        let batch = c.lower_op(&TraceOp::TfhePbs { batch: b }).total_modmul_ops();
        // Work scales linearly with batch (same instruction count,
        // wider shapes).
        prop_assert!(batch >= one * b as u64 / 2);
        prop_assert!(batch <= one * b as u64 * 2);
    }

    #[test]
    fn prop_tvlp_never_streams_more_keys_than_colp(b in 2u32..64) {
        let tv = compiler(Packing::TvlpPlp).lower_op(&TraceOp::TfhePbs { batch: b });
        let co = compiler(Packing::ColpPlp).lower_op(&TraceOp::TfhePbs { batch: b });
        prop_assert!(tv.total_hbm_bytes() <= co.total_hbm_bytes());
    }

    #[test]
    fn prop_pack_width_is_bounded(b in 1u32..256) {
        for packing in [Packing::None, Packing::Plp, Packing::ColpPlp, Packing::TvlpPlp] {
            let c = compiler(packing);
            let w = c.tfhe_pack_width(b);
            prop_assert!(w >= 1);
            // Never more polys than fit the lanes.
            let n = tfhe_params("T2").unwrap().n() as u32;
            prop_assert!(w * n <= c.options().total_lanes.max(n));
        }
    }
}
