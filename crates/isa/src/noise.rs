//! Shared noise models for CKKS and TFHE ciphertexts.
//!
//! Both the runtime schemes (`ufc-ckks`, `ufc-tfhe`) and the static
//! noise pass (`ufc-verify`) need the same answer to "how much error
//! does this ciphertext carry?". This module is the single home of
//! those transfer functions, parameterized over the Table III registry
//! ([`crate::params`]) so the static analysis can reason about traces
//! it never executes:
//!
//! * [`NoiseBudget`] — the CKKS slot-domain state `(value_bound,
//!   error_bound)`: a conservative upper bound on the message
//!   magnitude and absolute slot error. Originally developed inside
//!   `ufc-ckks` and validated there against *measured* decryption
//!   error; lifted here so the verifier shares the exact model the
//!   runtime was calibrated with.
//! * [`LweNoise`] — the TFHE per-sample phase-error variance in raw
//!   torus units, with transfer functions for gate linear parts,
//!   key switching and the PBS reset, all derived from the gadget
//!   parameters of [`crate::params::TfheParams`].
//!
//! The constants are deliberately conservative (bounds, not
//! estimates); `ufc-verify`'s empirical soundness suite pins them
//! against the real schemes.

use crate::params::TfheParams;

/// Standard deviation of fresh encryption noise, shared by both
/// schemes (the classic `σ = 3.2` of the FHE literature).
pub const NOISE_SIGMA: f64 = 3.2;

/// Nominal TFHE ciphertext modulus for static analysis: the runtime
/// uses a 31-bit NTT-friendly prime (§VII-D), so `2^31` is the right
/// magnitude for margin computations on registry parameter sets.
pub const TFHE_Q: f64 = 2147483648.0; // 2^31

// --------------------------------------------------------------- CKKS

/// A conservative estimate of a CKKS ciphertext's slot-domain state:
/// the largest message magnitude and the error bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseBudget {
    /// Upper bound on `|message|` in the slots.
    pub value_bound: f64,
    /// Upper bound on the absolute slot error.
    pub error_bound: f64,
}

impl NoiseBudget {
    /// Budget of a fresh encryption of values bounded by `value_bound`
    /// at scale `delta` in ring dimension `n`.
    ///
    /// Fresh noise is `(e0 + e1·s + v·e_pk)` with ternary `s`/`v`:
    /// coefficient magnitude `O(σ·N)`, decoded to roughly
    /// `σ·N / Δ` per slot (embedding spreads it by at most `N`).
    pub fn fresh(value_bound: f64, n: usize, delta: f64) -> Self {
        Self {
            value_bound,
            error_bound: 16.0 * NOISE_SIGMA * n as f64 / delta,
        }
    }

    /// Remaining precision in bits (`log2(value/error)`); `None` when
    /// the error has swallowed the message.
    pub fn precision_bits(&self) -> Option<f64> {
        if self.error_bound <= 0.0 {
            return Some(f64::INFINITY);
        }
        let r = self.value_bound / self.error_bound;
        (r > 1.0).then(|| r.log2())
    }

    /// Budget after homomorphic addition.
    pub fn add(&self, rhs: &Self) -> Self {
        Self {
            value_bound: self.value_bound + rhs.value_bound,
            error_bound: self.error_bound + rhs.error_bound,
        }
    }

    /// Budget after multiplying by a plaintext with values bounded by
    /// `p_bound` (encoding error of the plaintext included).
    pub fn mul_plain(&self, p_bound: f64, n: usize, delta: f64) -> Self {
        let encode_err = n as f64 / delta; // rounding of the encoding
        Self {
            value_bound: self.value_bound * p_bound,
            error_bound: self.error_bound * p_bound + self.value_bound * encode_err,
        }
    }

    /// Budget after ciphertext × ciphertext multiplication (including
    /// the relinearization key-switch noise).
    pub fn mul_ct(&self, rhs: &Self, n: usize, delta: f64) -> Self {
        // Cross terms plus the key-switch additive noise (≈ digit
        // noise divided by P, decoded).
        let ks_err = 32.0 * NOISE_SIGMA * n as f64 / delta;
        Self {
            value_bound: self.value_bound * rhs.value_bound,
            error_bound: self.error_bound * rhs.value_bound
                + rhs.error_bound * self.value_bound
                + self.error_bound * rhs.error_bound
                + ks_err,
        }
    }

    /// Budget after a rescale (slot values are scale-invariant; the
    /// division adds a small rounding term).
    pub fn rescale(&self, n: usize, new_scale: f64) -> Self {
        Self {
            value_bound: self.value_bound,
            error_bound: self.error_bound + n as f64 / new_scale,
        }
    }

    /// Budget after a rotation (pure permutation + key-switch noise).
    pub fn rotate(&self, n: usize, delta: f64) -> Self {
        Self {
            value_bound: self.value_bound,
            error_bound: self.error_bound + 32.0 * NOISE_SIGMA * n as f64 / delta,
        }
    }

    /// Budget after a CKKS bootstrap: the modulus chain is refreshed
    /// and the error is reset to a fresh-encryption bound inflated by
    /// the EvalMod approximation factor (the sine polynomial is exact
    /// only to a few fractional bits).
    pub fn bootstrap(&self, n: usize, delta: f64) -> Self {
        const EVALMOD_FACTOR: f64 = 64.0;
        let fresh = Self::fresh(self.value_bound.max(1.0), n, delta);
        Self {
            value_bound: fresh.value_bound,
            error_bound: fresh.error_bound * EVALMOD_FACTOR,
        }
    }
}

// --------------------------------------------------------------- TFHE

/// Per-sample LWE phase-error state in raw torus units (over the
/// nominal modulus [`TFHE_Q`]): the variance of `phase − encode(m)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LweNoise {
    /// Variance of the phase error, in (torus units)².
    pub variance: f64,
}

impl LweNoise {
    /// A fresh encryption: variance `σ²`.
    pub fn fresh() -> Self {
        Self {
            variance: NOISE_SIGMA * NOISE_SIGMA,
        }
    }

    /// A trivial (noiseless) ciphertext.
    pub fn trivial() -> Self {
        Self { variance: 0.0 }
    }

    /// Standard deviation of the phase error.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// After adding two ciphertexts.
    pub fn add(&self, rhs: &Self) -> Self {
        Self {
            variance: self.variance + rhs.variance,
        }
    }

    /// After scaling by a small constant `k`.
    pub fn scale(&self, k: f64) -> Self {
        Self {
            variance: k * k * self.variance,
        }
    }

    /// Worst-case two-input bootstrapped-gate linear part: the XOR
    /// family computes `2·(c1 + c2) (+ trivial offset)`, quadrupling
    /// the summed variance. With both inputs at this state the
    /// variance grows eightfold.
    pub fn gate_linear(&self) -> Self {
        self.add(self).scale(2.0)
    }

    /// Output noise of a programmable bootstrap — independent of the
    /// input (provided the input still decodes; check
    /// [`LweNoise::exceeds_margin`] first). Dominated by the
    /// blind-rotation external products: `n` CMUXes, each adding
    /// `2·N·ℓ·(B²/12)·σ²` of gadget noise plus the decomposition
    /// rounding floor `(1 + N/2)·(q/B^ℓ)²/12`.
    pub fn pbs_output(p: &TfheParams, q: f64) -> Self {
        let n = f64::from(p.lwe_dim);
        let big_n = p.n() as f64;
        let levels = f64::from(p.glwe_levels);
        let base = 2f64.powi(p.glwe_log_base as i32);
        let gadget = 2.0 * big_n * levels * (base * base / 12.0) * NOISE_SIGMA * NOISE_SIGMA;
        let drop = q / base.powf(levels);
        let rounding = (1.0 + big_n / 2.0) * drop * drop / 12.0;
        Self {
            variance: n * (gadget + rounding),
        }
    }

    /// After the LWE key switch back to dimension `n`: gadget noise
    /// from `N·d_ks` key rows plus the decomposition rounding of the
    /// `N` input coefficients (binary key, half the bits set).
    pub fn key_switch(&self, p: &TfheParams, q: f64) -> Self {
        let big_n = p.n() as f64;
        let levels = f64::from(p.ks_levels);
        let base = 2f64.powi(p.ks_log_base as i32);
        let gadget = big_n * levels * (base * base / 12.0) * NOISE_SIGMA * NOISE_SIGMA;
        let drop = q / base.powf(levels);
        let rounding = (big_n / 2.0) * drop * drop / 12.0;
        Self {
            variance: self.variance + gadget + rounding,
        }
    }

    /// Additional variance from the modulus switch to `2N` performed
    /// before every blind rotation, expressed back in `q` units.
    pub fn mod_switch(&self, p: &TfheParams, q: f64) -> Self {
        let step = q / (2.0 * p.n() as f64);
        let rounding = (1.0 + f64::from(p.lwe_dim) / 2.0) * step * step / 12.0;
        Self {
            variance: self.variance + rounding,
        }
    }

    /// Decryption margin for a `space`-message torus encoding: the
    /// phase may drift `q/(2·space)` before it decodes wrong.
    pub fn margin(q: f64, space: f64) -> f64 {
        q / (2.0 * space)
    }

    /// Whether the 6σ phase-error envelope crosses `margin` — i.e.
    /// whether decryption (or the sign test feeding a bootstrap) is at
    /// risk of flipping the message.
    pub fn exceeds_margin(&self, margin: f64) -> bool {
        6.0 * self.std_dev() > margin
    }

    /// How many σ of headroom remain to `margin` (for diagnostics).
    pub fn margin_sigmas(&self, margin: f64) -> f64 {
        let sd = self.std_dev();
        if sd <= 0.0 {
            return f64::INFINITY;
        }
        margin / sd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::tfhe_params;

    #[test]
    fn ckks_error_grows_monotonically_through_ops() {
        let n = 64;
        let delta = 2f64.powi(34);
        let fresh = NoiseBudget::fresh(1.0, n, delta);
        let added = fresh.add(&fresh);
        let mulled = added.mul_ct(&fresh, n, delta);
        assert!(added.error_bound > fresh.error_bound);
        assert!(mulled.error_bound > added.error_bound);
        assert_eq!(mulled.value_bound, 2.0);
    }

    #[test]
    fn ckks_precision_bits_reports_exhaustion() {
        let dead = NoiseBudget {
            value_bound: 1.0,
            error_bound: 2.0,
        };
        assert!(dead.precision_bits().is_none());
        let alive = NoiseBudget {
            value_bound: 1.0,
            error_bound: 1.0 / 1024.0,
        };
        assert!((alive.precision_bits().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ckks_bootstrap_refreshes_a_tired_budget() {
        let n = 1 << 16;
        let delta = 2f64.powi(34);
        let mut b = NoiseBudget::fresh(1.0, n, delta);
        for _ in 0..40 {
            b = b.rotate(n, delta);
        }
        let refreshed = b.bootstrap(n, delta);
        assert!(refreshed.error_bound < b.error_bound);
        assert!(refreshed.precision_bits().unwrap() > 4.0);
    }

    #[test]
    fn tfhe_gate_chain_grows_until_pbs_resets() {
        let t1 = tfhe_params("T1").unwrap();
        let margin = LweNoise::margin(TFHE_Q, 8.0);
        // A bootstrapped gate pipeline: PBS output + key switch, one
        // gate linear part, then the next bootstrap — safely inside
        // the margin for every Table III set.
        for id in ["T1", "T2", "T3"] {
            let p = tfhe_params(id).unwrap();
            let after_gate = LweNoise::pbs_output(&p, TFHE_Q)
                .key_switch(&p, TFHE_Q)
                .gate_linear()
                .mod_switch(&p, TFHE_Q);
            assert!(!after_gate.exceeds_margin(margin), "{id} gate at risk");
        }
        // A chain of gates with no PBS eventually starves.
        let mut v = LweNoise::pbs_output(&t1, TFHE_Q).key_switch(&t1, TFHE_Q);
        let mut gates = 0;
        while !v.exceeds_margin(margin) {
            v = v.gate_linear();
            gates += 1;
            assert!(gates < 64, "chain never starved");
        }
        assert!(gates >= 2, "a single gate must not starve");
    }

    #[test]
    fn tfhe_margin_sigmas_orders_states() {
        let t1 = tfhe_params("T1").unwrap();
        let margin = LweNoise::margin(TFHE_Q, 8.0);
        let fresh = LweNoise::fresh();
        let boot = LweNoise::pbs_output(&t1, TFHE_Q);
        assert!(fresh.margin_sigmas(margin) > boot.margin_sigmas(margin));
        assert!(LweNoise::trivial().margin_sigmas(margin).is_infinite());
        assert!(!fresh.exceeds_margin(margin));
    }
}
