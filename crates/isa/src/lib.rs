//! # ufc-isa — the two-level IR of the UFC toolchain
//!
//! The UFC paper's software stack (§VI-B) traces FHE programs "at the
//! granularity of ciphertext" and feeds the traces to a compiler that
//! emits hardware instructions. This crate defines both levels:
//!
//! * [`trace`] — ciphertext-granularity [`trace::TraceOp`]s, the
//!   output of the tracing tool (what OpenFHE emitted in the paper,
//!   what `ufc-ckks`/`ufc-tfhe`/`ufc-workloads` emit here);
//! * [`instr`] — hardware [`instr::MacroInstr`]s over polynomial
//!   limbs: the primitive kernels of Table I ((i)NTT, EWMM/A, AUTO,
//!   Rotate, Extract, Decomp, REDC) plus BConv MACs and memory
//!   movement;
//! * [`params`] — the FHE parameter registry of Table III (CKKS
//!   C1–C3, TFHE T1–T4) with all derived quantities (RNS limb counts,
//!   key-switching digit counts, ciphertext sizes) that both the
//!   schemes and the cost models consume.

#![forbid(unsafe_code)]

pub mod instr;
pub mod noise;
pub mod params;
pub mod serial;
pub mod trace;

pub use instr::{InstrStream, Kernel, MacroInstr};
pub use params::{CkksParams, TfheParams};
pub use trace::{Trace, TraceOp};
