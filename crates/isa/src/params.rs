//! FHE parameter registry — Table III of the paper.
//!
//! The evaluation uses three CKKS parameter sets (C1–C3, all with
//! `N = 2^16` at 128-bit security) and four TFHE sets (T1–T4, the same
//! sets Strix evaluates). All derived quantities the compiler and cost
//! models need (RNS limb counts, hybrid key-switching digits,
//! ciphertext byte sizes) live here so every crate agrees on them.

/// Word size of an RNS limb as scheduled on the hardware.
///
/// SHARP uses 36-bit limbs; UFC uses 32-bit functional units with
/// double-scaling to cover arbitrary moduli (§VI-A). The *limb count*
/// of a ciphertext is determined by the 36-bit budget (matching
/// SHARP's accounting so traces are comparable), while machine models
/// charge their own per-word costs.
pub const LIMB_BITS: u32 = 36;

/// An RNS-CKKS parameter set (paper Table III, C1–C3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CkksParams {
    /// Human-readable identifier ("C1".."C3").
    pub id: &'static str,
    /// log2 of the ring dimension N.
    pub log_n: u32,
    /// Number of key-switching digits (hybrid key-switching `dnum`).
    pub dnum: u32,
    /// log2 of the full modulus P·Q.
    pub log_pq: u32,
}

impl CkksParams {
    /// Ring dimension `N`.
    pub fn n(&self) -> usize {
        1 << self.log_n
    }

    /// Number of slots (`N/2`).
    pub fn slots(&self) -> usize {
        self.n() / 2
    }

    /// Total RNS limbs covering `log PQ` at [`LIMB_BITS`] bits each.
    pub fn total_limbs(&self) -> u32 {
        self.log_pq.div_ceil(LIMB_BITS)
    }

    /// Limbs of the special modulus `P` (`alpha = ceil(L / dnum)` in
    /// hybrid key-switching).
    pub fn special_limbs(&self) -> u32 {
        self.q_limbs().div_ceil(self.dnum)
    }

    /// Limbs of the ciphertext modulus `Q` (levels + 1).
    ///
    /// With `alpha` special limbs, `L_Q = total * dnum / (dnum + 1)`
    /// solved so that `L_Q + ceil(L_Q/dnum) == total`.
    pub fn q_limbs(&self) -> u32 {
        // Find the largest L such that L + ceil(L/dnum) <= total.
        let total = self.total_limbs();
        let mut l = total;
        while l + l.div_ceil(self.dnum) > total {
            l -= 1;
        }
        l
    }

    /// Maximum multiplicative level (one limb consumed per rescale).
    pub fn max_level(&self) -> u32 {
        self.q_limbs() - 1
    }

    /// Bytes of a fresh 2-polynomial ciphertext at level `level`
    /// (word-aligned to 8 bytes per coefficient limb).
    pub fn ciphertext_bytes(&self, level: u32) -> u64 {
        let limbs = (level + 1) as u64;
        2 * limbs * self.n() as u64 * 8
    }

    /// Bytes of one key-switching key: `dnum` digits, each a
    /// 2-polynomial ciphertext over `Q·P`.
    pub fn ksk_bytes(&self) -> u64 {
        let limbs = (self.q_limbs() + self.special_limbs()) as u64;
        self.dnum as u64 * 2 * limbs * self.n() as u64 * 8
    }
}

/// The CKKS sets of Table III.
///
/// C1's row is partially unreadable in the source text; the paper
/// pairs it with the SHARP-style configuration `dnum = 2`, and its
/// `log PQ` is set between C2's and the 36·50 budget.
pub const CKKS_SETS: [CkksParams; 3] = [
    CkksParams {
        id: "C1",
        log_n: 16,
        dnum: 2,
        log_pq: 1785,
    },
    CkksParams {
        id: "C2",
        log_n: 16,
        dnum: 3,
        log_pq: 1764,
    },
    CkksParams {
        id: "C3",
        log_n: 16,
        dnum: 4,
        log_pq: 1679,
    },
];

/// A TFHE parameter set (paper Table III, T1–T4 — Strix's sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TfheParams {
    /// Human-readable identifier ("T1".."T4").
    pub id: &'static str,
    /// LWE dimension `n`.
    pub lwe_dim: u32,
    /// log2 of the RLWE ring dimension `N`.
    pub log_n: u32,
    /// RGSW gadget levels `g_k` (decomposition depth).
    pub glwe_levels: u32,
    /// log2 of the RGSW gadget base.
    pub glwe_log_base: u32,
    /// Key-switching decomposition levels `d_ks`.
    pub ks_levels: u32,
    /// log2 of the key-switching base `B_ks`.
    pub ks_log_base: u32,
}

impl TfheParams {
    /// RLWE ring dimension `N`.
    pub fn n(&self) -> usize {
        1 << self.log_n
    }

    /// Blind-rotation external products per bootstrap (= LWE dim `n`).
    pub fn blind_rotations(&self) -> u32 {
        self.lwe_dim
    }

    /// Bytes of the bootstrapping key: `n` RGSW ciphertexts, each
    /// `2·g_k` RLWE rows of 2 polynomials (word = 4 bytes, 32-bit
    /// torus).
    pub fn bsk_bytes(&self) -> u64 {
        self.lwe_dim as u64 * 2 * self.glwe_levels as u64 * 2 * self.n() as u64 * 4
    }

    /// Bytes of the key-switching key: `N · d_ks` LWE ciphertexts of
    /// dimension `n`.
    pub fn ksk_bytes(&self) -> u64 {
        self.n() as u64 * self.ks_levels as u64 * (self.lwe_dim as u64 + 1) * 4
    }

    /// Bytes of one LWE ciphertext.
    pub fn lwe_bytes(&self) -> u64 {
        (self.lwe_dim as u64 + 1) * 4
    }
}

/// The TFHE sets of Table III. Key-switching parameters follow Strix's
/// published configuration for the matching sets.
pub const TFHE_SETS: [TfheParams; 4] = [
    TfheParams {
        id: "T1",
        lwe_dim: 500,
        log_n: 10,
        glwe_levels: 2,
        glwe_log_base: 10,
        ks_levels: 2,
        ks_log_base: 8,
    },
    TfheParams {
        id: "T2",
        lwe_dim: 630,
        log_n: 10,
        glwe_levels: 3,
        glwe_log_base: 7,
        ks_levels: 2,
        ks_log_base: 8,
    },
    TfheParams {
        id: "T3",
        lwe_dim: 592,
        log_n: 11,
        glwe_levels: 3,
        glwe_log_base: 8,
        ks_levels: 2,
        ks_log_base: 8,
    },
    TfheParams {
        id: "T4",
        lwe_dim: 991,
        log_n: 14,
        glwe_levels: 2,
        glwe_log_base: 14,
        ks_levels: 3,
        ks_log_base: 6,
    },
];

/// A parameter-registry lookup failure, carrying the unknown id and
/// the set of valid ids. Surfaced to users through compiler errors
/// ([`ufc-compiler`]'s `CompileError`) and verifier diagnostics
/// (`ufc-verify`'s `params-unknown` check).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamsError {
    /// No CKKS set with this id exists in Table III.
    UnknownCkks {
        /// The id that failed to resolve.
        id: String,
    },
    /// No TFHE set with this id exists in Table III.
    UnknownTfhe {
        /// The id that failed to resolve.
        id: String,
    },
    /// A parameter set resolved, but its ring/modulus combination
    /// cannot back an NTT context (composite modulus, `q ≢ 1 mod 2n`,
    /// or no NTT-friendly prime of the requested width exists).
    InvalidNtt {
        /// The parameter-set id whose instantiation failed.
        id: String,
        /// What the NTT layer rejected, human-readable.
        detail: String,
    },
}

impl std::fmt::Display for ParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamsError::UnknownCkks { id } => {
                let known: Vec<&str> = CKKS_SETS.iter().map(|p| p.id).collect();
                write!(
                    f,
                    "unknown CKKS parameter set `{id}` (known: {})",
                    known.join(", ")
                )
            }
            ParamsError::UnknownTfhe { id } => {
                let known: Vec<&str> = TFHE_SETS.iter().map(|p| p.id).collect();
                write!(
                    f,
                    "unknown TFHE parameter set `{id}` (known: {})",
                    known.join(", ")
                )
            }
            ParamsError::InvalidNtt { id, detail } => {
                write!(f, "parameter set `{id}` cannot back an NTT: {detail}")
            }
        }
    }
}

impl std::error::Error for ParamsError {}

/// Looks up a CKKS set by id ("C1".."C3").
pub fn ckks_params(id: &str) -> Option<CkksParams> {
    CKKS_SETS.iter().copied().find(|p| p.id == id)
}

/// Looks up a TFHE set by id ("T1".."T4").
pub fn tfhe_params(id: &str) -> Option<TfheParams> {
    TFHE_SETS.iter().copied().find(|p| p.id == id)
}

/// Like [`ckks_params`] but with a typed error for library paths.
pub fn try_ckks_params(id: &str) -> Result<CkksParams, ParamsError> {
    ckks_params(id).ok_or_else(|| ParamsError::UnknownCkks { id: id.to_owned() })
}

/// Like [`tfhe_params`] but with a typed error for library paths.
pub fn try_tfhe_params(id: &str) -> Result<TfheParams, ParamsError> {
    tfhe_params(id).ok_or_else(|| ParamsError::UnknownTfhe { id: id.to_owned() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lookup() {
        assert_eq!(ckks_params("C2").unwrap().dnum, 3);
        assert_eq!(tfhe_params("T4").unwrap().log_n, 14);
        assert!(ckks_params("C9").is_none());
        assert!(tfhe_params("X").is_none());
    }

    #[test]
    fn ckks_limb_budget_is_consistent() {
        for p in CKKS_SETS {
            let l = p.q_limbs();
            let a = p.special_limbs();
            assert!(l + a <= p.total_limbs(), "{}", p.id);
            assert!(l > 20, "{} should support deep circuits", p.id);
            // alpha = ceil(L / dnum).
            assert_eq!(a, l.div_ceil(p.dnum));
        }
    }

    #[test]
    fn ckks_sizes_scale_with_level() {
        let p = ckks_params("C1").unwrap();
        assert!(p.ciphertext_bytes(10) < p.ciphertext_bytes(20));
        // A fresh full-level ciphertext of N=2^16 with ~33 limbs is
        // tens of MB.
        let full = p.ciphertext_bytes(p.max_level());
        assert!(full > 10 << 20, "full ct = {full} bytes");
    }

    #[test]
    fn tfhe_bsk_dominates_ksk_for_large_n() {
        let t4 = tfhe_params("T4").unwrap();
        assert!(t4.bsk_bytes() > t4.ksk_bytes());
        // T4's bootstrapping key is hundreds of MB.
        assert!(t4.bsk_bytes() > 100 << 20);
    }

    #[test]
    fn tfhe_sets_match_table_iii() {
        let dims: Vec<u32> = TFHE_SETS.iter().map(|p| p.lwe_dim).collect();
        assert_eq!(dims, vec![500, 630, 592, 991]);
        let log_ns: Vec<u32> = TFHE_SETS.iter().map(|p| p.log_n).collect();
        assert_eq!(log_ns, vec![10, 10, 11, 14]);
        let gks: Vec<u32> = TFHE_SETS.iter().map(|p| p.glwe_levels).collect();
        assert_eq!(gks, vec![2, 3, 3, 2]);
    }

    #[test]
    fn ckks_sets_match_table_iii() {
        assert_eq!(ckks_params("C2").unwrap().log_pq, 1764);
        assert_eq!(ckks_params("C3").unwrap().log_pq, 1679);
        assert!(CKKS_SETS.iter().all(|p| p.log_n == 16));
    }
}
